#!/usr/bin/env sh
# Gating clang-tidy wrapper: run the bugprone-*/concurrency-* checks (see
# .clang-tidy) over the tracked src/ and tools/ sources and diff the
# normalised findings against the checked-in baseline
# (tools/clang_tidy_baseline.txt). Any finding not in the baseline fails the
# gate; fixed findings are reported so the baseline can be ratcheted down.
#
#   ./tools/clang_tidy_gate.sh                    # gate against build/
#   BUILD_DIR=build-check ./tools/clang_tidy_gate.sh
#   ./tools/clang_tidy_gate.sh --update-baseline  # regenerate the baseline
#
# Normalisation keeps the baseline stable across unrelated edits: line and
# column numbers are stripped, paths are made repo-relative, and duplicate
# findings (headers seen from many TUs) collapse to one line. Exit status:
# 0 clean (or only fixed findings), 1 new findings, 2 environment error.
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${BUILD_DIR:-"$root/build"}
baseline="$root/tools/clang_tidy_baseline.txt"
mode=${1:-check}

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "clang_tidy_gate: clang-tidy not found on PATH" >&2
  exit 2
fi
if [ ! -f "$build/compile_commands.json" ]; then
  echo "clang_tidy_gate: no compile database in $build (run cmake -B $build -S $root first)" >&2
  exit 2
fi

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

# Run clang-tidy file by file via xargs (|| true: findings make clang-tidy
# exit non-zero; the gate decides pass/fail from the diff, not the tool's
# exit code), then normalise to `path: severity: message [check]` lines.
(cd "$root" && git ls-files 'src/**/*.cpp' 'tools/**/*.cpp') \
  | (cd "$root" && xargs clang-tidy -p "$build" --quiet 2>/dev/null || true) \
  | sed -n 's/^\([^ :][^:]*\):[0-9][0-9]*:[0-9][0-9]*: \(warning\|error\): /\1: \2: /p' \
  | sed "s#^$root/##" \
  | sort -u > "$tmpdir/current"

if [ "$mode" = "--update-baseline" ]; then
  {
    echo "# clang-tidy baseline: one normalised finding per line"
    echo "# (path: severity: message [check]; line/column numbers stripped)."
    echo "# Regenerate with: ./tools/clang_tidy_gate.sh --update-baseline"
    cat "$tmpdir/current"
  } > "$baseline"
  count=$(wc -l < "$tmpdir/current" | tr -d ' ')
  echo "clang_tidy_gate: baseline updated with $count finding(s)"
  exit 0
fi

grep -v '^#' "$baseline" | sort -u > "$tmpdir/baseline" || true

new_findings=$(comm -13 "$tmpdir/baseline" "$tmpdir/current")
fixed_findings=$(comm -23 "$tmpdir/baseline" "$tmpdir/current")

if [ -n "$fixed_findings" ]; then
  echo "clang_tidy_gate: baseline entries no longer firing (ratchet the baseline down):"
  printf '%s\n' "$fixed_findings" | sed 's/^/  - /'
fi
if [ -n "$new_findings" ]; then
  echo "clang_tidy_gate: new findings not in tools/clang_tidy_baseline.txt:" >&2
  printf '%s\n' "$new_findings" | sed 's/^/  + /' >&2
  echo "clang_tidy_gate: fix them, or if intentional run ./tools/clang_tidy_gate.sh --update-baseline" >&2
  exit 1
fi
echo "clang_tidy_gate: clean against baseline"
