#!/usr/bin/env sh
# One-shot pre-PR gate: configure + build with warnings, a clang
# thread-safety build when clang is available, harp-lint over the tree, and
# the tier1 test suite. Run from anywhere; exits non-zero on the first
# failure.
#
#   ./tools/check.sh            # gate against build-check/
#   BUILD_DIR=build ./tools/check.sh
#   HARP_WERROR=OFF ./tools/check.sh   # allow warnings (default: -Werror)
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${BUILD_DIR:-"$root/build-check"}
jobs=$(nproc 2>/dev/null || echo 4)
werror=${HARP_WERROR:-ON}

echo "== configure + build (warnings as errors: $werror) =="
cmake -B "$build" -S "$root" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DHARP_WERROR="$werror" >/dev/null
cmake --build "$build" -j "$jobs"

if command -v clang++ >/dev/null 2>&1; then
  echo "== clang thread-safety build =="
  cmake -B "$build-clang" -S "$root" \
    -DCMAKE_CXX_COMPILER=clang++ -DHARP_THREAD_SAFETY=ON \
    -DHARP_WERROR="$werror" >/dev/null
  cmake --build "$build-clang" -j "$jobs"
else
  echo "== clang not found; skipping -Wthread-safety build =="
fi

echo "== harp-lint =="
cmake --build "$build" -j "$jobs" --target harp-lint >/dev/null
"$build/tools/harp-lint" --root "$root" --audit-suppressions src tests tools bench examples

echo "== tier1 tests =="
ctest --test-dir "$build" -L tier1 --output-on-failure

echo "== check.sh: all gates passed =="
