// harp-dse — generate application description files by offline design-space
// exploration (§3.2.1).
//
// Sweeps every coarse configuration of the chosen platform for the selected
// catalog applications (through the behaviour models; on real hardware this
// step would execute the applications) and writes the Pareto-filtered
// operating-point tables into a /etc/harp-style configuration directory,
// ready for harpd.
//
// Usage:
//   harp-dse --hardware raptor-lake|odroid-xu3e --out <config-dir>
//            [--apps mg.C,ep.C,...] [--full-sweep]
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/strings.hpp"
#include "src/harp/config_dir.hpp"
#include "src/harp/dse.hpp"
#include "src/model/catalog.hpp"
#include "src/platform/hardware.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: harp-dse --hardware raptor-lake|odroid-xu3e --out <dir>\n"
               "                [--apps name,name,...] [--full-sweep]\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string hardware_name;
  std::string out_dir;
  std::string apps_arg;
  bool full_sweep = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--hardware") {
      const char* v = next();
      if (v == nullptr) return usage(), 2;
      hardware_name = v;
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return usage(), 2;
      out_dir = v;
    } else if (arg == "--apps") {
      const char* v = next();
      if (v == nullptr) return usage(), 2;
      apps_arg = v;
    } else if (arg == "--full-sweep") {
      full_sweep = true;
    } else {
      usage();
      return 2;
    }
  }
  if (out_dir.empty()) return usage(), 2;

  harp::platform::HardwareDescription hw;
  harp::model::WorkloadCatalog catalog = harp::model::WorkloadCatalog::raptor_lake();
  if (hardware_name == "raptor-lake") {
    hw = harp::platform::raptor_lake();
  } else if (hardware_name == "odroid-xu3e") {
    hw = harp::platform::odroid_xu3e();
    catalog = harp::model::WorkloadCatalog::odroid();
  } else {
    usage();
    return 2;
  }

  std::vector<std::string> apps;
  if (apps_arg.empty()) {
    for (const harp::model::AppBehavior& app : catalog.apps()) apps.push_back(app.name);
  } else {
    for (const std::string& name : harp::split(apps_arg, ',')) {
      if (!catalog.has_app(name)) {
        std::fprintf(stderr, "harp-dse: unknown application '%s'\n", name.c_str());
        return 1;
      }
      apps.push_back(name);
    }
  }

  harp::core::ConfigDirectory config(out_dir);
  if (harp::Status s = config.save_hardware(hw); !s.ok()) {
    std::fprintf(stderr, "harp-dse: %s\n", s.error().message.c_str());
    return 1;
  }

  harp::core::DseOptions options;
  options.pareto_filter = !full_sweep;
  for (const std::string& name : apps) {
    harp::core::OperatingPointTable table =
        harp::core::run_offline_dse(catalog.app(name), hw, options);
    if (harp::Status s = config.save_table(table); !s.ok()) {
      std::fprintf(stderr, "harp-dse: %s\n", s.error().message.c_str());
      return 1;
    }
    std::printf("%-20s %4zu operating points -> %s\n", name.c_str(), table.size(),
                config.app_path(name).c_str());
  }
  std::printf("wrote hardware description -> %s\n", config.hardware_path().c_str());
  return 0;
}
