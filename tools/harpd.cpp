// harpd — the HARP resource-manager daemon (§4.3, Fig. 4).
//
// A user-space system service, in the spirit of systemd/launchd: it loads
// the hardware description and any application profiles from a /etc/harp-
// style configuration directory, listens on a Unix socket for libharp
// registrations, and manages the registered applications' resources.
//
// Usage:
//   harpd --config <dir> [--socket <path>] [--verbose]
//   harpd --hardware raptor-lake|odroid-xu3e [--socket <path>]
//
// With --config, profiles in <dir>/apps/*.json pre-seed the clients'
// operating-point tables when they register under a matching name.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <chrono>
#include <string>
#include <thread>

#include "src/common/logging.hpp"
#include "src/harp/config_dir.hpp"
#include "src/harp/rm_server.hpp"
#include "src/platform/hardware.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void handle_signal(int) { g_stop = 1; }

void usage() {
  std::fprintf(stderr,
               "usage: harpd (--config <dir> | --hardware raptor-lake|odroid-xu3e)\n"
               "             [--socket <path>] [--verbose]\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_dir;
  std::string hardware_name;
  std::string socket_path = "/tmp/harp.sock";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--config") {
      const char* v = next();
      if (v == nullptr) return usage(), 2;
      config_dir = v;
    } else if (arg == "--hardware") {
      const char* v = next();
      if (v == nullptr) return usage(), 2;
      hardware_name = v;
    } else if (arg == "--socket") {
      const char* v = next();
      if (v == nullptr) return usage(), 2;
      socket_path = v;
    } else if (arg == "--verbose") {
      harp::set_log_level(harp::LogLevel::kInfo);
    } else {
      usage();
      return 2;
    }
  }

  harp::platform::HardwareDescription hw;
  if (!config_dir.empty()) {
    harp::core::ConfigDirectory config(config_dir);
    auto loaded = config.load_hardware();
    if (!loaded.ok()) {
      std::fprintf(stderr, "harpd: cannot load %s: %s\n", config.hardware_path().c_str(),
                   loaded.error().message.c_str());
      return 1;
    }
    hw = std::move(loaded).take();
  } else if (hardware_name == "raptor-lake") {
    hw = harp::platform::raptor_lake();
  } else if (hardware_name == "odroid-xu3e") {
    hw = harp::platform::odroid_xu3e();
  } else {
    usage();
    return 2;
  }

  harp::core::RmServer rm(hw);
  if (harp::Status s = rm.listen(socket_path); !s.ok()) {
    std::fprintf(stderr, "harpd: %s\n", s.error().message.c_str());
    return 1;
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::printf("harpd: managing '%s' on %s (ctrl-c to stop)\n", hw.name.c_str(),
              socket_path.c_str());

  auto t0 = std::chrono::steady_clock::now();
  while (g_stop == 0) {
    double now =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    rm.poll(now);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::printf("harpd: shutting down (%zu clients)\n", rm.client_count());
  return 0;
}
