#!/usr/bin/env python3
"""Compare an allocator_scale bench run against a committed baseline.

Usage:
  bench_compare.py --baseline BENCH_allocator_scale.json --current bench_quick.json \
      [--metric warm_seconds_per_cycle] [--threshold 1.2] [--normalize cold_seconds_per_cycle] \
      [--gate apps=1024,candidates=32,core_types=3,solver=lagrangian]

Rows are matched on (apps, candidates, core_types, solver, workers). Only rows
present in BOTH files are compared; the gate row must exist in both or the
script fails. The gate fails when

    (current[metric] / baseline[metric]) > threshold

optionally normalized by the ratio of a second metric (--normalize) measured on
the same row. Normalizing by cold_seconds_per_cycle damps absolute
machine-speed differences between the baseline box and the CI runner: cold and
warm solves run the same code paths up to the incremental replay, so a
uniformly slower machine shifts both and cancels out, while a genuine
regression in the warm (incremental) path moves only the numerator.

All other shared rows are reported for trend-watching but never gate — CI
machines are too noisy to hard-fail on every point.
"""

from __future__ import annotations

import argparse
import json
import sys

KEY_FIELDS = ("apps", "candidates", "core_types", "solver", "workers")


def load_rows(path):
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    rows = data.get("results")
    if not isinstance(rows, list):
        raise SystemExit(f"{path}: no 'results' array")
    out = {}
    for row in rows:
        key = tuple(row.get(f) for f in KEY_FIELDS)
        out[key] = row
    return out


def parse_gate(spec):
    gate = {}
    for part in spec.split(","):
        name, _, value = part.partition("=")
        name = name.strip()
        value = value.strip()
        if name not in KEY_FIELDS:
            raise SystemExit(f"--gate field '{name}' not in {KEY_FIELDS}")
        gate[name] = value if name == "solver" else int(value)
    return gate


def matches(key, gate):
    return all(key[KEY_FIELDS.index(f)] == v for f, v in gate.items())


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True, help="committed baseline JSON")
    ap.add_argument("--current", required=True, help="freshly measured JSON")
    ap.add_argument("--metric", default="warm_seconds_per_cycle")
    ap.add_argument("--threshold", type=float, default=1.2,
                    help="max allowed current/baseline ratio on the gate row")
    ap.add_argument("--normalize", default=None, metavar="METRIC",
                    help="divide the gate ratio by this metric's ratio "
                         "(e.g. cold_seconds_per_cycle) to cancel machine speed")
    ap.add_argument("--gate", default="apps=1024,candidates=32,core_types=3,solver=lagrangian",
                    help="comma-separated field=value filter selecting gate rows")
    args = ap.parse_args(argv)

    baseline = load_rows(args.baseline)
    current = load_rows(args.current)
    gate = parse_gate(args.gate)

    shared = sorted(k for k in current if k in baseline)
    if not shared:
        print("bench_compare: no shared rows between baseline and current", file=sys.stderr)
        return 2

    gate_rows = [k for k in shared if matches(k, gate)]
    if not gate_rows:
        print(f"bench_compare: gate row {gate} missing from shared rows", file=sys.stderr)
        return 2

    failures = []
    print(f"{'row':<40} {'base':>10} {'cur':>10} {'ratio':>7}  gated")
    for key in shared:
        brow, crow = baseline[key], current[key]
        base = brow.get(args.metric)
        cur = crow.get(args.metric)
        if not isinstance(base, (int, float)) or not isinstance(cur, (int, float)) or base <= 0:
            continue
        ratio = cur / base
        note = ""
        if args.normalize:
            nbase = brow.get(args.normalize)
            ncur = crow.get(args.normalize)
            if isinstance(nbase, (int, float)) and isinstance(ncur, (int, float)) \
                    and nbase > 0 and ncur > 0:
                ratio /= ncur / nbase
                note = f" (normalized by {args.normalize})"
        gated = key in gate_rows
        label = "x".join(str(v) for v in key[:3]) + f" {key[3]} w{key[4]}"
        print(f"{label:<40} {base * 1e6:>9.1f}u {cur * 1e6:>9.1f}u {ratio:>6.2f}x  "
              f"{'GATE' if gated else '-'}{note}")
        if gated and ratio > args.threshold:
            failures.append((label, ratio))

    if failures:
        for label, ratio in failures:
            print(f"bench_compare: FAIL {label}: {args.metric} ratio {ratio:.2f} "
                  f"> {args.threshold:.2f}", file=sys.stderr)
        return 1
    print(f"bench_compare: OK ({len(gate_rows)} gate row(s) within "
          f"{args.threshold:.2f}x on {args.metric})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
