// harp-trace — render telemetry traces (src/telemetry) for humans.
//
// Reads a JSONL trace produced by telemetry::write_trace_file and prints
// per-cycle allocation summaries, an exploration convergence table, a
// per-service deadline/QoS table, a fault/recovery timeline, and a per-shard
// cycle/rebalance table (sharded RM scale-out). Sections can be selected
// individually; with no selection flags every section is printed.
//
// Usage:
//   harp-trace [--summary] [--cycles] [--exploration] [--qos] [--faults] [--shards]
//              <trace.jsonl>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "src/telemetry/export.hpp"
#include "src/telemetry/trace.hpp"

namespace {

using harp::telemetry::EventType;
using harp::telemetry::Phase;
using harp::telemetry::TraceEvent;

void usage() {
  std::fprintf(stderr,
               "usage: harp-trace [--summary] [--cycles] [--exploration] [--qos] [--faults] "
               "[--shards] <trace.jsonl>\n");
}

double num_arg(const TraceEvent& event, const std::string& key, double fallback = 0.0) {
  for (const auto& [k, v] : event.num)
    if (k == key) return v;
  return fallback;
}

std::string str_arg(const TraceEvent& event, const std::string& key) {
  for (const auto& [k, v] : event.str)
    if (k == key) return v;
  return {};
}

void print_summary(const std::vector<TraceEvent>& events) {
  std::printf("== summary ==\n");
  if (events.empty()) {
    std::printf("empty trace\n");
    return;
  }
  std::printf("%zu events, t = [%.6f, %.6f] s\n", events.size(), events.front().t,
              events.back().t);
  std::map<std::string, std::size_t> by_type;
  for (const TraceEvent& event : events) ++by_type[to_string(event.type)];
  for (const auto& [type, count] : by_type) std::printf("  %-20s %zu\n", type.c_str(), count);
}

void print_cycles(const std::vector<TraceEvent>& events) {
  std::printf("== allocation cycles ==\n");
  std::printf("%10s %7s %5s %9s %11s %11s %7s\n", "t", "cycle", "apps", "feasible", "total_cost",
              "duration_s", "solver");
  // Grants arrive between a cycle's begin and end; the allocator span
  // (mmkp_solve) nests inside, so match on the alloc_cycle type alone.
  bool in_cycle = false;
  double begin_t = 0.0;
  double cycle = 0.0, apps = 0.0;
  std::vector<const TraceEvent*> grants;
  std::size_t printed = 0;
  // Solver-path mix: mmkp_solve end events carry {"replayed", 1.0} when the
  // cached selection was replayed wholesale and {"incremental", 0/1} when a
  // dirty-subset re-solve ran vs a cold/full one.
  const char* solver_mode = "-";
  std::size_t n_replay = 0, n_inc = 0, n_full = 0;
  for (const TraceEvent& event : events) {
    if (event.type == EventType::kAllocCycle && event.phase == Phase::kBegin) {
      in_cycle = true;
      begin_t = event.t;
      cycle = num_arg(event, "cycle");
      apps = num_arg(event, "apps");
      grants.clear();
      solver_mode = "-";
      continue;
    }
    if (in_cycle && event.type == EventType::kGrant) {
      grants.push_back(&event);
      continue;
    }
    if (in_cycle && event.type == EventType::kMmkpSolve && event.phase == Phase::kEnd) {
      if (num_arg(event, "replayed") > 0.5) {
        solver_mode = "replay";
        ++n_replay;
      } else if (num_arg(event, "incremental") > 0.5) {
        solver_mode = "inc";
        ++n_inc;
      } else {
        solver_mode = "full";
        ++n_full;
      }
      continue;
    }
    if (in_cycle && event.type == EventType::kAllocCycle && event.phase == Phase::kEnd) {
      in_cycle = false;
      ++printed;
      bool feasible = num_arg(event, "feasible") > 0.5;
      std::printf("%10.4f %7.0f %5.0f %9s %11.2f %11.6f %7s\n", begin_t, cycle, apps,
                  feasible ? "yes" : "no", num_arg(event, "total_cost"), event.t - begin_t,
                  solver_mode);
      for (const TraceEvent* grant : grants)
        std::printf("    %-12s %-24s u=%-8.2f p=%-7.2f zeta=%-8.1f meas=%.0f\n",
                    grant->scope.c_str(), str_arg(*grant, "erv").c_str(),
                    num_arg(*grant, "utility"), num_arg(*grant, "power_w"),
                    num_arg(*grant, "cost"), num_arg(*grant, "measured"));
    }
  }
  if (printed == 0) {
    std::printf("no allocation cycles in trace\n");
    return;
  }
  if (n_replay + n_inc + n_full > 0)
    std::printf("solver mix: %zu replay, %zu incremental, %zu full (%zu cycles)\n", n_replay,
                n_inc, n_full, printed);
}

void print_exploration(const std::vector<TraceEvent>& events) {
  std::printf("== exploration convergence ==\n");
  struct AppProgress {
    std::size_t selections = 0;
    std::size_t measurements = 0;
    std::string last_stage = "initial";
    double last_measured = 0.0;
  };
  std::map<std::string, AppProgress> apps;
  std::vector<const TraceEvent*> transitions;
  for (const TraceEvent& event : events) {
    switch (event.type) {
      case EventType::kExplorationSelect: {
        AppProgress& app = apps[event.scope];
        ++app.selections;
        app.last_measured = num_arg(event, "measured");
        app.last_stage = str_arg(event, "stage");
        break;
      }
      case EventType::kMeasurement: ++apps[event.scope].measurements; break;
      case EventType::kStageTransition: {
        transitions.push_back(&event);
        AppProgress& app = apps[event.scope];
        app.last_stage = str_arg(event, "to");
        app.last_measured = num_arg(event, "measured");
        break;
      }
      default: break;
    }
  }
  if (apps.empty() && transitions.empty()) {
    std::printf("no exploration events in trace\n");
    return;
  }
  std::printf("%-16s %11s %13s %9s %11s\n", "app", "selections", "measurements", "measured",
              "stage");
  for (const auto& [name, app] : apps)
    std::printf("%-16s %11zu %13zu %9.0f %11s\n", name.c_str(), app.selections,
                app.measurements, app.last_measured, app.last_stage.c_str());
  if (!transitions.empty()) {
    std::printf("stage transitions:\n");
    for (const TraceEvent* event : transitions)
      std::printf("%10.4f  %-16s %s -> %s (%.0f configs measured)\n", event->t,
                  event->scope.c_str(), str_arg(*event, "from").c_str(),
                  str_arg(*event, "to").c_str(), num_arg(*event, "measured"));
  }
}

void print_qos(const std::vector<TraceEvent>& events) {
  std::printf("== deadline / qos ==\n");
  struct ServiceStats {
    std::size_t completed = 0;
    std::size_t hits = 0;
    double tardiness_sum_s = 0.0;
    double max_tardiness_s = 0.0;
    double max_queue_depth = 0.0;
  };
  std::map<std::string, ServiceStats> services;
  for (const TraceEvent& event : events) {
    if (event.type != EventType::kQosRequest) continue;
    ServiceStats& service = services[event.scope];
    ++service.completed;
    if (num_arg(event, "hit") > 0.5) ++service.hits;
    double tardiness = num_arg(event, "tardiness_s");
    service.tardiness_sum_s += tardiness;
    if (tardiness > service.max_tardiness_s) service.max_tardiness_s = tardiness;
    double depth = num_arg(event, "queue_depth");
    if (depth > service.max_queue_depth) service.max_queue_depth = depth;
  }
  if (services.empty()) {
    std::printf("no qos_request events in trace\n");
    return;
  }
  std::printf("%-16s %9s %8s %12s %12s %9s\n", "service", "requests", "hit_rate",
              "mean_tard_s", "max_tard_s", "max_queue");
  for (const auto& [name, service] : services) {
    double denom = static_cast<double>(service.completed);
    std::printf("%-16s %9zu %8.4f %12.6f %12.6f %9.0f\n", name.c_str(), service.completed,
                static_cast<double>(service.hits) / denom, service.tardiness_sum_s / denom,
                service.max_tardiness_s, service.max_queue_depth);
  }
}

void print_faults(const std::vector<TraceEvent>& events) {
  std::printf("== fault / recovery timeline ==\n");
  std::size_t printed = 0;
  for (const TraceEvent& event : events) {
    switch (event.type) {
      case EventType::kFaultInjected:
        std::printf("%10.4f  %-16s fault: %s (send #%.0f)\n", event.t, event.scope.c_str(),
                    str_arg(event, "kind").c_str(), num_arg(event, "seq"));
        break;
      case EventType::kLinkDown:
        std::printf("%10.4f  %-16s link down: %s\n", event.t, event.scope.c_str(),
                    str_arg(event, "error").c_str());
        break;
      case EventType::kReconnect:
        std::printf("%10.4f  %-16s reconnected (attempt %.0f)\n", event.t, event.scope.c_str(),
                    num_arg(event, "attempt"));
        break;
      case EventType::kLease:
        std::printf("%10.4f  %-16s lease expired after %.2f s silence\n", event.t,
                    event.scope.c_str(), num_arg(event, "silent_s"));
        break;
      case EventType::kRegistration:
        std::printf("%10.4f  %-16s registered\n", event.t, event.scope.c_str());
        break;
      default: continue;
    }
    ++printed;
  }
  if (printed == 0) std::printf("no fault or link events in trace\n");
}

void print_shards(const std::vector<TraceEvent>& events) {
  std::printf("== shards ==\n");
  struct ShardStats {
    std::size_t cycles = 0;
    double busy_s = 0.0;
    double max_cycle_s = 0.0;
    double last_clients = 0.0;
    double open_t = -1.0;
  };
  std::map<std::string, ShardStats> shards;
  std::vector<const TraceEvent*> rebalances;
  for (const TraceEvent& event : events) {
    if (event.type == EventType::kShardCycle) {
      ShardStats& shard = shards[event.scope];
      if (event.phase == Phase::kBegin) {
        shard.open_t = event.t;
        shard.last_clients = num_arg(event, "clients");
        continue;
      }
      if (event.phase == Phase::kEnd && shard.open_t >= 0.0) {
        double duration = event.t - shard.open_t;
        shard.open_t = -1.0;
        ++shard.cycles;
        shard.busy_s += duration;
        if (duration > shard.max_cycle_s) shard.max_cycle_s = duration;
      }
      continue;
    }
    if (event.type == EventType::kRebalance) rebalances.push_back(&event);
  }
  if (shards.empty() && rebalances.empty()) {
    std::printf("no shard events in trace\n");
    return;
  }
  if (!shards.empty()) {
    std::printf("%-12s %8s %9s %12s %12s\n", "shard", "cycles", "clients", "mean_cyc_s",
                "max_cyc_s");
    for (const auto& [name, shard] : shards) {
      double denom = shard.cycles > 0 ? static_cast<double>(shard.cycles) : 1.0;
      std::printf("%-12s %8zu %9.0f %12.6f %12.6f\n", name.c_str(), shard.cycles,
                  shard.last_clients, shard.busy_s / denom, shard.max_cycle_s);
    }
  }
  if (!rebalances.empty()) {
    std::printf("rebalances:\n");
    for (const TraceEvent* event : rebalances)
      std::printf("%10.4f  core %.0f (type %.0f) shard %.0f -> shard %.0f\n", event->t,
                  num_arg(*event, "core"), num_arg(*event, "type"), num_arg(*event, "from"),
                  num_arg(*event, "to"));
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool summary = false, cycles = false, exploration = false, qos = false, faults = false;
  bool shards = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--summary") {
      summary = true;
    } else if (arg == "--cycles") {
      cycles = true;
    } else if (arg == "--exploration") {
      exploration = true;
    } else if (arg == "--qos") {
      qos = true;
    } else if (arg == "--faults") {
      faults = true;
    } else if (arg == "--shards") {
      shards = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(), 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage(), 2;
    }
  }
  if (path.empty()) return usage(), 2;
  if (!summary && !cycles && !exploration && !qos && !faults && !shards)
    summary = cycles = exploration = qos = faults = shards = true;

  auto loaded = harp::telemetry::load_trace_file(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "harp-trace: %s: %s\n", path.c_str(), loaded.error().message.c_str());
    return 1;
  }
  const std::vector<TraceEvent>& events = loaded.value();

  if (summary) print_summary(events);
  if (cycles) print_cycles(events);
  if (exploration) print_exploration(events);
  if (qos) print_qos(events);
  if (faults) print_faults(events);
  if (shards) print_shards(events);
  return 0;
}
