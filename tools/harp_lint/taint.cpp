// r9/r10 determinism-taint passes (see taint.hpp for the analysis design).
#include "tools/harp_lint/taint.hpp"

#include <deque>
#include <optional>
#include <set>
#include <string>

namespace harp::lint {
namespace {

bool is(const Token& t, const char* text) { return t.text == text; }
bool is_ident(const Token& t) { return t.kind == TokKind::kIdent; }

/// A nondeterminism source inside one function body.
struct Source {
  int line = 1;
  std::string desc;  ///< e.g. "wall-clock read (system_clock::now)"
};

/// A determinism sink call site inside one function body.
struct Sink {
  int line = 1;
  std::string name;  ///< e.g. "Tracer::instant", "json::dump"
};

/// Identifier name sets collected once over the whole scanned tree; the
/// taint pass resolves accumulator/container types by declared name, the
/// same file-global pragmatism the lockset pass uses for lock expressions.
struct NameTable {
  std::set<std::string> unordered;  ///< names declared std::unordered_{map,set,...}
  std::set<std::string> strings;    ///< names declared std::string
  std::set<std::string> floats;     ///< names declared float/double
  std::set<std::string> streams;    ///< names declared o/stringstream/ofstream
};

bool is_unordered_type(const std::string& name) {
  return name == "unordered_map" || name == "unordered_set" ||
         name == "unordered_multimap" || name == "unordered_multiset";
}

/// `Type<...>[&*] name` / `Type name` declared-name extraction shared by the
/// table collector: returns the declared identifier after `i` (the type
/// token), or "" when the shape is not a declaration.
std::string declared_name_after(const std::vector<Token>& t, std::size_t i) {
  std::size_t j = i + 1;
  if (j < t.size() && is(t[j], "<")) {
    int depth = 0;
    for (; j < t.size(); ++j) {
      if (is(t[j], "<")) ++depth;
      if (is(t[j], ">") && --depth == 0) break;
    }
    ++j;
  }
  while (j < t.size() && (is(t[j], "&") || is(t[j], "*") || is(t[j], "const"))) ++j;
  if (j < t.size() && is_ident(t[j])) return t[j].text;
  return "";
}

NameTable collect_names(const std::vector<CgUnit>& units) {
  NameTable table;
  for (const CgUnit& unit : units) {
    const std::vector<Token>& t = unit.lexed->tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (!is_ident(t[i])) continue;
      const std::string& name = t[i].text;
      std::set<std::string>* dest = nullptr;
      if (is_unordered_type(name)) {
        dest = &table.unordered;
      } else if (name == "string") {
        dest = &table.strings;
      } else if (name == "float" || name == "double") {
        dest = &table.floats;
      } else if (name == "ostringstream" || name == "stringstream" ||
                 name == "ofstream" || name == "ostream") {
        dest = &table.streams;
      }
      if (dest == nullptr) continue;
      std::string declared = declared_name_after(t, i);
      if (!declared.empty()) dest->insert(declared);
    }
  }
  return table;
}

bool member_access(const std::vector<Token>& t, std::size_t i) {
  return i > 0 && (is(t[i - 1], ".") || is(t[i - 1], "->"));
}

/// `Type name(...)` — a declaration, not a call: preceded directly by an
/// identifier that is not an expression keyword.
bool declaration_like(const std::vector<Token>& t, std::size_t i, std::size_t begin) {
  if (i <= begin || !is_ident(t[i - 1])) return false;
  static const std::set<std::string> kExprKeywords = {
      "return", "co_return", "co_await", "throw", "case", "else", "do"};
  return kExprKeywords.count(t[i - 1].text) == 0;
}

// ---------------------------------------------------------------------------
// Source detection
// ---------------------------------------------------------------------------

std::vector<Source> find_sources(const std::vector<Token>& t, std::size_t begin,
                                 std::size_t end) {
  std::vector<Source> sources;
  for (std::size_t i = begin; i < end; ++i) {
    if (!is_ident(t[i])) continue;
    const std::string& name = t[i].text;
    if (name == "random_device") {
      sources.push_back(Source{t[i].line, "std::random_device read"});
      continue;
    }
    if ((name == "rand" || name == "srand") && i + 1 < end && is(t[i + 1], "(") &&
        !member_access(t, i) && !declaration_like(t, i, begin)) {
      sources.push_back(Source{t[i].line, name + "() draw"});
      continue;
    }
    if (name == "time" && i + 2 < end && is(t[i + 1], "(") && !member_access(t, i) &&
        (is(t[i + 2], "nullptr") || is(t[i + 2], "NULL") || is(t[i + 2], "0"))) {
      sources.push_back(Source{t[i].line, "time(nullptr) read"});
      continue;
    }
    if (name == "system_clock" && i + 3 < end && is(t[i + 1], "::") && is_ident(t[i + 2]) &&
        t[i + 2].text == "now" && is(t[i + 3], "(")) {
      sources.push_back(Source{t[i].line, "wall-clock read (system_clock::now)"});
      continue;
    }
    if (name == "getenv" && i + 1 < end && is(t[i + 1], "(") &&
        !declaration_like(t, i, begin)) {
      sources.push_back(Source{t[i].line, "environment read (getenv)"});
      continue;
    }
    if (name == "reinterpret_cast" && i + 2 < end && is(t[i + 1], "<")) {
      std::size_t j = i + 2;  // optional std:: qualifier before the type
      if (j + 2 < end && is_ident(t[j]) && t[j].text == "std" && is(t[j + 1], "::")) j += 2;
      if (j < end && is_ident(t[j]) &&
          (t[j].text == "uintptr_t" || t[j].text == "intptr_t")) {
        sources.push_back(Source{t[i].line, "pointer-to-integer cast (" + t[j].text + ")"});
        continue;
      }
    }
    if (name == "hash" && i + 1 < end && is(t[i + 1], "<")) {
      int depth = 0;
      bool pointer = false;
      for (std::size_t j = i + 1; j < end; ++j) {
        if (is(t[j], "<")) ++depth;
        if (is(t[j], "*")) pointer = true;
        if (is(t[j], ">") && --depth == 0) break;
      }
      if (pointer) sources.push_back(Source{t[i].line, "pointer hash (std::hash<T*>)"});
    }
  }
  return sources;
}

// ---------------------------------------------------------------------------
// Sink detection
// ---------------------------------------------------------------------------

std::vector<Sink> find_sinks(const std::vector<Token>& t, std::size_t begin, std::size_t end) {
  std::vector<Sink> sinks;
  for (std::size_t i = begin; i + 1 < end; ++i) {
    if (!is_ident(t[i]) || !is(t[i + 1], "(")) continue;
    const std::string& name = t[i].text;
    if ((name == "begin" || name == "end" || name == "instant") && member_access(t, i)) {
      // Tracer emission: the EventType argument distinguishes these from
      // iterator begin()/end() member calls.
      bool event = false;
      for (std::size_t j = i + 2; j < end && j < i + 7; ++j)
        if (is_ident(t[j]) && t[j].text == "EventType") event = true;
      if (event) sinks.push_back(Sink{t[i].line, "Tracer::" + name});
      continue;
    }
    if (name == "dump" && !declaration_like(t, i, begin)) {
      sinks.push_back(Sink{t[i].line, "json::dump"});
      continue;
    }
    if (name == "save_file" && !declaration_like(t, i, begin)) {
      sinks.push_back(Sink{t[i].line, "json::save_file"});
      continue;
    }
    if (name == "write_bench_file" && !declaration_like(t, i, begin)) {
      sinks.push_back(Sink{t[i].line, "bench::write_bench_file"});
      continue;
    }
    if (name == "bench_envelope" && !declaration_like(t, i, begin)) {
      sinks.push_back(Sink{t[i].line, "bench::bench_envelope"});
      continue;
    }
    if (name == "bound_fingerprint" && !declaration_like(t, i, begin))
      sinks.push_back(Sink{t[i].line, "SolveWorkspace fingerprint"});
  }
  return sinks;
}

// ---------------------------------------------------------------------------
// Unordered-container loops (r10 + accumulation taint sources)
// ---------------------------------------------------------------------------

struct ULoop {
  int line = 1;              ///< line of the `for`
  std::string container;     ///< the unordered name iterated over
  std::size_t body_begin = 0;
  std::size_t body_end = 0;  ///< one past the last body token
};

std::vector<ULoop> find_unordered_loops(const std::vector<Token>& t, std::size_t begin,
                                        std::size_t end, const NameTable& names) {
  std::vector<ULoop> loops;
  for (std::size_t i = begin; i + 1 < end; ++i) {
    if (!is_ident(t[i]) || t[i].text != "for" || !is(t[i + 1], "(")) continue;
    int depth = 0;
    std::size_t close = i + 1;
    std::size_t colon = 0;
    bool classic = false;
    for (std::size_t j = i + 1; j < end; ++j) {
      if (is(t[j], "(")) ++depth;
      if (is(t[j], ")") && --depth == 0) {
        close = j;
        break;
      }
      if (depth == 1 && is(t[j], ";")) classic = true;
      if (depth == 1 && is(t[j], ":") && colon == 0) colon = j;
    }
    if (classic || colon == 0 || close <= colon) continue;  // not a range-for
    std::string container;
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (!is_ident(t[j])) continue;
      if (names.unordered.count(t[j].text) != 0 || is_unordered_type(t[j].text)) {
        container = is_unordered_type(t[j].text) ? "<temporary>" : t[j].text;
        break;
      }
    }
    if (container.empty()) continue;
    ULoop loop;
    loop.line = t[i].line;
    loop.container = container;
    if (close + 1 < end && is(t[close + 1], "{")) {
      int bdepth = 0;
      std::size_t body_close = close + 1;
      for (std::size_t j = close + 1; j < end; ++j) {
        if (is(t[j], "{")) ++bdepth;
        if (is(t[j], "}") && --bdepth == 0) {
          body_close = j;
          break;
        }
      }
      loop.body_begin = close + 2;
      loop.body_end = body_close;
    } else {
      loop.body_begin = close + 1;
      std::size_t j = close + 1;
      while (j < end && !is(t[j], ";")) ++j;
      loop.body_end = j;
    }
    loops.push_back(loop);
  }
  return loops;
}

/// The collected-then-sorted pattern: `X.push_back(...)` inside the loop is
/// fine when `std::sort(X.begin(), ...)` (or stable_sort) follows anywhere
/// later in the same function body.
bool sorted_later(const std::vector<Token>& t, std::size_t from, std::size_t end,
                  const std::string& target) {
  for (std::size_t i = from; i + 1 < end; ++i) {
    if (!is_ident(t[i])) continue;
    if (t[i].text != "sort" && t[i].text != "stable_sort") continue;
    if (!is(t[i + 1], "(")) continue;
    int depth = 0;
    for (std::size_t j = i + 1; j < end; ++j) {
      if (is(t[j], "(")) ++depth;
      if (is(t[j], ")") && --depth == 0) break;
      if (is_ident(t[j]) && t[j].text == target) return true;
    }
  }
  return false;
}

/// First order-sensitive effect in a loop body, or nullopt. `body_limit` is
/// the enclosing function's body end (for the sorted-later exemption).
struct OrderEffect {
  int line = 1;
  std::string what;
  bool accumulation = false;  ///< true → also an r9 taint source
};

std::optional<OrderEffect> order_sensitive_effect(const std::vector<Token>& t,
                                                  const ULoop& loop, std::size_t body_limit,
                                                  const NameTable& names) {
  // Direct sink emission inside the body wins (most severe).
  std::vector<Sink> sinks = find_sinks(t, loop.body_begin, loop.body_end);
  if (!sinks.empty())
    return OrderEffect{sinks[0].line, "emits to sink '" + sinks[0].name + "'", false};

  for (std::size_t i = loop.body_begin; i < loop.body_end; ++i) {
    if (!is_ident(t[i])) continue;
    const std::string& name = t[i].text;
    if ((name == "push_back" || name == "emplace_back" || name == "append") &&
        member_access(t, i) && i + 1 < loop.body_end && is(t[i + 1], "(")) {
      // The appended-to target: the identifier the member access hangs off.
      std::string target = i >= 2 && is_ident(t[i - 2]) ? t[i - 2].text : "";
      if (!target.empty() && sorted_later(t, loop.body_end, body_limit, target)) continue;
      return OrderEffect{t[i].line, "appends via " + name + "()", true};
    }
    if (i + 2 < loop.body_end && is(t[i + 1], "+") && is(t[i + 2], "=")) {
      if (names.strings.count(name) != 0)
        return OrderEffect{t[i].line, "concatenates into std::string '" + name + "'", true};
      if (names.floats.count(name) != 0)
        return OrderEffect{t[i].line,
                           "accumulates into floating-point '" + name +
                               "' (FP addition is not associative)",
                           true};
    }
    if (names.streams.count(name) != 0 && i + 2 < loop.body_end && is(t[i + 1], "<") &&
        is(t[i + 2], "<"))
      return OrderEffect{t[i].line, "streams into '" + name + "'", true};
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Fixpoint propagation + findings
// ---------------------------------------------------------------------------

/// Why a node is tainted / sink-reaching: either a local witness (source or
/// sink index into the node's own list) or the next hop toward one.
struct Mark {
  int via = -1;        ///< callee node id carrying the color; -1 = local
  int call_line = 0;   ///< line of the call into `via`
  int local_idx = -1;  ///< index into the node's own sources/sinks when local
};

const SourceFile& file_of(const CallGraph& cg, const std::vector<CgUnit>& units, int node) {
  return *units[static_cast<std::size_t>(cg.nodes[static_cast<std::size_t>(node)].unit)].src;
}

}  // namespace

void check_determinism_taint(const CallGraph& cg, const std::vector<CgUnit>& units,
                             bool enable_r9, bool enable_r10,
                             std::vector<Finding>& findings) {
  const std::size_t n = cg.nodes.size();
  NameTable names = collect_names(units);

  std::vector<std::vector<Source>> sources(n);
  std::vector<std::vector<Sink>> sinks(n);
  for (std::size_t i = 0; i < n; ++i) {
    const CgNode& node = cg.nodes[i];
    const CgUnit& unit = units[static_cast<std::size_t>(node.unit)];
    const std::vector<Token>& t = unit.lexed->tokens;
    sinks[i] = find_sinks(t, node.body_begin, node.body_end);
    if (unit.src->rel_path == "src/common/rng.hpp") continue;  // sanctioned home
    sources[i] = find_sources(t, node.body_begin, node.body_end);

    // Unordered loops: r10 findings, and order-sensitive accumulations
    // double as r9 taint sources (the scrambled order escapes the loop).
    for (const ULoop& loop : find_unordered_loops(t, node.body_begin, node.body_end, names)) {
      std::optional<OrderEffect> effect =
          order_sensitive_effect(t, loop, node.body_end, names);
      if (!effect.has_value()) continue;
      if (enable_r10)
        findings.push_back(
            Finding{unit.src->rel_path, loop.line, "r10",
                    "iteration over unordered container '" + loop.container + "' " +
                        effect->what + " (line " + std::to_string(effect->line) +
                        "); iterate a sorted snapshot (collect keys, std::sort) or use "
                        "std::map"});
      if (effect->accumulation)
        sources[i].push_back(Source{loop.line, "unordered-container iteration order ('" +
                                                   loop.container + "')"});
    }
  }
  if (!enable_r9) return;

  // Color propagation, callee → caller, each node marked at most once — the
  // worklist terminates on cyclic and mutually recursive graphs.
  auto propagate = [&](std::vector<std::optional<Mark>>& marks) {
    std::deque<int> queue;
    for (std::size_t i = 0; i < n; ++i)
      if (marks[i].has_value()) queue.push_back(static_cast<int>(i));
    while (!queue.empty()) {
      int g = queue.front();
      queue.pop_front();
      for (int f : cg.callers[static_cast<std::size_t>(g)]) {
        if (marks[static_cast<std::size_t>(f)].has_value()) continue;
        int call_line = 0;
        for (const CallSite& call : cg.nodes[static_cast<std::size_t>(f)].calls)
          if (call.callee == g) call_line = call.line;
        marks[static_cast<std::size_t>(f)] = Mark{g, call_line, -1};
        queue.push_back(f);
      }
    }
  };

  std::vector<std::optional<Mark>> tainted(n), reaching(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!sources[i].empty()) tainted[i] = Mark{-1, 0, 0};
    if (!sinks[i].empty()) reaching[i] = Mark{-1, 0, 0};
  }
  propagate(tainted);
  propagate(reaching);

  /// Chain of qualified names from `from` to its local witness; fills `path`
  /// and returns the terminal node id.
  auto walk = [&](int from, const std::vector<std::optional<Mark>>& marks,
                  std::vector<std::string>& path) {
    int at = from;
    path.push_back(qualified_name(cg.nodes[static_cast<std::size_t>(at)]));
    while (marks[static_cast<std::size_t>(at)]->via >= 0) {
      at = marks[static_cast<std::size_t>(at)]->via;
      path.push_back(qualified_name(cg.nodes[static_cast<std::size_t>(at)]));
    }
    return at;
  };

  auto source_suffix = [&](int from, std::vector<std::string>& path) {
    int at = walk(from, tainted, path);
    const Source& src =
        sources[static_cast<std::size_t>(at)][static_cast<std::size_t>(
            tainted[static_cast<std::size_t>(at)]->local_idx)];
    std::string joined;
    for (const std::string& hop : path) joined += (joined.empty() ? "" : " -> ") + hop;
    return joined + " [" + src.desc + " at " + file_of(cg, units, at).rel_path + ":" +
           std::to_string(src.line) + "]";
  };

  for (std::size_t f = 0; f < n; ++f) {
    if (!tainted[f].has_value()) continue;
    const std::string& file = file_of(cg, units, static_cast<int>(f)).rel_path;

    // A sink inside a tainted function: fire at the sink call site.
    for (const Sink& sink : sinks[f]) {
      std::vector<std::string> path;
      std::string chain = source_suffix(static_cast<int>(f), path);
      Finding finding{file, sink.line, "r9",
                      "nondeterminism reaches sink '" + sink.name + "': path " + chain +
                          "; make the data deterministic or suppress with harp-lint: "
                          "allow(r9 <reason>)"};
      finding.path = path;
      findings.push_back(std::move(finding));
    }

    // A call handing data into an (uncolored) sink-reaching callee: fire at
    // the call site. Tainted callees report closer to the sink themselves.
    for (const CallSite& call : cg.nodes[f].calls) {
      std::size_t g = static_cast<std::size_t>(call.callee);
      if (g == f || !reaching[g].has_value() || tainted[g].has_value()) continue;
      std::vector<std::string> sink_path;
      int sink_node = walk(call.callee, reaching, sink_path);
      const Sink& sink =
          sinks[static_cast<std::size_t>(sink_node)][static_cast<std::size_t>(
              reaching[static_cast<std::size_t>(sink_node)]->local_idx)];
      std::vector<std::string> path;
      std::string chain = source_suffix(static_cast<int>(f), path);
      Finding finding{file, call.line, "r9",
                      "call to '" + qualified_name(cg.nodes[g]) +
                          "' carries nondeterministic data toward sink '" + sink.name + "' (" +
                          file_of(cg, units, sink_node).rel_path + ":" +
                          std::to_string(sink.line) + "): path " + chain +
                          "; make the data deterministic or suppress with harp-lint: "
                          "allow(r9 <reason>)"};
      finding.path = path;
      findings.push_back(std::move(finding));
    }
  }
}

}  // namespace harp::lint
