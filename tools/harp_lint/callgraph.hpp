// Whole-tree call graph for harp-lint's interprocedural passes.
//
// Every function/method definition across all scanned SourceFiles is indexed
// (via cfg.hpp's extract_functions) and call sites inside each body are
// resolved to defined functions with the same pragmatic one-hop style the
// lockset pass uses:
//
//   - `Class::name(...)`  → the definition(s) keyed "Class::name";
//   - `this->name(...)` / unqualified `name(...)` inside a class → the
//     enclosing class's method first, then a free function `name`;
//   - `obj.name(...)` / `obj->name(...)` on a non-this object → resolved
//     only when `name` maps to exactly one qualified function in the whole
//     index (no receiver type inference);
//   - anything else (std:: calls, unknown names, declaration-like
//     `Type name(...)` runs) resolves to nothing and creates no edge.
//
// When a qualified name has definitions in several files (internal-linkage
// helpers sharing a name), a call prefers the definition(s) in its own file;
// only if the file defines none does it fan out to all of them — a sound
// over-approximation for the taint fixpoint, which must terminate on
// arbitrary (including mutually recursive) graphs and therefore treats the
// graph purely as reachability, never as a call stack.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "tools/harp_lint/lexer.hpp"
#include "tools/harp_lint/lint.hpp"

namespace harp::lint {

/// One scanned translation unit (same shape the lockset pass takes).
struct CgUnit {
  const SourceFile* src = nullptr;
  const LexedFile* lexed = nullptr;
};

/// One resolved call edge out of a node's body.
struct CallSite {
  int callee = 0;  ///< node id
  int line = 1;    ///< line of the call site (for path diagnostics)
};

/// One function/method definition.
struct CgNode {
  int unit = 0;              ///< index into the CgUnit vector
  std::string class_name;    ///< enclosing/qualifying class; empty = free fn
  std::string name;
  int line = 1;              ///< definition line
  std::size_t body_begin = 0;  ///< first token inside the braces
  std::size_t body_end = 0;    ///< token index of the closing brace
  std::vector<CallSite> calls;  ///< resolved callees, deduped, one site each
};

struct CallGraph {
  std::vector<CgNode> nodes;
  std::vector<std::vector<int>> callers;  ///< reverse edges, node-id order
};

/// "Class::name" for methods, plain "name" for free functions — the display
/// form used in r9 path diagnostics.
std::string qualified_name(const CgNode& node);

/// Index all definitions and resolve all call sites. Deterministic: node ids
/// follow (unit order, definition order), edges and caller lists are emitted
/// in ascending node-id order.
CallGraph build_call_graph(const std::vector<CgUnit>& units);

}  // namespace harp::lint
