// CFG construction for harp-lint's flow-sensitive passes (see cfg.hpp).
#include "tools/harp_lint/cfg.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace harp::lint {
namespace {

bool is(const Token& t, const char* text) { return t.text == text; }

bool is_ident(const Token& t) { return t.kind == TokKind::kIdent; }

/// Identifiers that look like `name(...)` but can never open a function
/// definition body.
bool is_non_function_keyword(const std::string& name) {
  static const std::set<std::string> kKeywords = {
      "if",     "while",   "for",          "switch",  "catch",   "return",
      "sizeof", "alignof", "alignas",      "new",     "delete",  "throw",
      "do",     "else",    "case",         "default", "static_assert",
      "decltype", "typeid", "constexpr",   "assert",  "defined", "co_await",
      "co_yield", "co_return", "requires", "noexcept"};
  if (kKeywords.count(name) > 0) return true;
  // HARP_REQUIRES(m) and friends trail a signature; taking the macro as a
  // function name would re-discover the same body as a contract-less
  // duplicate definition.
  return name.rfind("HARP_", 0) == 0;
}

/// RAII guard types whose declaration acquires the lock passed as the first
/// constructor argument for the rest of the lexical scope.
bool is_raii_guard_type(const std::string& name) {
  return name == "MutexLock" || name == "lock_guard" || name == "unique_lock" ||
         name == "scoped_lock";
}

/// Index of the token matching an opening bracket at `open` ("(" / "[" / "{"),
/// treating all three bracket kinds as one balanced family. Returns `limit`
/// if unbalanced (truncated/macro-mangled input): callers clamp.
std::size_t match_bracket(const std::vector<Token>& t, std::size_t open, std::size_t limit) {
  int depth = 0;
  for (std::size_t i = open; i < limit; ++i) {
    if (is(t[i], "(") || is(t[i], "[") || is(t[i], "{")) {
      ++depth;
    } else if (is(t[i], ")") || is(t[i], "]") || is(t[i], "}")) {
      if (--depth == 0) return i;
    }
  }
  return limit;
}

}  // namespace

std::string normalize_lock_expr(const std::vector<Token>& tokens, std::size_t begin,
                                std::size_t end) {
  std::string out;
  for (std::size_t i = begin; i < end && i < tokens.size(); ++i) {
    if (is_ident(tokens[i]) && tokens[i].text == "this" && i + 1 < end &&
        is(tokens[i + 1], "->")) {
      ++i;  // `this->m` and `m` name the same member capability
      continue;
    }
    if (is(tokens[i], "&") && out.empty()) continue;  // `&m` passed by address
    out += tokens[i].text;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Function discovery
// ---------------------------------------------------------------------------

std::vector<ClassOpen> find_class_opens(const std::vector<Token>& tokens) {
  std::vector<ClassOpen> class_opens;
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (!is_ident(tokens[i]) || (tokens[i].text != "class" && tokens[i].text != "struct"))
      continue;
    if (i > 0 && is_ident(tokens[i - 1]) && tokens[i - 1].text == "enum") continue;
    // Find the declared name: last identifier before { ; ( : (base clause).
    std::string name;
    std::size_t j = i + 1;
    for (; j < tokens.size(); ++j) {
      const Token& t = tokens[j];
      if (is(t, "{") || is(t, ";") || is(t, "(") || is(t, ":") || is(t, "=")) break;
      if (is(t, "<")) {  // template argument list in a specialisation
        int angles = 0;
        for (; j < tokens.size(); ++j) {
          if (is(tokens[j], "<")) ++angles;
          if (is(tokens[j], ">") && --angles == 0) break;
        }
        continue;
      }
      if (is_ident(t)) name = t.text;
    }
    if (j < tokens.size() && is(tokens[j], ":")) {  // skip base clause
      for (; j < tokens.size(); ++j)
        if (is(tokens[j], "{") || is(tokens[j], ";")) break;
    }
    if (j < tokens.size() && is(tokens[j], "{") && !name.empty())
      class_opens.push_back(ClassOpen{j, name});
  }
  return class_opens;
}

std::vector<FunctionDef> extract_functions(const std::vector<Token>& tokens) {
  std::vector<FunctionDef> out;
  std::vector<ClassOpen> class_opens = find_class_opens(tokens);
  std::vector<std::pair<int, std::string>> class_stack;  // (depth at open, name)
  int depth = 0;
  std::size_t next_class = 0;

  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    if (is(tok, "{")) {
      ++depth;
      while (next_class < class_opens.size() && class_opens[next_class].brace < i) ++next_class;
      if (next_class < class_opens.size() && class_opens[next_class].brace == i) {
        class_stack.emplace_back(depth, class_opens[next_class].name);
        ++next_class;
      }
      continue;
    }
    if (is(tok, "}")) {
      if (!class_stack.empty() && class_stack.back().first == depth) class_stack.pop_back();
      if (depth > 0) --depth;
      continue;
    }
    if (!is(tok, "(") || i == 0 || !is_ident(tokens[i - 1])) continue;
    if (is_non_function_keyword(tokens[i - 1].text)) continue;

    // Candidate: `name (` — resolve qualification and trailing specifiers.
    std::size_t name_idx = i - 1;
    std::string name = tokens[name_idx].text;
    bool is_dtor = name_idx > 0 && is(tokens[name_idx - 1], "~");
    std::string qualifier;  // Class in `Class::name(...)` out-of-line defs
    {
      std::size_t q = is_dtor ? name_idx - 1 : name_idx;
      while (q >= 2 && is(tokens[q - 1], "::") && is_ident(tokens[q - 2])) {
        qualifier = tokens[q - 2].text;
        q -= 2;
      }
    }

    std::size_t close = match_bracket(tokens, i, tokens.size());
    if (close >= tokens.size()) continue;

    // Walk specifiers after the parameter list looking for the body "{".
    FunctionDef def;
    std::size_t k = close + 1;
    bool ok = true;
    bool saw_init_list = false;
    while (k < tokens.size()) {
      const Token& t = tokens[k];
      if (is(t, "{")) break;  // body
      if (is(t, ";") || is(t, "=") || is(t, ",") || is(t, ")")) {
        ok = false;  // declaration, `= default/delete/0`, or a plain call
        break;
      }
      if (is_ident(t)) {
        const std::string& s = t.text;
        if (s == "const" || s == "override" || s == "final" || s == "mutable" ||
            s == "volatile" || s == "try") {
          ++k;
          continue;
        }
        if (s == "noexcept") {
          ++k;
          if (k < tokens.size() && is(tokens[k], "("))
            k = match_bracket(tokens, k, tokens.size()) + 1;
          continue;
        }
        if (s == "HARP_NO_THREAD_SAFETY_ANALYSIS") {
          def.no_thread_safety_analysis = true;
          ++k;
          continue;
        }
        if (s.rfind("HARP_", 0) == 0) {  // attribute-style macro (…(args)?)
          bool requires_macro = s == "HARP_REQUIRES" || s == "HARP_REQUIRES_SHARED";
          ++k;
          if (k < tokens.size() && is(tokens[k], "(")) {
            std::size_t macro_close = match_bracket(tokens, k, tokens.size());
            if (requires_macro) {
              // Comma-split the top-level args: one lock expr each.
              std::size_t arg_begin = k + 1;
              int d = 0;
              for (std::size_t a = k + 1; a <= macro_close && a < tokens.size(); ++a) {
                bool top_comma = d == 0 && is(tokens[a], ",");
                if (is(tokens[a], "(") || is(tokens[a], "[")) ++d;
                if (is(tokens[a], ")") || is(tokens[a], "]")) --d;
                if (top_comma || a == macro_close) {
                  if (a > arg_begin)
                    def.requires_locks.push_back(normalize_lock_expr(tokens, arg_begin, a));
                  arg_begin = a + 1;
                }
              }
            }
            k = macro_close + 1;
          }
          continue;
        }
        ok = false;  // e.g. `name(...)` followed by another identifier: a decl
        break;
      }
      if (is(t, "->")) {  // trailing return type: skip to "{" or ";"
        ++k;
        while (k < tokens.size() && !is(tokens[k], "{") && !is(tokens[k], ";")) {
          if (is(tokens[k], "(") || is(tokens[k], "["))
            k = match_bracket(tokens, k, tokens.size());
          ++k;
        }
        continue;
      }
      if (is(t, ":")) {  // ctor initializer list: `: member(init), member{init} {`
        saw_init_list = true;
        ++k;
        while (k < tokens.size() && !is(tokens[k], "{")) {
          if (is(tokens[k], "(")) {
            k = match_bracket(tokens, k, tokens.size()) + 1;
            // After a completed initializer, a "{" that follows is the body
            // only if no "," intervenes; either way the loop's "{" check at
            // the top of the while handles it.
            if (k < tokens.size() && is(tokens[k], ",")) ++k;
            continue;
          }
          ++k;
          // Brace-init member initializers (`member{...}`) follow an
          // identifier or template closer directly.
          if (k < tokens.size() && is(tokens[k], "{") && k > 0 &&
              (is_ident(tokens[k - 1]) || is(tokens[k - 1], ">"))) {
            k = match_bracket(tokens, k, tokens.size()) + 1;
            if (k < tokens.size() && is(tokens[k], ",")) ++k;
          }
        }
        break;  // k is at the body "{" (or at end)
      }
      ok = false;
      break;
    }
    if (!ok || k >= tokens.size() || !is(tokens[k], "{")) continue;

    std::size_t body_close = match_bracket(tokens, k, tokens.size());
    def.name = is_dtor ? "~" + name : name;
    def.line = tokens[name_idx].line;
    def.class_name = !qualifier.empty()
                         ? qualifier
                         : (!class_stack.empty() ? class_stack.back().second : "");
    def.is_ctor_or_dtor =
        is_dtor || saw_init_list || (!def.class_name.empty() && name == def.class_name);
    def.body_begin = k + 1;
    def.body_end = std::min(body_close, tokens.size());
    out.push_back(def);
    // Keep scanning from inside the body: local structs/lambda-free helpers
    // are discovered too, and the brace bookkeeping above needs every token.
  }
  return out;
}

// ---------------------------------------------------------------------------
// CFG builder
// ---------------------------------------------------------------------------

namespace {

class CfgBuilder {
 public:
  CfgBuilder(const std::vector<Token>& tokens, std::size_t begin, std::size_t end)
      : t_(tokens), pos_(begin), end_(std::min(end, tokens.size())) {
    cfg_.blocks.emplace_back();  // entry = 0
    cfg_.blocks.emplace_back();  // exit = 1, kept empty
    cfg_.exit = 1;
    cur_ = 0;
  }

  Cfg build() {
    scopes_.emplace_back();
    parse_stmt_list(end_);
    emit_releases_down_to(0, end_);
    scopes_.pop_back();
    edge(cur_, cfg_.exit);
    return std::move(cfg_);
  }

 private:
  struct JumpCtx {
    int target = 0;
    std::size_t scope_depth = 0;  // scopes_ size at loop entry
  };

  int new_block() {
    cfg_.blocks.emplace_back();
    return static_cast<int>(cfg_.blocks.size()) - 1;
  }

  void edge(int from, int to) {
    std::vector<int>& succ = cfg_.blocks[static_cast<std::size_t>(from)].succ;
    if (std::find(succ.begin(), succ.end(), to) == succ.end()) succ.push_back(to);
  }

  void append_stmt(std::size_t begin, std::size_t end) {
    if (begin >= end) return;
    CfgStmt s;
    s.begin = begin;
    s.end = end;
    detect_raii_guard(s);
    cfg_.blocks[static_cast<std::size_t>(cur_)].stmts.push_back(std::move(s));
  }

  /// `MutexLock l(m);` / `std::lock_guard<std::mutex> l(m);` → mark the
  /// statement as an acquire and register the lock with the current scope.
  void detect_raii_guard(CfgStmt& s) {
    std::size_t i = s.begin;
    while (i + 1 < s.end && is_ident(t_[i]) && is(t_[i + 1], "::")) i += 2;  // harp::, std::
    if (i >= s.end || !is_ident(t_[i]) || !is_raii_guard_type(t_[i].text)) return;
    ++i;
    if (i < s.end && is(t_[i], "<")) {  // template args
      int d = 0;
      for (; i < s.end; ++i) {
        if (is(t_[i], "<")) ++d;
        if (is(t_[i], ">") && --d == 0) break;
      }
      ++i;
    }
    if (i >= s.end || !is_ident(t_[i])) return;  // variable name
    ++i;
    if (i >= s.end || (!is(t_[i], "(") && !is(t_[i], "{"))) return;
    std::size_t close = match_bracket(t_, i, s.end);
    // First top-level constructor argument is the lock expression (scoped_lock
    // with several locks: register each).
    std::size_t arg_begin = i + 1;
    int d = 0;
    for (std::size_t a = i + 1; a <= close && a < s.end; ++a) {
      bool top_comma = d == 0 && is(t_[a], ",");
      if (is(t_[a], "(") || is(t_[a], "[") || is(t_[a], "{")) ++d;
      if (is(t_[a], ")") || is(t_[a], "]") || is(t_[a], "}")) --d;
      if (top_comma || a == close) {
        if (a > arg_begin) {
          std::string expr = normalize_lock_expr(t_, arg_begin, a);
          if (!expr.empty()) {
            if (s.acquire.empty())
              s.acquire = expr;
            else
              s.acquire += "," + expr;
            scopes_.back().push_back(expr);
          }
        }
        arg_begin = a + 1;
      }
    }
  }

  /// Emit synthetic release statements into `cur_` for every RAII lock in
  /// scopes deeper than `keep_depth` (in reverse acquisition order). Does not
  /// pop the scopes: early exits leave them live for the fall-through path.
  void emit_releases_down_to(std::size_t keep_depth, std::size_t at_tok) {
    for (std::size_t s = scopes_.size(); s > keep_depth; --s) {
      const std::vector<std::string>& locks = scopes_[s - 1];
      for (std::size_t l = locks.size(); l > 0; --l) {
        CfgStmt rel;
        rel.begin = rel.end = std::min(at_tok, end_);
        rel.release = locks[l - 1];
        cfg_.blocks[static_cast<std::size_t>(cur_)].stmts.push_back(std::move(rel));
      }
    }
  }

  /// End of a plain statement starting at `from`: the ";" at bracket depth 0,
  /// with balanced {...} (lambdas, brace-init) absorbed.
  std::size_t scan_stmt_end(std::size_t from, std::size_t limit) {
    int depth = 0;
    for (std::size_t i = from; i < limit; ++i) {
      if (is(t_[i], "{")) {
        i = match_bracket(t_, i, limit);
        continue;
      }
      if (is(t_[i], "(") || is(t_[i], "[")) ++depth;
      else if (is(t_[i], ")") || is(t_[i], "]")) --depth;
      else if (depth <= 0 && is(t_[i], ";")) return i;
    }
    return limit;
  }

  void parse_stmt_list(std::size_t limit) {
    while (pos_ < limit) parse_stmt(limit);
  }

  void parse_stmt(std::size_t limit) {
    const Token& tok = t_[pos_];
    if (is(tok, ";")) {
      ++pos_;
      return;
    }
    if (is(tok, "{")) {
      std::size_t close = std::min(match_bracket(t_, pos_, limit), limit);
      scopes_.emplace_back();
      ++pos_;
      parse_stmt_list(close);
      emit_releases_down_to(scopes_.size() - 1, close);
      scopes_.pop_back();
      pos_ = close + 1;
      return;
    }
    if (is_ident(tok)) {
      const std::string& s = tok.text;
      if (s == "if") return parse_if(limit);
      if (s == "while") return parse_while(limit);
      if (s == "for") return parse_for(limit);
      if (s == "do") return parse_do(limit);
      if (s == "switch") return parse_switch(limit);
      if (s == "return") return parse_jump_to(cfg_.exit, 0, limit);
      if (s == "break" && !breaks_.empty())
        return parse_jump_to(breaks_.back().target, breaks_.back().scope_depth, limit);
      if (s == "continue" && !continues_.empty())
        return parse_jump_to(continues_.back().target, continues_.back().scope_depth, limit);
      if (s == "else") {  // dangling else from a macro-mangled if: skip token
        ++pos_;
        return;
      }
      if (s == "case" || s == "default") {  // label outside a switch body: skip
        while (pos_ < limit && !is(t_[pos_], ":")) ++pos_;
        if (pos_ < limit) ++pos_;
        return;
      }
    }
    std::size_t semi = scan_stmt_end(pos_, limit);
    append_stmt(pos_, semi);
    pos_ = std::min(semi + 1, limit);
  }

  /// return / break / continue: the expression's reads happen while all
  /// current locks are held, then scopes unwind, then control jumps.
  void parse_jump_to(int target, std::size_t keep_depth, std::size_t limit) {
    std::size_t semi = scan_stmt_end(pos_, limit);
    append_stmt(pos_, semi);
    emit_releases_down_to(keep_depth, semi);
    edge(cur_, target);
    cur_ = new_block();  // unreachable continuation; dataflow gives it TOP
    pos_ = std::min(semi + 1, limit);
  }

  /// Condition in parens after the keyword at pos_; appends it as a statement
  /// of block `into` and leaves pos_ just past the ")".
  void parse_condition(int into, std::size_t limit) {
    while (pos_ < limit && !is(t_[pos_], "(")) ++pos_;  // skips `constexpr`
    if (pos_ >= limit) return;
    std::size_t close = std::min(match_bracket(t_, pos_, limit), limit);
    int saved = cur_;
    cur_ = into;
    append_stmt(pos_ + 1, close);
    cur_ = saved;
    pos_ = std::min(close + 1, limit);
  }

  void parse_if(std::size_t limit) {
    ++pos_;
    parse_condition(cur_, limit);
    int head = cur_;
    int then_entry = new_block();
    edge(head, then_entry);
    cur_ = then_entry;
    parse_stmt(limit);
    int then_end = cur_;
    if (pos_ < limit && is_ident(t_[pos_]) && t_[pos_].text == "else") {
      ++pos_;
      int else_entry = new_block();
      edge(head, else_entry);
      cur_ = else_entry;
      parse_stmt(limit);
      int else_end = cur_;
      int join = new_block();
      edge(then_end, join);
      edge(else_end, join);
      cur_ = join;
    } else {
      int join = new_block();
      edge(then_end, join);
      edge(head, join);
      cur_ = join;
    }
  }

  void parse_while(std::size_t limit) {
    ++pos_;
    int head = new_block();
    edge(cur_, head);
    parse_condition(head, limit);
    int body = new_block();
    int exit_b = new_block();
    edge(head, body);
    edge(head, exit_b);
    breaks_.push_back({exit_b, scopes_.size()});
    continues_.push_back({head, scopes_.size()});
    cur_ = body;
    parse_stmt(limit);
    edge(cur_, head);
    breaks_.pop_back();
    continues_.pop_back();
    cur_ = exit_b;
  }

  void parse_do(std::size_t limit) {
    ++pos_;
    int body = new_block();
    int cond = new_block();
    int exit_b = new_block();
    edge(cur_, body);
    breaks_.push_back({exit_b, scopes_.size()});
    continues_.push_back({cond, scopes_.size()});
    cur_ = body;
    parse_stmt(limit);
    edge(cur_, cond);
    breaks_.pop_back();
    continues_.pop_back();
    if (pos_ < limit && is_ident(t_[pos_]) && t_[pos_].text == "while") {
      ++pos_;
      parse_condition(cond, limit);
      if (pos_ < limit && is(t_[pos_], ";")) ++pos_;
    }
    edge(cond, body);
    edge(cond, exit_b);
    cur_ = exit_b;
  }

  void parse_for(std::size_t limit) {
    ++pos_;
    while (pos_ < limit && !is(t_[pos_], "(")) ++pos_;
    if (pos_ >= limit) return;
    std::size_t open = pos_;
    std::size_t close = std::min(match_bracket(t_, open, limit), limit);

    // Locate the two top-level ";" — absent means range-for.
    std::vector<std::size_t> semis;
    int d = 0;
    for (std::size_t i = open + 1; i < close; ++i) {
      if (is(t_[i], "(") || is(t_[i], "[") || is(t_[i], "{")) ++d;
      else if (is(t_[i], ")") || is(t_[i], "]") || is(t_[i], "}")) --d;
      else if (d == 0 && is(t_[i], ";")) semis.push_back(i);
    }

    scopes_.emplace_back();  // init declarations live until the loop exits
    int head = new_block();
    int latch;
    if (semis.size() >= 2) {
      append_stmt(open + 1, semis[0]);  // init runs in the predecessor block
      edge(cur_, head);
      cur_ = head;
      append_stmt(semis[0] + 1, semis[1]);  // condition
      latch = new_block();
      int saved = cur_;
      cur_ = latch;
      append_stmt(semis[1] + 1, close);  // step
      cur_ = saved;
    } else {  // range-for: the whole header reads its range every iteration
      edge(cur_, head);
      cur_ = head;
      append_stmt(open + 1, close);
      latch = head;  // no step block; continue re-evaluates the header
    }
    int body = new_block();
    int exit_b = new_block();
    edge(head, body);
    edge(head, exit_b);
    if (latch != head) edge(latch, head);
    breaks_.push_back({exit_b, scopes_.size() - 1});
    continues_.push_back({latch, scopes_.size() - 1});
    cur_ = body;
    pos_ = std::min(close + 1, limit);
    parse_stmt(limit);
    edge(cur_, latch);
    breaks_.pop_back();
    continues_.pop_back();
    cur_ = exit_b;
    emit_releases_down_to(scopes_.size() - 1, close);
    scopes_.pop_back();
  }

  void parse_switch(std::size_t limit) {
    ++pos_;
    parse_condition(cur_, limit);
    int head = cur_;
    if (pos_ >= limit || !is(t_[pos_], "{")) return;  // unbraced switch: skip
    std::size_t close = std::min(match_bracket(t_, pos_, limit), limit);
    ++pos_;
    int exit_b = new_block();
    breaks_.push_back({exit_b, scopes_.size()});
    scopes_.emplace_back();
    bool saw_default = false;
    bool in_arm = false;  // false until the first case label
    while (pos_ < close) {
      const Token& tok = t_[pos_];
      if (is_ident(tok) && (tok.text == "case" || tok.text == "default")) {
        saw_default = saw_default || tok.text == "default";
        while (pos_ < close && !is(t_[pos_], ":")) ++pos_;
        if (pos_ < close) ++pos_;
        // Consecutive labels extend the same arm; otherwise start a new arm
        // with a fallthrough edge from the previous one.
        if (!in_arm || !cfg_.blocks[static_cast<std::size_t>(cur_)].stmts.empty() ||
            cur_ == head) {
          int arm = new_block();
          edge(head, arm);
          if (in_arm) edge(cur_, arm);  // fallthrough
          cur_ = arm;
          in_arm = true;
        } else {
          edge(head, cur_);  // empty arm gaining another label
        }
        continue;
      }
      if (!in_arm) {  // statements before any label are unreachable
        cur_ = new_block();
        in_arm = true;
      }
      parse_stmt(close);
    }
    edge(cur_, exit_b);
    if (!saw_default) edge(head, exit_b);
    cur_ = exit_b;
    emit_releases_down_to(scopes_.size() - 1, close);
    scopes_.pop_back();
    breaks_.pop_back();
    pos_ = close + 1;
  }

  const std::vector<Token>& t_;
  std::size_t pos_;
  std::size_t end_;
  Cfg cfg_;
  int cur_ = 0;
  std::vector<std::vector<std::string>> scopes_;
  std::vector<JumpCtx> breaks_;
  std::vector<JumpCtx> continues_;
};

}  // namespace

Cfg build_cfg(const std::vector<Token>& tokens, std::size_t body_begin, std::size_t body_end) {
  return CfgBuilder(tokens, body_begin, body_end).build();
}

std::string describe(const Cfg& cfg) {
  std::ostringstream out;
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    if (b) out << "; ";
    out << "b" << b << "[s" << cfg.blocks[b].stmts.size() << "]";
    if (!cfg.blocks[b].succ.empty()) {
      out << " ->";
      for (int s : cfg.blocks[b].succ) out << " b" << s;
    }
  }
  return out.str();
}

}  // namespace harp::lint
