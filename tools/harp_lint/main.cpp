// harp-lint — HARP-specific static analysis (rules r1–r12, see lint.hpp).
//
// Usage:
//   harp-lint [--root <dir>] [--rules r1,r3] [--format text|json]
//             [--audit-suppressions] [path...]
//
// --audit-suppressions additionally reports stale `// harp-lint: allow(...)`
// directives — ones whose rule ran but which silenced nothing.
// --format=json emits the findings as a stable JSON array (file/line/rule/
// message/path/cycle) on stdout for CI artifacts; exit codes are unchanged.
// --rules accepts both `--rules r1,r2` and `--rules=r1,r2`, so CI can stage
// a new rule non-gating (run everything-but, diff the candidate separately)
// before flipping it into the default set.
//
// Paths (files or directories, default: src tests tools bench examples) are
// resolved against --root (default: cwd). Directory walks collect *.cpp and
// *.hpp and skip build outputs and the lint fixture corpus; explicitly named
// files are always scanned, and the scan order is sorted by relative path so
// output (and the r9 taint paths) never depend on directory enumeration
// order. Exit status: 0 clean, 1 findings, 2 usage error.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/harp_lint/lint.hpp"

namespace fs = std::filesystem;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: harp-lint [--root <dir>] [--rules r1,r2,...] [--format text|json] "
               "[--audit-suppressions] [path...]\n");
}

bool source_extension(const fs::path& path) {
  std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

bool skipped_dir_entry(const std::string& rel) {
  return rel.find("lint_fixtures") != std::string::npos ||
         rel.find("build/") != std::string::npos || rel.rfind("build", 0) == 0;
}

std::string rel_to(const fs::path& root, const fs::path& path) {
  std::error_code ec;
  fs::path rel = fs::relative(path, root, ec);
  std::string out = (ec || rel.empty()) ? path.string() : rel.generic_string();
  return out;
}

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::vector<std::string> rules;
  std::vector<std::string> paths;
  bool audit_suppressions = false;
  bool json_output = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--audit-suppressions") {
      audit_suppressions = true;
    } else if (arg == "--format") {
      if (i + 1 >= argc) return usage(), 2;
      std::string fmt = argv[++i];
      if (fmt == "json") {
        json_output = true;
      } else if (fmt != "text") {
        return usage(), 2;
      }
    } else if (arg.rfind("--format=", 0) == 0) {
      std::string fmt = arg.substr(9);
      if (fmt == "json") {
        json_output = true;
      } else if (fmt != "text") {
        return usage(), 2;
      }
    } else if (arg == "--root") {
      if (i + 1 >= argc) return usage(), 2;
      root = fs::path(argv[++i]);
    } else if (arg == "--rules" || arg.rfind("--rules=", 0) == 0) {
      std::string list;
      if (arg == "--rules") {
        if (i + 1 >= argc) return usage(), 2;
        list = argv[++i];
      } else {
        list = arg.substr(8);
      }
      std::size_t start = 0;
      while (start <= list.size()) {
        std::size_t comma = list.find(',', start);
        std::string rule = list.substr(start, comma - start);
        if (!rule.empty()) rules.push_back(rule);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (arg == "--help" || arg == "-h") {
      return usage(), 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(), 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) paths = {"src", "tests", "tools", "bench", "examples"};

  std::vector<harp::lint::SourceFile> files;
  for (const std::string& p : paths) {
    fs::path abs = fs::path(p).is_absolute() ? fs::path(p) : root / p;
    std::error_code ec;
    if (fs::is_directory(abs, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(abs, ec)) {
        if (!entry.is_regular_file() || !source_extension(entry.path())) continue;
        std::string rel = rel_to(root, entry.path());
        if (skipped_dir_entry(rel)) continue;
        std::string text;
        if (!read_file(entry.path(), text)) {
          std::fprintf(stderr, "harp-lint: cannot read %s\n", entry.path().c_str());
          return 2;
        }
        files.push_back(harp::lint::SourceFile{rel, std::move(text)});
      }
    } else if (fs::is_regular_file(abs, ec)) {
      std::string text;
      if (!read_file(abs, text)) {
        std::fprintf(stderr, "harp-lint: cannot read %s\n", abs.c_str());
        return 2;
      }
      files.push_back(harp::lint::SourceFile{rel_to(root, abs), std::move(text)});
    } else {
      std::fprintf(stderr, "harp-lint: no such path: %s\n", abs.c_str());
      return 2;
    }
  }

  std::sort(files.begin(), files.end(),
            [](const harp::lint::SourceFile& a, const harp::lint::SourceFile& b) {
              return a.rel_path < b.rel_path;
            });

  harp::lint::Options options;
  options.rules = rules;
  options.audit_suppressions = audit_suppressions;
  std::vector<harp::lint::Finding> findings = harp::lint::run(files, options);
  if (json_output) {
    std::fputs(harp::lint::format_json(findings).c_str(), stdout);
  } else {
    for (const harp::lint::Finding& finding : findings)
      std::printf("%s\n", harp::lint::format(finding).c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "harp-lint: %zu finding(s) in %zu file(s) scanned\n", findings.size(),
                 files.size());
    return 1;
  }
  return 0;
}
