#include "tools/harp_lint/lint.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <thread>
#include <unordered_set>

#include "src/common/parallel_for.hpp"
#include "tools/harp_lint/callgraph.hpp"
#include "tools/harp_lint/lexer.hpp"
#include "tools/harp_lint/lockorder.hpp"
#include "tools/harp_lint/lockset.hpp"
#include "tools/harp_lint/taint.hpp"

namespace harp::lint {

namespace {

// ---------------------------------------------------------------------------
// Shared scaffolding
// ---------------------------------------------------------------------------

struct Scanned {
  const SourceFile* src = nullptr;
  LexedFile lexed;
};

bool is(const Token& t, const char* text) { return t.text == text; }
bool is_ident(const Token& t) { return t.kind == TokKind::kIdent; }

/// The module dependency DAG (ISSUE/DESIGN: common → json/linalg →
/// platform → model/ipc/mlmodels/energy → sim → sched → harp; libharp sits
/// beside harp on top of ipc). A module may always include itself.
const std::map<std::string, std::set<std::string>>& layering() {
  static const std::map<std::string, std::set<std::string>> kAllowed = {
      {"common", {}},
      {"json", {"common"}},
      {"linalg", {"common"}},
      {"telemetry", {"common", "json", "linalg"}},
      {"platform", {"common", "json", "telemetry"}},
      {"model", {"common", "json", "platform", "telemetry"}},
      {"ipc", {"common", "json", "platform", "telemetry"}},
      {"mlmodels", {"common", "linalg", "telemetry"}},
      {"energy", {"common", "json", "platform", "telemetry"}},
      {"sim", {"common", "json", "platform", "model", "telemetry"}},
      {"sched", {"common", "json", "platform", "model", "sim", "telemetry"}},
      {"harp",
       {"common", "json", "linalg", "platform", "model", "ipc", "mlmodels", "energy", "sim",
        "telemetry"}},
      {"libharp", {"common", "json", "platform", "ipc", "telemetry"}},
  };
  return kAllowed;
}

/// "src/ipc/transport.cpp" → "ipc"; empty when not inside a src module.
std::string module_of(const std::string& rel_path) {
  if (rel_path.rfind("src/", 0) != 0) return "";
  std::size_t slash = rel_path.find('/', 4);
  if (slash == std::string::npos) return "";
  return rel_path.substr(4, slash - 4);
}

// ---------------------------------------------------------------------------
// r1 — unchecked Result/Status
// ---------------------------------------------------------------------------

/// Pass 1 over the whole scanned set (headers give us the API surface):
/// `fallible` holds names of functions declared to return Result<...> or
/// Status; `ambiguous` holds names that ALSO have a void-returning overload
/// somewhere (e.g. RmServer::poll vs Channel::poll) — name-based matching
/// cannot tell those call sites apart, so the discard check skips them.
struct FallibleIndex {
  std::unordered_set<std::string> fallible;
  std::unordered_set<std::string> ambiguous;
};

FallibleIndex collect_fallible(const std::vector<Scanned>& files) {
  FallibleIndex out;
  std::unordered_set<std::string> void_returning;
  for (const Scanned& f : files) {
    const std::vector<Token>& t = f.lexed.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (!is_ident(t[i])) continue;
      bool fallible = t[i].text == "Result" || t[i].text == "Status";
      bool void_ret = t[i].text == "void";
      if (!fallible && !void_ret) continue;
      std::size_t j = i + 1;
      if (t[i].text == "Result") {
        if (j >= t.size() || !is(t[j], "<")) continue;
        int depth = 0;
        for (; j < t.size(); ++j) {
          if (is(t[j], "<")) ++depth;
          if (is(t[j], ">") && --depth == 0) break;
        }
        ++j;
      }
      // Qualified declarator: name (:: name)* followed by '('.
      std::string name;
      while (j + 1 < t.size() && is_ident(t[j]) && t[j].text != "operator") {
        name = t[j].text;
        if (is(t[j + 1], "::")) {
          j += 2;
          continue;
        }
        break;
      }
      if (name.empty() || j + 1 >= t.size() || !is_ident(t[j]) || !is(t[j + 1], "(")) continue;
      if (fallible) out.fallible.insert(name);
      if (void_ret) void_returning.insert(name);
    }
  }
  for (const std::string& name : out.fallible)
    if (void_returning.count(name) != 0) out.ambiguous.insert(name);
  return out;
}

/// One statement-ish token run: [begin, end) bounded by ; { } at paren depth 0.
struct Run {
  std::size_t begin = 0;
  std::size_t end = 0;
  bool ends_with_semicolon = false;
};

std::vector<Run> split_runs(const std::vector<Token>& t) {
  std::vector<Run> runs;
  std::size_t begin = 0;
  int paren = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (is(t[i], "(") || is(t[i], "[")) ++paren;
    if (is(t[i], ")") || is(t[i], "]")) --paren;
    if (paren > 0) continue;
    if (paren < 0) paren = 0;  // tolerate unbalanced input
    if (is(t[i], ";") || is(t[i], "{") || is(t[i], "}")) {
      if (i > begin) runs.push_back(Run{begin, i, is(t[i], ";")});
      begin = i + 1;
    }
  }
  if (t.size() > begin) runs.push_back(Run{begin, t.size(), false});
  return runs;
}

const std::set<std::string>& statement_keywords() {
  static const std::set<std::string> kSkip = {
      "return", "co_return", "throw",  "delete",   "goto",     "break",
      "continue", "using",   "typedef", "namespace", "friend",  "template",
      "extern",  "static_assert", "public", "private", "protected"};
  return kSkip;
}

void check_discarded_calls(const Scanned& f, const FallibleIndex& index,
                           std::vector<Finding>& findings) {
  const std::vector<Token>& t = f.lexed.tokens;
  for (const Run& run : split_runs(t)) {
    if (!run.ends_with_semicolon) continue;
    std::size_t b = run.begin, e = run.end;

    // Strip labels (case x:, default:, access specifiers are keywords).
    while (b < e && (is(t[b], "case") || is(t[b], "default"))) {
      while (b < e && !is(t[b], ":")) ++b;
      if (b < e) ++b;
    }
    // Strip control-flow heads so `if (c) send(x);` still checks the call.
    while (b < e && (is(t[b], "if") || is(t[b], "while") || is(t[b], "for") ||
                     is(t[b], "switch") || is(t[b], "else") || is(t[b], "do"))) {
      ++b;
      if (b < e && is(t[b], "(")) {
        int depth = 0;
        for (; b < e; ++b) {
          if (is(t[b], "(")) ++depth;
          if (is(t[b], ")") && --depth == 0) break;
        }
        if (b < e) ++b;
      }
    }
    if (b >= e) continue;
    if (statement_keywords().count(t[b].text) != 0) continue;
    // Explicit discard: (void)call(...);
    if (e - b >= 3 && is(t[b], "(") && is(t[b + 1], "void") && is(t[b + 2], ")")) continue;

    // A bare call has no top-level operators; assignments, comparisons,
    // streams, ternaries and declarations all disqualify the run.
    int paren = 0;
    bool expression_like = false;
    for (std::size_t i = b; i < e; ++i) {
      if (is(t[i], "(") || is(t[i], "[")) ++paren;
      if (is(t[i], ")") || is(t[i], "]")) --paren;
      if (paren > 0) continue;
      if (is(t[i], "=") || is(t[i], "<") || is(t[i], ">") || is(t[i], "?") || is(t[i], ":")) {
        expression_like = true;
        break;
      }
    }
    if (expression_like) continue;

    // Shape: ... callee ( args ) ;
    if (e - b < 3 || !is(t[e - 1], ")")) continue;
    int depth = 0;
    std::size_t open = e - 1;
    bool balanced = false;
    for (std::size_t i = e; i-- > b;) {
      if (is(t[i], ")")) ++depth;
      if (is(t[i], "(") && --depth == 0) {
        open = i;
        balanced = true;
        break;
      }
    }
    if (!balanced || open == b) continue;
    const Token& callee = t[open - 1];
    if (!is_ident(callee)) continue;
    // A declaration (`Status listen(...);`) has a type token before the
    // name; a call is preceded by nothing, member access, or a scope.
    if (open >= b + 2) {
      const Token& before = t[open - 2];
      if (!is(before, ".") && !is(before, "->") && !is(before, "::")) continue;
    }
    if (index.fallible.count(callee.text) == 0) continue;
    if (index.ambiguous.count(callee.text) != 0) continue;
    findings.push_back(Finding{f.src->rel_path, callee.line, "r1",
                              "return value of '" + callee.text +
                                  "' (Result/Status) is discarded; handle it or cast to "
                                  "(void) with a comment"});
  }
}

/// What a backwards walk from a `.value()` use learned about its variable.
enum class BaseKind {
  kUnknown,        ///< walked out of scope without meeting a check or a decl
  kChecked,        ///< a dominating ok()-style check was found first
  kResultDecl,     ///< declared Result<T>/Status (or auto = fallible call), unchecked
  kOtherDecl,      ///< declared as some other type (Ema, WireWriter, optional…)
};

/// Backwards dominator/declaration scan from `from` (exclusive). Looks for
/// `X.ok(`, `!X`, or `(X)` — a check — or X's declaration, whichever comes
/// first walking up. Closed sibling scopes (earlier functions, earlier
/// blocks) are skipped wholesale, which makes the search ~function scoped
/// without a symbol table.
BaseKind classify_base(const std::vector<Token>& t, std::size_t from, const std::string& var,
                       const FallibleIndex& index) {
  int closed = 0;
  for (std::size_t i = from; i-- > 0;) {
    if (is(t[i], "}")) {
      ++closed;
      continue;
    }
    if (is(t[i], "{")) {
      if (closed > 0) --closed;
      continue;
    }
    if (closed > 0) continue;  // inside a closed sibling scope
    if (!is_ident(t[i]) || t[i].text != var) continue;

    // Check patterns.
    if (i + 2 < t.size() && is(t[i + 1], ".") && is_ident(t[i + 2]) && t[i + 2].text == "ok")
      return BaseKind::kChecked;
    if (i > 0 && is(t[i - 1], "!")) return BaseKind::kChecked;
    if (i > 0 && i + 1 < t.size() && is(t[i - 1], "(") && is(t[i + 1], ")"))
      return BaseKind::kChecked;

    // Declaration patterns: `Status X`, `Result<...>[&] X`, `auto X = f(...)`.
    if (i == 0) continue;
    std::size_t p = i - 1;
    while (p > 0 && (is(t[p], "&") || is(t[p], "*") || is(t[p], "const"))) --p;
    if (is_ident(t[p]) && t[p].text == "Status") return BaseKind::kResultDecl;
    if (is_ident(t[p]) && t[p].text == "auto") {
      if (i + 1 >= t.size() || !is(t[i + 1], "=")) return BaseKind::kOtherDecl;
      std::string callee;
      for (std::size_t j = i + 2; j < t.size() && !is(t[j], ";"); ++j) {
        if (is(t[j], "(")) break;
        if (is_ident(t[j])) callee = t[j].text;
      }
      return index.fallible.count(callee) != 0 ? BaseKind::kResultDecl : BaseKind::kOtherDecl;
    }
    if (is(t[p], ">")) {
      int depth = 0;
      for (std::size_t j = p + 1; j-- > 0;) {
        if (is(t[j], ">")) ++depth;
        if (is(t[j], "<") && --depth == 0) {
          if (j > 0 && is_ident(t[j - 1]) && t[j - 1].text == "Result")
            return BaseKind::kResultDecl;
          break;
        }
      }
      return BaseKind::kOtherDecl;
    }
    // A plain use (argument, assignment target, …): keep walking up.
  }
  return BaseKind::kUnknown;
}

void check_unchecked_access(const Scanned& f, const FallibleIndex& index,
                            std::vector<Finding>& findings) {
  const std::vector<Token>& t = f.lexed.tokens;
  for (std::size_t i = 2; i + 1 < t.size(); ++i) {
    if (!is_ident(t[i])) continue;
    if (t[i].text != "value" && t[i].text != "error" && t[i].text != "take") continue;
    if (!is(t[i - 1], ".") || !is(t[i + 1], "(")) continue;

    std::size_t base = i - 2;
    std::string var;
    if (is_ident(t[base])) {
      var = t[base].text;  // dominator search starts before the variable use
    } else if (is(t[base], ")")) {
      // Chained call: find the call's opening paren and callee.
      int depth = 0;
      std::size_t open = base;
      for (std::size_t j = base + 1; j-- > 0;) {
        if (is(t[j], ")")) ++depth;
        if (is(t[j], "(") && --depth == 0) {
          open = j;
          break;
        }
      }
      if (open > 0 && is_ident(t[open - 1]) && t[open - 1].text == "move") {
        // `std::move(x).take()` — the sanctioned hand-off; resolve back to x.
        for (std::size_t j = open + 1; j < base; ++j)
          if (is_ident(t[j])) var = t[j].text;  // last identifier inside move(...)
        base = open;
      } else if (open > 0 && is_ident(t[open - 1]) &&
                 index.fallible.count(t[open - 1].text) != 0) {
        findings.push_back(
            Finding{f.src->rel_path, t[i].line, "r1",
                    "'." + t[i].text + "()' directly on fallible '" + t[open - 1].text +
                        "(...)'; bind the Result and check ok() first"});
        continue;
      } else {
        continue;  // chained call on something non-fallible
      }
    } else {
      continue;
    }
    if (var.empty()) continue;
    if (classify_base(t, base, var, index) == BaseKind::kResultDecl)
      findings.push_back(Finding{f.src->rel_path, t[i].line, "r1",
                                "'" + var + "." + t[i].text + "()' without a dominating '" +
                                    var + ".ok()' check in an enclosing scope"});
  }
}

// ---------------------------------------------------------------------------
// r2 — determinism
// ---------------------------------------------------------------------------

void check_determinism(const Scanned& f, std::vector<Finding>& findings) {
  if (f.src->rel_path == "src/common/rng.hpp") return;  // the one sanctioned home
  const std::vector<Token>& t = f.lexed.tokens;
  auto member_access = [&](std::size_t i) {
    return i > 0 && (is(t[i - 1], ".") || is(t[i - 1], "->"));
  };
  // `int rand() const` declares a member that merely shares the name; a
  // call is never preceded directly by a plain (non-keyword) identifier.
  auto declaration_like = [&](std::size_t i) {
    if (i == 0 || !is_ident(t[i - 1])) return false;
    static const std::set<std::string> kExprKeywords = {"return", "co_return", "co_await",
                                                        "throw",  "case",      "else", "do"};
    return kExprKeywords.count(t[i - 1].text) == 0;
  };
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t[i])) continue;
    const std::string& name = t[i].text;
    if (name == "random_device") {
      findings.push_back(Finding{f.src->rel_path, t[i].line, "r2",
                                "std::random_device is nondeterministic; take a seed and use "
                                "harp::Rng (src/common/rng.hpp)"});
      continue;
    }
    if ((name == "rand" || name == "srand") && i + 1 < t.size() && is(t[i + 1], "(") &&
        !member_access(i) && !declaration_like(i)) {
      findings.push_back(Finding{f.src->rel_path, t[i].line, "r2",
                                name + "() breaks seeded reproducibility; use harp::Rng"});
      continue;
    }
    if (name == "time" && i + 2 < t.size() && is(t[i + 1], "(") && !member_access(i) &&
        (is(t[i + 2], "nullptr") || is(t[i + 2], "NULL") || is(t[i + 2], "0"))) {
      findings.push_back(Finding{f.src->rel_path, t[i].line, "r2",
                                "time(nullptr) seeding is nondeterministic; thread a seed "
                                "through harp::Rng"});
      continue;
    }
    if (name == "system_clock" && i + 4 < t.size() && is(t[i + 1], "::") &&
        is_ident(t[i + 2]) && t[i + 2].text == "now" && is(t[i + 3], "(") && is(t[i + 4], ")")) {
      findings.push_back(Finding{f.src->rel_path, t[i].line, "r2",
                                "system_clock::now() is wall-clock; use the caller's "
                                "now_seconds or steady_clock for intervals"});
    }
  }
}

// ---------------------------------------------------------------------------
// r3 — include layering
// ---------------------------------------------------------------------------

void check_layering(const Scanned& f, std::vector<Finding>& findings) {
  std::string mod = module_of(f.src->rel_path);
  if (mod.empty()) return;  // tests/tools/bench/examples may include anything
  auto allowed = layering().find(mod);
  for (const Include& inc : f.lexed.includes) {
    std::string target = module_of(inc.path);
    if (target.empty() || target == mod) continue;
    if (allowed == layering().end()) {
      findings.push_back(Finding{f.src->rel_path, inc.line, "r3",
                                "module '" + mod + "' is not in the layering DAG; add it to "
                                "harp-lint's module map"});
      return;
    }
    if (layering().count(target) == 0) {
      findings.push_back(Finding{f.src->rel_path, inc.line, "r3",
                                "include of unknown module '" + target + "'"});
      continue;
    }
    if (allowed->second.count(target) == 0)
      findings.push_back(Finding{f.src->rel_path, inc.line, "r3",
                                "layering violation: '" + mod + "' may not include '" + target +
                                    "' (allowed: lower layers only)"});
  }
}

// ---------------------------------------------------------------------------
// r4 — MessageType dispatch exhaustiveness
// ---------------------------------------------------------------------------

void check_dispatch(const std::vector<Scanned>& files, const Options& options,
                    std::vector<Finding>& findings) {
  const Scanned* enum_file = nullptr;
  for (const Scanned& f : files)
    if (f.src->rel_path == options.enum_file) enum_file = &f;
  if (enum_file == nullptr) return;  // partial scan: nothing to check against

  // Enumerators of `enum class MessageType { ... }`.
  const std::vector<Token>& t = enum_file->lexed.tokens;
  std::vector<std::pair<std::string, int>> enumerators;
  std::vector<std::string> structs;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (is(t[i], "struct") && is_ident(t[i + 1])) structs.push_back(t[i + 1].text);
    if (!is(t[i], "enum") || !is(t[i + 1], "class")) continue;
    if (i + 2 >= t.size() || t[i + 2].text != "MessageType") continue;
    std::size_t j = i + 3;
    while (j < t.size() && !is(t[j], "{")) ++j;
    bool expect_name = true;
    for (++j; j < t.size() && !is(t[j], "}"); ++j) {
      if (is(t[j], ",")) {
        expect_name = true;
        continue;
      }
      if (expect_name && is_ident(t[j])) {
        enumerators.emplace_back(t[j].text, t[j].line);
        expect_name = false;
      }
    }
  }

  for (const auto& [enumerator, line] : enumerators) {
    // kRegisterRequest → RegisterRequest; kActivate → ActivateMsg.
    std::string base = enumerator.rfind('k', 0) == 0 ? enumerator.substr(1) : enumerator;
    std::string payload;
    for (const std::string& s : structs)
      if (s == base || s == base + "Msg") payload = s;
    if (payload.empty()) {
      findings.push_back(Finding{enum_file->src->rel_path, line, "r4",
                                "MessageType::" + enumerator +
                                    " has no payload struct named '" + base + "' or '" + base +
                                    "Msg'"});
      continue;
    }
    for (const std::string& dispatch : options.dispatch_files) {
      for (const Scanned& f : files) {
        if (f.src->rel_path != dispatch) continue;
        bool mentioned = false;
        for (const Token& tok : f.lexed.tokens)
          if (is_ident(tok) && tok.text == payload) mentioned = true;
        if (!mentioned)
          findings.push_back(Finding{f.src->rel_path, 1, "r4",
                                    "dispatch does not handle MessageType::" + enumerator +
                                        " (payload '" + payload +
                                        "'): every message type must be sent or received "
                                        "here"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// r5 — lock annotations
// ---------------------------------------------------------------------------

bool run_contains(const std::vector<Token>& t, std::size_t b, std::size_t e, const char* text) {
  for (std::size_t i = b; i < e; ++i)
    if (t[i].text == text) return true;
  return false;
}

void check_lock_annotations(const Scanned& f, std::vector<Finding>& findings) {
  const std::vector<Token>& t = f.lexed.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!is(t[i], "struct") && !is(t[i], "class")) continue;
    if (i > 0 && is(t[i - 1], "enum")) continue;
    if (!is_ident(t[i + 1])) continue;
    // Qualified name (struct RmServer::Client), then optional base clause.
    std::size_t j = i + 1;
    std::string name = t[j].text;
    while (j + 2 < t.size() && is(t[j + 1], "::") && is_ident(t[j + 2])) {
      j += 2;
      name = t[j].text;
    }
    std::size_t k = j + 1;
    while (k < t.size() && !is(t[k], "{") && !is(t[k], ";") && !is(t[k], "(")) ++k;
    if (k >= t.size() || !is(t[k], "{")) continue;  // forward declaration etc.

    // Body range at matching depth.
    int depth = 0;
    std::size_t body_begin = k + 1, body_end = k;
    for (std::size_t m = k; m < t.size(); ++m) {
      if (is(t[m], "{")) ++depth;
      if (is(t[m], "}") && --depth == 0) {
        body_end = m;
        break;
      }
    }
    if (body_end <= body_begin) continue;

    // Member runs at depth 1 (nested classes recurse via the outer loop).
    struct Member {
      std::size_t begin, end;
    };
    std::vector<Member> members;
    int paren = 0;
    std::size_t run_begin = body_begin;
    for (std::size_t m = body_begin; m < body_end; ++m) {
      if (is(t[m], "(") || is(t[m], "[")) ++paren;
      if (is(t[m], ")") || is(t[m], "]")) --paren;
      if (paren > 0) continue;  // braces inside parens are default args etc.
      if (paren < 0) paren = 0;
      if (is(t[m], "{")) {
        // Initializer brace (`= {...}`, `x{0}`) keeps the run alive; a
        // method/ctor body (preceded by `)` etc.) discards it. Either way
        // skip to the matching close; nested classes are visited by the
        // outer struct/class loop on their own.
        bool initializer = m > body_begin && (is(t[m - 1], "=") || is_ident(t[m - 1]) ||
                                              is(t[m - 1], ">"));
        int depth_b = 0;
        for (; m < body_end; ++m) {
          if (is(t[m], "{")) ++depth_b;
          if (is(t[m], "}") && --depth_b == 0) break;
        }
        if (!initializer) run_begin = m + 1;
        continue;
      }
      // `public:` / `private:` / `protected:` starts a fresh run so the
      // first member after a specifier is still seen as a plain member.
      if ((is(t[m], "public") || is(t[m], "private") || is(t[m], "protected")) &&
          m + 1 < body_end && is(t[m + 1], ":")) {
        ++m;
        run_begin = m + 1;
        continue;
      }
      if (is(t[m], ";")) {
        if (m > run_begin) members.push_back(Member{run_begin, m});
        run_begin = m + 1;
      }
    }

    auto is_variable_member = [&](const Member& member) {
      static const std::set<std::string> kSkipTokens = {
          "static", "constexpr", "using",  "typedef", "friend", "template",
          "struct", "class",     "enum",   "operator", "atomic", "public",
          "private", "protected", "explicit", "virtual"};
      int ann_paren = 0;
      for (std::size_t m = member.begin; m < member.end; ++m) {
        if (kSkipTokens.count(t[m].text) != 0) return false;
        if (is_ident(t[m]) && t[m].text.rfind("HARP_", 0) == 0 && m + 1 < member.end &&
            is(t[m + 1], "(")) {
          // Skip the annotation's argument list.
          ++m;
          int depth_a = 0;
          for (; m < member.end; ++m) {
            if (is(t[m], "(")) ++depth_a;
            if (is(t[m], ")") && --depth_a == 0) break;
          }
          continue;
        }
        if (is(t[m], "(")) return false;  // function declaration
        (void)ann_paren;
      }
      return true;
    };
    auto is_mutex_member = [&](const Member& member) {
      for (std::size_t m = member.begin; m < member.end; ++m) {
        if (is_ident(t[m]) &&
            (t[m].text == "Mutex" || t[m].text == "mutex" || t[m].text == "recursive_mutex" ||
             t[m].text == "shared_mutex" || t[m].text == "timed_mutex") &&
            m + 1 < member.end && is_ident(t[m + 1]))
          return true;
      }
      return false;
    };

    bool has_mutex = false;
    for (const Member& member : members)
      if (is_variable_member(member) && is_mutex_member(member)) has_mutex = true;
    if (!has_mutex) continue;

    for (const Member& member : members) {
      if (!is_variable_member(member) || is_mutex_member(member)) continue;
      if (run_contains(t, member.begin, member.end, "HARP_GUARDED_BY") ||
          run_contains(t, member.begin, member.end, "HARP_PT_GUARDED_BY"))
        continue;
      // Top-level `const` members (`const T x_`, `T* const x_`) are
      // immutable after construction and need no lock — the same exemption
      // r8 applies (lockset.cpp). `const` inside template arguments or on a
      // pointee does not make the member itself immutable.
      std::size_t name_tok = member.begin;
      for (std::size_t m = member.begin; m < member.end; ++m) {
        if (is(t[m], "=") || is(t[m], "{")) break;
        if (is_ident(t[m])) name_tok = m;
      }
      if (is(t[member.begin], "const") ||
          (name_tok > member.begin && is(t[name_tok - 1], "const")))
        continue;
      // Member name for the message: last identifier before any initializer.
      std::string member_name;
      for (std::size_t m = member.begin; m < member.end; ++m) {
        if (is(t[m], "=") || is(t[m], "{")) break;
        if (is_ident(t[m])) member_name = t[m].text;
      }
      findings.push_back(Finding{f.src->rel_path, t[member.begin].line, "r5",
                                "member '" + member_name + "' of mutex-holding " + name +
                                    " lacks HARP_GUARDED_BY (see "
                                    "src/common/thread_annotations.hpp)"});
    }
  }
}

// ---------------------------------------------------------------------------
// r6 — hot-path allocations
// ---------------------------------------------------------------------------

/// Opt-in rule: a file carrying a comment that BEGINS with the hot-path
/// marker (`// harp-lint: hot-path ...`) promises its loops are
/// allocation-free. The check flags std::vector / std::string *construction*
/// inside loop heads and braced loop bodies — declarations and temporaries,
/// not references, pointers, or template arguments. Heuristics:
/// single-statement (unbraced) loop bodies are not tracked, and a vector
/// declared in a for-init clause (constructed once, not per iteration) is
/// still flagged; hoist it above the loop or take a reference. The
/// begins-with requirement keeps prose that merely *mentions* the marker
/// (like this comment) from opting its file in.
void check_hot_path_allocations(const Scanned& f, std::vector<Finding>& findings) {
  static const std::string kMarker = "harp-lint: hot-path";
  bool annotated = false;
  for (const Comment& comment : f.lexed.comments) {
    std::size_t start = comment.text.find_first_not_of(" \t");
    if (start != std::string::npos && comment.text.compare(start, kMarker.size(), kMarker) == 0)
      annotated = true;
  }
  if (!annotated) return;

  const std::vector<Token>& t = f.lexed.tokens;

  // Pass 1: mark loop-head token ranges and the braces that open loop bodies.
  std::vector<char> in_loop_head(t.size(), 0);
  std::vector<char> opens_loop_body(t.size(), 0);
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t[i])) continue;
    bool head_loop = t[i].text == "for" || t[i].text == "while";
    bool do_loop = t[i].text == "do";
    if (!head_loop && !do_loop) continue;
    std::size_t j = i + 1;
    if (head_loop) {
      if (j >= t.size() || !is(t[j], "(")) continue;  // `while` member etc.
      int depth = 0;
      for (; j < t.size(); ++j) {
        if (is(t[j], "(")) ++depth;
        if (is(t[j], ")") && --depth == 0) break;
        if (depth > 0) in_loop_head[j] = 1;
      }
      ++j;  // past ')'
    }
    if (j < t.size() && is(t[j], "{")) opens_loop_body[j] = 1;
  }

  // Pass 2: walk braces, flagging constructions while inside a loop body or
  // a loop head. A stack of brace kinds keeps nested non-loop scopes (ifs,
  // lambdas) inside a loop counted as loop context once the loop is entered.
  std::vector<char> brace_kinds;
  int loop_depth = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (is(t[i], "{")) {
      char kind = opens_loop_body[i] != 0 || loop_depth > 0 ? 1 : 0;
      brace_kinds.push_back(kind);
      loop_depth += kind;
      continue;
    }
    if (is(t[i], "}")) {
      if (!brace_kinds.empty()) {
        loop_depth -= brace_kinds.back();
        brace_kinds.pop_back();
      }
      continue;
    }
    if (loop_depth == 0 && in_loop_head[i] == 0) continue;
    if (!is_ident(t[i])) continue;

    if (t[i].text == "vector" && i + 1 < t.size() && is(t[i + 1], "<")) {
      // Find the matching '>' of the template argument list.
      int depth = 0;
      std::size_t close = i + 1;
      bool balanced = false;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        if (is(t[j], "<")) ++depth;
        if (is(t[j], ">") && --depth == 0) {
          close = j;
          balanced = true;
          break;
        }
      }
      if (!balanced || close + 1 >= t.size()) continue;
      const Token& after = t[close + 1];
      // Construction: a declared name, a ( or { temporary. References,
      // pointers, nested template arguments (>, ,) and scope uses are fine.
      if (is_ident(after) || is(after, "(") || is(after, "{"))
        findings.push_back(Finding{f.src->rel_path, t[i].line, "r6",
                                  "std::vector constructed inside a loop in a hot-path file; "
                                  "hoist the buffer and clear()/assign() it instead"});
      continue;
    }
    if (t[i].text == "string" && i + 1 < t.size()) {
      const Token& after = t[i + 1];
      if (is_ident(after) || is(after, "(") || is(after, "{"))
        findings.push_back(Finding{f.src->rel_path, t[i].line, "r6",
                                  "std::string constructed inside a loop in a hot-path file; "
                                  "hoist it, use string_view, or build outside the loop"});
    }
  }
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

struct Allow {
  int line = 1;
  std::string rule;
  bool has_reason = false;
};

std::vector<Allow> parse_allows(const Scanned& f, std::vector<Finding>& findings) {
  std::vector<Allow> allows;
  for (const Comment& comment : f.lexed.comments) {
    // Directive comments BEGIN with the marker (same rule as r6's hot-path
    // opt-in): prose that merely quotes `harp-lint: allow(...)` mid-sentence
    // — documentation, this very comment — is not a directive.
    std::size_t start = comment.text.find_first_not_of(" \t");
    if (start == std::string::npos ||
        comment.text.compare(start, 10, "harp-lint:") != 0)
      continue;
    std::size_t marker = start;
    std::size_t open = comment.text.find("allow(", marker);
    if (open == std::string::npos) {
      // `harp-lint: hot-path` is a file annotation consumed by r6, not a
      // suppression; everything else after the marker must be an allow().
      if (comment.text.find("hot-path", marker) != std::string::npos) continue;
      findings.push_back(Finding{f.src->rel_path, comment.line, "allow",
                                "malformed harp-lint directive; expected "
                                "'harp-lint: allow(<rule-id> <reason>)'"});
      continue;
    }
    std::size_t close = comment.text.find(')', open);
    std::string body = comment.text.substr(
        open + 6, close == std::string::npos ? std::string::npos : close - open - 6);
    std::size_t space = body.find(' ');
    std::string rule = body.substr(0, space);
    std::string reason = space == std::string::npos ? "" : body.substr(space + 1);
    reason.erase(0, reason.find_first_not_of(' '));
    if (rule.empty() || reason.empty()) {
      findings.push_back(Finding{f.src->rel_path, comment.line, "allow",
                                "suppression needs a mandatory reason: 'harp-lint: "
                                "allow(" + (rule.empty() ? "<rule-id>" : rule) + " <reason>)'"});
      continue;
    }
    allows.push_back(Allow{comment.line, rule, true});
  }
  return allows;
}

}  // namespace

std::string format(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": " + finding.rule + " " +
         finding.message;
}

namespace {

/// Minimal JSON string escaping (the linter deliberately stays off src/json
/// — its only src/ dependency is the leaf parallel_for pool — so the rules
/// can never be broken by the serialization code they lint).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string format_json(const std::vector<Finding>& findings) {
  std::string out = "[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += "  {\"file\": \"" + json_escape(f.file) + "\", \"line\": " + std::to_string(f.line) +
           ", \"rule\": \"" + json_escape(f.rule) + "\", \"message\": \"" +
           json_escape(f.message) + "\", \"path\": [";
    for (std::size_t p = 0; p < f.path.size(); ++p) {
      if (p != 0) out += ", ";
      out += "\"" + json_escape(f.path[p]) + "\"";
    }
    out += "], \"cycle\": [";
    for (std::size_t c = 0; c < f.cycle.size(); ++c) {
      if (c != 0) out += ", ";
      out += "{\"mutex\": \"" + json_escape(f.cycle[c].mutex) + "\", \"file\": \"" +
             json_escape(f.cycle[c].file) + "\", \"line\": " + std::to_string(f.cycle[c].line) +
             "}";
    }
    out += "]}";
  }
  out += findings.empty() ? "]\n" : "\n]\n";
  return out;
}

namespace {

/// Scan-phase kernel: lex files [begin, end) into their slots. Output is
/// indexed by file position, so the result is identical for any lane count.
void lex_kernel(void* ctx, std::size_t begin, std::size_t end, int /*lane*/) {
  auto* scans = static_cast<std::vector<Scanned>*>(ctx);
  for (std::size_t i = begin; i < end; ++i)
    (*scans)[i].lexed = lex((*scans)[i].src->text);
}

}  // namespace

std::vector<Finding> run(const std::vector<SourceFile>& files, const Options& options) {
  std::vector<Scanned> scans(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) scans[i].src = &files[i];
  // Data-parallel scan phase: one block of files per lane slot. Lane count is
  // capped by the block count so small inputs (the fixture suites drive run()
  // hundreds of times) stay on the caller thread with zero pool setup.
  std::size_t blocks =
      (files.size() + harp::ParallelFor::kBlock - 1) / harp::ParallelFor::kBlock;
  unsigned hw = std::thread::hardware_concurrency();
  int lanes = static_cast<int>(
      std::min({blocks, static_cast<std::size_t>(8), static_cast<std::size_t>(hw > 0 ? hw : 1)}));
  harp::ParallelFor pool(std::max(1, lanes));
  pool.run(files.size(), lex_kernel, &scans);

  auto enabled = [&](const char* rule) {
    if (options.rules.empty()) return true;
    return std::find(options.rules.begin(), options.rules.end(), rule) != options.rules.end();
  };

  std::vector<Finding> findings;
  if (enabled("r1")) {
    FallibleIndex index = collect_fallible(scans);
    for (const Scanned& f : scans) {
      check_discarded_calls(f, index, findings);
      check_unchecked_access(f, index, findings);
    }
  }
  if (enabled("r2"))
    for (const Scanned& f : scans) check_determinism(f, findings);
  if (enabled("r3"))
    for (const Scanned& f : scans) check_layering(f, findings);
  if (enabled("r4")) check_dispatch(scans, options, findings);
  if (enabled("r5"))
    for (const Scanned& f : scans) check_lock_annotations(f, findings);
  if (enabled("r6"))
    for (const Scanned& f : scans) check_hot_path_allocations(f, findings);
  if (enabled("r7") || enabled("r8")) {
    std::vector<LockUnit> units;
    units.reserve(scans.size());
    for (const Scanned& f : scans) units.push_back(LockUnit{f.src, &f.lexed});
    check_locksets(units, enabled("r7"), enabled("r8"), findings);
  }
  if (enabled("r9") || enabled("r10") || enabled("r11") || enabled("r12")) {
    std::vector<CgUnit> units;
    units.reserve(scans.size());
    for (const Scanned& f : scans) units.push_back(CgUnit{f.src, &f.lexed});
    CallGraph cg = build_call_graph(units);
    if (enabled("r9") || enabled("r10"))
      check_determinism_taint(cg, units, enabled("r9"), enabled("r10"), findings);
    if (enabled("r11") || enabled("r12"))
      check_lock_order(cg, units, enabled("r11"), enabled("r12"), findings);
  }

  // Apply suppressions: an allow on the finding's line or the line above.
  // Malformed directives surface as findings of rule "allow" themselves.
  std::map<std::string, std::vector<Allow>> allow_table;
  for (const Scanned& f : scans) allow_table[f.src->rel_path] = parse_allows(f, findings);
  std::map<std::string, std::vector<bool>> allow_used;
  for (const auto& [file, allows] : allow_table)
    allow_used[file].assign(allows.size(), false);
  std::vector<Finding> kept;
  for (const Finding& finding : findings) {
    bool suppressed = false;
    auto it = allow_table.find(finding.file);
    if (it != allow_table.end() && finding.rule != "allow") {
      for (std::size_t a = 0; a < it->second.size(); ++a) {
        const Allow& allow = it->second[a];
        if (allow.rule != finding.rule && allow.rule != "all") continue;
        if (allow.line == finding.line || allow.line == finding.line - 1) {
          suppressed = true;
          allow_used[finding.file][a] = true;
        }
      }
    }
    if (!suppressed) kept.push_back(finding);
  }

  // Audit: an allow() whose rule ran but which silenced nothing is stale —
  // the code it excused was fixed or moved, and a drifting suppression would
  // silently swallow the next real finding at that line.
  if (options.audit_suppressions) {
    auto rule_enabled = [&](const std::string& rule) {
      if (rule == "all" || options.rules.empty()) return true;
      return std::find(options.rules.begin(), options.rules.end(), rule) !=
             options.rules.end();
    };
    for (const auto& [file, allows] : allow_table) {
      for (std::size_t a = 0; a < allows.size(); ++a) {
        if (allow_used[file][a] || !rule_enabled(allows[a].rule)) continue;
        kept.push_back(Finding{file, allows[a].line, "allow",
                               "stale suppression: allow(" + allows[a].rule +
                                   ") matches no current finding; remove it"});
      }
    }
  }

  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  kept.erase(std::unique(kept.begin(), kept.end(),
                         [](const Finding& a, const Finding& b) {
                           return a.file == b.file && a.line == b.line && a.rule == b.rule &&
                                  a.message == b.message;
                         }),
             kept.end());
  return kept;
}

}  // namespace harp::lint
