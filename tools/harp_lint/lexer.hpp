// Minimal C++ lexer for harp-lint. Produces a flat token stream (identifiers,
// numbers, literals, punctuation) plus the side channels the rules need:
// comments (carrying suppression directives and fixture `expect:`
// annotations) and quoted #include directives (for the layering rule).
//
// Deliberately not a full C++ lexer: preprocessor conditionals are not
// evaluated (all branches are scanned), digraphs/trigraphs are ignored, and
// numeric literals are lexed loosely. harp-lint's rules are token-pattern
// heuristics validated by fixtures, not a compiler front end.
#pragma once

#include <string>
#include <vector>

namespace harp::lint {

enum class TokKind { kIdent, kNumber, kString, kPunct };

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 1;
};

struct Comment {
  int line = 1;
  std::string text;  ///< body without the // or /* */ markers
};

struct Include {
  int line = 1;
  std::string path;  ///< quoted form only ("..."); angle includes are skipped
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<Include> includes;
};

/// Tokenise one translation unit. Never fails: unrecognised bytes become
/// single-character punctuation tokens.
LexedFile lex(const std::string& text);

}  // namespace harp::lint
