// harp-lint rule engine: HARP-specific static analysis over the lexer's
// token streams.
//
// Rules (see DESIGN.md "Static analysis & invariants" for rationale):
//   r1  unchecked-result   Result<T>/Status return discarded, or
//                          .value()/.error()/.take() without a dominating
//                          ok() check in an enclosing scope.
//   r2  determinism        std::random_device / rand() / srand() /
//                          time(nullptr) / system_clock::now() outside
//                          src/common/rng.hpp.
//   r3  layering           #include "src/<module>/..." that violates the
//                          module dependency DAG.
//   r4  dispatch           a MessageType enumerator whose payload struct is
//                          never mentioned in an RM/client dispatch file.
//   r5  lock-annotations   a data member of a mutex-holding class without
//                          HARP_GUARDED_BY / HARP_PT_GUARDED_BY.
//   r6  hot-path-alloc     std::vector/std::string construction inside a
//                          loop, in files annotated `// harp-lint: hot-path`
//                          (opt-in; the allocator and resource-vector inner
//                          loops promise to be allocation-free).
//   r7  guarded-access      flow-sensitive lockset check: a
//                          HARP_GUARDED_BY(m) field accessed, or a
//                          HARP_REQUIRES(m) method called, on a CFG path
//                          where m is not held (cfg.hpp + lockset.hpp).
//   r8  guard-coverage      a field of a harp::Mutex-owning class without
//                          HARP_GUARDED_BY (annotate-or-suppress; atomics and
//                          const members exempt), or a guard annotation whose
//                          argument names no declared mutex member.
//   r9  nondet-taint        interprocedural: a determinism sink (telemetry
//                          event emission, json::dump/save_file, the solver
//                          fingerprint, bench report writers) reachable from
//                          a nondeterminism source (wall clock, rand/
//                          random_device, getenv, pointer-to-integer casts,
//                          pointer hashing, order-sensitive unordered-
//                          container iteration) over the whole-tree call
//                          graph; the message carries the full
//                          source → call-chain → sink path (callgraph.hpp +
//                          taint.hpp).
//   r10 iteration-order     a range-for over std::unordered_map/set whose
//                          body emits to a sink or accumulates
//                          non-commutatively (push_back/append, string or
//                          float +=, stream insertion); collect-then-sort
//                          is the sanctioned pattern.
//   r11 lock-order          interprocedural: "lock A held while acquiring
//                          lock B" edges collected from every function's
//                          lockset dataflow (member mutexes resolved to
//                          Class::field identities, callee acquisitions
//                          propagated over the whole-tree call graph), then
//                          cycle detection on the global order graph; the
//                          message carries the full acquisition path
//                          (mutex @ file:line -> ...) and the finding's
//                          `cycle` field the structured hops
//                          (lockorder.hpp).
//   r12 blocking-under-lock a blocking operation on a CFG path where a lock
//                          is held: transport calls (send/recv/poll/accept/
//                          connect), sleeps, blocking syscalls (epoll_wait,
//                          select), condition-variable waits on *other*
//                          mutexes, and ParallelFor dispatch. Sanctioned
//                          nonblocking sites (the PR 8 event-loop transport
//                          invariant) carry reasoned allow(r12 ...) comments.
//   allow                  malformed suppression (missing mandatory reason),
//                          or — under audit_suppressions — a stale allow()
//                          that no longer matches any finding.
//
// Suppressions: `// harp-lint: allow(<rule-id> <reason>)` on the finding's
// line or the line directly above it. The reason is mandatory.
// `// harp-lint: hot-path` anywhere in a file opts that file into r6.
#pragma once

#include <string>
#include <vector>

namespace harp::lint {

/// One hop of an r11 lock-order cycle: a mutex identity and the acquisition
/// site where it is taken while the previous hop's mutex is held.
struct CycleHop {
  std::string mutex;
  std::string file;
  int line = 1;
};

struct Finding {
  std::string file;
  int line = 1;
  std::string rule;
  std::string message;
  /// r9 only: the qualified-function call chain from the reporting function
  /// to the source-containing function, for machine-readable output. The
  /// default member initializer keeps four-field aggregate initialization
  /// (used throughout the rule implementations) warning-free.
  std::vector<std::string> path = {};
  /// r11 only: the ordered acquisition hops of the reported cycle, closed
  /// (the first hop is repeated at the end). Empty for every other rule.
  std::vector<CycleHop> cycle = {};
};

/// One input translation unit. `rel_path` is the repo-relative path with
/// forward slashes; the layering and determinism rules key off it, which is
/// also how the fixture suite fakes module placement.
struct SourceFile {
  std::string rel_path;
  std::string text;
};

struct Options {
  /// Rule ids to run; empty = all rules.
  std::vector<std::string> rules;
  /// File whose `enum class MessageType` drives the dispatch rule. The rule
  /// is skipped unless this file is part of the scanned set.
  std::string enum_file = "src/ipc/messages.hpp";
  /// Files whose token streams must mention every payload struct.
  std::vector<std::string> dispatch_files = {"src/harp/rm_server.cpp",
                                             "src/libharp/client.cpp"};
  /// Report `allow()` directives that suppressed nothing (rule "allow").
  /// Only allows whose rule is enabled in this run are audited, so partial
  /// runs never flag suppressions for rules they did not execute.
  bool audit_suppressions = false;
};

/// Run all requested rules over the file set, apply suppressions, and return
/// findings sorted by (file, line, rule).
std::vector<Finding> run(const std::vector<SourceFile>& files, const Options& options = {});

/// `file:line: rule-id message` — the one-line diagnostic format.
std::string format(const Finding& finding);

/// Stable machine-readable form: a JSON array of
/// `{"file","line","rule","message","path","cycle"}` objects in the engine's
/// sorted finding order, so CI artifacts diff cleanly across runs. `cycle`
/// is the r11 hop list (`{"mutex","file","line"}` objects, closed); an empty
/// array for every other rule — additive, so consumers of the pre-r11 schema
/// keep parsing.
std::string format_json(const std::vector<Finding>& findings);

}  // namespace harp::lint
