#include "tools/harp_lint/lexer.hpp"

#include <cctype>

namespace harp::lint {

namespace {

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  LexedFile run() {
    while (pos_ < text_.size()) step();
    return std::move(out_);
  }

 private:
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }

  char advance() {
    char c = text_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  void push(TokKind kind, std::string text, int line) {
    out_.tokens.push_back(Token{kind, std::move(text), line});
  }

  void step() {
    char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
      return;
    }
    if (at_line_splice()) {
      skip_line_splice();
      return;
    }
    if (c == '/' && peek(1) == '/') return line_comment();
    if (c == '/' && peek(1) == '*') return block_comment();
    if (c == '#' && at_line_start()) return directive();
    if (c == '"') return string_literal();
    if (c == '\'') return char_literal();
    if (c == 'R' && peek(1) == '"') return raw_string();
    if (ident_start(c)) return identifier();
    if (std::isdigit(static_cast<unsigned char>(c))) return number();
    punct();
  }

  /// `\` immediately followed by a newline (optionally `\r\n`): a line
  /// splice. The standard joins the physical lines before tokenisation, so
  /// an identifier or literal split across a splice is one token.
  bool at_line_splice() const {
    if (peek() != '\\') return false;
    return peek(1) == '\n' || (peek(1) == '\r' && peek(2) == '\n');
  }

  void skip_line_splice() {
    advance();                     // backslash
    if (peek() == '\r') advance();  // CR of a CRLF splice
    advance();                     // newline
  }

  bool at_line_start() const {
    std::size_t i = pos_;
    while (i > 0) {
      char c = text_[i - 1];
      if (c == '\n') return true;
      if (c != ' ' && c != '\t') return false;
      --i;
    }
    return true;
  }

  void line_comment() {
    int line = line_;
    advance();
    advance();
    std::string body;
    while (pos_ < text_.size() && peek() != '\n') body += advance();
    out_.comments.push_back(Comment{line, body});
  }

  void block_comment() {
    int line = line_;
    advance();
    advance();
    std::string body;
    while (pos_ < text_.size() && !(peek() == '*' && peek(1) == '/')) body += advance();
    if (pos_ < text_.size()) {
      advance();
      advance();
    }
    out_.comments.push_back(Comment{line, body});
  }

  /// Preprocessor line: consumed to end of line (honouring \-continuations).
  /// Quoted #include paths are recorded; everything else is dropped.
  void directive() {
    int line = line_;
    std::string body;
    while (pos_ < text_.size()) {
      if (peek() == '\\' && peek(1) == '\n') {
        advance();
        advance();
        continue;
      }
      if (peek() == '\n') break;
      if (peek() == '/' && peek(1) == '/') {
        line_comment();
        break;
      }
      body += advance();
    }
    std::size_t kw = body.find("include");
    if (kw != std::string::npos) {
      std::size_t open = body.find('"', kw);
      if (open != std::string::npos) {
        std::size_t close = body.find('"', open + 1);
        if (close != std::string::npos)
          out_.includes.push_back(Include{line, body.substr(open + 1, close - open - 1)});
      }
    }
  }

  void string_literal() {
    int line = line_;
    advance();
    std::string body;
    while (pos_ < text_.size() && peek() != '"') {
      if (peek() == '\\' && pos_ + 1 < text_.size()) body += advance();
      body += advance();
    }
    if (pos_ < text_.size()) advance();
    push(TokKind::kString, std::move(body), line);
  }

  void char_literal() {
    int line = line_;
    advance();
    std::string body;
    while (pos_ < text_.size() && peek() != '\'') {
      if (peek() == '\\' && pos_ + 1 < text_.size()) body += advance();
      body += advance();
    }
    if (pos_ < text_.size()) advance();
    push(TokKind::kString, std::move(body), line);
  }

  void raw_string() {
    int line = line_;
    advance();  // R
    advance();  // "
    std::string delim;
    while (pos_ < text_.size() && peek() != '(') delim += advance();
    if (pos_ < text_.size()) advance();  // (
    std::string terminator = ")" + delim + "\"";
    std::string body;
    while (pos_ < text_.size() && text_.compare(pos_, terminator.size(), terminator) != 0)
      body += advance();
    for (std::size_t i = 0; i < terminator.size() && pos_ < text_.size(); ++i) advance();
    push(TokKind::kString, std::move(body), line);
  }

  void identifier() {
    int line = line_;
    std::string name;
    while (pos_ < text_.size()) {
      if (at_line_splice()) {  // `foo\<newline>bar` is one identifier
        skip_line_splice();
        continue;
      }
      if (!ident_char(peek())) break;
      name += advance();
    }
    push(TokKind::kIdent, std::move(name), line);
  }

  void number() {
    int line = line_;
    std::string body;
    while (pos_ < text_.size()) {
      if (at_line_splice()) {
        skip_line_splice();
        continue;
      }
      // `'` between digit-ish characters is a C++14 digit separator
      // (1'000'000), not the start of a char literal.
      if (peek() == '\'' && ident_char(peek(1))) {
        advance();
        continue;
      }
      if (!(ident_char(peek()) || peek() == '.' ||
            ((peek() == '+' || peek() == '-') &&
             (body.ends_with("e") || body.ends_with("E") || body.ends_with("p") ||
              body.ends_with("P")))))
        break;
      body += advance();
    }
    push(TokKind::kNumber, std::move(body), line);
  }

  /// Punctuation: `::` and `->` are kept as single tokens (the rules match on
  /// member access and scope resolution); everything else is one char.
  void punct() {
    int line = line_;
    char c = advance();
    if (c == ':' && peek() == ':') {
      advance();
      push(TokKind::kPunct, "::", line);
      return;
    }
    if (c == '-' && peek() == '>') {
      advance();
      push(TokKind::kPunct, "->", line);
      return;
    }
    push(TokKind::kPunct, std::string(1, c), line);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  LexedFile out_;
};

}  // namespace

LexedFile lex(const std::string& text) { return Lexer(text).run(); }

}  // namespace harp::lint
