// Flow-sensitive lockset verification for harp-lint (rules r7 and r8).
//
//   r7  guarded-access    a read/write of a HARP_GUARDED_BY(m) field, or a
//                         call to a HARP_REQUIRES(m) method, on a CFG path
//                         where m is not in the computed lockset.
//   r8  guard-coverage    a field of a class that owns a harp::Mutex with no
//                         HARP_GUARDED_BY annotation (annotate-or-suppress;
//                         std::atomic and const members are exempt), or a
//                         HARP_GUARDED_BY whose argument names no declared
//                         mutex member (dangling guard).
//
// The analysis is a classic forward dataflow over the per-function CFG from
// cfg.hpp: the lattice is sets of normalised lock expressions ordered by
// superset, meet at joins is set intersection, unreachable blocks start at
// TOP (every lock held, so dead code never reports). The entry lockset is
// seeded from the function's own HARP_REQUIRES annotations. Transfer
// functions: RAII guard declarations and their synthetic scope-exit releases
// (computed by the CFG builder), plus explicit `expr.lock()`/`expr.unlock()`
// calls. Known limitations (see DESIGN.md): lock expressions are compared
// syntactically after `this->` stripping (no aliasing), accesses through
// another object (`other.field_`) are skipped, and interprocedural depth is
// exactly the HARP_REQUIRES contracts — an unannotated helper that locks
// internally is invisible.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/harp_lint/lexer.hpp"
#include "tools/harp_lint/lint.hpp"

namespace harp::lint {

/// One scanned translation unit, as lint.cpp already holds them.
struct LockUnit {
  const SourceFile* src = nullptr;
  const LexedFile* lexed = nullptr;
};

/// Class name → declared lockable member names (harp::Mutex plus the std
/// lockables), collected over the whole scanned set. Shared with the
/// lock-order pass (lockorder.hpp), which resolves lock expressions to
/// `Class::member` identities through this table.
std::map<std::string, std::set<std::string>> collect_mutex_members(
    const std::vector<LockUnit>& units);

/// "Class::method" → locks its HARP_REQUIRES contract names, collected from
/// declarations and definitions over the whole scanned set. Shared with the
/// lock-order pass, which seeds entry locksets from it the way r7 does.
std::map<std::string, std::vector<std::string>> collect_requires_index(
    const std::vector<LockUnit>& units);

/// Run the r7/r8 passes over the whole scanned set (class field tables and
/// HARP_REQUIRES contracts are collected globally so out-of-line methods see
/// the fields their header declares) and append findings.
void check_locksets(const std::vector<LockUnit>& units, bool enable_r7, bool enable_r8,
                    std::vector<Finding>& findings);

}  // namespace harp::lint
