// r11/r12 interprocedural deadlock passes (see lockorder.hpp for the design).
#include "tools/harp_lint/lockorder.hpp"

#include <algorithm>
#include <cctype>
#include <deque>
#include <map>
#include <set>
#include <string>

#include "tools/harp_lint/cfg.hpp"
#include "tools/harp_lint/lockset.hpp"

namespace harp::lint {
namespace {

bool is(const Token& t, const char* text) { return t.text == text; }
bool is_ident(const Token& t) { return t.kind == TokKind::kIdent; }

bool identifier_shaped(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s)
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) return false;
  return !std::isdigit(static_cast<unsigned char>(s[0]));
}

// ---------------------------------------------------------------------------
// Mutex identity resolution
// ---------------------------------------------------------------------------

/// Resolves normalised lock expressions to `Class::member` identities through
/// the whole-tree mutex-member table (lockset.hpp).
struct IdentityTable {
  std::map<std::string, std::set<std::string>> members;   ///< class → members
  std::map<std::string, std::vector<std::string>> owners;  ///< member → classes

  explicit IdentityTable(std::map<std::string, std::set<std::string>> table)
      : members(std::move(table)) {
    for (const auto& [cls, names] : members)
      for (const std::string& name : names) owners[name].push_back(cls);
  }

  std::string resolve(const std::string& expr, const std::string& enclosing_class) const {
    // Bare member of the enclosing class (`mutex_`, `this->` already
    // stripped by normalisation).
    if (identifier_shaped(expr)) {
      auto cls = members.find(enclosing_class);
      if (cls != members.end() && cls->second.count(expr) != 0)
        return enclosing_class + "::" + expr;
      return expr;
    }
    // `obj->field` / `obj.field`: the trailing member, resolved when exactly
    // one scanned class declares a lockable member of that name — the same
    // unique-bare-name pragmatism the call graph applies to member calls.
    std::size_t arrow = expr.rfind("->");
    std::size_t dot = expr.rfind('.');
    std::size_t cut = std::string::npos;
    std::size_t skip = 0;
    if (arrow != std::string::npos && (dot == std::string::npos || arrow > dot)) {
      cut = arrow;
      skip = 2;
    } else if (dot != std::string::npos) {
      cut = dot;
      skip = 1;
    }
    if (cut != std::string::npos) {
      std::string field = expr.substr(cut + skip);
      if (identifier_shaped(field)) {
        auto owner = owners.find(field);
        if (owner != owners.end() && owner->second.size() == 1)
          return owner->second.front() + "::" + field;
      }
    }
    return expr;
  }
};

// ---------------------------------------------------------------------------
// Lockset dataflow (mirrors lockset.cpp's r7 lattice)
// ---------------------------------------------------------------------------

/// TOP (unreachable: every lock held) or an explicit held set of normalised
/// lock expressions (identities are resolved only at the graph boundary, so
/// `unlock()` by spelling keeps working).
struct Lockset {
  bool top = true;
  std::set<std::string> held;
};

bool operator==(const Lockset& a, const Lockset& b) {
  return a.top == b.top && a.held == b.held;
}

Lockset meet(const Lockset& a, const Lockset& b) {
  if (a.top) return b;
  if (b.top) return a;
  Lockset out;
  out.top = false;
  std::set_intersection(a.held.begin(), a.held.end(), b.held.begin(), b.held.end(),
                        std::inserter(out.held, out.held.begin()));
  return out;
}

std::vector<std::string> split_locks(const std::string& comma_joined) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= comma_joined.size()) {
    std::size_t comma = comma_joined.find(',', begin);
    std::string one = comma_joined.substr(
        begin, comma == std::string::npos ? std::string::npos : comma - begin);
    if (!one.empty()) out.push_back(one);
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return out;
}

/// Explicit `base.lock()` / `base.unlock()` inside a statement's token range:
/// the normalised base expression, or "" when token i is neither.
std::string explicit_lock_base(const std::vector<Token>& t, const CfgStmt& s, std::size_t i,
                               bool* locks) {
  if (!is_ident(t[i])) return "";
  bool lock_call = t[i].text == "lock";
  bool unlock_call = t[i].text == "unlock";
  if (!lock_call && !unlock_call) return "";
  if (i <= s.begin || (!is(t[i - 1], ".") && !is(t[i - 1], "->"))) return "";
  if (i + 1 >= s.end || !is(t[i + 1], "(")) return "";
  std::size_t start = i - 1;
  while (start > s.begin) {
    const Token& prev = t[start - 1];
    if (is_ident(prev) || is(prev, "::") || is(prev, ".") || is(prev, "->"))
      --start;
    else
      break;
  }
  std::string base = normalize_lock_expr(t, start, i - 1);
  if (locks != nullptr) *locks = lock_call;
  return base;
}

/// Lockset effect of one statement, acquisitions first (matching the order
/// the per-statement walk records edges in).
void transfer(const std::vector<Token>& t, const CfgStmt& s, Lockset& ls) {
  if (ls.top) return;
  if (!s.acquire.empty())
    for (const std::string& one : split_locks(s.acquire)) ls.held.insert(one);
  if (!s.release.empty()) ls.held.erase(s.release);
  for (std::size_t i = s.begin; i < s.end; ++i) {
    bool locks = false;
    std::string base = explicit_lock_base(t, s, i, &locks);
    if (base.empty()) continue;
    if (locks)
      ls.held.insert(base);
    else
      ls.held.erase(base);
  }
}

// ---------------------------------------------------------------------------
// Per-function analysis
// ---------------------------------------------------------------------------

struct Witness {
  std::string file;
  int line = 1;
};

/// One call site made while locks were held: the resolved held identities and
/// every call-graph callee the statement's call tokens resolve to.
struct CallUnderLock {
  std::vector<std::string> held;
  std::vector<int> callees;
};

struct FnAnalysis {
  std::map<std::string, Witness> direct;  ///< identity → first acquisition site
  std::vector<CallUnderLock> calls;
};

const std::set<std::string>& sleep_like() {
  static const std::set<std::string> kNames = {"sleep_for", "sleep_until", "usleep",
                                               "nanosleep", "sleep"};
  return kNames;
}

const std::set<std::string>& wait_syscalls() {
  static const std::set<std::string> kNames = {"epoll_wait", "select", "pselect", "ppoll"};
  return kNames;
}

const std::set<std::string>& transport_calls() {
  static const std::set<std::string> kNames = {"send", "recv",    "sendmsg", "recvmsg",
                                               "poll", "accept",  "connect"};
  return kNames;
}

/// `Type name(...)` declaration runs: preceded by an identifier that is not
/// an expression keyword (same heuristic the call graph uses).
bool declaration_like(const std::vector<Token>& t, std::size_t i, std::size_t begin) {
  if (i <= begin || !is_ident(t[i - 1])) return false;
  static const std::set<std::string> kExprKeywords = {
      "return", "co_return", "co_await", "throw", "case", "else", "do", "not"};
  return kExprKeywords.count(t[i - 1].text) == 0;
}

/// "'A' is held" / "'A', 'B' are held" for r12 messages.
std::string held_clause(const std::vector<std::string>& held) {
  std::string joined;
  for (const std::string& h : held) joined += (joined.empty() ? "'" : ", '") + h + "'";
  return joined + (held.size() == 1 ? " is held" : " are held");
}

/// Waited-mutex resolution for `lk` in `cv.wait(lk, ...)`: backward scan for
/// the `unique_lock<...> lk(expr)` declaration inside the same body.
std::string waited_mutex_of(const std::vector<Token>& t, std::size_t body_begin,
                            std::size_t use, const std::string& var) {
  for (std::size_t i = use; i-- > body_begin + 1;) {
    if (!is_ident(t[i]) || t[i].text != var) continue;
    // `unique_lock < ... > var ( expr )` — walk back over the template args.
    std::size_t p = i;
    if (p > body_begin && is(t[p - 1], ">")) {
      int depth = 0;
      for (std::size_t j = p; j-- > body_begin;) {
        if (is(t[j], ">")) ++depth;
        if (is(t[j], "<") && --depth == 0) {
          p = j;
          break;
        }
      }
    }
    if (p <= body_begin || !is_ident(t[p - 1]) || t[p - 1].text != "unique_lock") continue;
    if (i + 1 >= t.size() || (!is(t[i + 1], "(") && !is(t[i + 1], "{"))) continue;
    std::size_t close = i + 1;
    int depth = 0;
    for (std::size_t j = i + 1; j < t.size(); ++j) {
      if (is(t[j], "(") || is(t[j], "{")) ++depth;
      if ((is(t[j], ")") || is(t[j], "}")) && --depth == 0) {
        close = j;
        break;
      }
    }
    return normalize_lock_expr(t, i + 2, close);
  }
  return "";
}

struct PassContext {
  const CallGraph& cg;
  const std::vector<CgUnit>& units;
  IdentityTable identities;
  std::map<std::string, std::vector<std::string>> requires_index;
  std::set<std::string> parallel_for_names;
  bool enable_r12 = false;
  std::vector<Finding>* findings = nullptr;

  /// Global order graph, first witness per (from, to) pair.
  std::map<std::pair<std::string, std::string>, Witness> edges;
  std::vector<FnAnalysis> fns;
};

/// Names declared with type ParallelFor anywhere in the tree (`ParallelFor
/// pool_;`, `ParallelFor& pool`), for the r12 dispatch check.
std::set<std::string> collect_parallel_for_names(const std::vector<CgUnit>& units) {
  std::set<std::string> names;
  for (const CgUnit& unit : units) {
    const std::vector<Token>& t = unit.lexed->tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (!is_ident(t[i]) || t[i].text != "ParallelFor") continue;
      std::size_t j = i + 1;
      while (j < t.size() && (is(t[j], "&") || is(t[j], "*") || is(t[j], "const"))) ++j;
      if (j < t.size() && is_ident(t[j])) names.insert(t[j].text);
    }
  }
  return names;
}

/// r12 checks for one statement against the lockset in force at its start.
void check_blocking(PassContext& ctx, const CgUnit& unit, const std::vector<Token>& t,
                    const FunctionDef& def, const CfgStmt& s,
                    const std::vector<std::string>& held_ids,
                    const std::set<std::string>& held_exprs,
                    const std::string& enclosing_class) {
  for (std::size_t i = s.begin; i < s.end; ++i) {
    if (!is_ident(t[i])) continue;
    if (i + 1 >= s.end || !is(t[i + 1], "(")) continue;
    const std::string& name = t[i].text;
    bool member = i > s.begin && (is(t[i - 1], ".") || is(t[i - 1], "->"));

    if (sleep_like().count(name) != 0 || wait_syscalls().count(name) != 0) {
      ctx.findings->push_back(
          Finding{unit.src->rel_path, t[i].line, "r12",
                  "blocking call '" + name + "()' while " + held_clause(held_ids) +
                      "; move it outside the critical section or suppress with a reason"});
      continue;
    }
    if (transport_calls().count(name) != 0) {
      if (!member && declaration_like(t, i, s.begin)) continue;
      ctx.findings->push_back(
          Finding{unit.src->rel_path, t[i].line, "r12",
                  "potentially blocking transport call '" + name + "()' while " +
                      held_clause(held_ids) +
                      "; all I/O under a lock must be nonblocking — move it outside the "
                      "critical section or suppress with a reason"});
      continue;
    }
    if ((name == "wait" || name == "wait_for" || name == "wait_until") && member) {
      // `cv.wait(lk, ...)`: the wait releases only lk's mutex. Flag when any
      // OTHER lock stays held across the wait. An unresolvable first
      // argument is assumed to be the sole held lock (no finding) unless
      // two or more are held — then the wait provably keeps one.
      std::string waited;
      if (i + 2 < s.end && is_ident(t[i + 2])) {
        std::string lock_var = t[i + 2].text;
        std::string expr = waited_mutex_of(t, def.body_begin, s.begin, lock_var);
        if (!expr.empty()) waited = expr;
      }
      std::vector<std::string> others;
      for (const std::string& expr : held_exprs)
        if (expr != waited)
          others.push_back(ctx.identities.resolve(expr, enclosing_class));
      std::sort(others.begin(), others.end());
      others.erase(std::unique(others.begin(), others.end()), others.end());
      bool resolved = !waited.empty() && held_exprs.count(waited) != 0;
      if ((resolved && !others.empty()) || (!resolved && held_exprs.size() >= 2)) {
        ctx.findings->push_back(
            Finding{unit.src->rel_path, t[i].line, "r12",
                    "condition-variable wait while " + held_clause(others) +
                        "; the wait releases only its own mutex — restructure or suppress "
                        "with a reason"});
      }
      continue;
    }
    if (name == "run" && member && i >= s.begin + 2 && is_ident(t[i - 2]) &&
        ctx.parallel_for_names.count(t[i - 2].text) != 0) {
      ctx.findings->push_back(
          Finding{unit.src->rel_path, t[i].line, "r12",
                  "ParallelFor dispatch '" + t[i - 2].text + ".run()' while " +
                      held_clause(held_ids) +
                      "; worker handoff can block — dispatch outside the critical section "
                      "or suppress with a reason"});
    }
  }
}

void analyze_function(PassContext& ctx, int node_id, const FunctionDef& def) {
  const CgNode& node = ctx.cg.nodes[static_cast<std::size_t>(node_id)];
  const CgUnit& unit = ctx.units[static_cast<std::size_t>(node.unit)];
  const std::vector<Token>& t = unit.lexed->tokens;
  FnAnalysis& fn = ctx.fns[static_cast<std::size_t>(node_id)];

  // Callee-name index for this body: the call graph already resolved the
  // callees; matching by name at each statement recovers every call site
  // (node.calls keeps only the first site per callee).
  std::map<std::string, std::vector<int>> callee_names;
  for (const CallSite& call : node.calls)
    callee_names[ctx.cg.nodes[static_cast<std::size_t>(call.callee)].name].push_back(
        call.callee);

  Cfg cfg = build_cfg(t, def.body_begin, def.body_end);
  std::size_t n = cfg.blocks.size();
  std::vector<std::vector<int>> preds(n);
  for (std::size_t b = 0; b < n; ++b)
    for (int s : cfg.blocks[b].succ) preds[static_cast<std::size_t>(s)].push_back((int)b);

  std::vector<Lockset> in(n), out(n);
  in[0].top = false;
  for (const std::string& lock : def.requires_locks) in[0].held.insert(lock);
  auto declared = ctx.requires_index.find(def.class_name + "::" + def.name);
  if (declared != ctx.requires_index.end())
    for (const std::string& lock : declared->second) in[0].held.insert(lock);

  bool changed = true;
  std::size_t rounds = 0;
  while (changed && rounds++ < n + 2) {
    changed = false;
    for (std::size_t b = 0; b < n; ++b) {
      if (b != 0) {
        Lockset merged;
        for (int p : preds[b]) merged = meet(merged, out[static_cast<std::size_t>(p)]);
        if (!(merged == in[b])) {
          in[b] = merged;
          changed = true;
        }
      }
      Lockset flow = in[b];
      for (const CfgStmt& s : cfg.blocks[b].stmts) transfer(t, s, flow);
      if (!(flow == out[b])) {
        out[b] = flow;
        changed = true;
      }
    }
  }

  auto record_acquire = [&](const Lockset& held, const std::string& expr, int line) {
    std::string to = ctx.identities.resolve(expr, def.class_name);
    Witness site{unit.src->rel_path, line};
    fn.direct.emplace(to, site);
    for (const std::string& h : held.held) {
      std::string from = ctx.identities.resolve(h, def.class_name);
      ctx.edges.emplace(std::make_pair(from, to), site);
    }
  };

  for (std::size_t b = 0; b < n; ++b) {
    Lockset flow = in[b];
    for (const CfgStmt& s : cfg.blocks[b].stmts) {
      if (flow.top) {
        transfer(t, s, flow);
        continue;
      }
      if (!s.release.empty()) {
        flow.held.erase(s.release);
        continue;
      }
      // Checks and call-site collection run against the lockset at statement
      // start, like r7's check_stmt.
      if (!flow.held.empty()) {
        std::vector<std::string> held_ids;
        for (const std::string& h : flow.held)
          held_ids.push_back(ctx.identities.resolve(h, def.class_name));
        std::sort(held_ids.begin(), held_ids.end());
        held_ids.erase(std::unique(held_ids.begin(), held_ids.end()), held_ids.end());

        if (ctx.enable_r12)
          check_blocking(ctx, unit, t, def, s, held_ids, flow.held, def.class_name);

        CallUnderLock rec;
        rec.held = held_ids;
        for (std::size_t i = s.begin; i < s.end; ++i) {
          if (!is_ident(t[i]) || i + 1 >= s.end || !is(t[i + 1], "(")) continue;
          // Never follow call tokens named lock/unlock: `x.lock()` is already
          // modelled as a lock operation by the walk below, and a guard
          // declaration `lock_guard<std::mutex> lock(m)` lexes exactly like a
          // call to a function named `lock` (the `>` before the name defeats
          // the declaration heuristic), which would pull Mutex::lock's own
          // `mutex_` acquisition into unrelated functions.
          if (t[i].text == "lock" || t[i].text == "unlock") continue;
          auto callees = callee_names.find(t[i].text);
          if (callees == callee_names.end()) continue;
          bool member = i > s.begin && (is(t[i - 1], ".") || is(t[i - 1], "->") ||
                                        is(t[i - 1], "::"));
          if (!member && declaration_like(t, i, s.begin)) continue;
          for (int callee : callees->second) rec.callees.push_back(callee);
        }
        if (!rec.callees.empty()) {
          std::sort(rec.callees.begin(), rec.callees.end());
          rec.callees.erase(std::unique(rec.callees.begin(), rec.callees.end()),
                            rec.callees.end());
          fn.calls.push_back(std::move(rec));
        }
      }
      // Acquisitions, incrementally: each sees the locks already held.
      if (!s.acquire.empty()) {
        for (const std::string& one : split_locks(s.acquire)) {
          record_acquire(flow, one, t[s.begin].line);
          flow.held.insert(one);
        }
      }
      for (std::size_t i = s.begin; i < s.end; ++i) {
        bool locks = false;
        std::string base = explicit_lock_base(t, s, i, &locks);
        if (base.empty()) continue;
        if (locks) {
          record_acquire(flow, base, t[i].line);
          flow.held.insert(base);
        } else {
          flow.held.erase(base);
        }
      }
    }
  }
}

/// Transitive may-acquire summaries: callee acquisitions propagate to every
/// caller over the call graph, first witness per identity preserved, to a
/// fixpoint (same worklist shape as the r9 taint propagation).
std::vector<std::map<std::string, Witness>> propagate_summaries(PassContext& ctx) {
  std::size_t n = ctx.cg.nodes.size();
  std::vector<std::map<std::string, Witness>> summary(n);
  for (std::size_t i = 0; i < n; ++i) summary[i] = ctx.fns[i].direct;

  std::deque<int> worklist;
  std::vector<char> queued(n, 1);
  for (std::size_t i = 0; i < n; ++i) worklist.push_back(static_cast<int>(i));
  while (!worklist.empty()) {
    int at = worklist.front();
    worklist.pop_front();
    queued[static_cast<std::size_t>(at)] = 0;
    // Summaries of lock()/unlock() wrappers never flow to callers: most
    // "call sites" of those names are guard declarations or lock operations
    // the lockset walk already models (see the call-collection filter).
    const std::string& name = ctx.cg.nodes[static_cast<std::size_t>(at)].name;
    if (name == "lock" || name == "unlock") continue;
    for (int caller : ctx.cg.callers[static_cast<std::size_t>(at)]) {
      auto& dest = summary[static_cast<std::size_t>(caller)];
      bool grew = false;
      for (const auto& [id, wit] : summary[static_cast<std::size_t>(at)])
        grew = dest.emplace(id, wit).second || grew;
      if (grew && queued[static_cast<std::size_t>(caller)] == 0) {
        queued[static_cast<std::size_t>(caller)] = 1;
        worklist.push_back(caller);
      }
    }
  }
  return summary;
}

// ---------------------------------------------------------------------------
// Cycle detection
// ---------------------------------------------------------------------------

struct Graph {
  std::vector<std::string> nodes;                   ///< sorted identities
  std::map<std::string, int> index;
  std::vector<std::vector<int>> succ;               ///< sorted adjacency
  std::map<std::pair<int, int>, Witness> witness;
};

Graph index_graph(const LockOrderGraph& graph) {
  Graph g;
  std::set<std::string> names;
  for (const OrderEdge& e : graph.edges) {
    names.insert(e.from);
    names.insert(e.to);
  }
  g.nodes.assign(names.begin(), names.end());
  for (std::size_t i = 0; i < g.nodes.size(); ++i)
    g.index[g.nodes[i]] = static_cast<int>(i);
  g.succ.assign(g.nodes.size(), {});
  for (const OrderEdge& e : graph.edges) {
    int a = g.index[e.from], b = g.index[e.to];
    g.succ[static_cast<std::size_t>(a)].push_back(b);
    g.witness[{a, b}] = Witness{e.file, e.line};
  }
  for (auto& adj : g.succ) std::sort(adj.begin(), adj.end());
  return g;
}

/// Iterative Tarjan SCC; component ids are remapped so iteration over them in
/// ascending order visits components by their smallest member identity.
std::vector<std::vector<int>> strongly_connected(const Graph& g) {
  std::size_t n = g.nodes.size();
  std::vector<int> low(n, -1), num(n, -1);
  std::vector<char> on_stack(n, 0);
  std::vector<int> stack;
  int counter = 0;
  std::vector<std::vector<int>> comps;

  struct Frame {
    int v;
    std::size_t next;
  };
  for (std::size_t root = 0; root < n; ++root) {
    if (num[root] != -1) continue;
    std::vector<Frame> frames{{static_cast<int>(root), 0}};
    num[root] = low[root] = counter++;
    stack.push_back(static_cast<int>(root));
    on_stack[root] = 1;
    while (!frames.empty()) {
      Frame& f = frames.back();
      std::size_t v = static_cast<std::size_t>(f.v);
      if (f.next < g.succ[v].size()) {
        int w = g.succ[v][f.next++];
        std::size_t wu = static_cast<std::size_t>(w);
        if (num[wu] == -1) {
          num[wu] = low[wu] = counter++;
          stack.push_back(w);
          on_stack[wu] = 1;
          frames.push_back(Frame{w, 0});
        } else if (on_stack[wu] != 0) {
          low[v] = std::min(low[v], num[wu]);
        }
        continue;
      }
      if (low[v] == num[v]) {
        std::vector<int> members;
        while (true) {
          int w = stack.back();
          stack.pop_back();
          on_stack[static_cast<std::size_t>(w)] = 0;
          members.push_back(w);
          if (w == f.v) break;
        }
        std::sort(members.begin(), members.end());
        comps.push_back(std::move(members));
      }
      int finished = f.v;
      frames.pop_back();
      if (!frames.empty()) {
        std::size_t p = static_cast<std::size_t>(frames.back().v);
        low[p] = std::min(low[p], low[static_cast<std::size_t>(finished)]);
      }
    }
  }
  std::sort(comps.begin(), comps.end(),
            [](const std::vector<int>& a, const std::vector<int>& b) {
              return a.front() < b.front();
            });
  return comps;
}

/// The shared walk behind both entry points: per-function analysis (r12
/// findings when enabled), summary propagation, intra- plus interprocedural
/// edge collection.
LockOrderGraph run_pass(const CallGraph& cg, const std::vector<CgUnit>& units,
                        bool enable_r12, std::vector<Finding>& findings) {
  std::vector<LockUnit> lock_units;
  lock_units.reserve(units.size());
  for (const CgUnit& u : units) lock_units.push_back(LockUnit{u.src, u.lexed});

  PassContext ctx{cg, units, IdentityTable(collect_mutex_members(lock_units)),
                  collect_requires_index(lock_units), {}, false, nullptr, {}, {}};
  ctx.parallel_for_names = collect_parallel_for_names(units);
  ctx.enable_r12 = enable_r12;
  ctx.findings = &findings;
  ctx.fns.assign(cg.nodes.size(), FnAnalysis{});

  // Walk every definition in node-id order (extract_functions enumerates the
  // same definitions, in the same order, the call graph indexed).
  int node_id = 0;
  for (std::size_t u = 0; u < units.size(); ++u) {
    for (const FunctionDef& def : extract_functions(units[u].lexed->tokens)) {
      int id = node_id++;
      if (def.no_thread_safety_analysis || def.is_ctor_or_dtor) continue;
      analyze_function(ctx, id, def);
    }
  }

  std::vector<std::map<std::string, Witness>> summary = propagate_summaries(ctx);
  for (std::size_t f = 0; f < ctx.fns.size(); ++f) {
    for (const CallUnderLock& rec : ctx.fns[f].calls) {
      for (int callee : rec.callees) {
        for (const auto& [to, wit] : summary[static_cast<std::size_t>(callee)]) {
          for (const std::string& from : rec.held)
            ctx.edges.emplace(std::make_pair(from, to), wit);
        }
      }
    }
  }

  LockOrderGraph graph;
  graph.edges.reserve(ctx.edges.size());
  for (const auto& [key, wit] : ctx.edges)
    graph.edges.push_back(OrderEdge{key.first, key.second, wit.file, wit.line});
  return graph;
}

}  // namespace

LockOrderGraph build_lock_order_graph(const CallGraph& cg, const std::vector<CgUnit>& units) {
  std::vector<Finding> ignored;
  return run_pass(cg, units, false, ignored);
}

std::vector<std::vector<CycleHop>> enumerate_cycles(const LockOrderGraph& graph) {
  Graph g = index_graph(graph);
  std::vector<std::vector<CycleHop>> cycles;
  for (const std::vector<int>& comp : strongly_connected(g)) {
    int start = comp.front();
    std::set<int> in_comp(comp.begin(), comp.end());
    bool self_loop = g.witness.count({start, start}) != 0;
    if (comp.size() == 1 && !self_loop) continue;

    // Shortest deterministic walk start → ... → start inside the component
    // (BFS, sorted successors). A self-loop is its own shortest cycle.
    std::vector<int> seq;
    if (self_loop) {
      seq = {start, start};
    } else {
      std::map<int, int> parent;
      std::deque<int> queue{start};
      std::set<int> visited{start};
      int closing = -1;
      while (!queue.empty() && closing == -1) {
        int v = queue.front();
        queue.pop_front();
        for (int w : g.succ[static_cast<std::size_t>(v)]) {
          if (in_comp.count(w) == 0) continue;
          if (w == start) {
            closing = v;
            break;
          }
          if (visited.insert(w).second) {
            parent[w] = v;
            queue.push_back(w);
          }
        }
      }
      if (closing == -1) continue;  // single node, no self-loop (handled above)
      std::vector<int> back{closing};
      while (back.back() != start) back.push_back(parent[back.back()]);
      seq.assign(back.rbegin(), back.rend());
      seq.push_back(start);
    }

    std::vector<CycleHop> hops;
    hops.reserve(seq.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
      // Each hop is annotated with the site where its mutex is acquired
      // while the PREVIOUS hop's mutex is held; the opening hop uses the
      // closing edge (last → first), so first and last hops read alike.
      int prev = seq[i == 0 ? seq.size() - 2 : i - 1];
      const Witness& wit = g.witness.at({prev, seq[i]});
      hops.push_back(
          CycleHop{g.nodes[static_cast<std::size_t>(seq[i])], wit.file, wit.line});
    }
    cycles.push_back(std::move(hops));
  }
  return cycles;
}

void check_lock_order(const CallGraph& cg, const std::vector<CgUnit>& units, bool enable_r11,
                      bool enable_r12, std::vector<Finding>& findings) {
  LockOrderGraph graph = run_pass(cg, units, enable_r12, findings);
  if (!enable_r11) return;

  for (std::vector<CycleHop>& hops : enumerate_cycles(graph)) {
    std::string rendered;
    for (const CycleHop& hop : hops) {
      if (!rendered.empty()) rendered += " -> ";
      rendered += hop.mutex + " @ " + hop.file + ":" + std::to_string(hop.line);
    }
    std::string message =
        hops.size() == 2 && hops.front().mutex == hops.back().mutex
            ? "self-deadlock: " + rendered +
                  " acquires a lock already held on the same path; harp locks are "
                  "non-recursive"
            : "lock-order cycle: " + rendered +
                  "; impose one canonical acquisition order (see DESIGN.md \"Deadlock "
                  "detection\") or suppress with a reason";
    Finding finding{hops.front().file, hops.front().line, "r11", std::move(message)};
    for (const CycleHop& hop : hops)
      finding.path.push_back(hop.mutex + " @ " + hop.file + ":" + std::to_string(hop.line));
    finding.cycle = std::move(hops);
    findings.push_back(std::move(finding));
  }
}

}  // namespace harp::lint
