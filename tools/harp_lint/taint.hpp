// Interprocedural determinism-taint analysis for harp-lint (rules r9, r10).
//
//   r9  nondet-taint      a determinism sink (telemetry event emission,
//                         json::dump/save_file, the solver workspace
//                         fingerprint, bench report writers) reachable from
//                         a nondeterminism source (wall-clock reads,
//                         std::random_device/rand/srand, getenv,
//                         pointer-to-integer casts and pointer hashing,
//                         order-sensitive iteration over unordered
//                         containers). Diagnosed with the full
//                         source → call-chain → sink path in the message.
//   r10 iteration-order   a range-for over a std::unordered_map/
//                         std::unordered_set whose body writes to an
//                         order-sensitive sink or accumulates
//                         non-commutatively (push_back/append, string or
//                         floating-point +=, stream insertion), with a
//                         suggested fix (sorted snapshot or std::map).
//                         Collecting into a container that is subsequently
//                         std::sort-ed in the same function is the
//                         sanctioned pattern and stays silent.
//
// The analysis is function-granular: a function is colored nondeterministic
// when its body contains a source or it calls a colored function; the color
// propagates callee → caller over the whole-tree call graph (callgraph.hpp)
// to a fixpoint via a worklist that marks each node at most once, so cyclic
// and mutually recursive call graphs terminate. Symmetrically, a function is
// sink-reaching when it contains a sink or calls a sink-reaching function.
// r9 fires where the two meet: at a sink site inside a colored function, and
// at a call site where a colored function hands data to an uncolored
// sink-reaching callee. `src/common/rng.hpp` (the sanctioned seed home) is
// exempt from source collection, mirroring r2.
#pragma once

#include <vector>

#include "tools/harp_lint/callgraph.hpp"
#include "tools/harp_lint/lint.hpp"

namespace harp::lint {

/// Run the r9/r10 passes over the whole scanned set and append findings.
void check_determinism_taint(const CallGraph& cg, const std::vector<CgUnit>& units,
                             bool enable_r9, bool enable_r10,
                             std::vector<Finding>& findings);

}  // namespace harp::lint
