// Call-graph construction (see callgraph.hpp for the resolution contract).
#include "tools/harp_lint/callgraph.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "tools/harp_lint/cfg.hpp"

namespace harp::lint {
namespace {

bool is(const Token& t, const char* text) { return t.text == text; }
bool is_ident(const Token& t) { return t.kind == TokKind::kIdent; }

/// Identifiers that look like calls (`name (`) but are language constructs.
bool is_not_a_call(const std::string& name) {
  static const std::set<std::string> kNotCalls = {
      "if",       "while",    "for",      "switch",       "catch",   "sizeof",
      "alignof",  "typeid",   "decltype", "noexcept",     "return",  "new",
      "delete",   "co_await", "co_yield", "static_assert", "assert", "defined",
      "alignas",  "throw",    "operator"};
  return kNotCalls.count(name) != 0;
}

/// Keywords after which `name(...)` is still an expression, not a
/// declaration (`return helper()` vs `Status helper()`).
bool expression_keyword(const std::string& name) {
  static const std::set<std::string> kExpr = {"return",   "co_return", "co_await",
                                              "co_yield", "throw",     "case",
                                              "else",     "do",        "not"};
  return kExpr.count(name) != 0;
}

}  // namespace

std::string qualified_name(const CgNode& node) {
  return node.class_name.empty() ? node.name : node.class_name + "::" + node.name;
}

CallGraph build_call_graph(const std::vector<CgUnit>& units) {
  CallGraph cg;

  // Pass 1: index every definition. Keys are "Class::name" for methods and
  // "::name" for free functions; `bare` remembers which keys a plain name
  // may refer to (for the one-hop member-call resolution).
  std::map<std::string, std::vector<int>> exact;
  std::map<std::string, std::set<std::string>> bare;
  for (std::size_t u = 0; u < units.size(); ++u) {
    for (const FunctionDef& def : extract_functions(units[u].lexed->tokens)) {
      CgNode node;
      node.unit = static_cast<int>(u);
      node.class_name = def.class_name;
      node.name = def.name;
      node.line = def.line;
      node.body_begin = def.body_begin;
      node.body_end = def.body_end;
      int id = static_cast<int>(cg.nodes.size());
      cg.nodes.push_back(std::move(node));
      std::string key = (def.class_name.empty() ? "" : def.class_name) + "::" + def.name;
      exact[key].push_back(id);
      bare[def.name].insert(key);
    }
  }

  // Resolve an exact key from a caller's unit: same-file definitions win,
  // otherwise every definition of that name (over-approximation).
  auto resolve_key = [&](const std::string& key, int unit) -> std::vector<int> {
    auto it = exact.find(key);
    if (it == exact.end()) return {};
    std::vector<int> same_unit;
    for (int id : it->second)
      if (cg.nodes[static_cast<std::size_t>(id)].unit == unit) same_unit.push_back(id);
    return same_unit.empty() ? it->second : same_unit;
  };

  // Pass 2: call sites. Iterating by node id keeps everything deterministic.
  for (std::size_t n = 0; n < cg.nodes.size(); ++n) {
    CgNode& node = cg.nodes[n];
    const std::vector<Token>& t = units[static_cast<std::size_t>(node.unit)].lexed->tokens;
    std::set<int> seen;  // dedupe edges; first call site wins
    for (std::size_t i = node.body_begin; i + 1 < node.body_end; ++i) {
      if (!is_ident(t[i]) || !is(t[i + 1], "(")) continue;
      const std::string& name = t[i].text;
      if (is_not_a_call(name)) continue;

      std::vector<int> targets;
      if (i >= 2 && is(t[i - 1], "::") && is_ident(t[i - 2])) {
        // Qualified: `Qual::name(...)`. Class form first; a miss falls back
        // to the free-function key, because `Qual` is usually a namespace
        // (`json::dump`, `bench::write_bench_file`) that this index — which
        // only tracks classes — cannot see. `std::` calls find nothing.
        if (t[i - 2].text == name) continue;  // Ctor-like Qual::Qual(...)
        targets = resolve_key(t[i - 2].text + "::" + name, node.unit);
        if (targets.empty()) targets = resolve_key("::" + name, node.unit);
      } else if (i >= 1 && (is(t[i - 1], ".") || is(t[i - 1], "->"))) {
        bool this_call = i >= 2 && is_ident(t[i - 2]) && t[i - 2].text == "this";
        if (this_call && !node.class_name.empty()) {
          targets = resolve_key(node.class_name + "::" + name, node.unit);
        } else {
          // Member call on some object: one-hop — resolve only when the bare
          // name is unambiguous across the whole index and names a method.
          auto b = bare.find(name);
          if (b != bare.end() && b->second.size() == 1 &&
              b->second.begin()->rfind("::", 0) != 0)
            targets = resolve_key(*b->second.begin(), node.unit);
        }
      } else {
        // Unqualified. `Type name(...)` declaration runs are preceded by an
        // identifier that is not an expression keyword; skip those.
        if (i > node.body_begin && is_ident(t[i - 1]) && !expression_keyword(t[i - 1].text))
          continue;
        if (!node.class_name.empty())
          targets = resolve_key(node.class_name + "::" + name, node.unit);
        if (targets.empty()) targets = resolve_key("::" + name, node.unit);
        if (targets.empty()) {
          auto b = bare.find(name);
          if (b != bare.end() && b->second.size() == 1)
            targets = resolve_key(*b->second.begin(), node.unit);
        }
      }

      for (int callee : targets)
        if (seen.insert(callee).second)
          node.calls.push_back(CallSite{callee, t[i].line});
    }
    std::sort(node.calls.begin(), node.calls.end(),
              [](const CallSite& a, const CallSite& b) { return a.callee < b.callee; });
  }

  cg.callers.assign(cg.nodes.size(), {});
  for (std::size_t n = 0; n < cg.nodes.size(); ++n)
    for (const CallSite& call : cg.nodes[n].calls)
      cg.callers[static_cast<std::size_t>(call.callee)].push_back(static_cast<int>(n));
  return cg;
}

}  // namespace harp::lint
