// r7/r8 lockset passes (see lockset.hpp for the analysis design).
#include "tools/harp_lint/lockset.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "tools/harp_lint/cfg.hpp"

namespace harp::lint {
namespace {

bool is(const Token& t, const char* text) { return t.text == text; }
bool is_ident(const Token& t) { return t.kind == TokKind::kIdent; }

// ---------------------------------------------------------------------------
// Class field tables
// ---------------------------------------------------------------------------

struct ClassInfo {
  bool owns_harp_mutex = false;
  std::set<std::string> mutexes;                ///< lockable member names
  std::map<std::string, std::string> guarded;   ///< field name → guard expr
};

/// One member declaration run inside a class body, [begin, end) tokens.
struct MemberRun {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Member runs at depth 1 of a class body [body_begin, body_end). Mirrors
/// r5's scanner in lint.cpp: method bodies reset the run, initializer braces
/// keep it, access specifiers start a fresh run.
std::vector<MemberRun> member_runs(const std::vector<Token>& t, std::size_t body_begin,
                                   std::size_t body_end) {
  std::vector<MemberRun> members;
  int paren = 0;
  std::size_t run_begin = body_begin;
  for (std::size_t m = body_begin; m < body_end; ++m) {
    if (is(t[m], "(") || is(t[m], "[")) ++paren;
    if (is(t[m], ")") || is(t[m], "]")) --paren;
    if (paren > 0) continue;
    if (paren < 0) paren = 0;
    if (is(t[m], "{")) {
      bool initializer =
          m > body_begin && (is(t[m - 1], "=") || is_ident(t[m - 1]) || is(t[m - 1], ">"));
      int depth = 0;
      for (; m < body_end; ++m) {
        if (is(t[m], "{")) ++depth;
        if (is(t[m], "}") && --depth == 0) break;
      }
      if (!initializer) run_begin = m + 1;
      continue;
    }
    if ((is(t[m], "public") || is(t[m], "private") || is(t[m], "protected")) &&
        m + 1 < body_end && is(t[m + 1], ":")) {
      ++m;
      run_begin = m + 1;
      continue;
    }
    if (is(t[m], ";")) {
      if (m > run_begin) members.push_back(MemberRun{run_begin, m});
      run_begin = m + 1;
    }
  }
  return members;
}

/// Instance-variable member (not a function/type/static/friend declaration).
bool is_variable_member(const std::vector<Token>& t, const MemberRun& member) {
  static const std::set<std::string> kSkipTokens = {
      "static", "constexpr", "using",    "typedef",  "friend", "template",
      "struct", "class",     "enum",     "operator", "public", "private",
      "protected", "explicit", "virtual"};
  for (std::size_t m = member.begin; m < member.end; ++m) {
    if (kSkipTokens.count(t[m].text) != 0) return false;
    if (is_ident(t[m]) && t[m].text.rfind("HARP_", 0) == 0 && m + 1 < member.end &&
        is(t[m + 1], "(")) {
      ++m;
      int depth = 0;
      for (; m < member.end; ++m) {
        if (is(t[m], "(")) ++depth;
        if (is(t[m], ")") && --depth == 0) break;
      }
      continue;
    }
    if (is(t[m], "(")) return false;
  }
  return true;
}

/// `harp::Mutex name`, `Mutex name`, `Mutex& name`, plus the std lockables —
/// anything a HARP_GUARDED_BY argument may legitimately resolve to. Returns
/// the declared name, or "" when the run declares no lockable.
std::string lockable_member_name(const std::vector<Token>& t, const MemberRun& member,
                                 bool* is_harp_mutex) {
  for (std::size_t m = member.begin; m < member.end; ++m) {
    if (!is_ident(t[m])) continue;
    bool harp_typed = t[m].text == "Mutex";
    bool std_typed = t[m].text == "mutex" || t[m].text == "recursive_mutex" ||
                     t[m].text == "shared_mutex" || t[m].text == "timed_mutex";
    if (!harp_typed && !std_typed) continue;
    std::size_t n = m + 1;
    while (n < member.end && (is(t[n], "&") || is(t[n], "*"))) ++n;
    if (n < member.end && is_ident(t[n])) {
      if (is_harp_mutex != nullptr) *is_harp_mutex = harp_typed;
      return t[n].text;
    }
  }
  return "";
}

/// Declared name of a member run: the last identifier before any initializer
/// or HARP_ annotation.
std::string member_name(const std::vector<Token>& t, const MemberRun& member) {
  std::string name;
  for (std::size_t m = member.begin; m < member.end; ++m) {
    if (is(t[m], "=") || is(t[m], "{")) break;
    if (is_ident(t[m]) && t[m].text.rfind("HARP_", 0) == 0) break;
    if (is_ident(t[m])) name = t[m].text;
  }
  return name;
}

/// Guard expression of the first HARP_GUARDED_BY/HARP_PT_GUARDED_BY in the
/// run, normalised; "" when unannotated.
std::string guard_of(const std::vector<Token>& t, const MemberRun& member) {
  for (std::size_t m = member.begin; m + 1 < member.end; ++m) {
    if (!is_ident(t[m])) continue;
    if (t[m].text != "HARP_GUARDED_BY" && t[m].text != "HARP_PT_GUARDED_BY") continue;
    if (!is(t[m + 1], "(")) continue;
    int depth = 0;
    std::size_t close = m + 1;
    for (std::size_t j = m + 1; j < member.end; ++j) {
      if (is(t[j], "(")) ++depth;
      if (is(t[j], ")") && --depth == 0) {
        close = j;
        break;
      }
    }
    return normalize_lock_expr(t, m + 2, close);
  }
  return "";
}

/// Scan one unit's classes into `table` (merged across units by class name)
/// and emit the r8 coverage/dangling findings for the bodies it declares.
void scan_classes(const LockUnit& unit, bool enable_r8,
                  std::map<std::string, ClassInfo>& table, std::vector<Finding>& findings) {
  const std::vector<Token>& t = unit.lexed->tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!is(t[i], "struct") && !is(t[i], "class")) continue;
    if (i > 0 && is(t[i - 1], "enum")) continue;
    if (!is_ident(t[i + 1])) continue;
    std::size_t j = i + 1;
    std::string name = t[j].text;
    while (j + 2 < t.size() && is(t[j + 1], "::") && is_ident(t[j + 2])) {
      j += 2;
      name = t[j].text;
    }
    std::size_t k = j + 1;
    while (k < t.size() && !is(t[k], "{") && !is(t[k], ";") && !is(t[k], "(")) ++k;
    if (k >= t.size() || !is(t[k], "{")) continue;

    int depth = 0;
    std::size_t body_begin = k + 1, body_end = k;
    for (std::size_t m = k; m < t.size(); ++m) {
      if (is(t[m], "{")) ++depth;
      if (is(t[m], "}") && --depth == 0) {
        body_end = m;
        break;
      }
    }
    if (body_end <= body_begin) continue;

    std::vector<MemberRun> members = member_runs(t, body_begin, body_end);
    ClassInfo& info = table[name];

    // Pass 1: lockable members, so guards can be resolved below.
    for (const MemberRun& member : members) {
      if (!is_variable_member(t, member)) continue;
      bool harp_typed = false;
      std::string lockable = lockable_member_name(t, member, &harp_typed);
      if (lockable.empty()) continue;
      info.mutexes.insert(lockable);
      info.owns_harp_mutex = info.owns_harp_mutex || harp_typed;
    }

    // Pass 2: guarded fields + r8 coverage.
    for (const MemberRun& member : members) {
      if (!is_variable_member(t, member)) continue;
      if (!lockable_member_name(t, member, nullptr).empty()) continue;
      std::string guard = guard_of(t, member);
      std::string field = member_name(t, member);
      if (!guard.empty()) {
        if (!field.empty()) info.guarded[field] = guard;
        if (enable_r8 && info.mutexes.count(guard) == 0)
          findings.push_back(Finding{unit.src->rel_path, t[member.begin].line, "r8",
                                     "HARP_GUARDED_BY(" + guard + ") on '" + field +
                                         "' names no mutex member of " + name +
                                         " (dangling guard)"});
        continue;
      }
      if (!enable_r8 || !info.owns_harp_mutex) continue;
      // Principled exemptions: atomics are lock-free by design; top-level
      // const members (`const T x_`, `T* const x_`) are immutable after
      // construction. `const` inside template arguments or on a pointee does
      // not count. Everything else must be annotated or carry an explicit
      // allow(r8 ...) with a reason.
      bool exempt = false;
      for (std::size_t m = member.begin; m < member.end; ++m)
        if (is_ident(t[m]) && t[m].text == "atomic") exempt = true;
      std::size_t name_tok = member.begin;
      for (std::size_t m = member.begin; m < member.end; ++m) {
        if (is(t[m], "=") || is(t[m], "{")) break;
        if (is_ident(t[m])) name_tok = m;
      }
      if (is(t[member.begin], "const") ||
          (name_tok > member.begin && is(t[name_tok - 1], "const")))
        exempt = true;
      if (exempt) continue;
      findings.push_back(Finding{unit.src->rel_path, t[member.begin].line, "r8",
                                 "field '" + field + "' of harp::Mutex-owning " + name +
                                     " has no HARP_GUARDED_BY; annotate it or suppress with "
                                     "a reason"});
    }
  }
}

// ---------------------------------------------------------------------------
// HARP_REQUIRES contract index
// ---------------------------------------------------------------------------

/// "Class::method" → locks it requires. Collected from declarations as well
/// as definitions (headers annotate, sources define). The class is the
/// `Class::` qualifier for out-of-line signatures, else the enclosing class
/// body; free functions key as "::name".
void collect_requires(const std::vector<Token>& t,
                      std::map<std::string, std::vector<std::string>>& index) {
  std::vector<ClassOpen> class_opens = find_class_opens(t);
  std::vector<std::pair<int, std::string>> class_stack;  // (depth at open, name)
  int depth = 0;
  std::size_t next_class = 0;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (is(t[i], "{")) {
      ++depth;
      while (next_class < class_opens.size() && class_opens[next_class].brace < i) ++next_class;
      if (next_class < class_opens.size() && class_opens[next_class].brace == i) {
        class_stack.emplace_back(depth, class_opens[next_class].name);
        ++next_class;
      }
      continue;
    }
    if (is(t[i], "}")) {
      if (!class_stack.empty() && class_stack.back().first == depth) class_stack.pop_back();
      if (depth > 0) --depth;
      continue;
    }
    if (!is_ident(t[i])) continue;
    if (t[i].text != "HARP_REQUIRES" && t[i].text != "HARP_REQUIRES_SHARED") continue;
    if (!is(t[i + 1], "(")) continue;
    // Walk back over earlier specifier macros to the parameter list's ")".
    std::size_t p = i;
    while (p > 0) {
      const Token& prev = t[p - 1];
      if (is(prev, ")")) break;
      if (is_ident(prev) && (prev.text == "const" || prev.text == "noexcept" ||
                             prev.text == "override" || prev.text == "final"))
        --p;
      else
        break;
    }
    if (p == 0 || !is(t[p - 1], ")")) continue;
    int depth = 0;
    std::size_t open = p - 1;
    bool balanced = false;
    for (std::size_t j = p; j-- > 0;) {
      if (is(t[j], ")")) ++depth;
      if (is(t[j], "(") && --depth == 0) {
        open = j;
        balanced = true;
        break;
      }
    }
    if (!balanced || open == 0 || !is_ident(t[open - 1])) continue;
    std::string cls;
    if (open >= 3 && is(t[open - 2], "::") && is_ident(t[open - 3]))
      cls = t[open - 3].text;  // out-of-line `Class::method(...)`
    else if (!class_stack.empty())
      cls = class_stack.back().second;
    std::string fn = cls + "::" + t[open - 1].text;

    int adepth = 0;
    std::size_t aclose = i + 1;
    for (std::size_t j = i + 1; j < t.size(); ++j) {
      if (is(t[j], "(")) ++adepth;
      if (is(t[j], ")") && --adepth == 0) {
        aclose = j;
        break;
      }
    }
    std::vector<std::string>& locks = index[fn];
    std::size_t arg_begin = i + 2;
    int d = 0;
    for (std::size_t a = i + 2; a <= aclose; ++a) {
      bool top_comma = d == 0 && is(t[a], ",");
      if (is(t[a], "(") || is(t[a], "[")) ++d;
      if (is(t[a], ")") || is(t[a], "]")) --d;
      if (top_comma || a == aclose) {
        if (a > arg_begin) {
          std::string expr = normalize_lock_expr(t, arg_begin, a);
          if (!expr.empty() && std::find(locks.begin(), locks.end(), expr) == locks.end())
            locks.push_back(expr);
        }
        arg_begin = a + 1;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// r7 dataflow
// ---------------------------------------------------------------------------

/// TOP (unreachable: every lock held) or an explicit held set.
struct Lockset {
  bool top = true;
  std::set<std::string> held;
};

bool operator==(const Lockset& a, const Lockset& b) {
  return a.top == b.top && a.held == b.held;
}

Lockset meet(const Lockset& a, const Lockset& b) {
  if (a.top) return b;
  if (b.top) return a;
  Lockset out;
  out.top = false;
  std::set_intersection(a.held.begin(), a.held.end(), b.held.begin(), b.held.end(),
                        std::inserter(out.held, out.held.begin()));
  return out;
}

void add_locks(Lockset& ls, const std::string& comma_joined) {
  std::size_t begin = 0;
  while (begin <= comma_joined.size()) {
    std::size_t comma = comma_joined.find(',', begin);
    std::string one = comma_joined.substr(
        begin, comma == std::string::npos ? std::string::npos : comma - begin);
    if (!one.empty()) ls.held.insert(one);
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
}

/// Apply one statement's lock effects: RAII acquire/release from the CFG
/// builder plus explicit `expr.lock()` / `expr.unlock()` calls.
void transfer(const std::vector<Token>& t, const CfgStmt& s, Lockset& ls) {
  if (ls.top) return;
  if (!s.acquire.empty()) add_locks(ls, s.acquire);
  if (!s.release.empty()) ls.held.erase(s.release);
  for (std::size_t i = s.begin; i < s.end; ++i) {
    if (!is_ident(t[i])) continue;
    bool locks = t[i].text == "lock";
    bool unlocks = t[i].text == "unlock";
    if (!locks && !unlocks) continue;
    if (i <= s.begin || (!is(t[i - 1], ".") && !is(t[i - 1], "->"))) continue;
    if (i + 1 >= s.end || !is(t[i + 1], "(")) continue;
    std::size_t start = i - 1;  // walk back over the base expression chain
    while (start > s.begin) {
      const Token& prev = t[start - 1];
      if (is_ident(prev) || is(prev, "::") || is(prev, ".") || is(prev, "->"))
        --start;
      else
        break;
    }
    std::string base = normalize_lock_expr(t, start, i - 1);
    if (base.empty()) continue;
    if (locks)
      ls.held.insert(base);
    else
      ls.held.erase(base);
  }
}

/// Guarded-field and HARP_REQUIRES-callee checks for one statement, against
/// the lockset in force at its start.
void check_stmt(const LockUnit& unit, const std::vector<Token>& t, const CfgStmt& s,
                const Lockset& ls, const ClassInfo* cls, const std::string& class_name,
                const std::map<std::string, std::vector<std::string>>& requires_index,
                std::vector<Finding>& findings) {
  if (ls.top || !s.release.empty()) return;
  for (std::size_t i = s.begin; i < s.end; ++i) {
    if (!is_ident(t[i])) continue;
    const std::string& name = t[i].text;
    bool self_access = true;
    if (i > s.begin && (is(t[i - 1], ".") || is(t[i - 1], "->")))
      self_access = i >= s.begin + 2 && is_ident(t[i - 2]) && t[i - 2].text == "this";
    if (i > s.begin && is(t[i - 1], "::")) self_access = false;

    if (cls != nullptr && self_access) {
      auto guard = cls->guarded.find(name);
      if (guard != cls->guarded.end() && ls.held.count(guard->second) == 0) {
        findings.push_back(Finding{unit.src->rel_path, t[i].line, "r7",
                                   "'" + name + "' is HARP_GUARDED_BY(" + guard->second +
                                       ") but is accessed on a path where '" + guard->second +
                                       "' is not held"});
        continue;
      }
    }
    if (self_access && i + 1 < s.end && is(t[i + 1], "(")) {
      auto contract = requires_index.find(class_name + "::" + name);
      if (contract != requires_index.end()) {
        for (const std::string& lock : contract->second) {
          if (ls.held.count(lock) != 0) continue;
          findings.push_back(Finding{unit.src->rel_path, t[i].line, "r7",
                                     "call to '" + name + "()' (HARP_REQUIRES(" + lock +
                                         ")) on a path where '" + lock + "' is not held"});
        }
      }
    }
  }
}

void analyze_functions(const LockUnit& unit, const std::map<std::string, ClassInfo>& table,
                       const std::map<std::string, std::vector<std::string>>& requires_index,
                       std::vector<Finding>& findings) {
  const std::vector<Token>& t = unit.lexed->tokens;
  for (const FunctionDef& def : extract_functions(t)) {
    if (def.no_thread_safety_analysis) continue;
    // Constructors/destructors run before/after the object is shared:
    // classic Eraser exclusive phase, no locking required.
    if (def.is_ctor_or_dtor) continue;
    auto cls_it = table.find(def.class_name);
    const ClassInfo* cls = cls_it == table.end() ? nullptr : &cls_it->second;
    if (cls != nullptr && cls->guarded.empty()) cls = nullptr;

    Cfg cfg = build_cfg(t, def.body_begin, def.body_end);
    std::size_t n = cfg.blocks.size();

    std::vector<std::vector<int>> preds(n);
    for (std::size_t b = 0; b < n; ++b)
      for (int s : cfg.blocks[b].succ) preds[static_cast<std::size_t>(s)].push_back((int)b);

    std::vector<Lockset> in(n), out(n);
    in[0].top = false;
    for (const std::string& lock : def.requires_locks) in[0].held.insert(lock);
    // Out-of-line definitions carry their HARP_REQUIRES on the header
    // declaration only; the global contract index fills that in.
    auto declared = requires_index.find(def.class_name + "::" + def.name);
    if (declared != requires_index.end())
      for (const std::string& lock : declared->second) in[0].held.insert(lock);
    bool changed = true;
    std::size_t rounds = 0;
    while (changed && rounds++ < n + 2) {
      changed = false;
      for (std::size_t b = 0; b < n; ++b) {
        if (b != 0) {
          Lockset merged;  // TOP when no predecessors (unreachable)
          for (int p : preds[b]) merged = meet(merged, out[static_cast<std::size_t>(p)]);
          if (!(merged == in[b])) {
            in[b] = merged;
            changed = true;
          }
        }
        Lockset flow = in[b];
        for (const CfgStmt& s : cfg.blocks[b].stmts) transfer(t, s, flow);
        if (!(flow == out[b])) {
          out[b] = flow;
          changed = true;
        }
      }
    }

    for (std::size_t b = 0; b < n; ++b) {
      Lockset flow = in[b];
      for (const CfgStmt& s : cfg.blocks[b].stmts) {
        check_stmt(unit, t, s, flow, cls, def.class_name, requires_index, findings);
        transfer(t, s, flow);
      }
    }
  }
}

}  // namespace

std::map<std::string, std::set<std::string>> collect_mutex_members(
    const std::vector<LockUnit>& units) {
  std::map<std::string, std::set<std::string>> table;
  for (const LockUnit& unit : units) {
    const std::vector<Token>& t = unit.lexed->tokens;
    for (const ClassOpen& open : find_class_opens(t)) {
      int depth = 0;
      std::size_t body_begin = open.brace + 1, body_end = open.brace;
      for (std::size_t m = open.brace; m < t.size(); ++m) {
        if (is(t[m], "{")) ++depth;
        if (is(t[m], "}") && --depth == 0) {
          body_end = m;
          break;
        }
      }
      if (body_end <= body_begin) continue;
      for (const MemberRun& member : member_runs(t, body_begin, body_end)) {
        if (!is_variable_member(t, member)) continue;
        std::string lockable = lockable_member_name(t, member, nullptr);
        if (!lockable.empty()) table[open.name].insert(lockable);
      }
    }
  }
  return table;
}

std::map<std::string, std::vector<std::string>> collect_requires_index(
    const std::vector<LockUnit>& units) {
  std::map<std::string, std::vector<std::string>> index;
  for (const LockUnit& unit : units) collect_requires(unit.lexed->tokens, index);
  return index;
}

void check_locksets(const std::vector<LockUnit>& units, bool enable_r7, bool enable_r8,
                    std::vector<Finding>& findings) {
  std::map<std::string, ClassInfo> table;
  std::map<std::string, std::vector<std::string>> requires_index;
  for (const LockUnit& unit : units) {
    scan_classes(unit, enable_r8, table, findings);
    collect_requires(unit.lexed->tokens, requires_index);
  }
  if (!enable_r7) return;
  for (const LockUnit& unit : units) analyze_functions(unit, table, requires_index, findings);
}

}  // namespace harp::lint
