// Interprocedural deadlock analysis for harp-lint (rules r11 and r12).
//
//   r11  lock-order          cycles in the global "lock A held while
//                            acquiring lock B" order graph.
//   r12  blocking-under-lock a blocking operation on a CFG path where any
//                            lock is held.
//
// The pass walks every function's CFG with the same forward lockset dataflow
// r7 uses (cfg.hpp: RAII guard acquire/release plus explicit
// `.lock()`/`.unlock()`, entry seeded from HARP_REQUIRES), and at every
// acquisition records an order edge from each currently-held lock to the one
// being acquired. Lock expressions are resolved to stable identities before
// they enter the graph:
//
//   - a bare expression naming a lockable member of the enclosing class
//     becomes `Class::member` (so `mutex_` in two classes never collides);
//   - `obj->field` / `obj.field` becomes `Class::field` when exactly one
//     scanned class declares a lockable member `field` (the same
//     unique-bare-name pragmatism the call graph uses for member calls);
//   - everything else (locals, globals, unresolved members) keeps its
//     normalised spelling.
//
// Interprocedural depth comes from the whole-tree call graph (callgraph.hpp):
// each function's transitive may-acquire summary — the set of identities it
// or any callee acquires, with a first-witness file:line per identity — is
// propagated callee→caller to a fixpoint, and a call made while locks are
// held adds edges from every held identity to everything the callee may
// acquire. Cycle detection then runs over the global graph: one canonical
// cycle per strongly-connected component (rooted at the lexicographically
// smallest identity, shortest deterministic walk back to it), reported as
// r11 with the full acquisition path in r9's diagnostic style and the
// structured hops in Finding::cycle.
//
// Known limitations (see DESIGN.md "Deadlock detection"): identities
// collapse instances (two objects of one class share `Class::member`, so a
// hand-over-hand traversal of same-class objects reports a self-cycle even
// when a runtime instance order exists — suppress with a reason), lock
// expressions are compared syntactically (no aliasing), constructors /
// destructors / HARP_NO_THREAD_SAFETY_ANALYSIS bodies are skipped, and
// virtual calls resolve only through the call graph's unique-bare-name rule.
// The dynamic lock-order witness (src/common/race_registry.hpp) covers the
// instance-level and indirect-call blind spots at runtime.
#pragma once

#include <string>
#include <vector>

#include "tools/harp_lint/callgraph.hpp"
#include "tools/harp_lint/lint.hpp"

namespace harp::lint {

/// One edge of the global lock-order graph: `to` was (possibly transitively)
/// acquired at file:line on a path where `from` was held. First witness per
/// (from, to) pair wins, deterministically (node-id, statement order).
struct OrderEdge {
  std::string from;
  std::string to;
  std::string file;  ///< acquisition site of `to`
  int line = 1;
};

struct LockOrderGraph {
  std::vector<OrderEdge> edges;  ///< sorted by (from, to), unique
};

/// Build the global order graph alone (the structural surface
/// tests/lint_lockorder_test.cpp pins; check_lock_order uses the same walk).
LockOrderGraph build_lock_order_graph(const CallGraph& cg, const std::vector<CgUnit>& units);

/// Canonical cycle enumeration: one closed hop sequence per SCC with a cycle
/// (first hop repeated at the end), sorted by first hop's mutex identity.
std::vector<std::vector<CycleHop>> enumerate_cycles(const LockOrderGraph& graph);

/// Run the r11/r12 passes over the scanned set and append findings.
void check_lock_order(const CallGraph& cg, const std::vector<CgUnit>& units, bool enable_r11,
                      bool enable_r12, std::vector<Finding>& findings);

}  // namespace harp::lint
