// Per-function control-flow graphs for harp-lint's flow-sensitive passes.
//
// A lightweight statement parser over the lexer's token stream: function
// bodies are discovered (with their enclosing class, so field accesses can
// be resolved), then parsed into basic blocks connected by edges for
// if/else, while, for (including range-for), do-while, switch/case,
// early return, break and continue. RAII scopes are tracked during parsing:
// a `MutexLock lock(m)`-style declaration registers `m` with its lexical
// scope, and synthetic release statements are emitted wherever that scope
// exits — at its closing brace and on every early exit that jumps out of it
// — so the lockset dataflow pass (lockset.hpp) never re-derives scoping.
//
// Deliberately not a C++ parser: declarations vs expressions are
// distinguished heuristically, lambda bodies are analysed inline as part of
// the enclosing function (their deferred execution is a documented
// limitation), and templates/preprocessor conditionals are taken at token
// face value. The CFG is validated structurally by tests/lint_cfg_test.cpp.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "tools/harp_lint/lexer.hpp"

namespace harp::lint {

/// One statement inside a basic block: either a token range [begin, end) of
/// the source stream, or a synthetic lock release emitted at scope exit.
struct CfgStmt {
  std::size_t begin = 0;
  std::size_t end = 0;
  /// Non-empty when this statement is a `MutexLock l(m)`-style RAII guard
  /// declaration: the normalised lock expression it acquires.
  std::string acquire;
  /// Non-empty for synthetic releases: the normalised lock expression whose
  /// RAII guard goes out of scope here. begin/end then point at the scope's
  /// closing token (for diagnostics) and carry no access semantics.
  std::string release;
};

struct BasicBlock {
  std::vector<CfgStmt> stmts;
  std::vector<int> succ;  ///< successor block ids, in creation order
};

/// entry is always block 0; exit is a distinguished empty block that return
/// statements and the fall-off-the-end path both feed.
struct Cfg {
  std::vector<BasicBlock> blocks;
  int exit = 0;
};

/// One function definition discovered in a token stream.
struct FunctionDef {
  std::string class_name;  ///< enclosing or qualifying class; empty = free fn
  std::string name;
  int line = 1;
  bool is_ctor_or_dtor = false;
  bool no_thread_safety_analysis = false;  ///< HARP_NO_THREAD_SAFETY_ANALYSIS
  std::vector<std::string> requires_locks;  ///< HARP_REQUIRES(...) args, normalised
  std::size_t body_begin = 0;  ///< first token inside the braces
  std::size_t body_end = 0;    ///< token index of the closing brace
};

/// Normalise a lock expression token run: joins tokens, strips `this->` and
/// whitespace, so `this->mutex_`, `mutex_` and ` mutex_ ` all compare equal.
std::string normalize_lock_expr(const std::vector<Token>& tokens, std::size_t begin,
                                std::size_t end);

/// A class/struct body's opening "{" token index and the declared name —
/// the shared pre-pass for enclosing-class tracking (extract_functions and
/// lockset.cpp's HARP_REQUIRES contract index both key methods by class).
struct ClassOpen {
  std::size_t brace = 0;
  std::string name;
};
std::vector<ClassOpen> find_class_opens(const std::vector<Token>& tokens);

/// Find every function definition (free functions, in-class and out-of-line
/// methods) in a token stream.
std::vector<FunctionDef> extract_functions(const std::vector<Token>& tokens);

/// Build the CFG for one function body (token range from a FunctionDef).
Cfg build_cfg(const std::vector<Token>& tokens, std::size_t body_begin, std::size_t body_end);

/// "b0[s2] -> b1 b3; ..." — compact structural rendering for tests/debug.
std::string describe(const Cfg& cfg);

}  // namespace harp::lint
