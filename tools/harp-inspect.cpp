// harp-inspect — inspect application description files (§4.3: the config
// directory is deliberately user-accessible so administrators and power
// users can audit and tune HARP's decisions).
//
// Prints an operating-point table with energy-utility costs, marks the
// table's Pareto front, and shows which point the allocator would pick for
// an otherwise idle machine.
//
// Usage:
//   harp-inspect --hardware <hardware.json> <app-description.json>...
//   harp-inspect --hardware raptor-lake|odroid-xu3e <app-description.json>...
#include <cstdio>
#include <string>
#include <vector>

#include "src/harp/allocator.hpp"
#include "src/harp/operating_point.hpp"
#include "src/mlmodels/pareto.hpp"
#include "src/platform/hardware.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: harp-inspect --hardware <file|raptor-lake|odroid-xu3e> "
               "<description.json>...\n");
}

void inspect(const harp::platform::HardwareDescription& hw,
             const harp::core::OperatingPointTable& table) {
  using harp::core::OperatingPoint;
  std::vector<OperatingPoint> points = table.points(0);
  std::printf("\napplication: %s (%zu operating points, v* normaliser %.3f)\n",
              table.app_name().c_str(), points.size(), table.utility_max());
  std::printf("%-28s %10s %9s %10s %8s %7s\n", "configuration", "utility", "power",
              "zeta", "measured", "pareto");

  std::vector<std::vector<double>> objectives;
  for (const OperatingPoint& p : points)
    objectives.push_back({-p.nfc.utility, p.nfc.power_w});
  std::vector<std::size_t> front = harp::ml::pareto_front(objectives);
  std::vector<bool> on_front(points.size(), false);
  for (std::size_t i : front) on_front[i] = true;

  std::size_t best = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (table.cost_of(points[i]) < table.cost_of(points[best])) best = i;
    std::printf("%-28s %10.2f %9.2f %10.1f %8d %7s\n", points[i].erv.to_string(hw).c_str(),
                points[i].nfc.utility, points[i].nfc.power_w, table.cost_of(points[i]),
                points[i].measurements, on_front[i] ? "*" : "");
  }
  if (!points.empty())
    std::printf("allocator pick on an idle machine: %s (zeta %.1f)\n",
                points[best].erv.to_string(hw).c_str(), table.cost_of(points[best]));
}

}  // namespace

int main(int argc, char** argv) {
  std::string hardware_arg;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--hardware") {
      if (i + 1 >= argc) return usage(), 2;
      hardware_arg = argv[++i];
    } else {
      files.push_back(arg);
    }
  }
  if (hardware_arg.empty() || files.empty()) return usage(), 2;

  harp::platform::HardwareDescription hw;
  if (hardware_arg == "raptor-lake") {
    hw = harp::platform::raptor_lake();
  } else if (hardware_arg == "odroid-xu3e") {
    hw = harp::platform::odroid_xu3e();
  } else {
    auto loaded = harp::platform::HardwareDescription::load(hardware_arg);
    if (!loaded.ok()) {
      std::fprintf(stderr, "harp-inspect: %s\n", loaded.error().message.c_str());
      return 1;
    }
    hw = std::move(loaded).take();
  }
  std::printf("hardware: %s (%d hardware threads)\n", hw.name.c_str(),
              hw.total_hardware_threads());

  for (const std::string& file : files) {
    auto table = harp::core::OperatingPointTable::load(file);
    if (!table.ok()) {
      std::fprintf(stderr, "harp-inspect: %s: %s\n", file.c_str(),
                   table.error().message.c_str());
      return 1;
    }
    inspect(hw, table.value());
  }
  return 0;
}
