// Tests for operating points, tables, the energy-utility cost (Eq. 2), EMA
// smoothing, serialisation (application description files), and offline DSE.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "src/common/check.hpp"
#include "src/harp/dse.hpp"
#include "src/harp/operating_point.hpp"
#include "src/model/catalog.hpp"
#include "src/platform/hardware.hpp"

namespace harp::core {
namespace {

/// Parse a JSON literal the test knows is syntactically valid; fails the
/// test (and returns null) on a parse error instead of touching the Result.
json::Value doc(const std::string& text) {
  Result<json::Value> r = json::parse(text);
  EXPECT_TRUE(r.ok()) << "parse failed: " << text;
  if (!r.ok()) return json::Value();
  return std::move(r).take();
}

platform::HardwareDescription hw() { return platform::raptor_lake(); }

platform::ExtendedResourceVector erv(int p, int e) {
  return platform::ExtendedResourceVector::from_threads(hw(), {p, e});
}

TEST(Cost, MatchesEquationTwo) {
  // ζ = (p / v*) · (1 / v*), with v* = v / v_max.
  NonFunctional nfc{20.0, 50.0};
  double v_star = 20.0 / 40.0;
  EXPECT_NEAR(energy_utility_cost(nfc, 40.0), (50.0 / v_star) * (1.0 / v_star), 1e-12);
}

TEST(Cost, LowerForEfficientPoints) {
  // Same utility, less power → lower cost; same power, more utility → lower.
  EXPECT_LT(energy_utility_cost({20.0, 30.0}, 40.0), energy_utility_cost({20.0, 50.0}, 40.0));
  EXPECT_LT(energy_utility_cost({30.0, 50.0}, 40.0), energy_utility_cost({20.0, 50.0}, 40.0));
}

TEST(Cost, GuardsDegenerateInput) {
  EXPECT_THROW(energy_utility_cost({1.0, 1.0}, 0.0), CheckFailure);
  // Non-positive utility is clamped rather than dividing by zero.
  EXPECT_TRUE(std::isfinite(energy_utility_cost({0.0, 5.0}, 10.0)));
}

TEST(Table, RecordAppliesEmaSmoothing) {
  OperatingPointTable table("app");
  table.record_measurement(erv(2, 0), 10.0, 5.0);
  table.record_measurement(erv(2, 0), 20.0, 5.0);
  const OperatingPoint* p = table.find(erv(2, 0));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->measurements, 2);
  // α = 0.1: 0.1·20 + 0.9·10 = 11.
  EXPECT_NEAR(p->nfc.utility, 11.0, 1e-12);
}

TEST(Table, SetPointSeedsEma) {
  OperatingPointTable table("app");
  table.set_point(erv(1, 1), NonFunctional{30.0, 12.0});
  EXPECT_EQ(table.find(erv(1, 1))->measurements, 0);
  table.record_measurement(erv(1, 1), 40.0, 12.0);
  EXPECT_NEAR(table.find(erv(1, 1))->nfc.utility, 31.0, 1e-12);  // smooths from 30
}

TEST(Table, UtilityMaxAndCost) {
  OperatingPointTable table("app");
  table.set_point(erv(2, 0), NonFunctional{10.0, 8.0});
  table.set_point(erv(8, 16), NonFunctional{40.0, 90.0});
  EXPECT_DOUBLE_EQ(table.utility_max(), 40.0);
  const OperatingPoint* big = table.find(erv(8, 16));
  EXPECT_NEAR(table.cost_of(*big), 90.0, 1e-12);  // v* = 1
}

TEST(Table, PointsFilterByMeasurements) {
  OperatingPointTable table("app");
  table.set_point(erv(1, 0), NonFunctional{1.0, 1.0});
  for (int i = 0; i < 20; ++i) table.record_measurement(erv(0, 4), 5.0, 3.0);
  EXPECT_EQ(table.points(0).size(), 2u);
  EXPECT_EQ(table.points(1).size(), 1u);
  EXPECT_EQ(table.points(20).size(), 1u);
  EXPECT_EQ(table.points(21).size(), 0u);
}

TEST(Table, JsonRoundTrip) {
  OperatingPointTable table("mg.C");
  table.set_point(erv(1, 16), NonFunctional{22.0, 28.0});
  for (int i = 0; i < 3; ++i) table.record_measurement(erv(8, 16), 30.0, 60.0);
  auto restored = OperatingPointTable::from_json(table.to_json());
  ASSERT_TRUE(restored.ok());
  const OperatingPointTable& r = restored.value();
  EXPECT_EQ(r.app_name(), "mg.C");
  EXPECT_EQ(r.size(), 2u);
  ASSERT_NE(r.find(erv(1, 16)), nullptr);
  EXPECT_DOUBLE_EQ(r.find(erv(1, 16))->nfc.utility, 22.0);
  EXPECT_EQ(r.find(erv(8, 16))->measurements, 3);
}

TEST(Table, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/harp_table_test.json";
  OperatingPointTable table("vgg");
  table.set_point(erv(4, 4), NonFunctional{17.5, 33.25});
  ASSERT_TRUE(table.save(path).ok());
  auto loaded = OperatingPointTable::load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(loaded.value().find(erv(4, 4))->nfc.power_w, 33.25);
  std::remove(path.c_str());
}

TEST(Table, FromJsonValidates) {
  EXPECT_FALSE(OperatingPointTable::from_json(json::Value(1.0)).ok());
  EXPECT_FALSE(OperatingPointTable::from_json(doc(R"({"application":"x"})")).ok());
  EXPECT_FALSE(OperatingPointTable::from_json(
                   doc(R"({"application":"x","operating_points":[{"resources":[[1]],"utility":-1,"power":2}]})"))
                   .ok());
}

TEST(Dse, ProducesParetoOptimalTable) {
  model::WorkloadCatalog catalog = model::WorkloadCatalog::raptor_lake();
  OperatingPointTable table = run_offline_dse(catalog.app("mg.C"), hw());
  EXPECT_GT(table.size(), 5u);
  EXPECT_LT(table.size(), 764u);  // pareto-filtered, strictly below the full sweep
  // Every point is treated as fully measured (stable on load).
  for (const OperatingPoint& p : table.points(0)) EXPECT_GE(p.measurements, 20);
  // No point dominates another on (utility↑, power↓, cores↓).
  std::vector<OperatingPoint> points = table.points(0);
  for (const OperatingPoint& a : points) {
    for (const OperatingPoint& b : points) {
      if (a.erv == b.erv) continue;
      bool dominates = a.nfc.utility >= b.nfc.utility && a.nfc.power_w <= b.nfc.power_w &&
                       a.erv.cores_used(0) <= b.erv.cores_used(0) &&
                       a.erv.cores_used(1) <= b.erv.cores_used(1) &&
                       (a.nfc.utility > b.nfc.utility || a.nfc.power_w < b.nfc.power_w ||
                        a.erv.cores_used(0) < b.erv.cores_used(0) ||
                        a.erv.cores_used(1) < b.erv.cores_used(1));
      EXPECT_FALSE(dominates) << "dominated point in DSE table";
    }
  }
}

TEST(Dse, UnfilteredSweepKeepsEverything) {
  model::WorkloadCatalog catalog = model::WorkloadCatalog::raptor_lake();
  DseOptions options;
  options.pareto_filter = false;
  OperatingPointTable table = run_offline_dse(catalog.app("ep.C"), hw(), options);
  EXPECT_EQ(table.size(), 764u);
}

TEST(Dse, UtilitySourceFollowsAppCapability) {
  model::WorkloadCatalog catalog = model::WorkloadCatalog::raptor_lake();
  // vgg provides its own utility: table utilities equal useful rate, which
  // for a barrier-light app is below the spin-inflated measured IPS of lu.
  OperatingPointTable vgg = run_offline_dse(catalog.app("vgg"), hw());
  const model::AppBehavior& app = catalog.app("vgg");
  platform::ExtendedResourceVector full = platform::ExtendedResourceVector::full(hw());
  model::AppRates rates = model::exclusive_rates(app, hw(), full, 0.0);
  if (const OperatingPoint* p = vgg.find(full); p != nullptr) {
    EXPECT_NEAR(p->nfc.utility, rates.useful_gips, 1e-9);
  }
}

TEST(Dse, ManagedRebalanceFactorByAdaptivity) {
  EXPECT_DOUBLE_EQ(managed_rebalance_factor(model::AdaptivityType::kCustom), 1.0);
  EXPECT_DOUBLE_EQ(managed_rebalance_factor(model::AdaptivityType::kScalable), 0.0);
  EXPECT_DOUBLE_EQ(managed_rebalance_factor(model::AdaptivityType::kStatic), 0.0);
}

}  // namespace
}  // namespace harp::core
