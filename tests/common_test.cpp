// Unit tests for src/common: results, checks, stats, RNG, strings.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/check.hpp"
#include "src/common/result.hpp"
#include "src/common/rng.hpp"
#include "src/common/stats.hpp"
#include "src/common/strings.hpp"

namespace harp {
namespace {

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(Result, HoldsError) {
  Result<int> r(make_error("io: nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().message, "io: nope");
  EXPECT_THROW(r.value(), std::logic_error);
}

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_THROW(s.error(), std::logic_error);
}

TEST(Status, CarriesError) {
  Status s(make_error("bad"));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().message, "bad");
}

TEST(Check, PassesOnTrue) { EXPECT_NO_THROW(HARP_CHECK(1 + 1 == 2)); }

TEST(Check, ThrowsOnFalse) { EXPECT_THROW(HARP_CHECK(false), CheckFailure); }

TEST(Check, MessageIncludesContext) {
  try {
    HARP_CHECK_MSG(false, "index " << 7);
    FAIL() << "expected throw";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("index 7"), std::string::npos);
  }
}

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.571428571, 1e-9);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(3.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Ema, FirstSampleInitialises) {
  Ema ema(0.1);
  EXPECT_FALSE(ema.has_value());
  ema.add(10.0);
  EXPECT_DOUBLE_EQ(ema.value(), 10.0);
}

TEST(Ema, SmoothsTowardsSamples) {
  Ema ema(0.1);
  ema.add(10.0);
  ema.add(20.0);
  EXPECT_DOUBLE_EQ(ema.value(), 11.0);  // 0.1*20 + 0.9*10
  ema.reset();
  EXPECT_FALSE(ema.has_value());
}

TEST(Ema, RejectsInvalidAlpha) {
  EXPECT_THROW(Ema(0.0), CheckFailure);
  EXPECT_THROW(Ema(1.5), CheckFailure);
}

TEST(Stats, GeometricMean) {
  EXPECT_DOUBLE_EQ(geometric_mean({4.0, 9.0}), 6.0);
  EXPECT_DOUBLE_EQ(geometric_mean({}), 0.0);
  EXPECT_THROW(geometric_mean({1.0, -1.0}), CheckFailure);
}

TEST(Stats, Mape) {
  EXPECT_NEAR(mape({110.0, 90.0}, {100.0, 100.0}), 0.10, 1e-12);
  EXPECT_EQ(mape({1.0}, {0.0}), 0.0);  // zero truth entries skipped
}

TEST(Stats, Percentile) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int v = rng.uniform_int(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, NoiseFactorStaysPositive) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.noise_factor(0.5), 0.0);
}

TEST(Rng, GaussianMomentsRoughlyMatch) {
  Rng rng(42);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.gaussian(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(9);
  Rng child = a.fork();
  EXPECT_NE(a.uniform(), child.uniform());
}

TEST(Strings, Split) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("parse: bad", "parse:"));
  EXPECT_FALSE(starts_with("io", "io:"));
}

TEST(Strings, Format) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_factor(1.375), "1.38x");
}

}  // namespace
}  // namespace harp
