// Structural tests for harp-lint's per-function CFG builder
// (tools/harp_lint/cfg.{hpp,cpp}): block/edge shape for nested if/else,
// loops, switch and early returns, plus RAII guard acquire/release
// placement — the scaffolding the r7 lockset pass (lockset.cpp) runs on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tools/harp_lint/cfg.hpp"
#include "tools/harp_lint/lexer.hpp"

namespace harp::lint {
namespace {

/// Lex a snippet, find the single function definition in it, build its CFG.
Cfg cfg_of(const std::string& source, FunctionDef* def_out = nullptr) {
  LexedFile lexed = lex(source);
  std::vector<FunctionDef> defs = extract_functions(lexed.tokens);
  EXPECT_EQ(defs.size(), 1u) << "snippet must contain exactly one function:\n" << source;
  if (defs.empty()) return Cfg{};
  if (def_out != nullptr) *def_out = defs.front();
  return build_cfg(lexed.tokens, defs.front().body_begin, defs.front().body_end);
}

bool has_edge(const Cfg& cfg, int from, int to) {
  for (int s : cfg.blocks[static_cast<std::size_t>(from)].succ)
    if (s == to) return true;
  return false;
}

/// Blocks reachable from the entry block.
std::vector<bool> reachable(const Cfg& cfg) {
  std::vector<bool> seen(cfg.blocks.size(), false);
  std::vector<int> work{0};
  while (!work.empty()) {
    int b = work.back();
    work.pop_back();
    if (seen[static_cast<std::size_t>(b)]) continue;
    seen[static_cast<std::size_t>(b)] = true;
    for (int s : cfg.blocks[static_cast<std::size_t>(b)].succ) work.push_back(s);
  }
  return seen;
}

/// Synthetic releases of `lock` on blocks reachable from the entry (blocks
/// after a return are kept in the CFG but are dead).
int count_reachable_releases(const Cfg& cfg, const std::string& lock) {
  std::vector<bool> seen = reachable(cfg);
  int n = 0;
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    if (!seen[b]) continue;
    for (const CfgStmt& s : cfg.blocks[b].stmts)
      if (s.release == lock) ++n;
  }
  return n;
}

TEST(LintCfg, StraightLineIsEntryToExit) {
  Cfg cfg = cfg_of("void f() { int a = 1; a += 2; }");
  ASSERT_GE(cfg.blocks.size(), 2u);
  EXPECT_TRUE(has_edge(cfg, 0, cfg.exit));
  EXPECT_EQ(cfg.blocks[0].stmts.size(), 2u);
  EXPECT_TRUE(cfg.blocks[static_cast<std::size_t>(cfg.exit)].stmts.empty());
  EXPECT_TRUE(cfg.blocks[static_cast<std::size_t>(cfg.exit)].succ.empty());
}

TEST(LintCfg, IfWithoutElseBranchesAndRejoins) {
  Cfg cfg = cfg_of("void f(bool c) { int a = 0; if (c) { a = 1; } a = 2; }");
  // Entry must have two successors (then-branch and fall-through), and both
  // paths must reach a join block that reaches the exit.
  ASSERT_EQ(cfg.blocks[0].succ.size(), 2u);
  int then_b = cfg.blocks[0].succ[0];
  int join_b = cfg.blocks[0].succ[1];
  EXPECT_TRUE(has_edge(cfg, then_b, join_b));
  EXPECT_TRUE(has_edge(cfg, join_b, cfg.exit));
}

TEST(LintCfg, IfElseIsDiamond) {
  Cfg cfg = cfg_of(
      "int f(bool c) { int a; if (c) { a = 1; } else { a = 2; } return a; }");
  ASSERT_EQ(cfg.blocks[0].succ.size(), 2u);
  int then_b = cfg.blocks[0].succ[0];
  int else_b = cfg.blocks[0].succ[1];
  EXPECT_NE(then_b, else_b);
  // Both arms feed one join; the join returns, so it feeds the exit.
  ASSERT_EQ(cfg.blocks[static_cast<std::size_t>(then_b)].succ.size(), 1u);
  int join_b = cfg.blocks[static_cast<std::size_t>(then_b)].succ[0];
  EXPECT_TRUE(has_edge(cfg, else_b, join_b));
  EXPECT_TRUE(has_edge(cfg, join_b, cfg.exit));
}

TEST(LintCfg, NestedIfKeepsBothJoins) {
  Cfg cfg = cfg_of(
      "void f(bool a, bool b) {"
      "  if (a) {"
      "    if (b) { int x = 1; }"
      "  }"
      "  int y = 2;"
      "}");
  // Every block is reachable and the exit is reached: no dangling joins.
  std::vector<bool> seen = reachable(cfg);
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b)
    EXPECT_TRUE(seen[b]) << "block " << b << " unreachable in: " << describe(cfg);
  EXPECT_TRUE(seen[static_cast<std::size_t>(cfg.exit)]);
}

TEST(LintCfg, WhileLoopHasBackEdgeAndExit) {
  Cfg cfg = cfg_of("void f(int n) { while (n > 0) { --n; } int d = 0; }");
  // The loop head tests the condition: one successor into the body, one
  // past the loop. The body loops back to the head.
  ASSERT_EQ(cfg.blocks[0].succ.size(), 1u);
  int head = cfg.blocks[0].succ[0];
  ASSERT_EQ(cfg.blocks[static_cast<std::size_t>(head)].succ.size(), 2u);
  int body = cfg.blocks[static_cast<std::size_t>(head)].succ[0];
  EXPECT_TRUE(has_edge(cfg, body, head)) << describe(cfg);
}

TEST(LintCfg, ForLoopStepFeedsBackToHead) {
  Cfg cfg = cfg_of("void f() { for (int i = 0; i < 4; ++i) { int x = i; } }");
  // Some block other than the head must loop back to the head (the latch
  // carrying the ++i step).
  ASSERT_EQ(cfg.blocks[0].succ.size(), 1u);
  int head = cfg.blocks[0].succ[0];
  bool latch_found = false;
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b)
    if (static_cast<int>(b) != head && has_edge(cfg, static_cast<int>(b), head))
      latch_found = true;
  EXPECT_TRUE(latch_found) << describe(cfg);
}

TEST(LintCfg, EarlyReturnFeedsExitDirectly) {
  Cfg cfg = cfg_of(
      "int f(bool c) { if (c) { return 1; } int a = 2; return a; }");
  // The then-arm must reach the exit without passing through the join.
  ASSERT_EQ(cfg.blocks[0].succ.size(), 2u);
  int then_b = cfg.blocks[0].succ[0];
  EXPECT_TRUE(has_edge(cfg, then_b, cfg.exit)) << describe(cfg);
  EXPECT_FALSE(has_edge(cfg, then_b, cfg.blocks[0].succ[1])) << describe(cfg);
}

TEST(LintCfg, BreakLeavesLoopContinueReturnsToHead) {
  Cfg cfg = cfg_of(
      "void f(int n) {"
      "  while (n > 0) {"
      "    if (n == 3) { break; }"
      "    if (n == 5) { continue; }"
      "    --n;"
      "  }"
      "}");
  std::vector<bool> seen = reachable(cfg);
  EXPECT_TRUE(seen[static_cast<std::size_t>(cfg.exit)]) << describe(cfg);
  // The head has a back-edge from more than one block: the normal latch and
  // the continue path.
  int head = cfg.blocks[0].succ[0];
  int preds_of_head = 0;
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b)
    if (has_edge(cfg, static_cast<int>(b), head)) ++preds_of_head;
  EXPECT_GE(preds_of_head, 3) << describe(cfg);  // entry, latch, continue
}

TEST(LintCfg, SwitchFansOutCasesAndDefaultTracksFallThrough) {
  Cfg cfg = cfg_of(
      "int f(int v) {"
      "  int out = 0;"
      "  switch (v) {"
      "    case 1: out = 1; break;"
      "    case 2: out = 2; break;"
      "    default: out = 3; break;"
      "  }"
      "  return out;"
      "}");
  // The block holding the switch fans out to each arm; with a default
  // present there is no no-match bypass edge, so exactly 3 successors.
  EXPECT_EQ(cfg.blocks[0].succ.size(), 3u) << describe(cfg);
  std::vector<bool> seen = reachable(cfg);
  EXPECT_TRUE(seen[static_cast<std::size_t>(cfg.exit)]);
}

TEST(LintCfg, SwitchWithoutDefaultSkipsPastArms) {
  Cfg cfg = cfg_of(
      "void f(int v) {"
      "  switch (v) {"
      "    case 1: { int a = 1; break; }"
      "  }"
      "  int b = 2;"
      "}");
  // No default: the switch block needs an edge bypassing every arm (the
  // no-match path), i.e. 2 successors for 1 case.
  EXPECT_EQ(cfg.blocks[0].succ.size(), 2u) << describe(cfg);
}

TEST(LintCfg, RaiiGuardAcquiresAndReleasesAtScopeClose) {
  Cfg cfg = cfg_of(
      "void f() {"
      "  { harp::MutexLock lock(mutex_); int a = 1; }"
      "  int b = 2;"
      "}");
  bool acquired = false;
  for (const BasicBlock& b : cfg.blocks)
    for (const CfgStmt& s : b.stmts)
      if (s.acquire == "mutex_") acquired = true;
  EXPECT_TRUE(acquired);
  EXPECT_EQ(count_reachable_releases(cfg, "mutex_"), 1);
}

TEST(LintCfg, EarlyReturnReleasesRaiiGuard) {
  Cfg cfg = cfg_of(
      "int f(bool c) {"
      "  harp::MutexLock lock(mutex_);"
      "  if (c) { return 1; }"
      "  return 2;"
      "}");
  // Two reachable exits from the guarded scope -> two synthetic releases
  // (one per return path); the fall-off-the-end scope close is dead code.
  EXPECT_EQ(count_reachable_releases(cfg, "mutex_"), 2) << describe(cfg);
}

TEST(LintCfg, ExtractFindsRequiresAndQualifiedName) {
  LexedFile lexed = lex(
      "struct S { harp::Mutex m_; };"
      "void S::touch() HARP_REQUIRES(m_) { int x = 0; }");
  std::vector<FunctionDef> defs = extract_functions(lexed.tokens);
  ASSERT_EQ(defs.size(), 1u);
  EXPECT_EQ(defs[0].class_name, "S");
  EXPECT_EQ(defs[0].name, "touch");
  ASSERT_EQ(defs[0].requires_locks.size(), 1u);
  EXPECT_EQ(defs[0].requires_locks[0], "m_");
}

TEST(LintCfg, DescribeRendersStructure) {
  Cfg cfg = cfg_of("void f() { int a = 1; }");
  // Exact rendering for the simplest shape: one statement block feeding the
  // distinguished empty exit block.
  EXPECT_EQ(describe(cfg), "b0[s1] -> b1; b1[s0]");
}

}  // namespace
}  // namespace harp::lint
