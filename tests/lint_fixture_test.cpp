// Self-test for the harp-lint rule engine (tools/harp_lint) against the
// fixture corpus in tests/lint_fixtures/.
//
// Each bad fixture marks its violating lines with a trailing
// `expect: <rule-id>...` comment; the test parses those markers from the raw
// text (the lexer swallows comments trailing #include lines, so markers must
// not depend on tokenisation) and asserts the engine's findings match the
// expected (file, line, rule) set exactly — no extras, no misses. Good
// fixtures assert exact silence. Module-placement-sensitive rules (r2's
// rng.hpp exemption, r3's layering) are driven by faking rel_path.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/harp_lint/lint.hpp"

namespace harp::lint {
namespace {

std::string read_fixture(const std::string& name) {
  std::ifstream in(std::string(HARP_LINT_FIXTURE_DIR) + "/" + name, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << name;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Load a fixture, optionally under a faked repo-relative path.
SourceFile fixture(const std::string& name, const std::string& rel_path = "") {
  return SourceFile{rel_path.empty() ? "tests/lint_fixtures/" + name : rel_path,
                    read_fixture(name)};
}

/// "file:line: rule" triples, comparable across expected and actual.
std::set<std::string> keys_of(const std::vector<Finding>& findings) {
  std::set<std::string> keys;
  for (const Finding& f : findings)
    keys.insert(f.file + ":" + std::to_string(f.line) + ": " + f.rule);
  return keys;
}

/// Expected keys from `expect: <rule-id>...` markers in the fixture text.
std::set<std::string> expected_in(const SourceFile& src) {
  std::set<std::string> keys;
  std::istringstream lines(src.text);
  std::string line;
  int number = 0;
  while (std::getline(lines, line)) {
    ++number;
    std::size_t marker = line.find("expect:");
    if (marker == std::string::npos) continue;
    std::istringstream rules(line.substr(marker + 7));
    std::string rule;
    while (rules >> rule)
      keys.insert(src.rel_path + ":" + std::to_string(number) + ": " + rule);
  }
  return keys;
}

/// Run the engine restricted to `rules` and require findings == markers.
void expect_exact(const std::vector<SourceFile>& files, const std::vector<std::string>& rules,
                  const Options& base = {}) {
  Options options = base;
  options.rules = rules;
  std::set<std::string> expected;
  for (const SourceFile& f : files) {
    std::set<std::string> marks = expected_in(f);
    expected.insert(marks.begin(), marks.end());
  }
  std::set<std::string> actual = keys_of(run(files, options));
  EXPECT_EQ(actual, expected);
}

TEST(LintFixtures, R1UncheckedResult) {
  expect_exact({fixture("r1_bad.cpp"), fixture("r1_good.cpp")}, {"r1"});
}

TEST(LintFixtures, R2Determinism) {
  expect_exact({fixture("r2_bad.cpp"), fixture("r2_good.cpp")}, {"r2"});
}

TEST(LintFixtures, R2TraceLoaderDeterminism) {
  // Trace-loading flavour: loaders that jitter or synthesize requests from
  // wall clocks / unseeded randomness fire; from_chars parsing and seeded
  // harp::Rng synthesis stay silent.
  expect_exact({fixture("r2_trace_bad.cpp"), fixture("r2_trace_good.cpp")}, {"r2"});
}

TEST(LintFixtures, R2RngHomeIsExempt) {
  // The same violations under the sanctioned path produce nothing.
  SourceFile exempt = fixture("r2_bad.cpp", "src/common/rng.hpp");
  EXPECT_TRUE(run({exempt}, Options{{"r2"}}).empty());
}

TEST(LintFixtures, R3Layering) {
  SourceFile bad = fixture("r3_bad.cpp", "src/common/r3_bad.cpp");
  SourceFile good = fixture("r3_good.cpp", "src/harp/r3_good.cpp");
  expect_exact({bad, good}, {"r3"});
}

TEST(LintFixtures, R4DispatchExhaustive) {
  Options options;
  options.enum_file = "tests/lint_fixtures/r4_messages_good.hpp";
  options.dispatch_files = {"tests/lint_fixtures/r4_dispatch_good.cpp"};
  expect_exact({fixture("r4_messages_good.hpp"), fixture("r4_dispatch_good.cpp")}, {"r4"},
               options);
}

TEST(LintFixtures, R4DispatchHoles) {
  Options options;
  options.enum_file = "tests/lint_fixtures/r4_messages_bad.hpp";
  options.dispatch_files = {"tests/lint_fixtures/r4_dispatch_bad.cpp"};
  expect_exact({fixture("r4_messages_bad.hpp"), fixture("r4_dispatch_bad.cpp")}, {"r4"},
               options);
}

TEST(LintFixtures, R5LockAnnotations) {
  expect_exact({fixture("r5_bad.cpp"), fixture("r5_good.cpp")}, {"r5"});
}

TEST(LintFixtures, R7FlowSensitiveLocksets) {
  expect_exact({fixture("r7_bad.cpp"), fixture("r7_good.cpp")}, {"r7"});
}

TEST(LintFixtures, R8AnnotateOrSuppress) {
  expect_exact({fixture("r8_bad.cpp"), fixture("r8_good.cpp")}, {"r8"});
}

TEST(LintFixtures, R9InterproceduralTaint) {
  expect_exact({fixture("r9_bad.cpp"), fixture("r9_good.cpp")}, {"r9"});
}

TEST(LintFixtures, R9FixpointTerminatesOnRecursion) {
  // Mutual recursion and self-recursion form cycles; the worklist converges
  // and still reports both the sink-side and call-site findings.
  expect_exact({fixture("r9_recursive.cpp")}, {"r9"});
}

TEST(LintFixtures, R9DiagnosticCarriesSourceToSinkPath) {
  // The multi-hop chain in r9_bad.cpp: the message prints every hop from the
  // emitting function down to the source, and Finding::path carries the same
  // chain for machine consumption.
  std::vector<Finding> findings = run({fixture("r9_bad.cpp")}, Options{{"r9"}});
  const Finding* multi_hop = nullptr;
  for (const Finding& f : findings)
    if (f.line == 40) multi_hop = &f;
  ASSERT_NE(multi_hop, nullptr);
  EXPECT_EQ(multi_hop->rule, "r9");
  EXPECT_EQ(multi_hop->message,
            "nondeterminism reaches sink 'Tracer::begin': path publish_budget -> "
            "jitter_budget -> entropy_sample [rand() draw at "
            "tests/lint_fixtures/r9_bad.cpp:34]; make the data deterministic or suppress "
            "with harp-lint: allow(r9 <reason>)");
  std::vector<std::string> expected_path = {"publish_budget", "jitter_budget",
                                            "entropy_sample"};
  EXPECT_EQ(multi_hop->path, expected_path);
}

TEST(LintFixtures, R9CallSiteDiagnosticNamesTheSink) {
  // Case B: a tainted caller handing data to a deterministic sink-reaching
  // callee reports at the hand-off call site and names the eventual sink.
  std::vector<Finding> findings = run({fixture("r9_bad.cpp")}, Options{{"r9"}});
  const Finding* hand_off = nullptr;
  for (const Finding& f : findings)
    if (f.line == 28) hand_off = &f;
  ASSERT_NE(hand_off, nullptr);
  EXPECT_EQ(hand_off->message,
            "call to 'write_report' carries nondeterministic data toward sink "
            "'json::dump' (tests/lint_fixtures/r9_bad.cpp:21): path stamp_report "
            "[environment read (getenv) at tests/lint_fixtures/r9_bad.cpp:26]; make the "
            "data deterministic or suppress with harp-lint: allow(r9 <reason>)");
}

TEST(LintFixtures, R9RngHomeIsExempt) {
  // The sanctioned seed home may touch entropy without tainting anything.
  SourceFile exempt = fixture("r9_bad.cpp", "src/common/rng.hpp");
  EXPECT_TRUE(run({exempt}, Options{{"r9"}}).empty());
}

TEST(LintFixtures, R10IterationOrder) {
  expect_exact({fixture("r10_bad.cpp"), fixture("r10_good.cpp")}, {"r10"});
}

TEST(LintFixtures, R10MessageNamesEffectAndFix) {
  std::vector<Finding> findings = run({fixture("r10_bad.cpp")}, Options{{"r10"}});
  const Finding* fp_fold = nullptr;
  for (const Finding& f : findings)
    if (f.line == 40) fp_fold = &f;
  ASSERT_NE(fp_fold, nullptr);
  EXPECT_EQ(fp_fold->rule, "r10");
  EXPECT_EQ(fp_fold->message,
            "iteration over unordered container 'watts_by_core' accumulates into "
            "floating-point 'watt_sum' (FP addition is not associative) (line 41); "
            "iterate a sorted snapshot (collect keys, std::sort) or use std::map");
}

TEST(LintFixtures, LexerEdgeCasesDoNotConfuseTheIndexer) {
  // Raw strings with embedded quotes, digit separators and line splices: the
  // only finding is the genuine spliced rand() → tracer flow; the fake
  // source/sink text inside the raw string stays a literal.
  expect_exact({fixture("lexer_edges.cpp")}, {"r9"});
}

TEST(LintFixtures, JsonFormatIsStable) {
  Finding plain{"src/a.cpp", 7, "r10", "iteration over unordered container 'm'"};
  Finding with_path{"src/b.cpp", 12, "r9", "quote \" backslash \\ tab \t done"};
  with_path.path = {"caller", "Class::callee"};
  Finding with_cycle{"src/c.cpp", 3, "r11", "lock-order cycle"};
  with_cycle.path = {"A::m_ @ src/c.cpp:3", "B::n_ @ src/c.cpp:9"};
  with_cycle.cycle = {{"A::m_", "src/c.cpp", 3}, {"B::n_", "src/c.cpp", 9}};
  EXPECT_EQ(format_json({plain, with_path, with_cycle}),
            "[\n"
            "  {\"file\": \"src/a.cpp\", \"line\": 7, \"rule\": \"r10\", \"message\": "
            "\"iteration over unordered container 'm'\", \"path\": [], \"cycle\": []},\n"
            "  {\"file\": \"src/b.cpp\", \"line\": 12, \"rule\": \"r9\", \"message\": "
            "\"quote \\\" backslash \\\\ tab \\t done\", \"path\": [\"caller\", "
            "\"Class::callee\"], \"cycle\": []},\n"
            "  {\"file\": \"src/c.cpp\", \"line\": 3, \"rule\": \"r11\", \"message\": "
            "\"lock-order cycle\", \"path\": [\"A::m_ @ src/c.cpp:3\", "
            "\"B::n_ @ src/c.cpp:9\"], \"cycle\": "
            "[{\"mutex\": \"A::m_\", \"file\": \"src/c.cpp\", \"line\": 3}, "
            "{\"mutex\": \"B::n_\", \"file\": \"src/c.cpp\", \"line\": 9}]}\n"
            "]\n");
}

TEST(LintFixtures, JsonFormatEmptyFindings) {
  EXPECT_EQ(format_json({}), "[]\n");
}

TEST(LintFixtures, StaleSuppressionsAreAudited) {
  Options options;
  options.audit_suppressions = true;
  expect_exact({fixture("audit_allows.cpp")}, {"r2"}, options);
}

TEST(LintFixtures, AuditIsOffByDefault) {
  // Without --audit-suppressions the stale allow is inert, not a finding.
  EXPECT_TRUE(run({fixture("audit_allows.cpp")}, Options{{"r2"}}).empty());
}

TEST(LintFixtures, R6HotPathAllocations) {
  expect_exact({fixture("r6_bad.cpp"), fixture("r6_good.cpp")}, {"r6"});
}

TEST(LintFixtures, R6EventLoopHotPaths) {
  // Fixtures shaped like the event-loop dispatch and shard-cycle loops
  // (src/ipc/event_loop.cpp and src/harp/rm_shard.cpp are hot-path
  // annotated): per-cycle readiness/snapshot buffers and per-shard scope
  // strings must be hoisted.
  expect_exact({fixture("r6_eventloop_bad.cpp"), fixture("r6_eventloop_good.cpp")}, {"r6"});
}

TEST(LintFixtures, R6ParallelSolverHotPaths) {
  // Fixtures shaped like the deterministic worker-pool kernel and the
  // incremental λ iteration (src/common/parallel_for.cpp and
  // src/harp/allocator.cpp are hot-path annotated): per-block scratch,
  // per-iteration pick buffers, and per-lane labels must be hoisted into the
  // caller-owned workspace.
  expect_exact({fixture("r6_parallel_bad.cpp"), fixture("r6_parallel_good.cpp")}, {"r6"});
}

TEST(LintFixtures, R6IsOptIn) {
  // The same per-iteration constructions without the annotation: silent.
  EXPECT_TRUE(run({fixture("r6_unannotated.cpp")}, Options{{"r6"}}).empty());
}

TEST(LintFixtures, HotPathAnnotationIsNotMalformed) {
  // The r6 opt-in marker shares the lint-directive prefix with suppressions
  // but must not be reported as a malformed allow() directive.
  EXPECT_TRUE(run({fixture("r6_good.cpp")}).empty());
}

TEST(LintFixtures, SuppressionsSilenceFindings) {
  // All rules on: the only thing keeping these fixtures quiet is the
  // well-formed allow() directives.
  EXPECT_TRUE(run({fixture("suppress_good.cpp")}).empty());
}

TEST(LintFixtures, MalformedSuppressionsAreFindings) {
  expect_exact({fixture("suppress_bad.cpp")}, {});
}

TEST(LintFixtures, FindingFormat) {
  Finding f{"src/ipc/transport.cpp", 42, "r1", "return value discarded"};
  EXPECT_EQ(format(f), "src/ipc/transport.cpp:42: r1 return value discarded");
}

TEST(LintFixtures, RuleFilterRestrictsOutput) {
  // The r2 fixture under an r1-only run is silent: filtering works.
  EXPECT_TRUE(run({fixture("r2_bad.cpp")}, Options{{"r1"}}).empty());
}

TEST(LintFixtures, R11LockOrderCycles) {
  // Opposite nesting orders fire once (on the closing edge's witness);
  // consistent nesting and release-before-acquire stay silent.
  expect_exact({fixture("r11_bad.cpp"), fixture("r11_good.cpp")}, {"r11"});
}

TEST(LintFixtures, R11InterproceduralCycle) {
  // No single function nests both mutexes: the cycle closes only through
  // callee may-acquire summaries.
  expect_exact({fixture("r11_interproc.cpp")}, {"r11"});
}

TEST(LintFixtures, R11MessagePrintsTheFullAcquisitionPath) {
  std::vector<Finding> findings = run({fixture("r11_bad.cpp")}, Options{{"r11"}});
  ASSERT_EQ(findings.size(), 1u);
  const Finding& f = findings[0];
  EXPECT_EQ(f.file, "tests/lint_fixtures/r11_bad.cpp");
  EXPECT_EQ(f.line, 35);
  EXPECT_EQ(f.message,
            "lock-order cycle: Left::lmutex_ @ tests/lint_fixtures/r11_bad.cpp:35 -> "
            "Right::rmutex_ @ tests/lint_fixtures/r11_bad.cpp:30 -> "
            "Left::lmutex_ @ tests/lint_fixtures/r11_bad.cpp:35; impose one canonical "
            "acquisition order (see DESIGN.md \"Deadlock detection\") or suppress with "
            "a reason");
  ASSERT_EQ(f.cycle.size(), 3u);
  EXPECT_EQ(f.cycle[0].mutex, "Left::lmutex_");
  EXPECT_EQ(f.cycle[0].line, 35);
  EXPECT_EQ(f.cycle[1].mutex, "Right::rmutex_");
  EXPECT_EQ(f.cycle[1].line, 30);
  EXPECT_EQ(f.cycle[2].mutex, "Left::lmutex_");
  EXPECT_EQ(f.cycle[2].line, 35);
}

TEST(LintFixtures, R11InterprocWitnessesAreCalleeAcquisitionSites) {
  std::vector<Finding> findings = run({fixture("r11_interproc.cpp")}, Options{{"r11"}});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].message,
            "lock-order cycle: "
            "Coordinator::cmutex_ @ tests/lint_fixtures/r11_interproc.cpp:39 -> "
            "Shard::shmutex_ @ tests/lint_fixtures/r11_interproc.cpp:30 -> "
            "Coordinator::cmutex_ @ tests/lint_fixtures/r11_interproc.cpp:39; impose "
            "one canonical acquisition order (see DESIGN.md \"Deadlock detection\") or "
            "suppress with a reason");
}

TEST(LintFixtures, R12BlockingCallsUnderLock) {
  expect_exact({fixture("r12_bad.cpp"), fixture("r12_good.cpp")}, {"r12"});
}

TEST(LintFixtures, R12MessagesNameTheCallAndHeldLock) {
  std::vector<Finding> findings = run({fixture("r12_bad.cpp")}, Options{{"r12"}});
  const Finding* transport = nullptr;
  const Finding* cv_wait = nullptr;
  for (const Finding& f : findings) {
    if (f.line == 19) transport = &f;
    if (f.line == 36) cv_wait = &f;
  }
  ASSERT_NE(transport, nullptr);
  EXPECT_EQ(transport->message,
            "potentially blocking transport call 'send()' while 'Pump::mutex_' is "
            "held; all I/O under a lock must be nonblocking — move it outside the "
            "critical section or suppress with a reason");
  ASSERT_NE(cv_wait, nullptr);
  EXPECT_EQ(cv_wait->message,
            "condition-variable wait while 'Pump::mutex_' is held; the wait releases "
            "only its own mutex — restructure or suppress with a reason");
}

TEST(LintFixtures, JsonIncludesTheCycleArrayForR11) {
  std::vector<Finding> findings = run({fixture("r11_interproc.cpp")}, Options{{"r11"}});
  ASSERT_EQ(findings.size(), 1u);
  std::string json = format_json(findings);
  EXPECT_NE(json.find(
                "\"cycle\": ["
                "{\"mutex\": \"Coordinator::cmutex_\", \"file\": "
                "\"tests/lint_fixtures/r11_interproc.cpp\", \"line\": 39}, "
                "{\"mutex\": \"Shard::shmutex_\", \"file\": "
                "\"tests/lint_fixtures/r11_interproc.cpp\", \"line\": 30}, "
                "{\"mutex\": \"Coordinator::cmutex_\", \"file\": "
                "\"tests/lint_fixtures/r11_interproc.cpp\", \"line\": 39}]"),
            std::string::npos);
}

}  // namespace
}  // namespace harp::lint
