// Self-test for the harp-lint rule engine (tools/harp_lint) against the
// fixture corpus in tests/lint_fixtures/.
//
// Each bad fixture marks its violating lines with a trailing
// `expect: <rule-id>...` comment; the test parses those markers from the raw
// text (the lexer swallows comments trailing #include lines, so markers must
// not depend on tokenisation) and asserts the engine's findings match the
// expected (file, line, rule) set exactly — no extras, no misses. Good
// fixtures assert exact silence. Module-placement-sensitive rules (r2's
// rng.hpp exemption, r3's layering) are driven by faking rel_path.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/harp_lint/lint.hpp"

namespace harp::lint {
namespace {

std::string read_fixture(const std::string& name) {
  std::ifstream in(std::string(HARP_LINT_FIXTURE_DIR) + "/" + name, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << name;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Load a fixture, optionally under a faked repo-relative path.
SourceFile fixture(const std::string& name, const std::string& rel_path = "") {
  return SourceFile{rel_path.empty() ? "tests/lint_fixtures/" + name : rel_path,
                    read_fixture(name)};
}

/// "file:line: rule" triples, comparable across expected and actual.
std::set<std::string> keys_of(const std::vector<Finding>& findings) {
  std::set<std::string> keys;
  for (const Finding& f : findings)
    keys.insert(f.file + ":" + std::to_string(f.line) + ": " + f.rule);
  return keys;
}

/// Expected keys from `expect: <rule-id>...` markers in the fixture text.
std::set<std::string> expected_in(const SourceFile& src) {
  std::set<std::string> keys;
  std::istringstream lines(src.text);
  std::string line;
  int number = 0;
  while (std::getline(lines, line)) {
    ++number;
    std::size_t marker = line.find("expect:");
    if (marker == std::string::npos) continue;
    std::istringstream rules(line.substr(marker + 7));
    std::string rule;
    while (rules >> rule)
      keys.insert(src.rel_path + ":" + std::to_string(number) + ": " + rule);
  }
  return keys;
}

/// Run the engine restricted to `rules` and require findings == markers.
void expect_exact(const std::vector<SourceFile>& files, const std::vector<std::string>& rules,
                  const Options& base = {}) {
  Options options = base;
  options.rules = rules;
  std::set<std::string> expected;
  for (const SourceFile& f : files) {
    std::set<std::string> marks = expected_in(f);
    expected.insert(marks.begin(), marks.end());
  }
  std::set<std::string> actual = keys_of(run(files, options));
  EXPECT_EQ(actual, expected);
}

TEST(LintFixtures, R1UncheckedResult) {
  expect_exact({fixture("r1_bad.cpp"), fixture("r1_good.cpp")}, {"r1"});
}

TEST(LintFixtures, R2Determinism) {
  expect_exact({fixture("r2_bad.cpp"), fixture("r2_good.cpp")}, {"r2"});
}

TEST(LintFixtures, R2TraceLoaderDeterminism) {
  // Trace-loading flavour: loaders that jitter or synthesize requests from
  // wall clocks / unseeded randomness fire; from_chars parsing and seeded
  // harp::Rng synthesis stay silent.
  expect_exact({fixture("r2_trace_bad.cpp"), fixture("r2_trace_good.cpp")}, {"r2"});
}

TEST(LintFixtures, R2RngHomeIsExempt) {
  // The same violations under the sanctioned path produce nothing.
  SourceFile exempt = fixture("r2_bad.cpp", "src/common/rng.hpp");
  EXPECT_TRUE(run({exempt}, Options{{"r2"}}).empty());
}

TEST(LintFixtures, R3Layering) {
  SourceFile bad = fixture("r3_bad.cpp", "src/common/r3_bad.cpp");
  SourceFile good = fixture("r3_good.cpp", "src/harp/r3_good.cpp");
  expect_exact({bad, good}, {"r3"});
}

TEST(LintFixtures, R4DispatchExhaustive) {
  Options options;
  options.enum_file = "tests/lint_fixtures/r4_messages_good.hpp";
  options.dispatch_files = {"tests/lint_fixtures/r4_dispatch_good.cpp"};
  expect_exact({fixture("r4_messages_good.hpp"), fixture("r4_dispatch_good.cpp")}, {"r4"},
               options);
}

TEST(LintFixtures, R4DispatchHoles) {
  Options options;
  options.enum_file = "tests/lint_fixtures/r4_messages_bad.hpp";
  options.dispatch_files = {"tests/lint_fixtures/r4_dispatch_bad.cpp"};
  expect_exact({fixture("r4_messages_bad.hpp"), fixture("r4_dispatch_bad.cpp")}, {"r4"},
               options);
}

TEST(LintFixtures, R5LockAnnotations) {
  expect_exact({fixture("r5_bad.cpp"), fixture("r5_good.cpp")}, {"r5"});
}

TEST(LintFixtures, R7FlowSensitiveLocksets) {
  expect_exact({fixture("r7_bad.cpp"), fixture("r7_good.cpp")}, {"r7"});
}

TEST(LintFixtures, R8AnnotateOrSuppress) {
  expect_exact({fixture("r8_bad.cpp"), fixture("r8_good.cpp")}, {"r8"});
}

TEST(LintFixtures, StaleSuppressionsAreAudited) {
  Options options;
  options.audit_suppressions = true;
  expect_exact({fixture("audit_allows.cpp")}, {"r2"}, options);
}

TEST(LintFixtures, AuditIsOffByDefault) {
  // Without --audit-suppressions the stale allow is inert, not a finding.
  EXPECT_TRUE(run({fixture("audit_allows.cpp")}, Options{{"r2"}}).empty());
}

TEST(LintFixtures, R6HotPathAllocations) {
  expect_exact({fixture("r6_bad.cpp"), fixture("r6_good.cpp")}, {"r6"});
}

TEST(LintFixtures, R6IsOptIn) {
  // The same per-iteration constructions without the annotation: silent.
  EXPECT_TRUE(run({fixture("r6_unannotated.cpp")}, Options{{"r6"}}).empty());
}

TEST(LintFixtures, HotPathAnnotationIsNotMalformed) {
  // The r6 opt-in marker shares the lint-directive prefix with suppressions
  // but must not be reported as a malformed allow() directive.
  EXPECT_TRUE(run({fixture("r6_good.cpp")}).empty());
}

TEST(LintFixtures, SuppressionsSilenceFindings) {
  // All rules on: the only thing keeping these fixtures quiet is the
  // well-formed allow() directives.
  EXPECT_TRUE(run({fixture("suppress_good.cpp")}).empty());
}

TEST(LintFixtures, MalformedSuppressionsAreFindings) {
  expect_exact({fixture("suppress_bad.cpp")}, {});
}

TEST(LintFixtures, FindingFormat) {
  Finding f{"src/ipc/transport.cpp", 42, "r1", "return value discarded"};
  EXPECT_EQ(format(f), "src/ipc/transport.cpp:42: r1 return value discarded");
}

TEST(LintFixtures, RuleFilterRestrictsOutput) {
  // The r2 fixture under an r1-only run is silent: filtering works.
  EXPECT_TRUE(run({fixture("r2_bad.cpp")}, Options{{"r1"}}).empty());
}

}  // namespace
}  // namespace harp::lint
