// Tests for the MMKP allocator (Eq. 1): all three solvers, feasibility
// repair, spatial isolation, co-allocation detection, and a randomized
// optimality-gap property sweep against the exact solver.
#include <gtest/gtest.h>

#include "src/common/check.hpp"
#include "src/common/rng.hpp"
#include "src/harp/allocator.hpp"
#include "src/platform/hardware.hpp"

namespace harp::core {
namespace {

platform::HardwareDescription hw() { return platform::raptor_lake(); }

platform::ExtendedResourceVector erv(int p, int e) {
  return platform::ExtendedResourceVector::from_threads(hw(), {p, e});
}

AllocationGroup make_group(const std::string& name,
                           std::vector<std::pair<platform::ExtendedResourceVector, double>>
                               points_with_cost) {
  AllocationGroup group;
  group.app_name = name;
  for (auto& [vector, cost] : points_with_cost) {
    OperatingPoint p;
    p.erv = vector;
    p.nfc.utility = 1.0;
    p.nfc.power_w = cost;  // nfc values are informative only; cost matters
    group.candidates.push_back(p);
    group.costs.push_back(cost);
  }
  return group;
}

class AllSolvers : public ::testing::TestWithParam<SolverKind> {};

TEST_P(AllSolvers, PicksGlobalMinimumWhenUncontended) {
  Allocator allocator(hw(), GetParam());
  std::vector<AllocationGroup> groups{
      make_group("a", {{erv(2, 0), 5.0}, {erv(4, 0), 2.0}, {erv(1, 1), 9.0}})};
  AllocationResult result = allocator.solve(groups);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.selection[0], 1u);
  EXPECT_DOUBLE_EQ(result.total_cost, 2.0);
}

TEST_P(AllSolvers, RespectsCapacity) {
  Allocator allocator(hw(), GetParam());
  // Two apps whose cheapest points together exceed the 8 P-cores; at least
  // one must be downgraded.
  std::vector<AllocationGroup> groups{
      make_group("a", {{erv(12, 0), 1.0}, {erv(4, 0), 10.0}}),
      make_group("b", {{erv(12, 0), 1.0}, {erv(4, 0), 10.0}}),
  };
  AllocationResult result = allocator.solve(groups);
  ASSERT_TRUE(result.feasible);
  int p_used = groups[0].candidates[result.selection[0]].erv.cores_used(0) +
               groups[1].candidates[result.selection[1]].erv.cores_used(0);
  EXPECT_LE(p_used, 8);
}

TEST_P(AllSolvers, SignalsCoAllocationWhenNothingFits) {
  Allocator allocator(hw(), GetParam());
  // Each app's only point needs the whole E-island.
  std::vector<AllocationGroup> groups{make_group("a", {{erv(0, 16), 1.0}}),
                                      make_group("b", {{erv(0, 16), 1.0}})};
  AllocationResult result = allocator.solve(groups);
  EXPECT_FALSE(result.feasible);
  EXPECT_TRUE(result.selection.empty());
}

TEST_P(AllSolvers, AllocationsAreSpatiallyIsolated) {
  Allocator allocator(hw(), GetParam());
  std::vector<AllocationGroup> groups{make_group("a", {{erv(8, 4), 1.0}}),
                                      make_group("b", {{erv(8, 4), 1.0}})};
  AllocationResult result = allocator.solve(groups);
  ASSERT_TRUE(result.feasible);
  ASSERT_EQ(result.allocations.size(), 2u);
  std::set<std::pair<std::size_t, int>> used;
  for (const platform::CoreAllocation& alloc : result.allocations)
    for (std::size_t t = 0; t < alloc.cores.size(); ++t)
      for (const auto& [core, threads] : alloc.cores[t]) {
        (void)threads;
        EXPECT_TRUE(used.insert({t, core}).second) << "core assigned twice";
      }
}

INSTANTIATE_TEST_SUITE_P(Kinds, AllSolvers,
                         ::testing::Values(SolverKind::kLagrangian, SolverKind::kGreedy,
                                           SolverKind::kExhaustive));

TEST(Allocator, ValidatesGroups) {
  Allocator allocator(hw());
  EXPECT_THROW(allocator.solve({}), CheckFailure);
  AllocationGroup empty;
  empty.app_name = "empty";
  EXPECT_THROW(allocator.solve({empty}), CheckFailure);
}

TEST(Allocator, RepairHandlesCrossTypeTradeoffs) {
  // Regression test for the repair-cycle hang: the only way to feasibility
  // swaps P-pressure for E-pressure and vice versa. Total violation must
  // strictly decrease, so this terminates with a feasible pick.
  Allocator allocator(hw(), SolverKind::kLagrangian);
  std::vector<AllocationGroup> groups{
      make_group("a", {{erv(12, 0), 1.0}, {erv(0, 10), 2.0}}),
      make_group("b", {{erv(12, 0), 1.0}, {erv(0, 10), 2.0}}),
      make_group("c", {{erv(16, 0), 1.5}, {erv(4, 0), 3.0}}),
  };
  AllocationResult result = allocator.solve(groups);
  ASSERT_TRUE(result.feasible);
}

TEST(Allocator, LagrangianTracksExactOnRandomInstances) {
  // Property sweep: on random feasible instances, the Lagrangian solution
  // must stay within 15 % of the exact optimum (it is typically far closer;
  // see bench/allocator_ablation).
  Rng rng(21);
  Allocator lagrangian(hw(), SolverKind::kLagrangian);
  Allocator exact(hw(), SolverKind::kExhaustive);
  int compared = 0;
  int feasibility_misses = 0;  // heuristic falls back to co-allocation
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<AllocationGroup> groups;
    int n_apps = rng.uniform_int(2, 4);
    for (int a = 0; a < n_apps; ++a) {
      AllocationGroup group;
      group.app_name = "app" + std::to_string(a);
      int n_points = rng.uniform_int(3, 8);
      for (int c = 0; c < n_points; ++c) {
        OperatingPoint p;
        p.erv = erv(rng.uniform_int(0, 8), rng.uniform_int(0, 10));
        if (p.erv.total_threads() == 0) p.erv = erv(1, 0);
        p.nfc.utility = static_cast<double>(p.erv.total_threads());
        p.nfc.power_w = rng.uniform(1.0, 80.0);
        group.candidates.push_back(p);
        group.costs.push_back(rng.uniform(1.0, 200.0));
      }
      groups.push_back(std::move(group));
    }
    AllocationResult best = exact.solve(groups);
    AllocationResult approx = lagrangian.solve(groups);
    // The heuristic never claims feasibility where none exists…
    if (!best.feasible) {
      EXPECT_FALSE(approx.feasible);
      continue;
    }
    // …but may rarely miss a feasible selection (MMKP feasibility is itself
    // NP-hard); HARP then falls back to co-allocation (§4.2.2). Tolerate a
    // small miss rate.
    if (!approx.feasible) {
      ++feasibility_misses;
      continue;
    }
    ++compared;
    EXPECT_LE(approx.total_cost, best.total_cost * 1.15 + 1e-9);
  }
  EXPECT_GT(compared, 10);
  EXPECT_LE(feasibility_misses, 4);
}

TEST(Allocator, HeuristicsFeasibleAndBoundedOnRandomInstances) {
  // Property sweep over both heuristics: whenever a heuristic claims
  // feasibility, the selection must actually fit the capacity vector and the
  // concrete grant must be spatially isolated; the cost must stay within a
  // fixed factor of the branch-and-bound optimum (Lagrangian stays close,
  // greedy is looser but still bounded on these instance sizes).
  Rng rng(77);
  Allocator exact(hw(), SolverKind::kExhaustive);
  struct Heuristic {
    Allocator solver;
    double factor;
    int compared = 0;
  };
  std::vector<Heuristic> heuristics;
  heuristics.push_back({Allocator(hw(), SolverKind::kLagrangian), 1.5});
  heuristics.push_back({Allocator(hw(), SolverKind::kGreedy), 4.0});
  const std::vector<int> capacity{8, 16};

  for (int trial = 0; trial < 40; ++trial) {
    std::vector<AllocationGroup> groups;
    int n_apps = rng.uniform_int(2, 4);
    for (int a = 0; a < n_apps; ++a) {
      AllocationGroup group;
      group.app_name = "app" + std::to_string(a);
      int n_points = rng.uniform_int(2, 6);
      for (int c = 0; c < n_points; ++c) {
        OperatingPoint p;
        p.erv = erv(rng.uniform_int(0, 8), rng.uniform_int(0, 10));
        if (p.erv.total_threads() == 0) p.erv = erv(1, 0);
        p.nfc.utility = static_cast<double>(p.erv.total_threads());
        p.nfc.power_w = rng.uniform(1.0, 80.0);
        group.candidates.push_back(p);
        group.costs.push_back(rng.uniform(1.0, 200.0));
      }
      groups.push_back(std::move(group));
    }
    AllocationResult best = exact.solve(groups);

    for (Heuristic& h : heuristics) {
      AllocationResult approx = h.solver.solve(groups);
      // Never claim feasibility on an instance the exact solver proved
      // infeasible (a false grant would oversubscribe the machine).
      if (!best.feasible) {
        EXPECT_FALSE(approx.feasible);
        continue;
      }
      if (!approx.feasible) continue;  // co-allocation fallback; tolerated
      ++h.compared;
      EXPECT_TRUE(selection_feasible(groups, approx.selection, capacity))
          << "heuristic returned a capacity-violating selection on trial " << trial;
      ASSERT_EQ(approx.allocations.size(), groups.size());
      std::set<std::pair<std::size_t, int>> used;
      for (const platform::CoreAllocation& alloc : approx.allocations)
        for (std::size_t t = 0; t < alloc.cores.size(); ++t)
          for (const auto& [core, threads] : alloc.cores[t]) {
            (void)threads;
            EXPECT_TRUE(used.insert({t, core}).second)
                << "core assigned twice on trial " << trial;
          }
      EXPECT_LE(approx.total_cost, best.total_cost * h.factor + 1e-9)
          << "optimality gap exceeded on trial " << trial;
    }
  }
  // The sweep must actually exercise both heuristics, not skip via fallback.
  for (const Heuristic& h : heuristics) EXPECT_GT(h.compared, 20);
}

TEST(SelectionHelpers, FeasibilityAndCost) {
  std::vector<AllocationGroup> groups{make_group("a", {{erv(4, 0), 3.0}, {erv(16, 16), 1.0}})};
  EXPECT_TRUE(selection_feasible(groups, {0}, {8, 16}));
  EXPECT_FALSE(selection_feasible(groups, {1}, {4, 16}));
  EXPECT_DOUBLE_EQ(selection_cost(groups, {0}), 3.0);
}

}  // namespace
}  // namespace harp::core
