// Tests for the machine simulator: slot indexing, placement/spreading,
// progress and energy accounting, telemetry semantics, controls, and the
// scenario lifecycle.
#include <gtest/gtest.h>

#include <set>

#include "src/common/check.hpp"
#include "src/model/catalog.hpp"
#include "src/sched/baselines.hpp"
#include "src/sim/runner.hpp"

namespace harp::sim {
namespace {

platform::HardwareDescription hw() { return platform::raptor_lake(); }

model::WorkloadCatalog catalog() { return model::WorkloadCatalog::raptor_lake(); }

model::Scenario single(const std::string& name) { return model::Scenario{name, {{name, 0.0}}}; }

TEST(SlotMap, CountsAndRoundTrip) {
  SlotMap slots(hw());
  EXPECT_EQ(slots.num_slots(), 32);  // 8 P-cores x 2 + 16 E-cores
  for (int i = 0; i < slots.num_slots(); ++i) {
    const Slot& s = slots.slot(i);
    EXPECT_EQ(slots.index(s.type, s.core, s.smt), i);
  }
  EXPECT_THROW(slots.slot(32), CheckFailure);
  EXPECT_THROW(slots.index(0, 99, 0), CheckFailure);
}

TEST(SlotMap, SpreadOrderFillsFastCoresBeforeSmtSiblings) {
  platform::HardwareDescription machine = hw();
  SlotMap slots(machine);
  const std::vector<int>& order = slots.spread_order();
  ASSERT_EQ(order.size(), 32u);
  // First 8: P-core primary threads; next 16: E-cores; last 8: P siblings.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(slots.slot(order[static_cast<std::size_t>(i)]).type, 0);
    EXPECT_EQ(slots.slot(order[static_cast<std::size_t>(i)]).smt, 0);
  }
  for (int i = 8; i < 24; ++i) EXPECT_EQ(slots.slot(order[static_cast<std::size_t>(i)]).type, 1);
  for (int i = 24; i < 32; ++i) EXPECT_EQ(slots.slot(order[static_cast<std::size_t>(i)]).smt, 1);
}

TEST(SlotMap, SlotsOfAllocation) {
  platform::HardwareDescription machine = hw();
  SlotMap slots(machine);
  platform::CoreAllocation alloc = platform::CoreAllocation::empty(machine);
  alloc.cores[0].emplace_back(3, 2);  // P-core 3, both hyperthreads
  alloc.cores[1].emplace_back(5, 1);  // E-core 5
  std::vector<int> s = slots.slots_of(alloc);
  ASSERT_EQ(s.size(), 3u);
  std::set<int> unique(s.begin(), s.end());
  EXPECT_EQ(unique.size(), 3u);
}

TEST(Runner, SingleAppCompletesWithPlausibleTime) {
  sched::CfsPolicy cfs;
  ScenarioRunner runner(hw(), catalog(), single("ep.C"), RunOptions{});
  RunResult result = runner.run(cfs);
  ASSERT_EQ(result.apps.size(), 1u);
  EXPECT_EQ(result.apps[0].completions, 1);
  EXPECT_GT(result.apps[0].exec_seconds, 1.0);
  EXPECT_LT(result.apps[0].exec_seconds, 10.0);
  EXPECT_GT(result.package_energy_j, 0.0);
  EXPECT_NEAR(result.makespan, result.apps[0].finish, 0.05);
}

TEST(Runner, ArrivalDelaysStart) {
  model::Scenario scenario{"staggered", {{"ep.C", 0.0}, {"ep.C", 5.0}}};
  sched::CfsPolicy cfs;
  ScenarioRunner runner(hw(), catalog(), scenario, RunOptions{});
  RunResult result = runner.run(cfs);
  EXPECT_GT(result.apps[1].finish, 5.0);
  EXPECT_GT(result.makespan, 5.0);
}

TEST(Runner, EnergyIncludesIdleAndUncore) {
  // An almost-empty machine still draws uncore + idle power for the whole
  // makespan.
  sched::CfsPolicy cfs;
  ScenarioRunner runner(hw(), catalog(), single("ep.C"), RunOptions{});
  RunResult result = runner.run(cfs);
  platform::HardwareDescription machine = hw();
  double floor = machine.uncore_power_w * result.makespan;
  EXPECT_GT(result.package_energy_j, floor);
}

TEST(Runner, ControlRestrictsPlacementAndThreads) {
  // Pin ep.C to 4 E-cores with 4 threads; the CPU-time accounting must show
  // E-type time only.
  platform::HardwareDescription machine = hw();
  SlotMap slots(machine);
  AppControl control;
  control.threads = 4;
  for (int c = 0; c < 4; ++c) control.allowed_slots.push_back(slots.index(1, c, 0));
  sched::PinnedPolicy pinned({{"ep.C", control}});
  ScenarioRunner runner(machine, catalog(), single("ep.C"), RunOptions{});
  RunResult result = runner.run(pinned);
  EXPECT_LT(result.apps[0].cpu_seconds_by_type[0], 0.3);  // startup thread only
  EXPECT_GT(result.apps[0].cpu_seconds_by_type[1], 1.0);
}

TEST(Runner, SmallerAllocationIsSlowerButCheaper) {
  platform::HardwareDescription machine = hw();
  SlotMap slots(machine);
  AppControl small;
  small.threads = 4;
  for (int c = 0; c < 4; ++c) small.allowed_slots.push_back(slots.index(1, c, 0));
  sched::PinnedPolicy pinned({{"ep.C", small}});
  ScenarioRunner restricted(machine, catalog(), single("ep.C"), RunOptions{});
  RunResult with_small = restricted.run(pinned);

  sched::CfsPolicy cfs;
  ScenarioRunner full(machine, catalog(), single("ep.C"), RunOptions{});
  RunResult with_full = full.run(cfs);

  EXPECT_GT(with_small.makespan, with_full.makespan);
  EXPECT_LT(with_small.package_energy_j / with_small.makespan,
            with_full.package_energy_j / with_full.makespan);  // lower avg power
}

TEST(Runner, MgmtDragSlowsProgress) {
  AppControl dragged;
  dragged.mgmt_drag = 0.2;
  sched::PinnedPolicy pinned({{"ep.C", dragged}});
  ScenarioRunner runner(hw(), catalog(), single("ep.C"), RunOptions{});
  RunResult with_drag = runner.run(pinned);

  sched::CfsPolicy cfs;
  ScenarioRunner clean(hw(), catalog(), single("ep.C"), RunOptions{});
  RunResult without = clean.run(cfs);
  EXPECT_GT(with_drag.makespan, 1.1 * without.makespan);
}

TEST(Runner, OverheadChargeStealsProgress) {
  // A policy that burns RM CPU every tick measurably extends the makespan.
  class BurnPolicy : public Policy {
   public:
    std::string name() const override { return "burn"; }
    void attach(RunnerApi& api) override { api_ = &api; }
    void tick() override { api_->charge_overhead(0.01); }  // 10 ms per 10 ms tick
    RunnerApi* api_ = nullptr;
  };
  BurnPolicy burn;
  ScenarioRunner runner(hw(), catalog(), single("ep.C"), RunOptions{});
  RunResult burned = runner.run(burn);

  sched::CfsPolicy cfs;
  ScenarioRunner clean(hw(), catalog(), single("ep.C"), RunOptions{});
  RunResult baseline = clean.run(cfs);
  EXPECT_GT(burned.makespan, baseline.makespan);
}

TEST(Runner, PerfCounterMeasuresRatesSinceLastRead) {
  class ProbePolicy : public Policy {
   public:
    std::string name() const override { return "probe"; }
    void attach(RunnerApi& api) override { api_ = &api; }
    void tick() override {
      if (api_->now() >= 1.0 && first_read_ < 0.0) {
        for (const RunningAppInfo& app : api_->running_apps())
          first_read_ = api_->read_perf_gips(app.id);
      }
    }
    RunnerApi* api_ = nullptr;
    double first_read_ = -1.0;
  };
  ProbePolicy probe;
  RunOptions options;
  options.perf_noise = 0.0;
  ScenarioRunner runner(hw(), catalog(), single("ep.C"), options);
  (void)runner.run(probe);
  // ep.C on the whole machine retires tens of giga-instructions per second.
  EXPECT_GT(probe.first_read_, 10.0);
  EXPECT_LT(probe.first_read_, 200.0);
}

TEST(Runner, PackageEnergyReadsAreDeltas) {
  class EnergyProbe : public Policy {
   public:
    std::string name() const override { return "eprobe"; }
    void attach(RunnerApi& api) override { api_ = &api; }
    void tick() override {
      if (api_->now() >= next_) {
        next_ += 1.0;
        reads_.push_back(api_->read_package_energy());
      }
    }
    RunnerApi* api_ = nullptr;
    double next_ = 1.0;
    std::vector<double> reads_;
  };
  EnergyProbe probe;
  RunOptions options;
  options.energy_noise = 0.0;
  ScenarioRunner runner(hw(), catalog(), single("mg.C"), options);
  (void)runner.run(probe);
  ASSERT_GE(probe.reads_.size(), 3u);
  // Every ~1 s window of a busy machine burns tens of joules, not the
  // cumulative total.
  for (std::size_t i = 1; i < probe.reads_.size(); ++i) {
    EXPECT_GT(probe.reads_[i], 10.0);
    EXPECT_LT(probe.reads_[i], 300.0);
  }
}

TEST(Runner, UtilityOnlyForProvidingApps) {
  class UtilityProbe : public Policy {
   public:
    std::string name() const override { return "uprobe"; }
    void attach(RunnerApi& api) override { api_ = &api; }
    void tick() override {
      if (api_->now() >= 1.0 && !checked_) {
        checked_ = true;
        for (const RunningAppInfo& app : api_->running_apps())
          has_utility_ = api_->read_app_utility(app.id).has_value();
      }
    }
    RunnerApi* api_ = nullptr;
    bool checked_ = false;
    bool has_utility_ = false;
  };
  UtilityProbe with;
  ScenarioRunner runner_vgg(hw(), catalog(), single("vgg"), RunOptions{});
  (void)runner_vgg.run(with);
  EXPECT_TRUE(with.has_utility_);

  UtilityProbe without;
  ScenarioRunner runner_ep(hw(), catalog(), single("ep.C"), RunOptions{});
  (void)runner_ep.run(without);
  EXPECT_FALSE(without.has_utility_);
}

TEST(Runner, RepeatHorizonRestartsApps) {
  sched::CfsPolicy cfs;
  RunOptions options;
  options.repeat_horizon = 12.0;
  ScenarioRunner runner(hw(), catalog(), single("ep.C"), options);
  RunResult result = runner.run(cfs);
  EXPECT_GE(result.apps[0].completions, 2);
  EXPECT_NEAR(result.makespan, 12.0, 0.1);
}

TEST(Runner, LifecycleCallbacksFire) {
  class CountPolicy : public Policy {
   public:
    std::string name() const override { return "count"; }
    void on_app_start(AppId) override { ++starts_; }
    void on_app_exit(AppId) override { ++exits_; }
    int starts_ = 0;
    int exits_ = 0;
  };
  CountPolicy count;
  model::Scenario scenario{"pair", {{"ep.C", 0.0}, {"is.C", 0.0}}};
  ScenarioRunner runner(hw(), catalog(), scenario, RunOptions{});
  (void)runner.run(count);
  EXPECT_EQ(count.starts_, 2);
  EXPECT_EQ(count.exits_, 2);
}

TEST(Runner, DeterministicForSeed) {
  auto run_with_seed = [&](std::uint64_t seed) {
    RunOptions options;
    options.seed = seed;
    sched::CfsPolicy cfs;
    ScenarioRunner runner(hw(), catalog(), single("is.C"), options);
    return runner.run(cfs);
  };
  RunResult a = run_with_seed(3);
  RunResult b = run_with_seed(3);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.package_energy_j, b.package_energy_j);
}

TEST(Runner, GovernorPerformanceBurnsMoreIdlePower) {
  auto run_with = [&](Governor governor) {
    RunOptions options;
    options.governor = governor;
    platform::HardwareDescription machine = hw();
    SlotMap slots(machine);
    AppControl small;
    small.threads = 2;
    small.allowed_slots = {slots.index(1, 0, 0), slots.index(1, 1, 0)};
    sched::PinnedPolicy pinned({{"mg.C", small}});
    ScenarioRunner runner(machine, catalog(), single("mg.C"), options);
    return runner.run(pinned);
  };
  RunResult powersave = run_with(Governor::kPowersave);
  RunResult performance = run_with(Governor::kPerformance);
  // Mostly-idle machine: performance governor's shallow idle states cost.
  EXPECT_GT(performance.package_energy_j / performance.makespan,
            powersave.package_energy_j / powersave.makespan);
}

TEST(RunResult, AppLookup) {
  sched::CfsPolicy cfs;
  ScenarioRunner runner(hw(), catalog(), single("ep.C"), RunOptions{});
  RunResult result = runner.run(cfs);
  EXPECT_EQ(result.app("ep.C").name, "ep.C");
  EXPECT_THROW(result.app("nope"), CheckFailure);
}

}  // namespace
}  // namespace harp::sim
