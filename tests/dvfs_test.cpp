// Tests for the DVFS extension (§7 outlook): the frequency-aware behaviour
// model and the (allocation × frequency) allocator prototype.
#include <gtest/gtest.h>

#include "src/common/check.hpp"
#include "src/harp/dse.hpp"
#include "src/harp/dvfs.hpp"
#include "src/harp/policy.hpp"
#include "src/model/catalog.hpp"
#include "src/platform/hardware.hpp"
#include "src/sched/baselines.hpp"
#include "src/sim/runner.hpp"

namespace harp::core {
namespace {

platform::HardwareDescription hw() { return platform::raptor_lake(); }

TEST(DvfsModel, ThroughputScalesLinearly) {
  model::WorkloadCatalog catalog = model::WorkloadCatalog::raptor_lake();
  const model::AppBehavior& app = catalog.app("pi");  // compute bound
  platform::ExtendedResourceVector erv =
      platform::ExtendedResourceVector::from_threads(hw(), {8, 0});
  model::AppRates full = model::exclusive_rates(app, hw(), erv, 0.0, 1.0);
  model::AppRates half = model::exclusive_rates(app, hw(), erv, 0.0, 0.5);
  EXPECT_NEAR(half.useful_gips, 0.5 * full.useful_gips, 0.02 * full.useful_gips);
}

TEST(DvfsModel, PowerHasLeakageFloor) {
  model::WorkloadCatalog catalog = model::WorkloadCatalog::raptor_lake();
  const model::AppBehavior& app = catalog.app("pi");
  platform::ExtendedResourceVector erv =
      platform::ExtendedResourceVector::from_threads(hw(), {8, 0});
  model::AppRates full = model::exclusive_rates(app, hw(), erv, 0.0, 1.0);
  model::AppRates slow = model::exclusive_rates(app, hw(), erv, 0.0, 0.7);
  // Power drops super-linearly in the dynamic share but never below the
  // leakage floor.
  EXPECT_LT(slow.power_w, full.power_w);
  EXPECT_GT(slow.power_w, model::kDvfsLeakageShare * full.power_w);
}

TEST(DvfsModel, EnergyPerWorkTradeDependsOnBoundness) {
  model::WorkloadCatalog catalog = model::WorkloadCatalog::raptor_lake();
  platform::ExtendedResourceVector erv =
      platform::ExtendedResourceVector::from_threads(hw(), {8, 0});
  // Compute-bound: energy-per-work (p/v) barely improves from slowing down
  // because the leakage floor dominates while time stretches.
  const model::AppBehavior& compute = catalog.app("pi");
  model::AppRates c_full = model::exclusive_rates(compute, hw(), erv, 0.0, 1.0);
  model::AppRates c_slow = model::exclusive_rates(compute, hw(), erv, 0.0, 0.7);
  double c_gain = (c_full.power_w / c_full.useful_gips) / (c_slow.power_w / c_slow.useful_gips);
  // Bandwidth-saturated (mg on the full machine sits far above the memory
  // ceiling): useful rate barely drops, power does — clear win.
  const model::AppBehavior& memory = catalog.app("mg.C");
  platform::ExtendedResourceVector full_machine = platform::ExtendedResourceVector::full(hw());
  model::AppRates m_full = model::exclusive_rates(memory, hw(), full_machine, 0.0, 1.0);
  model::AppRates m_slow = model::exclusive_rates(memory, hw(), full_machine, 0.0, 0.7);
  double m_gain = (m_full.power_w / m_full.useful_gips) / (m_slow.power_w / m_slow.useful_gips);
  EXPECT_GT(m_gain, c_gain);
  EXPECT_GT(m_gain, 1.1);
}

TEST(DvfsModel, ValidatesFrequency) {
  model::WorkloadCatalog catalog = model::WorkloadCatalog::raptor_lake();
  const model::AppBehavior& app = catalog.app("pi");
  platform::ExtendedResourceVector erv =
      platform::ExtendedResourceVector::from_threads(hw(), {1, 0});
  EXPECT_THROW(model::exclusive_rates(app, hw(), erv, 0.0, 0.0), CheckFailure);
  EXPECT_THROW(model::exclusive_rates(app, hw(), erv, 0.0, 1.5), CheckFailure);
}

TEST(DvfsDse, PerLevelTablesScale) {
  model::WorkloadCatalog catalog = model::WorkloadCatalog::raptor_lake();
  DseOptions slow;
  slow.freq_scale = 0.7;
  OperatingPointTable full = run_offline_dse(catalog.app("pi"), hw());
  OperatingPointTable reduced = run_offline_dse(catalog.app("pi"), hw(), slow);
  EXPECT_LT(reduced.utility_max(), full.utility_max());
}

TEST(DvfsPolicy, RejectsBadLevels) {
  DvfsOptions missing_max;
  missing_max.freq_levels = {0.8, 0.6};
  EXPECT_THROW(DvfsHarpPolicy{missing_max}, CheckFailure);
  DvfsOptions out_of_range;
  out_of_range.freq_levels = {1.0, 1.2};
  EXPECT_THROW(DvfsHarpPolicy{out_of_range}, CheckFailure);
}

TEST(DvfsPolicy, ComputeBoundAppsRaceToIdle) {
  model::WorkloadCatalog catalog = model::WorkloadCatalog::raptor_lake();
  DvfsHarpPolicy policy;
  sim::RunOptions options;
  double freq = 0.0;
  options.tick_hook = [&](double) {
    auto active = policy.active_frequencies();
    if (!active.empty()) freq = active.begin()->second;
  };
  sim::ScenarioRunner runner(hw(), catalog, model::Scenario{"pi", {{"pi", 0.0}}}, options);
  (void)runner.run(policy);
  EXPECT_DOUBLE_EQ(freq, 1.0);
}

TEST(DvfsPolicy, SavesEnergyOnBandwidthBoundApp) {
  model::WorkloadCatalog catalog = model::WorkloadCatalog::raptor_lake();
  auto run_with = [&](sim::Policy& policy) {
    sim::RunOptions options;
    options.seed = 9;
    sim::ScenarioRunner runner(hw(), catalog, model::Scenario{"bt.C", {{"bt.C", 0.0}}},
                               options);
    return runner.run(policy);
  };
  DvfsHarpPolicy dvfs;
  sim::RunResult with_dvfs = run_with(dvfs);

  std::map<std::string, OperatingPointTable> offline;
  offline["bt.C"] = run_offline_dse(catalog.app("bt.C"), hw());
  HarpOptions fixed;
  fixed.mode = HarpOptions::Mode::kOffline;
  fixed.offline_tables = offline;
  HarpPolicy plain(fixed);
  sim::RunResult without = run_with(plain);

  EXPECT_LT(with_dvfs.package_energy_j, without.package_energy_j);
}

TEST(DvfsPolicy, MultiAppAllocationsStayFeasible) {
  model::WorkloadCatalog catalog = model::WorkloadCatalog::raptor_lake();
  DvfsHarpPolicy policy;
  sim::RunOptions options;
  options.seed = 4;
  model::Scenario scenario{"mix", {{"ep.C", 0.0}, {"bt.C", 0.0}, {"mg.C", 0.0}}};
  sim::ScenarioRunner runner(hw(), catalog, scenario, options);
  sim::RunResult result = runner.run(policy);
  for (const sim::AppRunStats& app : result.apps) EXPECT_EQ(app.completions, 1);
}

}  // namespace
}  // namespace harp::core
