// Tests for the sharded multi-RM scale-out (src/harp/rm_shard.hpp): budget
// conservation across rebalances, λ-drift core migration, the 200-seed
// allocation bit-equivalence between a single RmServer and a ShardedRmServer
// with rebalancing disabled, per-shard fault/lease isolation, shard
// telemetry, and a threaded smoke run. Also registered under the `race`
// ctest label so the HARP_RACE_CHECK / TSan CI job runs the whole suite.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.hpp"
#include "src/harp/rm_shard.hpp"
#include "src/platform/hardware.hpp"
#include "src/telemetry/clock.hpp"
#include "src/telemetry/metrics.hpp"
#include "src/telemetry/trace.hpp"

namespace harp::core {
namespace {

using ipc::ActivateMsg;
using ipc::Message;
using ipc::OperatingPointsMsg;
using ipc::RegisterRequest;

/// The app-side half of one simulated client plus everything it received.
struct TestClient {
  std::unique_ptr<ipc::Channel> app;
  std::vector<ActivateMsg> activations;
  int acks = 0;
};

OperatingPointsMsg::Point point(const platform::HardwareDescription& hw, int p_threads,
                                int e_threads, double utility, double power_w) {
  return {platform::ExtendedResourceVector::from_threads(hw, {p_threads, e_threads}), utility,
          power_w};
}

/// Queue a registration (and optional points) on a fresh in-process pair;
/// returns the app end and hands the RM end back through `rm_end`.
TestClient make_client(const std::string& name, int pid,
                       const std::vector<OperatingPointsMsg::Point>& points,
                       std::unique_ptr<ipc::Channel>* rm_end) {
  auto [server_end, app_end] = ipc::make_in_process_pair();
  RegisterRequest reg;
  reg.pid = pid;
  reg.app_name = name;
  EXPECT_TRUE(app_end->send(Message(reg)).ok());
  if (!points.empty()) {
    OperatingPointsMsg msg;
    msg.points = points;
    EXPECT_TRUE(app_end->send(Message(msg)).ok());
  }
  *rm_end = std::move(server_end);
  return TestClient{std::move(app_end), {}, 0};
}

/// Drain everything pending on a client's app end into its record. Stops
/// cleanly if the server dropped the client (peer closed).
void drain(TestClient& client) {
  for (;;) {
    auto polled = client.app->poll();
    if (!polled.ok() || !polled.value().has_value()) return;
    const Message& message = *polled.value();
    if (std::holds_alternative<ActivateMsg>(message))
      client.activations.push_back(std::get<ActivateMsg>(message));
    else if (std::holds_alternative<ipc::RegisterAck>(message))
      ++client.acks;
  }
}

/// Assert the per-shard budgets partition the platform exactly: for every
/// core type, the union of owned ids across shards is {0..count-1} with no
/// overlap — the conservation invariant after any number of rebalances.
void expect_partition(const std::vector<std::vector<std::vector<int>>>& budgets,
                      const platform::HardwareDescription& hw) {
  ASSERT_FALSE(budgets.empty());
  for (std::size_t t = 0; t < hw.core_types.size(); ++t) {
    std::vector<int> owned;
    for (const auto& shard : budgets) {
      ASSERT_GT(shard.size(), t);
      owned.insert(owned.end(), shard[t].begin(), shard[t].end());
    }
    std::sort(owned.begin(), owned.end());
    ASSERT_EQ(owned.size(), static_cast<std::size_t>(hw.core_types[t].core_count))
        << "type " << hw.core_types[t].name;
    for (int c = 0; c < hw.core_types[t].core_count; ++c)
      EXPECT_EQ(owned[static_cast<std::size_t>(c)], c) << "type " << hw.core_types[t].name;
  }
}

std::string activation_to_string(const ActivateMsg& msg) {
  std::string out = "erv[";
  for (int t = 0; t < msg.erv.num_types(); ++t)
    out += std::to_string(msg.erv.threads(t)) + " ";
  out += "] cores[";
  for (const auto& grant : msg.cores)
    out += std::to_string(grant.type) + ":" + std::to_string(grant.core) + "x" +
           std::to_string(grant.threads) + " ";
  out += "] par=" + std::to_string(msg.parallelism);
  return out;
}

bool same_activation(const ActivateMsg& a, const ActivateMsg& b) {
  if (!(a.erv == b.erv) || a.parallelism != b.parallelism || a.rebalance != b.rebalance ||
      a.cores.size() != b.cores.size())
    return false;
  for (std::size_t i = 0; i < a.cores.size(); ++i)
    if (a.cores[i].type != b.cores[i].type || a.cores[i].core != b.cores[i].core ||
        a.cores[i].threads != b.cores[i].threads)
      return false;
  return true;
}

TEST(ShardedRm, InitialBudgetsPartitionPlatform) {
  platform::HardwareDescription hw = platform::raptor_lake();
  ShardedRmOptions options;
  options.num_shards = 3;
  options.rebalance = RebalanceMode::kLambdaDrift;
  ShardedRmServer rm(hw, options);
  EXPECT_EQ(rm.shard_count(), 3);
  expect_partition(rm.budgets(), hw);
}

TEST(ShardedRm, RoundRobinAdoptionSpreadsClients) {
  platform::HardwareDescription hw = platform::raptor_lake();
  ShardedRmOptions options;
  options.num_shards = 2;
  ShardedRmServer rm(hw, options);
  for (int i = 0; i < 5; ++i) {
    auto [server_end, app_end] = ipc::make_in_process_pair();
    rm.adopt_channel(std::move(server_end));
    (void)app_end;  // closing the app end is fine; adoption already happened
  }
  EXPECT_EQ(rm.client_count(), 5u);
  EXPECT_EQ(rm.shard(0).client_count(), 3u);
  EXPECT_EQ(rm.shard(1).client_count(), 2u);
}

// The headline determinism property: with rebalancing disabled the
// coordinator solves the identical MMKP instance a single server would, so
// every client receives a bit-identical activation — across 200 seeded
// random workloads.
TEST(ShardedRm, DisabledModeMatchesSingleServerOver200Seeds) {
  platform::HardwareDescription hw = platform::raptor_lake();
  for (int seed = 1; seed <= 200; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 2654435761u + 17);
    int n_clients = rng.uniform_int(1, 5);
    std::vector<std::vector<OperatingPointsMsg::Point>> specs;
    for (int c = 0; c < n_clients; ++c) {
      int n_points = rng.uniform_int(1, 3);
      std::vector<OperatingPointsMsg::Point> points;
      for (int p = 0; p < n_points; ++p) {
        int p_threads = rng.uniform_int(0, 8);
        int e_threads = rng.uniform_int(0, 8);
        if (p_threads == 0 && e_threads == 0) p_threads = 1;
        points.push_back(point(hw, p_threads, e_threads,
                               1.0 + rng.uniform_int(0, 99),
                               1.0 + rng.uniform_int(0, 49)));
      }
      specs.push_back(std::move(points));
    }

    RmServerOptions server_options;
    server_options.lease_seconds = 0;

    // Single server.
    std::vector<TestClient> single_clients;
    {
      RmServer rm(hw, server_options);
      for (int c = 0; c < n_clients; ++c) {
        std::unique_ptr<ipc::Channel> rm_end;
        single_clients.push_back(
            make_client("app" + std::to_string(c), 100 + c, specs[static_cast<std::size_t>(c)],
                        &rm_end));
        rm.adopt_channel(std::move(rm_end));
      }
      rm.poll(0.0);
      rm.poll(0.0);
      for (TestClient& client : single_clients) drain(client);
    }

    // Sharded, rebalance disabled, same adoption order.
    std::vector<TestClient> sharded_clients;
    {
      ShardedRmOptions options;
      options.num_shards = 3;
      options.rebalance = RebalanceMode::kDisabled;
      options.server = server_options;
      ShardedRmServer rm(hw, options);
      for (int c = 0; c < n_clients; ++c) {
        std::unique_ptr<ipc::Channel> rm_end;
        sharded_clients.push_back(
            make_client("app" + std::to_string(c), 100 + c, specs[static_cast<std::size_t>(c)],
                        &rm_end));
        rm.adopt_channel(std::move(rm_end));
      }
      rm.poll(0.0);
      rm.poll(0.0);
      EXPECT_GE(rm.coordinator_solves(), 1u);
      for (TestClient& client : sharded_clients) drain(client);
    }

    for (int c = 0; c < n_clients; ++c) {
      const TestClient& single = single_clients[static_cast<std::size_t>(c)];
      const TestClient& sharded = sharded_clients[static_cast<std::size_t>(c)];
      ASSERT_FALSE(single.activations.empty()) << "seed " << seed << " client " << c;
      ASSERT_FALSE(sharded.activations.empty()) << "seed " << seed << " client " << c;
      const ActivateMsg& a = single.activations.back();
      const ActivateMsg& b = sharded.activations.back();
      EXPECT_TRUE(same_activation(a, b))
          << "seed " << seed << " client " << c << "\n  single:  " << activation_to_string(a)
          << "\n  sharded: " << activation_to_string(b);
    }
  }
}

// λ-drift rebalancing: pile contended clients onto shard 0 while shard 1
// idles; after the hysteresis window one core must migrate toward the
// contention, and the budgets must remain an exact partition throughout.
TEST(ShardedRm, LambdaDriftMovesCoreTowardContention) {
  platform::HardwareDescription hw = platform::raptor_lake();
  int p_type = hw.type_index("P");
  ASSERT_GE(p_type, 0);

  ShardedRmOptions options;
  options.num_shards = 2;
  options.rebalance = RebalanceMode::kLambdaDrift;
  options.rebalance_min_cycles = 3;
  options.lambda_drift_threshold = 0.25;
  options.server.lease_seconds = 0;
  ShardedRmServer rm(hw, options);

  std::size_t shard0_p_cores_before =
      rm.budgets()[0][static_cast<std::size_t>(p_type)].size();

  // Six clients, all on shard 0, each wanting most of the shard's P threads
  // (with a cheap fallback so the shard solve stays feasible).
  std::vector<TestClient> clients;
  for (int c = 0; c < 6; ++c) {
    std::unique_ptr<ipc::Channel> rm_end;
    clients.push_back(make_client("hot" + std::to_string(c), 200 + c,
                                  {point(hw, 8, 0, 100.0, 40.0), point(hw, 1, 0, 5.0, 5.0)},
                                  &rm_end));
    rm.adopt_into_shard(0, std::move(rm_end));
  }

  for (int cycle = 0; cycle < 12 && rm.rebalances() == 0; ++cycle) {
    rm.poll(static_cast<double>(cycle));
    expect_partition(rm.budgets(), hw);
  }
  ASSERT_GE(rm.rebalances(), 1u);
  expect_partition(rm.budgets(), hw);
  EXPECT_GT(rm.budgets()[0][static_cast<std::size_t>(p_type)].size(), shard0_p_cores_before);
}

// A misbehaving client must be cut by its own shard without disturbing
// clients on other shards.
TEST(ShardedRm, FaultyClientIsIsolatedToItsShard) {
  platform::HardwareDescription hw = platform::raptor_lake();
  ShardedRmOptions options;
  options.num_shards = 2;
  options.server.max_malformed_frames = 3;
  options.server.lease_seconds = 0;
  ShardedRmServer rm(hw, options);

  // Bad client on shard 0: a stream of garbage frames.
  auto [bad_rm_end, bad_app_end] = ipc::make_in_process_pair();
  std::vector<std::uint8_t> garbage(16, 0xEE);
  for (int i = 0; i < 12; ++i) ASSERT_TRUE(bad_app_end->send_raw(garbage).ok());
  rm.adopt_into_shard(0, std::move(bad_rm_end));

  // Good client on shard 1.
  std::unique_ptr<ipc::Channel> good_rm_end;
  TestClient good = make_client("good", 300, {point(hw, 2, 0, 10.0, 5.0)}, &good_rm_end);
  rm.adopt_into_shard(1, std::move(good_rm_end));

  rm.poll(0.0);
  rm.poll(0.0);
  EXPECT_EQ(rm.shard(0).client_count(), 0u);  // struck out after 3 bad frames
  EXPECT_EQ(rm.shard(1).client_count(), 1u);
  drain(good);
  EXPECT_EQ(good.acks, 1);
  EXPECT_FALSE(good.activations.empty());
}

TEST(ShardedRm, LeaseEvictionRunsPerShard) {
  platform::HardwareDescription hw = platform::raptor_lake();
  ShardedRmOptions options;
  options.num_shards = 2;
  options.server.lease_seconds = 5.0;
  ShardedRmServer rm(hw, options);

  std::vector<TestClient> clients;
  for (int c = 0; c < 2; ++c) {
    std::unique_ptr<ipc::Channel> rm_end;
    clients.push_back(make_client("quiet" + std::to_string(c), 400 + c,
                                  {point(hw, 1, 0, 10.0, 5.0)}, &rm_end));
    rm.adopt_into_shard(c, std::move(rm_end));
  }
  rm.poll(0.0);
  EXPECT_EQ(rm.client_count(), 2u);

  rm.poll(100.0);  // 100 s of silence >> the 5 s lease
  EXPECT_EQ(rm.client_count(), 0u);
  EXPECT_EQ(rm.shard(0).lease_evictions(), 1u);
  EXPECT_EQ(rm.shard(1).lease_evictions(), 1u);
}

TEST(ShardedRm, EmitsShardTelemetryAndMetrics) {
  platform::HardwareDescription hw = platform::raptor_lake();
  telemetry::ManualClock clock;
  telemetry::Tracer tracer(&clock);
  telemetry::MetricsRegistry metrics;

  ShardedRmOptions options;
  options.num_shards = 2;
  options.server.lease_seconds = 0;
  options.server.tracer = &tracer;
  options.server.metrics = &metrics;
  ShardedRmServer rm(hw, options);

  std::unique_ptr<ipc::Channel> rm_end;
  TestClient client = make_client("traced", 500, {point(hw, 2, 0, 10.0, 5.0)}, &rm_end);
  rm.adopt_channel(std::move(rm_end));
  rm.poll(0.0);
  clock.advance(0.1);
  rm.poll(0.1);

  int shard_cycle_begins = 0, shard_cycle_ends = 0;
  bool saw_shard0 = false, saw_shard1 = false, saw_coordinator = false;
  for (const telemetry::TraceEvent& event : tracer.events()) {
    if (event.type == telemetry::EventType::kShardCycle) {
      if (event.phase == telemetry::Phase::kBegin) ++shard_cycle_begins;
      if (event.phase == telemetry::Phase::kEnd) ++shard_cycle_ends;
      if (event.scope == "shard0") saw_shard0 = true;
      if (event.scope == "shard1") saw_shard1 = true;
    }
    if (event.type == telemetry::EventType::kAllocCycle && event.scope == "coordinator")
      saw_coordinator = true;
  }
  EXPECT_EQ(shard_cycle_begins, shard_cycle_ends);
  EXPECT_GE(shard_cycle_begins, 4);  // 2 shards x 2 polls
  EXPECT_TRUE(saw_shard0);
  EXPECT_TRUE(saw_shard1);
  EXPECT_TRUE(saw_coordinator);

  std::string snapshot = metrics.text_snapshot();
  EXPECT_NE(snapshot.find("rm_eventloop_cycles_total"), std::string::npos);
  EXPECT_NE(snapshot.find("rm_eventloop_ready_fds"), std::string::npos);
  EXPECT_NE(snapshot.find("rm_shard_rebalances_total"), std::string::npos);
  EXPECT_NE(snapshot.find("rm_cycle_seconds_shard0"), std::string::npos);
  EXPECT_NE(snapshot.find("rm_cycle_seconds_shard1"), std::string::npos);
}

// Threaded smoke: shards on their own blocking threads must accept
// cross-thread adoptions (wakeup path) and deliver activations end to end.
// Bounded wall-clock wait; also exercised under TSan via the `race` label.
TEST(ShardedRm, ThreadedShardsDeliverActivations) {
  platform::HardwareDescription hw = platform::raptor_lake();
  ShardedRmOptions options;
  options.num_shards = 2;
  options.rebalance = RebalanceMode::kLambdaDrift;
  options.server.lease_seconds = 0;
  ShardedRmServer rm(hw, options);
  rm.start_threads();

  std::vector<TestClient> clients;
  for (int c = 0; c < 4; ++c) {
    std::unique_ptr<ipc::Channel> rm_end;
    clients.push_back(make_client("threaded" + std::to_string(c), 600 + c,
                                  {point(hw, 2, 2, 10.0 + c, 5.0)}, &rm_end));
    rm.adopt_channel(std::move(rm_end));
  }

  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool all_activated = false;
  while (!all_activated && std::chrono::steady_clock::now() < deadline) {
    all_activated = true;
    for (TestClient& client : clients) {
      drain(client);
      if (client.activations.empty()) all_activated = false;
    }
    if (!all_activated) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  rm.stop_threads();
  EXPECT_TRUE(all_activated);
  for (TestClient& client : clients) EXPECT_EQ(client.acks, 1);
}

}  // namespace
}  // namespace harp::core
