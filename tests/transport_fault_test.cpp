// Regression tests for the AF_UNIX transport and the RM's socket accept
// path. These use real sockets (and the send-timeout test blocks ~100 ms),
// so the suite is deliberately not part of tier1.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/harp/rm_server.hpp"
#include "src/ipc/transport.hpp"
#include "src/platform/hardware.hpp"

namespace harp {
namespace {

// Regression — a frame that timed out mid-send used to return an error yet
// leave the channel open with a partial frame on the wire, so every later
// frame was parsed against the torn byte stream. The channel must die with
// the frame instead.
TEST(UnixTransport, MidFrameSendTimeoutClosesChannel) {
  std::string path = ::testing::TempDir() + "/harp_send_timeout.sock";
  auto server = ipc::UnixServer::listen(path);
  ASSERT_TRUE(server.ok()) << server.error().message;
  auto client = ipc::unix_connect(path);
  ASSERT_TRUE(client.ok()) << client.error().message;
  auto accepted = server.value()->accept();
  ASSERT_TRUE(accepted.ok());
  ASSERT_TRUE(accepted.value().has_value());

  // Nobody reads the accepted end: a frame far larger than the socket
  // buffer partially writes, then times out mid-frame.
  std::vector<std::uint8_t> huge(8 * 1024 * 1024, 0xAB);
  Status status = client.value()->send_raw(huge);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("mid-frame"), std::string::npos)
      << status.error().message;
  EXPECT_TRUE(client.value()->closed());
  EXPECT_FALSE(client.value()->send_raw({1, 2, 3}).ok());
}

// Regression — poll() locks the server mutex and then adopted accepted
// connections through the public adopt_channel(), which locks it again: the
// first real socket client self-deadlocked the RM event loop.
TEST(UnixTransport, RmAcceptsSocketClientsWithoutDeadlock) {
  std::string path = ::testing::TempDir() + "/harp_accept.sock";
  core::RmServer rm(platform::odroid_xu3e());
  ASSERT_TRUE(rm.listen(path).ok());
  auto client = ipc::unix_connect(path);
  ASSERT_TRUE(client.ok()) << client.error().message;
  rm.poll(0.0);
  EXPECT_EQ(rm.client_count(), 1u);
}

}  // namespace
}  // namespace harp
