// Unit tests for the JSON substrate: parsing, error reporting, round trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/common/check.hpp"
#include "src/json/json.hpp"

namespace harp::json {
namespace {

/// Parse text the test requires to be valid; fails the test (and returns a
/// null Value) otherwise, so call sites never touch an error-state Result.
Value parsed(const std::string& text) {
  Result<Value> r = parse(text);
  EXPECT_TRUE(r.ok()) << "parse failed: " << text;
  if (!r.ok()) return Value();
  return std::move(r).take();
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parsed("null").is_null());
  EXPECT_EQ(parsed("true").as_bool(), true);
  EXPECT_EQ(parsed("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(parsed("3.5").as_number(), 3.5);
  EXPECT_DOUBLE_EQ(parsed("-2e3").as_number(), -2000.0);
  EXPECT_EQ(parsed("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, NestedDocument) {
  auto r = parse(R"({"a": [1, 2, {"b": true}], "c": "x"})");
  ASSERT_TRUE(r.ok());
  const Value& v = r.value();
  EXPECT_EQ(v.at("a").as_array().size(), 3u);
  EXPECT_TRUE(v.at("a").as_array()[2].at("b").as_bool());
  EXPECT_EQ(v.at("c").as_string(), "x");
}

TEST(JsonParse, StringEscapes) {
  auto r = parse(R"("a\n\t\"\\A")");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().as_string(), "a\n\t\"\\A");
}

TEST(JsonParse, UnicodeEscapeMultibyte) {
  auto r = parse(R"("é€")");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().as_string(), "\xC3\xA9\xE2\x82\xAC");  // é €
}

TEST(JsonParse, RejectsTrailingGarbage) {
  auto r = parse("{} x");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("trailing"), std::string::npos);
}

TEST(JsonParse, RejectsTrailingComma) {
  EXPECT_FALSE(parse("[1, 2,]").ok());
  EXPECT_FALSE(parse(R"({"a": 1,})").ok());
}

TEST(JsonParse, RejectsBareWords) { EXPECT_FALSE(parse("hello").ok()); }

TEST(JsonParse, RejectsUnterminatedString) { EXPECT_FALSE(parse("\"abc").ok()); }

TEST(JsonParse, RejectsControlCharInString) {
  std::string s = "\"a\nb\"";
  EXPECT_FALSE(parse(s).ok());
}

TEST(JsonParse, ErrorCarriesLineAndColumn) {
  auto r = parse("{\n  \"a\": @\n}");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("line 2"), std::string::npos);
}

TEST(JsonParse, RejectsNonFiniteNumbers) {
  EXPECT_FALSE(parse("1e999").ok());
  EXPECT_FALSE(parse("NaN").ok());
}

TEST(JsonValue, TypedAccessorsChecked) {
  Value v(3.0);
  EXPECT_THROW(v.as_string(), CheckFailure);
  EXPECT_THROW(v.at("k"), CheckFailure);
  EXPECT_EQ(v.as_int(), 3);
  EXPECT_THROW(Value(3.5).as_int(), CheckFailure);
}

TEST(JsonValue, DefaultedLookups) {
  Value v = parsed(R"({"n": 2, "s": "x", "b": true})");
  EXPECT_DOUBLE_EQ(v.number_or("n", 9.0), 2.0);
  EXPECT_DOUBLE_EQ(v.number_or("missing", 9.0), 9.0);
  EXPECT_EQ(v.int_or("missing", 7), 7);
  EXPECT_EQ(v.string_or("s", "d"), "x");
  EXPECT_EQ(v.string_or("missing", "d"), "d");
  EXPECT_TRUE(v.bool_or("b", false));
  EXPECT_TRUE(v.bool_or("missing", true));
}

TEST(JsonDump, CompactRoundTrip) {
  const char* text = R"({"a":[1,2.5,"s"],"b":{"c":null,"d":false}})";
  Value v = parsed(text);
  EXPECT_EQ(dump(v), text);
}

TEST(JsonDump, PrettyReparsesEqual) {
  Value v = parsed(R"({"a": [1, {"b": [true, null]}], "z": "end"})");
  Value reparsed = parsed(dump(v, 2));
  EXPECT_TRUE(v == reparsed);
}

TEST(JsonDump, EscapesSpecialCharacters) {
  Value v(std::string("a\"b\\c\nd"));
  EXPECT_EQ(dump(v), "\"a\\\"b\\\\c\\nd\"");
}

TEST(JsonDump, IntegersPrintWithoutDecimal) {
  EXPECT_EQ(dump(Value(42.0)), "42");
  EXPECT_EQ(dump(Value(-1.0)), "-1");
}

TEST(JsonFile, SaveAndLoadRoundTrip) {
  std::string path = ::testing::TempDir() + "/harp_json_test.json";
  Value v = parsed(R"({"hw": {"cores": [8, 16]}})");
  ASSERT_TRUE(save_file(path, v).ok());
  auto loaded = load_file(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value() == v);
  std::remove(path.c_str());
}

TEST(JsonFile, MissingFileIsError) {
  auto r = load_file("/nonexistent/harp.json");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("io:"), std::string::npos);
}

}  // namespace
}  // namespace harp::json
