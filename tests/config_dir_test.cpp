// Tests for the /etc/harp-style configuration directory.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "src/harp/config_dir.hpp"
#include "src/harp/dse.hpp"
#include "src/model/catalog.hpp"
#include "src/platform/hardware.hpp"

namespace harp::core {
namespace {

namespace fs = std::filesystem;

class ConfigDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test directory: ctest runs each case as its own process, possibly
    // concurrently, so a shared directory races with sibling tests.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = ::testing::TempDir() + "/harp_config_test_" + info->name();
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }
  std::string root_;
};

TEST_F(ConfigDirTest, SanitizesFilenames) {
  EXPECT_EQ(sanitize_app_filename("mg.C"), "mg.C");
  EXPECT_EQ(sanitize_app_filename("a/b c"), "a_b_c");
  EXPECT_EQ(sanitize_app_filename("../etc/passwd"), ".._etc_passwd");
  EXPECT_EQ(sanitize_app_filename(""), "_");
}

TEST_F(ConfigDirTest, EnsureCreatesLayout) {
  ConfigDirectory config(root_);
  ASSERT_TRUE(config.ensure_exists().ok());
  EXPECT_TRUE(fs::is_directory(root_ + "/apps"));
}

TEST_F(ConfigDirTest, HardwareRoundTrip) {
  ConfigDirectory config(root_);
  ASSERT_TRUE(config.save_hardware(platform::odroid_xu3e()).ok());
  auto loaded = config.load_hardware();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().name, platform::odroid_xu3e().name);
}

TEST_F(ConfigDirTest, MissingHardwareIsError) {
  ConfigDirectory config(root_);
  EXPECT_FALSE(config.load_hardware().ok());
}

TEST_F(ConfigDirTest, TableRoundTrip) {
  platform::HardwareDescription hw = platform::raptor_lake();
  model::WorkloadCatalog catalog = model::WorkloadCatalog::raptor_lake();
  OperatingPointTable table = run_offline_dse(catalog.app("mg.C"), hw);

  ConfigDirectory config(root_);
  ASSERT_TRUE(config.save_table(table).ok());
  std::optional<OperatingPointTable> loaded = config.load_table("mg.C");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), table.size());
  EXPECT_FALSE(config.load_table("nope").has_value());
}

TEST_F(ConfigDirTest, LoadTablesSkipsCorruptFiles) {
  platform::HardwareDescription hw = platform::raptor_lake();
  model::WorkloadCatalog catalog = model::WorkloadCatalog::raptor_lake();
  ConfigDirectory config(root_);
  ASSERT_TRUE(config.save_table(run_offline_dse(catalog.app("ep.C"), hw)).ok());
  ASSERT_TRUE(config.save_table(run_offline_dse(catalog.app("mg.C"), hw)).ok());
  {
    std::ofstream corrupt(root_ + "/apps/broken.json");
    corrupt << "{not json";
  }
  {
    std::ofstream ignored(root_ + "/apps/notes.txt");
    ignored << "hello";
  }
  auto tables = config.load_tables();
  ASSERT_TRUE(tables.ok());
  EXPECT_EQ(tables.value().size(), 2u);
  EXPECT_TRUE(tables.value().count("ep.C") > 0);
  EXPECT_TRUE(tables.value().count("mg.C") > 0);
}

TEST_F(ConfigDirTest, LoadTablesFromEmptyDirectory) {
  ConfigDirectory config(root_);
  auto tables = config.load_tables();
  ASSERT_TRUE(tables.ok());
  EXPECT_TRUE(tables.value().empty());
}

TEST_F(ConfigDirTest, InitializeWritesEverything) {
  platform::HardwareDescription hw = platform::odroid_xu3e();
  model::WorkloadCatalog catalog = model::WorkloadCatalog::odroid();
  std::map<std::string, OperatingPointTable> tables;
  tables["lms"] = run_offline_dse(catalog.app("lms"), hw);
  tables["mg.A"] = run_offline_dse(catalog.app("mg.A"), hw);

  ConfigDirectory config(root_);
  ASSERT_TRUE(config.initialize(hw, tables).ok());
  ASSERT_TRUE(config.load_hardware().ok());
  auto loaded = config.load_tables();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 2u);
}

}  // namespace
}  // namespace harp::core
