// Deterministic fault scenarios for the RM ↔ libharp protocol.
//
// Each scenario drives a real RmServer plus real HarpClients through the
// scenario harness (one thread, virtual clock, seeded fault injection) and
// relies on World::check_invariants after every step: no core double-grant,
// capacity conservation, no client retained past its lease. The scenarios
// are parameterized over fault-plan seeds, so each timeline is exercised
// under several distinct (but reproducible) fault interleavings.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "src/platform/hardware.hpp"
#include "src/telemetry/export.hpp"
#include "tests/scenario_harness.hpp"

namespace harp {
namespace {

using client::HarpClient;
using client::LinkState;
using ipc::FaultKind;
using ipc::FaultPlan;
using scenario::App;
using scenario::World;

std::vector<ipc::OperatingPointsMsg::Point> two_points(
    const platform::HardwareDescription& hw) {
  return {{platform::ExtendedResourceVector::from_threads(hw, {4, 0}), 100.0, 6.0},
          {platform::ExtendedResourceVector::from_threads(hw, {0, 4}), 50.0, 1.2}};
}

client::Config app_config(const std::string& name, std::int32_t pid,
                          std::uint64_t seed) {
  client::Config config;
  config.app_name = name;
  config.pid = pid;
  config.heartbeat_interval_s = 0.2;
  config.jitter_seed = seed;
  return config;
}

core::RmServerOptions rm_options() {
  core::RmServerOptions options;
  options.lease_seconds = 2.0;
  options.utility_poll_interval_s = 0.25;
  return options;
}

/// A lossy-but-alive link: frames drop, duplicate, garble and the sender
/// sees transient errors, yet the link itself never closes.
FaultPlan flaky(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.drop_p = 0.12;
  plan.duplicate_p = 0.08;
  plan.reorder_p = 0.05;
  plan.garbage_p = 0.04;
  plan.transient_error_p = 0.08;
  return plan;
}

class FaultScenario : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  std::uint64_t seed() const { return GetParam(); }
};

// Scenario 1 — crash during registration. Two clients die mid-handshake:
// one before the RM ever sees its RegisterRequest processed to completion
// (link already closed when the ack goes out), one after the ack was queued
// but before the app reads it. A healthy bystander must keep its grant and
// the RM must converge back to exactly one client.
TEST_P(FaultScenario, CrashDuringRegistration) {
  platform::HardwareDescription hw = platform::raptor_lake();
  World world(hw, rm_options());

  App* steady = world.spawn(app_config("steady", 100, seed()), flaky(seed()));
  ASSERT_TRUE(steady->client->submit_operating_points(two_points(hw)).ok());
  world.run(1.0);
  ASSERT_TRUE(steady->client->registered());
  ASSERT_TRUE(steady->client->current_activation().has_value());

  // Crash A: link drops before the RM even polls — the RegisterRequest sits
  // in a closed queue; the RM reads it, fails to ack, and must drop the
  // corpse without disturbing the event loop.
  App* corpse_a = world.spawn(app_config("corpse-a", 200, seed()), FaultPlan::clean());
  world.crash(*corpse_a);
  world.run(0.5);
  EXPECT_EQ(world.registered_count("corpse-a"), 0);

  // Crash B: the RM registers the app and queues the ack, then the app dies
  // before ever reading it (RM-only step exposes the window).
  App* corpse_b = world.spawn(app_config("corpse-b", 300, seed()), FaultPlan::clean());
  world.step_rm_only(0.05);
  world.crash(*corpse_b);
  // The closed link (or, failing that, the lease) reclaims the slot.
  world.run(3.0);
  EXPECT_EQ(world.registered_count("corpse-b"), 0);

  EXPECT_TRUE(steady->client->registered());
  EXPECT_TRUE(steady->client->current_activation().has_value());
  EXPECT_EQ(world.rm().client_count(), 1u);
}

// Scenario 2 — kill and restart. An app with a grant dies abruptly (no
// Deregister) and a new instance with the same (name, pid) registers right
// away. The RM must evict the zombie on the spot — not after the lease —
// and the restarted instance must re-submit points and get a fresh grant.
TEST_P(FaultScenario, AppKillAndRestart) {
  platform::HardwareDescription hw = platform::raptor_lake();
  World world(hw, rm_options());

  App* first = world.spawn(app_config("phoenix", 4242, seed()), flaky(seed()));
  ASSERT_TRUE(first->client->submit_operating_points(two_points(hw)).ok());
  App* other = world.spawn(app_config("bystander", 7, seed()), flaky(seed() + 17));
  ASSERT_TRUE(other->client->submit_operating_points(two_points(hw)).ok());
  world.run(1.0);
  ASSERT_TRUE(first->client->registered());
  ASSERT_TRUE(other->client->registered());

  world.crash(*first);

  App* reborn = world.spawn(app_config("phoenix", 4242, seed() + 1), flaky(seed() + 1));
  ASSERT_TRUE(reborn->client->submit_operating_points(two_points(hw)).ok());
  world.run(1.0);

  EXPECT_TRUE(reborn->client->registered());
  EXPECT_TRUE(reborn->client->current_activation().has_value());
  // Zombie evicted immediately on identity collision: never two phoenixes.
  EXPECT_EQ(world.registered_count("phoenix"), 1);
  EXPECT_EQ(world.rm().client_count(), 2u);
  EXPECT_TRUE(other->client->registered());
}

// Scenario 3 — RM restart with clients alive. The daemon is torn down and
// replaced; clients see the dead link, back off, redial through their
// factories and re-register idempotently, replaying their operating-point
// tables so the new RM can allocate without any application involvement.
TEST_P(FaultScenario, RmRestartWithClientsAlive) {
  platform::HardwareDescription hw = platform::raptor_lake();
  World world(hw, rm_options());

  App* a = world.spawn(app_config("alpha", 11, seed()), flaky(seed()));
  ASSERT_TRUE(a->client->submit_operating_points(two_points(hw)).ok());
  App* b = world.spawn(app_config("beta", 22, seed()), flaky(seed() + 31));
  ASSERT_TRUE(b->client->submit_operating_points(two_points(hw)).ok());
  world.run(1.0);
  ASSERT_TRUE(a->client->registered());
  ASSERT_TRUE(b->client->registered());
  std::int32_t old_a_id = a->client->app_id();

  world.restart_rm();
  world.run(3.0);

  EXPECT_TRUE(a->client->registered());
  EXPECT_TRUE(b->client->registered());
  EXPECT_GE(a->client->reconnect_count(), 1);
  EXPECT_GE(b->client->reconnect_count(), 1);
  EXPECT_EQ(world.rm().client_count(), 2u);
  // The new RM re-learned the tables: both apps hold fresh activations.
  EXPECT_TRUE(a->client->current_activation().has_value());
  EXPECT_TRUE(b->client->current_activation().has_value());
  // The id may change across RM generations; the client must track it.
  EXPECT_GE(a->client->app_id(), 1);
  (void)old_a_id;
}

// Scenario 4 — flaky link during exploration. An app streams operating
// points incrementally (as online exploration would) and reports utility
// over a link that drops/duplicates/garbles frames. Heartbeats and register
// retransmits must keep the lease alive; utility must still reach the RM.
TEST_P(FaultScenario, FlakyLinkDuringExploration) {
  platform::HardwareDescription hw = platform::raptor_lake();
  World world(hw, rm_options());

  client::Callbacks callbacks;
  callbacks.utility_provider = [] { return 77.5; };
  client::Config config = app_config("explorer", 55, seed());
  config.provides_utility = true;
  // Faults in both directions: the app's sends AND the RM's acks/requests.
  App* explorer = world.spawn(config, flaky(seed()), flaky(seed() + 101),
                              std::move(callbacks));

  // Stream the table in three installments, a second apart, while faults
  // are active — the cumulative table is replayed on any re-registration.
  std::vector<ipc::OperatingPointsMsg::Point> table = two_points(hw);
  ASSERT_TRUE(explorer->client->submit_operating_points({table[0]}).ok());
  world.run(1.0);
  ASSERT_TRUE(explorer->client->submit_operating_points(table).ok());
  world.run(1.0);
  table.push_back({platform::ExtendedResourceVector::from_threads(hw, {2, 2}), 80.0, 3.0});
  ASSERT_TRUE(explorer->client->submit_operating_points(table).ok());
  world.run(8.0);

  EXPECT_TRUE(explorer->client->registered());
  EXPECT_TRUE(explorer->client->current_activation().has_value());
  // Utility survived the lossy link (droppable, but retried every interval).
  EXPECT_DOUBLE_EQ(world.rm().last_utility("explorer"), 77.5);
  // The lease never fired: heartbeats kept the client alive throughout.
  EXPECT_EQ(world.rm().lease_evictions(), 0u);
  EXPECT_EQ(world.rm().client_count(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultScenario, ::testing::Values(1u, 7u, 1234u));

// Acceptance criterion: a lease-expired client's cores are reclaimed and
// reallocated within ONE poll() cycle — the eviction sweep and the MMKP
// re-solve happen in the same call.
TEST(FaultLease, ExpiryReclaimsCoresWithinOnePoll) {
  platform::HardwareDescription hw = platform::raptor_lake();
  core::RmServerOptions options = rm_options();  // lease = 2 s
  World world(hw, options);

  App* keeper = world.spawn(app_config("keeper", 1, 1), FaultPlan::clean());
  ASSERT_TRUE(keeper->client->submit_operating_points(two_points(hw)).ok());
  App* sleeper = world.spawn(app_config("sleeper", 2, 2), FaultPlan::clean());
  ASSERT_TRUE(sleeper->client->submit_operating_points(two_points(hw)).ok());
  world.run(1.0);
  ASSERT_TRUE(keeper->client->registered());
  ASSERT_TRUE(sleeper->client->registered());
  ASSERT_EQ(world.rm().client_count(), 2u);

  // The sleeper hangs: socket open, but no polls → no heartbeats. One more
  // step drains its final queued frames, after which its lease clock stops.
  world.hang(*sleeper);
  world.step(0.05);
  std::uint64_t evictions_before = world.rm().lease_evictions();

  // Step until the lease fires. The keeper heartbeats throughout, so only
  // the sleeper can expire; in steady state nothing triggers the MMKP, so a
  // realloc-count bump in the eviction step is attributable to that poll.
  bool evicted = false;
  for (int i = 0; i < 100 && !evicted; ++i) {
    std::uint64_t reallocs = world.rm().realloc_count();
    world.step(0.05);
    if (world.rm().lease_evictions() > evictions_before) {
      evicted = true;
      // The SAME poll() call that evicted the sleeper re-ran the MMKP: its
      // cores are reclaimed within one cycle, not one lease period later.
      EXPECT_EQ(world.rm().realloc_count(), reallocs + 1);
    }
  }
  ASSERT_TRUE(evicted);
  EXPECT_EQ(world.rm().client_count(), 1u);
  EXPECT_EQ(world.registered_count("sleeper"), 0);
  EXPECT_EQ(world.registered_count("keeper"), 1);
}

// Malformed frames must not kill the RM event loop: a client that garbles a
// few frames keeps its registration; one that spews garbage persistently is
// cut after the strike limit without affecting its neighbour.
TEST(FaultLease, MalformedFramesAreContained) {
  platform::HardwareDescription hw = platform::raptor_lake();
  World world(hw, rm_options());

  App* neighbour = world.spawn(app_config("neighbour", 1, 1), FaultPlan::clean());
  ASSERT_TRUE(neighbour->client->submit_operating_points(two_points(hw)).ok());

  // Occasional garbage (4%) with healthy traffic in between: tolerated.
  FaultPlan dirty;
  dirty.seed = 9;
  dirty.garbage_p = 0.04;
  App* dirty_app = world.spawn(app_config("dirty", 2, 2), dirty);
  ASSERT_TRUE(dirty_app->client->submit_operating_points(two_points(hw)).ok());

  world.run(5.0);
  EXPECT_TRUE(neighbour->client->registered());
  EXPECT_TRUE(dirty_app->client->registered());
  EXPECT_EQ(world.rm().client_count(), 2u);

  // Pure garbage on every frame: the strike limit cuts this client only.
  FaultPlan hostile;
  hostile.seed = 10;
  hostile.garbage_p = 1.0;
  (void)world.spawn(app_config("attacker", 3, 3), hostile);
  world.run(5.0);

  EXPECT_EQ(world.registered_count("attacker"), 0);
  EXPECT_TRUE(neighbour->client->registered());
  EXPECT_TRUE(dirty_app->client->registered());
}

/// Drain every pending message from one end of an in-process channel.
std::vector<ipc::Message> drain(ipc::Channel& channel) {
  std::vector<ipc::Message> out;
  while (true) {
    auto polled = channel.poll();
    if (!polled.ok() || !polled.value().has_value()) break;
    out.push_back(*polled.value());
  }
  return out;
}

// Regression — a registration that supersedes a stale connection must also
// unregister the zombie, not just close its socket: a still-registered
// zombie is handed a grant by the reallocation running later in the same
// poll(). With both instances demanding all four big cores the MMKP goes
// infeasible, so the fresh instance used to be degraded to the
// co-allocation fallback (full-machine erv, parallelism 0).
TEST(RmServerSupersede, ZombieExcludedFromSameCycleReallocation) {
  platform::HardwareDescription hw = platform::odroid_xu3e();
  core::RmServer rm(hw, rm_options());
  ipc::OperatingPointsMsg all_big;
  all_big.points = {{platform::ExtendedResourceVector::from_threads(hw, {4, 0}), 100.0, 6.0}};

  auto [rm_a, app_a] = ipc::make_in_process_pair();
  rm.adopt_channel(std::move(rm_a));
  ASSERT_TRUE(app_a->send(ipc::Message(ipc::RegisterRequest{
                              77, "worker", ipc::WireAdaptivity::kScalable, false}))
                  .ok());
  ASSERT_TRUE(app_a->send(ipc::Message(all_big)).ok());
  rm.poll(0.0);
  EXPECT_FALSE(drain(*app_a).empty());  // ack + activation for the first instance

  // The process restarted: a new connection arrives with the same identity
  // and the same demand while the old socket is not torn down yet.
  auto [rm_b, app_b] = ipc::make_in_process_pair();
  rm.adopt_channel(std::move(rm_b));
  ASSERT_TRUE(app_b->send(ipc::Message(ipc::RegisterRequest{
                              77, "worker", ipc::WireAdaptivity::kScalable, false}))
                  .ok());
  ASSERT_TRUE(app_b->send(ipc::Message(all_big)).ok());
  rm.poll(1.0);

  bool activated = false;
  for (const ipc::Message& m : drain(*app_b)) {
    if (const auto* activate = std::get_if<ipc::ActivateMsg>(&m)) {
      activated = true;
      EXPECT_EQ(activate->erv.total_threads(), 4);
      EXPECT_EQ(activate->parallelism, 4);
      EXPECT_FALSE(activate->cores.empty());
    }
  }
  EXPECT_TRUE(activated);

  rm.poll(2.0);  // the closed zombie connection is reaped next cycle
  EXPECT_EQ(rm.client_count(), 1u);
}

// ---------------------------------------------------------------------------
// Telemetry over fault scenarios
// ---------------------------------------------------------------------------

/// One scripted fault scenario — flaky links, an RM restart, an app crash —
/// returning the full JSONL trace of everything the world observed.
std::string scripted_scenario_trace() {
  platform::HardwareDescription hw = platform::raptor_lake();
  World world(hw, rm_options());
  App* a = world.spawn(app_config("alpha", 11, 5), flaky(5));
  EXPECT_TRUE(a->client->submit_operating_points(two_points(hw)).ok());
  App* b = world.spawn(app_config("beta", 22, 6), flaky(37), flaky(91));
  EXPECT_TRUE(b->client->submit_operating_points(two_points(hw)).ok());
  world.run(1.5);
  world.restart_rm();
  world.run(2.0);
  world.crash(*b);
  world.run(2.5);
  EXPECT_TRUE(a->client->registered());
  EXPECT_EQ(world.tracer().dropped(), 0u);  // ring sized for the whole scenario
  return telemetry::to_jsonl(world.tracer().events());
}

// Acceptance criterion: traces are a pure function of the scenario — two
// fresh worlds driven through the same scripted timeline export
// byte-identical JSONL (timestamps come from the virtual clock, fault
// decisions from seeded PRNGs; no wall clock anywhere).
TEST(TelemetryDeterminism, SameScenarioExportsByteIdenticalTrace) {
  std::string first = scripted_scenario_trace();
  std::string second = scripted_scenario_trace();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // The trace is substantive, not vacuously equal: it saw faults, the link
  // lifecycle, and allocation traffic.
  EXPECT_NE(first.find("\"fault_injected\""), std::string::npos);
  EXPECT_NE(first.find("\"reconnect\""), std::string::npos);
  EXPECT_NE(first.find("\"alloc_cycle\""), std::string::npos);
  EXPECT_NE(first.find("\"grant\""), std::string::npos);
}

// Satellite criterion: telemetry counters must agree with the scripted fault
// schedule exactly — three scripted drops produce frames_dropped_total == 3
// (probabilities are all zero, and the link never redials so the script
// fires once).
TEST(TelemetryCounters, ScriptedDropsMatchDroppedFramesCounter) {
  platform::HardwareDescription hw = platform::raptor_lake();
  World world(hw, rm_options());
  FaultPlan plan;  // script-only: three drops, nothing else, ever
  plan.script = {{1, FaultKind::kDrop}, {3, FaultKind::kDrop}, {6, FaultKind::kDrop}};
  App* app = world.spawn(app_config("dropper", 1, 1), plan);
  ASSERT_TRUE(app->client->submit_operating_points(two_points(hw)).ok());
  world.run(3.0);  // heartbeats every 0.2 s push the send count well past 6
  ASSERT_TRUE(app->client->registered());
  ASSERT_EQ(app->client->reconnect_count(), 0);

  EXPECT_EQ(world.metrics().counter_value("frames_dropped_total"), 3u);
  EXPECT_EQ(world.metrics().counter_value("faults_injected_total"), 3u);
  std::size_t fault_events = 0;
  for (const telemetry::TraceEvent& event : world.tracer().events())
    if (event.type == telemetry::EventType::kFaultInjected) ++fault_events;
  EXPECT_EQ(fault_events, 3u);
}

// Satellite criterion: every scripted RM outage causes exactly one reconnect
// per client on a clean link, and the registry counter agrees with the
// clients' own books.
TEST(TelemetryCounters, RmRestartsMatchReconnectCounter) {
  platform::HardwareDescription hw = platform::raptor_lake();
  World world(hw, rm_options());
  App* a = world.spawn(app_config("alpha", 1, 1), FaultPlan::clean());
  ASSERT_TRUE(a->client->submit_operating_points(two_points(hw)).ok());
  App* b = world.spawn(app_config("beta", 2, 2), FaultPlan::clean());
  ASSERT_TRUE(b->client->submit_operating_points(two_points(hw)).ok());
  world.run(1.0);
  ASSERT_TRUE(a->client->registered());
  ASSERT_TRUE(b->client->registered());

  world.restart_rm();
  world.run(2.0);
  world.restart_rm();
  world.run(2.0);

  EXPECT_EQ(a->client->reconnect_count(), 2);
  EXPECT_EQ(b->client->reconnect_count(), 2);
  EXPECT_EQ(world.metrics().counter_value("client_reconnects_total"), 4u);
  EXPECT_EQ(world.metrics().counter_value("client_link_down_total"), 4u);
}

}  // namespace
}  // namespace harp
