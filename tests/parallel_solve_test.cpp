// Determinism tests for the data-parallel solver path (DESIGN.md "Hot path &
// incrementality"):
//
//  1. Partition — ParallelFor's block-cyclic split is a pure function of
//     (n, lanes): every index is visited exactly once, by the lane
//     (index / kBlock) % lanes, for any n including the n = 0 and sub-block
//     edges; a pool survives hundreds of back-to-back jobs.
//  2. Worker-count invariance — Allocator results (cold, warm, dirty-subset
//     incremental) are byte-identical for 1, 2, 4, and 8 worker lanes over
//     seeded random instances. The across-groups scan writes disjoint
//     selection slots and does no cross-lane arithmetic, so lane count can
//     influence nothing but wall-clock time.
//
// This suite is also registered under the `race` ctest label: the lockset /
// TSan CI job runs it to check the pool's dispatch protocol (epoch + parked
// condition variable + atomic countdown) for data races.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/parallel_for.hpp"
#include "src/common/rng.hpp"
#include "src/harp/allocator.hpp"
#include "src/platform/hardware.hpp"

namespace harp::core {
namespace {

// ---------------------------------------------------------------------------
// Partition properties
// ---------------------------------------------------------------------------

struct PartitionCtx {
  int* visits = nullptr;   // per-index visit count
  int* lane_of = nullptr;  // per-index executing lane
};

void partition_kernel(void* p, std::size_t begin, std::size_t end, int lane) {
  const PartitionCtx& ctx = *static_cast<const PartitionCtx*>(p);
  for (std::size_t i = begin; i < end; ++i) {
    ctx.visits[i] += 1;  // disjoint ranges: no two lanes touch one index
    ctx.lane_of[i] = lane;
  }
}

TEST(ParallelForPartition, BlockCyclicCoversEveryIndexOnceOnTheRightLane) {
  for (int lanes : {1, 2, 3, 4, 8}) {
    harp::ParallelFor pool(lanes);
    EXPECT_EQ(pool.lanes(), lanes);
    for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{63}, std::size_t{64},
                          std::size_t{65}, std::size_t{640}, std::size_t{1000}}) {
      std::vector<int> visits(n, 0);
      std::vector<int> lane_of(n, -1);
      PartitionCtx ctx{visits.data(), lane_of.data()};
      pool.run(n, partition_kernel, &ctx);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(visits[i], 1) << "lanes=" << lanes << " n=" << n << " i=" << i;
        const int expected_lane =
            static_cast<int>((i / harp::ParallelFor::kBlock) % static_cast<std::size_t>(lanes));
        ASSERT_EQ(lane_of[i], expected_lane) << "lanes=" << lanes << " n=" << n << " i=" << i;
      }
    }
  }
}

struct SumCtx {
  const std::uint64_t* values = nullptr;
  std::uint64_t* lane_sums = nullptr;  // one accumulator per lane
};

void sum_kernel(void* p, std::size_t begin, std::size_t end, int lane) {
  const SumCtx& ctx = *static_cast<const SumCtx*>(p);
  for (std::size_t i = begin; i < end; ++i) ctx.lane_sums[lane] += ctx.values[i];
}

TEST(ParallelForReuse, HundredsOfBackToBackJobsOnOnePool) {
  // Stresses the dispatch epoch protocol: repeated jobs must never deadlock,
  // drop a lane, or let a stale job run (each job's sum is checked exactly).
  harp::ParallelFor pool(4);
  harp::Rng rng(0x5eed);
  for (int job = 0; job < 300; ++job) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(0, 500));
    std::vector<std::uint64_t> values(n);
    std::uint64_t expected = 0;
    for (std::size_t i = 0; i < n; ++i) {
      values[i] = static_cast<std::uint64_t>(rng.uniform_int(0, 1000));
      expected += values[i];
    }
    std::vector<std::uint64_t> lane_sums(4, 0);
    SumCtx ctx{values.data(), lane_sums.data()};
    pool.run(n, sum_kernel, &ctx);
    // Ordered (ascending-lane) exact reduction — the sanctioned merge.
    std::uint64_t total = 0;
    for (std::uint64_t s : lane_sums) total += s;
    ASSERT_EQ(total, expected) << "job=" << job << " n=" << n;
  }
}

// ---------------------------------------------------------------------------
// Worker-count invariance of the solver
// ---------------------------------------------------------------------------

platform::HardwareDescription pick_hw(harp::Rng& rng) {
  return rng.uniform_int(0, 1) == 0 ? platform::raptor_lake() : platform::odroid_xu3e();
}

std::vector<AllocationGroup> random_groups(const platform::HardwareDescription& hw,
                                           harp::Rng& rng, int max_groups, int max_candidates) {
  const int num_types = static_cast<int>(hw.core_types.size());
  const int num_groups = rng.uniform_int(1, max_groups);
  std::vector<AllocationGroup> groups;
  groups.reserve(static_cast<std::size_t>(num_groups));
  for (int g = 0; g < num_groups; ++g) {
    AllocationGroup group;
    group.app_name = "app" + std::to_string(g);
    const int num_candidates = rng.uniform_int(1, max_candidates);
    for (int c = 0; c < num_candidates; ++c) {
      std::vector<int> threads(static_cast<std::size_t>(num_types), 0);
      int total = 0;
      for (int t = 0; t < num_types; ++t) {
        const platform::CoreType& type = hw.core_types[static_cast<std::size_t>(t)];
        int limit = std::max(1, type.core_count * type.smt_width / 2);
        threads[static_cast<std::size_t>(t)] = rng.uniform_int(0, limit);
        total += threads[static_cast<std::size_t>(t)];
      }
      if (total == 0) threads[0] = 1;
      OperatingPoint point;
      point.erv = platform::ExtendedResourceVector::from_threads(hw, threads);
      point.nfc.utility = 1.0;
      group.candidates.push_back(point);
      group.costs.push_back(rng.uniform(0.1, 10.0));
    }
    group.prepare(num_types);
    groups.push_back(std::move(group));
  }
  return groups;
}

void expect_identical(const AllocationResult& actual, const AllocationResult& expected,
                      std::uint64_t seed, int lanes, const char* what) {
  EXPECT_EQ(actual.feasible, expected.feasible) << what << " seed=" << seed << " lanes=" << lanes;
  EXPECT_EQ(actual.selection, expected.selection)
      << what << " seed=" << seed << " lanes=" << lanes;
  // Bit-level: any lane count must run the exact same arithmetic.
  EXPECT_EQ(actual.total_cost, expected.total_cost)
      << what << " seed=" << seed << " lanes=" << lanes;
  ASSERT_EQ(actual.allocations.size(), expected.allocations.size())
      << what << " seed=" << seed << " lanes=" << lanes;
  for (std::size_t g = 0; g < actual.allocations.size(); ++g)
    EXPECT_EQ(actual.allocations[g].cores, expected.allocations[g].cores)
        << what << " seed=" << seed << " lanes=" << lanes << " group=" << g;
}

TEST(WorkerCountInvariance, SolveSequenceIsByteIdenticalForOneToEightLanes) {
  const int kLaneCounts[] = {1, 2, 4, 8};
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    // Draw the instance and a deterministic mutation plan once, then replay
    // the identical solve sequence under every lane count.
    harp::Rng rng(seed * 75989u);
    platform::HardwareDescription hw = pick_hw(rng);
    const std::vector<AllocationGroup> original = random_groups(hw, rng, 12, 10);
    const std::size_t n = original.size();
    const std::size_t flip =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(n) - 1));
    const double nudge = rng.uniform(0.05, 1.5);

    std::vector<AllocationResult> cold(4), warm(4), dirty_out(4);
    for (int k = 0; k < 4; ++k) {
      harp::ParallelFor pool(kLaneCounts[k]);
      Allocator allocator(hw, SolverKind::kLagrangian);
      allocator.set_parallelism(&pool);
      std::vector<AllocationGroup> groups = original;  // fresh copy per lane count
      std::vector<const AllocationGroup*> ptrs;
      for (const AllocationGroup& group : groups) ptrs.push_back(&group);

      cold[k] = allocator.solve(groups);
      SolveWorkspace ws;
      allocator.solve(ptrs, ws, warm[k]);

      groups[flip].costs[0] += nudge;
      std::vector<std::uint32_t> dirty(1, static_cast<std::uint32_t>(flip));
      allocator.solve(ptrs, dirty, /*structure_changed=*/false, ws, dirty_out[k]);
      EXPECT_EQ(ws.last_mode(), SolveMode::kIncremental)
          << "seed=" << seed << " lanes=" << kLaneCounts[k];
    }
    for (int k = 1; k < 4; ++k) {
      expect_identical(cold[k], cold[0], seed, kLaneCounts[k], "cold");
      expect_identical(warm[k], warm[0], seed, kLaneCounts[k], "warm");
      expect_identical(dirty_out[k], dirty_out[0], seed, kLaneCounts[k], "dirty");
    }
  }
}

TEST(WorkerCountInvariance, PooledSolveMatchesPoollessSolve) {
  // lanes = 1 through the pool and no pool at all are literally the same
  // code path; a multi-lane pool must still match the pool-less baseline.
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    harp::Rng rng(seed * 104651u);
    platform::HardwareDescription hw = pick_hw(rng);
    std::vector<AllocationGroup> groups = random_groups(hw, rng, 12, 10);
    Allocator plain(hw, SolverKind::kLagrangian);
    AllocationResult expected = plain.solve(groups);

    harp::ParallelFor pool(3);  // non-power-of-two on purpose
    Allocator pooled(hw, SolverKind::kLagrangian);
    pooled.set_parallelism(&pool);
    expect_identical(pooled.solve(groups), expected, seed, 3, "pooled-cold");
  }
}

}  // namespace
}  // namespace harp::core
