// Structural tests for the whole-tree call graph (tools/harp_lint/callgraph)
// behind the r9/r10 interprocedural taint pass: definition indexing across
// units, the one-hop resolution rules, same-unit preference for shared
// internal-linkage names, declaration-vs-call disambiguation, and the
// deterministic orderings (node ids by unit/definition order, edges and
// caller lists ascending) the fixpoint's reproducible diagnostics rely on.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "tools/harp_lint/callgraph.hpp"
#include "tools/harp_lint/lexer.hpp"
#include "tools/harp_lint/lint.hpp"

namespace harp::lint {
namespace {

/// Owns the SourceFiles and LexedFiles the CgUnit views point into.
class GraphHarness {
 public:
  void add(const std::string& rel_path, const std::string& text) {
    files_.push_back(std::make_unique<SourceFile>(SourceFile{rel_path, text}));
    lexed_.push_back(std::make_unique<LexedFile>(lex(files_.back()->text)));
    units_.push_back(CgUnit{files_.back().get(), lexed_.back().get()});
  }

  CallGraph build() const { return build_call_graph(units_); }

 private:
  std::vector<std::unique_ptr<SourceFile>> files_;
  std::vector<std::unique_ptr<LexedFile>> lexed_;
  std::vector<CgUnit> units_;
};

/// Node id by display name, asserting uniqueness.
std::map<std::string, int> index_of(const CallGraph& cg) {
  std::map<std::string, int> ids;
  for (std::size_t i = 0; i < cg.nodes.size(); ++i) {
    bool inserted = ids.emplace(qualified_name(cg.nodes[i]), static_cast<int>(i)).second;
    EXPECT_TRUE(inserted) << "duplicate node " << qualified_name(cg.nodes[i]);
  }
  return ids;
}

/// Display names of a node's resolved callees, in stored (ascending) order.
std::vector<std::string> callees_of(const CallGraph& cg, int node) {
  std::vector<std::string> out;
  for (const CallSite& call : cg.nodes[static_cast<std::size_t>(node)].calls)
    out.push_back(qualified_name(cg.nodes[static_cast<std::size_t>(call.callee)]));
  return out;
}

TEST(CallGraph, FreeFunctionsResolveAcrossUnits) {
  GraphHarness h;
  h.add("a.cpp", "int helper() { return 1; }\n");
  h.add("b.cpp", "int driver() { return helper() + helper(); }\n");
  CallGraph cg = h.build();
  auto ids = index_of(cg);
  ASSERT_EQ(cg.nodes.size(), 2u);
  EXPECT_EQ(callees_of(cg, ids["driver"]), std::vector<std::string>{"helper"});
  // Repeated call sites dedupe to one edge; the reverse edge exists.
  EXPECT_EQ(cg.nodes[static_cast<std::size_t>(ids["driver"])].calls.size(), 1u);
  EXPECT_EQ(cg.callers[static_cast<std::size_t>(ids["helper"])],
            std::vector<int>{ids["driver"]});
}

TEST(CallGraph, SameUnitDefinitionWinsForSharedNames) {
  // Two files define an internal-linkage helper with the same name: callers
  // bind to their own file's copy, not both.
  GraphHarness h;
  h.add("a.cpp", "static int scale() { return 2; }\nint a_user() { return scale(); }\n");
  h.add("b.cpp", "static int scale() { return 3; }\nint b_user() { return scale(); }\n");
  CallGraph cg = h.build();
  ASSERT_EQ(cg.nodes.size(), 4u);
  for (std::size_t n = 0; n < cg.nodes.size(); ++n) {
    if (cg.nodes[n].name != "a_user" && cg.nodes[n].name != "b_user") continue;
    ASSERT_EQ(cg.nodes[n].calls.size(), 1u) << cg.nodes[n].name;
    const CgNode& callee =
        cg.nodes[static_cast<std::size_t>(cg.nodes[n].calls[0].callee)];
    EXPECT_EQ(callee.name, "scale");
    EXPECT_EQ(callee.unit, cg.nodes[n].unit) << "cross-unit bind for " << cg.nodes[n].name;
  }
}

TEST(CallGraph, UnknownNameFansOutToAllDefinitions) {
  // A caller whose own file defines no `scale`: over-approximates to both.
  GraphHarness h;
  h.add("a.cpp", "static int scale() { return 2; }\n");
  h.add("b.cpp", "static int scale() { return 3; }\n");
  h.add("c.cpp", "int c_user() { return scale(); }\n");
  CallGraph cg = h.build();
  ASSERT_EQ(cg.nodes.size(), 3u);
  const CgNode* c_user = nullptr;
  for (const CgNode& node : cg.nodes)
    if (node.name == "c_user") c_user = &node;
  ASSERT_NE(c_user, nullptr);
  ASSERT_EQ(c_user->calls.size(), 2u);
  EXPECT_LT(c_user->calls[0].callee, c_user->calls[1].callee);  // ascending edges
  for (const CallSite& call : c_user->calls)
    EXPECT_EQ(cg.nodes[static_cast<std::size_t>(call.callee)].name, "scale");
}

TEST(CallGraph, ThisCallsAndUnqualifiedCallsPreferTheEnclosingClass) {
  GraphHarness h;
  h.add("governor.hpp",
        "int tick() { return 0; }\n"
        "class Governor {\n"
        " public:\n"
        "  int step() { return this->tick() + evaluate(); }\n"
        "  int tick() { return 1; }\n"
        "  int evaluate() { return 2; }\n"
        "};\n");
  CallGraph cg = h.build();
  auto ids = index_of(cg);
  std::vector<std::string> expected = {"Governor::tick", "Governor::evaluate"};
  EXPECT_EQ(callees_of(cg, ids["Governor::step"]), expected);
}

TEST(CallGraph, MemberCallResolvesOnlyWhenBareNameIsUnique) {
  GraphHarness h;
  h.add("ledger.hpp",
        "class Ledger {\n"
        " public:\n"
        "  void record(int v) {}\n"
        "};\n"
        "class Probe {\n"
        " public:\n"
        "  void sample() {}\n"
        "};\n"
        "void drive(Ledger& ledger, Probe& probe) {\n"
        "  ledger.record(1);\n"
        "  probe.sample();\n"
        "}\n");
  // `record` and `sample` are each unique across the index: both resolve.
  CallGraph cg = h.build();
  auto ids = index_of(cg);
  std::vector<std::string> expected = {"Ledger::record", "Probe::sample"};
  EXPECT_EQ(callees_of(cg, ids["drive"]), expected);
}

TEST(CallGraph, AmbiguousMemberCallResolvesToNothing) {
  GraphHarness h;
  h.add("ambiguous.hpp",
        "class A {\n"
        " public:\n"
        "  void reset() {}\n"
        "};\n"
        "class B {\n"
        " public:\n"
        "  void reset() {}\n"
        "};\n"
        "void drive(A& a) { a.reset(); }\n");
  CallGraph cg = h.build();
  auto ids = index_of(cg);
  EXPECT_TRUE(cg.nodes[static_cast<std::size_t>(ids["drive"])].calls.empty());
}

TEST(CallGraph, QualifiedCallFallsBackToFreeFunctionForNamespaces) {
  // `json::dump(...)`: `json` is a namespace the class index cannot see, so
  // resolution falls back to the free-function key.
  GraphHarness h;
  h.add("writer.cpp",
        "namespace json { void dump(int v) {} }\n"
        "void emit() { json::dump(7); }\n");
  CallGraph cg = h.build();
  auto ids = index_of(cg);
  EXPECT_EQ(callees_of(cg, ids["emit"]), std::vector<std::string>{"dump"});
}

TEST(CallGraph, DeclarationRunsCreateNoEdges) {
  // `Status helper()` inside a body is a declaration, not a call.
  GraphHarness h;
  h.add("decl.cpp",
        "int helper() { return 1; }\n"
        "void user() { int helper(); int x = 0; }\n"
        "void caller() { return_value(); }\n");
  CallGraph cg = h.build();
  auto ids = index_of(cg);
  EXPECT_TRUE(cg.nodes[static_cast<std::size_t>(ids["user"])].calls.empty());
}

TEST(CallGraph, MutualRecursionBuildsACycle) {
  GraphHarness h;
  h.add("cycle.cpp",
        "int pong(int n);\n"
        "int ping(int n) { return n <= 0 ? 0 : pong(n - 1); }\n"
        "int pong(int n) { return n <= 0 ? 1 : ping(n - 1); }\n"
        "int self(int n) { return n <= 0 ? 2 : self(n - 1); }\n");
  CallGraph cg = h.build();
  auto ids = index_of(cg);
  EXPECT_EQ(callees_of(cg, ids["ping"]), std::vector<std::string>{"pong"});
  EXPECT_EQ(callees_of(cg, ids["pong"]), std::vector<std::string>{"ping"});
  EXPECT_EQ(callees_of(cg, ids["self"]), std::vector<std::string>{"self"});
  EXPECT_EQ(cg.callers[static_cast<std::size_t>(ids["ping"])], std::vector<int>{ids["pong"]});
}

TEST(CallGraph, NodeOrderFollowsUnitThenDefinitionOrder) {
  GraphHarness h;
  h.add("u0.cpp", "void first() {}\nvoid second() {}\n");
  h.add("u1.cpp", "void third() {}\n");
  CallGraph cg = h.build();
  ASSERT_EQ(cg.nodes.size(), 3u);
  EXPECT_EQ(cg.nodes[0].name, "first");
  EXPECT_EQ(cg.nodes[1].name, "second");
  EXPECT_EQ(cg.nodes[2].name, "third");
  EXPECT_EQ(cg.nodes[0].unit, 0);
  EXPECT_EQ(cg.nodes[2].unit, 1);
}

TEST(CallGraph, LexerEdgeCasesDoNotCreatePhantomDefinitions) {
  // Raw strings with embedded quotes, digit separators and line splices must
  // leave the index with exactly the real definitions and edges.
  GraphHarness h;
  h.add("edges.cpp",
        "const char* doc() {\n"
        "  return R\"doc(call \"helper()\" like so: helper(); never defined())doc\";\n"
        "}\n"
        "int helper() { return 1'000'000; }\n"
        "int spliced() { return hel\\\nper(); }\n");
  CallGraph cg = h.build();
  auto ids = index_of(cg);
  ASSERT_EQ(cg.nodes.size(), 3u);
  // The raw string's fake call created no edge out of doc()...
  EXPECT_TRUE(cg.nodes[static_cast<std::size_t>(ids["doc"])].calls.empty());
  // ...and the spliced identifier still resolves to the real helper.
  EXPECT_EQ(callees_of(cg, ids["spliced"]), std::vector<std::string>{"helper"});
}

}  // namespace
}  // namespace harp::lint
