// Property tests for the allocator's warm-started hot path (DESIGN.md "Hot
// path & incrementality"):
//
//  1. Equivalence — over hundreds of seeded random instances, the workspace
//     overload returns bit-identical results to the cold one-shot solve for
//     all three solvers, whether or not groups were prepare()d, and a
//     byte-identical re-solve replays the cached result exactly.
//  2. Zero allocation — once warm, steady-state Allocator::solve performs no
//     heap allocation at all, verified with counting global operator
//     new/delete overrides.
//  3. Cross-version pinning — a 200-seed hash of every solver's outputs on
//     non-QoS instances equals the value recorded before soft-QoS cost rows
//     were added: groups without a SoftQos row run bit-identical arithmetic
//     to the pre-QoS solver.
//  4. QoS equivalence — instances with slack-priced SoftQos rows keep the
//     cold/warm/replay bit-equivalence, and a row that prices nothing
//     (all candidates meet min_rate, or slack_weight = 0) leaves the result
//     bit-identical to the same instance without the row.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.hpp"
#include "src/harp/allocator.hpp"
#include "src/platform/hardware.hpp"

// ---------------------------------------------------------------------------
// Counting allocator: every path through global operator new bumps a counter
// the zero-alloc test reads before/after a burst of steady-state solves.
// Aligned (std::align_val_t) variants are deliberately not overridden — the
// default aligned new/delete pair stays consistent, and none of the solver's
// containers are over-aligned, so plain new sees every allocation of
// interest.
// ---------------------------------------------------------------------------

namespace {

std::atomic<std::uint64_t> g_allocation_count{0};

void* counted_alloc(std::size_t size) noexcept {
  if (size == 0) size = 1;
  void* ptr = std::malloc(size);
  if (ptr != nullptr) g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  return ptr;
}

}  // namespace

// GCC's -Wmismatched-new-delete pairs call sites with these replacement
// operators after inlining and mistakes malloc/free for a mismatch; the
// replacements are a matched set, so silence the false positive.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  void* ptr = counted_alloc(size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}
void* operator new[](std::size_t size) {
  void* ptr = counted_alloc(size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept { std::free(ptr); }
void operator delete[](void* ptr, const std::nothrow_t&) noexcept { std::free(ptr); }

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace harp::core {
namespace {

// ---------------------------------------------------------------------------
// Random instance generation
// ---------------------------------------------------------------------------

platform::HardwareDescription three_type_hw() {
  platform::HardwareDescription hw;
  hw.name = "test-3type";
  platform::CoreType big;
  big.name = "big";
  big.core_count = 6;
  big.smt_width = 2;
  big.freq_ghz = 3.0;
  big.base_gips = 12.0;
  big.active_power_w = 4.0;
  big.thread_power_w = 1.0;
  big.idle_power_w = 0.3;
  platform::CoreType mid = big;
  mid.name = "mid";
  mid.core_count = 8;
  mid.smt_width = 1;
  mid.base_gips = 7.0;
  mid.active_power_w = 2.0;
  platform::CoreType little = big;
  little.name = "little";
  little.core_count = 4;
  little.smt_width = 1;
  little.base_gips = 3.0;
  little.active_power_w = 0.8;
  hw.core_types = {big, mid, little};
  return hw;
}

platform::HardwareDescription pick_hw(harp::Rng& rng) {
  switch (rng.uniform_int(0, 2)) {
    case 0: return platform::raptor_lake();
    case 1: return platform::odroid_xu3e();
    default: return three_type_hw();
  }
}

std::vector<AllocationGroup> random_groups(const platform::HardwareDescription& hw,
                                           harp::Rng& rng, int max_groups, int max_candidates) {
  const int num_types = static_cast<int>(hw.core_types.size());
  const int num_groups = rng.uniform_int(1, max_groups);
  std::vector<AllocationGroup> groups;
  groups.reserve(static_cast<std::size_t>(num_groups));
  for (int g = 0; g < num_groups; ++g) {
    AllocationGroup group;
    group.app_name = "app" + std::to_string(g);
    const int num_candidates = rng.uniform_int(1, max_candidates);
    for (int c = 0; c < num_candidates; ++c) {
      std::vector<int> threads(static_cast<std::size_t>(num_types), 0);
      int total = 0;
      for (int t = 0; t < num_types; ++t) {
        const platform::CoreType& type = hw.core_types[static_cast<std::size_t>(t)];
        // Bias demands low so multi-app instances are usually repairable.
        int limit = std::max(1, type.core_count * type.smt_width / 2);
        threads[static_cast<std::size_t>(t)] = rng.uniform_int(0, limit);
        total += threads[static_cast<std::size_t>(t)];
      }
      if (total == 0) threads[0] = 1;
      OperatingPoint point;
      point.erv = platform::ExtendedResourceVector::from_threads(hw, threads);
      point.nfc.utility = 1.0;
      point.nfc.power_w = rng.uniform(0.5, 20.0);
      group.candidates.push_back(point);
      group.costs.push_back(rng.uniform(0.1, 10.0));
    }
    groups.push_back(std::move(group));
  }
  return groups;
}

std::vector<const AllocationGroup*> pointers_to(const std::vector<AllocationGroup>& groups) {
  std::vector<const AllocationGroup*> ptrs;
  ptrs.reserve(groups.size());
  for (const AllocationGroup& group : groups) ptrs.push_back(&group);
  return ptrs;
}

void expect_identical(const AllocationResult& actual, const AllocationResult& expected,
                      std::uint64_t seed, const char* what) {
  EXPECT_EQ(actual.feasible, expected.feasible) << what << " seed=" << seed;
  EXPECT_EQ(actual.selection, expected.selection) << what << " seed=" << seed;
  // Exact (bit-level) equality: the warm path must run the same arithmetic.
  EXPECT_EQ(actual.total_cost, expected.total_cost) << what << " seed=" << seed;
  ASSERT_EQ(actual.allocations.size(), expected.allocations.size()) << what << " seed=" << seed;
  for (std::size_t g = 0; g < actual.allocations.size(); ++g)
    EXPECT_EQ(actual.allocations[g].cores, expected.allocations[g].cores)
        << what << " seed=" << seed << " group=" << g;
}

// ---------------------------------------------------------------------------
// Equivalence properties
// ---------------------------------------------------------------------------

class WarmColdEquivalence : public ::testing::TestWithParam<SolverKind> {};

TEST_P(WarmColdEquivalence, MatchesColdSolveOnRandomInstances) {
  const SolverKind kind = GetParam();
  // The exhaustive reference is exponential: cap its instances small.
  const int max_groups = kind == SolverKind::kExhaustive ? 5 : 12;
  const int max_candidates = kind == SolverKind::kExhaustive ? 5 : 10;
  int feasible_seen = 0;
  int co_allocation_seen = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    harp::Rng rng(seed * 7919u);
    platform::HardwareDescription hw = pick_hw(rng);
    std::vector<AllocationGroup> groups = random_groups(hw, rng, max_groups, max_candidates);
    Allocator allocator(hw, kind);

    AllocationResult cold = allocator.solve(groups);
    (cold.feasible ? feasible_seen : co_allocation_seen) += 1;

    // Warm path on prepared groups: same instance, bit-identical result.
    std::vector<AllocationGroup> prepared = groups;
    for (AllocationGroup& group : prepared)
      group.prepare(static_cast<int>(hw.core_types.size()));
    std::vector<const AllocationGroup*> ptrs = pointers_to(prepared);
    SolveWorkspace ws;
    AllocationResult warm;
    allocator.solve(ptrs, ws, warm);
    EXPECT_FALSE(ws.replayed()) << "seed=" << seed;
    expect_identical(warm, cold, seed, "warm-prepared");

    // Byte-identical re-solve: replayed from the cache, still identical.
    AllocationResult replayed;
    allocator.solve(ptrs, ws, replayed);
    EXPECT_TRUE(ws.replayed()) << "seed=" << seed;
    expect_identical(replayed, cold, seed, "replay");
    EXPECT_EQ(ws.full_solves(), 1u) << "seed=" << seed;
    EXPECT_EQ(ws.replays(), 1u) << "seed=" << seed;

    // Unprepared groups fall back to workspace-built rows: same result.
    std::vector<const AllocationGroup*> raw_ptrs = pointers_to(groups);
    SolveWorkspace unprepared_ws;
    AllocationResult unprepared;
    allocator.solve(raw_ptrs, unprepared_ws, unprepared);
    expect_identical(unprepared, cold, seed, "warm-unprepared");

    // A cost perturbation changes the fingerprint: no stale replay.
    prepared[0].costs[0] += 0.25;
    AllocationResult nudged;
    allocator.solve(ptrs, ws, nudged);
    EXPECT_FALSE(ws.replayed()) << "seed=" << seed;
    AllocationResult nudged_cold = allocator.solve(prepared);
    expect_identical(nudged, nudged_cold, seed, "nudged");
  }
  // The sweep must exercise both outcomes, or the equivalence claim is weak.
  EXPECT_GT(feasible_seen, 20);
  EXPECT_GT(co_allocation_seen, 5);
}

INSTANTIATE_TEST_SUITE_P(AllSolvers, WarmColdEquivalence,
                         ::testing::Values(SolverKind::kLagrangian, SolverKind::kGreedy,
                                           SolverKind::kExhaustive),
                         [](const ::testing::TestParamInfo<SolverKind>& info) {
                           switch (info.param) {
                             case SolverKind::kLagrangian: return "Lagrangian";
                             case SolverKind::kGreedy: return "Greedy";
                             case SolverKind::kExhaustive: return "Exhaustive";
                           }
                           return "Unknown";
                         });

// ---------------------------------------------------------------------------
// Cross-version pinning & QoS rows
// ---------------------------------------------------------------------------

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t w) {
  return (h ^ w) * 1099511628211ull;
}

// Hashes recorded by running this exact sweep before the soft-QoS cost-row
// indirection existed. If a refactor of the solver's cost handling changes
// any selection, feasibility flag, or total-cost *bit pattern* on instances
// without QoS rows, this fails — the QoS extension must be invisible to
// non-QoS groups.
TEST(PinnedNonQosBehaviour, TwoHundredSeedHashesMatchPreQosSolver) {
  struct KindSpec {
    SolverKind kind;
    std::uint64_t expected;
    int max_groups;
    int max_candidates;
  };
  const KindSpec kinds[] = {
      {SolverKind::kLagrangian, 0xe8a878809dbf539cull, 12, 10},
      {SolverKind::kGreedy, 0x0950f976a1eb2578ull, 12, 10},
      {SolverKind::kExhaustive, 0xe124577fa6a3ced0ull, 5, 5},
  };
  for (const KindSpec& ks : kinds) {
    std::uint64_t h = 14695981039346656037ull;
    for (std::uint64_t seed = 1; seed <= 200; ++seed) {
      harp::Rng rng(seed * 7919u);
      platform::HardwareDescription hw = pick_hw(rng);
      std::vector<AllocationGroup> groups =
          random_groups(hw, rng, ks.max_groups, ks.max_candidates);
      Allocator allocator(hw, ks.kind);
      AllocationResult result = allocator.solve(groups);
      h = fnv_mix(h, result.feasible ? 1u : 0u);
      for (std::size_t s : result.selection) h = fnv_mix(h, static_cast<std::uint64_t>(s));
      std::uint64_t bits = 0;
      std::memcpy(&bits, &result.total_cost, sizeof(bits));
      h = fnv_mix(h, bits);
    }
    EXPECT_EQ(h, ks.expected) << "solver kind " << static_cast<int>(ks.kind);
  }
}

/// Attach a slack-priced SoftQos row to every other group: candidate "rates"
/// drawn in [0, 1] (the qos_utility scale), min_rate set so some candidates
/// fall short, and a weight large enough to actually steer selections.
void attach_qos_rows(std::vector<AllocationGroup>& groups, harp::Rng& rng) {
  for (std::size_t g = 0; g < groups.size(); g += 2) {
    AllocationGroup::SoftQos row;
    row.min_rate = rng.uniform(0.3, 0.95);
    row.slack_weight = rng.uniform(1.0, 300.0);
    for (std::size_t c = 0; c < groups[g].candidates.size(); ++c)
      row.rates.push_back(rng.uniform(0.0, 1.0));
    groups[g].qos = std::move(row);
  }
}

class QosRowEquivalence : public ::testing::TestWithParam<SolverKind> {};

TEST_P(QosRowEquivalence, ColdWarmReplayBitIdenticalWithSoftQosRows) {
  const SolverKind kind = GetParam();
  const int max_groups = kind == SolverKind::kExhaustive ? 5 : 12;
  const int max_candidates = kind == SolverKind::kExhaustive ? 5 : 10;
  int priced_selections = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    harp::Rng rng(seed * 15485863u);
    platform::HardwareDescription hw = pick_hw(rng);
    std::vector<AllocationGroup> groups = random_groups(hw, rng, max_groups, max_candidates);
    attach_qos_rows(groups, rng);
    Allocator allocator(hw, kind);

    AllocationResult cold = allocator.solve(groups);
    if (cold.feasible) {
      // Count instances where the QoS pricing is live (a selected candidate
      // sits below its row's min_rate), so the sweep provably exercises the
      // penalised path.
      for (std::size_t g = 0; g < groups.size(); ++g) {
        if (!groups[g].qos.has_value()) continue;
        if (groups[g].qos->rates[cold.selection[g]] < groups[g].qos->min_rate)
          ++priced_selections;
      }
    }

    std::vector<AllocationGroup> prepared = groups;
    for (AllocationGroup& group : prepared)
      group.prepare(static_cast<int>(hw.core_types.size()));
    std::vector<const AllocationGroup*> ptrs = pointers_to(prepared);
    SolveWorkspace ws;
    AllocationResult warm;
    allocator.solve(ptrs, ws, warm);
    EXPECT_FALSE(ws.replayed()) << "seed=" << seed;
    expect_identical(warm, cold, seed, "qos-warm");

    AllocationResult replayed;
    allocator.solve(ptrs, ws, replayed);
    EXPECT_TRUE(ws.replayed()) << "seed=" << seed;
    expect_identical(replayed, cold, seed, "qos-replay");

    // A min_rate above every candidate's rate re-prices the whole group:
    // the fingerprint (over *effective* costs) must change — no stale
    // replay of a differently-priced QoS instance.
    if (prepared[0].qos.has_value()) {
      prepared[0].qos->min_rate = 2.0;  // rates are in [0, 1]: all penalised
      AllocationResult nudged;
      allocator.solve(ptrs, ws, nudged);
      EXPECT_FALSE(ws.replayed()) << "seed=" << seed;
      AllocationResult nudged_cold = allocator.solve(prepared);
      expect_identical(nudged, nudged_cold, seed, "qos-nudged");
    }
  }
  EXPECT_GT(priced_selections, 50);
}

INSTANTIATE_TEST_SUITE_P(AllSolvers, QosRowEquivalence,
                         ::testing::Values(SolverKind::kLagrangian, SolverKind::kGreedy,
                                           SolverKind::kExhaustive),
                         [](const ::testing::TestParamInfo<SolverKind>& info) {
                           switch (info.param) {
                             case SolverKind::kLagrangian: return "Lagrangian";
                             case SolverKind::kGreedy: return "Greedy";
                             case SolverKind::kExhaustive: return "Exhaustive";
                           }
                           return "Unknown";
                         });

TEST(QosRowEquivalenceEdge, InertRowIsBitIdenticalToNoRow) {
  // A row whose penalty is identically zero (every candidate meets min_rate,
  // or slack_weight = 0) must not change a single output bit relative to the
  // same instance without the row.
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    harp::Rng rng(seed * 32452843u);
    platform::HardwareDescription hw = pick_hw(rng);
    std::vector<AllocationGroup> bare = random_groups(hw, rng, 8, 6);
    Allocator allocator(hw, SolverKind::kLagrangian);
    AllocationResult expected = allocator.solve(bare);

    std::vector<AllocationGroup> satisfied = bare;
    for (AllocationGroup& group : satisfied) {
      AllocationGroup::SoftQos row;
      row.min_rate = 0.5;
      row.slack_weight = 1000.0;
      row.rates.assign(group.candidates.size(), 1.0);  // all meet the target
      group.qos = std::move(row);
    }
    expect_identical(allocator.solve(satisfied), expected, seed, "satisfied-row");

    std::vector<AllocationGroup> weightless = bare;
    for (AllocationGroup& group : weightless) {
      AllocationGroup::SoftQos row;
      row.min_rate = 0.9;
      row.slack_weight = 0.0;  // priced at zero
      row.rates.assign(group.candidates.size(), 0.1);
      group.qos = std::move(row);
    }
    expect_identical(allocator.solve(weightless), expected, seed, "weightless-row");
  }
}

TEST(WorkspaceReuse, OneWorkspaceAcrossChangingInstances) {
  // A single workspace driven through 50 different instances (the RM's real
  // usage pattern) must match a fresh cold solve at every step.
  SolveWorkspace ws;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    harp::Rng rng(seed * 104729u);
    platform::HardwareDescription hw = pick_hw(rng);
    std::vector<AllocationGroup> groups = random_groups(hw, rng, 8, 6);
    for (AllocationGroup& group : groups)
      group.prepare(static_cast<int>(hw.core_types.size()));
    Allocator allocator(hw, SolverKind::kLagrangian);
    ws.invalidate();  // retargeting to a new Allocator (different hardware)
    AllocationResult warm;
    allocator.solve(pointers_to(groups), ws, warm);
    AllocationResult cold = allocator.solve(groups);
    expect_identical(warm, cold, seed, "reused-ws");
  }
}

// ---------------------------------------------------------------------------
// Dirty-subset incremental solves
// ---------------------------------------------------------------------------

/// Shape-preserving mutation of one group: always reprices one candidate and
/// optionally redraws one candidate's resource vector (re-prepared so the
/// bound usage rows see it). The candidate count never changes — dirty-subset
/// clean-state reuse requires a stable shape, and shape changes are covered
/// by the structural path anyway.
void mutate_group(const platform::HardwareDescription& hw, AllocationGroup& group,
                  harp::Rng& rng, bool mutate_rows) {
  const std::size_t c = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<int>(group.costs.size()) - 1));
  group.costs[c] += rng.uniform(0.05, 1.5);
  if (mutate_rows) {
    const int num_types = static_cast<int>(hw.core_types.size());
    std::vector<int> threads(static_cast<std::size_t>(num_types), 0);
    int total = 0;
    for (int t = 0; t < num_types; ++t) {
      const platform::CoreType& type = hw.core_types[static_cast<std::size_t>(t)];
      int limit = std::max(1, type.core_count * type.smt_width / 2);
      threads[static_cast<std::size_t>(t)] = rng.uniform_int(0, limit);
      total += threads[static_cast<std::size_t>(t)];
    }
    if (total == 0) threads[0] = 1;
    group.candidates[c].erv = platform::ExtendedResourceVector::from_threads(hw, threads);
    group.prepare(num_types);
  }
}

class DirtySubsetEquivalence : public ::testing::TestWithParam<SolverKind> {};

TEST_P(DirtySubsetEquivalence, MatchesFreshColdSolveOnMutatedInstances) {
  const SolverKind kind = GetParam();
  const int max_groups = kind == SolverKind::kExhaustive ? 5 : 12;
  const int max_candidates = kind == SolverKind::kExhaustive ? 5 : 10;
  std::uint64_t incremental_solves_seen = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    harp::Rng rng(seed * 48611u);
    platform::HardwareDescription hw = pick_hw(rng);
    std::vector<AllocationGroup> groups = random_groups(hw, rng, max_groups, max_candidates);
    for (AllocationGroup& group : groups)
      group.prepare(static_cast<int>(hw.core_types.size()));
    std::vector<const AllocationGroup*> ptrs = pointers_to(groups);
    const std::size_t n = groups.size();
    Allocator allocator(hw, kind);
    SolveWorkspace ws;
    AllocationResult out;
    allocator.solve(ptrs, ws, out);  // structural first solve seeds the cache

    // Flip one group.
    std::vector<std::uint32_t> dirty;
    const std::size_t one =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(n) - 1));
    mutate_group(hw, groups[one], rng, seed % 2 == 0);
    dirty.assign(1, static_cast<std::uint32_t>(one));
    allocator.solve(ptrs, dirty, /*structure_changed=*/false, ws, out);
    if (kind == SolverKind::kLagrangian) {
      EXPECT_EQ(ws.last_mode(), SolveMode::kIncremental) << "seed=" << seed;
      EXPECT_EQ(ws.last_rescanned_groups(), 1u) << "seed=" << seed;
      // Iteration 1 always replays (λ starts at zero in both trajectories).
      EXPECT_GE(ws.last_sync_iterations(), 1) << "seed=" << seed;
    }
    expect_identical(out, allocator.solve(groups), seed, "dirty-one");

    // Flip a k-subset (ascending by construction; never empty).
    dirty.clear();
    for (std::size_t g = 0; g < n; ++g)
      if (rng.uniform_int(0, 2) == 0 || (dirty.empty() && g + 1 == n))
        dirty.push_back(static_cast<std::uint32_t>(g));
    for (std::uint32_t g : dirty) mutate_group(hw, groups[g], rng, g % 2 == 0);
    allocator.solve(ptrs, dirty, /*structure_changed=*/false, ws, out);
    if (kind == SolverKind::kLagrangian) {
      EXPECT_EQ(ws.last_rescanned_groups(), dirty.size()) << "seed=" << seed;
    }
    expect_identical(out, allocator.solve(groups), seed, "dirty-k");

    // Flip every group: the dirty path with a full dirty set must still
    // match — it degenerates to rescanning everything under the replayed λ.
    dirty.resize(n);
    for (std::size_t g = 0; g < n; ++g) {
      dirty[g] = static_cast<std::uint32_t>(g);
      mutate_group(hw, groups[g], rng, g % 2 == 1);
    }
    allocator.solve(ptrs, dirty, /*structure_changed=*/false, ws, out);
    expect_identical(out, allocator.solve(groups), seed, "dirty-all");

    // Spuriously dirty (listed but unchanged): the per-group fingerprints
    // see a byte-identical instance and replay the cached result.
    allocator.solve(ptrs, dirty, /*structure_changed=*/false, ws, out);
    EXPECT_TRUE(ws.replayed()) << "seed=" << seed;
    EXPECT_EQ(ws.last_mode(), SolveMode::kReplay) << "seed=" << seed;
    expect_identical(out, allocator.solve(groups), seed, "dirty-spurious");

    incremental_solves_seen += ws.incremental_solves();
  }
  // Every mutated solve of the sweep must have taken the incremental path
  // for the Lagrangian solver (3 per seed); the others always run full.
  if (kind == SolverKind::kLagrangian)
    EXPECT_EQ(incremental_solves_seen, 600u);
  else
    EXPECT_EQ(incremental_solves_seen, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllSolvers, DirtySubsetEquivalence,
                         ::testing::Values(SolverKind::kLagrangian, SolverKind::kGreedy,
                                           SolverKind::kExhaustive),
                         [](const ::testing::TestParamInfo<SolverKind>& info) {
                           switch (info.param) {
                             case SolverKind::kLagrangian: return "Lagrangian";
                             case SolverKind::kGreedy: return "Greedy";
                             case SolverKind::kExhaustive: return "Exhaustive";
                           }
                           return "Unknown";
                         });

// ---------------------------------------------------------------------------
// Zero-allocation steady state
// ---------------------------------------------------------------------------

class SteadyStateAllocations : public ::testing::TestWithParam<SolverKind> {};

TEST_P(SteadyStateAllocations, SolveIsHeapAllocationFree) {
  platform::HardwareDescription hw = platform::raptor_lake();
  const int num_types = static_cast<int>(hw.core_types.size());

  // A modest feasible instance with well-separated costs, so the tiny cost
  // nudges below change the fingerprint without ever flipping a selection
  // (stable shapes ⇒ all vector capacities reach steady state in warm-up).
  std::vector<AllocationGroup> groups;
  for (int g = 0; g < 4; ++g) {
    AllocationGroup group;
    group.app_name = "app" + std::to_string(g);
    for (int c = 0; c < 4; ++c) {
      OperatingPoint point;
      point.erv = platform::ExtendedResourceVector::from_threads(hw, {1 + c, g % 2});
      point.nfc.utility = 1.0;
      group.candidates.push_back(point);
      group.costs.push_back(1.0 + 2.0 * c + 0.25 * g);
    }
    group.prepare(num_types);
    groups.push_back(std::move(group));
  }

  Allocator allocator(hw, GetParam());  // no tracer: the hot path stays pure
  std::vector<const AllocationGroup*> ptrs = pointers_to(groups);
  SolveWorkspace ws;
  AllocationResult out;

  // Warm-up: full solves (fingerprint changes through the nudge) and one
  // replay, with the exact access pattern of the measured loop.
  for (int cycle = 0; cycle < 8; ++cycle) {
    groups[0].costs[0] += 1e-9;
    allocator.solve(ptrs, ws, out);
    ASSERT_FALSE(ws.replayed());
  }
  allocator.solve(ptrs, ws, out);
  ASSERT_TRUE(ws.replayed());
  ASSERT_TRUE(out.feasible);

  const std::uint64_t before = g_allocation_count.load(std::memory_order_relaxed);
  for (int cycle = 0; cycle < 50; ++cycle) {
    groups[0].costs[0] += 1e-9;  // new fingerprint: forces a full solve
    allocator.solve(ptrs, ws, out);
    allocator.solve(ptrs, ws, out);  // unchanged instance: replay path
  }
  const std::uint64_t delta = g_allocation_count.load(std::memory_order_relaxed) - before;

  EXPECT_EQ(delta, 0u) << "steady-state solve allocated " << delta << " times in 100 cycles";
  EXPECT_TRUE(out.feasible);
}

INSTANTIATE_TEST_SUITE_P(AllSolvers, SteadyStateAllocations,
                         ::testing::Values(SolverKind::kLagrangian, SolverKind::kGreedy,
                                           SolverKind::kExhaustive),
                         [](const ::testing::TestParamInfo<SolverKind>& info) {
                           switch (info.param) {
                             case SolverKind::kLagrangian: return "Lagrangian";
                             case SolverKind::kGreedy: return "Greedy";
                             case SolverKind::kExhaustive: return "Exhaustive";
                           }
                           return "Unknown";
                         });

TEST(SteadyStateAllocationsDirty, IncrementalSolveIsHeapAllocationFree) {
  // The dirty-subset path adds trajectory buffers (λ rows, pick rows) to the
  // workspace; like every other scratch vector they must reach steady state
  // during warm-up and never allocate again.
  platform::HardwareDescription hw = platform::raptor_lake();
  const int num_types = static_cast<int>(hw.core_types.size());
  std::vector<AllocationGroup> groups;
  for (int g = 0; g < 4; ++g) {
    AllocationGroup group;
    group.app_name = "app" + std::to_string(g);
    for (int c = 0; c < 4; ++c) {
      OperatingPoint point;
      point.erv = platform::ExtendedResourceVector::from_threads(hw, {1 + c, g % 2});
      point.nfc.utility = 1.0;
      group.candidates.push_back(point);
      group.costs.push_back(1.0 + 2.0 * c + 0.25 * g);
    }
    group.prepare(num_types);
    groups.push_back(std::move(group));
  }

  Allocator allocator(hw, SolverKind::kLagrangian);
  std::vector<const AllocationGroup*> ptrs = pointers_to(groups);
  std::vector<std::uint32_t> dirty(1, 0);
  SolveWorkspace ws;
  AllocationResult out;

  for (int cycle = 0; cycle < 8; ++cycle) {
    groups[0].costs[0] += 1e-9;
    allocator.solve(ptrs, dirty, /*structure_changed=*/false, ws, out);
    ASSERT_FALSE(ws.replayed());
  }
  allocator.solve(ptrs, dirty, /*structure_changed=*/false, ws, out);
  ASSERT_TRUE(ws.replayed());
  ASSERT_EQ(ws.last_mode(), SolveMode::kReplay);
  ASSERT_TRUE(out.feasible);

  const std::uint64_t before = g_allocation_count.load(std::memory_order_relaxed);
  for (int cycle = 0; cycle < 50; ++cycle) {
    groups[0].costs[0] += 1e-9;  // dirty for real: forces an incremental solve
    allocator.solve(ptrs, dirty, /*structure_changed=*/false, ws, out);
    allocator.solve(ptrs, dirty, /*structure_changed=*/false, ws, out);  // spurious: replay
  }
  const std::uint64_t delta = g_allocation_count.load(std::memory_order_relaxed) - before;

  EXPECT_EQ(delta, 0u) << "dirty-path solve allocated " << delta << " times in 100 cycles";
  EXPECT_EQ(ws.last_mode(), SolveMode::kReplay);
  EXPECT_GT(ws.incremental_solves(), 50u);
  EXPECT_TRUE(out.feasible);
}

}  // namespace
}  // namespace harp::core
