// Unit tests for src/telemetry: registry semantics, histogram bucket edges,
// tracer ring wraparound, and the exporters (golden strings + roundtrip).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/telemetry/clock.hpp"
#include "src/telemetry/export.hpp"
#include "src/telemetry/metrics.hpp"
#include "src/telemetry/trace.hpp"

namespace harp::telemetry {
namespace {

TEST(Metrics, CounterFindOrCreateReturnsStableInstrument) {
  MetricsRegistry registry;
  Counter& c = registry.counter("frames_total");
  c.inc();
  c.inc(3);
  EXPECT_EQ(&registry.counter("frames_total"), &c);
  EXPECT_EQ(c.value(), 4u);
  EXPECT_EQ(registry.counter_value("frames_total"), 4u);
  EXPECT_EQ(registry.counter_value("never_created"), 0u);
}

TEST(Metrics, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge& g = registry.gauge("power_w");
  g.set(2.5);
  g.add(1.25);
  EXPECT_DOUBLE_EQ(g.value(), 3.75);
  g.set(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(Metrics, HistogramBucketEdgesAreInclusive) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("solve_ms", {1.0, 2.0, 4.0});
  // A value exactly on a bound lands in that bound's bucket (value <= bound).
  h.observe(1.0);
  h.observe(1.5);
  h.observe(2.0);
  h.observe(4.0);
  h.observe(4.0001);  // overflow
  h.observe(-3.0);    // below the first bound still counts in bucket 0
  std::vector<std::uint64_t> buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);  // -3.0, 1.0
  EXPECT_EQ(buckets[1], 2u);  // 1.5, 2.0
  EXPECT_EQ(buckets[2], 1u);  // 4.0
  EXPECT_EQ(buckets[3], 1u);  // 4.0001
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 1.0 + 1.5 + 2.0 + 4.0 + 4.0001 - 3.0);
  // Later lookups keep the original bounds regardless of the argument.
  EXPECT_EQ(&registry.histogram("solve_ms", {99.0}), &h);
  EXPECT_EQ(h.upper_bounds().size(), 3u);
}

TEST(Metrics, TextSnapshotIsDeterministic) {
  MetricsRegistry registry;
  registry.counter("b_counter").inc(2);
  registry.counter("a_counter").inc();
  registry.gauge("load").set(0.5);
  registry.histogram("lat", {1.0, 10.0}).observe(3.0);
  std::string expected =
      "counter a_counter 1\n"
      "counter b_counter 2\n"
      "gauge load 0.5\n"
      "histogram lat count 1 sum 3 le=1:0 le=10:1 le=+inf:0\n";
  EXPECT_EQ(registry.text_snapshot(), expected);
  // Identical state renders identical bytes.
  EXPECT_EQ(registry.text_snapshot(), expected);
}

TEST(Tracer, RecordsTimestampsFromInjectedClock) {
  ManualClock clock(10.0);
  Tracer tracer(&clock);
  tracer.instant(EventType::kRegistration, "alpha");
  clock.advance(0.5);
  tracer.begin(EventType::kAllocCycle, "rm", {{"cycle", 1.0}});
  clock.advance(0.25);
  tracer.end(EventType::kAllocCycle, "rm");
  std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_DOUBLE_EQ(events[0].t, 10.0);
  EXPECT_DOUBLE_EQ(events[1].t, 10.5);
  EXPECT_DOUBLE_EQ(events[2].t, 10.75);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[2].seq, 2u);
  EXPECT_EQ(events[1].phase, Phase::kBegin);
  EXPECT_EQ(events[2].phase, Phase::kEnd);
}

TEST(Tracer, RingWrapsAroundKeepingNewestEvents) {
  ManualClock clock;
  TracerOptions options;
  options.capacity = 4;
  Tracer tracer(&clock, options);
  for (int i = 0; i < 6; ++i)
    tracer.instant(EventType::kIpcSend, "rm", {{"bytes", static_cast<double>(i)}});
  EXPECT_EQ(tracer.recorded(), 6u);
  EXPECT_EQ(tracer.dropped(), 2u);
  std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest two (seq 0, 1) were overwritten; order stays seq-ascending.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i + 2);
    EXPECT_DOUBLE_EQ(events[i].num[0].second, static_cast<double>(i + 2));
  }
  tracer.clear();
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_TRUE(tracer.events().empty());
}

std::vector<TraceEvent> golden_events() {
  ManualClock clock(1.5);
  Tracer tracer(&clock);
  tracer.begin(EventType::kAllocCycle, "rm", {{"apps", 2.0}, {"cycle", 1.0}});
  tracer.instant(EventType::kGrant, "alpha", {{"utility", 92.25}}, {{"erv", "4P+0E"}});
  clock.advance(0.5);
  tracer.end(EventType::kAllocCycle, "rm", {{"feasible", 1.0}});
  return tracer.events();
}

TEST(Export, JsonlGolden) {
  std::string expected =
      R"({"num":{"apps":2,"cycle":1},"ph":"B","scope":"rm","seq":0,"t":1.5,"type":"alloc_cycle"})"
      "\n"
      R"({"num":{"utility":92.25},"ph":"i","scope":"alpha","seq":1,"str":{"erv":"4P+0E"},"t":1.5,"type":"grant"})"
      "\n"
      R"({"num":{"feasible":1},"ph":"E","scope":"rm","seq":2,"t":2,"type":"alloc_cycle"})"
      "\n";
  EXPECT_EQ(to_jsonl(golden_events()), expected);
}

TEST(Export, JsonlRoundtrip) {
  std::vector<TraceEvent> events = golden_events();
  Result<std::vector<TraceEvent>> parsed = from_jsonl(to_jsonl(events));
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value(), events);
}

TEST(Export, JsonlParseErrorsCarryLineNumbers) {
  Result<std::vector<TraceEvent>> bad = from_jsonl("{\"seq\":0}\nnot json\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().message.rfind("parse: line 1", 0), 0u) << bad.error().message;
}

TEST(Export, ChromeTraceContainsEventsInMicroseconds) {
  std::string chrome = to_chrome_trace(golden_events());
  // The document is pretty-printed (indent 2): "key": value.
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\": \"B\""), std::string::npos);
  // 1.5 s -> 1500000 us.
  EXPECT_NE(chrome.find("\"ts\": 1500000"), std::string::npos);
  EXPECT_NE(chrome.find("\"name\": \"grant\""), std::string::npos);
  // Identical input, identical bytes.
  EXPECT_EQ(chrome, to_chrome_trace(golden_events()));
}

TEST(Export, TraceFileRoundtrip) {
  std::vector<TraceEvent> events = golden_events();
  std::string path = ::testing::TempDir() + "harp_telemetry_test_trace.jsonl";
  ASSERT_TRUE(write_trace_file(path, events).ok());
  Result<std::vector<TraceEvent>> loaded = load_trace_file(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  EXPECT_EQ(loaded.value(), events);
  std::remove(path.c_str());
}

TEST(Export, EventTypeStringsRoundtrip) {
  for (EventType type : kAllEventTypes) {
    EventType parsed;
    ASSERT_TRUE(event_type_from_string(to_string(type), &parsed)) << to_string(type);
    EXPECT_EQ(parsed, type);
  }
  EventType ignored;
  EXPECT_FALSE(event_type_from_string("no_such_event", &ignored));
}

}  // namespace
}  // namespace harp::telemetry
