// Tests for the wire codec, the protocol message set, both transports
// (in-process and AF_UNIX sockets), the fault-injection decorator, and a
// seeded fuzz sweep over the frame decoder.
#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/ipc/fault_injection.hpp"
#include "src/ipc/messages.hpp"
#include "src/ipc/transport.hpp"
#include "src/ipc/wire.hpp"
#include "src/platform/hardware.hpp"

namespace harp::ipc {
namespace {

platform::ExtendedResourceVector sample_erv() {
  return platform::ExtendedResourceVector::from_threads(platform::raptor_lake(), {5, 7});
}

TEST(Wire, PrimitiveRoundTrip) {
  WireWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i32(-42);
  w.f64(-3.25e17);
  w.boolean(true);
  w.string("héllo");

  WireReader r(w.bytes());
  std::uint8_t a = 0;
  std::uint16_t b = 0;
  std::uint32_t c = 0;
  std::uint64_t d = 0;
  std::int32_t e = 0;
  double f = 0;
  bool g = false;
  std::string h;
  EXPECT_TRUE(r.u8(a) && r.u16(b) && r.u32(c) && r.u64(d) && r.i32(e) && r.f64(f) &&
              r.boolean(g) && r.string(h));
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(a, 0xAB);
  EXPECT_EQ(b, 0xBEEF);
  EXPECT_EQ(c, 0xDEADBEEFu);
  EXPECT_EQ(d, 0x0123456789ABCDEFull);
  EXPECT_EQ(e, -42);
  EXPECT_DOUBLE_EQ(f, -3.25e17);
  EXPECT_TRUE(g);
  EXPECT_EQ(h, "héllo");
}

TEST(Wire, TruncationDetected) {
  WireWriter w;
  w.u32(7);
  WireReader r(w.bytes());
  std::uint64_t v = 0;
  EXPECT_FALSE(r.u64(v));
  EXPECT_FALSE(r.ok());
}

TEST(Wire, FrameHeaderRoundTrip) {
  std::vector<std::uint8_t> header = encode_frame_header(4, 1234);
  auto decoded = decode_frame_header(header.data(), header.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().first, 4);
  EXPECT_EQ(decoded.value().second, 1234u);
  EXPECT_FALSE(decode_frame_header(header.data(), 3).ok());
}

TEST(Wire, FrameHeaderRejectsOversizedPayload) {
  std::vector<std::uint8_t> header = encode_frame_header(1, kMaxPayloadBytes + 1);
  EXPECT_FALSE(decode_frame_header(header.data(), header.size()).ok());
}

template <typename T>
T encode_decode(const T& message) {
  std::vector<std::uint8_t> frame = encode(Message(message));
  auto header = decode_frame_header(frame.data(), frame.size());
  EXPECT_TRUE(header.ok());
  std::vector<std::uint8_t> payload(frame.begin() + static_cast<long>(kFrameHeaderSize),
                                    frame.end());
  EXPECT_EQ(payload.size(), header.value().second);
  auto decoded = decode(static_cast<MessageType>(header.value().first), payload);
  EXPECT_TRUE(decoded.ok());
  return std::get<T>(decoded.value());
}

TEST(Messages, RegisterRequestRoundTrip) {
  RegisterRequest msg;
  msg.pid = 4321;
  msg.app_name = "mg.C";
  msg.adaptivity = WireAdaptivity::kCustom;
  msg.provides_utility = true;
  RegisterRequest out = encode_decode(msg);
  EXPECT_EQ(out.pid, 4321);
  EXPECT_EQ(out.app_name, "mg.C");
  EXPECT_EQ(out.adaptivity, WireAdaptivity::kCustom);
  EXPECT_TRUE(out.provides_utility);
}

TEST(Messages, OperatingPointsRoundTrip) {
  OperatingPointsMsg msg;
  msg.points.push_back({sample_erv(), 23.5, 41.25});
  msg.points.push_back({platform::ExtendedResourceVector::from_threads(
                            platform::raptor_lake(), {0, 3}),
                        4.0, 5.5});
  OperatingPointsMsg out = encode_decode(msg);
  ASSERT_EQ(out.points.size(), 2u);
  EXPECT_TRUE(out.points[0].erv == msg.points[0].erv);
  EXPECT_DOUBLE_EQ(out.points[0].utility, 23.5);
  EXPECT_DOUBLE_EQ(out.points[1].power_w, 5.5);
}

TEST(Messages, ActivateRoundTrip) {
  ActivateMsg msg;
  msg.erv = sample_erv();
  msg.cores = {{0, 2, 2}, {1, 7, 1}};
  msg.parallelism = 12;
  msg.rebalance = true;
  ActivateMsg out = encode_decode(msg);
  EXPECT_TRUE(out.erv == msg.erv);
  ASSERT_EQ(out.cores.size(), 2u);
  EXPECT_EQ(out.cores[0].core, 2);
  EXPECT_EQ(out.cores[1].threads, 1);
  EXPECT_EQ(out.parallelism, 12);
  EXPECT_TRUE(out.rebalance);
}

TEST(Messages, EmptyPayloadMessages) {
  EXPECT_NO_THROW(encode_decode(UtilityRequest{}));
  EXPECT_NO_THROW(encode_decode(Deregister{}));
  UtilityReport report{123.5};
  EXPECT_DOUBLE_EQ(encode_decode(report).utility, 123.5);
}

TEST(Messages, DecodeRejectsMalformedPayloads) {
  EXPECT_FALSE(decode(MessageType::kRegisterRequest, {1, 2, 3}).ok());
  EXPECT_FALSE(decode(MessageType::kUtilityRequest, {0}).ok());  // payload present
  EXPECT_FALSE(decode(static_cast<MessageType>(99), {}).ok());
  // Negative utility in an operating point.
  OperatingPointsMsg msg;
  msg.points.push_back({sample_erv(), 1.0, 1.0});
  std::vector<std::uint8_t> frame = encode(Message(msg));
  std::vector<std::uint8_t> payload(frame.begin() + static_cast<long>(kFrameHeaderSize),
                                    frame.end());
  // Corrupt the utility double (bytes after the erv encoding) by flipping
  // the sign bit of the last 8-byte double (power) — decode must reject.
  payload[payload.size() - 1] |= 0x80;
  EXPECT_FALSE(decode(MessageType::kOperatingPoints, payload).ok());
}

TEST(Messages, HeartbeatRoundTrip) {
  EXPECT_NO_THROW(encode_decode(Heartbeat{}));
  // Heartbeats carry no payload; anything else is a protocol violation.
  EXPECT_FALSE(decode(MessageType::kHeartbeat, {0}).ok());
}

// Seeded fuzz sweep: 10k adversarial byte strings — half pure noise, half
// mutations of valid frames — must never crash the decoder, must fail with
// a clean "proto:" error (never "io:"), and must leave the decode path fully
// reusable (a known-good frame decodes between adversarial ones).
TEST(Fuzz, DecoderSurvivesAdversarialFrames) {
  Rng rng(0xF0CC1A);
  ActivateMsg seedling;
  seedling.erv = sample_erv();
  seedling.cores = {{0, 1, 2}, {1, 3, 1}};
  seedling.parallelism = 7;
  const std::vector<std::vector<std::uint8_t>> templates = {
      encode(Message(RegisterRequest{42, "fuzz", WireAdaptivity::kScalable, true})),
      encode(Message(OperatingPointsMsg{{{sample_erv(), 2.0, 3.0}}})),
      encode(Message(seedling)),
      encode(Message(UtilityReport{1.5})),
  };

  auto try_decode = [](const std::vector<std::uint8_t>& frame) {
    auto header = decode_frame_header(frame.data(), frame.size());
    if (!header.ok()) {
      EXPECT_EQ(header.error().message.rfind("proto:", 0), 0u) << header.error().message;
      return;
    }
    if (frame.size() < kFrameHeaderSize + header.value().second) return;  // short frame
    std::vector<std::uint8_t> payload(
        frame.begin() + static_cast<long>(kFrameHeaderSize),
        frame.begin() + static_cast<long>(kFrameHeaderSize + header.value().second));
    auto decoded = decode(static_cast<MessageType>(header.value().first), payload);
    if (!decoded.ok()) {
      EXPECT_EQ(decoded.error().message.rfind("proto:", 0), 0u) << decoded.error().message;
    }
  };

  for (int iteration = 0; iteration < 10000; ++iteration) {
    std::vector<std::uint8_t> frame;
    if (iteration % 2 == 0) {
      // Pure noise of random length (including below the header size).
      frame.resize(static_cast<std::size_t>(rng.uniform_int(0, 64)));
      for (std::uint8_t& b : frame) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    } else {
      // Mutate a valid frame: flip bytes, truncate, or extend.
      frame = templates[static_cast<std::size_t>(rng.uniform_int(0, 3))];
      int flips = rng.uniform_int(1, 8);
      for (int f = 0; f < flips && !frame.empty(); ++f)
        frame[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(frame.size()) - 1))] =
            static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      if (rng.uniform() < 0.3)
        frame.resize(static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(frame.size()))));
      else if (rng.uniform() < 0.2)
        frame.push_back(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
    }
    try_decode(frame);

    // Every so often, prove the decoder still works on well-formed input.
    if (iteration % 1000 == 999) {
      const std::vector<std::uint8_t>& good = templates[0];
      auto header = decode_frame_header(good.data(), good.size());
      ASSERT_TRUE(header.ok());
      std::vector<std::uint8_t> payload(good.begin() + static_cast<long>(kFrameHeaderSize),
                                        good.end());
      auto decoded = decode(static_cast<MessageType>(header.value().first), payload);
      ASSERT_TRUE(decoded.ok());
      EXPECT_EQ(std::get<RegisterRequest>(decoded.value()).app_name, "fuzz");
    }
  }
}

// Channel-level fuzz: garbage frames injected with send_raw must surface as
// recoverable "proto:" errors and the channel must stay usable for valid
// traffic afterwards.
TEST(Fuzz, InProcChannelSurvivesGarbageFrames) {
  Rng rng(0xBADF00D);
  auto [a, b] = make_in_process_pair();
  int proto_errors = 0;
  for (int iteration = 0; iteration < 500; ++iteration) {
    std::vector<std::uint8_t> frame(static_cast<std::size_t>(rng.uniform_int(0, 32)));
    for (std::uint8_t& byte : frame)
      byte = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    ASSERT_TRUE(a->send_raw(frame).ok());
    auto polled = b->poll();
    if (!polled.ok()) {
      EXPECT_EQ(polled.error().message.rfind("proto:", 0), 0u) << polled.error().message;
      EXPECT_FALSE(b->closed());
      ++proto_errors;
    }
    // Interleave valid traffic: the garbage must not poison the stream.
    ASSERT_TRUE(a->send(Message(RegisterAck{iteration})).ok());
    std::optional<Message> valid;
    for (int drain = 0; drain < 4 && !valid.has_value(); ++drain) {
      auto next = b->poll();
      if (next.ok()) valid = next.value();
    }
    ASSERT_TRUE(valid.has_value()) << "valid frame lost after garbage, iter " << iteration;
    EXPECT_EQ(std::get<RegisterAck>(*valid).app_id, iteration);
  }
  EXPECT_GT(proto_errors, 100);  // the sweep actually exercised the error path
}

TEST(FaultInjection, ScriptedFaultsAreExact) {
  auto [rm_end, app_end] = make_in_process_pair();
  FaultPlan plan = FaultPlan::clean();
  plan.script = {{0, FaultKind::kDrop}, {2, FaultKind::kDuplicate}};
  FaultInjectingChannel faulty(std::move(app_end), plan);

  ASSERT_TRUE(faulty.send(Message(RegisterAck{0})).ok());  // dropped
  ASSERT_TRUE(faulty.send(Message(RegisterAck{1})).ok());  // delivered
  ASSERT_TRUE(faulty.send(Message(RegisterAck{2})).ok());  // duplicated

  std::vector<int> seen;
  while (true) {
    auto polled = rm_end->poll();
    ASSERT_TRUE(polled.ok());
    if (!polled.value().has_value()) break;
    seen.push_back(std::get<RegisterAck>(*polled.value()).app_id);
  }
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 2}));
  EXPECT_EQ(faulty.stats().drops, 1u);
  EXPECT_EQ(faulty.stats().duplicates, 1u);
}

TEST(FaultInjection, SameSeedSameFaults) {
  FaultPlan plan;
  plan.seed = 99;
  plan.drop_p = 0.3;
  plan.garbage_p = 0.2;
  auto run_once = [&plan] {
    auto [rm_end, app_end] = make_in_process_pair();
    FaultInjectingChannel faulty(std::move(app_end), plan);
    for (int i = 0; i < 200; ++i) (void)faulty.send(Message(RegisterAck{i}));
    return faulty.stats();
  };
  FaultStats first = run_once();
  FaultStats second = run_once();
  EXPECT_EQ(first.drops, second.drops);
  EXPECT_EQ(first.garbled, second.garbled);
  EXPECT_GT(first.drops, 0u);
  EXPECT_GT(first.garbled, 0u);
}

TEST(InProcTransport, MessagesFlowBothWays) {
  auto [a, b] = make_in_process_pair();
  EXPECT_TRUE(a->send(Message(RegisterAck{5})).ok());
  auto received = b->poll();
  ASSERT_TRUE(received.ok());
  ASSERT_TRUE(received.value().has_value());
  EXPECT_EQ(std::get<RegisterAck>(*received.value()).app_id, 5);

  EXPECT_TRUE(b->send(Message(UtilityReport{7.5})).ok());
  auto back = a->poll();
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ(std::get<UtilityReport>(*back.value()).utility, 7.5);
}

TEST(InProcTransport, EmptyPollAndClose) {
  auto [a, b] = make_in_process_pair();
  auto empty = a->poll();
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(empty.value().has_value());
  b->close();
  EXPECT_FALSE(a->send(Message(Deregister{})).ok());
  EXPECT_FALSE(a->poll().ok());  // peer closed
}

TEST(InProcTransport, PreservesOrder) {
  auto [a, b] = make_in_process_pair();
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(a->send(Message(RegisterAck{i})).ok());
  for (int i = 0; i < 10; ++i) {
    auto m = b->poll();
    ASSERT_TRUE(m.ok() && m.value().has_value());
    EXPECT_EQ(std::get<RegisterAck>(*m.value()).app_id, i);
  }
}

TEST(UnixTransport, EndToEnd) {
  std::string path = ::testing::TempDir() + "/harp_ipc_test.sock";
  auto server = UnixServer::listen(path);
  ASSERT_TRUE(server.ok());

  auto client = unix_connect(path);
  ASSERT_TRUE(client.ok());

  // Accept the pending connection.
  std::unique_ptr<Channel> server_side;
  for (int i = 0; i < 100 && server_side == nullptr; ++i) {
    auto accepted = server.value()->accept();
    ASSERT_TRUE(accepted.ok());
    if (accepted.value().has_value()) server_side = std::move(*accepted.value());
  }
  ASSERT_NE(server_side, nullptr);

  RegisterRequest request;
  request.pid = 99;
  request.app_name = "quick";
  ASSERT_TRUE(client.value()->send(Message(request)).ok());

  std::optional<Message> received;
  for (int i = 0; i < 1000 && !received.has_value(); ++i) {
    auto polled = server_side->poll();
    ASSERT_TRUE(polled.ok());
    received = polled.value();
  }
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(std::get<RegisterRequest>(*received).app_name, "quick");

  // And the reverse direction.
  ASSERT_TRUE(server_side->send(Message(RegisterAck{1})).ok());
  std::optional<Message> ack;
  for (int i = 0; i < 1000 && !ack.has_value(); ++i) {
    auto polled = client.value()->poll();
    ASSERT_TRUE(polled.ok());
    ack = polled.value();
  }
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(std::get<RegisterAck>(*ack).app_id, 1);
}

TEST(UnixTransport, PeerCloseDetected) {
  std::string path = ::testing::TempDir() + "/harp_ipc_close.sock";
  auto server = UnixServer::listen(path);
  ASSERT_TRUE(server.ok());
  auto client = unix_connect(path);
  ASSERT_TRUE(client.ok());
  std::unique_ptr<Channel> server_side;
  for (int i = 0; i < 100 && server_side == nullptr; ++i) {
    auto accepted = server.value()->accept();
    ASSERT_TRUE(accepted.ok());
    if (accepted.value().has_value()) server_side = std::move(*accepted.value());
  }
  ASSERT_NE(server_side, nullptr);
  client.value()->close();
  bool saw_close = false;
  for (int i = 0; i < 1000 && !saw_close; ++i) saw_close = !server_side->poll().ok();
  EXPECT_TRUE(saw_close);
}

TEST(UnixTransport, ConnectToMissingSocketFails) {
  EXPECT_FALSE(unix_connect("/tmp/harp-definitely-missing.sock").ok());
}

TEST(UnixTransport, RejectsOverlongPath) {
  std::string path(200, 'x');
  EXPECT_FALSE(UnixServer::listen(path).ok());
  EXPECT_FALSE(unix_connect(path).ok());
}

}  // namespace
}  // namespace harp::ipc
