// Deterministic end-to-end QoS scenario suite.
//
//  1. Dominance — on Poisson and flash-crowd (MMPP-2) traffic, HARP meets or
//     beats the deadline hit-rate of the EDF static provisioner while
//     spending no more energy, and stays far below the CFS energy bill:
//     better QoS per joule on every shape.
//  2. Determinism — a (scenario, seed) pair replays bit-identically within a
//     binary: per-request counters match exactly and energy to the last bit;
//     headline numbers are pinned per seed.
//  3. Golden trace — a checked-in replay input (qos_fixtures/input_trace.jsonl)
//     run under a fixed policy must reproduce the checked-in per-request
//     JSONL telemetry byte for byte, and reruns of the same binary must be
//     byte-identical to each other.
//
// Regenerating the golden fixture (after an intentional model/simulator
// change — never to paper over an unexplained diff):
//   HARP_REGEN_QOS_GOLDEN=1 ./build/tests/qos_scenario_test --gtest_filter='GoldenTrace.*'
// rewrites tests/qos_fixtures/golden_trace.jsonl in the source tree; commit
// the new file together with the change that moved it.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "src/harp/dse.hpp"
#include "src/harp/policy.hpp"
#include "src/model/qos.hpp"
#include "src/sched/baselines.hpp"
#include "src/telemetry/export.hpp"

namespace harp {
namespace {

constexpr const char* kService = "frontend";

model::QosSpec service_spec() {
  model::QosSpec spec;
  spec.work_per_request_gi = 0.2;
  spec.deadline_s = 0.05;
  spec.nominal_rate_rps = 40.0;
  spec.min_hit_rate = 0.95;
  return spec;
}

model::WorkloadCatalog service_catalog() {
  model::WorkloadCatalog catalog = model::WorkloadCatalog::raptor_lake();
  catalog.add_app(model::qos_service_behavior(kService, service_spec(), {1.0, 0.9}));
  return catalog;
}

model::ArrivalConfig poisson_traffic() {
  model::ArrivalConfig config;
  config.kind = model::ArrivalKind::kPoisson;
  config.rate_rps = 40.0;
  return config;
}

model::ArrivalConfig bursty_traffic() {
  model::ArrivalConfig config;
  config.kind = model::ArrivalKind::kBursty;
  config.rate_rps = 30.0;
  config.burst_rate_rps = 120.0;
  config.calm_mean_s = 4.0;
  config.burst_mean_s = 1.0;
  return config;
}

enum class Manager { kCfs, kEdf, kHarp };

std::unique_ptr<sim::Policy> make_manager(Manager manager,
                                          const platform::HardwareDescription& hw,
                                          const model::WorkloadCatalog& catalog) {
  switch (manager) {
    case Manager::kCfs: return std::make_unique<sched::CfsPolicy>();
    case Manager::kEdf: return std::make_unique<sched::EdfPolicy>();
    case Manager::kHarp: {
      core::HarpOptions options;
      options.offline_tables[kService] = core::run_offline_dse(catalog.app(kService), hw);
      options.exploration.stable_realloc_interval = 10;  // latency-critical tuning
      return std::make_unique<core::HarpPolicy>(options);
    }
  }
  return nullptr;
}

sim::RunResult run_service(const model::ArrivalConfig& traffic, Manager manager,
                           std::uint64_t seed, double horizon_s) {
  platform::HardwareDescription hw = platform::raptor_lake();
  model::WorkloadCatalog catalog = service_catalog();
  model::Scenario scenario;
  scenario.name = "qos-service";
  scenario.apps.push_back(model::ScenarioApp(kService, 0.0, traffic));

  sim::RunOptions options;
  options.seed = seed;
  options.repeat_horizon = horizon_s;
  std::unique_ptr<sim::Policy> policy = make_manager(manager, hw, catalog);
  sim::ScenarioRunner runner(hw, catalog, scenario, options);
  return runner.run(*policy);
}

// ---------------------------------------------------------------------------
// 1. HARP vs baselines: more QoS for fewer joules on >= 2 traffic shapes
// ---------------------------------------------------------------------------

void expect_harp_dominates(const model::ArrivalConfig& traffic, std::uint64_t seed,
                           bool expect_strict_hit_win) {
  const double horizon = 20.0;
  sim::RunResult cfs = run_service(traffic, Manager::kCfs, seed, horizon);
  sim::RunResult edf = run_service(traffic, Manager::kEdf, seed, horizon);
  sim::RunResult harp = run_service(traffic, Manager::kHarp, seed, horizon);

  const sim::AppRunStats& cfs_app = cfs.app(kService);
  const sim::AppRunStats& edf_app = edf.app(kService);
  const sim::AppRunStats& harp_app = harp.app(kService);

  // Same open-loop traffic under every manager.
  EXPECT_EQ(harp_app.requests_arrived, cfs_app.requests_arrived);
  EXPECT_EQ(harp_app.requests_arrived, edf_app.requests_arrived);
  ASSERT_GT(harp_app.requests_completed, 100u);

  // Hit-rate: HARP >= the deadline-aware baseline (strictly better under
  // bursts, where static provisioning under-serves)...
  EXPECT_GE(harp_app.hit_rate(), edf_app.hit_rate());
  if (expect_strict_hit_win) {
    EXPECT_GT(harp_app.hit_rate(), edf_app.hit_rate() + 0.05);
  }

  // ...at no more energy than EDF's static grant, and far below the CFS
  // whole-machine bill: equal-or-less energy, equal-or-more QoS.
  EXPECT_LE(harp.package_energy_j, edf.package_energy_j);
  EXPECT_LT(harp.package_energy_j, 0.7 * cfs.package_energy_j);

  // QoS per joule, the paper's headline currency: HARP best of the three.
  auto qos_per_kj = [](const sim::RunResult& result) {
    return result.app(kService).hit_rate() / result.package_energy_j * 1e3;
  };
  EXPECT_GT(qos_per_kj(harp), qos_per_kj(edf));
  EXPECT_GT(qos_per_kj(harp), qos_per_kj(cfs));
}

TEST(QosDominance, HarpMeetsEdfHitRateWithLessEnergyOnPoisson) {
  expect_harp_dominates(poisson_traffic(), 1000, /*expect_strict_hit_win=*/false);
}

TEST(QosDominance, HarpBeatsEdfHitRateWithLessEnergyOnFlashCrowd) {
  expect_harp_dominates(bursty_traffic(), 1000, /*expect_strict_hit_win=*/true);
}

TEST(QosDominance, HarpHoldsTheSoftTargetOnNominalLoad) {
  sim::RunResult harp = run_service(poisson_traffic(), Manager::kHarp, 1000, 20.0);
  EXPECT_GE(harp.app(kService).hit_rate(), service_spec().min_hit_rate);
}

// ---------------------------------------------------------------------------
// 2. Seeded determinism: exact replay within a binary, pinned headline stats
// ---------------------------------------------------------------------------

TEST(QosDeterminism, SameSeedReplaysBitIdentically) {
  for (Manager manager : {Manager::kCfs, Manager::kEdf, Manager::kHarp}) {
    sim::RunResult a = run_service(bursty_traffic(), manager, 77, 10.0);
    sim::RunResult b = run_service(bursty_traffic(), manager, 77, 10.0);
    const sim::AppRunStats& sa = a.app(kService);
    const sim::AppRunStats& sb = b.app(kService);
    EXPECT_EQ(sa.requests_arrived, sb.requests_arrived);
    EXPECT_EQ(sa.requests_completed, sb.requests_completed);
    EXPECT_EQ(sa.deadline_hits, sb.deadline_hits);
    EXPECT_EQ(sa.requests_left_queued, sb.requests_left_queued);
    // Bit-exact doubles: the whole pipeline is deterministic, not just close.
    EXPECT_EQ(sa.tardiness_sum_s, sb.tardiness_sum_s);
    EXPECT_EQ(sa.max_tardiness_s, sb.max_tardiness_s);
    EXPECT_EQ(a.package_energy_j, b.package_energy_j);
  }

  // Different seeds draw different traffic.
  sim::RunResult a = run_service(bursty_traffic(), Manager::kEdf, 77, 10.0);
  sim::RunResult c = run_service(bursty_traffic(), Manager::kEdf, 78, 10.0);
  EXPECT_NE(a.app(kService).requests_arrived, c.app(kService).requests_arrived);
}

TEST(QosDeterminism, PinnedHeadlineNumbersPerSeed) {
  // Pinned outcomes for (seed 1000, horizon 10 s) — the request counts this
  // simulator must reproduce run after run, and the energy to within float
  // noise of the libm in use. If an intentional model/policy change moves
  // them, re-pin from this test's failure output and justify the shift in
  // the commit that makes it.
  struct Pinned {
    const char* traffic_name;
    model::ArrivalConfig traffic;
    Manager manager;
    std::uint64_t arrived;
    std::uint64_t completed;
    std::uint64_t hits;
    double energy_j;
  };
  const Pinned pinned[] = {
      {"poisson", poisson_traffic(), Manager::kCfs, 398, 398, 391, 846.642393504},
      {"poisson", poisson_traffic(), Manager::kEdf, 398, 398, 389, 503.947033333},
      {"poisson", poisson_traffic(), Manager::kHarp, 398, 398, 389, 417.388221278},
      {"bursty", bursty_traffic(), Manager::kCfs, 500, 500, 497, 846.642393504},
      {"bursty", bursty_traffic(), Manager::kEdf, 500, 500, 344, 503.947033333},
      {"bursty", bursty_traffic(), Manager::kHarp, 500, 500, 421, 437.921015550},
  };
  for (const Pinned& pin : pinned) {
    SCOPED_TRACE(std::string(pin.traffic_name) + "/" +
                 std::to_string(static_cast<int>(pin.manager)));
    sim::RunResult result = run_service(pin.traffic, pin.manager, 1000, 10.0);
    const sim::AppRunStats& stats = result.app(kService);
    EXPECT_EQ(stats.requests_arrived, pin.arrived);
    EXPECT_EQ(stats.requests_completed, pin.completed);
    EXPECT_EQ(stats.deadline_hits, pin.hits);
    EXPECT_NEAR(result.package_energy_j, pin.energy_j, 1e-6 * pin.energy_j + 1e-9);
  }
}

// ---------------------------------------------------------------------------
// 3. Golden per-request trace: byte-for-byte stable telemetry
// ---------------------------------------------------------------------------

std::string fixture_path(const std::string& name) {
  return std::string(HARP_QOS_FIXTURE_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// The golden scenario: the checked-in replay trace (no arrival RNG), zero
/// telemetry noise, the EDF baseline (static plan, no RM feedback loop) —
/// the minimal pipeline that still exercises queueing, deadline accounting,
/// and per-request telemetry.
std::string render_golden_trace() {
  Result<model::RequestTrace> input = model::RequestTrace::load(fixture_path("input_trace.jsonl"));
  EXPECT_TRUE(input.ok()) << (input.ok() ? "" : input.error().message);
  model::ArrivalConfig traffic;
  traffic.kind = model::ArrivalKind::kReplay;
  traffic.trace = input.value();

  platform::HardwareDescription hw = platform::raptor_lake();
  model::WorkloadCatalog catalog = service_catalog();
  model::Scenario scenario;
  scenario.name = "qos-golden";
  scenario.apps.push_back(model::ScenarioApp(kService, 0.0, traffic));

  telemetry::ManualClock clock;
  telemetry::Tracer tracer(&clock);
  sim::RunOptions options;
  options.seed = 7;
  options.repeat_horizon = 6.0;
  options.perf_noise = 0.0;
  options.energy_noise = 0.0;
  options.utility_noise = 0.0;
  options.tracer = &tracer;
  options.trace_clock = &clock;
  sched::EdfPolicy policy;
  sim::ScenarioRunner runner(hw, catalog, scenario, options);
  (void)runner.run(policy);

  // to_jsonl IS the file format: write_trace_file dumps it verbatim, so
  // comparing the string avoids a shared temp path (the two GoldenTrace
  // tests run as concurrent ctest processes).
  return telemetry::to_jsonl(tracer.events());
}

TEST(GoldenTrace, RerunsAreByteIdentical) {
  std::string first = render_golden_trace();
  std::string second = render_golden_trace();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(GoldenTrace, MatchesCheckedInFixtureByteForByte) {
  // harp-lint: allow(r9 HARP_REGEN_QOS_GOLDEN only gates the human-invoked golden regen path; the rendered trace is seed-deterministic and pinned byte-for-byte)
  std::string rendered = render_golden_trace();
  ASSERT_FALSE(rendered.empty());
  if (std::getenv("HARP_REGEN_QOS_GOLDEN") != nullptr) {
    std::ofstream out(fixture_path("golden_trace.jsonl"), std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good());
    out << rendered;
    ASSERT_TRUE(out.flush().good());
    GTEST_SKIP() << "regenerated " << fixture_path("golden_trace.jsonl");
  }
  std::string golden = read_file(fixture_path("golden_trace.jsonl"));
  // Byte-for-byte: timestamps, ordering, and %.17g number formatting are all
  // part of the contract (harp-trace and diff-based tooling rely on it).
  EXPECT_EQ(rendered, golden);
}

}  // namespace
}  // namespace harp
