// Unit + property tests for hardware descriptions, extended resource
// vectors, enumeration, and spatially isolated core assignment.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>

#include "src/common/check.hpp"
#include "src/platform/hardware.hpp"
#include "src/platform/resource_vector.hpp"

namespace harp::platform {
namespace {

/// Parse a JSON literal the test knows is syntactically valid; fails the
/// test (and returns null) on a parse error instead of touching the Result.
json::Value doc(const std::string& text) {
  Result<json::Value> r = json::parse(text);
  EXPECT_TRUE(r.ok()) << "parse failed: " << text;
  if (!r.ok()) return json::Value();
  return std::move(r).take();
}

TEST(Hardware, RaptorLakeShape) {
  HardwareDescription hw = raptor_lake();
  ASSERT_EQ(hw.num_core_types(), 2);
  EXPECT_EQ(hw.core_types[0].name, "P");
  EXPECT_EQ(hw.core_types[0].core_count, 8);
  EXPECT_EQ(hw.core_types[0].smt_width, 2);
  EXPECT_EQ(hw.core_types[1].core_count, 16);
  EXPECT_EQ(hw.total_hardware_threads(), 32);
  EXPECT_EQ(hw.hardware_threads(0), 16);
  EXPECT_EQ(hw.type_index("E"), 1);
  EXPECT_EQ(hw.type_index("big"), -1);
  EXPECT_GT(hw.power_gamma, 1.0);
}

TEST(Hardware, OdroidShape) {
  HardwareDescription hw = odroid_xu3e();
  EXPECT_EQ(hw.total_hardware_threads(), 8);
  EXPECT_EQ(hw.core_types[0].name, "big");
  // The big cores must be faster but hungrier than LITTLE.
  EXPECT_GT(hw.core_types[0].base_gips, hw.core_types[1].base_gips);
  EXPECT_GT(hw.core_types[0].active_power_w, hw.core_types[1].active_power_w);
}

TEST(Hardware, JsonRoundTrip) {
  HardwareDescription hw = raptor_lake();
  auto restored = HardwareDescription::from_json(hw.to_json());
  ASSERT_TRUE(restored.ok());
  const HardwareDescription& r = restored.value();
  EXPECT_EQ(r.name, hw.name);
  ASSERT_EQ(r.core_types.size(), hw.core_types.size());
  EXPECT_DOUBLE_EQ(r.core_types[0].active_power_w, hw.core_types[0].active_power_w);
  EXPECT_DOUBLE_EQ(r.memory_gips, hw.memory_gips);
}

TEST(Hardware, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/harp_hw_test.json";
  HardwareDescription hw = odroid_xu3e();
  ASSERT_TRUE(hw.save(path).ok());
  auto loaded = HardwareDescription::load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().name, hw.name);
  std::remove(path.c_str());
}

TEST(Hardware, FromJsonValidatesShape) {
  EXPECT_FALSE(HardwareDescription::from_json(json::Value(3.0)).ok());
  EXPECT_FALSE(HardwareDescription::from_json(doc(R"({"name":"x"})")).ok());
  EXPECT_FALSE(HardwareDescription::from_json(doc(R"({"name":"x","core_types":[]})")).ok());
  EXPECT_FALSE(HardwareDescription::from_json(
                   doc(R"({"name":"x","core_types":[{"name":"P","core_count":0}]})"))
                   .ok());
}

TEST(Erv, PaperExampleVector) {
  // §4.1.2: 4 E-cores and 3 P-cores, two of them with both hyperthreads:
  // extended resource vector [1, 2, 4]ᵀ.
  HardwareDescription hw = raptor_lake();
  ExtendedResourceVector erv = ExtendedResourceVector::zero(hw);
  erv.set_count(0, 1, 1);  // one P-core at 1 thread
  erv.set_count(0, 2, 2);  // two P-cores at 2 threads
  erv.set_count(1, 1, 4);  // four E-cores
  EXPECT_EQ(erv.feature_vector(), (std::vector<double>{1, 2, 4}));
  EXPECT_EQ(erv.cores_used(0), 3);
  EXPECT_EQ(erv.threads(0), 5);
  EXPECT_EQ(erv.threads(1), 4);
  EXPECT_EQ(erv.total_threads(), 9);
  EXPECT_EQ(erv.total_cores(), 7);
  EXPECT_TRUE(erv.fits(hw));
  EXPECT_EQ(erv.to_string(hw), "P[1x1t,2x2t] E[4x1t]");
}

TEST(Erv, FromThreadsPacksSmtFirst) {
  HardwareDescription hw = raptor_lake();
  ExtendedResourceVector erv = ExtendedResourceVector::from_threads(hw, {5, 3});
  EXPECT_EQ(erv.count(0, 2), 2);  // 2 cores fully loaded
  EXPECT_EQ(erv.count(0, 1), 1);  // 1 core half loaded
  EXPECT_EQ(erv.count(1, 1), 3);
  EXPECT_EQ(erv.total_threads(), 8);
  EXPECT_THROW(ExtendedResourceVector::from_threads(hw, {17, 0}), CheckFailure);
}

TEST(Erv, ZeroAndFull) {
  HardwareDescription hw = raptor_lake();
  EXPECT_TRUE(ExtendedResourceVector::zero(hw).is_zero());
  ExtendedResourceVector full = ExtendedResourceVector::full(hw);
  EXPECT_EQ(full.total_threads(), 32);
  EXPECT_TRUE(full.fits(hw));
}

TEST(Erv, FitsRejectsOverCapacity) {
  HardwareDescription hw = odroid_xu3e();
  ExtendedResourceVector erv = ExtendedResourceVector::zero(hw);
  erv.set_count(0, 1, 5);  // only 4 big cores exist
  EXPECT_FALSE(erv.fits(hw));
}

TEST(Erv, NormalizedDistance) {
  HardwareDescription hw = raptor_lake();
  ExtendedResourceVector a = ExtendedResourceVector::zero(hw);
  ExtendedResourceVector b = ExtendedResourceVector::zero(hw);
  b.set_count(0, 2, 8);   // all P fully loaded: one dim moves by 8/8
  b.set_count(1, 1, 16);  // all E: one dim moves by 16/16
  EXPECT_NEAR(a.normalized_distance(b, hw), std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(a.normalized_distance(a, hw), 0.0);
}

TEST(Erv, JsonRoundTrip) {
  HardwareDescription hw = raptor_lake();
  ExtendedResourceVector erv = ExtendedResourceVector::from_threads(hw, {7, 11});
  auto restored = ExtendedResourceVector::from_json(erv.to_json());
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored.value() == erv);
}

TEST(Erv, FromJsonValidates) {
  EXPECT_FALSE(ExtendedResourceVector::from_json(json::Value(1.0)).ok());
  EXPECT_FALSE(ExtendedResourceVector::from_json(doc("[[-1]]")).ok());
  EXPECT_FALSE(ExtendedResourceVector::from_json(doc("[]")).ok());
}

TEST(Enumerate, OdroidCountIsExact) {
  // 4 big (no SMT) → 5 options; 4 LITTLE → 5 options; minus the zero vector.
  std::vector<ExtendedResourceVector> points = enumerate_coarse_points(odroid_xu3e());
  EXPECT_EQ(points.size(), 24u);
}

TEST(Enumerate, RaptorLakeCountIsExact) {
  // P: (n1,n2) with n1+n2 ≤ 8 → 45 options; E: 17 options; minus zero.
  std::vector<ExtendedResourceVector> points = enumerate_coarse_points(raptor_lake());
  EXPECT_EQ(points.size(), 45u * 17u - 1u);
}

TEST(Enumerate, AllPointsUniqueAndFeasible) {
  HardwareDescription hw = raptor_lake();
  std::set<ExtendedResourceVector> seen;
  for (const ExtendedResourceVector& erv : enumerate_coarse_points(hw)) {
    EXPECT_TRUE(erv.fits(hw));
    EXPECT_FALSE(erv.is_zero());
    EXPECT_TRUE(seen.insert(erv).second) << "duplicate point";
  }
}

TEST(Assign, DisjointCoresForConcurrentApps) {
  HardwareDescription hw = raptor_lake();
  ExtendedResourceVector a = ExtendedResourceVector::from_threads(hw, {4, 0});
  ExtendedResourceVector b = ExtendedResourceVector::from_threads(hw, {8, 8});
  auto result = assign_cores(hw, {a, b});
  ASSERT_TRUE(result.ok());
  const auto& allocs = result.value();
  ASSERT_EQ(allocs.size(), 2u);
  std::set<int> p_cores;
  for (const auto& alloc : allocs)
    for (const auto& [core, threads] : alloc.cores[0]) {
      (void)threads;
      EXPECT_TRUE(p_cores.insert(core).second) << "P-core shared between apps";
    }
  EXPECT_EQ(allocs[0].total_threads(), 4);
  EXPECT_EQ(allocs[1].total_threads(), 16);
}

TEST(Assign, RoundTripsToSameErv) {
  HardwareDescription hw = raptor_lake();
  ExtendedResourceVector erv = ExtendedResourceVector::from_threads(hw, {5, 7});
  auto result = assign_cores(hw, {erv});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value()[0].to_erv(hw) == erv);
}

TEST(Assign, FailsWhenOverCommitted) {
  HardwareDescription hw = odroid_xu3e();
  ExtendedResourceVector all = ExtendedResourceVector::full(hw);
  auto result = assign_cores(hw, {all, all});
  EXPECT_FALSE(result.ok());
}

TEST(Assign, EmptyDemandYieldsEmptyAllocation) {
  HardwareDescription hw = odroid_xu3e();
  auto result = assign_cores(hw, {ExtendedResourceVector::zero(hw)});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value()[0].is_empty());
}

// Property sweep: from_threads must always produce a vector realising the
// requested thread counts and staying within capacity.
class FromThreadsProperty : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(FromThreadsProperty, RealisesThreadCounts) {
  HardwareDescription hw = raptor_lake();
  auto [p_threads, e_threads] = GetParam();
  ExtendedResourceVector erv = ExtendedResourceVector::from_threads(hw, {p_threads, e_threads});
  EXPECT_EQ(erv.threads(0), p_threads);
  EXPECT_EQ(erv.threads(1), e_threads);
  EXPECT_TRUE(erv.fits(hw));
  // Packing must be minimal in cores: ⌈threads/smt⌉ cores of each type.
  EXPECT_EQ(erv.cores_used(0), (p_threads + 1) / 2);
  EXPECT_EQ(erv.cores_used(1), e_threads);
}

INSTANTIATE_TEST_SUITE_P(AllThreadCounts, FromThreadsProperty,
                         ::testing::Values(std::pair{0, 0}, std::pair{1, 0}, std::pair{2, 0},
                                           std::pair{3, 5}, std::pair{16, 16}, std::pair{9, 1},
                                           std::pair{0, 16}, std::pair{15, 13}));

}  // namespace
}  // namespace harp::platform
