// Property tests for the deadline/QoS workload model (src/model/qos):
// arrival-process statistics, determinism, trace round-trips, loader error
// handling, and the analytic EDF-flavored utility curve.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "src/model/qos.hpp"

namespace harp::model {
namespace {

// ---------------------------------------------------------------------------
// Arrival processes
// ---------------------------------------------------------------------------

/// Arrivals of `gen` with arrival_s < horizon (consumes the stream).
std::vector<QosRequest> take_until(ArrivalGenerator& gen, double horizon_s) {
  std::vector<QosRequest> out;
  while (std::optional<QosRequest> req = gen.next()) {
    if (req->arrival_s >= horizon_s) break;
    out.push_back(*req);
  }
  return out;
}

TEST(ArrivalProcess, PoissonEmpiricalRateMatchesConfigured) {
  ArrivalConfig config;
  config.kind = ArrivalKind::kPoisson;
  config.rate_rps = 20.0;
  const double horizon = 2000.0;
  ArrivalGenerator gen(config, 7);
  std::vector<QosRequest> requests = take_until(gen, horizon);
  double empirical = static_cast<double>(requests.size()) / horizon;
  // 40k arrivals: the sample mean is within a few standard deviations of
  // the configured rate at 3% tolerance.
  EXPECT_NEAR(empirical, config.rate_rps, 0.03 * config.rate_rps);
  for (std::size_t i = 1; i < requests.size(); ++i)
    ASSERT_GE(requests[i].arrival_s, requests[i - 1].arrival_s);
}

TEST(ArrivalProcess, BurstyEmpiricalRateMatchesStationaryMean) {
  ArrivalConfig config;
  config.kind = ArrivalKind::kBursty;
  config.rate_rps = 10.0;
  config.burst_rate_rps = 80.0;
  config.calm_mean_s = 4.0;
  config.burst_mean_s = 1.0;
  const double horizon = 4000.0;
  ArrivalGenerator gen(config, 11);
  std::vector<QosRequest> requests = take_until(gen, horizon);
  // MMPP-2 stationary rate: time-weighted mix of the two state rates.
  double expected = (config.calm_mean_s * config.rate_rps +
                     config.burst_mean_s * config.burst_rate_rps) /
                    (config.calm_mean_s + config.burst_mean_s);
  double empirical = static_cast<double>(requests.size()) / horizon;
  EXPECT_NEAR(empirical, expected, 0.08 * expected);

  // The process actually has two regimes: over 100 ms windows, some see
  // burst-level counts, most see calm-level counts.
  int busy_windows = 0;
  std::size_t i = 0;
  for (double w = 0.0; w < horizon; w += 0.1) {
    int in_window = 0;
    while (i < requests.size() && requests[i].arrival_s < w + 0.1) ++in_window, ++i;
    if (in_window >= 4) ++busy_windows;  // ≥40 rps observed
  }
  EXPECT_GT(busy_windows, 100);
}

TEST(ArrivalProcess, DiurnalOscillatesAroundMeanRate) {
  ArrivalConfig config;
  config.kind = ArrivalKind::kDiurnal;
  config.rate_rps = 20.0;
  config.diurnal_period_s = 100.0;
  config.diurnal_amplitude = 0.8;
  const double horizon = 3000.0;  // 30 whole periods
  ArrivalGenerator gen(config, 13);
  std::vector<QosRequest> requests = take_until(gen, horizon);
  double empirical = static_cast<double>(requests.size()) / horizon;
  EXPECT_NEAR(empirical, config.rate_rps, 0.05 * config.rate_rps);

  // Peak quarter-periods (around t ≡ P/4) must out-arrive trough quarters
  // (around t ≡ 3P/4) by roughly (1+a)/(1-a).
  double peak = 0.0, trough = 0.0;
  for (const QosRequest& req : requests) {
    double phase = std::fmod(req.arrival_s, config.diurnal_period_s) / config.diurnal_period_s;
    if (phase >= 0.125 && phase < 0.375) peak += 1.0;
    if (phase >= 0.625 && phase < 0.875) trough += 1.0;
  }
  ASSERT_GT(trough, 0.0);
  EXPECT_GT(peak / trough, 3.0);  // (1+0.8)/(1-0.8) = 9 in the rate ratio
}

TEST(ArrivalProcess, SameSeedSameSequenceDifferentSeedDiverges) {
  for (ArrivalKind kind : {ArrivalKind::kPoisson, ArrivalKind::kBursty, ArrivalKind::kDiurnal}) {
    ArrivalConfig config;
    config.kind = kind;
    ArrivalGenerator a(config, 99);
    ArrivalGenerator b(config, 99);
    ArrivalGenerator c(config, 100);
    bool diverged = false;
    for (int i = 0; i < 1000; ++i) {
      std::optional<QosRequest> ra = a.next(), rb = b.next(), rc = c.next();
      ASSERT_TRUE(ra.has_value() && rb.has_value() && rc.has_value());
      // Bit-exact: same seed must replay the same stream.
      ASSERT_EQ(ra->arrival_s, rb->arrival_s) << to_string(kind) << " i=" << i;
      if (ra->arrival_s != rc->arrival_s) diverged = true;
    }
    EXPECT_TRUE(diverged) << to_string(kind);
  }
}

TEST(ArrivalProcess, ReplayEmitsTraceVerbatimThenEnds) {
  ArrivalConfig config;
  config.kind = ArrivalKind::kReplay;
  config.trace.requests = {{0.0, -1.0, -1.0}, {0.5, 2.0, -1.0}, {0.5, -1.0, 0.25}, {1.75, -1.0, -1.0}};
  ArrivalGenerator gen(config, 1);
  for (const QosRequest& expected : config.trace.requests) {
    std::optional<QosRequest> got = gen.next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, expected);
  }
  EXPECT_FALSE(gen.next().has_value());
  EXPECT_FALSE(gen.next().has_value());  // stays exhausted
}

// ---------------------------------------------------------------------------
// Trace format
// ---------------------------------------------------------------------------

TEST(RequestTrace, JsonlRoundTripIsExact) {
  RequestTrace trace;
  // Awkward doubles on purpose: the %.17g serialisation must round-trip bits.
  trace.requests = {{0.0, -1.0, -1.0},
                    {0.1 + 0.2, 1.0 / 3.0, -1.0},
                    {1.0000000000000002, -1.0, 0.049999999999999996},
                    {12345.678901234567, 9.87654321e-3, 0.5}};
  Result<RequestTrace> parsed = RequestTrace::parse(trace.to_jsonl());
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value().requests, trace.requests);
}

TEST(RequestTrace, SaveLoadRoundTrip) {
  RequestTrace trace;
  trace.requests = {{0.25, -1.0, -1.0}, {0.75, 1.5, 0.1}};
  std::string path = ::testing::TempDir() + "/qos_trace_roundtrip.jsonl";
  ASSERT_TRUE(trace.save(path).ok());
  Result<RequestTrace> loaded = RequestTrace::load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  EXPECT_EQ(loaded.value().requests, trace.requests);
  std::remove(path.c_str());
}

TEST(RequestTrace, ParsesCsvJsonlCommentsAndBlanks) {
  const char* text =
      "# request trace, mixed formats\n"
      "0.5\n"
      "\n"
      "1.0,2.5\n"
      "1.5,2.5,0.125\n"
      "{\"t\": 2.0}\n"
      "{\"t\": 2.5, \"work_gi\": 3.0, \"deadline_s\": 0.2}\n";
  Result<RequestTrace> parsed = RequestTrace::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  const std::vector<QosRequest> expected = {{0.5, -1.0, -1.0},
                                            {1.0, 2.5, -1.0},
                                            {1.5, 2.5, 0.125},
                                            {2.0, -1.0, -1.0},
                                            {2.5, 3.0, 0.2}};
  EXPECT_EQ(parsed.value().requests, expected);
}

TEST(RequestTrace, MalformedInputIsAStatusErrorNotACrash) {
  const struct {
    const char* text;
    const char* why;
  } cases[] = {
      {"abc\n", "non-numeric arrival"},
      {"1.0,xyz\n", "non-numeric work"},
      {"1.0,1.0,zz\n", "non-numeric deadline"},
      {"2.0\n1.0\n", "decreasing arrivals"},
      {"1.0,-3.0\n", "negative work (only -1 sentinel allowed)"},
      {"1.0,1.0,0.0\n", "zero deadline"},
      {"{\"t\": \n", "truncated json"},
      {"{\"work_gi\": 1.0}\n", "json without t"},
      {"1.0,1.0,0.5,9\n", "too many csv fields"},
  };
  for (const auto& c : cases) {
    Result<RequestTrace> parsed = RequestTrace::parse(c.text);
    ASSERT_FALSE(parsed.ok()) << c.why;
    EXPECT_EQ(parsed.error().message.rfind("parse:", 0), 0u)
        << c.why << " -> " << parsed.error().message;
  }
  // Line numbers point at the offending line, counting comments and blanks.
  Result<RequestTrace> parsed = RequestTrace::parse("# ok\n0.5\n\nbroken\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().message.find("line 4"), std::string::npos)
      << parsed.error().message;

  Result<RequestTrace> missing = RequestTrace::load("/nonexistent/qos.jsonl");
  EXPECT_FALSE(missing.ok());
}

// ---------------------------------------------------------------------------
// Analytic utility curve
// ---------------------------------------------------------------------------

TEST(QosCurve, HitRateIsMonotoneInServiceRate) {
  const double lambda = 40.0, deadline = 0.05;
  EXPECT_EQ(expected_hit_rate(40.0, lambda, deadline), 0.0);  // μ = λ: saturated
  EXPECT_EQ(expected_hit_rate(10.0, lambda, deadline), 0.0);  // μ < λ: overloaded
  double prev = 0.0;
  for (double mu = 45.0; mu <= 400.0; mu += 5.0) {
    double hit = expected_hit_rate(mu, lambda, deadline);
    EXPECT_GE(hit, prev);
    EXPECT_LE(hit, 1.0);
    prev = hit;
  }
  EXPECT_GT(prev, 0.99);  // 10x over-provisioning is effectively perfect
}

TEST(QosCurve, EdfProvisionRateMeetsTheTargetExactly) {
  QosSpec spec;
  spec.deadline_s = 0.05;
  spec.nominal_rate_rps = 40.0;
  spec.min_hit_rate = 0.95;
  double mu = edf_provision_rate(spec);
  EXPECT_GT(mu, spec.nominal_rate_rps);
  EXPECT_NEAR(expected_hit_rate(mu, spec.nominal_rate_rps, spec.deadline_s),
              spec.min_hit_rate, 1e-12);
}

TEST(QosCurve, UtilityIsClampedAndPenalisesTardiness) {
  QosSpec spec;
  spec.deadline_s = 0.05;
  spec.nominal_rate_rps = 40.0;
  spec.tardiness_penalty = 0.5;
  EXPECT_EQ(qos_utility(0.0, spec.nominal_rate_rps, spec), 0.0);    // no service
  EXPECT_EQ(qos_utility(40.0, spec.nominal_rate_rps, spec), 0.0);   // saturated
  double u = qos_utility(1000.0, spec.nominal_rate_rps, spec);
  EXPECT_GT(u, 0.99);
  EXPECT_LE(u, 1.0);
  // The tardiness penalty strictly lowers utility relative to the raw
  // hit-rate wherever tardiness is nonzero.
  double mu = 80.0;
  EXPECT_LT(qos_utility(mu, spec.nominal_rate_rps, spec),
            expected_hit_rate(mu, spec.nominal_rate_rps, spec.deadline_s));
  QosSpec no_penalty = spec;
  no_penalty.tardiness_penalty = 0.0;
  EXPECT_EQ(qos_utility(mu, spec.nominal_rate_rps, no_penalty),
            expected_hit_rate(mu, spec.nominal_rate_rps, spec.deadline_s));
}

TEST(QosCurve, ExpectedTardinessFallsWithCapacity) {
  const double lambda = 40.0, deadline = 0.05;
  EXPECT_TRUE(std::isinf(expected_tardiness_s(40.0, lambda, deadline)));
  double prev = expected_tardiness_s(45.0, lambda, deadline);
  for (double mu = 50.0; mu <= 200.0; mu += 10.0) {
    double tard = expected_tardiness_s(mu, lambda, deadline);
    EXPECT_LT(tard, prev);
    prev = tard;
  }
}

}  // namespace
}  // namespace harp::model
