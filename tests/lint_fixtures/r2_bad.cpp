// Bad fixture for r2 (determinism): every nondeterminism pattern the rule
// recognises. Also reused by the fixture test under the faked path
// src/common/rng.hpp to prove the one sanctioned home is exempt.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

unsigned seed_from_hardware() {
  std::random_device rd;  // expect: r2
  return rd();
}

int c_random() {
  return rand();  // expect: r2
}

void seed_with_wall_clock() {
  unsigned seed = static_cast<unsigned>(time(nullptr));  // expect: r2
  srand(seed);                                           // expect: r2
}

double wall_clock_seconds() {
  auto now = std::chrono::system_clock::now();  // expect: r2
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}
