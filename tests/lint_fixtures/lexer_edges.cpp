// Lexer edge cases the call-graph indexer must survive: raw string literals
// with embedded quotes swallowing source/sink-shaped text, C++14 digit
// separators, and backslash line splices inside identifiers.
#include <cstdlib>
#include <string>

namespace fixture {

// The raw string contains an embedded quoted word followed by source- and
// sink-shaped text. A lexer that ended the literal at the inner quote would
// tokenise std::rand() and json::dump() as real code in this function —
// producing a spurious r9 here — and then swallow the rest of the file as
// an unterminated string, losing the genuine finding below.
const char* describe_format() {
  return R"(the "seed" column is drawn from std::rand() and json::dump(state) writes it)";
}

// 1'000'000 must lex as one number, not a number plus a character literal
// that swallows the rest of the function and breaks brace tracking for
// every definition after it.
int budget_micros() { return 1'000'000; }

// A splice inside an identifier: `ra\<newline>nd` is one rand() call, and
// the sink fed from it in the same function must still be reported.
void spliced_emit(Tracer& tracer) {
  int draw = ra\
nd();
  tracer.instant(EventType::kSolve, draw);  // expect: r9
}

}  // namespace fixture
