// Bad fixture enum for r4 (dispatch): kOrphan has no payload struct at all,
// and the companion bad dispatch fixture never mentions Shutdown.
#pragma once

enum class MessageType {
  kPing,
  kShutdown,
  kOrphan,  // expect: r4
};

struct PingMsg {
  int sequence = 0;
};

struct Shutdown {
  int reason = 0;
};
