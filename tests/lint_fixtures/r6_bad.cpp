// Bad fixture for r6 (hot-path allocations): this file opts in via the
// annotation below, so every vector/string construction inside a loop head
// or braced loop body is a finding.
// harp-lint: hot-path
#include <string>
#include <vector>

int sum_lengths(const std::vector<std::string>& names) {
  int total = 0;
  for (std::size_t i = 0; i < names.size(); ++i) {
    std::vector<int> lengths;  // expect: r6
    lengths.push_back(static_cast<int>(names[i].size()));
    total += lengths.back();
  }
  return total;
}

void per_iteration_copies(const std::vector<std::string>& names) {
  for (std::string name : names) {  // expect: r6
    (void)name;
  }
}

void temporaries_in_while(int n) {
  while (n-- > 0) {
    auto scratch = std::vector<double>(8, 0.0);  // expect: r6
    (void)scratch;
  }
}

void nested_scope_still_counts(const std::vector<int>& xs) {
  for (int x : xs) {
    if (x > 0) {
      std::string label = "positive";  // expect: r6
      (void)label;
    }
  }
}

void do_loop_body(int n) {
  do {
    std::string buffer(16, ' ');  // expect: r6
    (void)buffer;
  } while (--n > 0);
}
