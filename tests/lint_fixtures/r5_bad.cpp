// Bad fixture for r5 (lock-annotations): a mutex-holding class whose data
// members carry no HARP_GUARDED_BY, including one declared first after an
// access specifier (the splitter must not swallow it).
#include "src/common/mutex.hpp"

class BoundedQueue {
 public:
  void push(int v);
  int pop();

 private:
  int depth_ = 0;  // expect: r5
  harp::Mutex mutex_;
  bool closed_ = false;  // expect: r5
};
