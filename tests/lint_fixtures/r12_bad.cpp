// r12: blocking operations under a held harp::Mutex — transport calls,
// sleeps, waiting syscalls, condition-variable waits that keep another
// mutex locked, and ParallelFor dispatch all fire while a lock is held.
#include <condition_variable>
#include <mutex>

#include "src/common/mutex.hpp"

struct Channel {
  bool send(int frame);
};

class ParallelFor;

class Pump {
 public:
  void flush() {
    harp::MutexLock lock(mutex_);
    channel_.send(42);  // expect: r12
  }
  void drain_socket(int fd) {
    harp::MutexLock lock(mutex_);
    (void)::recv(fd, nullptr, 0, 0);  // expect: r12
  }
  void backoff() {
    harp::MutexLock lock(mutex_);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));  // expect: r12
  }
  void reap(int epfd) {
    harp::MutexLock lock(mutex_);
    epoll_wait(epfd, nullptr, 16, -1);  // expect: r12
  }
  void wait_ready() {
    std::unique_lock<std::mutex> lk(aux_);
    harp::MutexLock lock(mutex_);
    cv_.wait(lk);  // expect: r12
  }
  void fan_out(ParallelFor& pool) {
    harp::MutexLock lock(mutex_);
    pool.run(64, nullptr, nullptr);  // expect: r12
  }

 private:
  harp::Mutex mutex_;
  std::mutex aux_;
  std::condition_variable cv_;
  Channel channel_;
};
