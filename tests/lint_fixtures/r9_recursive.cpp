// Fixpoint-termination regression: mutual recursion and self-recursion form
// cycles in the call graph; the worklist must converge (each node colored at
// most once) and still carry the taint across the cycle to the sinks.
#include <cstdlib>
#include <random>

namespace fixture {

int pong_depth(int n);

// Mutually recursive pair; the source sits in the base case of one side.
int ping_depth(int n) {
  if (n <= 0) return std::rand();
  return pong_depth(n - 1);
}

int pong_depth(int n) {
  if (n <= 0) return 0;
  return ping_depth(n - 1);
}

// The cycle's taint reaches this sink through ping_depth.
void report_depth(Tracer& tracer) {
  tracer.instant(EventType::kSolve, ping_depth(3));  // expect: r9
}

// Self-recursive sink-side helper: deterministic itself, so the report
// lands at the tainted caller's hand-off call site.
void spill_chain(Tracer& tracer, int n) {
  if (n > 0) spill_chain(tracer, n - 1);
  tracer.end(EventType::kSolve, n);
}

void seed_spill(Tracer& tracer) {
  std::random_device entropy;
  spill_chain(tracer, static_cast<int>(entropy() % 4));  // expect: r9
}

}  // namespace fixture
