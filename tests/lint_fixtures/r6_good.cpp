// Good fixture for r6 (hot-path allocations): annotated, but every loop is
// allocation-free — buffers are hoisted and reused, loop variables bind by
// reference, and vector/string only appear as references, pointers, or
// template arguments inside the loops.
// harp-lint: hot-path
#include <string>
#include <vector>

int sum_lengths(const std::vector<std::string>& names) {
  std::vector<int> lengths;  // hoisted: constructed once, reused per call
  int total = 0;
  for (std::size_t i = 0; i < names.size(); ++i) {
    lengths.clear();
    lengths.push_back(static_cast<int>(names[i].size()));
    total += lengths.back();
  }
  return total;
}

void reference_bindings(const std::vector<std::string>& names) {
  for (const std::string& name : names) {
    (void)name;
  }
}

void pointer_rows(const std::vector<std::vector<int>>& rows) {
  for (const std::vector<int>* row = rows.data(); row != rows.data() + rows.size(); ++row) {
    (void)row;
  }
}

std::string built_outside(int n) {
  std::string result;
  while (n-- > 0) {
    result += 'x';
  }
  return result;
}
