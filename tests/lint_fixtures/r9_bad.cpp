// r9 fixtures: nondeterminism sources reaching determinism sinks over the
// call graph. Markers sit on the lines where the engine reports: the sink
// call site when the sink's own function is tainted, the hand-off call site
// when a tainted caller feeds a deterministic sink-reaching callee.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <random>
#include <string>

namespace fixture {

// Case A: source and sink in the same function — fires at the sink line.
void emit_wallclock_metric(Tracer& tracer) {
  auto now = std::chrono::system_clock::now();
  tracer.instant(EventType::kLease, to_millis(now));  // expect: r9
}

// The sink-side helper is deterministic on its own: no source, so it stays
// silent and the report lands at the hand-off call site instead.
void write_report(const std::string& payload) { json::dump(payload); }

// Case B: the nondeterministic value crosses one call edge; fires where the
// tainted caller hands it to the sink-reaching callee.
std::string stamp_report() {
  const char* tag = std::getenv("HARP_TAG");
  std::string payload = tag != nullptr ? tag : "";
  write_report(payload);  // expect: r9
  return payload;
}

// Multi-hop chain: the taint climbs two call edges, and the diagnostic path
// names every hop from the emitting function down to the source.
long entropy_sample() { return std::rand(); }

long jitter_budget() { return entropy_sample() / 7; }

void publish_budget(Tracer& tracer) {
  long budget = jitter_budget();
  tracer.begin(EventType::kSolve, budget);  // expect: r9
}

// Method resolution: this-> call into a private tainted helper.
class EnergyLedger {
 public:
  void record(Tracer& tracer) {
    double sample = this->noisy_sample();
    tracer.instant(EventType::kEnergy, sample);  // expect: r9
  }

 private:
  double noisy_sample() {
    std::random_device seed_source;
    return static_cast<double>(seed_source());
  }
};

// Pointer identity leaking into a bench report (source and sink local).
void tag_bench_rows(const Task* task) {
  auto key = reinterpret_cast<std::uintptr_t>(task);
  bench::write_bench_file("rows", key);  // expect: r9
}

}  // namespace fixture
