// Bad fixture for r6 shaped like the mistakes the parallel scan kernel and
// the incremental λ iteration must avoid: per-block scratch vectors built
// inside the worker kernel, per-iteration relaxed-cost buffers, and a lane
// debug label formatted on every dispatch.
// harp-lint: hot-path
#include <cstddef>
#include <string>
#include <vector>

void scan_block(const double* rows, std::size_t begin, std::size_t end,
                std::vector<double>& relaxed);

void scan_kernel(const double* rows, std::size_t begin, std::size_t end, int lane) {
  for (std::size_t b = begin; b < end; b += 64) {
    std::vector<double> relaxed(64);  // expect: r6
    scan_block(rows, b, b + 64, relaxed);
    std::string label = "lane" + std::to_string(lane);  // expect: r6
    (void)label;
  }
}

void lambda_iterations(const double* rows, std::size_t num_groups, int iterations) {
  for (int it = 0; it < iterations; ++it) {
    std::vector<std::size_t> picks(num_groups);  // expect: r6
    for (std::size_t g = 0; g < num_groups; ++g) {
      std::vector<double> relaxed(64);  // expect: r6
      scan_block(rows, g, g + 1, relaxed);
      picks[g] = g;
    }
    (void)picks;
  }
}
