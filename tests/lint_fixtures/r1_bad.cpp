// Bad fixture for r1 (unchecked-result): discarded fallible calls and
// .value()/.error()/.take() without a dominating ok() check. Fixtures are
// lexed, never compiled, so the declarations below are all the rule needs.
#include "src/common/result.hpp"

harp::Status send_frame(int fd);
harp::Result<int> parse_num(const char* text);

void discards_status() {
  send_frame(3);  // expect: r1
}

void discards_inside_if(bool armed) {
  if (armed) send_frame(4);  // expect: r1
}

int value_without_check() {
  harp::Result<int> r = parse_num("4");
  return r.value();  // expect: r1
}

int error_without_check() {
  harp::Status s = send_frame(2);
  return s.error().code;  // expect: r1
}

int take_without_check() {
  harp::Result<int> r = parse_num("7");
  return std::move(r).take();  // expect: r1
}

int value_on_temporary() {
  return parse_num("5").value();  // expect: r1
}
