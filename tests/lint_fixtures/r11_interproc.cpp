// r11: the cycle closes only through callee may-acquire summaries — no
// single function nests both mutexes. Coordinator::rebalance holds
// Coordinator::cmutex_ and calls Shard::ingest (locks Shard::shmutex_);
// Shard::drain holds Shard::shmutex_ and calls Coordinator::audit (locks
// Coordinator::cmutex_). Each hop's witness is the callee-side acquisition
// site, so the printed path points at real source lines.
#include "src/common/mutex.hpp"

class Coordinator;

class Shard {
 public:
  void ingest();
  void drain(Coordinator& coord);

 private:
  harp::Mutex shmutex_;
};

class Coordinator {
 public:
  void audit();
  void rebalance(Shard& shard);

 private:
  harp::Mutex cmutex_;
};

void Shard::ingest() {
  harp::MutexLock lock(shmutex_);
}

void Shard::drain(Coordinator& coord) {
  harp::MutexLock lock(shmutex_);
  coord.audit();
}

void Coordinator::audit() {
  harp::MutexLock lock(cmutex_);  // expect: r11
}

void Coordinator::rebalance(Shard& shard) {
  harp::MutexLock lock(cmutex_);
  shard.ingest();
}
