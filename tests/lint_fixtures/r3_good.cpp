// Good fixture for r3 (layering). Scanned under the faked path
// src/harp/r3_good.cpp: 'harp' is the top layer and may include everything
// below it; self-includes and angle includes are always allowed.
#include <vector>

#include "src/common/result.hpp"
#include "src/harp/operating_point.hpp"
#include "src/ipc/transport.hpp"
#include "src/platform/hardware.hpp"

int top_layer_function() { return 0; }
