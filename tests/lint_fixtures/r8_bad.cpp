// Bad fixture for r8 (annotate-or-suppress): fields of a harp::Mutex-owning
// class without HARP_GUARDED_BY, and a guard naming no declared mutex.
#include "src/common/mutex.hpp"

class Tracker {
 public:
  void tick();

 private:
  harp::Mutex mutex_;
  int count_ = 0;             // expect: r8
  double rate_ = 0.0;         // expect: r8
  int stale_ HARP_GUARDED_BY(gone_);  // expect: r8
};
