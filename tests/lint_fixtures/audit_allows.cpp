// Fixture for --audit-suppressions: an allow() that silences a real finding
// is fine; one whose rule produces no finding on that line is stale and
// must itself be reported (rule id "allow").
#include <cstdlib>

int suppressed_random() {
  return rand();  // harp-lint: allow(r2 fixture exercises a used allow)
}

int nothing_to_suppress() {
  return 3;  // harp-lint: allow(r2 stale by design) expect: allow
}
