// Good fixture for r7 (flow-sensitive lockset): every access to the
// guarded field is dominated by an acquisition of its guard, through RAII
// scopes, manual lock()/unlock() pairs, HARP_REQUIRES contracts, loops and
// early returns. The analysis must stay silent on all of it.
#include "src/common/mutex.hpp"

class Worker {
 public:
  int locked_read() const {
    harp::MutexLock lock(mutex_);
    return shared_;
  }

  void locked_in_both_branches(bool fast) {
    harp::MutexLock lock(mutex_);
    if (fast) {
      shared_ = 1;
    } else {
      shared_ = 2;
    }
  }

  void branch_local_locks(bool fast) {
    if (fast) {
      harp::MutexLock lock(mutex_);
      shared_ = 1;
    } else {
      harp::MutexLock lock(mutex_);
      shared_ = 2;
    }
  }

  int early_return_under_lock(bool done) {
    harp::MutexLock lock(mutex_);
    if (done) return shared_;
    shared_ += 1;
    return shared_;
  }

  void manual_pair() {
    mutex_.lock();
    shared_ = 3;
    mutex_.unlock();
  }

  void loop_body_locked() {
    for (int i = 0; i < 4; ++i) {
      harp::MutexLock lock(mutex_);
      shared_ += i;
    }
  }

  void helper() HARP_REQUIRES(mutex_) { shared_ += 1; }

  void calls_helper_locked() {
    harp::MutexLock lock(mutex_);
    helper();
  }

  void chains_requires() HARP_REQUIRES(mutex_) {
    helper();  // contract satisfied by this function's own contract
    shared_ = 4;
  }

 private:
  mutable harp::Mutex mutex_;
  int shared_ HARP_GUARDED_BY(mutex_) = 0;
};
