// Good fixture for r8: every field of the harp::Mutex-owning class is
// annotated, exempt (atomic / top-level const), or explicitly suppressed;
// a class with only a std::mutex is out of r8's typed scope (r5 covers it
// heuristically).
#include <atomic>
#include <mutex>

#include "src/common/mutex.hpp"

class Tracker {
 public:
  void tick();

 private:
  harp::Mutex mutex_;
  int count_ HARP_GUARDED_BY(mutex_) = 0;
  std::atomic<int> hits_{0};
  const int capacity_ = 8;
  int* const slots_ = nullptr;
  // harp-lint: allow(r8 written once before threads start; fixture exercises suppression)
  int legacy_ = 0;
};

class RawStdMutexOnly {
 private:
  std::mutex lock_;
  int value_ = 0;  // not r8's scope: no harp::Mutex member
};
