// r11: consistent canonical order — every path nests Gate::gmutex_ before
// Store::stmutex_, whether directly or through a callee, and the relay path
// releases the gate lock before the callee acquires, so the order graph
// stays acyclic and the pass is silent.
#include "src/common/mutex.hpp"

class Store {
 public:
  void put() { harp::MutexLock lock(stmutex_); }

 private:
  friend class Gate;
  harp::Mutex stmutex_;
};

class Gate {
 public:
  void admit(Store& store) {
    harp::MutexLock lock(gmutex_);
    harp::MutexLock inner(store.stmutex_);
  }
  void route(Store& store) {
    harp::MutexLock lock(gmutex_);
    store.put();  // callee locks Store::stmutex_: same direction, no cycle
  }
  void relay(Store& store) {
    {
      harp::MutexLock lock(gmutex_);
    }
    store.put();  // gate lock released before the callee locks: no edge
  }

 private:
  harp::Mutex gmutex_;
};
