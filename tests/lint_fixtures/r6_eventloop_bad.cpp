// Bad fixture for r6 shaped like the mistakes the event-loop and shard-cycle
// hot paths must avoid: readiness buffers and pollfd snapshots rebuilt from
// scratch every cycle, and tracer scope names formatted per shard per cycle.
// harp-lint: hot-path
#include <cstddef>
#include <string>
#include <vector>

struct Ready {
  int fd = 0;
  unsigned events = 0;
};

int wait_into(std::vector<Ready>& out);

void dispatch_cycle(const std::vector<int>& interest) {
  while (true) {
    std::vector<Ready> ready;  // expect: r6
    if (wait_into(ready) <= 0) break;
    for (std::size_t i = 0; i < interest.size(); ++i) {
      std::vector<int> snapshot(interest);  // expect: r6
      (void)snapshot;
    }
  }
}

void shard_cycle(int num_shards, int cycles) {
  for (int c = 0; c < cycles; ++c) {
    for (int i = 0; i < num_shards; ++i) {
      std::string scope = "shard" + std::to_string(i);  // expect: r6
      (void)scope;
    }
  }
}
