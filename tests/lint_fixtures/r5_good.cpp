// Good fixture for r5 (lock-annotations): every data member of the
// mutex-holding class is annotated; classes without a mutex are exempt.
#include "src/common/mutex.hpp"
#include "src/common/thread_annotations.hpp"

class BoundedQueue {
 public:
  void push(int v);
  int pop();

 private:
  harp::Mutex mutex_;
  int depth_ HARP_GUARDED_BY(mutex_) = 0;
  bool closed_ HARP_GUARDED_BY(mutex_) = false;
};

struct PlainAggregate {
  int value = 0;
  bool flag = false;
};
