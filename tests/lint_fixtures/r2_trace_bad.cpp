// Bad fixture for r2 (determinism), trace-loading flavour: a request-trace
// loader that invents data from wall clocks and unseeded randomness. Every
// line a QoS trace loader must never contain — replaying the same file twice
// would yield two different workloads.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>
#include <vector>

struct Request {
  double arrival_s;
};

std::vector<Request> load_with_jitter(const std::vector<double>& arrivals) {
  std::vector<Request> requests;
  std::random_device rd;  // expect: r2
  for (double t : arrivals) {
    double jitter = static_cast<double>(rd()) * 1e-12;
    requests.push_back({t + jitter});
  }
  return requests;
}

double stamp_load_time() {
  return static_cast<double>(time(nullptr));  // expect: r2
}

Request synthesize_missing_row() {
  auto now = std::chrono::system_clock::now();  // expect: r2
  double t = std::chrono::duration<double>(now.time_since_epoch()).count();
  return {t + static_cast<double>(rand()) * 1e-12};  // expect: r2
}
