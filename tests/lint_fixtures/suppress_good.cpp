// Fixture for the suppression path: a well-formed
// harp-lint: allow(<rule-id> <reason>) on the finding's line or the line
// above silences it; allow(all ...) is the blanket form.
#include <cstdlib>

int legacy_random_above() {
  // harp-lint: allow(r2 fixture exercises the line-above suppression form)
  return rand();
}

int legacy_random_inline() {
  return rand();  // harp-lint: allow(r2 fixture exercises the same-line form)
}

int legacy_random_blanket() {
  return rand();  // harp-lint: allow(all fixture exercises the blanket form)
}
