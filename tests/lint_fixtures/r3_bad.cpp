// Bad fixture for r3 (layering). The fixture test scans this file under the
// faked path src/common/r3_bad.cpp: 'common' is the bottom layer, so both
// the upward include and the unknown-module include must be flagged.
#include "src/platform/hardware.hpp"  // expect: r3
#include "src/widgets/button.hpp"     // expect: r3

int bottom_layer_function() { return 0; }
