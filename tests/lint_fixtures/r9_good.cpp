// r9-clean flows: sources that never reach a sink, sinks fed only
// deterministic data, a commutative fold over an unordered container, and a
// reasoned suppression for sanctioned nondeterminism.
#include <cstdlib>
#include <string>
#include <unordered_map>

namespace fixture {

// A source with no path to any sink: retry jitter stays internal.
int backoff_jitter() { return std::rand() % 5; }

// Tainted caller, but nothing downstream ever emits — silent.
void pace_retries() { sleep_for(backoff_jitter()); }

// A sink fed purely deterministic data, end to end.
void write_summary(const Summary& summary) { json::dump(summary); }

std::string render_summary(const Summary& summary) {
  write_summary(summary);
  return summary.name;
}

// Unordered iteration with a commutative integer fold: order-insensitive,
// so it is neither an r10 finding nor an r9 taint source.
int total_load(const std::unordered_map<int, int>& load_by_core) {
  int total = 0;
  for (const auto& entry : load_by_core) total += entry.second;
  return total;
}

// Sanctioned nondeterminism crossing into a sink: the reasoned allow() on
// the reporting line keeps it quiet (and satisfies --audit-suppressions).
void emit_run_tag(Tracer& tracer) {
  const char* tag = std::getenv("HARP_RUN_TAG");
  // harp-lint: allow(r9 run tag is operator-provided provenance, not data)
  tracer.instant(EventType::kLease, tag);
}

}  // namespace fixture
