// r11: two-function lock-order cycle. Left::forward nests Left::lmutex_
// before Right::rmutex_ while Right::backward nests the reverse; one thread
// running each function can deadlock. The finding lands on the closing
// edge's witness — the acquisition of the cycle's first mutex
// (Left::lmutex_) while the previous hop's mutex is held.
#include "src/common/mutex.hpp"

class Right;

class Left {
 public:
  void forward(Right& other);

 private:
  friend class Right;
  harp::Mutex lmutex_;
};

class Right {
 public:
  void backward(Left& other);

 private:
  friend class Left;
  harp::Mutex rmutex_;
};

void Left::forward(Right& other) {
  harp::MutexLock mine(lmutex_);
  harp::MutexLock theirs(other.rmutex_);
}

void Right::backward(Left& other) {
  harp::MutexLock mine(rmutex_);
  harp::MutexLock theirs(other.lmutex_);  // expect: r11
}
