// Good fixture for r1 (unchecked-result): every sanctioned way of touching
// a Result/Status — dominating ok() checks, negation checks, explicit
// (void) discard, and propagation via return.
#include "src/common/result.hpp"

harp::Status send_frame(int fd);
harp::Result<int> parse_num(const char* text);

int checked_value() {
  harp::Result<int> r = parse_num("4");
  if (!r.ok()) return -1;
  return r.value();
}

int checked_error_path() {
  harp::Status s = send_frame(2);
  if (s.ok()) return 0;
  return s.error().code;
}

int checked_take() {
  harp::Result<int> r = parse_num("7");
  if (!r.ok()) return -1;
  return std::move(r).take();
}

void explicit_discard() {
  // Deliberate: the (void) cast is the sanctioned discard escape hatch.
  (void)send_frame(3);
}

harp::Status propagated() { return send_frame(1); }

int unrelated_value_member() {
  struct Stat {
    int value_ = 9;
    int value() const { return value_; }
  };
  Stat st;
  return st.value();  // not a Result: declaration narrows it to kOtherDecl
}
