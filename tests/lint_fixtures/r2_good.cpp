// Good fixture for r2 (determinism): sanctioned clocks and seeded
// randomness. steady_clock intervals, harp::Rng draws, member functions
// that merely share a flagged name, and time() with an out-parameter.
#include <chrono>
#include <ctime>

#include "src/common/rng.hpp"

double interval_seconds() {
  auto t0 = std::chrono::steady_clock::now();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

double seeded_draw(harp::Rng& rng) { return rng.uniform(); }

struct Dice {
  int rand() const { return 4; }
};

int member_named_rand(const Dice& dice) { return dice.rand(); }

std::time_t explicit_out_param(std::time_t* out) { return time(out); }
