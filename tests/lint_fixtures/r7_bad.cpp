// Bad fixture for r7 (flow-sensitive lockset): accesses to HARP_GUARDED_BY
// fields on paths where the guard is not held, including the
// path-sensitive case where the lock is taken in only one branch of an if
// and the access happens after the join.
#include "src/common/mutex.hpp"

class Worker {
 public:
  int unlocked_read() { return shared_; }  // expect: r7

  void unlocked_write() {
    shared_ = 1;  // expect: r7
  }

  void lock_in_one_branch(bool fast) {
    if (fast) {
      harp::MutexLock lock(mutex_);
      shared_ = 1;  // held here: fine
    }
    shared_ = 2;  // expect: r7
  }

  void lock_in_then_not_else(bool fast) {
    if (fast) {
      harp::MutexLock lock(mutex_);
      shared_ = 1;
    } else {
      shared_ = 2;  // expect: r7
    }
  }

  void released_too_early() {
    mutex_.lock();
    shared_ = 1;
    mutex_.unlock();
    shared_ = 2;  // expect: r7
  }

  void helper() HARP_REQUIRES(mutex_) { shared_ += 1; }

  void calls_helper_unlocked() {
    helper();  // expect: r7
  }

 private:
  harp::Mutex mutex_;
  int shared_ HARP_GUARDED_BY(mutex_) = 0;
};
