// r10 fixtures: range-for over unordered containers whose bodies are
// order-sensitive. The finding sits on the `for` line; the message names the
// effect line inside the body.
#include <sstream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

// Appending into a vector with no later sort: output order is scrambled.
void collect_labels(const std::unordered_map<int, std::string>& label_by_id,
                    std::vector<std::string>& out) {
  for (const auto& entry : label_by_id) {  // expect: r10
    out.push_back(entry.second);
  }
}

// Direct sink emission from inside the loop body (most severe shape).
void trace_members(Tracer& tracer, const std::unordered_set<int>& members) {
  for (int id : members) {  // expect: r10
    tracer.instant(EventType::kLease, id);
  }
}

// String concatenation is non-commutative.
std::string describe_stats(const std::unordered_map<std::string, double>& stats) {
  std::string joined;
  for (const auto& entry : stats) {  // expect: r10
    joined += entry.first;
  }
  return joined;
}

// Floating-point accumulation: FP addition is not associative, so the hash
// order leaks into the low bits of the total.
double total_power(const std::unordered_map<int, double>& watts_by_core) {
  double watt_sum = 0.0;
  for (const auto& entry : watts_by_core) {  // expect: r10
    watt_sum += entry.second;
  }
  return watt_sum;
}

// Stream insertion from the loop body.
void render_rows(const std::unordered_set<std::string>& rows, std::ostringstream& row_os) {
  for (const std::string& row : rows) {  // expect: r10
    row_os << row << '\n';
  }
}

// Iterating an inline temporary is reported as '<temporary>'.
void seed_defaults(std::vector<int>& out) {
  for (int v : std::unordered_set<int>{1, 2, 3}) {  // expect: r10
    out.push_back(v);
  }
}

}  // namespace fixture
