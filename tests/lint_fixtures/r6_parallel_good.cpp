// Good fixture for r6 shaped like the deterministic worker pool and the
// incremental λ iteration (src/common/parallel_for.cpp, src/harp/allocator.cpp
// are hot-path annotated): kernels are raw function pointers over caller-owned
// workspace buffers, per-lane relaxed/pick scratch is hoisted into the
// workspace and sized once, and no λ iteration or dispatched block constructs
// a vector or string.
// harp-lint: hot-path
#include <cstddef>
#include <vector>

struct ScanWorkspace {
  std::vector<double> relaxed;        // lanes x max_candidates, sized in bind()
  std::vector<std::size_t> picks;     // per-group argmin, sized in bind()
  std::vector<double> lambda;         // per-type multipliers, sized in bind()
};

void scan_block(const double* rows, std::size_t begin, std::size_t end, double* relaxed);

void scan_kernel(void* ctx, std::size_t begin, std::size_t end, int lane) {
  ScanWorkspace& ws = *static_cast<ScanWorkspace*>(ctx);
  double* relaxed = ws.relaxed.data() + static_cast<std::size_t>(lane) * 64;
  for (std::size_t b = begin; b < end; b += 64) {
    scan_block(nullptr, b, b + 64, relaxed);
  }
}

void lambda_iterations(ScanWorkspace& ws, const double* rows, std::size_t num_groups,
                       int iterations) {
  for (int it = 0; it < iterations; ++it) {
    for (std::size_t g = 0; g < num_groups; ++g) {
      scan_block(rows, g, g + 1, ws.relaxed.data());
      ws.picks[g] = g;
    }
  }
}
