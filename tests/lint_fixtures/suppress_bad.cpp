// Fixture for malformed suppressions: a missing reason or an unknown verb
// is itself a finding (rule "allow"), and the original finding is NOT
// silenced.
#include <cstdlib>

int missing_reason() {
  return rand();  // harp-lint: allow(r2) -- expect: allow r2
}

int wrong_verb() {
  return rand();  // harp-lint: ignore(r2 no such verb) -- expect: allow r2
}
