// r12: the same operations are fine outside the critical section, after a
// scoped release, when the cv wait holds only its own mutex, or when a
// reviewed site carries a reasoned suppression.
#include <condition_variable>
#include <mutex>

#include "src/common/mutex.hpp"

struct Sink {
  bool send(int frame);
};

class QuietPump {
 public:
  void flush() {
    int frame = 0;
    {
      harp::MutexLock lock(mutex_);
      frame = staged_;
    }
    sink_.send(frame);  // lock released before the transport call
  }
  void backoff() {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    harp::MutexLock lock(mutex_);
    staged_ = 0;
  }
  void wait_ready() {
    std::unique_lock<std::mutex> lk(aux_);
    cv_.wait(lk);  // the wait releases the only lock it holds
  }
  void flush_now() {
    harp::MutexLock lock(mutex_);
    // harp-lint: allow(r12 loopback sink send is nonblocking by construction)
    sink_.send(staged_);
  }

 private:
  harp::Mutex mutex_;
  std::mutex aux_;
  std::condition_variable cv_;
  Sink sink_;
  int staged_ = 0;
};
