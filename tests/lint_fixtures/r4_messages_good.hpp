// Good fixture enum for r4 (dispatch): every enumerator has a payload
// struct (bare name or Msg-suffixed), and the companion dispatch fixture
// mentions them all.
#pragma once

enum class MessageType {
  kPing,
  kShutdown,
};

struct PingMsg {
  int sequence = 0;
};

struct Shutdown {
  int reason = 0;
};
