// r10-clean shapes: the sanctioned collect-then-sort pattern, commutative
// folds, keyed inserts (order-independent destinations), ordered std::map
// iteration, and a reasoned suppression.
#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

// Collect-then-sort: appends inside the loop are fine because the collected
// vector is sorted before anyone can observe its order.
std::vector<std::string> sorted_labels(const std::unordered_map<int, std::string>& labels) {
  std::vector<std::string> collected;
  for (const auto& entry : labels) {
    collected.push_back(entry.second);
  }
  std::sort(collected.begin(), collected.end());
  return collected;
}

// Commutative integer fold: order-insensitive.
int member_count(const std::unordered_set<int>& members) {
  int count = 0;
  for (int id : members) {
    count += id > 0 ? 1 : 0;
  }
  return count;
}

// Keyed insert into an ordered destination: the map re-orders regardless of
// visit order.
std::map<int, double> ordered_snapshot(const std::unordered_map<int, double>& watts) {
  std::map<int, double> snapshot;
  for (const auto& entry : watts) {
    snapshot.insert({entry.first, entry.second});
  }
  return snapshot;
}

// std::map iteration is deterministic; string concatenation is fine here.
std::string render_ordered(const std::map<int, std::string>& ordered_labels) {
  std::string rendering;
  for (const auto& entry : ordered_labels) {
    rendering += entry.second;
  }
  return rendering;
}

// Sanctioned order-dependent dump, suppressed with a reason on the line
// above the loop.
void debug_dump(std::ostringstream& debug_os, const std::unordered_set<int>& ids) {
  // harp-lint: allow(r10 debug-only dump; ordering is irrelevant to golden tests)
  for (int id : ids) {
    debug_os << id;
  }
}

}  // namespace fixture
