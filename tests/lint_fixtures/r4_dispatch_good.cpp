// Good fixture dispatch for r4: handles every payload struct declared by
// r4_messages_good.hpp.
#include "r4_messages_good.hpp"

void dispatch(MessageType type) {
  switch (type) {
    case MessageType::kPing: {
      PingMsg ping;
      (void)ping;
      break;
    }
    case MessageType::kShutdown: {
      Shutdown shutdown;
      (void)shutdown;
      break;
    }
  }
}
