// Bad fixture dispatch for r4: never mentions Shutdown.  expect: r4
#include "r4_messages_bad.hpp"

void dispatch(MessageType type) {
  if (type == MessageType::kPing) {
    PingMsg ping;
    (void)ping;
  }
}
