// Good fixture for r2 (determinism), trace-loading flavour: the sanctioned
// way to load and synthesize request traces — exact text parsing via
// from_chars and explicitly seeded harp::Rng draws, so the same file and
// seed always reproduce the same workload.
#include <charconv>
#include <string_view>
#include <vector>

#include "src/common/rng.hpp"

struct Request {
  double arrival_s;
};

bool parse_arrival(std::string_view field, double* out) {
  const char* begin = field.data();
  const char* end = begin + field.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc{} && ptr == end;
}

std::vector<Request> load_exact(const std::vector<std::string_view>& lines) {
  std::vector<Request> requests;
  for (std::string_view line : lines) {
    double t = 0.0;
    if (parse_arrival(line, &t)) requests.push_back({t});
  }
  return requests;
}

std::vector<Request> synthesize_seeded(harp::Rng& rng, int count, double rate_rps) {
  std::vector<Request> requests;
  double t = 0.0;
  for (int i = 0; i < count; ++i) {
    t += rng.uniform(0.5, 1.5) / rate_rps;
    requests.push_back({t});
  }
  return requests;
}
