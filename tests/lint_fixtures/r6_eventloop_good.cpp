// Good fixture for r6 shaped like the event-loop dispatch and shard-cycle
// hot paths (src/ipc/event_loop.cpp, src/harp/rm_shard.cpp): the readiness
// buffer is a caller-owned out-parameter, pollfd snapshots are rebuilt only
// into hoisted members, and tracer scope names are precomputed — no loop
// constructs a vector or string.
// harp-lint: hot-path
#include <cstddef>
#include <string>
#include <vector>

struct Ready {
  int fd = 0;
  unsigned events = 0;
};

struct Loop {
  std::vector<Ready> scratch;          // hoisted readiness buffer
  std::vector<int> snapshot;           // hoisted pollfd-style snapshot
  std::vector<std::string> scopes;     // precomputed tracer scope names

  int wait(const std::vector<int>& interest, std::vector<Ready>& out) {
    out.clear();
    if (snapshot.size() != interest.size()) {
      snapshot.clear();
      for (int fd : interest) {
        snapshot.push_back(fd);
      }
    }
    for (std::size_t i = 0; i < snapshot.size(); ++i) {
      out.push_back(Ready{snapshot[i], 1u});
    }
    return static_cast<int>(out.size());
  }

  void dispatch_cycle(const std::vector<int>& interest) {
    while (wait(interest, scratch) > 0) {
      for (const Ready& event : scratch) {
        const std::string& scope = scopes[static_cast<std::size_t>(event.fd)];
        (void)scope;
      }
      break;
    }
  }
};
