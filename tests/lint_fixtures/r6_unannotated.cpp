// Silent fixture for r6: the same per-iteration constructions as r6_bad.cpp
// but WITHOUT the hot-path annotation — the rule is strictly opt-in, so this
// file produces no findings.
#include <string>
#include <vector>

int sum_lengths(const std::vector<std::string>& names) {
  int total = 0;
  for (std::size_t i = 0; i < names.size(); ++i) {
    std::vector<int> lengths;
    lengths.push_back(static_cast<int>(names[i].size()));
    total += lengths.back();
  }
  return total;
}

void per_iteration_copies(const std::vector<std::string>& names) {
  for (std::string name : names) {
    (void)name;
  }
}
