// Integration tests for the HARP RM policy on the simulator: registration,
// learning, allocation quality, offline tables, no-scaling/overhead modes,
// co-allocation, and table persistence across application restarts.
#include <gtest/gtest.h>

#include "src/harp/dse.hpp"
#include "src/harp/policy.hpp"
#include "src/model/catalog.hpp"
#include "src/platform/hardware.hpp"
#include "src/sched/baselines.hpp"
#include "src/sim/runner.hpp"

namespace harp::core {
namespace {

platform::HardwareDescription hw() { return platform::raptor_lake(); }
model::WorkloadCatalog catalog() { return model::WorkloadCatalog::raptor_lake(); }

sim::RunResult run(const model::Scenario& scenario, sim::Policy& policy,
                   sim::RunOptions options = {}) {
  sim::ScenarioRunner runner(hw(), catalog(), scenario, options);
  return runner.run(policy);
}

model::Scenario single(const std::string& name) { return model::Scenario{name, {{name, 0.0}}}; }

TEST(HarpPolicy, NamesFollowConfiguration) {
  EXPECT_EQ(HarpPolicy{HarpOptions{}}.name(), "harp");
  HarpOptions offline;
  offline.mode = HarpOptions::Mode::kOffline;
  EXPECT_EQ(HarpPolicy{offline}.name(), "harp-offline");
  HarpOptions noscale;
  noscale.apply_scaling = false;
  EXPECT_EQ(HarpPolicy{noscale}.name(), "harp-noscaling");
  HarpOptions overhead;
  overhead.apply_affinity = false;
  EXPECT_EQ(HarpPolicy{overhead}.name(), "harp-overhead");
}

TEST(HarpPolicy, LearnsStablePointsWithinPaperTimescale) {
  HarpPolicy policy{HarpOptions{}};
  sim::RunOptions options;
  options.repeat_horizon = 60.0;
  double stable_at = -1.0;
  options.tick_hook = [&](double now) {
    if (stable_at < 0.0 && policy.all_stable()) stable_at = now;
  };
  (void)run(single("mg.C"), policy, options);
  ASSERT_GT(stable_at, 0.0) << "never reached the stable stage";
  // Paper: 29.8 ± 5.9 s single-app; allow generous slack.
  EXPECT_LT(stable_at, 50.0);
  EXPECT_GT(stable_at, 10.0);
  EXPECT_GE(policy.tables().at("mg.C").points(20).size(), 25u);
}

TEST(HarpPolicy, OfflineTablesBeatCfsOnEnergy) {
  std::map<std::string, OperatingPointTable> offline;
  offline["mg.C"] = run_offline_dse(catalog().app("mg.C"), hw());
  HarpOptions options;
  options.mode = HarpOptions::Mode::kOffline;
  options.offline_tables = offline;
  HarpPolicy policy(options);
  sim::RunResult managed = run(single("mg.C"), policy);

  sched::CfsPolicy cfs;
  sim::RunResult baseline = run(single("mg.C"), cfs);
  EXPECT_LT(managed.package_energy_j, 0.8 * baseline.package_energy_j);
  EXPECT_LT(managed.makespan, 1.3 * baseline.makespan);
}

TEST(HarpPolicy, ScalesBinpackDown) {
  // The paper's outlier (§6.3.1): scaling away the queue contention wins
  // integer factors.
  std::map<std::string, OperatingPointTable> offline;
  offline["binpack"] = run_offline_dse(catalog().app("binpack"), hw());
  HarpOptions options;
  options.mode = HarpOptions::Mode::kOffline;
  options.offline_tables = offline;
  HarpPolicy policy(options);
  sim::RunResult managed = run(single("binpack"), policy);
  sched::CfsPolicy cfs;
  sim::RunResult baseline = run(single("binpack"), cfs);
  EXPECT_GT(baseline.makespan / managed.makespan, 3.0);
}

TEST(HarpPolicy, MultiAppBeatsCfsAfterWarmup) {
  model::Scenario scenario{"mix", {{"cg.C", 0.0}, {"ua.C", 0.0}}};
  // Warm-up: learn the tables with repeated executions.
  std::map<std::string, OperatingPointTable> learned;
  {
    HarpPolicy warmup{HarpOptions{}};
    sim::RunOptions options;
    options.repeat_horizon = 80.0;
    (void)run(scenario, warmup, options);
    learned = warmup.tables();
  }
  HarpOptions options;
  options.offline_tables = learned;
  HarpPolicy policy(options);
  sim::RunResult managed = run(scenario, policy);
  sched::CfsPolicy cfs;
  sim::RunResult baseline = run(scenario, cfs);
  EXPECT_LT(managed.makespan, baseline.makespan);
  EXPECT_LT(managed.package_energy_j, baseline.package_energy_j);
}

TEST(HarpPolicy, AllocationsAreDisjointAcrossApps) {
  std::map<std::string, OperatingPointTable> offline;
  for (const char* name : {"ep.C", "mg.C"})
    offline[name] = run_offline_dse(catalog().app(name), hw());
  HarpOptions options;
  options.mode = HarpOptions::Mode::kOffline;
  options.offline_tables = offline;
  HarpPolicy policy(options);
  model::Scenario scenario{"pair", {{"ep.C", 0.0}, {"mg.C", 0.0}}};
  sim::RunOptions run_options;
  run_options.tick_hook = [&](double now) {
    if (now < 2.0) return;
    auto configs = policy.active_configs();
    if (configs.size() == 2) {
      int p_total = 0, e_total = 0;
      for (auto& [name, erv] : configs) {
        p_total += erv.cores_used(0);
        e_total += erv.cores_used(1);
      }
      EXPECT_LE(p_total, 8);
      EXPECT_LE(e_total, 16);
    }
  };
  (void)run(scenario, policy, run_options);
}

TEST(HarpPolicy, NoScalingKeepsDefaultThreadCounts) {
  std::map<std::string, OperatingPointTable> offline;
  offline["mg.C"] = run_offline_dse(catalog().app("mg.C"), hw());
  HarpOptions options;
  options.mode = HarpOptions::Mode::kOffline;
  options.offline_tables = offline;
  options.apply_scaling = false;
  HarpPolicy policy(options);
  sim::RunResult noscale = run(single("mg.C"), policy);

  HarpOptions scaled = options;
  scaled.apply_scaling = true;
  HarpPolicy policy2(scaled);
  sim::RunResult with_scaling = run(single("mg.C"), policy2);
  // Without adaptation the partition is oversubscribed: strictly worse.
  EXPECT_GT(noscale.makespan, with_scaling.makespan);
}

TEST(HarpPolicy, OverheadModeStaysWithinPaperBounds) {
  HarpOptions options;
  options.apply_affinity = false;
  options.apply_scaling = false;
  HarpPolicy policy(options);
  sim::RunResult managed = run(single("sp.C"), policy);
  sched::CfsPolicy cfs;
  sim::RunResult baseline = run(single("sp.C"), cfs);
  double overhead = managed.makespan / baseline.makespan - 1.0;
  EXPECT_GE(overhead, 0.0);
  EXPECT_LT(overhead, 0.03);  // §6.6: ~1 % single-app
}

TEST(HarpPolicy, TablesPersistAcrossRestarts) {
  HarpPolicy policy{HarpOptions{}};
  sim::RunOptions options;
  options.repeat_horizon = 25.0;
  (void)run(single("ep.C"), policy, options);
  // ep.C (~2.5 s) restarted repeatedly; the table kept accumulating across
  // process lifetimes instead of restarting from scratch.
  EXPECT_GE(policy.tables().at("ep.C").points(20).size(), 5u);
}

TEST(HarpPolicy, StageQueryForUnknownAppIsInitial) {
  HarpPolicy policy{HarpOptions{}};
  EXPECT_EQ(policy.stage_of("unknown"), MaturityStage::kInitial);
  EXPECT_EQ(policy.attributed_energy_j("unknown"), 0.0);
}

TEST(HarpPolicy, AttributedEnergyAccumulates) {
  HarpPolicy policy{HarpOptions{}};
  (void)run(single("mg.C"), policy);
  EXPECT_GT(policy.attributed_energy_j("mg.C"), 100.0);
}

TEST(HarpPolicy, StaticAppsGetAffinityOnly) {
  auto odroid = platform::odroid_xu3e();
  auto cat = model::WorkloadCatalog::odroid();
  std::map<std::string, OperatingPointTable> offline;
  offline["lms-static"] = run_offline_dse(cat.app("lms-static"), odroid);
  HarpOptions options;
  options.mode = HarpOptions::Mode::kOffline;
  options.offline_tables = offline;
  HarpPolicy policy(options);
  sim::ScenarioRunner runner(odroid, cat, model::Scenario{"lms-static", {{"lms-static", 0.0}}},
                             sim::RunOptions{});
  sim::RunResult result = runner.run(policy);
  EXPECT_EQ(result.apps[0].completions, 1);
  // The static pipeline has 6 processes; HARP must not grant more threads.
  auto configs = policy.active_configs();
  if (auto it = configs.find("lms-static"); it != configs.end()) {
    EXPECT_LE(it->second.total_threads(), 6);
  }
}

}  // namespace
}  // namespace harp::core
