// Unit tests for the linear-algebra substrate.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/check.hpp"
#include "src/common/rng.hpp"
#include "src/linalg/least_squares.hpp"
#include "src/linalg/matrix.hpp"

namespace harp::linalg {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 0) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 0), 7.0);
  EXPECT_THROW(m(2, 0), CheckFailure);
}

TEST(Matrix, FromRowsRejectsRagged) {
  EXPECT_THROW(Matrix::from_rows({{1.0, 2.0}, {3.0}}), CheckFailure);
}

TEST(Matrix, Transpose) {
  Matrix m = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, MatMul) {
  Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  Matrix b = Matrix::from_rows({{5, 6}, {7, 8}});
  Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
  EXPECT_THROW(a * Matrix(3, 3), CheckFailure);
}

TEST(Matrix, MatVec) {
  Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  Vector v = a * Vector{1.0, 1.0};
  EXPECT_DOUBLE_EQ(v[0], 3.0);
  EXPECT_DOUBLE_EQ(v[1], 7.0);
}

TEST(Matrix, IdentityAndNorm) {
  Matrix i = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(i.norm(), std::sqrt(3.0));
  Matrix m = Matrix::from_rows({{3, 4}});
  EXPECT_DOUBLE_EQ(m.norm(), 5.0);
}

TEST(VectorOps, DotAddSubScaleNorm) {
  Vector a{1, 2, 3}, b{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ((a + b)[2], 9.0);
  EXPECT_DOUBLE_EQ((b - a)[0], 3.0);
  EXPECT_DOUBLE_EQ(scale(a, 2.0)[1], 4.0);
  EXPECT_DOUBLE_EQ(norm(Vector{3, 4}), 5.0);
}

TEST(Cholesky, FactorsSpdMatrix) {
  Matrix s = Matrix::from_rows({{4, 2}, {2, 3}});
  Matrix l = s;
  ASSERT_TRUE(cholesky(l));
  // Check L * Lᵀ == S.
  Matrix recon = l * l.transposed();
  EXPECT_NEAR(recon(0, 0), 4.0, 1e-12);
  EXPECT_NEAR(recon(0, 1), 2.0, 1e-12);
  EXPECT_NEAR(recon(1, 1), 3.0, 1e-12);
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix s = Matrix::from_rows({{1, 2}, {2, 1}});  // eigenvalues 3, -1
  Matrix l = s;
  EXPECT_FALSE(cholesky(l));
}

TEST(SolveSpd, RecoversKnownSolution) {
  Matrix s = Matrix::from_rows({{4, 1}, {1, 3}});
  Vector x = solve_spd(s, Vector{1.0, 2.0});
  EXPECT_NEAR(4 * x[0] + 1 * x[1], 1.0, 1e-12);
  EXPECT_NEAR(1 * x[0] + 3 * x[1], 2.0, 1e-12);
}

TEST(LeastSquares, ExactFitWhenDetermined) {
  // y = 2x + 1 through design matrix [x 1].
  Matrix a = Matrix::from_rows({{0, 1}, {1, 1}, {2, 1}});
  Vector coef = solve_least_squares(a, Vector{1.0, 3.0, 5.0});
  EXPECT_NEAR(coef[0], 2.0, 1e-6);
  EXPECT_NEAR(coef[1], 1.0, 1e-6);
}

TEST(LeastSquares, MinimisesResidualOnNoisyData) {
  Rng rng(1);
  std::vector<Vector> rows;
  Vector y;
  for (int i = 0; i < 200; ++i) {
    double x = rng.uniform(-2.0, 2.0);
    rows.push_back({x, 1.0});
    y.push_back(3.0 * x - 0.5 + rng.gaussian(0.0, 0.01));
  }
  Vector coef = solve_least_squares(Matrix::from_rows(rows), y);
  EXPECT_NEAR(coef[0], 3.0, 0.01);
  EXPECT_NEAR(coef[1], -0.5, 0.01);
}

TEST(LeastSquares, RidgeHandlesRankDeficiency) {
  // Two identical columns: plain normal equations would be singular.
  Matrix a = Matrix::from_rows({{1, 1}, {2, 2}, {3, 3}});
  Vector coef = solve_least_squares(a, Vector{2.0, 4.0, 6.0}, 1e-6);
  // Prediction must still be accurate even though the split is arbitrary.
  EXPECT_NEAR(coef[0] + coef[1], 2.0, 1e-3);
}

TEST(LeastSquares, ShapeMismatchThrows) {
  Matrix a(3, 2);
  EXPECT_THROW(solve_least_squares(a, Vector{1.0}), CheckFailure);
}

}  // namespace
}  // namespace harp::linalg
