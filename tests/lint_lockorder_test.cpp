// Structural tests for the interprocedural lock-order pass
// (tools/harp_lint/lockorder) behind r11/r12: edge construction with
// member-mutex identity resolution, callee-side witnesses for edges closed
// through may-acquire summaries, scoped release breaking the nesting, and
// the deterministic cycle enumeration (canonical start, byte-identical
// across reruns) the reproducible diagnostics rely on.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "tools/harp_lint/callgraph.hpp"
#include "tools/harp_lint/lexer.hpp"
#include "tools/harp_lint/lint.hpp"
#include "tools/harp_lint/lockorder.hpp"

namespace harp::lint {
namespace {

/// Owns the SourceFiles and LexedFiles the CgUnit views point into.
class LockHarness {
 public:
  void add(const std::string& rel_path, const std::string& text) {
    files_.push_back(std::make_unique<SourceFile>(SourceFile{rel_path, text}));
    lexed_.push_back(std::make_unique<LexedFile>(lex(files_.back()->text)));
    units_.push_back(CgUnit{files_.back().get(), lexed_.back().get()});
  }

  LockOrderGraph graph() const {
    CallGraph cg = build_call_graph(units_);
    return build_lock_order_graph(cg, units_);
  }

  std::vector<Finding> findings(bool r11, bool r12) const {
    CallGraph cg = build_call_graph(units_);
    std::vector<Finding> out;
    check_lock_order(cg, units_, r11, r12, out);
    return out;
  }

 private:
  std::vector<std::unique_ptr<SourceFile>> files_;
  std::vector<std::unique_ptr<LexedFile>> lexed_;
  std::vector<CgUnit> units_;
};

/// "from -> to @ file:line" per edge, in stored order.
std::vector<std::string> edge_keys(const LockOrderGraph& g) {
  std::vector<std::string> out;
  for (const OrderEdge& e : g.edges)
    out.push_back(e.from + " -> " + e.to + " @ " + e.file + ":" + std::to_string(e.line));
  return out;
}

/// "mutex @ file:line" per hop, for comparing enumerated cycles.
std::vector<std::string> hop_keys(const std::vector<CycleHop>& hops) {
  std::vector<std::string> out;
  for (const CycleHop& h : hops)
    out.push_back(h.mutex + " @ " + h.file + ":" + std::to_string(h.line));
  return out;
}

TEST(LockOrder, DirectNestingResolvesMemberIdentities) {
  LockHarness h;
  h.add("a.cpp",
        "class B { public: friend class A; harp::Mutex bm_; };\n"  // 1
        "class A {\n"                                              // 2
        " public:\n"                                               // 3
        "  void both(B& b) {\n"                                    // 4
        "    harp::MutexLock first(am_);\n"                        // 5
        "    harp::MutexLock second(b.bm_);\n"                     // 6
        "  }\n"
        "\n"
        " private:\n"
        "  harp::Mutex am_;\n"
        "};\n");
  EXPECT_EQ(edge_keys(h.graph()), std::vector<std::string>{"A::am_ -> B::bm_ @ a.cpp:6"});
}

TEST(LockOrder, InterproceduralEdgeUsesCalleeWitness) {
  LockHarness h;
  h.add("a.cpp",
        "class S {\n"                                    // 1
        " public:\n"                                     // 2
        "  void fill() { harp::MutexLock l(sm_); }\n"    // 3
        "  harp::Mutex sm_;\n"                           // 4
        "};\n"                                           // 5
        "class C {\n"                                    // 6
        " public:\n"                                     // 7
        "  void drive(S& s) {\n"                         // 8
        "    harp::MutexLock l(cm_);\n"                  // 9
        "    s.fill();\n"                                // 10
        "  }\n"
        "  harp::Mutex cm_;\n"
        "};\n");
  // The edge's witness is the acquisition inside the CALLEE, not the call
  // site: the printed cycle path must point at real lock statements.
  EXPECT_EQ(edge_keys(h.graph()), std::vector<std::string>{"C::cm_ -> S::sm_ @ a.cpp:3"});
}

TEST(LockOrder, ScopedReleaseBreaksTheEdge) {
  LockHarness h;
  h.add("a.cpp",
        "class U {\n"
        " public:\n"
        "  void seq() {\n"
        "    { harp::MutexLock a(ua_); }\n"
        "    harp::MutexLock b(ub_);\n"
        "  }\n"
        "  harp::Mutex ua_;\n"
        "  harp::Mutex ub_;\n"
        "};\n");
  EXPECT_TRUE(h.graph().edges.empty());
}

TEST(LockOrder, TwoMutexCycleStartsAtSmallestIdentity) {
  LockHarness h;
  h.add("a.cpp",
        "class R;\n"                                  // 1
        "class L {\n"                                 // 2
        " public:\n"                                  // 3
        "  void forward(R& r);\n"                     // 4
        "  harp::Mutex lm_;\n"                        // 5
        "};\n"                                        // 6
        "class R {\n"                                 // 7
        " public:\n"                                  // 8
        "  void backward(L& l);\n"                    // 9
        "  harp::Mutex rm_;\n"                        // 10
        "};\n"                                        // 11
        "void L::forward(R& r) {\n"                   // 12
        "  harp::MutexLock a(lm_);\n"                 // 13
        "  harp::MutexLock b(r.rm_);\n"               // 14
        "}\n"                                         // 15
        "void R::backward(L& l) {\n"                  // 16
        "  harp::MutexLock a(rm_);\n"                 // 17
        "  harp::MutexLock b(l.lm_);\n"               // 18
        "}\n");                                       // 19
  auto cycles = enumerate_cycles(h.graph());
  ASSERT_EQ(cycles.size(), 1u);
  // Closed walk from the lexicographically smallest identity; each hop's
  // witness is where that hop's mutex is acquired while the previous one is
  // held (the opening hop uses the closing edge).
  EXPECT_EQ(hop_keys(cycles[0]),
            (std::vector<std::string>{"L::lm_ @ a.cpp:18", "R::rm_ @ a.cpp:14",
                                      "L::lm_ @ a.cpp:18"}));
}

TEST(LockOrder, TransitiveThreeMutexCycle) {
  LockHarness h;
  h.add("a.cpp",
        "class Y;\n"                                  // 1
        "class Z;\n"                                  // 2
        "class X {\n"                                 // 3
        " public:\n"                                  // 4
        "  void f1(Y& y);\n"                          // 5
        "  harp::Mutex xm_;\n"                        // 6
        "};\n"                                        // 7
        "class Y {\n"                                 // 8
        " public:\n"                                  // 9
        "  void f2(Z& z);\n"                          // 10
        "  harp::Mutex ym_;\n"                        // 11
        "};\n"                                        // 12
        "class Z {\n"                                 // 13
        " public:\n"                                  // 14
        "  void f3(X& x);\n"                          // 15
        "  harp::Mutex zm_;\n"                        // 16
        "};\n"                                        // 17
        "void X::f1(Y& y) {\n"                        // 18
        "  harp::MutexLock a(xm_);\n"                 // 19
        "  harp::MutexLock b(y.ym_);\n"               // 20
        "}\n"                                         // 21
        "void Y::f2(Z& z) {\n"                        // 22
        "  harp::MutexLock a(ym_);\n"                 // 23
        "  harp::MutexLock b(z.zm_);\n"               // 24
        "}\n"                                         // 25
        "void Z::f3(X& x) {\n"                        // 26
        "  harp::MutexLock a(zm_);\n"                 // 27
        "  harp::MutexLock b(x.xm_);\n"               // 28
        "}\n");                                       // 29
  auto cycles = enumerate_cycles(h.graph());
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(hop_keys(cycles[0]),
            (std::vector<std::string>{"X::xm_ @ a.cpp:28", "Y::ym_ @ a.cpp:20",
                                      "Z::zm_ @ a.cpp:24", "X::xm_ @ a.cpp:28"}));
}

TEST(LockOrder, SelfDeadlockThroughHelperCall) {
  LockHarness h;
  h.add("a.cpp",
        "class T {\n"                                    // 1
        " public:\n"                                     // 2
        "  void inner() { harp::MutexLock l(tm_); }\n"   // 3
        "  void outer() {\n"                             // 4
        "    harp::MutexLock l(tm_);\n"                  // 5
        "    inner();\n"                                 // 6
        "  }\n"
        "  harp::Mutex tm_;\n"
        "};\n");
  auto cycles = enumerate_cycles(h.graph());
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(hop_keys(cycles[0]),
            (std::vector<std::string>{"T::tm_ @ a.cpp:3", "T::tm_ @ a.cpp:3"}));
  // check_lock_order renders the 2-hop same-mutex cycle as a self-deadlock.
  std::vector<Finding> findings = h.findings(/*r11=*/true, /*r12=*/false);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "r11");
  EXPECT_EQ(findings[0].message.find("self-deadlock:"), 0u);
}

TEST(LockOrder, EnumerationIsDeterministicAcrossReruns) {
  LockHarness h;
  h.add("a.cpp",
        "class Q;\n"
        "class P {\n"
        " public:\n"
        "  void pq(Q& q);\n"
        "  harp::Mutex pm_;\n"
        "};\n"
        "class Q {\n"
        " public:\n"
        "  void qp(P& p);\n"
        "  harp::Mutex qm_;\n"
        "};\n"
        "void P::pq(Q& q) {\n"
        "  harp::MutexLock a(pm_);\n"
        "  harp::MutexLock b(q.qm_);\n"
        "}\n"
        "void Q::qp(P& p) {\n"
        "  harp::MutexLock a(qm_);\n"
        "  harp::MutexLock b(p.pm_);\n"
        "}\n");
  LockOrderGraph first = h.graph();
  LockOrderGraph second = h.graph();
  EXPECT_EQ(edge_keys(first), edge_keys(second));
  auto cycles_a = enumerate_cycles(first);
  auto cycles_b = enumerate_cycles(second);
  ASSERT_EQ(cycles_a.size(), cycles_b.size());
  for (std::size_t i = 0; i < cycles_a.size(); ++i)
    EXPECT_EQ(hop_keys(cycles_a[i]), hop_keys(cycles_b[i]));
}

}  // namespace
}  // namespace harp::lint
