// Tests for the baseline policies: CFS spread, EAS packing, ITD class
// partitioning, and the pinned measurement policy.
#include <gtest/gtest.h>

#include "src/common/check.hpp"
#include "src/model/catalog.hpp"
#include "src/sched/baselines.hpp"
#include "src/sim/runner.hpp"

namespace harp::sched {
namespace {

sim::RunResult run(const platform::HardwareDescription& hw,
                   const model::WorkloadCatalog& catalog, const model::Scenario& scenario,
                   sim::Policy& policy, std::uint64_t seed = 1) {
  sim::RunOptions options;
  options.seed = seed;
  sim::ScenarioRunner runner(hw, catalog, scenario, options);
  return runner.run(policy);
}

TEST(Cfs, UsesWholeMachine) {
  auto hw = platform::raptor_lake();
  auto catalog = model::WorkloadCatalog::raptor_lake();
  CfsPolicy cfs;
  sim::RunResult result = run(hw, catalog, model::Scenario{"ep.C", {{"ep.C", 0.0}}}, cfs);
  // CPU time lands on both core types (the OpenMP default team spans all
  // hardware threads).
  EXPECT_GT(result.apps[0].cpu_seconds_by_type[0], 0.5);
  EXPECT_GT(result.apps[0].cpu_seconds_by_type[1], 0.5);
}

TEST(Eas, PacksLowDemandOntoLittleCluster) {
  auto hw = platform::odroid_xu3e();
  auto catalog = model::WorkloadCatalog::odroid();
  // lms-static runs only 6 threads… still above the 4-slot LITTLE cluster,
  // so use a custom tiny app: pin demand below the cluster size via a
  // 2-thread static app derived from lms.
  model::WorkloadCatalog cat = catalog;
  EasPolicy eas;
  // mandelbrot-static has 8 default threads -> exceeds LITTLE; expect both
  // clusters used.
  sim::RunResult big = run(hw, catalog,
                           model::Scenario{"mandelbrot-static", {{"mandelbrot-static", 0.0}}},
                           eas);
  EXPECT_GT(big.apps[0].cpu_seconds_by_type[0], 0.5);

  // With demand saturating both clusters, EAS behaves like the spread
  // baseline for a representative app (fresh policy instances per run).
  CfsPolicy cfs;
  EasPolicy eas2;
  sim::RunResult eas_run =
      run(hw, catalog, model::Scenario{"mg.A", {{"mg.A", 0.0}}}, eas2, 2);
  sim::RunResult cfs_run =
      run(hw, catalog, model::Scenario{"mg.A", {{"mg.A", 0.0}}}, cfs, 2);
  EXPECT_NEAR(eas_run.makespan, cfs_run.makespan, 0.2 * cfs_run.makespan);
}

TEST(Itd, SingleAppMatchesBaseline) {
  auto hw = platform::raptor_lake();
  auto catalog = model::WorkloadCatalog::raptor_lake();
  ItdPolicy itd;
  CfsPolicy cfs;
  model::Scenario scenario{"lu.C", {{"lu.C", 0.0}}};
  sim::RunResult itd_run = run(hw, catalog, scenario, itd);
  sim::RunResult cfs_run = run(hw, catalog, scenario, cfs);
  // §6.3.1: single-application ITD results are within the margin of error.
  EXPECT_NEAR(itd_run.makespan, cfs_run.makespan, 0.05 * cfs_run.makespan);
}

TEST(Itd, PartitionsClassesInMultiApp) {
  auto hw = platform::raptor_lake();
  auto catalog = model::WorkloadCatalog::raptor_lake();
  ItdPolicy itd;
  // ep has a high P/E IPC ratio, mg a low one: ITD steers ep to P-cores and
  // mg to the E-island.
  model::Scenario scenario{"ep+mg", {{"ep.C", 0.0}, {"mg.C", 0.0}}};
  sim::RunResult result = run(hw, catalog, scenario, itd);
  const sim::AppRunStats& ep = result.app("ep.C");
  const sim::AppRunStats& mg = result.app("mg.C");
  EXPECT_GT(ep.cpu_seconds_by_type[0], ep.cpu_seconds_by_type[1]);
  EXPECT_GT(mg.cpu_seconds_by_type[1], mg.cpu_seconds_by_type[0]);
}

TEST(Itd, MultiAppOversubscribesPreferredIsland) {
  auto hw = platform::raptor_lake();
  auto catalog = model::WorkloadCatalog::raptor_lake();
  model::Scenario scenario{"mix",
                           {{"bt.C", 0.0}, {"mg.C", 0.0}, {"pi", 0.0}}};
  ItdPolicy itd;
  CfsPolicy cfs;
  sim::RunResult itd_run = run(hw, catalog, scenario, itd);
  sim::RunResult cfs_run = run(hw, catalog, scenario, cfs);
  // §6.3.2: ITD regresses in multi-application scenarios.
  EXPECT_GT(itd_run.makespan, cfs_run.makespan);
}

TEST(Pinned, AppliesConfiguredControl) {
  auto hw = platform::raptor_lake();
  auto catalog = model::WorkloadCatalog::raptor_lake();
  sim::SlotMap slots(hw);
  sim::AppControl control;
  control.threads = 2;
  control.allowed_slots = {slots.index(1, 0, 0), slots.index(1, 1, 0)};
  PinnedPolicy pinned({{"pi", control}});
  sim::RunResult result = run(hw, catalog, model::Scenario{"pi", {{"pi", 0.0}}}, pinned);
  EXPECT_LT(result.apps[0].cpu_seconds_by_type[0], 0.5);
  EXPECT_GT(result.apps[0].cpu_seconds_by_type[1], 1.0);
}

TEST(Pinned, MissingControlIsAContractViolation) {
  auto hw = platform::raptor_lake();
  auto catalog = model::WorkloadCatalog::raptor_lake();
  PinnedPolicy pinned({});  // no entry for the app
  sim::RunOptions options;
  sim::ScenarioRunner runner(hw, catalog, model::Scenario{"pi", {{"pi", 0.0}}}, options);
  EXPECT_THROW(runner.run(pinned), CheckFailure);
}

}  // namespace
}  // namespace harp::sched
