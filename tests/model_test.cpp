// Tests for the application behaviour model: each mechanism (Amdahl,
// memory bound, SMT, imbalance, contention, oversubscription, IPS
// inflation, power) is checked in isolation, plus the catalog invariants
// that the paper's anecdotes rely on.
#include <gtest/gtest.h>

#include "src/common/check.hpp"
#include "src/model/behavior.hpp"
#include "src/model/catalog.hpp"
#include "src/platform/hardware.hpp"

namespace harp::model {
namespace {

platform::HardwareDescription hw() { return platform::raptor_lake(); }

AppBehavior plain_app() {
  AppBehavior app;
  app.name = "plain";
  app.ipc = {1.0, 1.0};
  app.serial_fraction = 0.0;
  app.mem_fraction = 0.0;
  app.smt_friendliness = 0.0;
  app.imbalance_sensitivity = 0.0;
  app.sync_ips_inflation = 0.0;
  app.oversub_penalty = 0.0;
  return app;
}

ThreadView on_p(int core, int busy = 1, int sharers = 1) {
  return ThreadView{0, core, sharers, busy};
}
ThreadView on_e(int core, int sharers = 1) { return ThreadView{1, core, sharers, 1}; }

TEST(Rates, SingleThreadMatchesBaseRate) {
  auto machine = hw();
  AppRates r = compute_rates(plain_app(), machine, {on_p(0)}, machine.memory_gips, 0.0);
  EXPECT_NEAR(r.useful_gips, machine.core_types[0].base_gips, 1e-9);
  EXPECT_NEAR(r.measured_gips, r.useful_gips, 1e-9);
}

TEST(Rates, EmptyPlacementIsZero) {
  AppRates r = compute_rates(plain_app(), hw(), {}, 1.0, 0.0);
  EXPECT_EQ(r.useful_gips, 0.0);
  EXPECT_EQ(r.power_w, 0.0);
}

TEST(Rates, ThroughputAddsAcrossThreads) {
  auto machine = hw();
  AppRates one = compute_rates(plain_app(), machine, {on_p(0)}, machine.memory_gips, 0.0);
  AppRates two =
      compute_rates(plain_app(), machine, {on_p(0), on_p(1)}, machine.memory_gips, 0.0);
  EXPECT_NEAR(two.useful_gips, 2.0 * one.useful_gips, 1e-9);
}

TEST(Rates, SmtPairGainsLessThanTwoCores) {
  auto machine = hw();
  AppBehavior app = plain_app();
  app.smt_friendliness = 1.0;
  // Two threads on the SMT pair of one core…
  AppRates pair = compute_rates(app, machine, {on_p(0, 2), on_p(0, 2)}, machine.memory_gips, 0.0);
  // …versus two threads on two distinct cores.
  AppRates spread = compute_rates(app, machine, {on_p(0), on_p(1)}, machine.memory_gips, 0.0);
  double single = machine.core_types[0].base_gips;
  EXPECT_NEAR(pair.useful_gips, single * (1.0 + machine.core_types[0].smt_gain), 1e-9);
  EXPECT_LT(pair.useful_gips, spread.useful_gips);
  EXPECT_GT(pair.useful_gips, single);
}

TEST(Rates, SmtUnfriendlyAppGainsNothing) {
  auto machine = hw();
  AppBehavior app = plain_app();  // smt_friendliness = 0
  AppRates pair = compute_rates(app, machine, {on_p(0, 2), on_p(0, 2)}, machine.memory_gips, 0.0);
  EXPECT_NEAR(pair.useful_gips, machine.core_types[0].base_gips, 1e-9);
}

TEST(Rates, AmdahlCapsSpeedup) {
  auto machine = hw();
  AppBehavior app = plain_app();
  app.serial_fraction = 0.5;
  std::vector<ThreadView> threads;
  for (int c = 0; c < 8; ++c) threads.push_back(on_p(c));
  AppRates r = compute_rates(app, machine, threads, machine.memory_gips, 0.0);
  double single = machine.core_types[0].base_gips;
  // 50 % serial: even with 8 cores, at most 2x the single-thread rate.
  EXPECT_LT(r.useful_gips, 2.0 * single + 1e-9);
  EXPECT_GT(r.useful_gips, 1.5 * single);
}

TEST(Rates, MemoryBoundAppHitsBandwidthCeiling) {
  auto machine = hw();
  AppBehavior app = plain_app();
  app.mem_fraction = 1.0;
  std::vector<ThreadView> threads;
  for (int c = 0; c < 8; ++c) threads.push_back(on_p(c));
  AppRates r = compute_rates(app, machine, threads, machine.memory_gips, 0.0);
  EXPECT_LE(r.useful_gips, machine.memory_gips + 1e-9);
  // Halving the bandwidth share halves the fully memory-bound throughput
  // once the cap binds.
  AppRates half = compute_rates(app, machine, threads, machine.memory_gips / 2.0, 0.0);
  EXPECT_LT(half.useful_gips, r.useful_gips);
}

TEST(Rates, ImbalanceBindsToSlowestThread) {
  auto machine = hw();
  AppBehavior app = plain_app();
  app.imbalance_sensitivity = 1.0;
  // One P thread + one E thread, static partitioning: rate = 2·min.
  AppRates r = compute_rates(app, machine, {on_p(0), on_e(0)}, machine.memory_gips, 0.0);
  double e_rate = machine.core_types[1].base_gips;
  EXPECT_NEAR(r.useful_gips, 2.0 * e_rate, 1e-9);
  // Full rebalancing recovers the sum.
  AppRates balanced = compute_rates(app, machine, {on_p(0), on_e(0)}, machine.memory_gips, 1.0);
  EXPECT_NEAR(balanced.useful_gips,
              machine.core_types[0].base_gips + machine.core_types[1].base_gips, 1e-9);
  // Partial mitigation (OS migration mixing) lies strictly between.
  AppRates mixed = compute_rates(app, machine, {on_p(0), on_e(0)}, machine.memory_gips,
                                 kOsMigrationMixing);
  EXPECT_GT(mixed.useful_gips, r.useful_gips);
  EXPECT_LT(mixed.useful_gips, balanced.useful_gips);
}

TEST(Rates, SpinningInflatesMeasuredIpsAboveUseful) {
  auto machine = hw();
  AppBehavior app = plain_app();
  app.imbalance_sensitivity = 1.0;
  app.sync_ips_inflation = 0.9;
  AppRates r = compute_rates(app, machine, {on_p(0), on_e(0)}, machine.memory_gips, 0.0);
  EXPECT_GT(r.measured_gips, r.useful_gips);
  // Measured never exceeds the raw issue rate.
  EXPECT_LE(r.measured_gips,
            machine.core_types[0].base_gips + machine.core_types[1].base_gips + 1e-9);
}

TEST(Rates, ContentionMakesMoreThreadsSlower) {
  auto machine = hw();
  AppBehavior app = plain_app();
  app.contention = 0.1;
  app.contention_quadratic = 0.06;
  std::vector<ThreadView> few{on_p(0), on_p(1), on_p(2), on_p(3)};
  std::vector<ThreadView> many;
  for (int c = 0; c < 8; ++c) many.push_back(on_p(c));
  for (int c = 0; c < 16; ++c) many.push_back(on_e(c));
  AppRates r_few = compute_rates(app, machine, few, machine.memory_gips, 0.0);
  AppRates r_many = compute_rates(app, machine, many, machine.memory_gips, 0.0);
  // The quadratic CAS-storm term makes 24 workers *slower* than 4.
  EXPECT_LT(r_many.useful_gips, r_few.useful_gips);
}

TEST(Rates, OversubscriptionSplitsAndPenalises) {
  auto machine = hw();
  AppBehavior app = plain_app();
  app.oversub_penalty = 0.5;
  // Two threads time-sharing one hardware thread yield less than one
  // exclusive thread (multiplexing overhead + lock-holder preemption).
  AppRates shared =
      compute_rates(app, machine, {on_p(0, 1, 2), on_p(0, 1, 2)}, machine.memory_gips, 0.0);
  AppRates exclusive = compute_rates(app, machine, {on_p(0)}, machine.memory_gips, 0.0);
  EXPECT_LT(shared.useful_gips, exclusive.useful_gips);
}

TEST(Rates, PowerScalesWithCoresAndIsSharedAcrossTenants) {
  auto machine = hw();
  AppBehavior app = plain_app();
  AppRates one = compute_rates(app, machine, {on_p(0)}, machine.memory_gips, 0.0);
  AppRates two = compute_rates(app, machine, {on_p(0), on_p(1)}, machine.memory_gips, 0.0);
  EXPECT_NEAR(two.power_w, 2.0 * one.power_w, 1e-9);
  // A thread sharing a slot is attributed half the slot power.
  AppRates half = compute_rates(app, machine, {on_p(0, 1, 2)}, machine.memory_gips, 0.0);
  EXPECT_LT(half.power_w, one.power_w);
}

TEST(Rates, SpinningKeepsPowerHighWhileSleepingDrops) {
  auto machine = hw();
  AppBehavior spinner = plain_app();
  spinner.imbalance_sensitivity = 1.0;
  spinner.sync_ips_inflation = 0.95;
  AppBehavior sleeper = spinner;
  sleeper.sync_ips_inflation = 0.05;
  std::vector<ThreadView> views{on_p(0), on_e(0)};
  AppRates hot = compute_rates(spinner, machine, views, machine.memory_gips, 0.0);
  AppRates cold = compute_rates(sleeper, machine, views, machine.memory_gips, 0.0);
  EXPECT_GT(hot.power_w, cold.power_w);
}

TEST(Rates, RejectsMalformedInput) {
  auto machine = hw();
  AppBehavior app = plain_app();
  app.ipc = {1.0};  // wrong arity for a two-type machine
  EXPECT_THROW(compute_rates(app, machine, {on_p(0)}, 1.0, 0.0), CheckFailure);
  app = plain_app();
  EXPECT_THROW(compute_rates(app, machine, {on_p(0)}, 1.0, 1.5), CheckFailure);
  ThreadView bad{0, 0, 0, 1};  // zero sharers
  EXPECT_THROW(compute_rates(app, machine, {bad}, 1.0, 0.0), CheckFailure);
}

TEST(ExclusiveRates, MatchesManualPlacement) {
  auto machine = hw();
  AppBehavior app = plain_app();
  platform::ExtendedResourceVector erv =
      platform::ExtendedResourceVector::from_threads(machine, {2, 3});
  AppRates from_erv = exclusive_rates(app, machine, erv, 0.0);
  AppRates manual = compute_rates(
      app, machine, {on_p(0, 2), on_p(0, 2), on_e(0), on_e(1), on_e(2)}, machine.memory_gips,
      0.0);
  EXPECT_NEAR(from_erv.useful_gips, manual.useful_gips, 1e-9);
  EXPECT_NEAR(from_erv.power_w, manual.power_w, 1e-9);
}

TEST(PinnedRates, MatchesExclusiveWhenThreadsEqualSlots) {
  auto machine = hw();
  AppBehavior app = plain_app();
  platform::ExtendedResourceVector erv =
      platform::ExtendedResourceVector::from_threads(machine, {4, 2});
  AppRates exclusive = exclusive_rates(app, machine, erv, 0.0);
  AppRates pinned = pinned_rates(app, machine, erv, 6, 0.0);
  EXPECT_NEAR(pinned.useful_gips, exclusive.useful_gips, 1e-9);
  EXPECT_NEAR(pinned.power_w, exclusive.power_w, 1e-9);
}

TEST(PinnedRates, OversubscribedThreadsTimeShare) {
  auto machine = hw();
  AppBehavior app = plain_app();
  app.oversub_penalty = 0.4;
  platform::ExtendedResourceVector erv =
      platform::ExtendedResourceVector::from_threads(machine, {4, 0});
  AppRates matched = pinned_rates(app, machine, erv, 4, 0.0);
  AppRates crowded = pinned_rates(app, machine, erv, 8, 0.0);
  EXPECT_LT(crowded.useful_gips, matched.useful_gips);
}

TEST(PinnedRates, FewerThreadsLeaveSlotsIdle) {
  auto machine = hw();
  AppBehavior app = plain_app();
  platform::ExtendedResourceVector erv =
      platform::ExtendedResourceVector::from_threads(machine, {4, 0});
  AppRates two = pinned_rates(app, machine, erv, 2, 0.0);
  AppRates four = pinned_rates(app, machine, erv, 4, 0.0);
  EXPECT_LT(two.useful_gips, four.useful_gips);
  EXPECT_LT(two.power_w, four.power_w);
}

TEST(PinnedRates, ValidatesThreadCount) {
  auto machine = hw();
  AppBehavior app = plain_app();
  platform::ExtendedResourceVector erv =
      platform::ExtendedResourceVector::from_threads(machine, {1, 0});
  EXPECT_THROW(pinned_rates(app, machine, erv, 0, 0.0), CheckFailure);
}

TEST(Rates, MemoryStallsDoNotInflateMeasuredIps) {
  // perf counts retired instructions: spinning at a barrier retires, a
  // memory-stalled pipeline does not. A fully memory-bound app's measured
  // IPS must track its useful rate even with high sync_ips_inflation.
  auto machine = hw();
  AppBehavior app = plain_app();
  app.mem_fraction = 1.0;
  app.sync_ips_inflation = 0.9;
  std::vector<ThreadView> threads;
  for (int c = 0; c < 8; ++c) threads.push_back(on_p(c));
  AppRates r = compute_rates(app, machine, threads, 5.0, 0.0);
  EXPECT_NEAR(r.measured_gips, r.useful_gips, 1e-9);
}

// --- Catalog invariants the paper's anecdotes rely on -----------------------

TEST(Catalog, RaptorLakeHasAllBenchmarks) {
  WorkloadCatalog cat = WorkloadCatalog::raptor_lake();
  for (const char* name : {"bt.C", "cg.C", "ep.C", "ft.C", "is.C", "lu.C", "mg.C", "sp.C",
                           "ua.C", "binpack", "fractal", "parallel-preorder", "pi", "primes",
                           "seismic", "vgg", "alexnet"})
    EXPECT_TRUE(cat.has_app(name)) << name;
  EXPECT_EQ(cat.regression_study_apps().size(), 15u);  // §5.2's 15 applications
  EXPECT_THROW(cat.app("nonexistent"), CheckFailure);
}

TEST(Catalog, OdroidHasKpnVariants) {
  WorkloadCatalog cat = WorkloadCatalog::odroid();
  EXPECT_EQ(cat.app("mandelbrot").adaptivity, AdaptivityType::kCustom);
  EXPECT_EQ(cat.app("mandelbrot-static").adaptivity, AdaptivityType::kStatic);
  EXPECT_GT(cat.app("mandelbrot-static").default_threads, 0);
  EXPECT_TRUE(cat.app("lms").provides_utility);
}

TEST(Catalog, MgPrefersEfficientCores) {
  auto machine = hw();
  WorkloadCatalog cat = WorkloadCatalog::raptor_lake();
  const AppBehavior& mg = cat.app("mg.C");
  auto all_e = platform::ExtendedResourceVector::from_threads(machine, {0, 16});
  auto all_p = platform::ExtendedResourceVector::from_threads(machine, {16, 0});
  AppRates on_e_rates = exclusive_rates(mg, machine, all_e, 0.0);
  AppRates on_p_rates = exclusive_rates(mg, machine, all_p, 0.0);
  // Similar throughput (memory bound), but far less power on the E-cores.
  EXPECT_GT(on_e_rates.useful_gips, 0.7 * on_p_rates.useful_gips);
  EXPECT_LT(on_e_rates.power_w, 0.7 * on_p_rates.power_w);
}

TEST(Catalog, BinpackPeaksAtFewWorkers) {
  auto machine = hw();
  WorkloadCatalog cat = WorkloadCatalog::raptor_lake();
  const AppBehavior& binpack = cat.app("binpack");
  double best_small = 0.0, full = 0.0;
  for (int threads = 1; threads <= 8; ++threads) {
    auto erv = platform::ExtendedResourceVector::from_threads(machine, {threads, 0});
    best_small = std::max(best_small, exclusive_rates(binpack, machine, erv, 0.0).useful_gips);
  }
  full = exclusive_rates(binpack, machine,
                         platform::ExtendedResourceVector::full(machine), 0.0)
             .useful_gips;
  EXPECT_GT(best_small, 3.0 * full);  // the 6.91x scale-down headroom
}

TEST(Catalog, ScenariosReferToKnownApps) {
  for (const WorkloadCatalog& cat :
       {WorkloadCatalog::raptor_lake(), WorkloadCatalog::odroid()}) {
    for (const Scenario& scenario : cat.all_scenarios()) {
      EXPECT_FALSE(scenario.apps.empty());
      for (const ScenarioApp& app : scenario.apps) EXPECT_TRUE(cat.has_app(app.app)) << app.app;
    }
    EXPECT_FALSE(cat.multi_scenarios().empty());
    for (const Scenario& s : cat.multi_scenarios()) EXPECT_TRUE(s.is_multi());
  }
}

TEST(Catalog, AdaptivityTypeNames) {
  EXPECT_STREQ(to_string(AdaptivityType::kStatic), "static");
  EXPECT_STREQ(to_string(AdaptivityType::kScalable), "scalable");
  EXPECT_STREQ(to_string(AdaptivityType::kCustom), "custom");
}

}  // namespace
}  // namespace harp::model
