// Tests for the regression models and Pareto tools used by §5.2/§5.3.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/check.hpp"
#include "src/common/rng.hpp"
#include "src/mlmodels/pareto.hpp"
#include "src/mlmodels/regressors.hpp"

namespace harp::ml {
namespace {

// --- Polynomial -------------------------------------------------------------

TEST(Polynomial, ExpansionCountsAndValues) {
  // 2 vars, degree 2: 1, x, y, x², xy, y².
  std::vector<double> f = PolynomialRegressor::expand({2.0, 3.0}, 2);
  ASSERT_EQ(f.size(), 6u);
  EXPECT_DOUBLE_EQ(f[0], 1.0);
  EXPECT_DOUBLE_EQ(f[1], 2.0);
  EXPECT_DOUBLE_EQ(f[2], 3.0);
  EXPECT_DOUBLE_EQ(f[3], 4.0);
  EXPECT_DOUBLE_EQ(f[4], 6.0);
  EXPECT_DOUBLE_EQ(f[5], 9.0);
  // 3 vars, degree 3: C(3,1)+C(4,2)+C(5,3) monomials + constant = 20.
  EXPECT_EQ(PolynomialRegressor::expand({1, 1, 1}, 3).size(), 20u);
}

TEST(Polynomial, RecoversQuadraticSurface) {
  Rng rng(5);
  PolynomialRegressor model(2);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 120; ++i) {
    double a = rng.uniform(0.0, 8.0), b = rng.uniform(0.0, 16.0);
    x.push_back({a, b});
    y.push_back(3.0 + 2.0 * a - 0.5 * b + 0.25 * a * b - 0.1 * a * a);
  }
  model.fit(x, y);
  for (int i = 0; i < 20; ++i) {
    double a = rng.uniform(0.0, 8.0), b = rng.uniform(0.0, 16.0);
    double truth = 3.0 + 2.0 * a - 0.5 * b + 0.25 * a * b - 0.1 * a * a;
    EXPECT_NEAR(model.predict({a, b}), truth, 0.05 * std::abs(truth) + 0.1);
  }
}

TEST(Polynomial, DegreeOneIsLinear) {
  PolynomialRegressor model(1);
  model.fit({{0.0}, {1.0}, {2.0}}, {1.0, 3.0, 5.0});  // y = 2x + 1
  EXPECT_NEAR(model.predict({10.0}), 21.0, 0.2);
}

TEST(Polynomial, SurvivesTinyTrainingSets) {
  // The exploration engine fits from very few samples; ridge keeps this
  // well-posed even when under-determined.
  PolynomialRegressor model(2);
  model.fit({{1.0, 2.0}}, {5.0});
  EXPECT_TRUE(std::isfinite(model.predict({2.0, 2.0})));
  EXPECT_THROW(PolynomialRegressor(0), CheckFailure);
}

TEST(Polynomial, PredictBeforeFitThrows) {
  PolynomialRegressor model(2);
  EXPECT_FALSE(model.trained());
  EXPECT_THROW(model.predict({1.0}), CheckFailure);
}

// --- MLP ---------------------------------------------------------------------

TEST(Mlp, LearnsSmoothFunction) {
  Rng rng(11);
  MlpRegressor model(8, 2000, 3);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 80; ++i) {
    double a = rng.uniform(-1.0, 1.0);
    x.push_back({a});
    y.push_back(std::sin(2.0 * a));
  }
  model.fit(x, y);
  double err = 0.0;
  for (int i = 0; i < 20; ++i) {
    double a = -1.0 + 2.0 * i / 19.0;
    err += std::abs(model.predict({a}) - std::sin(2.0 * a));
  }
  EXPECT_LT(err / 20.0, 0.1);
}

TEST(Mlp, DeterministicForSeed) {
  std::vector<std::vector<double>> x{{0.0}, {0.5}, {1.0}, {1.5}};
  std::vector<double> y{0.0, 1.0, 0.5, 2.0};
  MlpRegressor a(4, 200, 7), b(4, 200, 7);
  a.fit(x, y);
  b.fit(x, y);
  EXPECT_DOUBLE_EQ(a.predict({0.7}), b.predict({0.7}));
}

// --- SVR ----------------------------------------------------------------------

TEST(Svr, FitsWithinEpsilonTube) {
  SvrRegressor model(50.0, 0.01, 1.0, 400);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 40; ++i) {
    double a = -2.0 + 4.0 * i / 39.0;
    x.push_back({a});
    y.push_back(a * a);
  }
  model.fit(x, y);
  for (int i = 0; i < 40; ++i) {
    EXPECT_NEAR(model.predict(x[static_cast<std::size_t>(i)]), y[static_cast<std::size_t>(i)],
                0.3);
  }
}

TEST(Svr, ValidatesParameters) {
  EXPECT_THROW(SvrRegressor(-1.0, 0.1, 1.0), CheckFailure);
  EXPECT_THROW(SvrRegressor(1.0, 0.1, 0.0), CheckFailure);
}

// --- Factory -------------------------------------------------------------------

TEST(Factory, ProducesAllKinds) {
  for (const char* kind : {"poly1", "poly2", "poly3", "nn", "svm"}) {
    auto model = make_regressor(kind);
    ASSERT_NE(model, nullptr);
    model->fit({{0.0}, {1.0}, {2.0}, {3.0}}, {0.0, 1.0, 2.0, 3.0});
    EXPECT_TRUE(model->trained());
    EXPECT_TRUE(std::isfinite(model->predict({1.5})));
  }
  EXPECT_THROW(make_regressor("forest"), CheckFailure);
}

TEST(Regressors, RejectBadTrainingShapes) {
  PolynomialRegressor model(2);
  EXPECT_THROW(model.fit({}, {}), CheckFailure);
  EXPECT_THROW(model.fit({{1.0}}, {1.0, 2.0}), CheckFailure);
  EXPECT_THROW(model.fit({{1.0}, {1.0, 2.0}}, {1.0, 2.0}), CheckFailure);
}

// --- Pareto tools -----------------------------------------------------------------

TEST(Pareto, FrontExtraction) {
  // Minimising both objectives: (1,4), (2,2), (4,1) are the front; (3,3)
  // is dominated by (2,2).
  std::vector<std::vector<double>> points{{1, 4}, {2, 2}, {3, 3}, {4, 1}, {5, 5}};
  std::vector<std::size_t> front = pareto_front(points);
  EXPECT_EQ(front, (std::vector<std::size_t>{0, 1, 3}));
}

TEST(Pareto, DuplicatesAreAllKept) {
  std::vector<std::vector<double>> points{{1, 1}, {1, 1}, {2, 2}};
  EXPECT_EQ(pareto_front(points).size(), 2u);
}

TEST(Pareto, HigherDimensionalDominance) {
  std::vector<std::vector<double>> points{{1, 1, 5}, {1, 1, 4}, {0, 2, 9}};
  std::vector<std::size_t> front = pareto_front(points);
  EXPECT_EQ(front, (std::vector<std::size_t>{1, 2}));
}

TEST(Igd, ZeroForIdenticalFronts) {
  std::vector<std::vector<double>> front{{0.0, 1.0}, {0.5, 0.5}, {1.0, 0.0}};
  EXPECT_NEAR(igd(front, front), 0.0, 1e-12);
}

TEST(Igd, GrowsWithDistance) {
  std::vector<std::vector<double>> reference{{0.0, 1.0}, {1.0, 0.0}};
  std::vector<std::vector<double>> near{{0.1, 1.0}, {1.0, 0.1}};
  std::vector<std::vector<double>> far{{0.8, 1.0}, {1.0, 0.8}};
  EXPECT_LT(igd(reference, near), igd(reference, far));
  EXPECT_GT(igd(reference, {}), 1e6);  // empty approximation is terrible
}

TEST(CommonRatio, CountsSharedKeys) {
  EXPECT_DOUBLE_EQ(common_point_ratio({1, 2, 3, 4}, {2, 4, 9}), 0.5);
  EXPECT_DOUBLE_EQ(common_point_ratio({1}, {1}), 1.0);
  EXPECT_DOUBLE_EQ(common_point_ratio({1, 2}, {}), 0.0);
}

}  // namespace
}  // namespace harp::ml
