// Tests for the EnergAt-style energy attribution (§5.1, Eq. 3).
#include <gtest/gtest.h>

#include "src/common/check.hpp"
#include "src/energy/attribution.hpp"
#include "src/platform/hardware.hpp"

namespace harp::energy {
namespace {

TEST(Attributor, CoefficientsComeFromHardware) {
  platform::HardwareDescription hw = platform::raptor_lake();
  EnergyAttributor attributor(hw);
  ASSERT_EQ(attributor.coefficients().size(), 2u);
  // γ relative to the efficient type: P / E power ratio; E itself is 1.
  EXPECT_NEAR(attributor.coefficients()[0],
              hw.core_types[0].active_power_w / hw.core_types[1].active_power_w, 1e-12);
  EXPECT_DOUBLE_EQ(attributor.coefficients()[1], 1.0);
  EXPECT_GT(attributor.idle_baseline_w(), hw.uncore_power_w);
}

TEST(Attributor, SplitsProportionallyOnOneType) {
  platform::HardwareDescription hw = platform::raptor_lake();
  EnergyAttributor attributor(hw);
  // Two apps, E-cores only, app0 with twice the CPU time of app1.
  double window = 1.0;
  double dynamic = 30.0;
  double package = dynamic + attributor.idle_baseline_w() * window;
  std::vector<std::vector<double>> cpu{{0.0, 2.0}, {0.0, 1.0}};
  std::vector<double> out = attributor.attribute(package, window, cpu);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_NEAR(out[0], 20.0, 1e-9);
  EXPECT_NEAR(out[1], 10.0, 1e-9);
}

TEST(Attributor, GammaWeightsFastCores) {
  platform::HardwareDescription hw = platform::raptor_lake();
  EnergyAttributor attributor(hw);
  double gamma = attributor.coefficients()[0];
  double window = 1.0;
  double dynamic = 100.0;
  double package = dynamic + attributor.idle_baseline_w() * window;
  // Equal CPU time, one app on P, one on E: split must follow γ : 1.
  std::vector<std::vector<double>> cpu{{1.0, 0.0}, {0.0, 1.0}};
  std::vector<double> out = attributor.attribute(package, window, cpu);
  EXPECT_NEAR(out[0] / out[1], gamma, 1e-9);
  EXPECT_NEAR(out[0] + out[1], dynamic, 1e-9);
}

TEST(Attributor, FullEnergyConservation) {
  platform::HardwareDescription hw = platform::odroid_xu3e();
  EnergyAttributor attributor(hw);
  double window = 2.0;
  double dynamic = 8.0;
  double package = dynamic + attributor.idle_baseline_w() * window;
  std::vector<std::vector<double>> cpu{{1.0, 0.5}, {0.5, 2.0}, {0.0, 1.0}};
  std::vector<double> out = attributor.attribute(package, window, cpu);
  double total = out[0] + out[1] + out[2];
  EXPECT_NEAR(total, dynamic, 1e-9);
}

TEST(Attributor, NoCpuTimeMeansNoEnergy) {
  platform::HardwareDescription hw = platform::raptor_lake();
  EnergyAttributor attributor(hw);
  std::vector<std::vector<double>> cpu{{0.0, 0.0}};
  std::vector<double> out = attributor.attribute(100.0, 1.0, cpu);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
}

TEST(Attributor, BelowBaselineWindowYieldsZero) {
  platform::HardwareDescription hw = platform::raptor_lake();
  EnergyAttributor attributor(hw);
  std::vector<std::vector<double>> cpu{{1.0, 1.0}};
  // Package reading below the static baseline (deep idle / noise): clamp.
  std::vector<double> out =
      attributor.attribute(0.5 * attributor.idle_baseline_w(), 1.0, cpu);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
}

TEST(Attributor, ValidatesInput) {
  platform::HardwareDescription hw = platform::raptor_lake();
  EnergyAttributor attributor(hw);
  EXPECT_THROW(attributor.attribute(10.0, 0.0, {{1.0, 1.0}}), CheckFailure);
  EXPECT_THROW(attributor.attribute(10.0, 1.0, {{1.0}}), CheckFailure);  // wrong arity
}

}  // namespace
}  // namespace harp::energy
