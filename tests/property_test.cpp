// Cross-cutting property suites (TEST_P sweeps) over the whole stack:
// behaviour-model monotonicity, cost-function invariances, DSE table
// invariants for every catalog application, attribution conservation, and
// allocator sanity under randomized inputs.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.hpp"
#include "src/energy/attribution.hpp"
#include "src/harp/allocator.hpp"
#include "src/harp/dse.hpp"
#include "src/model/catalog.hpp"
#include "src/platform/hardware.hpp"

namespace harp {
namespace {

// ---------------------------------------------------------------------------
// DSE table invariants for every application of both catalogs.
// ---------------------------------------------------------------------------

struct DseCase {
  std::string platform;
  std::string app;
};

std::vector<DseCase> all_dse_cases() {
  std::vector<DseCase> cases;
  model::WorkloadCatalog raptor = model::WorkloadCatalog::raptor_lake();
  model::WorkloadCatalog odroid = model::WorkloadCatalog::odroid();
  for (const model::AppBehavior& app : raptor.apps()) cases.push_back({"raptor", app.name});
  for (const model::AppBehavior& app : odroid.apps()) cases.push_back({"odroid", app.name});
  return cases;
}

class DseTableProperty : public ::testing::TestWithParam<DseCase> {};

TEST_P(DseTableProperty, TablesAreWellFormed) {
  const DseCase& c = GetParam();
  platform::HardwareDescription hw =
      c.platform == "raptor" ? platform::raptor_lake() : platform::odroid_xu3e();
  model::WorkloadCatalog catalog = c.platform == "raptor"
                                       ? model::WorkloadCatalog::raptor_lake()
                                       : model::WorkloadCatalog::odroid();
  core::OperatingPointTable table = core::run_offline_dse(catalog.app(c.app), hw);

  ASSERT_FALSE(table.empty());
  double v_max = table.utility_max();
  EXPECT_GT(v_max, 0.0);
  for (const core::OperatingPoint& p : table.points(0)) {
    EXPECT_TRUE(p.erv.fits(hw)) << p.erv.to_string(hw);
    EXPECT_GT(p.nfc.utility, 0.0);
    EXPECT_GT(p.nfc.power_w, 0.0);
    EXPECT_LE(p.nfc.utility, v_max + 1e-9);
    double zeta = table.cost_of(p);
    EXPECT_TRUE(std::isfinite(zeta));
    EXPECT_GT(zeta, 0.0);
  }
  // The table must contain a small configuration (multi-app feasibility).
  bool has_small = false;
  for (const core::OperatingPoint& p : table.points(0))
    if (p.erv.total_cores() <= 2) has_small = true;
  EXPECT_TRUE(has_small);
}

INSTANTIATE_TEST_SUITE_P(AllApps, DseTableProperty, ::testing::ValuesIn(all_dse_cases()),
                         [](const ::testing::TestParamInfo<DseCase>& info) {
                           std::string name =
                               info.param.platform + "_" + info.param.app;
                           for (char& ch : name)
                             if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
                           return name;
                         });

// ---------------------------------------------------------------------------
// Behaviour-model monotonicity across the catalog.
// ---------------------------------------------------------------------------

class ModelMonotonicity : public ::testing::TestWithParam<std::string> {};

TEST_P(ModelMonotonicity, MoreEfficientCoresNeverReduceUsefulRate) {
  platform::HardwareDescription hw = platform::raptor_lake();
  model::WorkloadCatalog catalog = model::WorkloadCatalog::raptor_lake();
  const model::AppBehavior& app = catalog.app(GetParam());
  if (app.contention > 0.0 || app.contention_quadratic > 0.0)
    GTEST_SKIP() << "contended apps legitimately slow down with more threads";
  // With full rebalancing, growing the E-core allocation monotonically
  // grows (or keeps) the useful rate.
  double previous = 0.0;
  for (int e = 1; e <= 16; ++e) {
    platform::ExtendedResourceVector erv =
        platform::ExtendedResourceVector::from_threads(hw, {4, e});
    double rate = model::exclusive_rates(app, hw, erv, 1.0).useful_gips;
    EXPECT_GE(rate, previous - 1e-9) << "at E=" << e;
    previous = rate;
  }
}

TEST_P(ModelMonotonicity, PowerGrowsWithAllocation) {
  platform::HardwareDescription hw = platform::raptor_lake();
  model::WorkloadCatalog catalog = model::WorkloadCatalog::raptor_lake();
  const model::AppBehavior& app = catalog.app(GetParam());
  double previous = 0.0;
  for (int e = 1; e <= 16; ++e) {
    platform::ExtendedResourceVector erv =
        platform::ExtendedResourceVector::from_threads(hw, {0, e});
    double power = model::exclusive_rates(app, hw, erv, 1.0).power_w;
    EXPECT_GT(power, previous) << "at E=" << e;
    previous = power;
  }
}

TEST_P(ModelMonotonicity, MeasuredIpsNeverBelowUseful) {
  platform::HardwareDescription hw = platform::raptor_lake();
  model::WorkloadCatalog catalog = model::WorkloadCatalog::raptor_lake();
  const model::AppBehavior& app = catalog.app(GetParam());
  for (const platform::ExtendedResourceVector& erv :
       {platform::ExtendedResourceVector::from_threads(hw, {4, 0}),
        platform::ExtendedResourceVector::from_threads(hw, {4, 8}),
        platform::ExtendedResourceVector::full(hw)}) {
    model::AppRates rates = model::exclusive_rates(app, hw, erv, 0.0);
    EXPECT_GE(rates.measured_gips, rates.useful_gips - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(RaptorApps, ModelMonotonicity,
                         ::testing::Values("ep.C", "mg.C", "lu.C", "cg.C", "ft.C", "vgg",
                                           "fractal", "seismic", "binpack"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& ch : name)
                             if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
                           return name;
                         });

// ---------------------------------------------------------------------------
// Cost-function invariances.
// ---------------------------------------------------------------------------

TEST(CostInvariance, UtilityUnitsDoNotChangeRanking) {
  // ζ ranking must be invariant under rescaling the utility metric (IPS vs
  // transactions/s): HARP normalises by v_max.
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    core::NonFunctional a{rng.uniform(1.0, 50.0), rng.uniform(1.0, 100.0)};
    core::NonFunctional b{rng.uniform(1.0, 50.0), rng.uniform(1.0, 100.0)};
    double v_max = std::max(a.utility, b.utility);
    bool a_better = core::energy_utility_cost(a, v_max) < core::energy_utility_cost(b, v_max);

    double scale = rng.uniform(0.01, 1000.0);
    core::NonFunctional a2{a.utility * scale, a.power_w};
    core::NonFunctional b2{b.utility * scale, b.power_w};
    double v_max2 = v_max * scale;
    bool a_better2 =
        core::energy_utility_cost(a2, v_max2) < core::energy_utility_cost(b2, v_max2);
    EXPECT_EQ(a_better, a_better2);
  }
}

TEST(CostInvariance, CostIsEdpShaped) {
  // Halving utility at equal power quadruples ζ (delay enters twice).
  core::NonFunctional full{40.0, 10.0};
  core::NonFunctional half{20.0, 10.0};
  double zf = core::energy_utility_cost(full, 40.0);
  double zh = core::energy_utility_cost(half, 40.0);
  EXPECT_NEAR(zh / zf, 4.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Attribution conservation under random loads.
// ---------------------------------------------------------------------------

TEST(AttributionProperty, DynamicEnergyIsConserved) {
  platform::HardwareDescription hw = platform::raptor_lake();
  energy::EnergyAttributor attributor(hw);
  Rng rng(17);
  for (int trial = 0; trial < 100; ++trial) {
    int apps = rng.uniform_int(1, 6);
    std::vector<std::vector<double>> cpu(static_cast<std::size_t>(apps));
    double busy = 0.0;
    for (auto& row : cpu) {
      row = {rng.uniform(0.0, 4.0), rng.uniform(0.0, 8.0)};
      busy += row[0] + row[1];
    }
    if (busy < 1e-6) continue;
    double window = rng.uniform(0.1, 5.0);
    double dynamic = rng.uniform(1.0, 500.0);
    std::vector<double> out =
        attributor.attribute(dynamic + attributor.idle_baseline_w() * window, window, cpu);
    double total = 0.0;
    for (double e : out) {
      EXPECT_GE(e, 0.0);
      total += e;
    }
    EXPECT_NEAR(total, dynamic, 1e-6 * std::max(dynamic, 1.0));
  }
}

// ---------------------------------------------------------------------------
// Allocator sanity under random group structures.
// ---------------------------------------------------------------------------

TEST(AllocatorProperty, SolutionsAlwaysRespectCapacity) {
  platform::HardwareDescription hw = platform::raptor_lake();
  core::Allocator allocator(hw);
  Rng rng(29);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<core::AllocationGroup> groups;
    int n_apps = rng.uniform_int(1, 5);
    for (int a = 0; a < n_apps; ++a) {
      core::AllocationGroup group;
      group.app_name = "g" + std::to_string(a);
      int n = rng.uniform_int(1, 10);
      for (int c = 0; c < n; ++c) {
        core::OperatingPoint p;
        p.erv = platform::ExtendedResourceVector::from_threads(
            hw, {rng.uniform_int(0, 16), rng.uniform_int(0, 16)});
        if (p.erv.total_threads() == 0)
          p.erv = platform::ExtendedResourceVector::from_threads(hw, {0, 1});
        p.nfc.utility = rng.uniform(1.0, 100.0);
        p.nfc.power_w = rng.uniform(1.0, 100.0);
        group.candidates.push_back(p);
        group.costs.push_back(core::energy_utility_cost(p.nfc, 100.0));
      }
      groups.push_back(std::move(group));
    }
    core::AllocationResult result = allocator.solve(groups);
    if (!result.feasible) continue;
    // Capacity respected and concrete allocations disjoint.
    std::vector<int> usage(hw.core_types.size(), 0);
    std::set<std::pair<std::size_t, int>> cores_used;
    for (const platform::CoreAllocation& alloc : result.allocations) {
      for (std::size_t t = 0; t < alloc.cores.size(); ++t) {
        for (const auto& [core, threads] : alloc.cores[t]) {
          (void)threads;
          ++usage[t];
          EXPECT_TRUE(cores_used.insert({t, core}).second);
        }
      }
    }
    for (std::size_t t = 0; t < usage.size(); ++t)
      EXPECT_LE(usage[t], hw.core_types[t].core_count);
  }
}

}  // namespace
}  // namespace harp
