// Integration tests for libharp + the RM daemon: the full Fig. 3 control
// flow over the in-process transport (deterministic) and real sockets.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "src/harp/dse.hpp"
#include "src/harp/rm_server.hpp"
#include "src/libharp/client.hpp"
#include "src/model/catalog.hpp"
#include "src/platform/hardware.hpp"

namespace harp {
namespace {

/// Drives an RmServer from a helper thread so blocking client calls (the
/// registration handshake) can complete in a single-process test.
class RmHarness {
 public:
  explicit RmHarness(platform::HardwareDescription hw) : rm_(std::move(hw)) {
    thread_ = std::thread([this] {
      auto t0 = std::chrono::steady_clock::now();
      while (!stop_.load()) {
        rm_.poll(std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count());
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  ~RmHarness() {
    stop_ = true;
    thread_.join();
  }
  core::RmServer& rm() { return rm_; }

 private:
  core::RmServer rm_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

std::vector<ipc::OperatingPointsMsg::Point> table_points(
    const core::OperatingPointTable& table) {
  std::vector<ipc::OperatingPointsMsg::Point> out;
  for (const core::OperatingPoint& p : table.points(0))
    out.push_back({p.erv, p.nfc.utility, p.nfc.power_w});
  return out;
}

TEST(LibharpClient, RegistersOverChannel) {
  RmHarness harness(platform::raptor_lake());
  auto [rm_end, app_end] = ipc::make_in_process_pair();
  harness.rm().adopt_channel(std::move(rm_end));

  client::Config config;
  config.app_name = "demo";
  auto connected = client::HarpClient::over_channel(std::move(app_end), config);
  ASSERT_TRUE(connected.ok()) << connected.error().message;
  EXPECT_GE(connected.value()->app_id(), 1);
  EXPECT_EQ(connected.value()->app_name(), "demo");
  // Allow the RM to count the client before checking.
  for (int i = 0; i < 100 && harness.rm().client_count() == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(harness.rm().client_count(), 1u);
}

TEST(LibharpClient, ValidatesConfig) {
  auto [rm_end, app_end] = ipc::make_in_process_pair();
  (void)rm_end;
  client::Config config;  // missing app_name
  EXPECT_FALSE(client::HarpClient::over_channel(std::move(app_end), config).ok());

  auto [rm_end2, app_end2] = ipc::make_in_process_pair();
  (void)rm_end2;
  client::Config wants_utility;
  wants_utility.app_name = "x";
  wants_utility.provides_utility = true;  // …but no provider callback
  EXPECT_FALSE(client::HarpClient::over_channel(std::move(app_end2), wants_utility).ok());
}

TEST(LibharpClient, ReceivesActivationAfterSubmittingPoints) {
  platform::HardwareDescription hw = platform::raptor_lake();
  RmHarness harness(hw);
  auto [rm_end, app_end] = ipc::make_in_process_pair();
  harness.rm().adopt_channel(std::move(rm_end));

  client::Config config;
  config.app_name = "mg.C";
  config.adaptivity = ipc::WireAdaptivity::kScalable;
  auto connected = client::HarpClient::over_channel(std::move(app_end), config);
  ASSERT_TRUE(connected.ok());
  auto client = std::move(connected).take();

  model::WorkloadCatalog catalog = model::WorkloadCatalog::raptor_lake();
  core::OperatingPointTable table = core::run_offline_dse(catalog.app("mg.C"), hw);
  ASSERT_TRUE(client->submit_operating_points(table_points(table)).ok());

  for (int i = 0; i < 500 && !client->current_activation().has_value(); ++i) {
    (void)client->poll();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(client->current_activation().has_value());
  client::Activation activation = *client->current_activation();
  EXPECT_GT(activation.parallelism, 0);
  EXPECT_FALSE(activation.cores.empty());
  EXPECT_TRUE(activation.erv.fits(hw));
  EXPECT_EQ(client->recommended_parallelism(1), activation.parallelism);
  // §4.1.3: the hook takes the max of user request and RM assignment.
  EXPECT_EQ(client->recommended_parallelism(64), 64);
}

TEST(LibharpClient, CustomCallbackInvokedOnActivation) {
  platform::HardwareDescription hw = platform::odroid_xu3e();
  RmHarness harness(hw);
  auto [rm_end, app_end] = ipc::make_in_process_pair();
  harness.rm().adopt_channel(std::move(rm_end));

  int activations = 0;
  client::Callbacks callbacks;
  callbacks.on_activate = [&](const client::Activation&) { ++activations; };
  client::Config config;
  config.app_name = "mandelbrot";
  config.adaptivity = ipc::WireAdaptivity::kCustom;
  auto connected =
      client::HarpClient::over_channel(std::move(app_end), config, std::move(callbacks));
  ASSERT_TRUE(connected.ok());
  auto client = std::move(connected).take();
  ASSERT_TRUE(client
                  ->submit_operating_points(
                      {{platform::ExtendedResourceVector::from_threads(hw, {4, 0}), 100.0, 6.0},
                       {platform::ExtendedResourceVector::from_threads(hw, {0, 4}), 50.0, 1.2}})
                  .ok());
  for (int i = 0; i < 500 && activations == 0; ++i) {
    (void)client->poll();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(activations, 1);
  EXPECT_TRUE(client->current_activation()->rebalance);  // custom apps rebalance
}

TEST(LibharpClient, UtilityFeedbackReachesRm) {
  platform::HardwareDescription hw = platform::raptor_lake();
  RmHarness harness(hw);
  auto [rm_end, app_end] = ipc::make_in_process_pair();
  harness.rm().adopt_channel(std::move(rm_end));

  client::Callbacks callbacks;
  callbacks.utility_provider = [] { return 321.5; };
  client::Config config;
  config.app_name = "vgg";
  config.provides_utility = true;
  auto connected =
      client::HarpClient::over_channel(std::move(app_end), config, std::move(callbacks));
  ASSERT_TRUE(connected.ok());
  auto client = std::move(connected).take();

  // The RM polls utility on its interval (default 1 s); pump the client.
  for (int i = 0; i < 3000 && harness.rm().last_utility("vgg") == 0.0; ++i) {
    (void)client->poll();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_DOUBLE_EQ(harness.rm().last_utility("vgg"), 321.5);
}

TEST(LibharpClient, TwoClientsGetDisjointGrants) {
  platform::HardwareDescription hw = platform::raptor_lake();
  RmHarness harness(hw);
  model::WorkloadCatalog catalog = model::WorkloadCatalog::raptor_lake();

  auto make_client = [&](const std::string& name) {
    auto [rm_end, app_end] = ipc::make_in_process_pair();
    harness.rm().adopt_channel(std::move(rm_end));
    client::Config config;
    config.app_name = name;
    auto connected = client::HarpClient::over_channel(std::move(app_end), config);
    EXPECT_TRUE(connected.ok());
    auto client = std::move(connected).take();
    core::OperatingPointTable table = core::run_offline_dse(catalog.app(name), hw);
    EXPECT_TRUE(client->submit_operating_points(table_points(table)).ok());
    return client;
  };
  auto a = make_client("ep.C");
  auto b = make_client("mg.C");

  for (int i = 0; i < 1000; ++i) {
    (void)a->poll();
    (void)b->poll();
    if (a->current_activation().has_value() && b->current_activation().has_value()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(a->current_activation().has_value());
  ASSERT_TRUE(b->current_activation().has_value());

  std::set<std::pair<int, int>> cores;
  for (const client::Activation& activation : {*a->current_activation(), *b->current_activation()})
    for (const ipc::ActivateMsg::CoreGrant& grant : activation.cores)
      EXPECT_TRUE(cores.insert({grant.type, grant.core}).second)
          << "core granted to both applications";
}

TEST(LibharpClient, DeregisterDropsClient) {
  RmHarness harness(platform::raptor_lake());
  auto [rm_end, app_end] = ipc::make_in_process_pair();
  harness.rm().adopt_channel(std::move(rm_end));
  client::Config config;
  config.app_name = "temp";
  auto connected = client::HarpClient::over_channel(std::move(app_end), config);
  ASSERT_TRUE(connected.ok());
  auto client = std::move(connected).take();
  for (int i = 0; i < 100 && harness.rm().client_count() == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(client->deregister().ok());
  for (int i = 0; i < 500 && harness.rm().client_count() > 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(harness.rm().client_count(), 0u);
}

TEST(LibharpClient, DeregisterOnHalfOpenChannelDoesNotBlock) {
  // Regression: the destructor calls deregister(); when the RM side is gone
  // the Deregister notice cannot be delivered, and the call must neither
  // block nor fail — the RM reclaims the grant via its lease instead.
  auto [rm_end, app_end] = ipc::make_in_process_pair();
  client::Config config;
  config.app_name = "orphan";
  auto made = client::HarpClient::deferred(std::move(app_end), config);
  ASSERT_TRUE(made.ok()) << made.error().message;
  auto client = std::move(made).take();

  rm_end->close();  // the RM died; the link is now half-open
  (void)client->poll(0.0);

  auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(client->deregister().ok());
  client.reset();  // destructor must be a no-op after explicit deregister
  double elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_LT(elapsed, 0.5) << "deregister/destructor blocked on a dead link";
}

TEST(LibharpClient, DestructorSurvivesUnregisteredHalfOpenLink) {
  // Same, but the destructor itself performs the deregistration — and the
  // handshake never completed, so every link state is exercised.
  auto [rm_end, app_end] = ipc::make_in_process_pair();
  client::Config config;
  config.app_name = "orphan2";
  auto made = client::HarpClient::deferred(std::move(app_end), config);
  ASSERT_TRUE(made.ok());
  auto client = std::move(made).take();
  EXPECT_FALSE(client->registered());  // ack never arrived
  rm_end->close();

  auto t0 = std::chrono::steady_clock::now();
  client.reset();
  double elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_LT(elapsed, 0.5);
}

TEST(RmServer, FullStackOverUnixSocket) {
  std::string path = ::testing::TempDir() + "/harp_rm_test.sock";
  platform::HardwareDescription hw = platform::raptor_lake();
  RmHarness harness(hw);
  ASSERT_TRUE(harness.rm().listen(path).ok());

  client::Config config;
  config.app_name = "socket-app";
  auto connected = client::HarpClient::connect(path, config);
  ASSERT_TRUE(connected.ok()) << connected.error().message;
  auto client = std::move(connected).take();
  // Without a description file the RM still activates a fair-share grant.
  for (int i = 0; i < 1000 && !client->current_activation().has_value(); ++i) {
    (void)client->poll();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(client->current_activation().has_value());
}

}  // namespace
}  // namespace harp
