// Tests for the readiness event loop (src/ipc/event_loop.hpp) and the
// transport behaviours it depends on: wakeup-pipe nudges, partial frames
// spanning readiness events, fd churn, EINTR/EAGAIN handling via the syscall
// seam, and nonblocking-send buffering flushed on writable readiness.
#include <gtest/gtest.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/ipc/event_loop.hpp"
#include "src/ipc/messages.hpp"
#include "src/ipc/transport.hpp"
#include "src/ipc/transport_hooks.hpp"
#include "src/platform/hardware.hpp"

namespace harp::ipc {
namespace {

/// Swap in a hook set for one test section and restore the previous set on
/// scope exit (the seam is global; see transport_hooks.hpp).
class ScopedSyscallOverride {
 public:
  ScopedSyscallOverride() : saved_(syscall_hooks()) {}
  ~ScopedSyscallOverride() { syscall_hooks() = saved_; }
  ScopedSyscallOverride(const ScopedSyscallOverride&) = delete;
  ScopedSyscallOverride& operator=(const ScopedSyscallOverride&) = delete;

 private:
  SyscallHooks saved_;
};

// Hook state: plain function pointers cannot capture, so the budgets live in
// file-scope atomics reset by each test before installing a hook.
std::atomic<int> g_recv_eintr_budget{0};
std::atomic<int> g_poll_eintr_budget{0};
std::atomic<int> g_accept_eintr_budget{0};

ssize_t recv_eintr_then_real(int fd, void* buf, size_t len, int flags) {
  if (g_recv_eintr_budget.fetch_sub(1) > 0) {
    errno = EINTR;
    return -1;
  }
  return ::recv(fd, buf, len, flags);
}

ssize_t recv_always_eagain(int, void*, size_t, int) {
  errno = EAGAIN;
  return -1;
}

int poll_eintr_then_real(struct pollfd* fds, nfds_t nfds, int timeout) {
  if (g_poll_eintr_budget.fetch_sub(1) > 0) {
    errno = EINTR;
    return -1;
  }
  return ::poll(fds, nfds, timeout);
}

int accept_eintr_then_real(int fd, struct sockaddr* addr, socklen_t* addr_len) {
  if (g_accept_eintr_budget.fetch_sub(1) > 0) {
    errno = EINTR;
    return -1;
  }
  return ::accept(fd, addr, addr_len);
}

struct SocketPair {
  int fds[2] = {-1, -1};
  SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0); }
  ~SocketPair() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
  /// Hand fd ownership to a caller (channel_from_fd takes the fd).
  int release(int i) {
    int fd = fds[i];
    fds[i] = -1;
    return fd;
  }
};

/// Backends every test sweeps: the resolved default (epoll on Linux) and the
/// portable poll fallback, so both stay behaviourally identical.
std::vector<EventLoop::Backend> backends_under_test() {
  return {EventLoop::Backend::kDefault, EventLoop::Backend::kPoll};
}

bool has_event(const std::vector<EventLoop::Ready>& ready, int fd, std::uint32_t mask) {
  for (const EventLoop::Ready& r : ready)
    if (r.fd == fd && (r.events & mask) != 0) return true;
  return false;
}

TEST(EventLoop, WakeupSelfNudgeConsumedOnce) {
  for (EventLoop::Backend backend : backends_under_test()) {
    EventLoop loop(backend);
    ASSERT_TRUE(loop.valid());
    loop.wakeup();
    loop.wakeup();  // coalesced: one byte in flight at most
    std::vector<EventLoop::Ready> ready;
    Result<int> n = loop.wait(0, ready);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(n.value(), 0);  // the wakeup pipe is never reported as ready
    EXPECT_TRUE(ready.empty());
    EXPECT_TRUE(loop.woke());

    n = loop.wait(0, ready);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(n.value(), 0);
    EXPECT_FALSE(loop.woke());  // the nudge does not linger
  }
}

TEST(EventLoop, WakeupUnblocksWaitFromAnotherThread) {
  for (EventLoop::Backend backend : backends_under_test()) {
    EventLoop loop(backend);
    ASSERT_TRUE(loop.valid());
    std::atomic<bool> returned{false};
    std::thread waiter([&loop, &returned] {
      std::vector<EventLoop::Ready> ready;
      Result<int> n = loop.wait(30000, ready);
      EXPECT_TRUE(n.ok());
      returned.store(true);
    });
    // Whether the nudge lands before or during the wait, the armed byte must
    // make it return promptly (well inside the 30 s timeout).
    loop.wakeup();
    waiter.join();
    EXPECT_TRUE(returned.load());
    EXPECT_TRUE(loop.woke());
  }
}

TEST(EventLoop, ReadableAndWritableReadiness) {
  for (EventLoop::Backend backend : backends_under_test()) {
    EventLoop loop(backend);
    ASSERT_TRUE(loop.valid());
    SocketPair pair;
    ASSERT_TRUE(loop.add(pair.fds[0], kEventReadable).ok());
    EXPECT_EQ(loop.watched(), 1u);

    std::vector<EventLoop::Ready> ready;
    Result<int> n = loop.wait(0, ready);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(n.value(), 0);  // nothing to read yet

    char byte = 'x';
    ASSERT_EQ(::send(pair.fds[1], &byte, 1, 0), 1);
    n = loop.wait(0, ready);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(n.value(), 1);
    EXPECT_TRUE(has_event(ready, pair.fds[0], kEventReadable));

    // Level-triggered: still ready until drained, quiet afterwards.
    n = loop.wait(0, ready);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(n.value(), 1);
    ASSERT_EQ(::recv(pair.fds[0], &byte, 1, 0), 1);
    n = loop.wait(0, ready);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(n.value(), 0);

    // An empty socket buffer is immediately writable.
    ASSERT_TRUE(loop.modify(pair.fds[0], kEventWritable).ok());
    n = loop.wait(0, ready);
    ASSERT_TRUE(n.ok());
    EXPECT_TRUE(has_event(ready, pair.fds[0], kEventWritable));

    loop.remove(pair.fds[0]);
    EXPECT_EQ(loop.watched(), 0u);
  }
}

TEST(EventLoop, PeerCloseReportsError) {
  for (EventLoop::Backend backend : backends_under_test()) {
    EventLoop loop(backend);
    ASSERT_TRUE(loop.valid());
    SocketPair pair;
    ASSERT_TRUE(loop.add(pair.fds[0], kEventReadable).ok());
    ::close(pair.release(1));
    std::vector<EventLoop::Ready> ready;
    Result<int> n = loop.wait(0, ready);
    ASSERT_TRUE(n.ok());
    ASSERT_EQ(n.value(), 1);
    // Hangup surfaces as readable (so the owner drains the EOF) plus error.
    EXPECT_TRUE(has_event(ready, pair.fds[0], kEventReadable));
    EXPECT_TRUE(has_event(ready, pair.fds[0], kEventError));
  }
}

TEST(EventLoop, ApiEdges) {
  for (EventLoop::Backend backend : backends_under_test()) {
    EventLoop loop(backend);
    ASSERT_TRUE(loop.valid());
    loop.remove(12345);  // never watched: ignored
    EXPECT_EQ(loop.watched(), 0u);
    EXPECT_FALSE(loop.modify(12345, kEventReadable).ok());  // modify needs add
    EXPECT_FALSE(loop.add(-1, kEventReadable).ok());

    SocketPair pair;
    ASSERT_TRUE(loop.add(pair.fds[0], kEventReadable).ok());
    // Re-adding replaces the mask instead of duplicating the entry.
    ASSERT_TRUE(loop.add(pair.fds[0], kEventReadable | kEventWritable).ok());
    EXPECT_EQ(loop.watched(), 1u);
    loop.remove(pair.fds[0]);
  }
}

// Connect/close storm: the interest set and kernel registration must stay
// consistent through rapid fd reuse on both backends.
TEST(EventLoop, FdChurnStorm) {
  for (EventLoop::Backend backend : backends_under_test()) {
    EventLoop loop(backend);
    ASSERT_TRUE(loop.valid());
    std::vector<EventLoop::Ready> ready;
    for (int round = 0; round < 64; ++round) {
      std::vector<std::unique_ptr<SocketPair>> pairs;
      for (int i = 0; i < 8; ++i) {
        pairs.push_back(std::make_unique<SocketPair>());
        ASSERT_TRUE(loop.add(pairs.back()->fds[0], kEventReadable).ok());
        char byte = static_cast<char>(i);
        ASSERT_EQ(::send(pairs.back()->fds[1], &byte, 1, 0), 1);
      }
      EXPECT_EQ(loop.watched(), 8u);
      Result<int> n = loop.wait(0, ready);
      ASSERT_TRUE(n.ok());
      EXPECT_EQ(n.value(), 8);
      std::vector<int> watched_fds;
      for (const auto& pair : pairs) {
        EXPECT_TRUE(has_event(ready, pair->fds[0], kEventReadable));
        watched_fds.push_back(pair->fds[0]);
      }
      // Half the rounds close the fds before remove() has run, mimicking an
      // owner whose teardown races its bookkeeping.
      if (round % 2 == 1) pairs.clear();
      for (int fd : watched_fds) loop.remove(fd);
      pairs.clear();
      EXPECT_EQ(loop.watched(), 0u);
    }
  }
}

TEST(EventLoop, BackendsAgreeOnReadiness) {
  EventLoop fast(EventLoop::Backend::kDefault);
  EventLoop portable(EventLoop::Backend::kPoll);
  ASSERT_TRUE(fast.valid());
  ASSERT_TRUE(portable.valid());
  EXPECT_EQ(portable.backend(), EventLoop::Backend::kPoll);

  SocketPair pair;
  ASSERT_TRUE(fast.add(pair.fds[0], kEventReadable).ok());
  ASSERT_TRUE(portable.add(pair.fds[0], kEventReadable).ok());
  char byte = 'y';
  ASSERT_EQ(::send(pair.fds[1], &byte, 1, 0), 1);

  std::vector<EventLoop::Ready> a, b;
  ASSERT_TRUE(fast.wait(0, a).ok());
  ASSERT_TRUE(portable.wait(0, b).ok());
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].fd, b[0].fd);
  EXPECT_EQ(a[0].events, b[0].events);
}

// A frame arriving in two halves produces two readiness events; the channel
// must buffer the partial frame after the first and complete it after the
// second — the core invariant of nonblocking reads under an event loop.
TEST(EventLoop, PartialFrameAcrossTwoReadinessEvents) {
  EventLoop loop;
  ASSERT_TRUE(loop.valid());
  SocketPair pair;
  std::unique_ptr<Channel> channel = channel_from_fd(pair.release(0));
  int fd = channel->native_handle();
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(loop.add(fd, kEventReadable).ok());

  std::vector<std::uint8_t> frame = encode(Message(RegisterAck{42}));
  ASSERT_GT(frame.size(), 2u);
  std::size_t half = frame.size() / 2;  // splits inside the frame header
  ASSERT_EQ(::send(pair.fds[1], frame.data(), half, 0), static_cast<ssize_t>(half));

  std::vector<EventLoop::Ready> ready;
  Result<int> n = loop.wait(1000, ready);
  ASSERT_TRUE(n.ok());
  ASSERT_TRUE(has_event(ready, fd, kEventReadable));
  Result<std::optional<Message>> polled = channel->poll();
  ASSERT_TRUE(polled.ok());
  EXPECT_FALSE(polled.value().has_value());  // half a frame is not a message
  EXPECT_FALSE(channel->closed());

  ASSERT_EQ(::send(pair.fds[1], frame.data() + half, frame.size() - half, 0),
            static_cast<ssize_t>(frame.size() - half));
  n = loop.wait(1000, ready);
  ASSERT_TRUE(n.ok());
  ASSERT_TRUE(has_event(ready, fd, kEventReadable));
  polled = channel->poll();
  ASSERT_TRUE(polled.ok());
  ASSERT_TRUE(polled.value().has_value());
  EXPECT_EQ(std::get<RegisterAck>(*polled.value()).app_id, 42);
}

// Regression (red before the transport fix): an EINTR mid-read must be
// retried, not surfaced — the frame behind it still arrives in the same
// poll() call.
TEST(EintrRegression, RecvRetriedDeliversFrame) {
  SocketPair pair;
  std::unique_ptr<Channel> channel = channel_from_fd(pair.release(0));
  std::vector<std::uint8_t> frame = encode(Message(RegisterAck{7}));
  ASSERT_EQ(::send(pair.fds[1], frame.data(), frame.size(), 0),
            static_cast<ssize_t>(frame.size()));

  ScopedSyscallOverride guard;
  g_recv_eintr_budget.store(1);
  syscall_hooks().recv = recv_eintr_then_real;
  Result<std::optional<Message>> polled = channel->poll();
  ASSERT_TRUE(polled.ok()) << polled.error().message;
  ASSERT_TRUE(polled.value().has_value());
  EXPECT_EQ(std::get<RegisterAck>(*polled.value()).app_id, 7);
  EXPECT_LE(g_recv_eintr_budget.load(), 0);  // the scripted EINTR was consumed
}

// EAGAIN is the quiet no-data case, not an error: poll() must return an
// empty optional and leave the channel open.
TEST(EintrRegression, EagainSurfacesAsEmptyPoll) {
  SocketPair pair;
  std::unique_ptr<Channel> channel = channel_from_fd(pair.release(0));
  ScopedSyscallOverride guard;
  syscall_hooks().recv = recv_always_eagain;
  Result<std::optional<Message>> polled = channel->poll();
  ASSERT_TRUE(polled.ok());
  EXPECT_FALSE(polled.value().has_value());
  EXPECT_FALSE(channel->closed());
}

// The poll-backend wait() retries EINTR with the remaining timeout instead
// of reporting a spurious failure or hanging.
TEST(EintrRegression, EventLoopWaitRetriesInterruptedPoll) {
  EventLoop loop(EventLoop::Backend::kPoll);
  ASSERT_TRUE(loop.valid());
  SocketPair pair;
  ASSERT_TRUE(loop.add(pair.fds[0], kEventReadable).ok());
  char byte = 'z';
  ASSERT_EQ(::send(pair.fds[1], &byte, 1, 0), 1);

  ScopedSyscallOverride guard;
  g_poll_eintr_budget.store(2);
  syscall_hooks().poll = poll_eintr_then_real;
  std::vector<EventLoop::Ready> ready;
  Result<int> n = loop.wait(1000, ready);
  ASSERT_TRUE(n.ok()) << n.error().message;
  EXPECT_EQ(n.value(), 1);
  EXPECT_TRUE(has_event(ready, pair.fds[0], kEventReadable));
  EXPECT_LE(g_poll_eintr_budget.load(), 0);
}

TEST(EintrRegression, AcceptRetriedAfterInterrupt) {
  std::string path = ::testing::TempDir() + "/harp_eventloop_accept.sock";
  Result<std::unique_ptr<UnixServer>> server = UnixServer::listen(path);
  ASSERT_TRUE(server.ok());
  Result<std::unique_ptr<Channel>> client = unix_connect(path);
  ASSERT_TRUE(client.ok());

  ScopedSyscallOverride guard;
  g_accept_eintr_budget.store(1);
  syscall_hooks().accept = accept_eintr_then_real;
  std::unique_ptr<Channel> accepted;
  for (int i = 0; i < 100 && accepted == nullptr; ++i) {
    Result<std::optional<std::unique_ptr<Channel>>> result = server.value()->accept();
    ASSERT_TRUE(result.ok()) << result.error().message;
    if (result.value().has_value()) accepted = std::move(*result.value());
  }
  EXPECT_NE(accepted, nullptr);
  EXPECT_LE(g_accept_eintr_budget.load(), 0);
}

// Event-loop send mode: a frame tail that overflows the socket buffer is
// queued, reported by has_pending_send(), and drained by flush_pending() on
// writable readiness — exactly how the RM server flushes slow clients.
TEST(EventLoop, NonblockingSendFlushesOnWritableReadiness) {
  SocketPair pair;
  int send_buf = 8 * 1024;
  ASSERT_EQ(::setsockopt(pair.fds[0], SOL_SOCKET, SO_SNDBUF, &send_buf, sizeof(send_buf)), 0);

  std::unique_ptr<Channel> sender = channel_from_fd(pair.release(0));
  std::unique_ptr<Channel> receiver = channel_from_fd(pair.release(1));
  sender->set_nonblocking_send(true);

  // 4000 grants (the decoder caps at 4096) is ~48 KB on the wire — far more
  // than the shrunken socket buffer, so a tail must be queued.
  ActivateMsg big;
  big.erv = platform::ExtendedResourceVector::from_threads(platform::raptor_lake(), {4, 2});
  for (std::int32_t i = 0; i < 4000; ++i) big.cores.push_back({0, i, 1});
  ASSERT_TRUE(sender->send(Message(big)).ok());
  EXPECT_TRUE(sender->has_pending_send());

  EventLoop loop;
  ASSERT_TRUE(loop.valid());
  int sender_fd = sender->native_handle();
  ASSERT_TRUE(loop.add(sender_fd, kEventWritable).ok());

  std::optional<Message> received;
  std::vector<EventLoop::Ready> ready;
  for (int i = 0; i < 10000 && !received.has_value(); ++i) {
    if (sender->has_pending_send()) {
      Result<int> n = loop.wait(1000, ready);
      ASSERT_TRUE(n.ok());
      if (has_event(ready, sender_fd, kEventWritable)) {
        ASSERT_TRUE(sender->flush_pending().ok());
      }
    }
    Result<std::optional<Message>> polled = receiver->poll();
    ASSERT_TRUE(polled.ok()) << polled.error().message;
    if (polled.value().has_value()) received = *polled.value();
  }
  ASSERT_TRUE(received.has_value());
  const ActivateMsg& out = std::get<ActivateMsg>(*received);
  ASSERT_EQ(out.cores.size(), big.cores.size());
  EXPECT_EQ(out.cores.back().core, big.cores.back().core);
  EXPECT_FALSE(sender->has_pending_send());
}

}  // namespace
}  // namespace harp::ipc
