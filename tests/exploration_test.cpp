// Tests for the runtime exploration engine (§5.3): maturity stages, the
// initial farthest-point heuristic, refinement-stage anomaly priority and
// model-discrepancy selection, budget handling, the NFC surrogate, and the
// exact stage boundaries under a scripted measurement stream.
#include <gtest/gtest.h>

#include <set>

#include "src/common/check.hpp"
#include "src/harp/exploration.hpp"
#include "src/harp/policy.hpp"
#include "src/model/catalog.hpp"
#include "src/platform/hardware.hpp"
#include "src/sim/runner.hpp"

namespace harp::core {
namespace {

platform::HardwareDescription hw() { return platform::raptor_lake(); }

platform::ExtendedResourceVector erv(int p, int e) {
  return platform::ExtendedResourceVector::from_threads(hw(), {p, e});
}

/// Record a fully measured configuration using the ground-truth model.
void measure(OperatingPointTable& table, const model::AppBehavior& app,
             const platform::ExtendedResourceVector& config, int times = 20) {
  model::AppRates rates = model::exclusive_rates(app, hw(), config, 0.0);
  for (int i = 0; i < times; ++i)
    table.record_measurement(config, rates.measured_gips, rates.power_w);
}

TEST(Stage, ThresholdsFollowConfig) {
  platform::HardwareDescription machine = hw();
  ExplorationConfig config;
  AppExplorer explorer(machine, config);
  model::WorkloadCatalog catalog = model::WorkloadCatalog::raptor_lake();
  const model::AppBehavior& app = catalog.app("ft.C");

  OperatingPointTable table("ft.C");
  EXPECT_EQ(explorer.stage(table), MaturityStage::kInitial);
  std::vector<platform::ExtendedResourceVector> all = platform::enumerate_coarse_points(machine);
  for (int i = 0; i < config.initial_points; ++i) measure(table, app, all[static_cast<std::size_t>(i * 7)]);
  EXPECT_EQ(explorer.stage(table), MaturityStage::kRefinement);
  for (int i = config.initial_points; i < config.stable_points; ++i)
    measure(table, app, all[static_cast<std::size_t>(i * 7)]);
  EXPECT_EQ(explorer.stage(table), MaturityStage::kStable);
  EXPECT_EQ(explorer.measured_configs(table), config.stable_points);
}

TEST(Stage, PartialMeasurementsDoNotCount) {
  AppExplorer explorer(hw(), ExplorationConfig{});
  model::WorkloadCatalog catalog = model::WorkloadCatalog::raptor_lake();
  OperatingPointTable table("ft.C");
  measure(table, catalog.app("ft.C"), erv(4, 4), 19);  // one short of 20
  EXPECT_EQ(explorer.measured_configs(table), 0);
  EXPECT_EQ(explorer.stage(table), MaturityStage::kInitial);
}

TEST(SelectNext, FirstPickIsLargestInBudget) {
  AppExplorer explorer(hw(), ExplorationConfig{});
  OperatingPointTable table("fresh");
  auto pick = explorer.select_next(table, {4, 8});
  ASSERT_TRUE(pick.has_value());
  // Largest thread count within (4 P-cores, 8 E-cores) = 8 P-threads + 8 E.
  EXPECT_EQ(pick->total_threads(), 16);
  EXPECT_LE(pick->cores_used(0), 4);
  EXPECT_LE(pick->cores_used(1), 8);
}

TEST(SelectNext, InitialStageMaximisesDiversity) {
  platform::HardwareDescription machine = hw();
  AppExplorer explorer(machine, ExplorationConfig{});
  model::WorkloadCatalog catalog = model::WorkloadCatalog::raptor_lake();
  OperatingPointTable table("ft.C");
  platform::ExtendedResourceVector full = platform::ExtendedResourceVector::full(machine);
  measure(table, catalog.app("ft.C"), full);
  auto pick = explorer.select_next(table, {8, 16});
  ASSERT_TRUE(pick.has_value());
  // Farthest-point sampling: the pick must be a distant corner of the
  // configuration space, far from the measured full-machine point.
  EXPECT_GT(pick->normalized_distance(full, machine), 1.5);
}

TEST(SelectNext, NeverRepeatsMeasuredConfigs) {
  platform::HardwareDescription machine = hw();
  ExplorationConfig config;
  AppExplorer explorer(machine, config);
  model::WorkloadCatalog catalog = model::WorkloadCatalog::raptor_lake();
  const model::AppBehavior& app = catalog.app("cg.C");
  OperatingPointTable table("cg.C");
  std::set<platform::ExtendedResourceVector> visited;
  for (int step = 0; step < 30; ++step) {
    auto pick = explorer.select_next(table, {8, 16});
    ASSERT_TRUE(pick.has_value());
    EXPECT_TRUE(visited.insert(*pick).second) << "re-selected a measured config";
    measure(table, app, *pick);
  }
}

TEST(SelectNext, RespectsBudget) {
  platform::HardwareDescription machine = hw();
  AppExplorer explorer(machine, ExplorationConfig{});
  model::WorkloadCatalog catalog = model::WorkloadCatalog::raptor_lake();
  const model::AppBehavior& app = catalog.app("cg.C");
  OperatingPointTable table("cg.C");
  for (int step = 0; step < 10; ++step) {
    auto pick = explorer.select_next(table, {2, 3});
    ASSERT_TRUE(pick.has_value());
    EXPECT_LE(pick->cores_used(0), 2);
    EXPECT_LE(pick->cores_used(1), 3);
    measure(table, app, *pick);
  }
}

TEST(SelectNext, ExhaustedBudgetReturnsNothing) {
  platform::HardwareDescription machine = hw();
  AppExplorer explorer(machine, ExplorationConfig{});
  model::WorkloadCatalog catalog = model::WorkloadCatalog::raptor_lake();
  const model::AppBehavior& app = catalog.app("cg.C");
  OperatingPointTable table("cg.C");
  // Budget (1 P-core, 0 E): the only configurations are P[1x1t] and P[1x2t].
  int picks = 0;
  while (picks < 10) {
    auto pick = explorer.select_next(table, {1, 0});
    if (!pick.has_value()) break;
    measure(table, app, *pick);
    ++picks;
  }
  EXPECT_EQ(explorer.measured_configs(table), 2);
}

TEST(Stage, BoundariesAreExactUnderScriptedStream) {
  // Feed measurements one at a time and check the stage after every single
  // measurement: the transitions must land exactly when the
  // `initial_points`-th / `stable_points`-th configuration completes its
  // final measurement — never one early (on a partially measured config)
  // and never one late.
  platform::HardwareDescription machine = hw();
  ExplorationConfig config;
  config.initial_points = 3;
  config.stable_points = 6;
  config.measurements_per_point = 4;
  AppExplorer explorer(machine, config);
  model::WorkloadCatalog catalog = model::WorkloadCatalog::raptor_lake();
  const model::AppBehavior& app = catalog.app("ft.C");

  OperatingPointTable table("ft.C");
  for (int completed = 0; completed < config.stable_points; ++completed) {
    auto pick = explorer.select_next(table, {8, 16});
    ASSERT_TRUE(pick.has_value());
    model::AppRates rates = model::exclusive_rates(app, machine, *pick, 0.0);
    for (int m = 1; m <= config.measurements_per_point; ++m) {
      table.record_measurement(*pick, rates.measured_gips, rates.power_w);
      int full = completed + (m == config.measurements_per_point ? 1 : 0);
      EXPECT_EQ(explorer.measured_configs(table), full)
          << "after measurement " << m << " of config " << completed + 1;
      MaturityStage expected = full < config.initial_points ? MaturityStage::kInitial
                               : full < config.stable_points ? MaturityStage::kRefinement
                                                             : MaturityStage::kStable;
      EXPECT_EQ(explorer.stage(table), expected)
          << "after measurement " << m << " of config " << completed + 1;
    }
  }
  EXPECT_EQ(explorer.stage(table), MaturityStage::kStable);
}

TEST(Stage, StableStageStopsPerturbingApp) {
  // Once an application reaches the stable stage, the RM leaves it alone:
  // with a long stable_realloc_interval its active configuration must not
  // change again for the rest of the run.
  HarpOptions options;
  options.exploration.initial_points = 3;
  options.exploration.stable_points = 8;
  options.exploration.stable_realloc_interval = 100000;  // effectively never
  HarpPolicy policy(options);

  sim::RunOptions run_options;
  // Long enough to pass the stable transition (~8 s with these thresholds)
  // by a wide margin, short enough that the app does not complete and
  // restart (a restart legitimately triggers a fresh allocation).
  run_options.repeat_horizon = 35.0;
  double stable_at = -1.0;
  std::optional<platform::ExtendedResourceVector> stable_config;
  int changes_after_stable = 0;
  run_options.tick_hook = [&](double now) {
    if (!policy.all_stable()) return;
    if (stable_at < 0.0) stable_at = now;
    // The stage flip itself applies one final allocation within the next few
    // ticks; give it a one-second grace window, then the config must freeze.
    if (now - stable_at < 1.0) return;
    auto active = policy.active_configs();
    auto it = active.find("mg.C");
    if (it == active.end()) return;
    if (!stable_config.has_value()) {
      stable_config = it->second;
    } else if (!(*stable_config == it->second)) {
      ++changes_after_stable;
      stable_config = it->second;
    }
  };

  sim::ScenarioRunner runner(hw(), model::WorkloadCatalog::raptor_lake(),
                             model::Scenario{"mg.C", {{"mg.C", 0.0}}}, run_options);
  (void)runner.run(policy);
  ASSERT_GE(stable_at, 0.0) << "never reached the stable stage";
  ASSERT_TRUE(stable_config.has_value());
  EXPECT_EQ(changes_after_stable, 0) << "stable-stage app was reconfigured";
}

TEST(NfcModel, PredictsMeasuredSurface) {
  platform::HardwareDescription machine = hw();
  model::WorkloadCatalog catalog = model::WorkloadCatalog::raptor_lake();
  const model::AppBehavior& app = catalog.app("sp.C");
  std::vector<OperatingPoint> measured;
  std::vector<platform::ExtendedResourceVector> all = platform::enumerate_coarse_points(machine);
  for (std::size_t i = 0; i < all.size(); i += 17) {
    model::AppRates rates = model::exclusive_rates(app, machine, all[i], 0.0);
    OperatingPoint p;
    p.erv = all[i];
    p.nfc = {rates.measured_gips, rates.power_w};
    measured.push_back(p);
  }
  NfcModel surrogate(2);
  surrogate.fit(measured, 3, true);
  ASSERT_TRUE(surrogate.trained());
  // Held-out configs predicted within 30 %.
  double total_err = 0.0;
  int n = 0;
  for (std::size_t i = 5; i < all.size(); i += 23) {
    model::AppRates rates = model::exclusive_rates(app, machine, all[i], 0.0);
    NonFunctional pred = surrogate.predict(all[i]);
    total_err += std::abs(pred.utility - rates.measured_gips) / rates.measured_gips;
    ++n;
  }
  EXPECT_LT(total_err / n, 0.3);
}

TEST(NfcModel, RequiresData) {
  NfcModel surrogate(2);
  EXPECT_THROW(surrogate.fit({}, 3, false), CheckFailure);
  EXPECT_THROW(surrogate.predict(erv(1, 0)), CheckFailure);
}

TEST(StageNames, Render) {
  EXPECT_STREQ(to_string(MaturityStage::kInitial), "initial");
  EXPECT_STREQ(to_string(MaturityStage::kRefinement), "refinement");
  EXPECT_STREQ(to_string(MaturityStage::kStable), "stable");
}

}  // namespace
}  // namespace harp::core
