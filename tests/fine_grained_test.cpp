// Tests for fine-grained operating points: validation, the coarse
// projection sent to the RM, activation matching, and serialisation.
#include <gtest/gtest.h>

#include <cstdio>

#include "src/common/check.hpp"
#include "src/libharp/fine_grained.hpp"
#include "src/platform/hardware.hpp"

namespace harp::client {
namespace {

/// Parse a JSON literal the test knows is syntactically valid; fails the
/// test (and returns null) on a parse error instead of touching the Result.
json::Value doc(const std::string& text) {
  Result<json::Value> r = json::parse(text);
  EXPECT_TRUE(r.ok()) << "parse failed: " << text;
  if (!r.ok()) return json::Value();
  return std::move(r).take();
}

platform::HardwareDescription hw() { return platform::odroid_xu3e(); }

FineGrainedPoint make_point(int big, int little, double utility, double power) {
  FineGrainedPoint p;
  p.erv = platform::ExtendedResourceVector::from_threads(hw(), {big, little});
  p.utility = utility;
  p.power_w = power;
  return p;
}

TEST(FineGrained, CoarseProjectionHidesDetail) {
  FineGrainedDescription description("mandelbrot");
  FineGrainedPoint p = make_point(2, 2, 100.0, 4.0);
  p.knobs["pipeline_depth"] = 3;
  p.thread_types = {0, 0, 1, 1};
  description.add(p);

  auto coarse = description.coarse_points();
  ASSERT_EQ(coarse.size(), 1u);
  EXPECT_TRUE(coarse[0].erv == p.erv);
  EXPECT_DOUBLE_EQ(coarse[0].utility, 100.0);
  // The wire message format has no field for knobs or thread mappings —
  // the type system itself enforces §4.1.2's information hiding.
}

TEST(FineGrained, MatchResolvesActivation) {
  FineGrainedDescription description("app");
  FineGrainedPoint fast = make_point(4, 0, 200.0, 6.0);
  fast.knobs["algorithm"] = 1;
  FineGrainedPoint efficient = make_point(0, 4, 90.0, 1.5);
  efficient.knobs["algorithm"] = 2;
  description.add(fast);
  description.add(efficient);

  const FineGrainedPoint* match =
      description.match(platform::ExtendedResourceVector::from_threads(hw(), {0, 4}));
  ASSERT_NE(match, nullptr);
  EXPECT_DOUBLE_EQ(match->knobs.at("algorithm"), 2);
  EXPECT_EQ(description.match(platform::ExtendedResourceVector::from_threads(hw(), {1, 1})),
            nullptr);
}

TEST(FineGrained, FirstVariantWinsOnSharedErv) {
  FineGrainedDescription description("app");
  FineGrainedPoint a = make_point(2, 0, 50.0, 3.0);
  a.knobs["variant"] = 1;
  FineGrainedPoint b = make_point(2, 0, 48.0, 2.9);
  b.knobs["variant"] = 2;
  description.add(a);
  description.add(b);
  const FineGrainedPoint* match =
      description.match(platform::ExtendedResourceVector::from_threads(hw(), {2, 0}));
  ASSERT_NE(match, nullptr);
  EXPECT_DOUBLE_EQ(match->knobs.at("variant"), 1);
}

TEST(FineGrained, ValidatesThreadMapping) {
  FineGrainedDescription description("app");
  FineGrainedPoint wrong_count = make_point(2, 1, 10.0, 1.0);
  wrong_count.thread_types = {0, 0};  // 3 threads in the vector, 2 listed
  EXPECT_THROW(description.add(wrong_count), CheckFailure);

  FineGrainedPoint wrong_split = make_point(2, 1, 10.0, 1.0);
  wrong_split.thread_types = {0, 1, 1};  // vector says 2 big + 1 LITTLE
  EXPECT_THROW(description.add(wrong_split), CheckFailure);

  FineGrainedPoint bad_type = make_point(1, 0, 10.0, 1.0);
  bad_type.thread_types = {7};
  EXPECT_THROW(description.add(bad_type), CheckFailure);

  FineGrainedPoint ok = make_point(2, 1, 10.0, 1.0);
  ok.thread_types = {0, 0, 1};
  EXPECT_NO_THROW(description.add(ok));
}

TEST(FineGrained, JsonRoundTrip) {
  FineGrainedDescription description("lms");
  FineGrainedPoint p = make_point(1, 3, 42.5, 1.75);
  p.knobs["chains"] = 4;
  p.knobs["hash_width"] = 256;
  p.thread_types = {0, 1, 1, 1};
  description.add(p);
  description.add(make_point(4, 4, 120.0, 7.0));

  auto restored = FineGrainedDescription::from_json(description.to_json());
  ASSERT_TRUE(restored.ok());
  const FineGrainedDescription& r = restored.value();
  EXPECT_EQ(r.app_name(), "lms");
  ASSERT_EQ(r.size(), 2u);
  EXPECT_DOUBLE_EQ(r.points()[0].knobs.at("hash_width"), 256);
  EXPECT_EQ(r.points()[0].thread_types, (std::vector<int>{0, 1, 1, 1}));
  EXPECT_TRUE(r.points()[1].knobs.empty());
}

TEST(FineGrained, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/harp_fine_test.json";
  FineGrainedDescription description("kpn");
  description.add(make_point(2, 2, 60.0, 3.5));
  ASSERT_TRUE(description.save(path).ok());
  auto loaded = FineGrainedDescription::load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 1u);
  std::remove(path.c_str());
}

TEST(FineGrained, FromJsonValidates) {
  EXPECT_FALSE(FineGrainedDescription::from_json(json::Value(1.0)).ok());
  EXPECT_FALSE(FineGrainedDescription::from_json(
                   doc(R"({"application":"x","points":[{"resources":[[1]],
                           "utility":-5,"power":1}]})"))
                   .ok());
  // Inconsistent thread mapping is rejected as a parse error, not a crash.
  EXPECT_FALSE(FineGrainedDescription::from_json(
                   doc(R"({"application":"x","points":[{"resources":[[1],[0]],
                           "utility":5,"power":1,"threads":[0,0]}]})"))
                   .ok());
}

}  // namespace
}  // namespace harp::client
