// Deterministic scenario tests for the dynamic lockset checker
// (src/common/race_registry.hpp, compiled in via -DHARP_RACE_CHECK=ON).
//
// Threads are sequenced with joins, never timing: the checker flags lock
// *discipline* violations (Eraser's lockset intersection), so a seeded
// inconsistently-locked access pattern fires even though the accesses are
// strictly ordered and no data race is observable at runtime. That is the
// point — the discipline bug is caught before the interleaving that makes
// it a real race ever happens.
//
// The companion assertions run the annotated tree (client, telemetry,
// in-process transport) through multi-thread access and require silence:
// regressions that drop a lock from a tracked structure's access path fail
// here. Removing HarpClient's internal mutex_ (the fix these tests pin)
// makes ClientPollTracksPendingQueueUnderOneLock report a violation.
#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "src/common/mutex.hpp"
#include "src/common/race_registry.hpp"
#include "src/ipc/transport.hpp"
#include "src/libharp/client.hpp"
#include "src/telemetry/clock.hpp"
#include "src/telemetry/metrics.hpp"
#include "src/telemetry/trace.hpp"

namespace harp {
namespace {

// Delegating channel whose send() optionally runs under its own harp::Mutex,
// making the send visible to the lock-order witness. `armed` lets a test
// instrument one specific send (e.g. the deregister farewell) without also
// tripping on construction-time registration traffic.
class LockedSendChannel : public ipc::Channel {
 public:
  LockedSendChannel(std::unique_ptr<ipc::Channel> inner, Mutex& send_mutex, const bool& armed)
      : inner_(std::move(inner)), send_mutex_(send_mutex), armed_(armed) {}
  Status send(const ipc::Message& message) override {
    if (armed_) {
      MutexLock lock(send_mutex_);
      // harp-lint: allow(r12 deliberate: holding a mutex across send is the seeded hazard this harness exists to witness)
      return inner_->send(message);
    }
    return inner_->send(message);
  }
  Result<std::optional<ipc::Message>> poll() override { return inner_->poll(); }
  bool closed() const override { return inner_->closed(); }
  void close() override { inner_->close(); }

 private:
  // harp-lint: allow(r8 inner_ is not guarded by send_mutex_: the mutex exists to wrap send only, the delegate itself is set once in the ctor)
  std::unique_ptr<ipc::Channel> inner_;
  Mutex& send_mutex_;
  const bool& armed_;
};

class RaceCheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RaceRegistry::instance().set_abort_on_race(false);
    RaceRegistry::instance().reset();
  }
  void TearDown() override {
    RaceRegistry::instance().reset();
    RaceRegistry::instance().set_abort_on_race(true);
  }
  std::size_t races() { return RaceRegistry::instance().race_count(); }
  std::size_t inversions() { return RaceRegistry::instance().inversion_count(); }
};

// TSan's own deadlock detector (rightly) reports the inversions the seeded
// scenarios below construct on purpose, which fails the run on its exit
// code even though every assertion passes. Those scenarios are exercised by
// the plain HARP_RACE_CHECK build; under TSan only the clean-tree silence
// tests are meaningful.
#if defined(__SANITIZE_THREAD__)
#define HARP_SKIP_UNDER_TSAN() \
  GTEST_SKIP() << "deliberately seeds a lock-order inversion; TSan reports it by design"
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HARP_SKIP_UNDER_TSAN() \
  GTEST_SKIP() << "deliberately seeds a lock-order inversion; TSan reports it by design"
#endif
#endif
#if !defined(HARP_SKIP_UNDER_TSAN)
#define HARP_SKIP_UNDER_TSAN() ((void)0)
#endif

TEST_F(RaceCheckTest, SeededDisciplineViolationFires) {
  Mutex lock_a;
  Mutex lock_b;
  int value = 0;

  // Main thread initialises under lock_a (exclusive phase). The worker's
  // first access under lock_b makes the object shared and seeds the
  // candidate lockset {lock_b}; its second access under lock_a intersects
  // that down to {} -> race. Main + one worker, not two sequential workers:
  // a joined thread's id can be reused, which would look like the same
  // thread and extend the exclusive phase.
  {
    MutexLock lock(lock_a);
    HARP_TRACK_SHARED(&value);
    value = 1;
  }
  std::thread worker([&] {
    {
      MutexLock lock(lock_b);
      HARP_TRACK_SHARED(&value);
      value = 2;
    }
    {
      MutexLock lock(lock_a);
      HARP_TRACK_SHARED(&value);
      value = 3;
    }
  });
  worker.join();
  EXPECT_EQ(races(), 1u);
  // The report names the access and both lock histories.
  EXPECT_NE(RaceRegistry::instance().last_report().find("&value"), std::string::npos);
  HARP_UNTRACK_SHARED(&value);
}

TEST_F(RaceCheckTest, ViolationReportIsByteIdenticalAcrossReruns) {
  // Reports must be reproducible run to run: objects, mutexes and threads
  // appear as first-appearance ids (o0, m0, t0), never raw addresses or
  // std::thread::ids, so race logs diff cleanly and the exact report text
  // below can be pinned. Rerunning the identical schedule (fresh stack
  // objects, fresh worker thread) must reproduce the report byte for byte.
  auto provoke = [] {
    RaceRegistry::instance().reset();
    Mutex lock_a;
    Mutex lock_b;
    int value = 0;
    {
      MutexLock lock(lock_a);
      HARP_TRACK_SHARED(&value);
      value = 1;
    }
    std::thread worker([&] {
      {
        MutexLock lock(lock_b);
        HARP_TRACK_SHARED(&value);
        value = 2;
      }
      {
        MutexLock lock(lock_a);
        HARP_TRACK_SHARED(&value);
        value = 3;
      }
    });
    worker.join();
    HARP_UNTRACK_SHARED(&value);
    return RaceRegistry::instance().last_report();
  };
  std::string first = provoke();
  std::string second = provoke();
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.find("0x"), std::string::npos) << first;
  EXPECT_EQ(first,
            "HARP_RACE_CHECK: lockset violation on '&value' (o0): thread t1 accessed "
            "'&value' holding {m0}; previous: thread t1 accessed '&value' holding {m1}; "
            "no common lock protects every access");
}

TEST_F(RaceCheckTest, ConsistentLockIsSilent) {
  Mutex lock_a;
  int value = 0;
  auto access = [&] {
    MutexLock lock(lock_a);
    HARP_TRACK_SHARED(&value);
    ++value;
  };
  access();
  std::thread worker(access);
  worker.join();
  access();
  EXPECT_EQ(races(), 0u);
  HARP_UNTRACK_SHARED(&value);
}

TEST_F(RaceCheckTest, SingleThreadInitializationIsExempt) {
  // Eraser's exclusive phase: unlocked single-threaded setup is fine.
  int value = 0;
  for (int i = 0; i < 4; ++i) {
    HARP_TRACK_SHARED(&value);
    value = i;
  }
  EXPECT_EQ(races(), 0u);
  HARP_UNTRACK_SHARED(&value);
}

TEST_F(RaceCheckTest, UntrackForgetsAddressForReuse) {
  Mutex lock_a;
  Mutex lock_b;
  int value = 0;
  {
    MutexLock lock(lock_a);
    HARP_TRACK_SHARED(&value);
    value = 1;
  }
  HARP_UNTRACK_SHARED(&value);
  // A "new object" at the same address starts a fresh exclusive phase:
  // the worker's differently-locked access owns it now, and main's
  // follow-up only refines the fresh candidate set — no race.
  std::thread worker([&] {
    MutexLock lock(lock_b);
    HARP_TRACK_SHARED(&value);
    value = 2;
  });
  worker.join();
  {
    MutexLock lock(lock_b);
    HARP_TRACK_SHARED(&value);
    value = 3;
  }
  EXPECT_EQ(races(), 0u);
  HARP_UNTRACK_SHARED(&value);
}

TEST_F(RaceCheckTest, SeededLockOrderInversionFires) {
  HARP_SKIP_UNDER_TSAN();
  // The deadlock needs both threads to stop INSIDE their critical sections
  // simultaneously; these joined threads never do, yet the witness still
  // fires: main establishes a -> b, the worker's b-then-a nesting reverses
  // an established order, which is reported at acquire time.
  Mutex lock_a;
  Mutex lock_b;
  {
    MutexLock outer(lock_a);
    MutexLock inner(lock_b);
  }
  std::thread worker([&] {
    MutexLock outer(lock_b);
    MutexLock inner(lock_a);
  });
  worker.join();
  EXPECT_EQ(inversions(), 1u);
  EXPECT_EQ(races(), 0u);  // no shared object involved: order-only finding
  EXPECT_EQ(RaceRegistry::instance().last_order_report(),
            "HARP_RACE_CHECK: lock-order inversion: thread t0 acquires m0 while holding "
            "{m1}, but the order m0 -> m1 is already established; two threads following "
            "both orders deadlock");
}

TEST_F(RaceCheckTest, TransitiveLockOrderInversionFires) {
  HARP_SKIP_UNDER_TSAN();
  // The established order may run through an intermediary: a -> b and
  // b -> c imply a before c, so c-then-a is an inversion even though no
  // thread ever nested exactly (c, a)'s reverse directly.
  Mutex lock_a;
  Mutex lock_b;
  Mutex lock_c;
  {
    MutexLock outer(lock_a);
    MutexLock inner(lock_b);
  }
  {
    MutexLock outer(lock_b);
    MutexLock inner(lock_c);
  }
  std::thread worker([&] {
    MutexLock outer(lock_c);
    MutexLock inner(lock_a);
  });
  worker.join();
  EXPECT_EQ(inversions(), 1u);
  EXPECT_NE(RaceRegistry::instance().last_order_report().find("m0 -> m2 -> m1"),
            std::string::npos)
      << RaceRegistry::instance().last_order_report();
}

TEST_F(RaceCheckTest, ConsistentNestingOrderIsSilent) {
  Mutex lock_a;
  Mutex lock_b;
  auto nest = [&] {
    MutexLock outer(lock_a);
    MutexLock inner(lock_b);
  };
  nest();
  std::thread worker(nest);
  worker.join();
  nest();
  EXPECT_EQ(inversions(), 0u);
}

TEST_F(RaceCheckTest, InversionReportIsByteIdenticalAcrossReruns) {
  HARP_SKIP_UNDER_TSAN();
  // Same reproducibility bar as lockset reports: stable first-appearance
  // ids, never addresses, so the identical schedule (fresh stack mutexes,
  // fresh worker) reproduces the report byte for byte.
  auto provoke = [] {
    RaceRegistry::instance().reset();
    Mutex lock_a;
    Mutex lock_b;
    {
      MutexLock outer(lock_a);
      MutexLock inner(lock_b);
    }
    std::thread worker([&] {
      MutexLock outer(lock_b);
      MutexLock inner(lock_a);
    });
    worker.join();
    return RaceRegistry::instance().last_order_report();
  };
  std::string first = provoke();
  std::string second = provoke();
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.find("0x"), std::string::npos) << first;
}

TEST_F(RaceCheckTest, TelemetrySinksAreSilentAcrossThreads) {
  telemetry::ManualClock clock;
  telemetry::Tracer tracer(&clock);
  telemetry::MetricsRegistry metrics;
  auto use = [&] {
    tracer.instant(telemetry::EventType::kMeasurement, "race_check");
    metrics.counter("race_check_total").inc();
    (void)metrics.counter_value("race_check_total");
    (void)tracer.events();
  };
  use();
  std::thread worker(use);
  worker.join();
  use();
  EXPECT_EQ(races(), 0u);
  EXPECT_EQ(inversions(), 0u) << RaceRegistry::instance().last_order_report();
}

TEST_F(RaceCheckTest, InProcessChannelQueuesAreSilentAcrossThreads) {
  auto [left, right] = ipc::make_in_process_pair();
  ipc::Channel* tx = left.get();
  ipc::Channel* rx = right.get();
  (void)tx->send(ipc::Message(ipc::Heartbeat{}));
  std::thread receiver([&] { (void)rx->poll(); });
  receiver.join();
  (void)tx->send(ipc::Message(ipc::Heartbeat{}));
  (void)rx->poll();
  EXPECT_EQ(races(), 0u);
}

TEST_F(RaceCheckTest, ClientPollTracksPendingQueueUnderOneLock) {
  // The regression this pins: HarpClient's link state machine and pending
  // queue are shared between the application threads that poll and the
  // threads that read state. All of it must stay behind client's mutex_ —
  // build with that mutex removed and this test reports a violation.
  auto [rm_end, app_end] = ipc::make_in_process_pair();
  client::Config config;
  config.app_name = "race_check";
  auto made = client::HarpClient::deferred(std::move(app_end), config);
  ASSERT_TRUE(made.ok());
  std::unique_ptr<client::HarpClient> harp_client = std::move(made).take();

  auto pump = [&] {
    (void)harp_client->poll(0.0);
    (void)harp_client->pending_sends();
    (void)harp_client->link_state();
  };
  pump();
  std::thread worker(pump);
  worker.join();
  pump();
  EXPECT_EQ(races(), 0u) << RaceRegistry::instance().last_report();
  EXPECT_EQ(inversions(), 0u) << RaceRegistry::instance().last_order_report();
}

TEST_F(RaceCheckTest, DeregisterFarewellSendRunsOutsideClientMutex) {
  // Red-green pin for the deregister() fix: the farewell send used to run
  // with the client mutex held, establishing mutex_ -> send_mutex through
  // the instrumented channel below. The reverse nesting afterwards (send
  // lock held while reading client state — the shape of any send-side hook
  // that consults the client) then closes an inversion. With the send
  // hoisted out of the critical section the witness stays silent.
  Mutex send_mutex;
  bool armed = false;
  auto [rm_end, app_end] = ipc::make_in_process_pair();
  client::Config config;
  config.app_name = "race_check";
  auto made = client::HarpClient::deferred(
      std::make_unique<LockedSendChannel>(std::move(app_end), send_mutex, armed), config);
  ASSERT_TRUE(made.ok());
  std::unique_ptr<client::HarpClient> harp_client = std::move(made).take();

  armed = true;  // instrument only the farewell send
  (void)harp_client->deregister();
  {
    MutexLock lock(send_mutex);
    (void)harp_client->link_state();
  }
  EXPECT_EQ(inversions(), 0u) << RaceRegistry::instance().last_order_report();
}

}  // namespace
}  // namespace harp
