// Tests for the execution-stage extension (§7 outlook): phase-dependent
// behaviour in the model and simulator, stage notification, and the
// phase-aware HARP policy.
#include <gtest/gtest.h>

#include "src/common/check.hpp"
#include "src/harp/policy.hpp"
#include "src/model/catalog.hpp"
#include "src/platform/hardware.hpp"
#include "src/sched/baselines.hpp"
#include "src/sim/runner.hpp"

namespace harp {
namespace {

model::AppBehavior two_phase_app() {
  model::AppBehavior app;
  app.name = "phased";
  app.framework = "openmp";
  app.adaptivity = model::AdaptivityType::kScalable;
  app.total_work_gi = 400;
  app.ipc = {1.0, 1.0};
  model::AppBehavior::Phase compute;
  compute.fraction = 0.5;
  compute.mem_fraction = 0.02;
  compute.ipc_scale = 1.2;
  model::AppBehavior::Phase memory;
  memory.fraction = 0.5;
  memory.mem_fraction = 0.9;
  memory.ipc_scale = 0.6;
  app.phases = {compute, memory};
  return app;
}

TEST(PhaseModel, PhaseAtProgress) {
  model::AppBehavior app = two_phase_app();
  EXPECT_EQ(app.phase_at(0.0), 0);
  EXPECT_EQ(app.phase_at(0.49), 0);
  EXPECT_EQ(app.phase_at(0.51), 1);
  EXPECT_EQ(app.phase_at(1.0), 1);
  model::AppBehavior single;
  single.ipc = {1.0, 1.0};
  EXPECT_EQ(single.phase_at(0.7), 0);
  EXPECT_FALSE(single.multi_phase());
  EXPECT_TRUE(app.multi_phase());
}

TEST(PhaseModel, BehaviorInPhaseAppliesOverrides) {
  model::AppBehavior app = two_phase_app();
  model::AppBehavior compute = app.behavior_in_phase(0);
  model::AppBehavior memory = app.behavior_in_phase(1);
  EXPECT_DOUBLE_EQ(compute.mem_fraction, 0.02);
  EXPECT_DOUBLE_EQ(memory.mem_fraction, 0.9);
  EXPECT_DOUBLE_EQ(compute.ipc[0], 1.2);
  EXPECT_DOUBLE_EQ(memory.ipc[0], 0.6);
  EXPECT_FALSE(compute.multi_phase());  // effective behaviour is single-stage
  EXPECT_THROW(app.behavior_in_phase(2), CheckFailure);
}

TEST(PhaseModel, CatalogValidatesPhases) {
  model::WorkloadCatalog catalog = model::WorkloadCatalog::raptor_lake();
  model::AppBehavior bad = two_phase_app();
  bad.name = "bad-phases";
  bad.phases[0].fraction = 0.7;  // sums to 1.2
  EXPECT_THROW(catalog.add_app(bad), CheckFailure);
  EXPECT_THROW(catalog.add_app(catalog.app("ep.C")), CheckFailure);  // duplicate
  model::AppBehavior good = two_phase_app();
  EXPECT_NO_THROW(catalog.add_app(good));
  EXPECT_TRUE(catalog.has_app("phased"));
}

TEST(PhaseSim, RunnerReportsStageTransitions) {
  platform::HardwareDescription hw = platform::raptor_lake();
  model::WorkloadCatalog catalog = model::WorkloadCatalog::raptor_lake();
  catalog.add_app(two_phase_app());

  class PhaseProbe : public sim::Policy {
   public:
    std::string name() const override { return "probe"; }
    void attach(sim::RunnerApi& api) override { api_ = &api; }
    void tick() override {
      for (const sim::RunningAppInfo& app : api_->running_apps())
        phases_.insert(api_->app_phase(app.id));
    }
    sim::RunnerApi* api_ = nullptr;
    std::set<int> phases_;
  };
  PhaseProbe probe;
  sim::ScenarioRunner runner(hw, catalog, model::Scenario{"phased", {{"phased", 0.0}}},
                             sim::RunOptions{});
  sim::RunResult result = runner.run(probe);
  EXPECT_EQ(result.apps[0].completions, 1);
  EXPECT_EQ(probe.phases_, (std::set<int>{0, 1}));
}

TEST(PhaseSim, MemoryStageIsSlowerOnSameAllocation) {
  // The memory stage's effective behaviour must actually bite: the same app
  // on the same machine progresses slower per second in stage 1 than 0.
  platform::HardwareDescription hw = platform::raptor_lake();
  model::AppBehavior app = two_phase_app();
  model::AppRates compute = model::exclusive_rates(
      app.behavior_in_phase(0), hw, platform::ExtendedResourceVector::full(hw), 0.0);
  model::AppRates memory = model::exclusive_rates(
      app.behavior_in_phase(1), hw, platform::ExtendedResourceVector::full(hw), 0.0);
  EXPECT_GT(compute.useful_gips, 2.0 * memory.useful_gips);
}

TEST(PhasePolicy, KeepsPerStageTables) {
  platform::HardwareDescription hw = platform::raptor_lake();
  model::WorkloadCatalog catalog = model::WorkloadCatalog::raptor_lake();
  model::AppBehavior app = two_phase_app();
  app.total_work_gi = 3000;  // long enough to learn both stages
  catalog.add_app(app);

  core::HarpOptions options;
  options.phase_aware = true;
  core::HarpPolicy policy(options);
  sim::RunOptions run_options;
  run_options.repeat_horizon = 90.0;
  sim::ScenarioRunner runner(hw, catalog, model::Scenario{"phased", {{"phased", 0.0}}},
                             run_options);
  (void)runner.run(policy);

  auto tables = policy.tables();
  ASSERT_TRUE(tables.count("phased#0") == 1) << "missing stage-0 table";
  ASSERT_TRUE(tables.count("phased#1") == 1) << "missing stage-1 table";
  EXPECT_EQ(tables.count("phased"), 0u);  // no blurred joint table
  EXPECT_GT(tables.at("phased#0").size(), 3u);
  EXPECT_GT(tables.at("phased#1").size(), 3u);
  // The compute stage's best utility far exceeds the memory stage's.
  EXPECT_GT(tables.at("phased#0").utility_max(),
            1.5 * tables.at("phased#1").utility_max());
}

TEST(PhasePolicy, DisabledByDefault) {
  platform::HardwareDescription hw = platform::raptor_lake();
  model::WorkloadCatalog catalog = model::WorkloadCatalog::raptor_lake();
  catalog.add_app(two_phase_app());
  core::HarpPolicy policy{core::HarpOptions{}};
  sim::RunOptions run_options;
  run_options.repeat_horizon = 20.0;
  sim::ScenarioRunner runner(hw, catalog, model::Scenario{"phased", {{"phased", 0.0}}},
                             run_options);
  (void)runner.run(policy);
  auto tables = policy.tables();
  EXPECT_EQ(tables.count("phased"), 1u);
  EXPECT_EQ(tables.count("phased#0"), 0u);
}

}  // namespace
}  // namespace harp
