// Deterministic scenario harness for RM ↔ libharp fault testing.
//
// Runs a real RmServer and N real HarpClients in ONE thread on a virtual
// clock, wired through fault-injecting in-process channels. Because nothing
// sleeps and every fault decision comes from a seeded PRNG (FaultPlan), a
// scripted timeline replays bit-identically: a failing scenario is precisely
// reproducible from its seed.
//
// Invariants checked after every step (see check_invariants):
//   - no core is granted to two registered clients (spatial isolation),
//   - the granted resource vector never exceeds the machine's capacity,
//   - no client is retained past its lease.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "src/harp/rm_server.hpp"
#include "src/ipc/fault_injection.hpp"
#include "src/libharp/client.hpp"
#include "src/telemetry/clock.hpp"
#include "src/telemetry/metrics.hpp"
#include "src/telemetry/trace.hpp"

namespace harp::scenario {

/// One simulated application process: the HarpClient plus its liveness flag.
struct App {
  std::unique_ptr<client::HarpClient> client;
  bool alive = true;  ///< false = no longer polled (crashed or hung)
};

class World {
 public:
  explicit World(platform::HardwareDescription hw, core::RmServerOptions options = {})
      : hw_(std::move(hw)), options_(options) {
    options_.tracer = &tracer_;
    options_.metrics = &metrics_;
    rm_ = std::make_unique<core::RmServer>(hw_, options_);
  }

  core::RmServer& rm() { return *rm_; }
  double now() const { return now_; }
  /// Every RM, client, and channel in the world reports into these; trace
  /// timestamps follow the virtual clock, so a scripted scenario exports a
  /// byte-identical trace on every run.
  telemetry::Tracer& tracer() { return tracer_; }
  telemetry::MetricsRegistry& metrics() { return metrics_; }

  /// Spawn a client whose link to the RM runs through a FaultInjectingChannel
  /// on the app side (app→RM faults) and optionally one on the RM side
  /// (RM→app faults). Reconnects create fresh fault-wrapped pairs against
  /// whatever RmServer is current, so RM restarts are transparent.
  App* spawn(client::Config config, ipc::FaultPlan app_side_plan,
             ipc::FaultPlan rm_side_plan = ipc::FaultPlan::clean(),
             client::Callbacks callbacks = {}) {
    auto factory = [this, app_side_plan, rm_side_plan, name = config.app_name,
                    dials = std::make_shared<std::uint64_t>(0)]()
        -> Result<std::unique_ptr<ipc::Channel>> {
      auto [rm_end, app_end] = ipc::make_in_process_pair();
      ipc::FaultPlan rm_plan = rm_side_plan;
      ipc::FaultPlan app_plan = app_side_plan;
      // Each dial gets an independent (but still deterministic) fault stream.
      rm_plan.seed += *dials;
      app_plan.seed += *dials;
      ++*dials;
      auto rm_channel =
          std::make_unique<ipc::FaultInjectingChannel>(std::move(rm_end), rm_plan);
      rm_channel->set_telemetry(ipc::ChannelTelemetry::for_scope(&tracer_, &metrics_, "rm"));
      rm_->adopt_channel(std::move(rm_channel));
      auto app_channel =
          std::make_unique<ipc::FaultInjectingChannel>(std::move(app_end), app_plan);
      app_channel->set_telemetry(ipc::ChannelTelemetry::for_scope(&tracer_, &metrics_, name));
      return std::unique_ptr<ipc::Channel>(std::move(app_channel));
    };
    Result<std::unique_ptr<ipc::Channel>> first = factory();
    EXPECT_TRUE(first.ok()) << first.error().message;
    if (!first.ok()) return nullptr;
    config.tracer = &tracer_;
    config.metrics = &metrics_;
    auto made = client::HarpClient::deferred(std::move(first).take(), std::move(config),
                                             std::move(callbacks), factory);
    EXPECT_TRUE(made.ok()) << made.error().message;
    apps_.push_back(std::make_unique<App>());
    apps_.back()->client = std::move(made).take();
    return apps_.back().get();
  }

  /// Advance the virtual clock by dt and run one RM cycle plus one poll of
  /// every live client. Invariants are checked after the cycle.
  void step(double dt) {
    now_ += dt;
    clock_.set(now_);
    rm_->poll(now_);
    for (const auto& app : apps_)
      if (app->alive) (void)app->client->poll(now_);
    check_invariants();
  }

  /// Run `seconds` of virtual time in dt increments.
  void run(double seconds, double dt = 0.05) {
    int steps = static_cast<int>(seconds / dt + 0.5);
    for (int i = 0; i < steps; ++i) step(dt);
  }

  /// Advance the clock and run ONLY the RM cycle — exposes windows where
  /// clients have not yet reacted (e.g. an ack sitting in a dead queue), and
  /// proves single-cycle properties like lease reclamation.
  void step_rm_only(double dt) {
    now_ += dt;
    clock_.set(now_);
    rm_->poll(now_);
    check_invariants();
  }

  /// Abrupt application crash: the link drops with no Deregister notice and
  /// the process is never polled again.
  void crash(App& app) {
    app.client->drop_link();
    app.alive = false;
  }

  /// Application hang: the process stops polling (and heartbeating) but its
  /// socket stays open — only the lease can reclaim its cores.
  void hang(App& app) { app.alive = false; }

  /// Tear down the RM daemon and start a fresh one (same hardware/options).
  /// Clients notice the dead link and reconnect to the new instance through
  /// their channel factories.
  void restart_rm() { rm_ = std::make_unique<core::RmServer>(hw_, options_); }

  /// Protocol-level safety invariants; checked after every step.
  void check_invariants() const {
    std::vector<core::ClientSnapshot> snaps = rm_->snapshot();
    std::set<std::pair<int, int>> used;
    std::vector<int> cores_per_type(hw_.core_types.size(), 0);
    for (const core::ClientSnapshot& snap : snaps) {
      if (!snap.registered) continue;
      for (const ipc::ActivateMsg::CoreGrant& grant : snap.granted) {
        EXPECT_TRUE(used.insert({grant.type, grant.core}).second)
            << "core (" << grant.type << ", " << grant.core << ") granted to two clients"
            << " (one of them '" << snap.name << "') at t=" << now_;
        ASSERT_GE(grant.type, 0);
        ASSERT_LT(static_cast<std::size_t>(grant.type), cores_per_type.size());
        ++cores_per_type[static_cast<std::size_t>(grant.type)];
      }
    }
    for (std::size_t t = 0; t < cores_per_type.size(); ++t) {
      EXPECT_LE(cores_per_type[t], hw_.core_types[t].core_count)
          << "granted cores of type " << t << " exceed capacity at t=" << now_;
    }
    if (options_.lease_seconds > 0.0) {
      for (const core::ClientSnapshot& snap : snaps) {
        if (snap.last_heard < 0.0) continue;  // adopted, not yet polled
        EXPECT_LE(now_ - snap.last_heard, options_.lease_seconds + 1e-9)
            << "client '" << snap.name << "' retained past its lease at t=" << now_;
      }
    }
  }

  /// Registered clients currently known to the RM with the given name.
  int registered_count(const std::string& name) const {
    int count = 0;
    for (const core::ClientSnapshot& snap : rm_->snapshot())
      if (snap.registered && snap.name == name) ++count;
    return count;
  }

 private:
  platform::HardwareDescription hw_;
  core::RmServerOptions options_;
  double now_ = 0.0;
  // Telemetry must outlive the RM, the clients, and their channels (all hold
  // raw pointers into it), so it is declared before them.
  telemetry::ManualClock clock_;
  telemetry::Tracer tracer_{&clock_};
  telemetry::MetricsRegistry metrics_;
  std::unique_ptr<core::RmServer> rm_;
  std::vector<std::unique_ptr<App>> apps_;
};

}  // namespace harp::scenario
