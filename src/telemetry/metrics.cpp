#include "src/telemetry/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "src/common/check.hpp"
#include "src/common/race_registry.hpp"

namespace harp::telemetry {

std::string format_number(double value) {
  char buffer[64];
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      std::abs(value) < 1e15) {
    std::snprintf(buffer, sizeof(buffer), "%lld", static_cast<long long>(value));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  }
  return buffer;
}

void Gauge::add(double delta) {
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta, std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)), buckets_(upper_bounds_.size() + 1) {
  HARP_CHECK_MSG(!upper_bounds_.empty(), "histogram needs at least one bucket bound");
  HARP_CHECK_MSG(std::is_sorted(upper_bounds_.begin(), upper_bounds_.end(),
                                [](double a, double b) { return a <= b; }),
                 "histogram bounds must be strictly ascending");
}

void Histogram::observe(double value) {
  // First bound >= value; inclusive upper edges so observe(bound) lands in
  // that bound's bucket (asserted by the bucket-edge tests).
  std::size_t bucket = upper_bounds_.size();
  for (std::size_t i = 0; i < upper_bounds_.size(); ++i) {
    if (value <= upper_bounds_[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + value, std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

MetricsRegistry::~MetricsRegistry() { HARP_UNTRACK_SHARED(&counters_); }

Counter& MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(mutex_);
  HARP_TRACK_SHARED(&counters_);
  auto it = counters_.find(name);
  if (it == counters_.end()) it = counters_.emplace(name, std::make_unique<Counter>()).first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(name, std::make_unique<Histogram>(std::move(upper_bounds))).first;
  return *it->second;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  MutexLock lock(mutex_);
  HARP_TRACK_SHARED(&counters_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

std::string MetricsRegistry::text_snapshot() const {
  MutexLock lock(mutex_);
  std::string out;
  char line[128];
  for (const auto& [name, counter] : counters_) {
    std::snprintf(line, sizeof(line), "counter %s %" PRIu64 "\n", name.c_str(),
                  counter->value());
    out += line;
  }
  for (const auto& [name, gauge] : gauges_)
    out += "gauge " + name + " " + format_number(gauge->value()) + "\n";
  for (const auto& [name, histogram] : histograms_) {
    out += "histogram " + name + " count " + format_number(static_cast<double>(histogram->count())) +
           " sum " + format_number(histogram->sum());
    std::vector<std::uint64_t> counts = histogram->bucket_counts();
    const std::vector<double>& bounds = histogram->upper_bounds();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      std::string edge = i < bounds.size() ? format_number(bounds[i]) : "+inf";
      out += " le=" + edge + ":" + format_number(static_cast<double>(counts[i]));
    }
    out += "\n";
  }
  return out;
}

}  // namespace harp::telemetry
