// Injected time source for the telemetry subsystem.
//
// Traces must be byte-reproducible (the determinism guarantee of
// DESIGN.md "Observability"), so the Tracer never reads a wall clock.
// Instead the component that owns the timeline — the scenario harness's
// virtual clock, HarpPolicy's sim::now(), or an RmServer driver's monotonic
// now_seconds — injects a Clock and keeps it current. Two runs that feed
// the same timeline therefore stamp identical event times.
#pragma once

#include <functional>
#include <utility>

namespace harp::telemetry {

/// Abstract time authority; now_seconds() must be monotone non-decreasing.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual double now_seconds() const = 0;
};

/// A clock advanced explicitly by its owner (virtual time). Single-writer:
/// the owner sets it from one thread; concurrent readers see a torn double
/// only if the owner violates that contract.
class ManualClock : public Clock {
 public:
  explicit ManualClock(double start_seconds = 0.0) : now_(start_seconds) {}

  double now_seconds() const override { return now_; }
  void set(double now_seconds) { now_ = now_seconds; }
  void advance(double dt_seconds) { now_ += dt_seconds; }

 private:
  double now_;
};

/// Adapts an external time source, e.g. a lambda reading sim::RunnerApi::now.
class FunctionClock : public Clock {
 public:
  explicit FunctionClock(std::function<double()> fn) : fn_(std::move(fn)) {}

  double now_seconds() const override { return fn_(); }

 private:
  std::function<double()> fn_;
};

}  // namespace harp::telemetry
