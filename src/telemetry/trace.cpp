#include "src/telemetry/trace.hpp"

#include <cstring>

#include "src/common/check.hpp"
#include "src/common/race_registry.hpp"

namespace harp::telemetry {

const char* to_string(EventType type) {
  switch (type) {
    case EventType::kAllocCycle: return "alloc_cycle";
    case EventType::kMmkpSolve: return "mmkp_solve";
    case EventType::kGrant: return "grant";
    case EventType::kStageTransition: return "stage_transition";
    case EventType::kExplorationSelect: return "exploration_select";
    case EventType::kMeasurement: return "measurement";
    case EventType::kIpcSend: return "ipc_send";
    case EventType::kIpcRecv: return "ipc_recv";
    case EventType::kFaultInjected: return "fault_injected";
    case EventType::kReconnect: return "reconnect";
    case EventType::kLinkDown: return "link_down";
    case EventType::kLease: return "lease_eviction";
    case EventType::kRegistration: return "registration";
    case EventType::kDseSweep: return "dse_sweep";
    case EventType::kQosRequest: return "qos_request";
    case EventType::kShardCycle: return "shard_cycle";
    case EventType::kRebalance: return "shard_rebalance";
  }
  return "?";
}

bool event_type_from_string(const std::string& name, EventType* out) {
  for (EventType type : kAllEventTypes) {
    if (name == to_string(type)) {
      *out = type;
      return true;
    }
  }
  return false;
}

const char* to_string(Phase phase) {
  switch (phase) {
    case Phase::kBegin: return "B";
    case Phase::kEnd: return "E";
    case Phase::kInstant: return "i";
  }
  return "?";
}

bool phase_from_string(const std::string& name, Phase* out) {
  if (name == "B") {
    *out = Phase::kBegin;
    return true;
  }
  if (name == "E") {
    *out = Phase::kEnd;
    return true;
  }
  if (name == "i") {
    *out = Phase::kInstant;
    return true;
  }
  return false;
}

Tracer::Tracer(const Clock* clock, TracerOptions options)
    : clock_(clock), capacity_(options.capacity) {
  HARP_CHECK_MSG(clock != nullptr, "Tracer needs a Clock");
  HARP_CHECK_MSG(capacity_ > 0, "Tracer capacity must be positive");
  ring_.reserve(capacity_);
}

void Tracer::begin(EventType type, std::string scope, NumArgs num, StrArgs str) {
  record(type, Phase::kBegin, std::move(scope), std::move(num), std::move(str));
}

void Tracer::end(EventType type, std::string scope, NumArgs num, StrArgs str) {
  record(type, Phase::kEnd, std::move(scope), std::move(num), std::move(str));
}

void Tracer::instant(EventType type, std::string scope, NumArgs num, StrArgs str) {
  record(type, Phase::kInstant, std::move(scope), std::move(num), std::move(str));
}

Tracer::~Tracer() { HARP_UNTRACK_SHARED(&ring_); }

void Tracer::record(EventType type, Phase phase, std::string&& scope, NumArgs&& num,
                    StrArgs&& str) {
  MutexLock lock(mutex_);
  HARP_TRACK_SHARED(&ring_);
  TraceEvent event;
  event.seq = next_seq_++;
  event.t = clock_->now_seconds();
  event.type = type;
  event.phase = phase;
  event.scope = std::move(scope);
  event.num = std::move(num);
  event.str = std::move(str);
  if (ring_.size() < capacity_)
    ring_.push_back(std::move(event));
  else
    ring_[event.seq % capacity_] = std::move(event);
}

std::vector<TraceEvent> Tracer::events() const {
  MutexLock lock(mutex_);
  HARP_TRACK_SHARED(&ring_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
    return out;
  }
  // Full ring: the slot the next event would land in holds the oldest.
  std::size_t start = next_seq_ % capacity_;
  for (std::size_t i = 0; i < ring_.size(); ++i) out.push_back(ring_[(start + i) % capacity_]);
  return out;
}

std::uint64_t Tracer::recorded() const {
  MutexLock lock(mutex_);
  return next_seq_;
}

std::uint64_t Tracer::dropped() const {
  MutexLock lock(mutex_);
  return next_seq_ > ring_.size() ? next_seq_ - ring_.size() : 0;
}

std::size_t Tracer::capacity() const {
  MutexLock lock(mutex_);
  return capacity_;
}

void Tracer::clear() {
  // harp-lint: allow(r11 ring_.clear() is std::vector::clear; the unique-bare-name rule misreads it as self-recursion)
  MutexLock lock(mutex_);
  ring_.clear();
  next_seq_ = 0;
}

}  // namespace harp::telemetry
