// Trace exporters (DESIGN.md "Observability"):
//  - JSONL: one event per line, keys sorted, numbers in the JSON writer's
//    canonical form — the byte-reproducible interchange format harp-trace
//    consumes and the determinism test compares.
//  - Chrome trace_event: a single JSON document loadable in
//    chrome://tracing / Perfetto (timestamps converted to microseconds).
// Plus a parser for the JSONL form and file helpers.
#pragma once

#include <string>
#include <vector>

#include "src/common/result.hpp"
#include "src/telemetry/trace.hpp"

namespace harp::telemetry {

/// One JSON object per line, '\n'-terminated. Deterministic: identical
/// events serialise to identical bytes.
std::string to_jsonl(const std::vector<TraceEvent>& events);

/// Parse to_jsonl output (blank lines ignored). Errors carry "parse:" and
/// the 1-based line number.
Result<std::vector<TraceEvent>> from_jsonl(std::string_view text);

/// Chrome trace_event JSON document ("traceEvents" array form).
std::string to_chrome_trace(const std::vector<TraceEvent>& events);

/// Write events as JSONL to `path` (overwrites).
Status write_trace_file(const std::string& path, const std::vector<TraceEvent>& events);

/// Load a JSONL trace file.
Result<std::vector<TraceEvent>> load_trace_file(const std::string& path);

}  // namespace harp::telemetry
