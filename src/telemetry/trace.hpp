// Bounded ring-buffer tracer emitting typed span/instant events for the
// HARP runtime loop (DESIGN.md "Observability").
//
// The event taxonomy covers every decision the RM pipeline makes:
// allocation cycles and MMKP solves (spans), per-app grants, exploration
// stage transitions and candidate selections, operating-point measurements,
// IPC frame traffic, injected faults, and the client link lifecycle
// (reconnect / link-down / lease eviction / registration).
//
// Timestamps come from an injected Clock (clock.hpp), never a wall clock,
// so a trace is a pure function of the run's inputs: the same scenario and
// seed produce a byte-identical JSONL export (asserted by
// tests/fault_scenario_test.cpp). Sequence numbers are assigned under the
// tracer's mutex and order events totally, even within one timestamp.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/mutex.hpp"
#include "src/common/thread_annotations.hpp"
#include "src/telemetry/clock.hpp"

namespace harp::telemetry {

enum class EventType : std::uint8_t {
  kAllocCycle,         ///< span: one RM allocation cycle (MMKP + push)
  kMmkpSolve,          ///< span: one Allocator::solve invocation
  kGrant,              ///< instant: operating point granted to one app
  kStageTransition,    ///< instant: exploration maturity-stage change
  kExplorationSelect,  ///< instant: next exploration candidate chosen
  kMeasurement,        ///< instant: one operating-point measurement window
  kIpcSend,            ///< instant: frame put on the wire
  kIpcRecv,            ///< instant: frame decoded off the wire
  kFaultInjected,      ///< instant: FaultInjectingChannel fired a fault
  kReconnect,          ///< instant: client dialed a fresh channel
  kLinkDown,           ///< instant: client lost its link to the RM
  kLease,              ///< instant: RM evicted a client on lease expiry
  kRegistration,       ///< instant: app registered with the RM
  kDseSweep,           ///< span: offline design-space exploration sweep
  kQosRequest,         ///< instant: one QoS request completed (deadline accounting)
  kShardCycle,         ///< span: one RM shard's poll cycle (sharded scale-out)
  kRebalance,          ///< instant: coordinator moved a core between shards
};

/// All event types, for exporters and parsers.
inline constexpr EventType kAllEventTypes[] = {
    EventType::kAllocCycle,   EventType::kMmkpSolve,      EventType::kGrant,
    EventType::kStageTransition, EventType::kExplorationSelect, EventType::kMeasurement,
    EventType::kIpcSend,      EventType::kIpcRecv,        EventType::kFaultInjected,
    EventType::kReconnect,    EventType::kLinkDown,       EventType::kLease,
    EventType::kRegistration, EventType::kDseSweep,    EventType::kQosRequest,
    EventType::kShardCycle,   EventType::kRebalance,
};

const char* to_string(EventType type);
/// Inverse of to_string: true and *out set when `name` is a known type.
bool event_type_from_string(const std::string& name, EventType* out);

enum class Phase : std::uint8_t { kBegin, kEnd, kInstant };

const char* to_string(Phase phase);
bool phase_from_string(const std::string& name, Phase* out);

/// Named numeric / string arguments; small vectors beat maps at this size
/// and preserve the emission order.
using NumArgs = std::vector<std::pair<std::string, double>>;
using StrArgs = std::vector<std::pair<std::string, std::string>>;

struct TraceEvent {
  std::uint64_t seq = 0;  ///< total order, assigned by the Tracer
  double t = 0.0;         ///< Clock::now_seconds() at emission
  EventType type = EventType::kAllocCycle;
  Phase phase = Phase::kInstant;
  std::string scope;  ///< app / channel label; empty = global
  NumArgs num;
  StrArgs str;

  bool operator==(const TraceEvent&) const = default;
};

struct TracerOptions {
  /// Ring capacity in events; the oldest events are overwritten once full
  /// (dropped() counts them).
  std::size_t capacity = 1 << 16;
};

/// Thread-safe bounded event ring. Emission cost is one mutex acquisition
/// plus a slot write; components hold a nullable Tracer* so the disabled
/// path is a null check per site.
class Tracer {
 public:
  /// `clock` must outlive the tracer and be kept current by the timeline
  /// owner (see clock.hpp).
  explicit Tracer(const Clock* clock, TracerOptions options = {});
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void begin(EventType type, std::string scope = "", NumArgs num = {}, StrArgs str = {});
  void end(EventType type, std::string scope = "", NumArgs num = {}, StrArgs str = {});
  void instant(EventType type, std::string scope = "", NumArgs num = {}, StrArgs str = {});

  /// Retained events, oldest first (seq ascending).
  std::vector<TraceEvent> events() const;
  /// Events emitted since construction/clear, including overwritten ones.
  std::uint64_t recorded() const;
  /// Events lost to ring wraparound.
  std::uint64_t dropped() const;
  std::size_t capacity() const;
  void clear();

 private:
  void record(EventType type, Phase phase, std::string&& scope, NumArgs&& num, StrArgs&& str);

  mutable Mutex mutex_;
  const Clock* clock_ HARP_GUARDED_BY(mutex_);
  std::size_t capacity_ HARP_GUARDED_BY(mutex_);
  std::vector<TraceEvent> ring_ HARP_GUARDED_BY(mutex_);
  std::uint64_t next_seq_ HARP_GUARDED_BY(mutex_) = 0;
};

}  // namespace harp::telemetry
