#include "src/telemetry/export.hpp"

#include <cstdio>
#include <string>

#include "src/json/json.hpp"

namespace harp::telemetry {

namespace {

json::Value event_to_json(const TraceEvent& event) {
  json::Object object;
  object["seq"] = json::Value(static_cast<double>(event.seq));
  object["t"] = json::Value(event.t);
  object["type"] = json::Value(to_string(event.type));
  object["ph"] = json::Value(to_string(event.phase));
  if (!event.scope.empty()) object["scope"] = json::Value(event.scope);
  if (!event.num.empty()) {
    json::Object num;
    for (const auto& [key, value] : event.num) num[key] = json::Value(value);
    object["num"] = json::Value(std::move(num));
  }
  if (!event.str.empty()) {
    json::Object str;
    for (const auto& [key, value] : event.str) str[key] = json::Value(value);
    object["str"] = json::Value(std::move(str));
  }
  return json::Value(std::move(object));
}

Result<TraceEvent> event_from_json(const json::Value& value) {
  if (!value.is_object()) return Result<TraceEvent>(make_error("parse: event is not an object"));
  for (const char* key : {"seq", "t", "type", "ph"})
    if (!value.contains(key))
      return Result<TraceEvent>(make_error("parse: event missing '" + std::string(key) + "'"));
  if (!value.at("seq").is_number() || !value.at("t").is_number())
    return Result<TraceEvent>(make_error("parse: 'seq'/'t' must be numbers"));
  if (!value.at("type").is_string() || !value.at("ph").is_string())
    return Result<TraceEvent>(make_error("parse: 'type'/'ph' must be strings"));

  TraceEvent event;
  event.seq = static_cast<std::uint64_t>(value.at("seq").as_int());
  event.t = value.at("t").as_number();
  if (!event_type_from_string(value.at("type").as_string(), &event.type))
    return Result<TraceEvent>(
        make_error("parse: unknown event type '" + value.at("type").as_string() + "'"));
  if (!phase_from_string(value.at("ph").as_string(), &event.phase))
    return Result<TraceEvent>(
        make_error("parse: unknown phase '" + value.at("ph").as_string() + "'"));
  if (value.contains("scope")) {
    if (!value.at("scope").is_string())
      return Result<TraceEvent>(make_error("parse: 'scope' must be a string"));
    event.scope = value.at("scope").as_string();
  }
  if (value.contains("num")) {
    if (!value.at("num").is_object())
      return Result<TraceEvent>(make_error("parse: 'num' must be an object"));
    for (const auto& [key, entry] : value.at("num").as_object()) {
      if (!entry.is_number())
        return Result<TraceEvent>(make_error("parse: num arg '" + key + "' is not a number"));
      event.num.emplace_back(key, entry.as_number());
    }
  }
  if (value.contains("str")) {
    if (!value.at("str").is_object())
      return Result<TraceEvent>(make_error("parse: 'str' must be an object"));
    for (const auto& [key, entry] : value.at("str").as_object()) {
      if (!entry.is_string())
        return Result<TraceEvent>(make_error("parse: str arg '" + key + "' is not a string"));
      event.str.emplace_back(key, entry.as_string());
    }
  }
  return event;
}

/// Chrome trace viewer category per event type (one lane of colour per
/// subsystem).
const char* category(EventType type) {
  switch (type) {
    case EventType::kAllocCycle:
    case EventType::kMmkpSolve:
    case EventType::kGrant: return "rm";
    case EventType::kStageTransition:
    case EventType::kExplorationSelect:
    case EventType::kMeasurement:
    case EventType::kDseSweep: return "exploration";
    case EventType::kIpcSend:
    case EventType::kIpcRecv:
    case EventType::kFaultInjected: return "ipc";
    case EventType::kReconnect:
    case EventType::kLinkDown:
    case EventType::kLease:
    case EventType::kRegistration: return "client";
    case EventType::kQosRequest: return "qos";
    case EventType::kShardCycle:
    case EventType::kRebalance: return "shard";
  }
  return "?";
}

}  // namespace

std::string to_jsonl(const std::vector<TraceEvent>& events) {
  std::string out;
  for (const TraceEvent& event : events) {
    out += json::dump(event_to_json(event), 0);
    out += '\n';
  }
  return out;
}

Result<std::vector<TraceEvent>> from_jsonl(std::string_view text) {
  std::vector<TraceEvent> events;
  std::size_t line_number = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? std::string_view::npos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_number;
    if (line.empty()) continue;
    Result<json::Value> value = json::parse(line);
    if (!value.ok())
      return Result<std::vector<TraceEvent>>(make_error(
          "parse: line " + std::to_string(line_number) + ": " + value.error().message));
    Result<TraceEvent> event = event_from_json(value.value());
    if (!event.ok())
      return Result<std::vector<TraceEvent>>(make_error(
          "parse: line " + std::to_string(line_number) + ": " + event.error().message));
    events.push_back(std::move(event).take());
  }
  return events;
}

std::string to_chrome_trace(const std::vector<TraceEvent>& events) {
  json::Array trace_events;
  trace_events.reserve(events.size());
  for (const TraceEvent& event : events) {
    json::Object entry;
    entry["name"] = json::Value(to_string(event.type));
    entry["cat"] = json::Value(category(event.type));
    entry["ph"] = json::Value(to_string(event.phase));
    entry["ts"] = json::Value(event.t * 1e6);  // trace_event wants microseconds
    entry["pid"] = json::Value(0);
    entry["tid"] = json::Value(0);
    if (event.phase == Phase::kInstant) entry["s"] = json::Value("t");
    json::Object args;
    if (!event.scope.empty()) args["scope"] = json::Value(event.scope);
    args["seq"] = json::Value(static_cast<double>(event.seq));
    for (const auto& [key, value] : event.num) args[key] = json::Value(value);
    for (const auto& [key, value] : event.str) args[key] = json::Value(value);
    entry["args"] = json::Value(std::move(args));
    trace_events.push_back(json::Value(std::move(entry)));
  }
  json::Object document;
  document["displayTimeUnit"] = json::Value("ms");
  document["traceEvents"] = json::Value(std::move(trace_events));
  return json::dump(json::Value(std::move(document)), 2);
}

Status write_trace_file(const std::string& path, const std::vector<TraceEvent>& events) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return Status(make_error("io: cannot open '" + path + "' for writing"));
  std::string text = to_jsonl(events);
  std::size_t written = std::fwrite(text.data(), 1, text.size(), file);
  int closed = std::fclose(file);
  if (written != text.size() || closed != 0)
    return Status(make_error("io: short write to '" + path + "'"));
  return Status{};
}

Result<std::vector<TraceEvent>> load_trace_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr)
    return Result<std::vector<TraceEvent>>(make_error("io: cannot open '" + path + "'"));
  std::string text;
  char chunk[4096];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), file)) > 0) text.append(chunk, n);
  std::fclose(file);
  return from_jsonl(text);
}

}  // namespace harp::telemetry
