// MetricsRegistry: counters, gauges, and fixed-bucket histograms for the
// HARP runtime (DESIGN.md "Observability").
//
// Individual instruments are lock-free (std::atomic) so hot paths — the IPC
// frame path, the RM allocation cycle — pay one relaxed atomic op per event.
// The registry itself is a name → instrument map guarded by harp::Mutex;
// instruments are heap-allocated and never removed, so the references handed
// out stay valid for the registry's lifetime and callers are encouraged to
// resolve them once and cache the pointer.
//
// Instrumented components hold a nullable MetricsRegistry* (disabled by
// default); the disabled path is a null check per site.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/mutex.hpp"
#include "src/common/thread_annotations.hpp"

namespace harp::telemetry {

/// Render a double the way the JSON writer does: integral values without a
/// fraction, everything else with round-trip precision. Keeps the text
/// snapshot and the JSONL exporters byte-stable for identical inputs.
std::string format_number(double value);

/// Monotone event count.
class Counter {
 public:
  void inc(std::uint64_t by = 1) { value_.fetch_add(by, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  void add(double delta);
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with inclusive upper bounds (value ≤ bound) plus
/// an implicit overflow bucket. Bounds are fixed at construction; observe()
/// is lock-free.
class Histogram {
 public:
  /// `upper_bounds` must be strictly ascending and non-empty.
  explicit Histogram(std::vector<double> upper_bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double value);

  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  /// Per-bucket counts; size upper_bounds().size() + 1, last is overflow.
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> upper_bounds_;  // immutable after construction
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Find-or-create registry of named instruments. Returned references stay
/// valid for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// First call fixes the bucket bounds; later calls with the same name
  /// return the existing histogram regardless of `upper_bounds`.
  Histogram& histogram(const std::string& name, std::vector<double> upper_bounds);

  /// Current value of a counter, 0 when it was never created (assertions).
  std::uint64_t counter_value(const std::string& name) const;

  /// Deterministic plain-text dump: one line per instrument, sorted by kind
  /// then name (see DESIGN.md "Observability" for the format).
  std::string text_snapshot() const;

 private:
  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ HARP_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ HARP_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_ HARP_GUARDED_BY(mutex_);
};

}  // namespace harp::telemetry
