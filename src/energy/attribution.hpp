// EnergAt-style per-application energy attribution (§5.1).
//
// RAPL-class counters measure *package* energy; HARP needs per-application
// power for its operating points. Following the paper, we extend EnergAt
// with per-core-type power coefficients (Eq. 3):
//
//     E_Δ^CPU = Σ_t T_total^t · P^t        with   P^fast = γ · P^efficient
//
// The dynamic energy window (package minus the static idle/uncore baseline)
// is solved for the per-type thread powers using the coefficients, then
// attributed to applications in proportion to their CPU time on each type.
// The paper validates this at 8.76 % MAPE; bench/energy_attribution repeats
// that validation against the simulator's ground truth.
#pragma once

#include <vector>

#include "src/platform/hardware.hpp"

namespace harp::energy {

/// Stateless attribution engine configured from a hardware description.
class EnergyAttributor {
 public:
  explicit EnergyAttributor(const platform::HardwareDescription& hw);

  /// Power a fully idle package draws (uncore + per-core idle) — the static
  /// baseline subtracted before attribution.
  double idle_baseline_w() const { return idle_baseline_w_; }

  /// Per-type power coefficients relative to the last (most efficient)
  /// type; derived offline from the hardware description, γ in the paper.
  const std::vector<double>& coefficients() const { return gamma_; }

  /// Attribute one accounting window.
  ///
  /// `package_energy_delta_j`: package energy consumed over the window.
  /// `wall_seconds`: window length.
  /// `app_cpu_time_by_type[i][t]`: CPU seconds application i spent on core
  /// type t during the window.
  /// Returns the estimated dynamic energy (J) per application.
  std::vector<double> attribute(double package_energy_delta_j, double wall_seconds,
                                const std::vector<std::vector<double>>& app_cpu_time_by_type) const;

 private:
  std::vector<double> gamma_;
  double idle_baseline_w_ = 0.0;
  std::size_t num_types_ = 0;
};

}  // namespace harp::energy
