#include "src/energy/attribution.hpp"

#include <algorithm>

#include "src/common/check.hpp"

namespace harp::energy {

EnergyAttributor::EnergyAttributor(const platform::HardwareDescription& hw)
    : num_types_(hw.core_types.size()) {
  HARP_CHECK(!hw.core_types.empty());
  // Coefficients relative to the most efficient (lowest active power) type.
  double reference = hw.core_types.back().active_power_w;
  for (const platform::CoreType& t : hw.core_types) gamma_.push_back(t.active_power_w / reference);
  idle_baseline_w_ = hw.uncore_power_w;
  for (const platform::CoreType& t : hw.core_types)
    idle_baseline_w_ += t.idle_power_w * t.core_count;
}

std::vector<double> EnergyAttributor::attribute(
    double package_energy_delta_j, double wall_seconds,
    const std::vector<std::vector<double>>& app_cpu_time_by_type) const {
  HARP_CHECK(wall_seconds > 0.0);
  std::vector<double> out(app_cpu_time_by_type.size(), 0.0);

  // Total CPU time per type across applications.
  std::vector<double> total_by_type(num_types_, 0.0);
  for (const auto& app_times : app_cpu_time_by_type) {
    HARP_CHECK(app_times.size() == num_types_);
    for (std::size_t t = 0; t < num_types_; ++t) {
      HARP_CHECK(app_times[t] >= -1e-9);
      total_by_type[t] += std::max(app_times[t], 0.0);
    }
  }

  // Dynamic window energy above the static baseline.
  double dynamic = std::max(package_energy_delta_j - idle_baseline_w_ * wall_seconds, 0.0);

  // Solve E_dyn = Σ_t T_t · P_t with P_t = γ_t · P_ref (Eq. 3).
  double weighted_time = 0.0;
  for (std::size_t t = 0; t < num_types_; ++t) weighted_time += gamma_[t] * total_by_type[t];
  if (weighted_time <= 1e-12 || dynamic <= 0.0) return out;
  double p_ref = dynamic / weighted_time;

  for (std::size_t i = 0; i < app_cpu_time_by_type.size(); ++i)
    for (std::size_t t = 0; t < num_types_; ++t)
      out[i] += std::max(app_cpu_time_by_type[i][t], 0.0) * gamma_[t] * p_ref;
  return out;
}

}  // namespace harp::energy
