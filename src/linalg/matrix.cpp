#include "src/linalg/matrix.hpp"

#include <cmath>

namespace harp::linalg {

Matrix Matrix::from_rows(const std::vector<Vector>& rows) {
  HARP_CHECK(!rows.empty());
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    HARP_CHECK_MSG(rows[r].size() == m.cols_, "ragged rows in Matrix::from_rows");
    for (std::size_t c = 0; c < m.cols_; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  HARP_CHECK_MSG(cols_ == rhs.rows_, "matmul shape mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      double lhs_rk = (*this)(r, k);
      if (lhs_rk == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) out(r, c) += lhs_rk * rhs(k, c);
    }
  }
  return out;
}

Vector Matrix::operator*(const Vector& rhs) const {
  HARP_CHECK_MSG(cols_ == rhs.size(), "matvec shape mismatch");
  Vector out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out[r] += (*this)(r, c) * rhs[c];
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  Matrix out = *this;
  out += rhs;
  return out;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  HARP_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix Matrix::operator*(double scalar) const {
  Matrix out = *this;
  for (double& x : out.data_) x *= scalar;
  return out;
}

double Matrix::norm() const {
  double sum = 0.0;
  for (double x : data_) sum += x * x;
  return std::sqrt(sum);
}

double dot(const Vector& a, const Vector& b) {
  HARP_CHECK(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

Vector operator+(const Vector& a, const Vector& b) {
  HARP_CHECK(a.size() == b.size());
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector operator-(const Vector& a, const Vector& b) {
  HARP_CHECK(a.size() == b.size());
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector scale(const Vector& v, double s) {
  Vector out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = v[i] * s;
  return out;
}

double norm(const Vector& v) { return std::sqrt(dot(v, v)); }

}  // namespace harp::linalg
