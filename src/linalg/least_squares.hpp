// Linear least-squares solvers for the regression models: ridge-regularised
// normal equations via Cholesky, plus a plain symmetric-positive-definite
// linear solve reused by the SVR dual.
#pragma once

#include "src/linalg/matrix.hpp"

namespace harp::linalg {

/// Solve (A^T A + ridge·I) x = A^T b — ridge-regularised least squares.
/// The small ridge term (default 1e-9·trace-scale) keeps near-singular design
/// matrices (few training points, collinear features) solvable, matching how
/// the paper's exploration must fit models from as few as 3 measurements.
Vector solve_least_squares(const Matrix& a, const Vector& b, double ridge = 1e-9);

/// Cholesky solve of S x = b for symmetric positive-definite S.
/// Throws harp::CheckFailure if S is not positive definite.
Vector solve_spd(const Matrix& s, const Vector& b);

/// In-place Cholesky factor L (lower triangular) with S = L·Lᵀ.
/// Returns false (leaving `s` unspecified) if S is not positive definite.
bool cholesky(Matrix& s);

}  // namespace harp::linalg
