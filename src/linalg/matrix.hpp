// Dense row-major matrix — the substrate for the regression models in
// src/mlmodels (polynomial feature fits, MLP weight math, SVR kernels).
// Sized for that use: tens of rows/columns, no SIMD heroics needed.
#pragma once

#include <cstddef>
#include <vector>

#include "src/common/check.hpp"

namespace harp::linalg {

using Vector = std::vector<double>;

/// Row-major dense matrix with value semantics.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Build from nested initializer-style data; all rows must be equal length.
  static Matrix from_rows(const std::vector<Vector>& rows);
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    HARP_CHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    HARP_CHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  Matrix transposed() const;
  Matrix operator*(const Matrix& rhs) const;
  Vector operator*(const Vector& rhs) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix& operator+=(const Matrix& rhs);
  Matrix operator*(double scalar) const;

  /// Frobenius norm.
  double norm() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

double dot(const Vector& a, const Vector& b);
Vector operator+(const Vector& a, const Vector& b);
Vector operator-(const Vector& a, const Vector& b);
Vector scale(const Vector& v, double s);
double norm(const Vector& v);

}  // namespace harp::linalg
