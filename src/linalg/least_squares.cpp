#include "src/linalg/least_squares.hpp"

#include <cmath>

namespace harp::linalg {

bool cholesky(Matrix& s) {
  HARP_CHECK(s.rows() == s.cols());
  std::size_t n = s.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double diag = s(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= s(j, k) * s(j, k);
    if (diag <= 0.0) return false;
    s(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = s(i, j);
      for (std::size_t k = 0; k < j; ++k) v -= s(i, k) * s(j, k);
      s(i, j) = v / s(j, j);
    }
    for (std::size_t k = j + 1; k < n; ++k) s(j, k) = 0.0;  // zero upper triangle
  }
  return true;
}

Vector solve_spd(const Matrix& s, const Vector& b) {
  HARP_CHECK(s.rows() == s.cols() && s.rows() == b.size());
  Matrix l = s;
  HARP_CHECK_MSG(cholesky(l), "solve_spd: matrix not positive definite");
  std::size_t n = b.size();
  // Forward substitution: L y = b.
  Vector y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (std::size_t k = 0; k < i; ++k) v -= l(i, k) * y[k];
    y[i] = v / l(i, i);
  }
  // Back substitution: Lᵀ x = y.
  Vector x(n, 0.0);
  for (std::size_t ii = n; ii > 0; --ii) {
    std::size_t i = ii - 1;
    double v = y[i];
    for (std::size_t k = i + 1; k < n; ++k) v -= l(k, i) * x[k];
    x[i] = v / l(i, i);
  }
  return x;
}

Vector solve_least_squares(const Matrix& a, const Vector& b, double ridge) {
  HARP_CHECK(a.rows() == b.size());
  Matrix at = a.transposed();
  Matrix normal = at * a;
  // Scale the ridge by the mean diagonal so regularisation strength is
  // invariant to the feature magnitudes.
  double trace = 0.0;
  for (std::size_t i = 0; i < normal.rows(); ++i) trace += normal(i, i);
  double scaled = ridge * (trace / static_cast<double>(normal.rows()) + 1.0);
  for (std::size_t i = 0; i < normal.rows(); ++i) normal(i, i) += scaled;
  return solve_spd(normal, at * b);
}

}  // namespace harp::linalg
