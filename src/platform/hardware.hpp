// Hardware descriptions: the platform model HARP manages against.
//
// Mirrors the paper's hardware-description file (§4.3, step (1) in Fig. 2):
// the RM is not hard-coded for a machine; it loads a JSON description listing
// the core types, their counts, SMT widths, frequencies, and power/performance
// coefficients. Factories for the two evaluation platforms (Intel Raptor Lake
// i9-13900K and Odroid XU3-E) are provided with values calibrated to the
// paper's descriptions.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/common/result.hpp"
#include "src/json/json.hpp"

namespace harp::platform {

/// One homogeneous island of cores (e.g. the P-cores, or the LITTLE cluster).
struct CoreType {
  std::string name;        ///< "P", "E", "big", "LITTLE"
  int core_count = 0;      ///< physical cores of this type
  int smt_width = 1;       ///< hardware threads per core (P-cores: 2)
  double freq_ghz = 1.0;   ///< sustained frequency (paper pins max freq, §6.1)

  /// Base instruction rate of one hardware thread at this frequency, in
  /// giga-instructions per second for an IPC-1.0 workload. Applications scale
  /// this by their per-type IPC (model::AppBehavior).
  double base_gips = 1.0;

  /// Throughput gained by activating the second hardware thread of a core,
  /// relative to the first (0.3 = +30 %). Ignored when smt_width == 1.
  double smt_gain = 0.0;

  double active_power_w = 1.0;  ///< power of a core with one busy thread
  double thread_power_w = 0.0;  ///< extra power per additional busy thread
  double idle_power_w = 0.1;    ///< power of an idle (gated) core
};

/// Full machine description.
struct HardwareDescription {
  std::string name;
  std::vector<CoreType> core_types;

  /// Package/uncore power drawn regardless of core activity.
  double uncore_power_w = 0.0;

  /// Aggregate memory-subsystem throughput ceiling, in the same
  /// giga-instruction-per-second units as CoreType::base_gips: a fully
  /// memory-bound application cannot progress faster than this regardless of
  /// how many cores it holds.
  double memory_gips = 1e9;

  /// EnergAt power coefficient γ (§5.1): ratio of per-thread power between
  /// the first (fast) and second (efficient) core type, determined offline.
  double power_gamma = 1.0;

  int num_core_types() const { return static_cast<int>(core_types.size()); }
  /// Index of a core type by name; -1 if absent.
  int type_index(const std::string& type_name) const;
  /// Total hardware threads across all types.
  int total_hardware_threads() const;
  /// Hardware threads of one type.
  int hardware_threads(int type) const;

  json::Value to_json() const;
  static Result<HardwareDescription> from_json(const json::Value& value);
  static Result<HardwareDescription> load(const std::string& path);
  Status save(const std::string& path) const;
};

/// The Intel Raptor Lake Core i9-13900K used in the paper's desktop
/// evaluation: 8 P-cores with SMT @4.6 GHz + 16 E-cores @3.8 GHz (§6.1).
/// Power coefficients are calibrated so a fully loaded package draws on the
/// order of 150 W with RAPL-like accounting.
HardwareDescription raptor_lake();

/// The Odroid XU3-E (Samsung Exynos 5422) used in the paper's embedded
/// evaluation: 4 Cortex-A15 big cores @1.8 GHz + 4 Cortex-A7 LITTLE cores
/// @1.2 GHz (§6.1, frequencies per the paper's thermal caps).
HardwareDescription odroid_xu3e();

}  // namespace harp::platform
