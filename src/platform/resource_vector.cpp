// harp-lint: hot-path — the allocator's inner loops read these vectors per
// candidate per solve; r6 flags std::vector/std::string construction inside
// loops in this file.
#include "src/platform/resource_vector.hpp"

#include <cmath>
#include <sstream>

#include "src/common/check.hpp"

namespace harp::platform {

ExtendedResourceVector ExtendedResourceVector::zero(const HardwareDescription& hw) {
  ExtendedResourceVector erv;
  erv.counts_.resize(hw.core_types.size());
  for (std::size_t t = 0; t < hw.core_types.size(); ++t)
    erv.counts_[t].assign(static_cast<std::size_t>(hw.core_types[t].smt_width), 0);
  return erv;
}

ExtendedResourceVector ExtendedResourceVector::full(const HardwareDescription& hw) {
  ExtendedResourceVector erv = zero(hw);
  for (std::size_t t = 0; t < hw.core_types.size(); ++t)
    erv.counts_[t].back() = hw.core_types[t].core_count;
  erv.recompute_total_cores();
  return erv;
}

ExtendedResourceVector ExtendedResourceVector::from_threads(const HardwareDescription& hw,
                                                            const std::vector<int>& threads) {
  HARP_CHECK(threads.size() == hw.core_types.size());
  ExtendedResourceVector erv = zero(hw);
  for (std::size_t t = 0; t < threads.size(); ++t) {
    const CoreType& type = hw.core_types[t];
    int want = threads[t];
    HARP_CHECK_MSG(want >= 0 && want <= type.core_count * type.smt_width,
                   "thread demand " << want << " exceeds type capacity");
    int full_cores = want / type.smt_width;
    int remainder = want % type.smt_width;
    if (full_cores > 0) erv.counts_[t][static_cast<std::size_t>(type.smt_width - 1)] = full_cores;
    if (remainder > 0) erv.counts_[t][static_cast<std::size_t>(remainder - 1)] += 1;
  }
  erv.recompute_total_cores();
  return erv;
}

ExtendedResourceVector ExtendedResourceVector::from_counts(std::vector<std::vector<int>> counts) {
  HARP_CHECK(!counts.empty());
  for (const auto& buckets : counts) {
    HARP_CHECK(!buckets.empty());
    for (int c : buckets) HARP_CHECK(c >= 0);
  }
  ExtendedResourceVector erv;
  erv.counts_ = std::move(counts);
  erv.recompute_total_cores();
  return erv;
}

int ExtendedResourceVector::smt_levels(int type) const {
  HARP_CHECK(type >= 0 && type < num_types());
  return static_cast<int>(counts_[static_cast<std::size_t>(type)].size());
}

int ExtendedResourceVector::count(int type, int threads_per_core) const {
  HARP_CHECK(type >= 0 && type < num_types());
  HARP_CHECK(threads_per_core >= 1 && threads_per_core <= smt_levels(type));
  return counts_[static_cast<std::size_t>(type)][static_cast<std::size_t>(threads_per_core - 1)];
}

void ExtendedResourceVector::set_count(int type, int threads_per_core, int cores) {
  HARP_CHECK(type >= 0 && type < num_types());
  HARP_CHECK(threads_per_core >= 1 && threads_per_core <= smt_levels(type));
  HARP_CHECK(cores >= 0);
  int& slot = counts_[static_cast<std::size_t>(type)][static_cast<std::size_t>(threads_per_core - 1)];
  total_cores_ += cores - slot;
  slot = cores;
}

int ExtendedResourceVector::cores_used(int type) const {
  HARP_CHECK(type >= 0 && type < num_types());
  int sum = 0;
  for (int c : counts_[static_cast<std::size_t>(type)]) sum += c;
  return sum;
}

int ExtendedResourceVector::threads(int type) const {
  HARP_CHECK(type >= 0 && type < num_types());
  const auto& buckets = counts_[static_cast<std::size_t>(type)];
  int sum = 0;
  for (std::size_t k = 0; k < buckets.size(); ++k) sum += buckets[k] * static_cast<int>(k + 1);
  return sum;
}

int ExtendedResourceVector::total_threads() const {
  int sum = 0;
  for (int t = 0; t < num_types(); ++t) sum += threads(t);
  return sum;
}

void ExtendedResourceVector::recompute_total_cores() {
  total_cores_ = 0;
  for (int t = 0; t < num_types(); ++t) total_cores_ += cores_used(t);
}

std::vector<int> ExtendedResourceVector::core_usage() const {
  std::vector<int> usage(static_cast<std::size_t>(num_types()));
  write_core_usage(usage.data());
  return usage;
}

void ExtendedResourceVector::write_core_usage(int* out) const {
  for (std::size_t t = 0; t < counts_.size(); ++t) {
    int sum = 0;
    for (int c : counts_[t]) sum += c;
    out[t] = sum;
  }
}

std::vector<double> ExtendedResourceVector::feature_vector() const {
  std::vector<double> features;
  for (const auto& buckets : counts_)
    for (int c : buckets) features.push_back(static_cast<double>(c));
  return features;
}

double ExtendedResourceVector::normalized_distance(const ExtendedResourceVector& other,
                                                   const HardwareDescription& hw) const {
  HARP_CHECK(counts_.size() == other.counts_.size());
  HARP_CHECK(counts_.size() == hw.core_types.size());
  double sum = 0.0;
  for (std::size_t t = 0; t < counts_.size(); ++t) {
    HARP_CHECK(counts_[t].size() == other.counts_[t].size());
    double denom = static_cast<double>(hw.core_types[t].core_count);
    for (std::size_t k = 0; k < counts_[t].size(); ++k) {
      double d = static_cast<double>(counts_[t][k] - other.counts_[t][k]) / denom;
      sum += d * d;
    }
  }
  return std::sqrt(sum);
}

bool ExtendedResourceVector::fits(const HardwareDescription& hw) const {
  if (static_cast<std::size_t>(num_types()) != hw.core_types.size()) return false;
  for (int t = 0; t < num_types(); ++t) {
    if (smt_levels(t) != hw.core_types[static_cast<std::size_t>(t)].smt_width) return false;
    if (cores_used(t) > hw.core_types[static_cast<std::size_t>(t)].core_count) return false;
  }
  return true;
}

std::string ExtendedResourceVector::to_string(const HardwareDescription& hw) const {
  HARP_CHECK(static_cast<std::size_t>(num_types()) == hw.core_types.size());
  std::ostringstream oss;
  for (int t = 0; t < num_types(); ++t) {
    if (t > 0) oss << ' ';
    oss << hw.core_types[static_cast<std::size_t>(t)].name << '[';
    bool first = true;
    for (int k = 1; k <= smt_levels(t); ++k) {
      int c = count(t, k);
      if (c == 0) continue;
      if (!first) oss << ',';
      oss << c << 'x' << k << 't';
      first = false;
    }
    oss << ']';
  }
  return oss.str();
}

json::Value ExtendedResourceVector::to_json() const {
  json::Array types;
  for (const auto& buckets : counts_) {
    json::Array levels;
    for (int c : buckets) levels.emplace_back(c);
    types.emplace_back(std::move(levels));
  }
  return json::Value(std::move(types));
}

Result<ExtendedResourceVector> ExtendedResourceVector::from_json(const json::Value& value) {
  if (!value.is_array())
    return Result<ExtendedResourceVector>(make_error("parse: resource vector must be an array"));
  ExtendedResourceVector erv;
  std::vector<int> buckets;
  for (const json::Value& type_value : value.as_array()) {
    if (!type_value.is_array())
      return Result<ExtendedResourceVector>(make_error("parse: resource vector rows must be arrays"));
    buckets.clear();
    for (const json::Value& c : type_value.as_array()) {
      if (!c.is_number() || c.as_int() < 0)
        return Result<ExtendedResourceVector>(make_error("parse: resource counts must be >= 0"));
      buckets.push_back(static_cast<int>(c.as_int()));
    }
    if (buckets.empty())
      return Result<ExtendedResourceVector>(make_error("parse: resource vector row is empty"));
    erv.counts_.push_back(std::move(buckets));
  }
  if (erv.counts_.empty())
    return Result<ExtendedResourceVector>(make_error("parse: resource vector is empty"));
  erv.recompute_total_cores();
  return erv;
}

namespace {
/// Recursively enumerate SMT-level distributions for one type: every vector
/// (n_1, …, n_smt) with Σ n_k ≤ core_count.
void enumerate_type(int core_count, int smt_levels, std::vector<int>& current,
                    std::vector<std::vector<int>>& out) {
  if (static_cast<int>(current.size()) == smt_levels) {
    out.push_back(current);
    return;
  }
  int used = 0;
  for (int c : current) used += c;
  for (int n = 0; n <= core_count - used; ++n) {
    current.push_back(n);
    enumerate_type(core_count, smt_levels, current, out);
    current.pop_back();
  }
}
}  // namespace

std::vector<ExtendedResourceVector> enumerate_coarse_points(const HardwareDescription& hw) {
  std::vector<std::vector<std::vector<int>>> per_type_options;
  per_type_options.reserve(hw.core_types.size());
  std::vector<int> current;
  for (const CoreType& t : hw.core_types) {
    current.clear();
    enumerate_type(t.core_count, t.smt_width, current, per_type_options.emplace_back());
  }

  std::vector<ExtendedResourceVector> out;
  std::vector<std::size_t> index(per_type_options.size(), 0);
  while (true) {
    ExtendedResourceVector erv = ExtendedResourceVector::zero(hw);
    for (std::size_t t = 0; t < per_type_options.size(); ++t) {
      const std::vector<int>& buckets = per_type_options[t][index[t]];
      for (std::size_t k = 0; k < buckets.size(); ++k)
        erv.set_count(static_cast<int>(t), static_cast<int>(k + 1), buckets[k]);
    }
    if (!erv.is_zero()) out.push_back(std::move(erv));

    // Odometer increment over the per-type option lists.
    std::size_t t = 0;
    while (t < index.size()) {
      if (++index[t] < per_type_options[t].size()) break;
      index[t] = 0;
      ++t;
    }
    if (t == index.size()) break;
  }
  return out;
}

CoreAllocation CoreAllocation::empty(const HardwareDescription& hw) {
  CoreAllocation alloc;
  alloc.cores.resize(hw.core_types.size());
  return alloc;
}

int CoreAllocation::total_threads() const {
  int sum = 0;
  for (const auto& type_cores : cores)
    for (const auto& [core, threads] : type_cores) sum += threads;
  return sum;
}

ExtendedResourceVector CoreAllocation::to_erv(const HardwareDescription& hw) const {
  ExtendedResourceVector erv = ExtendedResourceVector::zero(hw);
  HARP_CHECK(cores.size() == hw.core_types.size());
  for (std::size_t t = 0; t < cores.size(); ++t) {
    for (const auto& [core, threads] : cores[t]) {
      (void)core;
      HARP_CHECK(threads >= 1 && threads <= hw.core_types[t].smt_width);
      erv.set_count(static_cast<int>(t), threads,
                    erv.count(static_cast<int>(t), threads) + 1);
    }
  }
  return erv;
}

std::string CoreAllocation::to_string() const {
  std::ostringstream oss;
  for (std::size_t t = 0; t < cores.size(); ++t) {
    if (t > 0) oss << ' ';
    oss << "t" << t << ":{";
    for (std::size_t i = 0; i < cores[t].size(); ++i) {
      if (i > 0) oss << ',';
      oss << cores[t][i].first << 'x' << cores[t][i].second;
    }
    oss << '}';
  }
  return oss.str();
}

Result<std::vector<CoreAllocation>> assign_cores(
    const HardwareDescription& hw, const std::vector<ExtendedResourceVector>& demands) {
  std::vector<const ExtendedResourceVector*> ptrs;
  ptrs.reserve(demands.size());
  for (const ExtendedResourceVector& erv : demands) ptrs.push_back(&erv);
  std::vector<int> next_free;
  std::vector<CoreAllocation> out;
  Status status = assign_cores_into(hw, ptrs, next_free, out);
  if (!status.ok()) return Result<std::vector<CoreAllocation>>(status.error());
  return out;
}

Status assign_cores_into(const HardwareDescription& hw,
                         const std::vector<const ExtendedResourceVector*>& demands,
                         std::vector<int>& next_free_scratch,
                         std::vector<CoreAllocation>& out) {
  const std::size_t num_types = hw.core_types.size();
  out.resize(demands.size());
  // next_free_scratch[t] = first unassigned physical core id of type t.
  next_free_scratch.assign(num_types, 0);

  for (std::size_t g = 0; g < demands.size(); ++g) {
    const ExtendedResourceVector& erv = *demands[g];
    if (static_cast<std::size_t>(erv.num_types()) != num_types)
      return Status(make_error("assign: resource vector shape mismatch"));
    CoreAllocation& alloc = out[g];
    alloc.cores.resize(num_types);
    for (auto& type_cores : alloc.cores) type_cores.clear();
    for (std::size_t t = 0; t < num_types; ++t) {
      // Hand out denser (more-threads-per-core) buckets first so SMT pairs
      // land on dedicated cores.
      for (int k = erv.smt_levels(static_cast<int>(t)); k >= 1; --k) {
        for (int i = 0; i < erv.count(static_cast<int>(t), k); ++i) {
          if (next_free_scratch[t] >= hw.core_types[t].core_count)
            return Status(
                make_error("assign: demand exceeds capacity for type " + hw.core_types[t].name));
          alloc.cores[t].emplace_back(next_free_scratch[t]++, k);
        }
      }
    }
  }
  return Status();
}

}  // namespace harp::platform
