// Extended resource vectors (§4.1.2) and concrete core allocations.
//
// A coarse-grained operating point describes its resource demand with an
// *extended resource vector*: per core type, how many cores are used with
// how many busy hardware threads each. The paper's example — 4 E-cores plus
// 3 P-cores of which two use both hyperthreads — is [1, 2, 4]ᵀ: one P-core
// at 1 thread, two P-cores at 2 threads, four E-cores.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "src/common/result.hpp"
#include "src/json/json.hpp"
#include "src/platform/hardware.hpp"

namespace harp::platform {

/// Extended resource vector: counts_[t][k] = number of cores of type t with
/// exactly (k+1) busy hardware threads. Value semantics; totally ordered so
/// it can key std::map (operating-point tables).
class ExtendedResourceVector {
 public:
  ExtendedResourceVector() = default;

  /// All-zero vector shaped for `hw` (one bucket per SMT level per type).
  static ExtendedResourceVector zero(const HardwareDescription& hw);
  /// Every core of every type busy at full SMT width.
  static ExtendedResourceVector full(const HardwareDescription& hw);
  /// Vector using `threads[t]` hardware threads of type t, packed to use as
  /// few cores as possible (fill SMT first). threads[t] must not exceed the
  /// type's hardware-thread count.
  static ExtendedResourceVector from_threads(const HardwareDescription& hw,
                                             const std::vector<int>& threads);
  /// Vector from raw bucket counts: counts[t][k] = cores of type t with
  /// (k+1) busy hardware threads. Used by the wire codec; all counts >= 0
  /// and at least one type required.
  static ExtendedResourceVector from_counts(std::vector<std::vector<int>> counts);

  int num_types() const { return static_cast<int>(counts_.size()); }
  int smt_levels(int type) const;

  /// Number of cores of `type` with exactly `threads_per_core` busy threads.
  int count(int type, int threads_per_core) const;
  void set_count(int type, int threads_per_core, int cores);

  /// Physical cores of `type` in use (any SMT level).
  int cores_used(int type) const;
  /// Busy hardware threads of `type`.
  int threads(int type) const;
  int total_threads() const;
  /// Total physical cores in use. O(1): maintained as a cache across all
  /// mutations — this is the inner comparison of the allocator's
  /// minimum-footprint scans, called per candidate per solve.
  int total_cores() const { return total_cores_; }
  bool is_zero() const { return total_threads() == 0; }

  /// Per-type cores-used vector — the weight vector of constraint (1b).
  std::vector<int> core_usage() const;

  /// Allocation-free variant of core_usage(): writes num_types() ints to
  /// `out`. The allocator hot path uses this to build flat usage rows.
  void write_core_usage(int* out) const;

  /// Flattened counts (type-major, SMT level ascending) — the regression
  /// feature vector of §5.2.
  std::vector<double> feature_vector() const;

  /// Euclidean distance between feature vectors, with each SMT bucket
  /// normalised by its type's core count so large E-clusters do not dominate.
  /// Used by the initial-stage farthest-point exploration heuristic (§5.3).
  double normalized_distance(const ExtendedResourceVector& other,
                             const HardwareDescription& hw) const;

  /// True if this vector alone fits within the platform's physical cores.
  bool fits(const HardwareDescription& hw) const;

  bool operator==(const ExtendedResourceVector& other) const { return counts_ == other.counts_; }
  bool operator<(const ExtendedResourceVector& other) const { return counts_ < other.counts_; }

  /// Human-readable form, e.g. "P[1x1t,2x2t] E[4x1t]".
  std::string to_string(const HardwareDescription& hw) const;

  json::Value to_json() const;
  static Result<ExtendedResourceVector> from_json(const json::Value& value);

 private:
  void recompute_total_cores();

  std::vector<std::vector<int>> counts_;
  /// Cached Σ_t cores_used(t); comparisons deliberately ignore it (it is a
  /// pure function of counts_).
  int total_cores_ = 0;
};

/// Enumerate every non-zero coarse-grained configuration of the platform:
/// all per-type distributions of cores over SMT levels. For Raptor Lake this
/// yields 764 candidates, for the Odroid 24 — the exploration search spaces.
std::vector<ExtendedResourceVector> enumerate_coarse_points(const HardwareDescription& hw);

/// A concrete, spatially isolated allocation: which physical cores an
/// application received and how many hardware threads it may run on each.
struct CoreAllocation {
  /// cores[type] = list of (core_id, busy_thread_count).
  std::vector<std::vector<std::pair<int, int>>> cores;

  static CoreAllocation empty(const HardwareDescription& hw);
  int total_threads() const;
  bool is_empty() const { return total_threads() == 0; }
  /// The extended resource vector this concrete allocation realises.
  ExtendedResourceVector to_erv(const HardwareDescription& hw) const;
  std::string to_string() const;
};

/// First-fit assignment of concrete cores to per-application ERVs with
/// spatial isolation (§4 step 3: the RM "adjusts it to ensure spatial
/// isolation among running applications"). Returns one CoreAllocation per
/// input ERV; fails (error Result) if the ERVs jointly exceed capacity.
Result<std::vector<CoreAllocation>> assign_cores(
    const HardwareDescription& hw, const std::vector<ExtendedResourceVector>& demands);

/// In-place variant used by the allocator hot path: identical assignment to
/// assign_cores(), but reuses `out`'s nested buffers and the caller's
/// `next_free_scratch`, so a steady-state call (same demand shapes as the
/// previous cycle) performs no heap allocation. `out` is unspecified on
/// error.
Status assign_cores_into(const HardwareDescription& hw,
                         const std::vector<const ExtendedResourceVector*>& demands,
                         std::vector<int>& next_free_scratch,
                         std::vector<CoreAllocation>& out);

}  // namespace harp::platform
