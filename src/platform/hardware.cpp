#include "src/platform/hardware.hpp"

#include "src/common/check.hpp"

namespace harp::platform {

int HardwareDescription::type_index(const std::string& type_name) const {
  for (std::size_t i = 0; i < core_types.size(); ++i)
    if (core_types[i].name == type_name) return static_cast<int>(i);
  return -1;
}

int HardwareDescription::total_hardware_threads() const {
  int total = 0;
  for (const CoreType& t : core_types) total += t.core_count * t.smt_width;
  return total;
}

int HardwareDescription::hardware_threads(int type) const {
  HARP_CHECK(type >= 0 && type < num_core_types());
  return core_types[type].core_count * core_types[type].smt_width;
}

json::Value HardwareDescription::to_json() const {
  json::Array types;
  for (const CoreType& t : core_types) {
    json::Object o;
    o["name"] = t.name;
    o["core_count"] = t.core_count;
    o["smt_width"] = t.smt_width;
    o["freq_ghz"] = t.freq_ghz;
    o["base_gips"] = t.base_gips;
    o["smt_gain"] = t.smt_gain;
    o["active_power_w"] = t.active_power_w;
    o["thread_power_w"] = t.thread_power_w;
    o["idle_power_w"] = t.idle_power_w;
    types.emplace_back(std::move(o));
  }
  json::Object root;
  root["name"] = name;
  root["core_types"] = json::Value(std::move(types));
  root["uncore_power_w"] = uncore_power_w;
  root["memory_gips"] = memory_gips;
  root["power_gamma"] = power_gamma;
  return json::Value(std::move(root));
}

Result<HardwareDescription> HardwareDescription::from_json(const json::Value& value) {
  if (!value.is_object()) return Result<HardwareDescription>(make_error("parse: hardware description must be an object"));
  if (!value.contains("name") || !value.contains("core_types"))
    return Result<HardwareDescription>(make_error("parse: hardware description needs 'name' and 'core_types'"));

  HardwareDescription hw;
  hw.name = value.at("name").as_string();
  hw.uncore_power_w = value.number_or("uncore_power_w", 0.0);
  hw.memory_gips = value.number_or("memory_gips", 1e9);
  hw.power_gamma = value.number_or("power_gamma", 1.0);

  if (!value.at("core_types").is_array())
    return Result<HardwareDescription>(make_error("parse: 'core_types' must be an array"));
  for (const json::Value& tv : value.at("core_types").as_array()) {
    if (!tv.is_object() || !tv.contains("name") || !tv.contains("core_count"))
      return Result<HardwareDescription>(make_error("parse: core type needs 'name' and 'core_count'"));
    CoreType t;
    t.name = tv.at("name").as_string();
    t.core_count = static_cast<int>(tv.at("core_count").as_int());
    t.smt_width = static_cast<int>(tv.int_or("smt_width", 1));
    t.freq_ghz = tv.number_or("freq_ghz", 1.0);
    t.base_gips = tv.number_or("base_gips", 1.0);
    t.smt_gain = tv.number_or("smt_gain", 0.0);
    t.active_power_w = tv.number_or("active_power_w", 1.0);
    t.thread_power_w = tv.number_or("thread_power_w", 0.0);
    t.idle_power_w = tv.number_or("idle_power_w", 0.1);
    if (t.core_count <= 0 || t.smt_width <= 0)
      return Result<HardwareDescription>(make_error("parse: core counts must be positive"));
    hw.core_types.push_back(std::move(t));
  }
  if (hw.core_types.empty())
    return Result<HardwareDescription>(make_error("parse: hardware description has no core types"));
  return hw;
}

Result<HardwareDescription> HardwareDescription::load(const std::string& path) {
  Result<json::Value> doc = json::load_file(path);
  if (!doc.ok()) return Result<HardwareDescription>(doc.error());
  return from_json(doc.value());
}

Status HardwareDescription::save(const std::string& path) const {
  return json::save_file(path, to_json());
}

HardwareDescription raptor_lake() {
  HardwareDescription hw;
  hw.name = "intel-raptor-lake-i9-13900k";
  // P-cores: 4.6 GHz, SMT-2. base_gips is the single-thread rate of an
  // IPC-1.0 workload; real applications scale it by their per-type IPC.
  CoreType p;
  p.name = "P";
  p.core_count = 8;
  p.smt_width = 2;
  p.freq_ghz = 4.6;
  p.base_gips = 4.6;
  p.smt_gain = 0.30;
  p.active_power_w = 7.0;
  p.thread_power_w = 1.4;
  p.idle_power_w = 0.35;
  // E-cores: 3.8 GHz, no SMT, roughly half the per-clock throughput at a
  // quarter of the power — the efficiency trade the paper exploits.
  CoreType e;
  e.name = "E";
  e.core_count = 16;
  e.smt_width = 1;
  e.freq_ghz = 3.8;
  e.base_gips = 2.1;
  e.smt_gain = 0.0;
  e.active_power_w = 1.8;
  e.thread_power_w = 0.0;
  e.idle_power_w = 0.12;
  hw.core_types = {p, e};
  hw.uncore_power_w = 14.0;
  hw.memory_gips = 26.0;
  hw.power_gamma = 7.0 / 1.8;
  return hw;
}

HardwareDescription odroid_xu3e() {
  HardwareDescription hw;
  hw.name = "odroid-xu3e-exynos5422";
  CoreType big;
  big.name = "big";
  big.core_count = 4;
  big.smt_width = 1;
  big.freq_ghz = 1.8;
  big.base_gips = 1.7;
  big.smt_gain = 0.0;
  big.active_power_w = 1.45;
  big.thread_power_w = 0.0;
  big.idle_power_w = 0.08;
  // Cortex-A7 @1.2 GHz: roughly half the A15's throughput at ~4x less
  // power — the efficiency trade HARP's allocation exploits on this board.
  CoreType little;
  little.name = "LITTLE";
  little.core_count = 4;
  little.smt_width = 1;
  little.freq_ghz = 1.2;
  little.base_gips = 0.85;
  little.smt_gain = 0.0;
  little.active_power_w = 0.38;
  little.thread_power_w = 0.0;
  little.idle_power_w = 0.02;
  hw.core_types = {big, little};
  hw.uncore_power_w = 0.9;
  hw.memory_gips = 3.4;
  hw.power_gamma = 1.45 / 0.38;
  return hw;
}

}  // namespace harp::platform
