// Deadline/QoS workload class: latency-critical request-serving applications.
//
// HARP's original utility model is throughput-shaped; this module adds the
// other half of the paper's adaptive-management story — applications whose
// value is the fraction of requests finished before a deadline. It provides
// (1) the QoS contract a service declares (work per request, deadline, soft
// hit-rate target), (2) deterministic open-loop traffic generators (Poisson,
// MMPP-2 bursty/flash-crowd, diurnal, replay-from-trace) seeded via
// harp::Rng, (3) a small JSONL/CSV request-trace format with a loader that
// reports malformed input as Status errors, and (4) the EDF-flavored
// analytic utility curve (expected deadline hit-rate under M/M/1 with a
// tardiness penalty) that operating-point tables and the allocator's
// slack-priced soft-QoS rows are built from.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.hpp"
#include "src/common/rng.hpp"

namespace harp::model {

/// Soft-QoS contract of a deadline (latency-critical) application.
struct QosSpec {
  /// Useful work one request costs, in giga-instructions.
  double work_per_request_gi = 1.0;

  /// Relative deadline of each request, seconds after its arrival.
  double deadline_s = 0.05;

  /// Provisioning-time mean arrival rate (requests/s). Baselines size their
  /// static grants from this; the actual traffic may burst above it.
  double nominal_rate_rps = 10.0;

  /// Soft-QoS target: the minimum acceptable deadline hit-rate. The
  /// allocator prices shortfall below this as slack (AllocationGroup::qos)
  /// rather than treating it as a hard constraint.
  double min_hit_rate = 0.9;

  /// Utility lost per deadline-length of mean tardiness: the utility curve
  /// is hit_rate − tardiness_penalty · E[(T−d)⁺]/d, clamped to [0, 1].
  double tardiness_penalty = 0.5;

  /// Price per unit of relative hit-rate deficit in the allocator's
  /// slack-priced soft-QoS row. Large values make the target near-hard.
  double slack_weight = 200.0;
};

/// One request of a QoS stream. Synthetic generators emit only arrival
/// times; replayed traces may override per-request work and deadline.
/// Negative work/deadline mean "use the application's QosSpec default".
struct QosRequest {
  double arrival_s = 0.0;   ///< seconds from stream start (non-decreasing)
  double work_gi = -1.0;    ///< per-request override; < 0 = QosSpec default
  double deadline_s = -1.0; ///< per-request override; < 0 = QosSpec default

  bool operator==(const QosRequest&) const = default;
};

/// A replayable request trace. On-disk format is line-oriented and mixes
/// freely per line:
///   - JSONL: {"t": 0.10, "work_gi": 1.5, "deadline_s": 0.05}
///     ("work_gi"/"deadline_s" optional)
///   - CSV:   t[,work_gi[,deadline_s]]
///   - blank lines and lines starting with '#' are ignored.
/// Arrival times must be non-decreasing; violations and malformed lines are
/// reported as "parse:"-prefixed errors, never crashes.
struct RequestTrace {
  std::vector<QosRequest> requests;

  /// Canonical JSONL serialisation (one request per line, keys sorted,
  /// %.17g numbers). parse(to_jsonl()) round-trips exactly.
  std::string to_jsonl() const;

  static Result<RequestTrace> parse(std::string_view text);
  static Result<RequestTrace> load(const std::string& path);
  Status save(const std::string& path) const;
};

/// Traffic shapes for open-loop request arrival.
enum class ArrivalKind {
  kPoisson,  ///< homogeneous Poisson process at rate_rps
  kBursty,   ///< MMPP-2 flash crowd: calm rate_rps / burst_rate_rps states
  kDiurnal,  ///< inhomogeneous Poisson, sinusoidal rate over diurnal_period_s
  kReplay,   ///< replay `trace` verbatim (finite)
};

const char* to_string(ArrivalKind kind);

/// Parameters of one arrival process. Only the fields of the selected kind
/// are read; the rest keep their defaults.
struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::kPoisson;

  /// Mean rate (Poisson), calm-state rate (bursty), mean rate (diurnal).
  double rate_rps = 10.0;

  // --- kBursty (two-state Markov-modulated Poisson process) ---------------
  double burst_rate_rps = 50.0;  ///< arrival rate inside a flash crowd
  double calm_mean_s = 4.0;      ///< mean sojourn in the calm state
  double burst_mean_s = 1.0;     ///< mean sojourn in the burst state

  // --- kDiurnal -----------------------------------------------------------
  double diurnal_period_s = 60.0;
  double diurnal_amplitude = 0.8;  ///< rate swings rate·(1 ± amplitude)

  // --- kReplay ------------------------------------------------------------
  RequestTrace trace;
};

/// Deterministic request stream. Identical (config, seed) pairs produce
/// identical sequences; samples are drawn from raw mt19937_64 output via a
/// fixed inverse-CDF mapping, so streams are bit-stable across standard
/// libraries (std::*_distribution is implementation-defined).
class ArrivalGenerator {
 public:
  ArrivalGenerator(ArrivalConfig config, std::uint64_t seed);

  /// The next request, with a non-decreasing arrival_s. Synthetic kinds are
  /// infinite; kReplay returns nullopt once the trace is exhausted.
  std::optional<QosRequest> next();

 private:
  double canonical();             // uniform in (0, 1], bit-stable
  double exp_gap(double rate) ;   // Exp(rate) inter-arrival gap

  ArrivalConfig config_;
  Rng rng_;
  double t_ = 0.0;
  bool in_burst_ = false;
  double state_end_s_ = 0.0;   // bursty: when the current MMPP state ends
  std::size_t replay_pos_ = 0;
};

/// Expected deadline hit-rate of an M/M/1 server: requests arrive at
/// `arrival_rps`, are served at `service_rps`, and hit when response time
/// ≤ deadline: P(T ≤ d) = 1 − exp(−(μ−λ)·d) for μ > λ, else 0.
double expected_hit_rate(double service_rps, double arrival_rps, double deadline_s);

/// Expected tardiness E[(T − d)⁺] of the same M/M/1 server:
/// exp(−(μ−λ)·d)/(μ−λ) for μ > λ, +inf otherwise.
double expected_tardiness_s(double service_rps, double arrival_rps, double deadline_s);

/// The EDF-flavored utility curve: expected hit-rate minus the tardiness
/// penalty (spec.tardiness_penalty · E[(T−d)⁺]/d), clamped to [0, 1].
/// `service_rps` is the sustained request service rate an allocation
/// delivers (useful GIPS / work_per_request_gi).
double qos_utility(double service_rps, double arrival_rps, const QosSpec& spec);

/// The static service rate an EDF-style provisioner reserves: the M/M/1
/// rate at which the nominal load meets min_hit_rate exactly,
/// μ = λ + ln(1/(1 − min_hit_rate))/deadline.
double edf_provision_rate(const QosSpec& spec);

}  // namespace harp::model
