#include "src/model/behavior.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/check.hpp"

namespace harp::model {

int AppBehavior::phase_at(double progress_fraction) const {
  if (phases.size() <= 1) return 0;
  HARP_CHECK(progress_fraction >= 0.0 && progress_fraction <= 1.0 + 1e-9);
  double accumulated = 0.0;
  for (std::size_t i = 0; i < phases.size(); ++i) {
    accumulated += phases[i].fraction;
    if (progress_fraction < accumulated - 1e-12) return static_cast<int>(i);
  }
  return static_cast<int>(phases.size()) - 1;
}

AppBehavior AppBehavior::behavior_in_phase(int phase_index) const {
  if (phases.empty()) {
    HARP_CHECK(phase_index == 0);
    return *this;
  }
  HARP_CHECK(phase_index >= 0 && phase_index < static_cast<int>(phases.size()));
  const Phase& phase = phases[static_cast<std::size_t>(phase_index)];
  AppBehavior out = *this;
  out.mem_fraction = phase.mem_fraction;
  out.serial_fraction = phase.serial_fraction;
  for (double& ipc_value : out.ipc) ipc_value *= phase.ipc_scale;
  out.phases.clear();  // the result is the single-stage effective behaviour
  return out;
}

const char* to_string(AdaptivityType type) {
  switch (type) {
    case AdaptivityType::kStatic: return "static";
    case AdaptivityType::kScalable: return "scalable";
    case AdaptivityType::kCustom: return "custom";
  }
  return "?";
}

namespace {

/// Generic multiplexing efficiency when `sharers` threads time-share one
/// hardware thread: context-switch and cache-refill losses on top of the
/// 1/sharers throughput split.
double multiplex_efficiency(int sharers) {
  return 1.0 / (1.0 + 0.15 * static_cast<double>(sharers - 1));
}

}  // namespace

AppRates compute_rates(const AppBehavior& app, const platform::HardwareDescription& hw,
                       const std::vector<ThreadView>& threads, double mem_gips_share,
                       double rebalance_factor) {
  HARP_CHECK(app.ipc.size() == hw.core_types.size());
  HARP_CHECK(rebalance_factor >= 0.0 && rebalance_factor <= 1.0);
  AppRates rates;
  if (threads.empty()) return rates;

  // --- Per-thread raw issue rates -----------------------------------------
  double raw_sum = 0.0;
  double raw_min = 1e300;
  double raw_max = 0.0;
  for (const ThreadView& tv : threads) {
    HARP_CHECK(tv.type >= 0 && tv.type < hw.num_core_types());
    const platform::CoreType& type = hw.core_types[static_cast<std::size_t>(tv.type)];
    HARP_CHECK(tv.slot_sharers >= 1);
    HARP_CHECK(tv.busy_slots_on_core >= 1 && tv.busy_slots_on_core <= type.smt_width);

    HARP_CHECK(tv.freq_scale > 0.0 && tv.freq_scale <= 1.0);
    double rate = type.base_gips * app.ipc[static_cast<std::size_t>(tv.type)] * tv.freq_scale;
    if (tv.busy_slots_on_core > 1) {
      // Both hyperthreads busy: the core's aggregate gains smt_gain (scaled
      // by how SMT-friendly the app is), split across the busy slots.
      double aggregate_gain = 1.0 + type.smt_gain * app.smt_friendliness;
      rate *= aggregate_gain / static_cast<double>(tv.busy_slots_on_core);
    }
    if (tv.slot_sharers > 1) {
      rate *= multiplex_efficiency(tv.slot_sharers) / static_cast<double>(tv.slot_sharers);
      // Lock-holder preemption: a descheduled lock/barrier holder stalls the
      // app's other threads (§2.2).
      rate *= 1.0 - app.oversub_penalty * (1.0 - 1.0 / static_cast<double>(tv.slot_sharers));
    }
    raw_sum += rate;
    raw_min = std::min(raw_min, rate);
    raw_max = std::max(raw_max, rate);
  }
  auto n = static_cast<double>(threads.size());

  // --- Parallel-phase aggregate -------------------------------------------
  // Static partitioning hands every thread work/n, so the phase completes at
  // n·min(rate); runtime rebalancing recovers the full sum.
  double balanced = raw_sum;
  double imbalanced = n * raw_min;
  double imb = app.imbalance_sensitivity * (1.0 - rebalance_factor);
  double parallel_rate = imb * imbalanced + (1.0 - imb) * balanced;

  // Shared-structure contention grows with thread count regardless of where
  // the threads run (binpack's input queue).
  parallel_rate /=
      1.0 + app.contention * (n - 1.0) + app.contention_quadratic * (n - 1.0) * (n - 1.0);

  // Memory-bound share of the work cannot beat the app's bandwidth share.
  double mem_cap = std::max(mem_gips_share, 1e-9);
  double compute_fraction = 1.0 - app.mem_fraction;
  double mem_limited = std::min(parallel_rate, mem_cap);
  double blended_parallel =
      1.0 / (compute_fraction / std::max(parallel_rate, 1e-12) +
             app.mem_fraction / std::max(mem_limited, 1e-12));

  // Amdahl: the serial share runs on the fastest assigned thread.
  double serial = app.serial_fraction;
  rates.useful_gips = 1.0 / (serial / std::max(raw_max, 1e-12) +
                             (1.0 - serial) / std::max(blended_parallel, 1e-12));

  // --- Measured IPS ---------------------------------------------------------
  // Threads spinning at barriers/locks retire instructions in proportion to
  // sync_ips_inflation, so perf's IPS can exceed useful throughput (the lu
  // anecdote, §6.3.1). Memory-stalled cycles, in contrast, retire nothing:
  // only the spin waste (issue rate lost to imbalance/contention/
  // oversubscription, *before* the bandwidth cap) is inflated.
  double amdahl_no_mem = 1.0 / (serial / std::max(raw_max, 1e-12) +
                                (1.0 - serial) / std::max(parallel_rate, 1e-12));
  double spin_waste = std::max(raw_sum - amdahl_no_mem, 0.0);
  rates.measured_gips = rates.useful_gips + app.sync_ips_inflation * spin_waste;

  // --- Power ---------------------------------------------------------------
  // Dynamic power per busy slot; stalled pipelines draw somewhat less, so we
  // scale the slot power by a floor-plus-utilisation curve.
  double utilization = raw_sum > 1e-12 ? rates.useful_gips / raw_sum : 0.0;
  utilization = std::clamp(utilization, 0.0, 1.0);
  // The power floor depends on how threads wait: spinners (high IPS
  // inflation) keep the pipeline hot, sleepers let the core idle down.
  double floor = std::min(0.3 + 0.6 * app.sync_ips_inflation, 0.95);
  double activity = app.power_activity * (floor + (1.0 - floor) * utilization);
  double power = 0.0;
  for (const ThreadView& tv : threads) {
    const platform::CoreType& type = hw.core_types[static_cast<std::size_t>(tv.type)];
    // First busy slot on a core carries active_power_w; additional busy
    // slots cost thread_power_w. Attribute per busy slot, then split among
    // the slot's sharers.
    double slot_power =
        tv.busy_slots_on_core == 1
            ? type.active_power_w
            : (type.active_power_w + type.thread_power_w * (tv.busy_slots_on_core - 1)) /
                  static_cast<double>(tv.busy_slots_on_core);
    slot_power *= kDvfsLeakageShare +
                  (1.0 - kDvfsLeakageShare) * std::pow(tv.freq_scale, kDvfsPowerExponent);
    power += activity * slot_power / static_cast<double>(tv.slot_sharers);
  }
  rates.power_w = power;
  return rates;
}

namespace {
/// One ThreadView per hardware thread granted by `erv` (exclusive slots).
std::vector<ThreadView> slot_views(const platform::HardwareDescription& hw,
                                   const platform::ExtendedResourceVector& erv,
                                   double freq_scale) {
  HARP_CHECK(static_cast<std::size_t>(erv.num_types()) == hw.core_types.size());
  std::vector<ThreadView> views;
  for (int t = 0; t < erv.num_types(); ++t) {
    int core = 0;
    for (int k = 1; k <= erv.smt_levels(t); ++k) {
      for (int c = 0; c < erv.count(t, k); ++c) {
        for (int s = 0; s < k; ++s) {
          ThreadView tv;
          tv.type = t;
          tv.core_id = core;
          tv.slot_sharers = 1;
          tv.busy_slots_on_core = k;
          tv.freq_scale = freq_scale;
          views.push_back(tv);
        }
        ++core;
      }
    }
  }
  return views;
}
}  // namespace

AppRates exclusive_rates(const AppBehavior& app, const platform::HardwareDescription& hw,
                         const platform::ExtendedResourceVector& erv, double rebalance_factor,
                         double freq_scale) {
  return compute_rates(app, hw, slot_views(hw, erv, freq_scale), hw.memory_gips,
                       rebalance_factor);
}

AppRates pinned_rates(const AppBehavior& app, const platform::HardwareDescription& hw,
                      const platform::ExtendedResourceVector& erv, int num_threads,
                      double rebalance_factor, double freq_scale) {
  HARP_CHECK(num_threads >= 1);
  std::vector<ThreadView> slots = slot_views(hw, erv, freq_scale);
  HARP_CHECK(!slots.empty());
  // Distribute num_threads over the granted hardware threads as evenly as
  // the OS scheduler would; each slot's occupants time-share it.
  std::size_t n_slots = slots.size();
  std::vector<int> occupancy(n_slots, 0);
  for (int i = 0; i < num_threads; ++i) ++occupancy[static_cast<std::size_t>(i) % n_slots];
  std::vector<ThreadView> views;
  for (std::size_t s = 0; s < n_slots; ++s) {
    for (int i = 0; i < occupancy[s]; ++i) {
      ThreadView tv = slots[s];
      tv.slot_sharers = occupancy[s];
      views.push_back(tv);
    }
  }
  return compute_rates(app, hw, views, hw.memory_gips, rebalance_factor);
}

AppBehavior qos_service_behavior(std::string name, QosSpec spec, std::vector<double> ipc) {
  HARP_CHECK(spec.work_per_request_gi > 0.0);
  HARP_CHECK(spec.deadline_s > 0.0);
  HARP_CHECK(spec.nominal_rate_rps > 0.0);
  AppBehavior app;
  app.name = std::move(name);
  app.framework = "service";
  app.adaptivity = AdaptivityType::kScalable;
  // Effectively unbounded: the service drains an open-loop queue until the
  // simulation horizon ends, it never completes a fixed batch.
  app.total_work_gi = 1e15;
  app.ipc = std::move(ipc);
  app.serial_fraction = 0.02;
  app.mem_fraction = 0.25;
  app.smt_friendliness = 0.5;
  app.provides_utility = true;
  app.startup_seconds = 0.1;
  app.qos = spec;
  return app;
}

}  // namespace harp::model
