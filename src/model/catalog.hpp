// Workload catalogs for the two evaluation platforms.
//
// The paper's benchmark set (§6.2): the OpenMP NAS Parallel Benchmarks
// (class C on the Intel Raptor Lake, class A on the Odroid XU3-E), six Intel
// TBB samples, two TensorFlow Lite image-recognition models (Raptor Lake
// only), and two embedded KPN applications in static and dynamically
// adaptive versions (Odroid only). Each entry is an AppBehavior whose
// parameters are calibrated to the characteristics the paper describes.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/model/behavior.hpp"

namespace harp::model {

/// One application launch within a scenario.
struct ScenarioApp {
  std::string app;      ///< catalog name
  double arrival = 0.0; ///< seconds after scenario start
  /// Traffic shape for QoS (deadline) apps. When unset, QoS apps receive a
  /// Poisson stream at their QosSpec::nominal_rate_rps. Ignored otherwise.
  std::optional<ArrivalConfig> traffic;

  ScenarioApp() = default;
  ScenarioApp(std::string app_name, double arrival_s = 0.0,  // NOLINT(google-explicit-constructor)
              std::optional<ArrivalConfig> traffic_config = std::nullopt)
      : app(std::move(app_name)), arrival(arrival_s), traffic(std::move(traffic_config)) {}
};

/// A named evaluation scenario (one or more concurrent applications).
struct Scenario {
  std::string name;
  std::vector<ScenarioApp> apps;

  bool is_multi() const { return apps.size() > 1; }
};

/// An immutable set of application behaviours plus the paper's scenarios.
class WorkloadCatalog {
 public:
  /// Applications + scenarios for the Intel Raptor Lake i9-13900K (§6.3).
  static WorkloadCatalog raptor_lake();
  /// Applications + scenarios for the Odroid XU3-E (§6.4).
  static WorkloadCatalog odroid();

  const std::vector<AppBehavior>& apps() const { return apps_; }
  /// Lookup by name; throws CheckFailure for unknown applications.
  const AppBehavior& app(const std::string& name) const;
  bool has_app(const std::string& name) const;

  const std::vector<Scenario>& single_scenarios() const { return singles_; }
  const std::vector<Scenario>& multi_scenarios() const { return multis_; }
  std::vector<Scenario> all_scenarios() const;

  /// Extend the catalog with a custom application (it is NOT added to the
  /// built-in scenario lists — benches and tests define their own).
  /// Throws CheckFailure on duplicate names or malformed behaviours.
  void add_app(AppBehavior app);

  /// The 15-application set used for the paper's regression-model study
  /// (Fig. 5): the NAS and TBB applications on Raptor Lake.
  std::vector<std::string> regression_study_apps() const;

 private:
  std::vector<AppBehavior> apps_;
  std::vector<Scenario> singles_;
  std::vector<Scenario> multis_;
};

}  // namespace harp::model
