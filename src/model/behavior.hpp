// Application behaviour models — the simulator's ground truth.
//
// The paper evaluates HARP on real applications (NAS Parallel Benchmarks,
// Intel TBB samples, TensorFlow Lite, KPN applications). HARP itself never
// inspects application code: it only observes how (utility, power) respond
// to resource allocations. This module reproduces those response surfaces
// from first-principles ingredients — Amdahl serial fractions, memory-
// bandwidth ceilings, SMT friendliness, static-partition load imbalance on
// asymmetric cores, runqueue oversubscription, and queue contention — so the
// paper's per-application anecdotes (mg prefers E-cores, binpack collapses
// under contention, lu's IPS misleads) emerge from mechanisms rather than
// hard-coded outcomes.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/model/qos.hpp"
#include "src/platform/hardware.hpp"
#include "src/platform/resource_vector.hpp"

namespace harp::model {

/// Application adaptivity classes (§4.1.3).
enum class AdaptivityType {
  kStatic,    ///< no runtime adaptation; threads can only be pinned
  kScalable,  ///< malleable parallelism via libharp hooks (OpenMP/TBB/TF)
  kCustom,    ///< application-specific knobs via libharp callbacks (KPN)
};

const char* to_string(AdaptivityType type);

/// Ground-truth behaviour parameters of one application.
struct AppBehavior {
  std::string name;       ///< e.g. "mg.C", "binpack"
  std::string framework;  ///< "openmp", "tbb", "tensorflow", "kpn", "pthread"
  AdaptivityType adaptivity = AdaptivityType::kScalable;

  /// Useful work to completion, in giga-instructions of *useful* progress.
  double total_work_gi = 100.0;

  /// Amdahl serial fraction: this share of work runs on one thread.
  double serial_fraction = 0.01;

  /// Per-core-type IPC multiplier applied to CoreType::base_gips. Indexed
  /// like HardwareDescription::core_types. Encodes how much an application
  /// benefits from the fast cores (compute-bound: high ratio; memory-bound:
  /// flat and low).
  std::vector<double> ipc;

  /// Fraction of work limited by the memory subsystem. That fraction cannot
  /// progress faster than the app's share of HardwareDescription::memory_gips
  /// regardless of core count (mg.C: high; ep.C: near zero).
  double mem_fraction = 0.2;

  /// Scales the hardware SMT gain for this app (1 = full benefit from the
  /// second hyperthread, 0 = none).
  double smt_friendliness = 0.7;

  /// Shared-structure contention: aggregate throughput is divided by
  /// (1 + contention·(threads−1) + contention_quadratic·(threads−1)²).
  /// The quadratic term models CAS-retry storms on a shared queue, where
  /// adding workers *reduces* aggregate throughput (binpack's input queue —
  /// the paper's 6.91× scale-down win, §6.3.1).
  double contention = 0.0;
  double contention_quadratic = 0.0;

  /// 0..1: sensitivity to static work partitioning on asymmetric cores.
  /// At 1, the parallel phase runs at n·min(thread rate) — threads on fast
  /// cores wait at barriers for threads on slow cores (§2.2).
  double imbalance_sensitivity = 0.3;

  /// 0..1: fraction of wasted (non-useful) issue slots that still retire
  /// instructions — spin-waiting at barriers/locks. Inflates measured IPS
  /// above useful throughput; high values make IPS a misleading utility
  /// metric (the paper's lu anecdote, §6.3.1).
  double sync_ips_inflation = 0.3;

  /// 0..1: extra penalty when threads time-share a hardware thread
  /// (lock-holder preemption on top of the generic multiplexing overhead).
  double oversub_penalty = 0.45;

  /// Multiplier on core active power while running this app (memory-bound
  /// code stalls and draws a little less).
  double power_activity = 1.0;

  /// Threads created when unmanaged. 0 = one per hardware thread (the
  /// OpenMP/TBB default the paper's CFS baseline exhibits).
  int default_threads = 0;

  /// Fixed startup cost in seconds (process launch, input reading). Matters
  /// for short applications (is, primes) where HARP's registration and
  /// exploration overheads are most visible.
  double startup_seconds = 0.2;

  /// True if the application reports an application-specific utility metric
  /// through libharp (§4.2.1); otherwise the RM falls back to perf IPS.
  bool provides_utility = false;

  /// Set for deadline (latency-critical) services: the app serves an
  /// open-loop request stream instead of a fixed batch of work, and its
  /// utility is deadline hit-rate (model::qos_utility) rather than
  /// throughput. QoS apps must set provides_utility (the hit-rate signal
  /// only exists application-side) — catalog validation enforces this.
  std::optional<QosSpec> qos;

  /// Execution stages with distinct characteristics (§7 outlook: "many
  /// applications exhibit distinct performance-energy characteristics
  /// across different execution stages"). Empty = single-phase behaviour.
  /// Fractions must sum to 1; each stage overrides a few characteristics.
  struct Phase {
    double fraction = 1.0;    ///< share of total_work_gi spent in this stage
    double mem_fraction = 0.2;
    double ipc_scale = 1.0;   ///< multiplier on the per-type IPC vector
    double serial_fraction = 0.01;
  };
  std::vector<Phase> phases;

  int resolved_default_threads(const platform::HardwareDescription& hw) const {
    return default_threads > 0 ? default_threads : hw.total_hardware_threads();
  }

  bool multi_phase() const { return phases.size() > 1; }

  /// Index of the stage active after completing `progress_fraction` ∈ [0, 1]
  /// of the work (0 for single-phase applications).
  int phase_at(double progress_fraction) const;

  /// The effective behaviour during stage `phase_index`: this behaviour
  /// with the stage's overrides applied (identity for single-phase apps).
  AppBehavior behavior_in_phase(int phase_index) const;
};

/// A thread's placement context for one simulation quantum, as seen by the
/// rate model. Produced by the simulator from the machine occupancy.
struct ThreadView {
  int type = 0;           ///< core-type index
  int core_id = 0;        ///< physical core within the type
  int slot_sharers = 1;   ///< threads (any app) time-sharing this HW thread
  int busy_slots_on_core = 1;  ///< busy SMT slots on this core (1..smt_width)
  /// DVFS state of this core relative to the calibrated maximum frequency
  /// (§7 outlook extension): throughput scales linearly; power has a
  /// frequency-independent leakage share plus a dynamic share scaling
  /// super-linearly (voltage drops with frequency near the top of the
  /// curve): P(f) = P_max · (kDvfsLeakageShare + (1−kDvfsLeakageShare)·f^2.5).
  /// The leakage share is what makes the frequency choice non-trivial:
  /// compute-bound work races to idle at full clock, bandwidth-saturated
  /// work profits from slowing down.
  double freq_scale = 1.0;
};

/// Dynamic-power exponent of the DVFS model.
inline constexpr double kDvfsPowerExponent = 2.5;
/// Frequency-independent (leakage + uncore-coupled) share of core power.
inline constexpr double kDvfsLeakageShare = 0.3;

/// Instantaneous rates of one application under a placement.
struct AppRates {
  double useful_gips = 0.0;    ///< true utility: useful work per second
  double measured_gips = 0.0;  ///< what perf sees: retired instructions/s
  double power_w = 0.0;        ///< core power attributable to this app
};

/// Evaluate the behaviour model for one quantum.
///
/// `threads` describes where each of the app's threads currently runs.
/// `mem_gips_share` is this app's share of the platform memory throughput
/// (the simulator splits HardwareDescription::memory_gips between
/// concurrently running memory-bound apps). `rebalance_factor` ∈ [0, 1] is
/// how much of the static-partition imbalance is mitigated at runtime:
/// 1 for apps that redistribute work themselves (KPN dynamic versions),
/// ≈0.55 for unpinned apps whose threads the OS migrates freely across core
/// types (migration averages per-thread speeds), 0 for apps pinned to an
/// asymmetric partition with static work division — which is why pinning
/// can *hurt* barrier-heavy codes like lu (§6.3.1).
AppRates compute_rates(const AppBehavior& app, const platform::HardwareDescription& hw,
                       const std::vector<ThreadView>& threads, double mem_gips_share,
                       double rebalance_factor);

/// The imbalance mitigation free OS migration provides to unpinned apps.
inline constexpr double kOsMigrationMixing = 0.55;

/// Build an always-on request-serving application around a QoS contract:
/// scalable, utility-providing, effectively unbounded total work (the
/// service never "finishes"; runs end at RunOptions::max_sim_seconds).
/// `ipc` is the per-core-type multiplier vector, as in AppBehavior::ipc.
AppBehavior qos_service_behavior(std::string name, QosSpec spec, std::vector<double> ipc);

/// Steady-state rates of an app running *exclusively* on the allocation
/// described by `erv` with one thread per granted hardware thread and the
/// full memory bandwidth — the analytic ground truth behind offline DSE
/// (operating-point tables) and the Fig. 1 configuration sweeps.
AppRates exclusive_rates(const AppBehavior& app, const platform::HardwareDescription& hw,
                         const platform::ExtendedResourceVector& erv, double rebalance_factor,
                         double freq_scale = 1.0);

/// Steady-state rates when exactly `num_threads` application threads run on
/// the allocation `erv` (threads spread as evenly as possible over the
/// granted hardware threads, time-sharing when over-subscribed). This is
/// how *static* applications behave on a restricted allocation: their
/// thread count is fixed, so granting fewer hardware threads multiplexes
/// them (§4.1.3's noted drawback of static apps).
AppRates pinned_rates(const AppBehavior& app, const platform::HardwareDescription& hw,
                      const platform::ExtendedResourceVector& erv, int num_threads,
                      double rebalance_factor, double freq_scale = 1.0);

}  // namespace harp::model
