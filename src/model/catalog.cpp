#include "src/model/catalog.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/check.hpp"

namespace harp::model {

namespace {

/// Convenience builder: ipc = {fast-type, efficient-type} multipliers.
AppBehavior make_app(std::string name, std::string framework, AdaptivityType adaptivity,
                     double work_gi, double ipc_fast, double ipc_efficient) {
  AppBehavior app;
  app.name = std::move(name);
  app.framework = std::move(framework);
  app.adaptivity = adaptivity;
  app.total_work_gi = work_gi;
  app.ipc = {ipc_fast, ipc_efficient};
  return app;
}

}  // namespace

const AppBehavior& WorkloadCatalog::app(const std::string& name) const {
  for (const AppBehavior& a : apps_)
    if (a.name == name) return a;
  HARP_CHECK_MSG(false, "unknown application '" << name << "'");
  __builtin_unreachable();
}

bool WorkloadCatalog::has_app(const std::string& name) const {
  return std::any_of(apps_.begin(), apps_.end(),
                     [&](const AppBehavior& a) { return a.name == name; });
}

std::vector<Scenario> WorkloadCatalog::all_scenarios() const {
  std::vector<Scenario> out = singles_;
  out.insert(out.end(), multis_.begin(), multis_.end());
  return out;
}

void WorkloadCatalog::add_app(AppBehavior app) {
  HARP_CHECK_MSG(!has_app(app.name), "duplicate application '" << app.name << "'");
  HARP_CHECK(!app.ipc.empty());
  HARP_CHECK(app.total_work_gi > 0.0);
  if (app.qos.has_value()) {
    HARP_CHECK_MSG(app.provides_utility,
                   "QoS app '" << app.name << "' must provide an app utility metric");
    HARP_CHECK(app.qos->work_per_request_gi > 0.0);
    HARP_CHECK(app.qos->deadline_s > 0.0);
    HARP_CHECK(app.qos->nominal_rate_rps > 0.0);
    HARP_CHECK(app.qos->min_hit_rate > 0.0 && app.qos->min_hit_rate <= 1.0);
    HARP_CHECK(app.qos->tardiness_penalty >= 0.0);
    HARP_CHECK(app.qos->slack_weight >= 0.0);
  }
  if (!app.phases.empty()) {
    double total = 0.0;
    for (const AppBehavior::Phase& phase : app.phases) {
      HARP_CHECK(phase.fraction > 0.0);
      total += phase.fraction;
    }
    HARP_CHECK_MSG(std::abs(total - 1.0) < 1e-9, "phase fractions must sum to 1");
  }
  apps_.push_back(std::move(app));
}

WorkloadCatalog WorkloadCatalog::raptor_lake() {
  WorkloadCatalog cat;
  auto add = [&](AppBehavior app) { cat.apps_.push_back(std::move(app)); };

  // ---- NAS Parallel Benchmarks, class C (OpenMP, scalable) ----------------
  {
    // bt: block tridiagonal solver — compute-heavy with moderate memory
    // traffic; long-running.
    AppBehavior a = make_app("bt.C", "openmp", AdaptivityType::kScalable, 4200, 1.05, 0.95);
    a.serial_fraction = 0.015;
    a.mem_fraction = 0.35;
    a.smt_friendliness = 0.55;
    a.imbalance_sensitivity = 0.55;
    a.sync_ips_inflation = 0.45;
    add(a);
  }
  {
    // cg: conjugate gradient — irregular memory access, latency bound.
    AppBehavior a = make_app("cg.C", "openmp", AdaptivityType::kScalable, 1500, 0.70, 0.72);
    a.serial_fraction = 0.02;
    a.mem_fraction = 0.70;
    a.smt_friendliness = 0.35;
    a.imbalance_sensitivity = 0.45;
    a.sync_ips_inflation = 0.55;
    a.power_activity = 0.9;
    add(a);
  }
  {
    // ep: embarrassingly parallel — pure compute, loves SMT, very short
    // (the paper reports 2.43 s, §6.5.1).
    AppBehavior a = make_app("ep.C", "openmp", AdaptivityType::kScalable, 235, 1.20, 1.15);
    a.serial_fraction = 0.002;
    a.mem_fraction = 0.02;
    a.smt_friendliness = 1.0;
    a.imbalance_sensitivity = 0.20;
    a.sync_ips_inflation = 0.10;
    a.startup_seconds = 0.15;
    add(a);
  }
  {
    // ft: 3-D FFT — bandwidth-heavy transposes.
    AppBehavior a = make_app("ft.C", "openmp", AdaptivityType::kScalable, 1900, 0.95, 0.90);
    a.serial_fraction = 0.02;
    a.mem_fraction = 0.55;
    a.smt_friendliness = 0.45;
    a.imbalance_sensitivity = 0.50;
    a.sync_ips_inflation = 0.50;
    add(a);
  }
  {
    // is: integer bucket sort — memory bound and very short; the startup
    // overhead of any manager is visible here (§6.4.1 discusses this).
    AppBehavior a = make_app("is.C", "openmp", AdaptivityType::kScalable, 160, 0.65, 0.70);
    a.serial_fraction = 0.04;
    a.mem_fraction = 0.80;
    a.smt_friendliness = 0.25;
    a.imbalance_sensitivity = 0.40;
    a.sync_ips_inflation = 0.45;
    a.power_activity = 0.88;
    a.startup_seconds = 0.30;
    add(a);
  }
  {
    // lu: SSOR with pipelined wavefronts — barrier-heavy; spin-waiting at
    // synchronisation points retires instructions, so measured IPS rises on
    // imbalanced heterogeneous allocations even as useful progress drops
    // (the paper's IPS-misleads-utility anecdote, §6.3.1).
    AppBehavior a = make_app("lu.C", "openmp", AdaptivityType::kScalable, 3400, 1.10, 0.90);
    a.serial_fraction = 0.02;
    a.mem_fraction = 0.35;
    a.smt_friendliness = 0.45;
    a.imbalance_sensitivity = 0.88;
    a.sync_ips_inflation = 0.92;
    a.oversub_penalty = 0.5;
    add(a);
  }
  {
    // mg: multigrid — strongly memory bound; more cores add power, not
    // speed; best served by E-cores (Fig. 1b).
    AppBehavior a = make_app("mg.C", "openmp", AdaptivityType::kScalable, 900, 0.60, 0.66);
    a.serial_fraction = 0.03;
    a.mem_fraction = 0.90;
    a.smt_friendliness = 0.15;
    a.imbalance_sensitivity = 0.35;
    a.sync_ips_inflation = 0.40;
    a.power_activity = 0.85;
    add(a);
  }
  {
    // sp: scalar pentadiagonal — like bt with a little more bandwidth need.
    AppBehavior a = make_app("sp.C", "openmp", AdaptivityType::kScalable, 3100, 1.0, 0.92);
    a.serial_fraction = 0.02;
    a.mem_fraction = 0.45;
    a.smt_friendliness = 0.5;
    a.imbalance_sensitivity = 0.55;
    a.sync_ips_inflation = 0.5;
    add(a);
  }
  {
    // ua: unstructured adaptive mesh — irregular, sync-heavy.
    AppBehavior a = make_app("ua.C", "openmp", AdaptivityType::kScalable, 2600, 0.85, 0.80);
    a.serial_fraction = 0.03;
    a.mem_fraction = 0.50;
    a.smt_friendliness = 0.40;
    a.imbalance_sensitivity = 0.65;
    a.sync_ips_inflation = 0.60;
    add(a);
  }

  // ---- Intel TBB samples (scalable via task scheduler) ---------------------
  {
    // binpack: all workers contend on one shared input queue — the paper's
    // outlier where scaling *down* wins 6.91× (§6.3.1).
    AppBehavior a = make_app("binpack", "tbb", AdaptivityType::kScalable, 260, 0.95, 0.90);
    a.serial_fraction = 0.01;
    a.mem_fraction = 0.15;
    a.contention = 0.10;
    a.contention_quadratic = 0.06;  // CAS-retry storm beyond a few workers
    a.smt_friendliness = 0.4;
    a.imbalance_sensitivity = 0.15;  // work stealing
    a.sync_ips_inflation = 0.10;     // blocked workers sleep, they don't spin
    a.oversub_penalty = 0.6;
    add(a);
  }
  {
    // fractal: escape-time fractal rendering; work stealing balances well.
    AppBehavior a = make_app("fractal", "tbb", AdaptivityType::kScalable, 1400, 1.15, 1.05);
    a.serial_fraction = 0.005;
    a.mem_fraction = 0.05;
    a.smt_friendliness = 0.8;
    a.imbalance_sensitivity = 0.10;
    a.sync_ips_inflation = 0.15;
    add(a);
  }
  {
    // parallel-preorder: dependency-ordered graph traversal.
    AppBehavior a = make_app("parallel-preorder", "tbb", AdaptivityType::kScalable, 800, 0.80, 0.78);
    a.serial_fraction = 0.06;
    a.mem_fraction = 0.45;
    a.smt_friendliness = 0.35;
    a.imbalance_sensitivity = 0.5;
    a.sync_ips_inflation = 0.55;
    add(a);
  }
  {
    // pi: monte-carlo/quadrature reduction — pure compute.
    AppBehavior a = make_app("pi", "tbb", AdaptivityType::kScalable, 1100, 1.20, 1.12);
    a.serial_fraction = 0.002;
    a.mem_fraction = 0.02;
    a.smt_friendliness = 0.9;
    a.imbalance_sensitivity = 0.1;
    a.sync_ips_inflation = 0.1;
    add(a);
  }
  {
    // primes: sieve — compute with a short runtime; sensitive to manager
    // startup interference (§6.3.1).
    AppBehavior a = make_app("primes", "tbb", AdaptivityType::kScalable, 210, 1.05, 1.0);
    a.serial_fraction = 0.01;
    a.mem_fraction = 0.20;
    a.smt_friendliness = 0.6;
    a.imbalance_sensitivity = 0.25;
    a.sync_ips_inflation = 0.25;
    a.startup_seconds = 0.25;
    add(a);
  }
  {
    // seismic: wave-propagation stencil — bandwidth heavy.
    AppBehavior a = make_app("seismic", "tbb", AdaptivityType::kScalable, 1300, 0.85, 0.85);
    a.serial_fraction = 0.01;
    a.mem_fraction = 0.65;
    a.smt_friendliness = 0.3;
    a.imbalance_sensitivity = 0.3;
    a.sync_ips_inflation = 0.35;
    a.power_activity = 0.9;
    add(a);
  }

  // ---- TensorFlow Lite (HARP-enabled wrapper reports true utility) ---------
  {
    // vgg: large dense GEMMs — compute bound, scales well, reports
    // inferences/s as its utility metric through libharp.
    AppBehavior a = make_app("vgg", "tensorflow", AdaptivityType::kScalable, 3000, 1.15, 1.05);
    a.serial_fraction = 0.01;
    a.mem_fraction = 0.30;
    a.smt_friendliness = 0.7;
    a.imbalance_sensitivity = 0.30;
    a.sync_ips_inflation = 0.3;
    a.provides_utility = true;
    add(a);
  }
  {
    // alexnet: smaller model, lower arithmetic intensity.
    AppBehavior a = make_app("alexnet", "tensorflow", AdaptivityType::kScalable, 1200, 1.0, 0.95);
    a.serial_fraction = 0.02;
    a.mem_fraction = 0.40;
    a.smt_friendliness = 0.6;
    a.imbalance_sensitivity = 0.35;
    a.sync_ips_inflation = 0.3;
    a.provides_utility = true;
    add(a);
  }

  // ---- Scenarios (Fig. 6) ---------------------------------------------------
  for (const AppBehavior& a : cat.apps_)
    cat.singles_.push_back(Scenario{a.name, {{a.name, 0.0}}});
  cat.multis_ = {
      {"is+lu", {{"is.C", 0.0}, {"lu.C", 0.0}}},
      {"ep+mg", {{"ep.C", 0.0}, {"mg.C", 0.0}}},
      {"cg+ua", {{"cg.C", 0.0}, {"ua.C", 0.0}}},
      {"ft+sp", {{"ft.C", 0.0}, {"sp.C", 0.0}}},
      {"bt+mg+pi", {{"bt.C", 0.0}, {"mg.C", 0.0}, {"pi", 0.0}}},
      {"fractal+seismic+vgg", {{"fractal", 0.0}, {"seismic", 0.0}, {"vgg", 0.0}}},
      {"ep+is+lu+mg", {{"ep.C", 0.0}, {"is.C", 0.0}, {"lu.C", 0.0}, {"mg.C", 0.0}}},
      {"bt+cg+ep+ft+ua",
       {{"bt.C", 0.0}, {"cg.C", 0.0}, {"ep.C", 0.0}, {"ft.C", 0.0}, {"ua.C", 0.0}}},
  };
  return cat;
}

WorkloadCatalog WorkloadCatalog::odroid() {
  WorkloadCatalog cat;
  auto add = [&](AppBehavior app) { cat.apps_.push_back(std::move(app)); };

  // ---- NAS Parallel Benchmarks, class A (smaller inputs, §6.2) ------------
  // Same qualitative behaviour as class C; work scaled to the Odroid's
  // performance (full-machine compute throughput ≈ 9 GIPS).
  struct NasSpec {
    const char* name;
    double work;
    double ipc_big, ipc_little;
    double serial, mem, imb, infl;
  };
  const NasSpec nas[] = {
      {"bt.A", 420, 1.05, 0.95, 0.015, 0.35, 0.55, 0.45},
      {"cg.A", 150, 0.70, 0.72, 0.02, 0.70, 0.45, 0.55},
      {"ep.A", 95, 1.20, 1.15, 0.002, 0.02, 0.20, 0.10},
      {"ft.A", 190, 0.95, 0.90, 0.02, 0.55, 0.50, 0.50},
      {"is.A", 28, 0.65, 0.70, 0.04, 0.80, 0.40, 0.45},
      {"lu.A", 360, 1.10, 0.90, 0.02, 0.35, 0.88, 0.92},
      {"mg.A", 90, 0.60, 0.66, 0.03, 0.90, 0.35, 0.40},
      {"sp.A", 320, 1.00, 0.92, 0.02, 0.45, 0.55, 0.50},
      {"ua.A", 260, 0.85, 0.80, 0.03, 0.50, 0.65, 0.60},
  };
  for (const NasSpec& s : nas) {
    AppBehavior a = make_app(s.name, "openmp", AdaptivityType::kScalable, s.work, s.ipc_big,
                             s.ipc_little);
    a.serial_fraction = s.serial;
    a.mem_fraction = s.mem;
    a.smt_friendliness = 0.0;  // no SMT on either Odroid cluster
    a.imbalance_sensitivity = s.imb;
    a.sync_ips_inflation = s.infl;
    a.startup_seconds = 0.4;  // slower storage and process launch
    add(a);
  }

  // ---- KPN applications (§6.2, custom adaptivity via libharp extension) ---
  {
    // mandelbrot with implicit data parallelism: parallel regions scale and
    // rebalance under RM control (Khasanov et al., PARMA-DITAM'18).
    AppBehavior a = make_app("mandelbrot", "kpn", AdaptivityType::kCustom, 220, 1.15, 1.05);
    a.serial_fraction = 0.01;
    a.mem_fraction = 0.05;
    a.smt_friendliness = 0.0;
    a.imbalance_sensitivity = 0.75;  // escape-time rows are very uneven …
    a.sync_ips_inflation = 0.5;
    a.provides_utility = true;  // KPN channels expose tokens/s
    a.startup_seconds = 0.3;
    add(a);
    // … the static-topology variant cannot rebalance or scale.
    a.name = "mandelbrot-static";
    a.adaptivity = AdaptivityType::kStatic;
    a.default_threads = 8;  // fixed process network with 8 workers
    add(a);
  }
  {
    // lms: Leighton–Micali signatures — hash chains with a serial merkle
    // aggregation stage.
    AppBehavior a = make_app("lms", "kpn", AdaptivityType::kCustom, 180, 1.05, 1.0);
    a.serial_fraction = 0.10;
    a.mem_fraction = 0.10;
    a.smt_friendliness = 0.0;
    a.imbalance_sensitivity = 0.45;
    a.sync_ips_inflation = 0.4;
    a.provides_utility = true;
    a.startup_seconds = 0.3;
    add(a);
    a.name = "lms-static";
    a.adaptivity = AdaptivityType::kStatic;
    a.default_threads = 6;  // fixed pipeline of 6 processes
    add(a);
  }

  // ---- Scenarios (Fig. 7) ---------------------------------------------------
  for (const AppBehavior& a : cat.apps_)
    cat.singles_.push_back(Scenario{a.name, {{a.name, 0.0}}});
  cat.multis_ = {
      {"ep+ft", {{"ep.A", 0.0}, {"ft.A", 0.0}}},
      {"mg+lu", {{"mg.A", 0.0}, {"lu.A", 0.0}}},
      {"is+ua", {{"is.A", 0.0}, {"ua.A", 0.0}}},
      {"cg+sp", {{"cg.A", 0.0}, {"sp.A", 0.0}}},
      {"ep+mg+lms", {{"ep.A", 0.0}, {"mg.A", 0.0}, {"lms", 0.0}}},
      {"bt+ft+mandelbrot", {{"bt.A", 0.0}, {"ft.A", 0.0}, {"mandelbrot", 0.0}}},
  };
  return cat;
}

std::vector<std::string> WorkloadCatalog::regression_study_apps() const {
  // The paper trains regression models on pre-measured data from 15
  // applications on the Raptor Lake (§5.2): the nine NAS and six TBB apps.
  std::vector<std::string> out;
  for (const AppBehavior& a : apps_)
    if (a.framework == "openmp" || a.framework == "tbb") out.push_back(a.name);
  return out;
}

}  // namespace harp::model
