#include "src/model/qos.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "src/common/check.hpp"
#include "src/json/json.hpp"

namespace harp::model {

namespace {

constexpr double kPi = 3.14159265358979323846;

std::string line_error(std::size_t line_no, const std::string& detail) {
  std::ostringstream os;
  os << "parse: trace line " << line_no << ": " << detail;
  return os.str();
}

/// Strict double parse of a whole CSV field (leading/trailing spaces allowed).
bool parse_double(std::string_view field, double* out) {
  while (!field.empty() && (field.front() == ' ' || field.front() == '\t'))
    field.remove_prefix(1);
  while (!field.empty() && (field.back() == ' ' || field.back() == '\t')) field.remove_suffix(1);
  if (field.empty()) return false;
  const char* begin = field.data();
  const char* end = begin + field.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc{} && ptr == end && std::isfinite(*out);
}

/// One trace line (already stripped of comments/blanks) -> request.
Result<QosRequest> parse_line(std::string_view line, std::size_t line_no) {
  QosRequest req;
  if (line.front() == '{') {
    Result<json::Value> doc = json::parse(line);
    if (!doc.ok()) return make_error(line_error(line_no, doc.error().message));
    const json::Value& value = doc.value();
    if (!value.is_object() || !value.contains("t") || !value.at("t").is_number())
      return make_error(line_error(line_no, "expected an object with numeric \"t\""));
    req.arrival_s = value.at("t").as_number();
    req.work_gi = value.number_or("work_gi", -1.0);
    req.deadline_s = value.number_or("deadline_s", -1.0);
  } else {
    // CSV: t[,work_gi[,deadline_s]]
    std::vector<std::string_view> fields;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= line.size(); ++i) {
      if (i == line.size() || line[i] == ',') {
        fields.push_back(line.substr(start, i - start));
        start = i + 1;
      }
    }
    if (fields.size() > 3)
      return make_error(line_error(line_no, "expected at most 3 CSV fields"));
    double* slots[] = {&req.arrival_s, &req.work_gi, &req.deadline_s};
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (!parse_double(fields[i], slots[i]))
        return make_error(
            line_error(line_no, "bad number '" + std::string(fields[i]) + "'"));
    }
  }
  if (req.arrival_s < 0.0)
    return make_error(line_error(line_no, "arrival time must be >= 0"));
  if (req.work_gi == 0.0 || (req.work_gi < 0.0 && req.work_gi != -1.0))
    return make_error(line_error(line_no, "work_gi must be > 0"));
  if (req.deadline_s == 0.0 || (req.deadline_s < 0.0 && req.deadline_s != -1.0))
    return make_error(line_error(line_no, "deadline_s must be > 0"));
  return req;
}

}  // namespace

std::string RequestTrace::to_jsonl() const {
  std::string out;
  for (const QosRequest& req : requests) {
    json::Object obj;
    obj["t"] = req.arrival_s;
    if (req.work_gi >= 0.0) obj["work_gi"] = req.work_gi;
    if (req.deadline_s >= 0.0) obj["deadline_s"] = req.deadline_s;
    out += json::dump(json::Value(std::move(obj)));
    out += '\n';
  }
  return out;
}

Result<RequestTrace> RequestTrace::parse(std::string_view text) {
  RequestTrace trace;
  std::size_t line_no = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i != text.size() && text[i] != '\n') continue;
    ++line_no;
    std::string_view line = text.substr(start, i - start);
    start = i + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t'))
      line.remove_prefix(1);
    if (line.empty() || line.front() == '#') continue;
    Result<QosRequest> req = parse_line(line, line_no);
    if (!req.ok()) return req.error();
    if (!trace.requests.empty() && req.value().arrival_s < trace.requests.back().arrival_s)
      return make_error(line_error(line_no, "arrival times must be non-decreasing"));
    trace.requests.push_back(req.value());
  }
  return trace;
}

Result<RequestTrace> RequestTrace::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return make_error("io: cannot open trace file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

Status RequestTrace::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return make_error("io: cannot open '" + path + "' for writing");
  out << to_jsonl();
  if (!out.flush()) return make_error("io: write to '" + path + "' failed");
  return Status::ok_status();
}

const char* to_string(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kBursty: return "bursty";
    case ArrivalKind::kDiurnal: return "diurnal";
    case ArrivalKind::kReplay: return "replay";
  }
  return "unknown";
}

ArrivalGenerator::ArrivalGenerator(ArrivalConfig config, std::uint64_t seed)
    : config_(std::move(config)), rng_(seed) {
  if (config_.kind != ArrivalKind::kReplay) {
    HARP_CHECK(config_.rate_rps > 0.0);
  }
  if (config_.kind == ArrivalKind::kBursty) {
    HARP_CHECK(config_.burst_rate_rps > 0.0);
    HARP_CHECK(config_.calm_mean_s > 0.0 && config_.burst_mean_s > 0.0);
    state_end_s_ = exp_gap(1.0 / config_.calm_mean_s);
  }
  if (config_.kind == ArrivalKind::kDiurnal) {
    HARP_CHECK(config_.diurnal_period_s > 0.0);
    HARP_CHECK(config_.diurnal_amplitude >= 0.0 && config_.diurnal_amplitude < 1.0);
  }
}

double ArrivalGenerator::canonical() {
  // 53 high bits of raw engine output mapped to (0, 1]. Using the engine
  // directly (not std::uniform_real_distribution) keeps the stream
  // bit-identical across standard-library implementations.
  const std::uint64_t bits = rng_.engine()() >> 11;
  return (static_cast<double>(bits) + 1.0) * 0x1p-53;
}

double ArrivalGenerator::exp_gap(double rate) { return -std::log(canonical()) / rate; }

std::optional<QosRequest> ArrivalGenerator::next() {
  QosRequest req;
  switch (config_.kind) {
    case ArrivalKind::kPoisson:
      t_ += exp_gap(config_.rate_rps);
      break;
    case ArrivalKind::kBursty:
      // MMPP-2: sample at the current state's rate; a candidate that lands
      // past the state boundary is discarded (memorylessness makes resampling
      // from the boundary exact) and the state flips.
      for (;;) {
        const double rate = in_burst_ ? config_.burst_rate_rps : config_.rate_rps;
        const double gap = exp_gap(rate);
        if (t_ + gap <= state_end_s_) {
          t_ += gap;
          break;
        }
        t_ = state_end_s_;
        in_burst_ = !in_burst_;
        state_end_s_ =
            t_ + exp_gap(1.0 / (in_burst_ ? config_.burst_mean_s : config_.calm_mean_s));
      }
      break;
    case ArrivalKind::kDiurnal: {
      // Inhomogeneous Poisson by thinning against the peak rate.
      const double peak = config_.rate_rps * (1.0 + config_.diurnal_amplitude);
      for (;;) {
        t_ += exp_gap(peak);
        const double rate =
            config_.rate_rps *
            (1.0 + config_.diurnal_amplitude * std::sin(2.0 * kPi * t_ / config_.diurnal_period_s));
        if (canonical() * peak <= rate) break;
      }
      break;
    }
    case ArrivalKind::kReplay:
      if (replay_pos_ >= config_.trace.requests.size()) return std::nullopt;
      return config_.trace.requests[replay_pos_++];
  }
  req.arrival_s = t_;
  return req;
}

double expected_hit_rate(double service_rps, double arrival_rps, double deadline_s) {
  if (deadline_s <= 0.0 || service_rps <= arrival_rps) return 0.0;
  return 1.0 - std::exp(-(service_rps - arrival_rps) * deadline_s);
}

double expected_tardiness_s(double service_rps, double arrival_rps, double deadline_s) {
  if (service_rps <= arrival_rps) return std::numeric_limits<double>::infinity();
  const double headroom = service_rps - arrival_rps;
  return std::exp(-headroom * std::max(deadline_s, 0.0)) / headroom;
}

double qos_utility(double service_rps, double arrival_rps, const QosSpec& spec) {
  HARP_CHECK(spec.deadline_s > 0.0);
  const double hit = expected_hit_rate(service_rps, arrival_rps, spec.deadline_s);
  double utility = hit;
  if (spec.tardiness_penalty > 0.0) {
    // Guard the penalty==0 case separately: 0 x inf (saturated server) is NaN.
    const double tard = expected_tardiness_s(service_rps, arrival_rps, spec.deadline_s);
    utility -= spec.tardiness_penalty * (tard / spec.deadline_s);
  }
  return std::clamp(utility, 0.0, 1.0);
}

double edf_provision_rate(const QosSpec& spec) {
  HARP_CHECK(spec.deadline_s > 0.0);
  const double target = std::clamp(spec.min_hit_rate, 0.0, 1.0 - 1e-9);
  return spec.nominal_rate_rps + std::log(1.0 / (1.0 - target)) / spec.deadline_s;
}

}  // namespace harp::model
