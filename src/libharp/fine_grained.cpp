#include "src/libharp/fine_grained.hpp"

#include "src/common/check.hpp"

namespace harp::client {

void FineGrainedDescription::add(FineGrainedPoint point) {
  if (!point.thread_types.empty()) {
    HARP_CHECK_MSG(static_cast<int>(point.thread_types.size()) == point.erv.total_threads(),
                   "thread_types size " << point.thread_types.size()
                                        << " != resource-vector threads "
                                        << point.erv.total_threads());
    std::vector<int> per_type(static_cast<std::size_t>(point.erv.num_types()), 0);
    for (int type : point.thread_types) {
      HARP_CHECK_MSG(type >= 0 && type < point.erv.num_types(),
                     "thread type " << type << " out of range");
      ++per_type[static_cast<std::size_t>(type)];
    }
    for (int t = 0; t < point.erv.num_types(); ++t)
      HARP_CHECK_MSG(per_type[static_cast<std::size_t>(t)] == point.erv.threads(t),
                     "thread_types disagree with resource vector for type " << t);
  }
  HARP_CHECK(point.utility >= 0.0 && point.power_w >= 0.0);
  points_.push_back(std::move(point));
}

std::vector<ipc::OperatingPointsMsg::Point> FineGrainedDescription::coarse_points() const {
  std::vector<ipc::OperatingPointsMsg::Point> out;
  out.reserve(points_.size());
  for (const FineGrainedPoint& p : points_) out.push_back({p.erv, p.utility, p.power_w});
  return out;
}

const FineGrainedPoint* FineGrainedDescription::match(
    const platform::ExtendedResourceVector& erv) const {
  // Several fine-grained variants can share one coarse representation; the
  // first (highest-priority, in description order) wins.
  for (const FineGrainedPoint& p : points_)
    if (p.erv == erv) return &p;
  return nullptr;
}

json::Value FineGrainedDescription::to_json() const {
  json::Array points;
  for (const FineGrainedPoint& p : points_) {
    json::Object o;
    o["resources"] = p.erv.to_json();
    o["utility"] = p.utility;
    o["power"] = p.power_w;
    if (!p.knobs.empty()) {
      json::Object knobs;
      for (const auto& [name, value] : p.knobs) knobs[name] = value;
      o["knobs"] = json::Value(std::move(knobs));
    }
    if (!p.thread_types.empty()) {
      json::Array threads;
      for (int type : p.thread_types) threads.emplace_back(type);
      o["threads"] = json::Value(std::move(threads));
    }
    points.emplace_back(std::move(o));
  }
  json::Object root;
  root["application"] = app_name_;
  root["points"] = json::Value(std::move(points));
  return json::Value(std::move(root));
}

Result<FineGrainedDescription> FineGrainedDescription::from_json(const json::Value& value) {
  if (!value.is_object() || !value.contains("application") || !value.contains("points"))
    return Result<FineGrainedDescription>(
        make_error("parse: description needs 'application' and 'points'"));
  FineGrainedDescription description(value.at("application").as_string());
  if (!value.at("points").is_array())
    return Result<FineGrainedDescription>(make_error("parse: 'points' must be an array"));
  for (const json::Value& pv : value.at("points").as_array()) {
    if (!pv.is_object() || !pv.contains("resources") || !pv.contains("utility") ||
        !pv.contains("power"))
      return Result<FineGrainedDescription>(
          make_error("parse: point needs resources/utility/power"));
    FineGrainedPoint point;
    auto erv = platform::ExtendedResourceVector::from_json(pv.at("resources"));
    if (!erv.ok()) return Result<FineGrainedDescription>(erv.error());
    point.erv = std::move(erv).take();
    point.utility = pv.at("utility").as_number();
    point.power_w = pv.at("power").as_number();
    if (point.utility < 0.0 || point.power_w < 0.0)
      return Result<FineGrainedDescription>(make_error("parse: negative characteristics"));
    if (pv.contains("knobs")) {
      if (!pv.at("knobs").is_object())
        return Result<FineGrainedDescription>(make_error("parse: 'knobs' must be an object"));
      for (const auto& [name, knob] : pv.at("knobs").as_object()) {
        if (!knob.is_number())
          return Result<FineGrainedDescription>(make_error("parse: knob values are numbers"));
        point.knobs[name] = knob.as_number();
      }
    }
    if (pv.contains("threads")) {
      if (!pv.at("threads").is_array())
        return Result<FineGrainedDescription>(make_error("parse: 'threads' must be an array"));
      for (const json::Value& tv : pv.at("threads").as_array())
        point.thread_types.push_back(static_cast<int>(tv.as_int()));
    }
    try {
      description.add(std::move(point));
    } catch (const CheckFailure& failure) {
      return Result<FineGrainedDescription>(
          make_error(std::string("parse: inconsistent point: ") + failure.what()));
    }
  }
  return description;
}

Result<FineGrainedDescription> FineGrainedDescription::load(const std::string& path) {
  Result<json::Value> doc = json::load_file(path);
  if (!doc.ok()) return Result<FineGrainedDescription>(doc.error());
  return from_json(doc.value());
}

Status FineGrainedDescription::save(const std::string& path) const {
  return json::save_file(path, to_json());
}

}  // namespace harp::client
