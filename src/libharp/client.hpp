// libharp — the application-side library (§4.1).
//
// libharp mediates between an application and the HARP RM: it registers the
// application (adaptivity type, capability flags), optionally submits the
// operating points from its description file, receives operating-point
// activations, and reports utility on request.
//
// Adaptivity integration (§4.1.3/§4.1.4):
//  - static apps need nothing beyond registration; the activation carries
//    the affinity grant the RM chose.
//  - scalable apps (OpenMP/TBB-style runtimes) read
//    recommended_parallelism() where the real library hooks GOMP_parallel —
//    the returned team size is max(user requested, RM assignment), exactly
//    the paper's num_threads adjustment.
//  - custom apps register an on_activate callback and reconfigure
//    themselves (the KPN parallel-region scaling of the paper).
//
// Fault tolerance: the RM is a long-lived daemon, but the link to it is not
// (RM restarts, socket hiccups). The client therefore runs a small link
// state machine — registering → connected → disconnected → (reconnect) —
// with capped exponential backoff + deterministic jitter, idempotent
// re-registration that replays the submitted operating-point table, and a
// bounded outbound queue so utility reports survive a transient disconnect.
// See DESIGN.md "Failure model & recovery".
#pragma once

#include <chrono>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/result.hpp"
#include "src/common/rng.hpp"
#include "src/ipc/transport.hpp"
#include "src/telemetry/metrics.hpp"
#include "src/telemetry/trace.hpp"

namespace harp::client {

/// A received operating-point activation (Fig. 3 step 3).
struct Activation {
  platform::ExtendedResourceVector erv;
  std::vector<ipc::ActivateMsg::CoreGrant> cores;
  int parallelism = 0;  ///< 0 = keep application default
  bool rebalance = false;
};

/// Reconnect backoff: capped exponential with deterministic jitter.
struct RetryPolicy {
  double initial_backoff_s = 0.05;
  double max_backoff_s = 2.0;
  double jitter_frac = 0.1;  ///< ± fraction of the backoff, seeded PRNG
  int max_attempts = 0;      ///< consecutive failed attempts before giving up; 0 = forever
};

struct Config {
  std::string app_name;
  ipc::WireAdaptivity adaptivity = ipc::WireAdaptivity::kScalable;
  bool provides_utility = false;
  /// PID reported to the RM; 0 = use the current process id.
  std::int32_t pid = 0;

  RetryPolicy retry;
  /// Outbound messages buffered while the link is down or busy; when full,
  /// the oldest droppable message (utility report, heartbeat) is discarded.
  std::size_t max_pending_sends = 64;
  /// Seconds of send-side silence before a liveness heartbeat; 0 = disabled.
  /// Set this well below the RM's lease when leases are enabled.
  double heartbeat_interval_s = 0.0;
  /// Retransmit interval for an unacknowledged RegisterRequest; 0 = never.
  double register_retry_s = 0.5;
  /// Seed for backoff jitter (deterministic reconnect timing in tests).
  std::uint64_t jitter_seed = 1;

  /// Optional telemetry sinks (each may be null): kReconnect / kLinkDown
  /// instants scoped by app_name plus "client_*_total" counters. These live
  /// on the client, not the channel — they survive reconnects.
  telemetry::Tracer* tracer = nullptr;
  telemetry::MetricsRegistry* metrics = nullptr;
};

struct Callbacks {
  /// Invoked whenever the RM pushes a new activation (custom adaptivity).
  std::function<void(const Activation&)> on_activate;
  /// Polled when the RM requests utility (requires provides_utility).
  std::function<double()> utility_provider;
};

/// Produces a fresh channel to the RM; consulted on every reconnect attempt.
using ChannelFactory = std::function<Result<std::unique_ptr<ipc::Channel>>()>;

/// Link state machine (see header comment).
enum class LinkState {
  kRegistering,   ///< channel up, RegisterRequest sent, awaiting ack
  kConnected,     ///< registered; normal protocol flow
  kDisconnected,  ///< link lost; reconnect pending (requires a factory)
  kClosed,        ///< deregistered or permanently given up
};

const char* to_string(LinkState state);

/// One application's connection to the HARP RM.
class HarpClient {
 public:
  /// Connect over a Unix socket and register (Fig. 3 step 1). Blocks (with
  /// a bounded number of polls) until the RM acknowledges registration.
  /// Installs a reconnect factory dialing the same socket path.
  static Result<std::unique_ptr<HarpClient>> connect(const std::string& socket_path,
                                                     Config config, Callbacks callbacks = {});

  /// Register over an existing channel — the in-process transport for tests
  /// and deterministic integrations. Blocks like connect(); the RM must be
  /// polled concurrently (e.g. from another thread).
  static Result<std::unique_ptr<HarpClient>> over_channel(std::unique_ptr<ipc::Channel> channel,
                                                          Config config,
                                                          Callbacks callbacks = {});

  /// Non-blocking construction: the RegisterRequest is sent immediately but
  /// the handshake completes during subsequent poll() calls — required for
  /// single-threaded deterministic harnesses, where blocking would deadlock.
  static Result<std::unique_ptr<HarpClient>> deferred(std::unique_ptr<ipc::Channel> channel,
                                                      Config config, Callbacks callbacks = {},
                                                      ChannelFactory factory = nullptr);

  ~HarpClient();
  HarpClient(const HarpClient&) = delete;
  HarpClient& operator=(const HarpClient&) = delete;

  /// Fig. 3 step 2: submit operating points from the description file. The
  /// points are retained and replayed on every re-registration.
  Status submit_operating_points(const std::vector<ipc::OperatingPointsMsg::Point>& points);

  /// Pump the protocol: handle pending RM messages (activations, utility
  /// requests), advance the registration handshake, attempt reconnects and
  /// emit heartbeats. Call regularly from the application's main/worker
  /// loop; the real library does this from its function hooks.
  Status poll();
  /// Same, with an explicit monotonic clock (drives backoff + heartbeats
  /// deterministically in tests).
  Status poll(double now_seconds);

  /// The most recent activation, if any.
  const std::optional<Activation>& current_activation() const { return activation_; }

  /// Team size a scalable runtime should use: the RM assignment when one is
  /// active, otherwise the user's request (the GOMP_parallel hook).
  int recommended_parallelism(int user_requested) const;

  /// Clean shutdown (also performed by the destructor). Best-effort and
  /// bounded: on a half-open or dead link the Deregister notice is skipped —
  /// the RM reclaims the grant via lease expiry — and the call still
  /// succeeds without blocking.
  Status deregister();

  /// Abrupt link loss without the Deregister notice — simulates an
  /// application crash in fault scenarios. No reconnect is attempted.
  void drop_link();

  /// Install (or replace) the reconnect factory.
  void set_channel_factory(ChannelFactory factory) { factory_ = std::move(factory); }

  std::int32_t app_id() const { return app_id_; }
  const std::string& app_name() const { return config_.app_name; }
  LinkState link_state() const { return state_; }
  bool registered() const { return state_ == LinkState::kConnected; }
  std::size_t pending_sends() const { return pending_.size(); }
  std::uint64_t dropped_sends() const { return dropped_sends_; }
  int reconnect_count() const { return reconnects_; }

 private:
  struct Pending {
    ipc::Message message;
    bool droppable = false;
  };

  HarpClient(std::unique_ptr<ipc::Channel> channel, Config config, Callbacks callbacks,
             ChannelFactory factory);
  static Result<std::unique_ptr<HarpClient>> make(std::unique_ptr<ipc::Channel> channel,
                                                  Config config, Callbacks callbacks,
                                                  ChannelFactory factory, bool blocking);
  ipc::Message register_request() const;
  Status begin_registration();
  Status block_until_registered();
  Status handle(const ipc::Message& message, double now_seconds);
  void on_registered(double now_seconds);
  /// Send now if the link is up, otherwise buffer (bounded). Returns an
  /// error only when the message can never be delivered (no factory).
  Status transmit(const ipc::Message& message, bool droppable, double now_seconds);
  void enqueue(ipc::Message message, bool droppable);
  void flush_pending(double now_seconds);
  /// React to a fatal channel error: schedule a reconnect or go kClosed.
  Status link_down(const Error& error, double now_seconds);
  void try_reconnect(double now_seconds);
  double backoff_delay(int attempt);
  double wall_clock_seconds();

  std::unique_ptr<ipc::Channel> channel_;
  Config config_;
  Callbacks callbacks_;
  ChannelFactory factory_;
  LinkState state_ = LinkState::kRegistering;
  std::int32_t app_id_ = -1;
  std::optional<Activation> activation_;
  bool deregistered_ = false;

  std::deque<Pending> pending_;
  std::uint64_t dropped_sends_ = 0;
  std::vector<ipc::OperatingPointsMsg::Point> submitted_points_;
  Rng jitter_rng_;
  int attempt_ = 0;
  double next_retry_at_ = 0.0;
  double register_sent_at_ = 0.0;
  int reconnects_ = 0;
  int malformed_from_rm_ = 0;
  double last_tx_ = 0.0;
  double last_now_ = 0.0;  ///< most recent poll() clock; timestamps out-of-poll sends
  std::optional<std::chrono::steady_clock::time_point> clock_base_;

  /// Counters resolved once at construction (null when metrics are off).
  telemetry::Counter* reconnects_counter_ = nullptr;
  telemetry::Counter* link_down_counter_ = nullptr;
  telemetry::Counter* dropped_sends_counter_ = nullptr;
  telemetry::Counter* heartbeats_counter_ = nullptr;
};

}  // namespace harp::client
