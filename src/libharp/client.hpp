// libharp — the application-side library (§4.1).
//
// libharp mediates between an application and the HARP RM: it registers the
// application (adaptivity type, capability flags), optionally submits the
// operating points from its description file, receives operating-point
// activations, and reports utility on request.
//
// Adaptivity integration (§4.1.3/§4.1.4):
//  - static apps need nothing beyond registration; the activation carries
//    the affinity grant the RM chose.
//  - scalable apps (OpenMP/TBB-style runtimes) read
//    recommended_parallelism() where the real library hooks GOMP_parallel —
//    the returned team size is max(user requested, RM assignment), exactly
//    the paper's num_threads adjustment.
//  - custom apps register an on_activate callback and reconfigure
//    themselves (the KPN parallel-region scaling of the paper).
//
// Fault tolerance: the RM is a long-lived daemon, but the link to it is not
// (RM restarts, socket hiccups). The client therefore runs a small link
// state machine — registering → connected → disconnected → (reconnect) —
// with capped exponential backoff + deterministic jitter, idempotent
// re-registration that replays the submitted operating-point table, and a
// bounded outbound queue so utility reports survive a transient disconnect.
// See DESIGN.md "Failure model & recovery".
//
// Thread safety: every public method may be called from any thread. One
// internal mutex guards the link state machine, the pending-send queue and
// the activation snapshot; user callbacks (on_activate, utility_provider)
// are always invoked with that mutex RELEASED, so a callback may call back
// into the client without deadlocking. The real library needs this because
// GOMP_parallel hooks poll from worker threads while the main thread
// submits operating points.
#pragma once

#include <chrono>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/mutex.hpp"
#include "src/common/race_registry.hpp"
#include "src/common/result.hpp"
#include "src/common/rng.hpp"
#include "src/common/thread_annotations.hpp"
#include "src/ipc/transport.hpp"
#include "src/telemetry/metrics.hpp"
#include "src/telemetry/trace.hpp"

namespace harp::client {

/// A received operating-point activation (Fig. 3 step 3).
struct Activation {
  platform::ExtendedResourceVector erv;
  std::vector<ipc::ActivateMsg::CoreGrant> cores;
  int parallelism = 0;  ///< 0 = keep application default
  bool rebalance = false;
};

/// Reconnect backoff: capped exponential with deterministic jitter.
struct RetryPolicy {
  double initial_backoff_s = 0.05;
  double max_backoff_s = 2.0;
  double jitter_frac = 0.1;  ///< ± fraction of the backoff, seeded PRNG
  int max_attempts = 0;      ///< consecutive failed attempts before giving up; 0 = forever
};

struct Config {
  std::string app_name;
  ipc::WireAdaptivity adaptivity = ipc::WireAdaptivity::kScalable;
  bool provides_utility = false;
  /// PID reported to the RM; 0 = use the current process id.
  std::int32_t pid = 0;

  RetryPolicy retry;
  /// Outbound messages buffered while the link is down or busy; when full,
  /// the oldest droppable message (utility report, heartbeat) is discarded.
  std::size_t max_pending_sends = 64;
  /// Seconds of send-side silence before a liveness heartbeat; 0 = disabled.
  /// Set this well below the RM's lease when leases are enabled.
  double heartbeat_interval_s = 0.0;
  /// Retransmit interval for an unacknowledged RegisterRequest; 0 = never.
  double register_retry_s = 0.5;
  /// Seed for backoff jitter (deterministic reconnect timing in tests).
  std::uint64_t jitter_seed = 1;

  /// Optional telemetry sinks (each may be null): kReconnect / kLinkDown
  /// instants scoped by app_name plus "client_*_total" counters. These live
  /// on the client, not the channel — they survive reconnects.
  telemetry::Tracer* tracer = nullptr;
  telemetry::MetricsRegistry* metrics = nullptr;
};

struct Callbacks {
  /// Invoked whenever the RM pushes a new activation (custom adaptivity).
  std::function<void(const Activation&)> on_activate;
  /// Polled when the RM requests utility (requires provides_utility).
  std::function<double()> utility_provider;
};

/// Produces a fresh channel to the RM; consulted on every reconnect attempt.
using ChannelFactory = std::function<Result<std::unique_ptr<ipc::Channel>>()>;

/// Link state machine (see header comment).
enum class LinkState {
  kRegistering,   ///< channel up, RegisterRequest sent, awaiting ack
  kConnected,     ///< registered; normal protocol flow
  kDisconnected,  ///< link lost; reconnect pending (requires a factory)
  kClosed,        ///< deregistered or permanently given up
};

const char* to_string(LinkState state);

/// One application's connection to the HARP RM.
class HarpClient {
 public:
  /// Connect over a Unix socket and register (Fig. 3 step 1). Blocks (with
  /// a bounded number of polls) until the RM acknowledges registration.
  /// Installs a reconnect factory dialing the same socket path.
  static Result<std::unique_ptr<HarpClient>> connect(const std::string& socket_path,
                                                     Config config, Callbacks callbacks = {});

  /// Register over an existing channel — the in-process transport for tests
  /// and deterministic integrations. Blocks like connect(); the RM must be
  /// polled concurrently (e.g. from another thread).
  static Result<std::unique_ptr<HarpClient>> over_channel(std::unique_ptr<ipc::Channel> channel,
                                                          Config config,
                                                          Callbacks callbacks = {});

  /// Non-blocking construction: the RegisterRequest is sent immediately but
  /// the handshake completes during subsequent poll() calls — required for
  /// single-threaded deterministic harnesses, where blocking would deadlock.
  static Result<std::unique_ptr<HarpClient>> deferred(std::unique_ptr<ipc::Channel> channel,
                                                      Config config, Callbacks callbacks = {},
                                                      ChannelFactory factory = nullptr);

  ~HarpClient();
  HarpClient(const HarpClient&) = delete;
  HarpClient& operator=(const HarpClient&) = delete;

  /// Fig. 3 step 2: submit operating points from the description file. The
  /// points are retained and replayed on every re-registration.
  Status submit_operating_points(const std::vector<ipc::OperatingPointsMsg::Point>& points);

  /// Pump the protocol: handle pending RM messages (activations, utility
  /// requests), advance the registration handshake, attempt reconnects and
  /// emit heartbeats. Call regularly from the application's main/worker
  /// loop; the real library does this from its function hooks.
  Status poll();
  /// Same, with an explicit monotonic clock (drives backoff + heartbeats
  /// deterministically in tests).
  Status poll(double now_seconds);

  /// Snapshot of the most recent activation, if any. Returned by value: the
  /// stored activation can be replaced by a concurrent poll() at any time,
  /// so a reference would be a use-after-move hazard.
  std::optional<Activation> current_activation() const {
    MutexLock lock(mutex_);
    return activation_;
  }

  /// Team size a scalable runtime should use: the RM assignment when one is
  /// active, otherwise the user's request (the GOMP_parallel hook).
  int recommended_parallelism(int user_requested) const;

  /// Clean shutdown (also performed by the destructor). Best-effort and
  /// bounded: on a half-open or dead link the Deregister notice is skipped —
  /// the RM reclaims the grant via lease expiry — and the call still
  /// succeeds without blocking.
  Status deregister();

  /// Abrupt link loss without the Deregister notice — simulates an
  /// application crash in fault scenarios. No reconnect is attempted.
  void drop_link();

  /// Install (or replace) the reconnect factory.
  void set_channel_factory(ChannelFactory factory) {
    MutexLock lock(mutex_);
    factory_ = std::move(factory);
  }

  std::int32_t app_id() const {
    MutexLock lock(mutex_);
    return app_id_;
  }
  const std::string& app_name() const { return config_.app_name; }
  LinkState link_state() const {
    MutexLock lock(mutex_);
    return state_;
  }
  bool registered() const { return link_state() == LinkState::kConnected; }
  std::size_t pending_sends() const {
    MutexLock lock(mutex_);
    HARP_TRACK_SHARED(&pending_);
    return pending_.size();
  }
  std::uint64_t dropped_sends() const {
    MutexLock lock(mutex_);
    return dropped_sends_;
  }
  int reconnect_count() const {
    MutexLock lock(mutex_);
    return reconnects_;
  }

 private:
  struct Pending {
    ipc::Message message;
    bool droppable = false;
  };

  /// Side effects collected under the lock and executed after it is
  /// released: activations to deliver to on_activate, and how many utility
  /// requests arrived (the provider runs unlocked, then the report is
  /// transmitted under a fresh lock).
  struct DeferredWork {
    std::vector<Activation> activations;
    int utility_requests = 0;
  };

  HarpClient(std::unique_ptr<ipc::Channel> channel, Config config, Callbacks callbacks,
             ChannelFactory factory);
  static Result<std::unique_ptr<HarpClient>> make(std::unique_ptr<ipc::Channel> channel,
                                                  Config config, Callbacks callbacks,
                                                  ChannelFactory factory, bool blocking);
  ipc::Message register_request() const;
  Status begin_registration() HARP_REQUIRES(mutex_);
  Status block_until_registered();
  Status poll_locked(double now_seconds, DeferredWork& deferred) HARP_REQUIRES(mutex_);
  Status handle(const ipc::Message& message, double now_seconds, DeferredWork& deferred)
      HARP_REQUIRES(mutex_);
  void on_registered(double now_seconds) HARP_REQUIRES(mutex_);
  /// Send now if the link is up, otherwise buffer (bounded). Returns an
  /// error only when the message can never be delivered (no factory).
  Status transmit(const ipc::Message& message, bool droppable, double now_seconds)
      HARP_REQUIRES(mutex_);
  void enqueue(ipc::Message message, bool droppable) HARP_REQUIRES(mutex_);
  void flush_pending(double now_seconds) HARP_REQUIRES(mutex_);
  /// React to a fatal channel error: schedule a reconnect or go kClosed.
  Status link_down(const Error& error, double now_seconds) HARP_REQUIRES(mutex_);
  void try_reconnect(double now_seconds) HARP_REQUIRES(mutex_);
  double backoff_delay(int attempt) HARP_REQUIRES(mutex_);
  double wall_clock_seconds();

  /// Immutable after construction; read freely from any thread.
  const Config config_;
  /// Invoked only with mutex_ released; the function objects are set once
  /// at construction and never reassigned.
  const Callbacks callbacks_;

  mutable Mutex mutex_;
  std::unique_ptr<ipc::Channel> channel_ HARP_GUARDED_BY(mutex_);
  ChannelFactory factory_ HARP_GUARDED_BY(mutex_);
  LinkState state_ HARP_GUARDED_BY(mutex_) = LinkState::kRegistering;
  std::int32_t app_id_ HARP_GUARDED_BY(mutex_) = -1;
  std::optional<Activation> activation_ HARP_GUARDED_BY(mutex_);
  bool deregistered_ HARP_GUARDED_BY(mutex_) = false;

  std::deque<Pending> pending_ HARP_GUARDED_BY(mutex_);
  std::uint64_t dropped_sends_ HARP_GUARDED_BY(mutex_) = 0;
  std::vector<ipc::OperatingPointsMsg::Point> submitted_points_ HARP_GUARDED_BY(mutex_);
  Rng jitter_rng_ HARP_GUARDED_BY(mutex_);
  int attempt_ HARP_GUARDED_BY(mutex_) = 0;
  double next_retry_at_ HARP_GUARDED_BY(mutex_) = 0.0;
  double register_sent_at_ HARP_GUARDED_BY(mutex_) = 0.0;
  int reconnects_ HARP_GUARDED_BY(mutex_) = 0;
  int malformed_from_rm_ HARP_GUARDED_BY(mutex_) = 0;
  double last_tx_ HARP_GUARDED_BY(mutex_) = 0.0;
  /// Most recent poll() clock; timestamps out-of-poll sends.
  double last_now_ HARP_GUARDED_BY(mutex_) = 0.0;
  std::optional<std::chrono::steady_clock::time_point> clock_base_ HARP_GUARDED_BY(mutex_);

  /// Counters resolved once at construction (null when metrics are off);
  /// Counter increments are internally atomic.
  telemetry::Counter* const reconnects_counter_;
  telemetry::Counter* const link_down_counter_;
  telemetry::Counter* const dropped_sends_counter_;
  telemetry::Counter* const heartbeats_counter_;
};

}  // namespace harp::client
