// libharp — the application-side library (§4.1).
//
// libharp mediates between an application and the HARP RM: it registers the
// application (adaptivity type, capability flags), optionally submits the
// operating points from the application's description file, receives
// operating-point activations, and reports utility on request.
//
// Adaptivity integration (§4.1.3/§4.1.4):
//  - static apps need nothing beyond registration; the activation carries
//    the affinity grant the RM chose.
//  - scalable apps (OpenMP/TBB-style runtimes) read
//    recommended_parallelism() where the real library hooks GOMP_parallel —
//    the returned team size is max(user requested, RM assignment), exactly
//    the paper's num_threads adjustment.
//  - custom apps register an on_activate callback and reconfigure
//    themselves (the KPN parallel-region scaling of the paper).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/result.hpp"
#include "src/ipc/transport.hpp"

namespace harp::client {

/// A received operating-point activation (Fig. 3 step 3).
struct Activation {
  platform::ExtendedResourceVector erv;
  std::vector<ipc::ActivateMsg::CoreGrant> cores;
  int parallelism = 0;  ///< 0 = keep application default
  bool rebalance = false;
};

struct Config {
  std::string app_name;
  ipc::WireAdaptivity adaptivity = ipc::WireAdaptivity::kScalable;
  bool provides_utility = false;
  /// PID reported to the RM; 0 = use the current process id.
  std::int32_t pid = 0;
};

struct Callbacks {
  /// Invoked whenever the RM pushes a new activation (custom adaptivity).
  std::function<void(const Activation&)> on_activate;
  /// Polled when the RM requests utility (requires provides_utility).
  std::function<double()> utility_provider;
};

/// One application's connection to the HARP RM.
class HarpClient {
 public:
  /// Connect over a Unix socket and register (Fig. 3 step 1). Blocks (with
  /// a bounded number of polls) until the RM acknowledges registration.
  static Result<std::unique_ptr<HarpClient>> connect(const std::string& socket_path,
                                                     Config config, Callbacks callbacks = {});

  /// Register over an existing channel — the in-process transport for tests
  /// and deterministic integrations.
  static Result<std::unique_ptr<HarpClient>> over_channel(std::unique_ptr<ipc::Channel> channel,
                                                          Config config,
                                                          Callbacks callbacks = {});

  ~HarpClient();
  HarpClient(const HarpClient&) = delete;
  HarpClient& operator=(const HarpClient&) = delete;

  /// Fig. 3 step 2: submit operating points from the description file.
  Status submit_operating_points(const std::vector<ipc::OperatingPointsMsg::Point>& points);

  /// Pump the protocol: handle any pending RM messages (activations,
  /// utility requests). Call regularly from the application's main/worker
  /// loop; the real library does this from its function hooks.
  Status poll();

  /// The most recent activation, if any.
  const std::optional<Activation>& current_activation() const { return activation_; }

  /// Team size a scalable runtime should use: the RM assignment when one is
  /// active, otherwise the user's request (the GOMP_parallel hook).
  int recommended_parallelism(int user_requested) const;

  /// Clean shutdown (also performed by the destructor).
  Status deregister();

  std::int32_t app_id() const { return app_id_; }
  const std::string& app_name() const { return config_.app_name; }

 private:
  HarpClient(std::unique_ptr<ipc::Channel> channel, Config config, Callbacks callbacks);
  Status perform_registration();
  Status handle(const ipc::Message& message);

  std::unique_ptr<ipc::Channel> channel_;
  Config config_;
  Callbacks callbacks_;
  std::int32_t app_id_ = -1;
  std::optional<Activation> activation_;
  bool deregistered_ = false;
};

}  // namespace harp::client
