#include "src/libharp/client.hpp"

#include <unistd.h>

#include <chrono>
#include <thread>

#include "src/common/check.hpp"

namespace harp::client {

HarpClient::HarpClient(std::unique_ptr<ipc::Channel> channel, Config config, Callbacks callbacks)
    : channel_(std::move(channel)), config_(std::move(config)), callbacks_(std::move(callbacks)) {}

HarpClient::~HarpClient() {
  if (!deregistered_ && channel_ != nullptr && !channel_->closed()) (void)deregister();
}

Result<std::unique_ptr<HarpClient>> HarpClient::connect(const std::string& socket_path,
                                                        Config config, Callbacks callbacks) {
  Result<std::unique_ptr<ipc::Channel>> channel = ipc::unix_connect(socket_path);
  if (!channel.ok()) return Result<std::unique_ptr<HarpClient>>(channel.error());
  return over_channel(std::move(channel).take(), std::move(config), std::move(callbacks));
}

Result<std::unique_ptr<HarpClient>> HarpClient::over_channel(
    std::unique_ptr<ipc::Channel> channel, Config config, Callbacks callbacks) {
  if (config.app_name.empty())
    return Result<std::unique_ptr<HarpClient>>(make_error("proto: app_name required"));
  if (config.provides_utility && !callbacks.utility_provider)
    return Result<std::unique_ptr<HarpClient>>(
        make_error("proto: provides_utility requires a utility_provider callback"));
  auto client = std::unique_ptr<HarpClient>(
      new HarpClient(std::move(channel), std::move(config), std::move(callbacks)));
  Status registered = client->perform_registration();
  if (!registered.ok()) return Result<std::unique_ptr<HarpClient>>(registered.error());
  return client;
}

Status HarpClient::perform_registration() {
  ipc::RegisterRequest request;
  request.pid = config_.pid != 0 ? config_.pid : static_cast<std::int32_t>(::getpid());
  request.app_name = config_.app_name;
  request.adaptivity = config_.adaptivity;
  request.provides_utility = config_.provides_utility;
  Status sent = channel_->send(ipc::Message(request));
  if (!sent.ok()) return sent;

  // Wait (bounded) for the acknowledgement; the RM answers registrations
  // promptly, so a short poll loop suffices even over real sockets.
  for (int attempt = 0; attempt < 2000; ++attempt) {
    Result<std::optional<ipc::Message>> message = channel_->poll();
    if (!message.ok()) return Status(message.error());
    if (message.value().has_value()) {
      const ipc::Message& m = *message.value();
      if (const auto* ack = std::get_if<ipc::RegisterAck>(&m)) {
        if (ack->app_id < 0) return Status(make_error("proto: registration rejected"));
        app_id_ = ack->app_id;
        return Status{};
      }
      // Tolerate an eager activation arriving before the ack is processed.
      Status handled = handle(m);
      if (!handled.ok()) return handled;
      continue;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return Status(make_error("io: registration timed out"));
}

Status HarpClient::submit_operating_points(
    const std::vector<ipc::OperatingPointsMsg::Point>& points) {
  ipc::OperatingPointsMsg msg;
  msg.points = points;
  return channel_->send(ipc::Message(msg));
}

Status HarpClient::handle(const ipc::Message& message) {
  if (const auto* activate = std::get_if<ipc::ActivateMsg>(&message)) {
    Activation activation;
    activation.erv = activate->erv;
    activation.cores = activate->cores;
    activation.parallelism = activate->parallelism;
    activation.rebalance = activate->rebalance;
    activation_ = std::move(activation);
    if (callbacks_.on_activate) callbacks_.on_activate(*activation_);
    return Status{};
  }
  if (std::holds_alternative<ipc::UtilityRequest>(message)) {
    ipc::UtilityReport report;
    report.utility = callbacks_.utility_provider ? callbacks_.utility_provider() : 0.0;
    return channel_->send(ipc::Message(report));
  }
  // Other message kinds are RM-bound; receiving one here is a peer bug.
  return Status(make_error("proto: unexpected message from RM"));
}

Status HarpClient::poll() {
  while (true) {
    Result<std::optional<ipc::Message>> message = channel_->poll();
    if (!message.ok()) return Status(message.error());
    if (!message.value().has_value()) return Status{};
    Status handled = handle(*message.value());
    if (!handled.ok()) return handled;
  }
}

int HarpClient::recommended_parallelism(int user_requested) const {
  HARP_CHECK(user_requested >= 1);
  if (!activation_.has_value() || activation_->parallelism <= 0) return user_requested;
  // §4.1.3: the GOMP_parallel hook sets num_threads to the maximum of the
  // user-given number and the RM-provided parallelisation degree.
  return std::max(user_requested, activation_->parallelism);
}

Status HarpClient::deregister() {
  deregistered_ = true;
  if (channel_ == nullptr || channel_->closed()) return Status{};
  Status sent = channel_->send(ipc::Message(ipc::Deregister{}));
  channel_->close();
  return sent;
}

}  // namespace harp::client
