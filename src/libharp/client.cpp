#include "src/libharp/client.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "src/common/check.hpp"
#include "src/common/logging.hpp"

namespace harp::client {

namespace {

/// Send-path errors that leave the channel open are transient (e.g. an
/// injected fault or a slow peer); the message is safe to retry.
bool is_transient(const ipc::Channel& channel) { return !channel.closed(); }

constexpr int kMaxMalformedFromRm = 8;

}  // namespace

const char* to_string(LinkState state) {
  switch (state) {
    case LinkState::kRegistering: return "registering";
    case LinkState::kConnected: return "connected";
    case LinkState::kDisconnected: return "disconnected";
    case LinkState::kClosed: return "closed";
  }
  return "?";
}

namespace {

telemetry::Counter* resolve_counter(telemetry::MetricsRegistry* metrics, const char* name) {
  return metrics != nullptr ? &metrics->counter(name) : nullptr;
}

}  // namespace

HarpClient::HarpClient(std::unique_ptr<ipc::Channel> channel, Config config, Callbacks callbacks,
                       ChannelFactory factory)
    : config_(std::move(config)),
      callbacks_(std::move(callbacks)),
      channel_(std::move(channel)),
      factory_(std::move(factory)),
      jitter_rng_(config_.jitter_seed),
      reconnects_counter_(resolve_counter(config_.metrics, "client_reconnects_total")),
      link_down_counter_(resolve_counter(config_.metrics, "client_link_down_total")),
      dropped_sends_counter_(resolve_counter(config_.metrics, "client_dropped_sends_total")),
      heartbeats_counter_(resolve_counter(config_.metrics, "client_heartbeats_total")) {}

HarpClient::~HarpClient() {
  bool need_deregister = false;
  {
    MutexLock lock(mutex_);
    need_deregister = !deregistered_;
  }
  if (need_deregister) (void)deregister();
  HARP_UNTRACK_SHARED(&pending_);
}

Result<std::unique_ptr<HarpClient>> HarpClient::make(std::unique_ptr<ipc::Channel> channel,
                                                     Config config, Callbacks callbacks,
                                                     ChannelFactory factory, bool blocking) {
  if (config.app_name.empty())
    return Result<std::unique_ptr<HarpClient>>(make_error("proto: app_name required"));
  if (config.provides_utility && !callbacks.utility_provider)
    return Result<std::unique_ptr<HarpClient>>(
        make_error("proto: provides_utility requires a utility_provider callback"));
  auto client = std::unique_ptr<HarpClient>(new HarpClient(
      std::move(channel), std::move(config), std::move(callbacks), std::move(factory)));
  Status begun;
  bool has_factory = false;
  {
    MutexLock lock(client->mutex_);
    begun = client->begin_registration();
    has_factory = static_cast<bool>(client->factory_);
  }
  if (!begun.ok() && !has_factory)
    return Result<std::unique_ptr<HarpClient>>(begun.error());
  if (blocking) {
    Status registered = client->block_until_registered();
    if (!registered.ok()) return Result<std::unique_ptr<HarpClient>>(registered.error());
  }
  return client;
}

Result<std::unique_ptr<HarpClient>> HarpClient::connect(const std::string& socket_path,
                                                        Config config, Callbacks callbacks) {
  Result<std::unique_ptr<ipc::Channel>> channel = ipc::unix_connect(socket_path);
  if (!channel.ok()) return Result<std::unique_ptr<HarpClient>>(channel.error());
  ChannelFactory factory = [socket_path] { return ipc::unix_connect(socket_path); };
  return make(std::move(channel).take(), std::move(config), std::move(callbacks),
              std::move(factory), /*blocking=*/true);
}

Result<std::unique_ptr<HarpClient>> HarpClient::over_channel(
    std::unique_ptr<ipc::Channel> channel, Config config, Callbacks callbacks) {
  return make(std::move(channel), std::move(config), std::move(callbacks), nullptr,
              /*blocking=*/true);
}

Result<std::unique_ptr<HarpClient>> HarpClient::deferred(std::unique_ptr<ipc::Channel> channel,
                                                         Config config, Callbacks callbacks,
                                                         ChannelFactory factory) {
  return make(std::move(channel), std::move(config), std::move(callbacks), std::move(factory),
              /*blocking=*/false);
}

ipc::Message HarpClient::register_request() const {
  ipc::RegisterRequest request;
  request.pid = config_.pid != 0 ? config_.pid : static_cast<std::int32_t>(::getpid());
  request.app_name = config_.app_name;
  request.adaptivity = config_.adaptivity;
  request.provides_utility = config_.provides_utility;
  return ipc::Message(request);
}

Status HarpClient::begin_registration() {
  state_ = LinkState::kRegistering;
  register_sent_at_ = last_now_;
  // harp-lint: allow(r12 channel sends are nonblocking: transient errors enqueue and retry, never wait)
  Status sent = channel_->send(register_request());
  if (!sent.ok()) {
    if (is_transient(*channel_)) return Status{};  // kRegistering retry timer re-sends
    // Channel already dead; reconnect machinery (if any) takes over on poll.
    state_ = factory_ ? LinkState::kDisconnected : LinkState::kClosed;
    if (factory_) next_retry_at_ = last_now_ + backoff_delay(attempt_);
    return sent;
  }
  return Status{};
}

Status HarpClient::block_until_registered() {
  // The RM answers registrations promptly, so a short poll loop suffices
  // even over real sockets. Requires the RM to be polled concurrently.
  for (int iteration = 0; iteration < 2000; ++iteration) {
    Status polled = poll();
    if (!polled.ok()) return polled;
    if (registered()) return Status{};
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return Status(make_error("io: registration timed out"));
}

double HarpClient::wall_clock_seconds() {
  auto now = std::chrono::steady_clock::now();
  MutexLock lock(mutex_);
  if (!clock_base_.has_value()) clock_base_ = now;
  return std::chrono::duration<double>(now - *clock_base_).count();
}

Status HarpClient::poll() { return poll(wall_clock_seconds()); }

Status HarpClient::poll(double now_seconds) {
  DeferredWork deferred;
  Status status;
  {
    MutexLock lock(mutex_);
    HARP_TRACK_SHARED(&pending_);
    status = poll_locked(now_seconds, deferred);
  }
  // Callbacks run with the mutex released: they may re-enter the client
  // (submit points, read state) without deadlocking, and a slow provider
  // cannot stall concurrent pollers.
  for (const Activation& activation : deferred.activations)
    if (callbacks_.on_activate) callbacks_.on_activate(activation);
  for (int i = 0; i < deferred.utility_requests; ++i) {
    ipc::UtilityReport report;
    report.utility = callbacks_.utility_provider ? callbacks_.utility_provider() : 0.0;
    MutexLock lock(mutex_);
    (void)transmit(ipc::Message(report), /*droppable=*/true, now_seconds);
  }
  return status;
}

Status HarpClient::poll_locked(double now_seconds, DeferredWork& deferred) {
  last_now_ = now_seconds;
  if (state_ == LinkState::kClosed)
    return Status(make_error("io: client closed"));
  if (state_ == LinkState::kDisconnected) {
    try_reconnect(now_seconds);
    if (state_ == LinkState::kDisconnected) return Status{};  // retry scheduled
    if (state_ == LinkState::kClosed)
      return Status(make_error("io: reconnect attempts exhausted"));
  }

  while (true) {
    // harp-lint: allow(r12 channel poll is nonblocking: reports empty when no full frame is buffered)
    Result<std::optional<ipc::Message>> message = channel_->poll();
    if (!message.ok()) {
      const std::string& what = message.error().message;
      if (!channel_->closed() && what.rfind("proto:", 0) == 0) {
        // One malformed frame from the RM; the stream is still in sync.
        if (++malformed_from_rm_ > kMaxMalformedFromRm) {
          channel_->close();
          return link_down(message.error(), now_seconds);
        }
        continue;
      }
      return link_down(message.error(), now_seconds);
    }
    if (!message.value().has_value()) break;
    malformed_from_rm_ = 0;
    Status handled = handle(*message.value(), now_seconds, deferred);
    if (!handled.ok()) return handled;
  }

  // The RegisterRequest or its ack can be lost on a flaky link; registration
  // is idempotent server-side, so retransmit on a timer until acknowledged.
  if (state_ == LinkState::kRegistering && config_.register_retry_s > 0.0 &&
      now_seconds - register_sent_at_ >= config_.register_retry_s) {
    register_sent_at_ = now_seconds;
    // harp-lint: allow(r12 channel sends are nonblocking: transient errors enqueue and retry, never wait)
    Status sent = channel_->send(register_request());
    if (!sent.ok() && !is_transient(*channel_)) return link_down(sent.error(), now_seconds);
  }

  // Liveness heartbeat: keep the RM-side lease fresh during idle stretches.
  if (state_ == LinkState::kConnected && config_.heartbeat_interval_s > 0.0 &&
      now_seconds - last_tx_ >= config_.heartbeat_interval_s) {
    if (heartbeats_counter_ != nullptr) heartbeats_counter_->inc();
    (void)transmit(ipc::Message(ipc::Heartbeat{}), /*droppable=*/true, now_seconds);
  }
  return Status{};
}

Status HarpClient::handle(const ipc::Message& message, double now_seconds,
                          DeferredWork& deferred) {
  if (const auto* ack = std::get_if<ipc::RegisterAck>(&message)) {
    if (state_ == LinkState::kConnected) return Status{};  // duplicate ack; idempotent
    if (ack->app_id < 0) {
      channel_->close();
      state_ = LinkState::kClosed;
      return Status(make_error("proto: registration rejected"));
    }
    app_id_ = ack->app_id;
    on_registered(now_seconds);
    return Status{};
  }
  if (const auto* activate = std::get_if<ipc::ActivateMsg>(&message)) {
    Activation activation;
    activation.erv = activate->erv;
    activation.cores = activate->cores;
    activation.parallelism = activate->parallelism;
    activation.rebalance = activate->rebalance;
    activation_ = std::move(activation);
    // Deliver after the lock is released (poll() drains deferred work).
    deferred.activations.push_back(*activation_);
    return Status{};
  }
  if (std::holds_alternative<ipc::UtilityRequest>(message)) {
    // The provider is user code: run it unlocked, then transmit the report
    // under a fresh lock (poll() drains deferred work).
    ++deferred.utility_requests;
    return Status{};
  }
  // Other message kinds are RM-bound; a misdelivered one is a peer bug but
  // not worth killing the link over.
  HARP_WARN << "libharp '" << config_.app_name << "': ignoring unexpected message from RM";
  return Status{};
}

void HarpClient::on_registered(double now_seconds) {
  state_ = LinkState::kConnected;
  attempt_ = 0;
  last_tx_ = now_seconds;
  // Replay the description-file table so a restarted RM regains the same
  // view it had before the link dropped (idempotent re-registration).
  if (!submitted_points_.empty()) {
    ipc::OperatingPointsMsg msg;
    msg.points = submitted_points_;
    (void)transmit(ipc::Message(msg), /*droppable=*/false, now_seconds);
  }
  flush_pending(now_seconds);
}

Status HarpClient::submit_operating_points(
    const std::vector<ipc::OperatingPointsMsg::Point>& points) {
  MutexLock lock(mutex_);
  submitted_points_.insert(submitted_points_.end(), points.begin(), points.end());
  if (state_ == LinkState::kClosed)
    return Status(make_error("io: client closed"));
  if (state_ != LinkState::kConnected) return Status{};  // replayed after registration
  ipc::OperatingPointsMsg msg;
  msg.points = points;
  return transmit(ipc::Message(msg), /*droppable=*/false, last_now_);
}

Status HarpClient::transmit(const ipc::Message& message, bool droppable, double now_seconds) {
  if (state_ == LinkState::kClosed)
    return Status(make_error("io: client closed"));
  if (state_ == LinkState::kDisconnected) {
    enqueue(message, droppable);
    return factory_ ? Status{} : Status(make_error("io: link down and no reconnect factory"));
  }
  // harp-lint: allow(r12 channel sends are nonblocking: transient errors enqueue and retry, never wait)
  Status sent = channel_->send(message);
  if (sent.ok()) {
    last_tx_ = now_seconds;
    return Status{};
  }
  if (is_transient(*channel_)) {
    enqueue(message, droppable);
    return Status{};
  }
  enqueue(message, droppable);
  return link_down(sent.error(), now_seconds);
}

void HarpClient::enqueue(ipc::Message message, bool droppable) {
  if (pending_.size() >= config_.max_pending_sends) {
    auto oldest_droppable = std::find_if(pending_.begin(), pending_.end(),
                                         [](const Pending& p) { return p.droppable; });
    if (oldest_droppable != pending_.end()) {
      pending_.erase(oldest_droppable);
      ++dropped_sends_;
      if (dropped_sends_counter_ != nullptr) dropped_sends_counter_->inc();
    } else if (droppable) {
      ++dropped_sends_;  // queue full of must-deliver messages; shed the new one
      if (dropped_sends_counter_ != nullptr) dropped_sends_counter_->inc();
      return;
    } else {
      pending_.pop_front();  // bound memory even in pathological cases
      ++dropped_sends_;
      if (dropped_sends_counter_ != nullptr) dropped_sends_counter_->inc();
    }
  }
  pending_.push_back(Pending{std::move(message), droppable});
}

void HarpClient::flush_pending(double now_seconds) {
  while (!pending_.empty() && state_ == LinkState::kConnected) {
    Pending entry = std::move(pending_.front());
    pending_.pop_front();
    // harp-lint: allow(r12 channel sends are nonblocking: transient errors enqueue and retry, never wait)
    Status sent = channel_->send(entry.message);
    if (sent.ok()) {
      last_tx_ = now_seconds;
      continue;
    }
    // Put it back and stop: either a transient hiccup (retried on the next
    // flush) or the link just died (reconnect machinery takes over).
    pending_.push_front(std::move(entry));
    if (!is_transient(*channel_)) (void)link_down(sent.error(), now_seconds);
    break;
  }
}

Status HarpClient::link_down(const Error& error, double now_seconds) {
  channel_->close();
  if (link_down_counter_ != nullptr) link_down_counter_->inc();
  if (config_.tracer != nullptr)
    config_.tracer->instant(telemetry::EventType::kLinkDown, config_.app_name, {},
                            {{"error", error.message}});
  if (deregistered_) {
    state_ = LinkState::kClosed;
    return Status{};
  }
  if (!factory_) {
    state_ = LinkState::kClosed;
    return Status(error);
  }
  state_ = LinkState::kDisconnected;
  attempt_ = 0;
  next_retry_at_ = now_seconds + backoff_delay(attempt_);
  HARP_INFO << "libharp '" << config_.app_name << "': link lost (" << error.message
            << "); reconnecting";
  return Status{};
}

double HarpClient::backoff_delay(int attempt) {
  double base = config_.retry.initial_backoff_s * static_cast<double>(1ull << std::min(attempt, 20));
  base = std::min(base, config_.retry.max_backoff_s);
  double jitter = 1.0 + config_.retry.jitter_frac * (2.0 * jitter_rng_.uniform() - 1.0);
  return base * std::max(jitter, 0.0);
}

void HarpClient::try_reconnect(double now_seconds) {
  if (now_seconds < next_retry_at_) return;
  Result<std::unique_ptr<ipc::Channel>> fresh = factory_();
  if (fresh.ok()) {
    channel_ = std::move(fresh).take();
    ++reconnects_;
    if (reconnects_counter_ != nullptr) reconnects_counter_->inc();
    if (config_.tracer != nullptr)
      config_.tracer->instant(telemetry::EventType::kReconnect, config_.app_name,
                              {{"attempt", static_cast<double>(attempt_)}});
    malformed_from_rm_ = 0;
    Status begun = begin_registration();
    if (begun.ok() || state_ == LinkState::kRegistering) return;
  }
  ++attempt_;
  if (config_.retry.max_attempts > 0 && attempt_ >= config_.retry.max_attempts) {
    state_ = LinkState::kClosed;
    return;
  }
  state_ = LinkState::kDisconnected;
  next_retry_at_ = now_seconds + backoff_delay(attempt_);
}

int HarpClient::recommended_parallelism(int user_requested) const {
  HARP_CHECK(user_requested >= 1);
  MutexLock lock(mutex_);
  if (!activation_.has_value() || activation_->parallelism <= 0) return user_requested;
  // §4.1.3: the GOMP_parallel hook sets num_threads to the maximum of the
  // user-given number and the RM-provided parallelisation degree.
  return std::max(user_requested, activation_->parallelism);
}

Status HarpClient::deregister() {
  // Take ownership of the channel under the lock, then do the farewell I/O
  // outside it (r12): once state_ is kClosed every other locked path bails
  // before touching channel_, so a slow half-open peer can no longer hold the
  // client mutex against concurrent pollers during shutdown.
  std::unique_ptr<ipc::Channel> channel;
  {
    MutexLock lock(mutex_);
    HARP_TRACK_SHARED(&pending_);
    deregistered_ = true;
    if (channel_ != nullptr && !channel_->closed() &&
        (state_ == LinkState::kConnected || state_ == LinkState::kRegistering))
      channel = std::move(channel_);
    else if (channel_ != nullptr)
      channel_->close();
    pending_.clear();
    state_ = LinkState::kClosed;
  }
  if (channel != nullptr) {
    // Single bounded, best-effort send: a half-open peer must not block or
    // fail shutdown — the RM's lease reclaims the grant either way.
    (void)channel->send(ipc::Message(ipc::Deregister{}));
    channel->close();
  }
  return Status{};
}

void HarpClient::drop_link() {
  MutexLock lock(mutex_);
  HARP_TRACK_SHARED(&pending_);
  if (channel_ != nullptr) channel_->close();
  pending_.clear();
  deregistered_ = true;  // crash semantics: no Deregister notice ever goes out
  state_ = LinkState::kClosed;
}

}  // namespace harp::client
