// Fine-grained operating points (§4.1.2).
//
// Coarse-grained points describe only an extended resource vector; fine-
// grained points additionally carry detailed thread-to-core-type mappings
// and in-application adaptivity-knob values. Crucially, the RM never sees
// that detail: libharp communicates only the extended resource vector and
// the non-functional characteristics, and resolves the RM's activation back
// to the matching fine-grained variant on the application side — exactly
// the split the paper describes ("even in the case of fine-grained
// operating points, the RM does not receive detailed thread-to-core
// mappings or adaptivity knob values").
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/common/result.hpp"
#include "src/ipc/messages.hpp"
#include "src/json/json.hpp"
#include "src/platform/resource_vector.hpp"

namespace harp::client {

/// One fine-grained configuration variant, kept application-side.
struct FineGrainedPoint {
  /// The compact representation the RM sees.
  platform::ExtendedResourceVector erv;
  double utility = 0.0;
  double power_w = 0.0;

  /// Adaptivity-knob values for this variant (e.g. {"pipeline_depth": 3,
  /// "algorithm": 1}); semantics are private to the application.
  std::map<std::string, double> knobs;

  /// Optional per-thread core-type assignment (thread i runs on a core of
  /// type thread_types[i]); must be consistent with `erv` when present.
  std::vector<int> thread_types;
};

/// An application description with fine-grained variants: feeds the coarse
/// view to the RM and resolves activations back to variants.
class FineGrainedDescription {
 public:
  FineGrainedDescription() = default;
  explicit FineGrainedDescription(std::string app_name) : app_name_(std::move(app_name)) {}

  const std::string& app_name() const { return app_name_; }
  std::size_t size() const { return points_.size(); }
  const std::vector<FineGrainedPoint>& points() const { return points_; }

  /// Add a variant. Throws CheckFailure if thread_types contradicts the
  /// extended resource vector (thread count or per-type counts mismatch).
  void add(FineGrainedPoint point);

  /// The coarse projection submitted to the RM (Fig. 3 step 2).
  std::vector<ipc::OperatingPointsMsg::Point> coarse_points() const;

  /// Resolve an activated extended resource vector to the variant it came
  /// from; nullptr if the RM activated a configuration this description
  /// does not contain (e.g. a co-allocation fallback).
  const FineGrainedPoint* match(const platform::ExtendedResourceVector& erv) const;

  /// Description-file serialisation:
  /// {"application": n, "points": [{resources, utility, power,
  ///   knobs?: {name: value}, threads?: [type...]}]}.
  json::Value to_json() const;
  static Result<FineGrainedDescription> from_json(const json::Value& value);
  static Result<FineGrainedDescription> load(const std::string& path);
  Status save(const std::string& path) const;

 private:
  std::string app_name_;
  std::vector<FineGrainedPoint> points_;
};

}  // namespace harp::client
