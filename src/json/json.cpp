#include "src/json/json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/common/check.hpp"

namespace harp::json {

Value::Value(Array a) : type_(Type::kArray), array_(std::make_shared<Array>(std::move(a))) {}
Value::Value(Object o) : type_(Type::kObject), object_(std::make_shared<Object>(std::move(o))) {}

bool Value::as_bool() const {
  HARP_CHECK_MSG(is_bool(), "json: expected bool");
  return bool_;
}

double Value::as_number() const {
  HARP_CHECK_MSG(is_number(), "json: expected number");
  return number_;
}

std::int64_t Value::as_int() const {
  double d = as_number();
  double r = std::round(d);
  HARP_CHECK_MSG(std::abs(d - r) < 1e-9, "json: expected integer, got " << d);
  return static_cast<std::int64_t>(r);
}

const std::string& Value::as_string() const {
  HARP_CHECK_MSG(is_string(), "json: expected string");
  return string_;
}

const Array& Value::as_array() const {
  HARP_CHECK_MSG(is_array(), "json: expected array");
  return *array_;
}

Array& Value::as_array() {
  HARP_CHECK_MSG(is_array(), "json: expected array");
  return *array_;
}

const Object& Value::as_object() const {
  HARP_CHECK_MSG(is_object(), "json: expected object");
  return *object_;
}

Object& Value::as_object() {
  HARP_CHECK_MSG(is_object(), "json: expected object");
  return *object_;
}

const Value& Value::at(const std::string& key) const {
  const Object& obj = as_object();
  auto it = obj.find(key);
  HARP_CHECK_MSG(it != obj.end(), "json: missing key '" << key << "'");
  return it->second;
}

bool Value::contains(const std::string& key) const {
  return is_object() && object_->count(key) > 0;
}

double Value::number_or(const std::string& key, double fallback) const {
  return contains(key) ? at(key).as_number() : fallback;
}

std::int64_t Value::int_or(const std::string& key, std::int64_t fallback) const {
  return contains(key) ? at(key).as_int() : fallback;
}

bool Value::bool_or(const std::string& key, bool fallback) const {
  return contains(key) ? at(key).as_bool() : fallback;
}

std::string Value::string_or(const std::string& key, const std::string& fallback) const {
  return contains(key) ? at(key).as_string() : fallback;
}

bool Value::operator==(const Value& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kNumber: return number_ == other.number_;
    case Type::kString: return string_ == other.string_;
    case Type::kArray: return *array_ == *other.array_;
    case Type::kObject: return *object_ == *other.object_;
  }
  return false;
}

namespace {

/// Recursive-descent strict JSON parser with line/column error reporting.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> parse_document() {
    skip_ws();
    Value v;
    if (!parse_value(v)) return fail_;
    skip_ws();
    if (pos_ != text_.size()) return error("trailing characters after document");
    return v;
  }

 private:
  bool parse_value(Value& out) {
    if (pos_ >= text_.size()) return set_error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': return parse_string_value(out);
      case 't': return parse_literal("true", Value(true), out);
      case 'f': return parse_literal("false", Value(false), out);
      case 'n': return parse_literal("null", Value(nullptr), out);
      default: return parse_number(out);
    }
  }

  bool parse_object(Value& out) {
    ++pos_;  // consume '{'
    Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      out = Value(std::move(obj));
      return true;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') return set_error("expected object key string");
      std::string key;
      if (!parse_raw_string(key)) return false;
      skip_ws();
      if (peek() != ':') return set_error("expected ':' after object key");
      ++pos_;
      skip_ws();
      Value member;
      if (!parse_value(member)) return false;
      obj.emplace(std::move(key), std::move(member));
      skip_ws();
      char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        out = Value(std::move(obj));
        return true;
      }
      return set_error("expected ',' or '}' in object");
    }
  }

  bool parse_array(Value& out) {
    ++pos_;  // consume '['
    Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      out = Value(std::move(arr));
      return true;
    }
    while (true) {
      skip_ws();
      Value element;
      if (!parse_value(element)) return false;
      arr.push_back(std::move(element));
      skip_ws();
      char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        out = Value(std::move(arr));
        return true;
      }
      return set_error("expected ',' or ']' in array");
    }
  }

  bool parse_string_value(Value& out) {
    std::string s;
    if (!parse_raw_string(s)) return false;
    out = Value(std::move(s));
    return true;
  }

  bool parse_raw_string(std::string& out) {
    ++pos_;  // consume '"'
    out.clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return set_error("unterminated escape");
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return set_error("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return set_error("invalid hex digit in \\u escape");
            }
            append_utf8(out, code);
            break;
          }
          default: return set_error("invalid escape character");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return set_error("raw control character in string");
      } else {
        out.push_back(c);
      }
    }
    return set_error("unterminated string");
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  bool parse_literal(std::string_view literal, Value value, Value& out) {
    if (text_.substr(pos_, literal.size()) != literal)
      return set_error("invalid literal");
    pos_ += literal.size();
    out = std::move(value);
    return true;
  }

  bool parse_number(Value& out) {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) return set_error("invalid number");
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return set_error("invalid fraction");
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return set_error("invalid exponent");
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    std::string token(text_.substr(start, pos_ - start));
    double value = 0.0;
    try {
      value = std::stod(token);
    } catch (const std::exception&) {
      return set_error("number out of range");
    }
    if (!std::isfinite(value)) return set_error("non-finite number");
    out = Value(value);
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
      else break;
    }
  }

  Result<Value> error(const std::string& message) {
    set_error(message);
    return fail_;
  }

  bool set_error(const std::string& message) {
    std::size_t line = 1;
    std::size_t col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    std::ostringstream oss;
    oss << "parse: " << message << " at line " << line << ", column " << col;
    fail_ = Result<Value>(make_error(oss.str()));
    return false;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  Result<Value> fail_{make_error("parse: unknown error")};
};

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_number(double d, std::string& out) {
  // Exact integers print as integers; everything else gets %.17g, which
  // round-trips every finite double. The integer test must be exact (d == r,
  // not "close"): snapping nearby values would make dump/parse lossy —
  // nextafter(1.0) has to survive a round-trip (QoS request traces and the
  // telemetry JSONL format rely on it). -0.0 takes the %.17g path to keep
  // its sign bit.
  double r = std::round(d);
  if (d == r && std::abs(d) < 1e15 && !(d == 0.0 && std::signbit(d))) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(r));
    out += buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
  }
}

void dump_value(const Value& v, int indent, int depth, std::string& out) {
  auto newline = [&](int d) {
    if (indent > 0) {
      out.push_back('\n');
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  switch (v.type()) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += v.as_bool() ? "true" : "false"; break;
    case Type::kNumber: dump_number(v.as_number(), out); break;
    case Type::kString: dump_string(v.as_string(), out); break;
    case Type::kArray: {
      const Array& arr = v.as_array();
      if (arr.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < arr.size(); ++i) {
        newline(depth + 1);
        dump_value(arr[i], indent, depth + 1, out);
        if (i + 1 < arr.size()) out.push_back(',');
        else if (indent == 0) continue;
      }
      newline(depth);
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      const Object& obj = v.as_object();
      if (obj.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      std::size_t i = 0;
      for (const auto& [key, member] : obj) {
        newline(depth + 1);
        dump_string(key, out);
        out.push_back(':');
        if (indent > 0) out.push_back(' ');
        dump_value(member, indent, depth + 1, out);
        if (++i < obj.size()) out.push_back(',');
      }
      newline(depth);
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

Result<Value> parse(std::string_view text) { return Parser(text).parse_document(); }

std::string dump(const Value& value, int indent) {
  std::string out;
  dump_value(value, indent, 0, out);
  return out;
}

Result<Value> load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Result<Value>(make_error("io: cannot open " + path));
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

Status save_file(const std::string& path, const Value& value, int indent) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status(make_error("io: cannot write " + path));
  out << dump(value, indent) << '\n';
  return out ? Status{} : Status(make_error("io: write failed for " + path));
}

}  // namespace harp::json
