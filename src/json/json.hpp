// Minimal JSON document model, parser, and writer.
//
// HARP stores its configuration — hardware descriptions and application
// operating-point files — in a /etc/harp-style directory of JSON documents
// (paper §4.3). The library has no external dependencies, so this module
// implements the small JSON subset those files need: null, bool, finite
// numbers, strings with standard escapes, arrays, objects. Comments and
// trailing commas are rejected (strict JSON).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.hpp"

namespace harp::json {

class Value;

using Array = std::vector<Value>;
/// std::map keeps keys ordered so serialisation is deterministic, which the
/// golden-file tests rely on.
using Object = std::map<std::string, Value>;

enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

/// A JSON value with value semantics. Accessors are checked: asking for the
/// wrong type throws harp::CheckFailure, because config-shape errors are
/// caught by the schema-validating loaders before the typed accessors run.
class Value {
 public:
  Value() : type_(Type::kNull) {}
  Value(std::nullptr_t) : type_(Type::kNull) {}            // NOLINT
  Value(bool b) : type_(Type::kBool), bool_(b) {}          // NOLINT
  Value(double d) : type_(Type::kNumber), number_(d) {}    // NOLINT
  Value(int i) : type_(Type::kNumber), number_(i) {}       // NOLINT
  Value(std::int64_t i) : type_(Type::kNumber), number_(static_cast<double>(i)) {}  // NOLINT
  Value(const char* s) : type_(Type::kString), string_(s) {}           // NOLINT
  Value(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  Value(Array a);   // NOLINT
  Value(Object o);  // NOLINT

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const;
  double as_number() const;
  /// Number access with an integrality check (|x - round(x)| < 1e-9).
  std::int64_t as_int() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  Array& as_array();
  const Object& as_object() const;
  Object& as_object();

  /// Object member lookup; throws if this is not an object or key is absent.
  const Value& at(const std::string& key) const;
  /// True if this is an object containing `key`.
  bool contains(const std::string& key) const;
  /// Object member lookup with a default for absent keys.
  double number_or(const std::string& key, double fallback) const;
  std::int64_t int_or(const std::string& key, std::int64_t fallback) const;
  bool bool_or(const std::string& key, bool fallback) const;
  std::string string_or(const std::string& key, const std::string& fallback) const;

  bool operator==(const Value& other) const;

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::shared_ptr<Array> array_;    // shared for cheap copies of big configs
  std::shared_ptr<Object> object_;
};

/// Parse a complete JSON document. Errors carry a "parse:" prefix plus
/// line/column of the offending character.
Result<Value> parse(std::string_view text);

/// Serialise. `indent` > 0 pretty-prints with that many spaces per level.
std::string dump(const Value& value, int indent = 0);

/// Convenience file helpers used by the config loaders.
Result<Value> load_file(const std::string& path);
Status save_file(const std::string& path, const Value& value, int indent = 2);

}  // namespace harp::json
