#include "src/ipc/messages.hpp"

#include "src/common/check.hpp"
#include "src/ipc/wire.hpp"

namespace harp::ipc {

namespace {

void write_erv(WireWriter& w, const platform::ExtendedResourceVector& erv) {
  w.u32(static_cast<std::uint32_t>(erv.num_types()));
  for (int t = 0; t < erv.num_types(); ++t) {
    w.u32(static_cast<std::uint32_t>(erv.smt_levels(t)));
    for (int k = 1; k <= erv.smt_levels(t); ++k) w.i32(erv.count(t, k));
  }
}

bool read_erv(WireReader& r, platform::ExtendedResourceVector& erv) {
  std::uint32_t num_types = 0;
  if (!r.u32(num_types) || num_types == 0 || num_types > 16) return false;
  std::vector<std::vector<int>> counts(num_types);
  for (std::uint32_t t = 0; t < num_types; ++t) {
    std::uint32_t levels = 0;
    if (!r.u32(levels) || levels == 0 || levels > 8) return false;
    counts[t].resize(levels);
    for (std::uint32_t k = 0; k < levels; ++k) {
      std::int32_t c = 0;
      if (!r.i32(c) || c < 0 || c > 4096) return false;
      counts[t][k] = c;
    }
  }
  erv = platform::ExtendedResourceVector::from_counts(std::move(counts));
  return true;
}

Result<Message> proto_error(const char* what) {
  return Result<Message>(make_error(std::string("proto: ") + what));
}

}  // namespace

MessageType type_of(const Message& message) {
  struct Visitor {
    MessageType operator()(const RegisterRequest&) { return MessageType::kRegisterRequest; }
    MessageType operator()(const RegisterAck&) { return MessageType::kRegisterAck; }
    MessageType operator()(const OperatingPointsMsg&) { return MessageType::kOperatingPoints; }
    MessageType operator()(const ActivateMsg&) { return MessageType::kActivate; }
    MessageType operator()(const UtilityRequest&) { return MessageType::kUtilityRequest; }
    MessageType operator()(const UtilityReport&) { return MessageType::kUtilityReport; }
    MessageType operator()(const Deregister&) { return MessageType::kDeregister; }
    MessageType operator()(const Heartbeat&) { return MessageType::kHeartbeat; }
  };
  return std::visit(Visitor{}, message);
}

std::vector<std::uint8_t> encode(const Message& message) {
  WireWriter payload;
  std::visit(
      [&payload](const auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, RegisterRequest>) {
          payload.i32(msg.pid);
          payload.string(msg.app_name);
          payload.u8(static_cast<std::uint8_t>(msg.adaptivity));
          payload.boolean(msg.provides_utility);
        } else if constexpr (std::is_same_v<T, RegisterAck>) {
          payload.i32(msg.app_id);
        } else if constexpr (std::is_same_v<T, OperatingPointsMsg>) {
          payload.u32(static_cast<std::uint32_t>(msg.points.size()));
          for (const OperatingPointsMsg::Point& p : msg.points) {
            write_erv(payload, p.erv);
            payload.f64(p.utility);
            payload.f64(p.power_w);
          }
        } else if constexpr (std::is_same_v<T, ActivateMsg>) {
          write_erv(payload, msg.erv);
          payload.u32(static_cast<std::uint32_t>(msg.cores.size()));
          for (const ActivateMsg::CoreGrant& grant : msg.cores) {
            payload.i32(grant.type);
            payload.i32(grant.core);
            payload.i32(grant.threads);
          }
          payload.i32(msg.parallelism);
          payload.boolean(msg.rebalance);
        } else if constexpr (std::is_same_v<T, UtilityReport>) {
          payload.f64(msg.utility);
        }
        // UtilityRequest, Deregister and Heartbeat have empty payloads.
      },
      message);

  std::vector<std::uint8_t> frame = encode_frame_header(
      static_cast<std::uint16_t>(type_of(message)),
      static_cast<std::uint32_t>(payload.bytes().size()));
  const std::vector<std::uint8_t>& body = payload.bytes();
  frame.insert(frame.end(), body.begin(), body.end());
  return frame;
}

Result<Message> decode(MessageType type, const std::vector<std::uint8_t>& payload) {
  WireReader r(payload);
  switch (type) {
    case MessageType::kRegisterRequest: {
      RegisterRequest msg;
      std::uint8_t adaptivity = 0;
      if (!r.i32(msg.pid) || !r.string(msg.app_name) || !r.u8(adaptivity) ||
          !r.boolean(msg.provides_utility) || !r.at_end())
        return proto_error("malformed RegisterRequest");
      if (adaptivity > 2) return proto_error("invalid adaptivity type");
      msg.adaptivity = static_cast<WireAdaptivity>(adaptivity);
      return Message(msg);
    }
    case MessageType::kRegisterAck: {
      RegisterAck msg;
      if (!r.i32(msg.app_id) || !r.at_end()) return proto_error("malformed RegisterAck");
      return Message(msg);
    }
    case MessageType::kOperatingPoints: {
      OperatingPointsMsg msg;
      std::uint32_t count = 0;
      if (!r.u32(count) || count > 100000) return proto_error("malformed OperatingPoints");
      msg.points.resize(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        if (!read_erv(r, msg.points[i].erv) || !r.f64(msg.points[i].utility) ||
            !r.f64(msg.points[i].power_w))
          return proto_error("malformed operating point");
        if (msg.points[i].utility < 0.0 || msg.points[i].power_w < 0.0)
          return proto_error("negative operating-point characteristics");
      }
      if (!r.at_end()) return proto_error("trailing bytes in OperatingPoints");
      return Message(msg);
    }
    case MessageType::kActivate: {
      ActivateMsg msg;
      std::uint32_t count = 0;
      if (!read_erv(r, msg.erv) || !r.u32(count) || count > 4096)
        return proto_error("malformed Activate");
      msg.cores.resize(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        ActivateMsg::CoreGrant& grant = msg.cores[i];
        if (!r.i32(grant.type) || !r.i32(grant.core) || !r.i32(grant.threads))
          return proto_error("malformed core grant");
        if (grant.type < 0 || grant.core < 0 || grant.threads < 1)
          return proto_error("invalid core grant");
      }
      if (!r.i32(msg.parallelism) || !r.boolean(msg.rebalance) || !r.at_end())
        return proto_error("malformed Activate tail");
      if (msg.parallelism < 0) return proto_error("negative parallelism");
      return Message(msg);
    }
    case MessageType::kUtilityRequest: {
      if (!payload.empty()) return proto_error("UtilityRequest carries payload");
      return Message(UtilityRequest{});
    }
    case MessageType::kUtilityReport: {
      UtilityReport msg;
      if (!r.f64(msg.utility) || !r.at_end()) return proto_error("malformed UtilityReport");
      return Message(msg);
    }
    case MessageType::kDeregister: {
      if (!payload.empty()) return proto_error("Deregister carries payload");
      return Message(Deregister{});
    }
    case MessageType::kHeartbeat: {
      if (!payload.empty()) return proto_error("Heartbeat carries payload");
      return Message(Heartbeat{});
    }
  }
  return proto_error("unknown message type");
}

}  // namespace harp::ipc
