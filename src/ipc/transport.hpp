// Message transports: AF_UNIX sockets (as in the paper, §4.1.1) plus a
// deterministic in-process pair for tests and simulator integration.
//
// Both transports move complete frames produced by the messages codec, so
// the protocol behaviour is identical regardless of the channel; the
// in-process pair still round-trips every message through the binary wire
// format to keep the codec honest.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "src/common/result.hpp"
#include "src/ipc/messages.hpp"
#include "src/telemetry/metrics.hpp"
#include "src/telemetry/trace.hpp"

namespace harp::ipc {

/// Optional per-channel telemetry sink: frame counters plus kIpcSend /
/// kIpcRecv instants labelled with `scope` ("rm", the app name, ...).
/// Copyable value; all-null pointers disable everything at a null check per
/// frame. Decorators (fault injection) forward it to their inner channel.
struct ChannelTelemetry {
  telemetry::Tracer* tracer = nullptr;
  telemetry::MetricsRegistry* metrics = nullptr;
  telemetry::Counter* frames_sent = nullptr;      ///< "ipc_frames_sent_total"
  telemetry::Counter* frames_received = nullptr;  ///< "ipc_frames_received_total"
  std::string scope;

  /// Resolve the shared frame counters from `metrics` (either pointer may
  /// be null) and label events with `scope`.
  static ChannelTelemetry for_scope(telemetry::Tracer* tracer,
                                    telemetry::MetricsRegistry* metrics, std::string scope);

  void on_frame_sent(std::size_t bytes) const;
  void on_frame_received(std::size_t bytes) const;
};

/// A bidirectional, non-blocking message channel.
///
/// Error taxonomy (matched on message prefix, see result.hpp):
///  - "proto:" — a single malformed frame was consumed; the channel remains
///    usable and subsequent poll()s deliver later frames. Callers decide how
///    many strikes a peer gets.
///  - "io:"    — the link itself failed (peer closed, socket error); the
///    channel is unusable and closed() turns true.
class Channel {
 public:
  virtual ~Channel() = default;

  /// Send one message. Blocks briefly if the peer is slow; fails once the
  /// channel is closed.
  virtual Status send(const Message& message) = 0;

  /// Send a pre-encoded (possibly deliberately malformed) frame verbatim.
  /// The escape hatch the fault-injection layer uses to put truncated or
  /// garbage bytes on the wire; transports without a byte path may refuse.
  virtual Status send_raw(const std::vector<std::uint8_t>& frame) {
    (void)frame;
    return Status(make_error("io: raw frames unsupported on this channel"));
  }

  /// Non-blocking receive: nullopt when no complete message is pending.
  /// A protocol violation or a closed peer yields an error (see taxonomy).
  virtual Result<std::optional<Message>> poll() = 0;

  virtual bool closed() const = 0;
  virtual void close() = 0;

  /// Install (or replace) the channel's telemetry sink. Default: ignored —
  /// transports without instrumentation stay zero-cost.
  virtual void set_telemetry(ChannelTelemetry telemetry) { (void)telemetry; }

  // Event-loop integration (src/ipc/event_loop.hpp). Decorators (fault
  // injection) forward all four to the inner channel.

  /// OS-pollable readiness handle (the socket fd); -1 when the transport has
  /// none (in-process queues) — such channels signal via the ready hook.
  virtual int native_handle() const { return -1; }

  /// Install a hook invoked when a frame lands on this channel's receive
  /// path (possibly from the sending thread). Fd-backed transports ignore it
  /// — their fd *is* the readiness signal. Pass nullptr to uninstall. The
  /// hook must not call back into the channel.
  virtual void set_ready_hook(std::function<void()> hook) { (void)hook; }

  /// Switch send() between the default bounded-blocking mode (poll(2)-wait
  /// for a slow peer, used by standalone clients) and event-loop mode, where
  /// a frame tail that does not fit the socket buffer is queued and flushed
  /// by flush_pending() on the next writable readiness event. Transports
  /// that never block ignore it.
  virtual void set_nonblocking_send(bool on) { (void)on; }

  /// True when buffered outbound bytes await a writable fd (event-loop mode).
  virtual bool has_pending_send() const { return false; }

  /// Write buffered outbound bytes until drained or the socket fills again.
  /// No-op when nothing is pending.
  virtual Status flush_pending() { return Status{}; }
};

/// Create a connected in-process channel pair (RM end, app end).
std::pair<std::unique_ptr<Channel>, std::unique_ptr<Channel>> make_in_process_pair();

/// Unix-domain-socket listener (the RM's registration socket, Fig. 3).
class UnixServer {
 public:
  ~UnixServer();
  UnixServer(const UnixServer&) = delete;
  UnixServer& operator=(const UnixServer&) = delete;

  /// Bind and listen; an existing stale socket file is replaced.
  static Result<std::unique_ptr<UnixServer>> listen(const std::string& path);

  /// Non-blocking accept: nullopt when no client is waiting. Interrupted
  /// syscalls (EINTR) are retried, never surfaced.
  Result<std::optional<std::unique_ptr<Channel>>> accept();

  const std::string& path() const { return path_; }
  /// Listen fd, for event-loop registration (readable = client waiting).
  int fd() const { return fd_; }

 private:
  UnixServer(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  int fd_;
  std::string path_;
};

/// Connect to a UnixServer as a libharp client.
Result<std::unique_ptr<Channel>> unix_connect(const std::string& path);

/// Wrap an already connected stream-socket fd (socketpair(2), accepted
/// connections from foreign listeners) in the Unix framing channel. Takes
/// ownership of the fd and switches it to non-blocking.
std::unique_ptr<Channel> channel_from_fd(int fd);

}  // namespace harp::ipc
