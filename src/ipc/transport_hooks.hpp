// Test seam for the Unix transport's syscalls.
//
// The EINTR/EAGAIN regression tests (tests/event_loop_test.cpp) need to make
// recv/send/poll/accept fail with scripted errnos on demand, which no real
// socket can do deterministically. transport.cpp routes every such syscall
// through these function pointers; tests swap one in, exercise the channel,
// and restore the default. Production code never touches this header beyond
// the default initialisation, so the indirection costs one load per syscall.
//
// Not thread-safe: swap hooks only in single-threaded test sections and
// restore them before the test returns (see ScopedSyscallOverride in the
// tests).
#pragma once

#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>

namespace harp::ipc {

struct SyscallHooks {
  ssize_t (*recv)(int fd, void* buf, size_t len, int flags) = nullptr;
  ssize_t (*send)(int fd, const void* buf, size_t len, int flags) = nullptr;
  int (*poll)(struct pollfd* fds, nfds_t nfds, int timeout) = nullptr;
  int (*accept)(int fd, struct sockaddr* addr, socklen_t* addr_len) = nullptr;
};

/// The active hook set. Null members mean "call the real syscall".
SyscallHooks& syscall_hooks();

}  // namespace harp::ipc
