#include "src/ipc/wire.hpp"

#include <cstring>

namespace harp::ipc {

void WireWriter::u8(std::uint8_t v) { bytes_.push_back(v); }

void WireWriter::u16(std::uint16_t v) {
  bytes_.push_back(static_cast<std::uint8_t>(v));
  bytes_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void WireWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void WireWriter::i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }

void WireWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void WireWriter::boolean(bool v) { u8(v ? 1 : 0); }

void WireWriter::string(const std::string& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  bytes_.insert(bytes_.end(), v.begin(), v.end());
}

bool WireReader::take(std::size_t n, const std::uint8_t** out) {
  if (!ok_ || pos_ + n > bytes_.size()) {
    ok_ = false;
    return false;
  }
  *out = bytes_.data() + pos_;
  pos_ += n;
  return true;
}

bool WireReader::u8(std::uint8_t& v) {
  const std::uint8_t* p = nullptr;
  if (!take(1, &p)) return false;
  v = p[0];
  return true;
}

bool WireReader::u16(std::uint16_t& v) {
  const std::uint8_t* p = nullptr;
  if (!take(2, &p)) return false;
  v = static_cast<std::uint16_t>(p[0] | (p[1] << 8));
  return true;
}

bool WireReader::u32(std::uint32_t& v) {
  const std::uint8_t* p = nullptr;
  if (!take(4, &p)) return false;
  v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return true;
}

bool WireReader::u64(std::uint64_t& v) {
  const std::uint8_t* p = nullptr;
  if (!take(8, &p)) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return true;
}

bool WireReader::i32(std::int32_t& v) {
  std::uint32_t raw = 0;
  if (!u32(raw)) return false;
  v = static_cast<std::int32_t>(raw);
  return true;
}

bool WireReader::f64(double& v) {
  std::uint64_t bits = 0;
  if (!u64(bits)) return false;
  std::memcpy(&v, &bits, sizeof(v));
  return true;
}

bool WireReader::boolean(bool& v) {
  std::uint8_t raw = 0;
  if (!u8(raw)) return false;
  v = raw != 0;
  return true;
}

bool WireReader::string(std::string& v) {
  std::uint32_t size = 0;
  if (!u32(size)) return false;
  if (size > kMaxPayloadBytes) {
    ok_ = false;
    return false;
  }
  const std::uint8_t* p = nullptr;
  if (!take(size, &p)) return false;
  v.assign(reinterpret_cast<const char*>(p), size);
  return true;
}

std::vector<std::uint8_t> encode_frame_header(std::uint16_t type, std::uint32_t payload_size) {
  WireWriter w;
  w.u32(payload_size);
  w.u16(type);
  return w.take();
}

Result<std::pair<std::uint16_t, std::uint32_t>> decode_frame_header(const std::uint8_t* data,
                                                                    std::size_t size) {
  if (size < kFrameHeaderSize)
    return Result<std::pair<std::uint16_t, std::uint32_t>>(make_error("proto: short header"));
  std::vector<std::uint8_t> header(data, data + kFrameHeaderSize);
  WireReader r(header);
  std::uint32_t payload = 0;
  std::uint16_t type = 0;
  r.u32(payload);
  r.u16(type);
  if (!r.ok() || payload > kMaxPayloadBytes)
    return Result<std::pair<std::uint16_t, std::uint32_t>>(
        make_error("proto: invalid frame header"));
  return std::pair<std::uint16_t, std::uint32_t>{type, payload};
}

}  // namespace harp::ipc
