// Readiness event loop for the RM transport (DESIGN.md "Event loop &
// sharding").
//
// One EventLoop owns the kernel-side interest set for every fd a server
// watches — the listen socket plus all client connections — and turns the
// old O(clients) poll-per-client syscall scan into one wait() returning only
// the fds with work. Two backends behind one API:
//
//   - kEpoll: epoll(7), level-triggered. O(ready) per cycle; the default on
//     Linux.
//   - kPoll:  portable poll(2) over a cached pollfd snapshot. O(watched) per
//     cycle but still one syscall instead of one per client; the fallback
//     for platforms without epoll and the cross-check backend in tests.
//
// A wakeup pipe is always part of the interest set so other threads can
// nudge a blocked wait(): cross-thread channel adoption, in-process frame
// arrival, and shutdown all use it. wakeup() is the only thread-safe entry
// point; everything else belongs to the loop's driving thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <vector>

#include "src/common/mutex.hpp"
#include "src/common/result.hpp"
#include "src/common/thread_annotations.hpp"

// Forward-declared to keep <poll.h> / <sys/epoll.h> out of this header;
// std::vector members of incomplete types are fine since C++17 (the
// destructor lives in event_loop.cpp where both are complete).
struct pollfd;
struct epoll_event;

namespace harp::ipc {

/// Interest/readiness bits (mapped to EPOLLIN/EPOLLOUT or POLLIN/POLLOUT).
inline constexpr std::uint32_t kEventReadable = 0x1;
inline constexpr std::uint32_t kEventWritable = 0x2;
/// Reported (never requested): peer hung up or fd error. Always delivered
/// alongside whatever was requested so callers can tear the fd down.
inline constexpr std::uint32_t kEventError = 0x4;

class EventLoop {
 public:
  enum class Backend : std::uint8_t {
    kDefault,  ///< epoll where available, else poll
    kEpoll,
    kPoll,
  };

  /// One ready fd from wait(). `events` is a bitmask of the kEvent* flags.
  struct Ready {
    int fd = -1;
    std::uint32_t events = 0;
  };

  explicit EventLoop(Backend backend = Backend::kDefault);
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// False when construction failed (fd exhaustion); all operations on an
  /// invalid loop fail cleanly and wait() reports the construction error.
  bool valid() const { return valid_; }
  /// The backend actually in use (kDefault is resolved at construction).
  Backend backend() const { return backend_; }

  /// Watch `fd` for `events`. One registration per fd; re-adding replaces
  /// the interest mask (same as modify).
  Status add(int fd, std::uint32_t events);
  /// Replace the interest mask of a watched fd.
  Status modify(int fd, std::uint32_t events);
  /// Stop watching `fd`. Unknown fds are ignored (close() may race ahead of
  /// the owner's bookkeeping during churn).
  void remove(int fd);
  /// Watched fds, excluding the internal wakeup pipe.
  std::size_t watched() const;

  /// Wait up to `timeout_ms` (0 = non-blocking readiness check, < 0 = wait
  /// indefinitely) and fill `out` (cleared first) with the ready fds.
  /// The wakeup pipe is drained internally and never reported in `out`;
  /// woke() says whether a nudge was consumed. Returns the number of ready
  /// entries. EINTR is retried with the remaining timeout.
  Result<int> wait(int timeout_ms, std::vector<Ready>& out);

  /// Nudge a concurrent (or the next) wait() awake. Thread-safe, async-
  /// signal-safe, idempotent until the next wait() drains it.
  void wakeup();
  /// True when the most recent wait() consumed at least one wakeup nudge.
  bool woke() const { return woke_; }

 private:
  Status add_or_modify(int fd, std::uint32_t events, bool replace_only);

  // The mutex below guards only the interest set; everything else is either
  // immutable after construction or owned by the loop's driving thread.
  Backend backend_ = Backend::kPoll;  // harp-lint: allow(all immutable after construction)
  bool valid_ = false;                // harp-lint: allow(all immutable after construction)
  bool woke_ = false;                 // harp-lint: allow(all loop-thread-only wait() state)
  int epoll_fd_ = -1;                 // harp-lint: allow(all immutable after construction)
  int wake_rx_ = -1;  // harp-lint: allow(all immutable after construction) — pipe read end
  int wake_tx_ = -1;  // harp-lint: allow(all immutable after construction) — pipe write end
  /// One pending-wakeup byte at most: wakeup() only writes on the
  /// disarmed→armed edge, so a 100k-client notify storm costs one syscall.
  std::atomic<bool> wake_armed_{false};

  /// Interest set. Guarded so cross-thread add/remove during a blocked
  /// wait() (channel adoption into a running shard) cannot tear the map; the
  /// kernel wait itself runs outside the lock, and mutators wakeup() the
  /// loop so a blocked poll-backend wait rebuilds its snapshot promptly.
  mutable Mutex mutex_;
  std::map<int, std::uint32_t> interest_ HARP_GUARDED_BY(mutex_);
  std::uint64_t interest_version_ HARP_GUARDED_BY(mutex_) = 0;

  // poll backend: cached pollfd snapshot, rebuilt only when interest_
  // changed (interest_version_ tracks mutations).
  std::vector<struct pollfd> pollfds_;
  std::uint64_t snapshot_version_ = ~0ull;  // harp-lint: allow(all loop-thread-only wait() state)

  // epoll backend: reusable event buffer (sized to the interest set).
  std::vector<struct epoll_event> epoll_buf_;
};

}  // namespace harp::ipc
