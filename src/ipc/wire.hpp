// Binary wire format primitives for the RM ↔ libharp protocol.
//
// The paper uses protobuf over Unix sockets (§4.1.1); this dependency-free
// reproduction uses an equivalent hand-rolled little-endian codec: a frame
// is a 4-byte payload length + 2-byte message type, followed by the payload
// encoded with the primitives here (fixed-width integers, doubles, length-
// prefixed strings and vectors).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.hpp"

namespace harp::ipc {

/// Append-only encoder.
class WireWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v);
  void f64(double v);
  void boolean(bool v);
  void string(const std::string& v);  ///< u32 length + bytes

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Checked sequential decoder. All reads return false (and set an error) on
/// truncation; callers propagate via ok().
class WireReader {
 public:
  explicit WireReader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  bool u8(std::uint8_t& v);
  bool u16(std::uint16_t& v);
  bool u32(std::uint32_t& v);
  bool u64(std::uint64_t& v);
  bool i32(std::int32_t& v);
  bool f64(double& v);
  bool boolean(bool& v);
  bool string(std::string& v);

  bool ok() const { return ok_; }
  bool at_end() const { return pos_ == bytes_.size(); }

 private:
  bool take(std::size_t n, const std::uint8_t** out);

  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Frame header: payload length (u32) + message type (u16).
inline constexpr std::size_t kFrameHeaderSize = 6;
/// Upper bound on a sane payload (guards against corrupt peers).
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 22;

/// Serialise a frame header.
std::vector<std::uint8_t> encode_frame_header(std::uint16_t type, std::uint32_t payload_size);
/// Parse a frame header; error on oversized payloads.
Result<std::pair<std::uint16_t, std::uint32_t>> decode_frame_header(
    const std::uint8_t* data, std::size_t size);

}  // namespace harp::ipc
