#include "src/ipc/fault_injection.hpp"

#include <algorithm>

#include "src/ipc/wire.hpp"

namespace harp::ipc {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kReorder: return "reorder";
    case FaultKind::kTruncate: return "truncate";
    case FaultKind::kGarbage: return "garbage";
    case FaultKind::kTransientError: return "transient-error";
    case FaultKind::kClose: return "close";
  }
  return "?";
}

FaultInjectingChannel::FaultInjectingChannel(std::unique_ptr<Channel> inner, FaultPlan plan)
    : inner_(std::move(inner)), plan_(std::move(plan)), rng_(plan_.seed) {}

void FaultInjectingChannel::set_telemetry(ChannelTelemetry telemetry) {
  telemetry_ = telemetry;
  if (telemetry_.metrics != nullptr) {
    telemetry::MetricsRegistry& metrics = *telemetry_.metrics;
    faults_total_ = &metrics.counter("faults_injected_total");
    drops_total_ = &metrics.counter("frames_dropped_total");
    duplicates_total_ = &metrics.counter("frames_duplicated_total");
    reorders_total_ = &metrics.counter("frames_reordered_total");
    truncates_total_ = &metrics.counter("frames_truncated_total");
    garbled_total_ = &metrics.counter("frames_garbled_total");
    transient_errors_total_ = &metrics.counter("transient_send_errors_total");
    closes_total_ = &metrics.counter("injected_closes_total");
  }
  inner_->set_telemetry(std::move(telemetry));
}

void FaultInjectingChannel::note_fault(FaultKind kind, std::uint64_t seq,
                                       telemetry::Counter* per_kind) {
  if (faults_total_ != nullptr) faults_total_->inc();
  if (per_kind != nullptr) per_kind->inc();
  if (telemetry_.tracer != nullptr)
    telemetry_.tracer->instant(telemetry::EventType::kFaultInjected, telemetry_.scope,
                               {{"seq", static_cast<double>(seq)}},
                               {{"kind", to_string(kind)}});
}

FaultKind FaultInjectingChannel::decide(std::uint64_t seq) {
  for (const FaultRule& rule : plan_.script)
    if (rule.at_send == seq) return rule.kind;
  // One uniform draw per send keeps the stream position independent of which
  // probabilities are enabled, so schedules stay comparable across plans
  // with the same seed.
  double u = rng_.uniform();
  double acc = plan_.drop_p;
  if (u < acc) return FaultKind::kDrop;
  if (u < (acc += plan_.duplicate_p)) return FaultKind::kDuplicate;
  if (u < (acc += plan_.reorder_p)) return FaultKind::kReorder;
  if (u < (acc += plan_.truncate_p)) return FaultKind::kTruncate;
  if (u < (acc += plan_.garbage_p)) return FaultKind::kGarbage;
  if (u < (acc += plan_.transient_error_p)) return FaultKind::kTransientError;
  return FaultKind::kNone;
}

Status FaultInjectingChannel::deliver(const std::vector<std::uint8_t>& frame) {
  return inner_->send_raw(frame);
}

void FaultInjectingChannel::flush_held() {
  if (!held_.has_value()) return;
  (void)deliver(*held_);
  held_.reset();
}

Status FaultInjectingChannel::send(const Message& message) {
  if (inner_->closed()) return Status(make_error("io: channel closed"));
  std::uint64_t seq = stats_.sends++;
  switch (decide(seq)) {
    case FaultKind::kNone: {
      Status sent = deliver(encode(message));
      flush_held();
      return sent;
    }
    case FaultKind::kDrop:
      ++stats_.drops;
      note_fault(FaultKind::kDrop, seq, drops_total_);
      flush_held();
      return Status{};  // silent loss: the sender believes it went out
    case FaultKind::kDuplicate: {
      ++stats_.duplicates;
      note_fault(FaultKind::kDuplicate, seq, duplicates_total_);
      std::vector<std::uint8_t> frame = encode(message);
      Status sent = deliver(frame);
      if (sent.ok()) (void)deliver(frame);
      flush_held();
      return sent;
    }
    case FaultKind::kReorder: {
      ++stats_.reorders;
      note_fault(FaultKind::kReorder, seq, reorders_total_);
      if (held_.has_value()) flush_held();  // at most one frame in flight
      held_ = encode(message);
      return Status{};
    }
    case FaultKind::kTruncate: {
      ++stats_.truncates;
      note_fault(FaultKind::kTruncate, seq, truncates_total_);
      std::vector<std::uint8_t> frame = encode(message);
      std::size_t keep = std::max<std::size_t>(1, frame.size() / 2);
      frame.resize(keep);
      Status sent = deliver(frame);
      flush_held();
      return sent;
    }
    case FaultKind::kGarbage: {
      ++stats_.garbled;
      note_fault(FaultKind::kGarbage, seq, garbled_total_);
      std::vector<std::uint8_t> frame = encode(message);
      if (frame.size() > kFrameHeaderSize) {
        // Keep the header (length + type) valid so framed transports stay in
        // sync and exercise the payload-decode rejection path.
        for (std::size_t i = kFrameHeaderSize; i < frame.size(); ++i)
          frame[i] = static_cast<std::uint8_t>(rng_.uniform_int(0, 255));
      } else {
        // Empty payload: corrupt the message type instead (unknown type).
        frame[kFrameHeaderSize - 2] = 0xFF;
        frame[kFrameHeaderSize - 1] = 0x7F;
      }
      Status sent = deliver(frame);
      flush_held();
      return sent;
    }
    case FaultKind::kTransientError:
      ++stats_.transient_errors;
      note_fault(FaultKind::kTransientError, seq, transient_errors_total_);
      return Status(make_error("io: injected transient send error"));
    case FaultKind::kClose:
      ++stats_.closes;
      note_fault(FaultKind::kClose, seq, closes_total_);
      held_.reset();
      inner_->close();
      return Status(make_error("io: injected link failure"));
  }
  return Status{};
}

Status FaultInjectingChannel::send_raw(const std::vector<std::uint8_t>& frame) {
  // Raw frames bypass the schedule: they come from another fault layer or a
  // test poking bytes directly, which should see the wire verbatim.
  return inner_->send_raw(frame);
}

Result<std::optional<Message>> FaultInjectingChannel::poll() { return inner_->poll(); }

bool FaultInjectingChannel::closed() const { return inner_->closed(); }

void FaultInjectingChannel::close() {
  held_.reset();
  inner_->close();
}

}  // namespace harp::ipc
