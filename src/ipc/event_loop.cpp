// harp-lint: hot-path
#include "src/ipc/event_loop.hpp"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <string.h>
#include <unistd.h>

#include <chrono>

#include "src/ipc/transport_hooks.hpp"

#if defined(__linux__)
#define HARP_HAVE_EPOLL 1
#include <sys/epoll.h>
#else
#define HARP_HAVE_EPOLL 0
// Complete the forward-declared type so the epoll_buf_ member (always unused
// here) can be destroyed; the epoll code paths are compiled out entirely.
struct epoll_event {
  int unused;
};
#endif

namespace harp::ipc {

namespace {

int sys_poll(struct pollfd* fds, nfds_t nfds, int timeout) {
  if (syscall_hooks().poll != nullptr) return syscall_hooks().poll(fds, nfds, timeout);
  return ::poll(fds, nfds, timeout);
}

short to_poll_events(std::uint32_t events) {
  short mask = 0;
  if ((events & kEventReadable) != 0) mask |= POLLIN;
  if ((events & kEventWritable) != 0) mask |= POLLOUT;
  return mask;
}

std::uint32_t from_poll_events(short revents) {
  std::uint32_t events = 0;
  if ((revents & (POLLIN | POLLHUP)) != 0) events |= kEventReadable;
  if ((revents & POLLOUT) != 0) events |= kEventWritable;
  if ((revents & (POLLERR | POLLNVAL | POLLHUP)) != 0) events |= kEventError;
  return events;
}

#if HARP_HAVE_EPOLL
std::uint32_t to_epoll_events(std::uint32_t events) {
  std::uint32_t mask = 0;
  if ((events & kEventReadable) != 0) mask |= EPOLLIN;
  if ((events & kEventWritable) != 0) mask |= EPOLLOUT;
  return mask;
}

std::uint32_t from_epoll_events(std::uint32_t revents) {
  std::uint32_t events = 0;
  if ((revents & (EPOLLIN | EPOLLHUP)) != 0) events |= kEventReadable;
  if ((revents & EPOLLOUT) != 0) events |= kEventWritable;
  if ((revents & (EPOLLERR | EPOLLHUP)) != 0) events |= kEventError;
  return events;
}
#endif

/// Monotonic milliseconds, for re-arming the timeout across EINTR retries.
std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool make_wakeup_pipe(int* rx, int* tx) {
  int fds[2];
#if defined(__linux__)
  if (::pipe2(fds, O_NONBLOCK | O_CLOEXEC) != 0) return false;
#else
  if (::pipe(fds) != 0) return false;
  for (int fd : fds) {
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  }
#endif
  *rx = fds[0];
  *tx = fds[1];
  return true;
}

}  // namespace

EventLoop::EventLoop(Backend backend) {
  if (!make_wakeup_pipe(&wake_rx_, &wake_tx_)) return;

#if HARP_HAVE_EPOLL
  bool want_epoll = backend != Backend::kPoll;
#else
  bool want_epoll = false;
  if (backend == Backend::kEpoll) return;  // explicitly requested, unavailable
#endif

#if HARP_HAVE_EPOLL
  if (want_epoll) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ >= 0) {
      struct epoll_event ev;
      ::memset(&ev, 0, sizeof(ev));
      ev.events = EPOLLIN;
      ev.data.fd = wake_rx_;
      if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_rx_, &ev) == 0) {
        backend_ = Backend::kEpoll;
        valid_ = true;
        return;
      }
      ::close(epoll_fd_);
      epoll_fd_ = -1;
    }
    // epoll_create1 failed (fd/watch exhaustion): fall through to poll
    // unless the caller demanded epoll specifically.
    if (backend == Backend::kEpoll) return;
  }
#else
  (void)want_epoll;
#endif

  backend_ = Backend::kPoll;
  valid_ = true;
}

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_rx_ >= 0) ::close(wake_rx_);
  if (wake_tx_ >= 0) ::close(wake_tx_);
}

Status EventLoop::add(int fd, std::uint32_t events) {
  return add_or_modify(fd, events, /*replace_only=*/false);
}

Status EventLoop::modify(int fd, std::uint32_t events) {
  return add_or_modify(fd, events, /*replace_only=*/true);
}

Status EventLoop::add_or_modify(int fd, std::uint32_t events, bool replace_only) {
  if (!valid_) return Status(make_error("io: event loop unavailable"));
  if (fd < 0) return Status(make_error("io: cannot watch a negative fd"));

  bool existed = false;
  {
    MutexLock lock(mutex_);
    auto it = interest_.find(fd);
    existed = it != interest_.end();
    if (replace_only && !existed) return Status(make_error("io: fd not watched"));
    if (existed && it->second == events) return Status{};
    interest_[fd] = events;
    ++interest_version_;
  }

#if HARP_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    struct epoll_event ev;
    ::memset(&ev, 0, sizeof(ev));
    ev.events = to_epoll_events(events);
    ev.data.fd = fd;
    int op = existed ? EPOLL_CTL_MOD : EPOLL_CTL_ADD;
    if (::epoll_ctl(epoll_fd_, op, fd, &ev) != 0) {
      int saved = errno;
      {
        MutexLock lock(mutex_);
        if (!existed) interest_.erase(fd);
        ++interest_version_;
      }
      return Status(make_error(std::string("io: epoll_ctl: ") + ::strerror(saved)));
    }
    return Status{};
  }
#endif
  // poll backend: the snapshot rebuild picks the change up; nudge a blocked
  // wait() so cross-thread adds take effect promptly.
  wakeup();
  return Status{};
}

void EventLoop::remove(int fd) {
  if (!valid_ || fd < 0) return;
  bool existed = false;
  {
    MutexLock lock(mutex_);
    existed = interest_.erase(fd) > 0;
    if (existed) ++interest_version_;
  }
  if (!existed) return;
#if HARP_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    // The fd may already be closed (churn); EBADF/ENOENT are expected then.
    struct epoll_event ev;
    ::memset(&ev, 0, sizeof(ev));
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, &ev);
    return;
  }
#endif
  wakeup();
}

std::size_t EventLoop::watched() const {
  MutexLock lock(mutex_);
  return interest_.size();
}

void EventLoop::wakeup() {
  if (!valid_) return;
  bool was_armed = wake_armed_.exchange(true, std::memory_order_acq_rel);
  if (was_armed) return;  // a byte is already in flight; wait() will see it
  const char byte = 1;
  // A full pipe means a wakeup is pending anyway; nothing to do on EAGAIN.
  ssize_t rc;
  do {
    rc = ::write(wake_tx_, &byte, 1);
  } while (rc < 0 && errno == EINTR);
}

Result<int> EventLoop::wait(int timeout_ms, std::vector<Ready>& out) {
  out.clear();
  woke_ = false;
  if (!valid_) return Error{"io: event loop unavailable"};

#if HARP_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    std::size_t capacity;
    {
      MutexLock lock(mutex_);
      capacity = interest_.size() + 1;  // + wakeup pipe
    }
    if (epoll_buf_.size() < capacity) epoll_buf_.resize(capacity);
    struct epoll_event* events = epoll_buf_.data();

    std::int64_t deadline = timeout_ms > 0 ? now_ms() + timeout_ms : 0;
    int remaining = timeout_ms;
    int n;
    int wait_errno = 0;
    for (;;) {
      n = ::epoll_wait(epoll_fd_, events, static_cast<int>(capacity), remaining);
      if (n >= 0) break;
      if (errno != EINTR) {
        wait_errno = errno;
        break;
      }
      if (timeout_ms > 0) {
        std::int64_t left = deadline - now_ms();
        if (left <= 0) {
          n = 0;
          break;
        }
        remaining = static_cast<int>(left);
      }
    }
    if (wait_errno != 0) {
      return Error{std::string("io: epoll_wait: ") + ::strerror(wait_errno)};
    }

    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == wake_rx_) {
        woke_ = true;
        continue;
      }
      std::uint32_t ready = from_epoll_events(events[i].events);
      if (ready != 0) out.push_back(Ready{fd, ready});
    }
    if (woke_) {
      wake_armed_.store(false, std::memory_order_release);
      char buf[64];
      while (::read(wake_rx_, buf, sizeof(buf)) > 0) {
      }
    }
    return static_cast<int>(out.size());
  }
#endif

  // poll backend: rebuild the pollfd snapshot only when the interest set
  // changed since the last wait.
  {
    MutexLock lock(mutex_);
    if (snapshot_version_ != interest_version_) {
      pollfds_.clear();
      pollfds_.reserve(interest_.size() + 1);
      struct pollfd wake;
      wake.fd = wake_rx_;
      wake.events = POLLIN;
      wake.revents = 0;
      pollfds_.push_back(wake);
      for (const auto& [fd, events] : interest_) {
        struct pollfd p;
        p.fd = fd;
        p.events = to_poll_events(events);
        p.revents = 0;
        pollfds_.push_back(p);
      }
      snapshot_version_ = interest_version_;
    }
  }

  std::int64_t deadline = timeout_ms > 0 ? now_ms() + timeout_ms : 0;
  int remaining = timeout_ms;
  int n;
  int wait_errno = 0;
  for (;;) {
    n = sys_poll(pollfds_.data(), pollfds_.size(), remaining);
    if (n >= 0) break;
    if (errno != EINTR) {
      wait_errno = errno;
      break;
    }
    if (timeout_ms > 0) {
      std::int64_t left = deadline - now_ms();
      if (left <= 0) {
        n = 0;
        break;
      }
      remaining = static_cast<int>(left);
    }
  }
  if (wait_errno != 0) return Error{std::string("io: poll: ") + ::strerror(wait_errno)};

  for (const struct pollfd& p : pollfds_) {
    if (p.revents == 0) continue;
    if (p.fd == wake_rx_) {
      woke_ = true;
      continue;
    }
    std::uint32_t ready = from_poll_events(p.revents);
    if (ready != 0) out.push_back(Ready{p.fd, ready});
  }
  if (woke_) {
    wake_armed_.store(false, std::memory_order_release);
    char buf[64];
    while (::read(wake_rx_, buf, sizeof(buf)) > 0) {
    }
  }
  return static_cast<int>(out.size());
}

}  // namespace harp::ipc
