#include "src/ipc/transport.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>

#include "src/common/mutex.hpp"
#include "src/common/race_registry.hpp"
#include "src/ipc/transport_hooks.hpp"
#include "src/ipc/wire.hpp"

namespace harp::ipc {

SyscallHooks& syscall_hooks() {
  static SyscallHooks hooks;
  return hooks;
}

namespace {

ssize_t sys_recv(int fd, void* buf, size_t len, int flags) {
  auto* hook = syscall_hooks().recv;
  return hook != nullptr ? hook(fd, buf, len, flags) : ::recv(fd, buf, len, flags);
}

ssize_t sys_send(int fd, const void* buf, size_t len, int flags) {
  auto* hook = syscall_hooks().send;
  return hook != nullptr ? hook(fd, buf, len, flags) : ::send(fd, buf, len, flags);
}

int sys_poll(struct pollfd* fds, nfds_t nfds, int timeout) {
  auto* hook = syscall_hooks().poll;
  return hook != nullptr ? hook(fds, nfds, timeout) : ::poll(fds, nfds, timeout);
}

int sys_accept(int fd, struct sockaddr* addr, socklen_t* addr_len) {
  auto* hook = syscall_hooks().accept;
  return hook != nullptr ? hook(fd, addr, addr_len) : ::accept(fd, addr, addr_len);
}

}  // namespace

ChannelTelemetry ChannelTelemetry::for_scope(telemetry::Tracer* tracer,
                                             telemetry::MetricsRegistry* metrics,
                                             std::string scope) {
  ChannelTelemetry out;
  out.tracer = tracer;
  out.metrics = metrics;
  out.scope = std::move(scope);
  if (metrics != nullptr) {
    out.frames_sent = &metrics->counter("ipc_frames_sent_total");
    out.frames_received = &metrics->counter("ipc_frames_received_total");
  }
  return out;
}

void ChannelTelemetry::on_frame_sent(std::size_t bytes) const {
  if (frames_sent != nullptr) frames_sent->inc();
  if (tracer != nullptr)
    tracer->instant(telemetry::EventType::kIpcSend, scope,
                    {{"bytes", static_cast<double>(bytes)}});
}

void ChannelTelemetry::on_frame_received(std::size_t bytes) const {
  if (frames_received != nullptr) frames_received->inc();
  if (tracer != nullptr)
    tracer->instant(telemetry::EventType::kIpcRecv, scope,
                    {{"bytes", static_cast<double>(bytes)}});
}

namespace {

// ---------------------------------------------------------------------------
// In-process transport
// ---------------------------------------------------------------------------

/// Shared state of one direction: a queue of encoded frames. Both channel
/// ends touch it concurrently, so all state is guarded by `mutex`.
struct InProcQueue {
  ~InProcQueue() { HARP_UNTRACK_SHARED(&frames); }
  Mutex mutex;
  std::deque<std::vector<std::uint8_t>> frames HARP_GUARDED_BY(mutex);
  bool closed HARP_GUARDED_BY(mutex) = false;
  /// Readiness hook of the receiving end (see Channel::set_ready_hook):
  /// fired by the sender on the empty→non-empty transition, outside the
  /// lock, so an in-process channel can participate in event-loop readiness
  /// without being scanned.
  std::function<void()> on_push HARP_GUARDED_BY(mutex);
};

class InProcChannel : public Channel {
 public:
  InProcChannel(std::shared_ptr<InProcQueue> tx, std::shared_ptr<InProcQueue> rx)
      : tx_(std::move(tx)), rx_(std::move(rx)) {}

  ~InProcChannel() override { close(); }

  Status send(const Message& message) override { return send_raw(encode(message)); }

  Status send_raw(const std::vector<std::uint8_t>& frame) override {
    std::function<void()> notify;
    {
      MutexLock lock(tx_->mutex);
      HARP_TRACK_SHARED(&tx_->frames);
      if (tx_->closed) return Status(make_error("io: channel closed"));
      bool was_empty = tx_->frames.empty();
      tx_->frames.push_back(frame);
      // Notify only on the empty→non-empty edge: the receiver drains its
      // queue completely per readiness cycle, so one edge per burst is
      // enough and a 100k-client heartbeat storm costs 100k flag stores,
      // not 100k redundant wakeups.
      if (was_empty && tx_->on_push) notify = tx_->on_push;
    }
    if (notify) notify();
    telemetry_.on_frame_sent(frame.size());
    return Status{};
  }

  Result<std::optional<Message>> poll() override {
    std::vector<std::uint8_t> frame;
    {
      MutexLock lock(rx_->mutex);
      HARP_TRACK_SHARED(&rx_->frames);
      if (rx_->frames.empty()) {
        if (rx_->closed) return Result<std::optional<Message>>(make_error("io: peer closed"));
        return std::optional<Message>{};
      }
      frame = std::move(rx_->frames.front());
      rx_->frames.pop_front();
    }
    auto header = decode_frame_header(frame.data(), frame.size());
    if (!header.ok()) return Result<std::optional<Message>>(header.error());
    auto [type, payload_size] = header.value();
    if (frame.size() != kFrameHeaderSize + payload_size)
      return Result<std::optional<Message>>(make_error("proto: frame size mismatch"));
    std::vector<std::uint8_t> payload(frame.begin() + kFrameHeaderSize, frame.end());
    Result<Message> message = decode(static_cast<MessageType>(type), payload);
    if (!message.ok()) return Result<std::optional<Message>>(message.error());
    telemetry_.on_frame_received(frame.size());
    return std::optional<Message>(std::move(message).take());
  }

  void set_telemetry(ChannelTelemetry telemetry) override {
    telemetry_ = std::move(telemetry);
  }

  void set_ready_hook(std::function<void()> hook) override {
    MutexLock lock(rx_->mutex);
    rx_->on_push = std::move(hook);
  }

  bool closed() const override {
    MutexLock lock(tx_->mutex);
    return tx_->closed;
  }

  void close() override {
    // Take the two queue locks sequentially, never nested: the peer channel
    // owns the same queues in the opposite roles, so nesting here would be
    // an ABBA deadlock against a concurrent peer close().
    {
      MutexLock lock(tx_->mutex);
      tx_->closed = true;
    }
    MutexLock lock(rx_->mutex);
    rx_->closed = true;
    // The hook points into the (dying) receiver; the peer must not fire it
    // after this channel is gone.
    rx_->on_push = nullptr;
  }

 private:
  std::shared_ptr<InProcQueue> tx_;
  std::shared_ptr<InProcQueue> rx_;
  ChannelTelemetry telemetry_;
};

// ---------------------------------------------------------------------------
// Unix-socket transport
// ---------------------------------------------------------------------------

void set_nonblocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Outbound bytes a dead-slow peer may buffer before the channel gives up
/// (event-loop send mode). Generous: ~1000 maximum-size frames.
constexpr std::size_t kMaxSendBacklogBytes = 64u << 20;

class UnixChannel : public Channel {
 public:
  explicit UnixChannel(int fd) : fd_(fd) { set_nonblocking(fd_); }

  ~UnixChannel() override { close(); }

  Status send(const Message& message) override { return send_raw(encode(message)); }

  Status send_raw(const std::vector<std::uint8_t>& frame) override {
    if (fd_ < 0) return Status(make_error("io: channel closed"));
    if (nonblocking_send_) {
      if (!out_buf_.empty()) {
        // Earlier frames are still queued; appending keeps the stream in
        // order. flush_pending() drains on the next writable event.
        return enqueue_tail(frame, 0);
      }
      std::size_t sent = 0;
      Status direct = send_some(frame, sent);
      if (!direct.ok()) return direct;
      if (sent < frame.size()) return enqueue_tail(frame, sent);
      telemetry_.on_frame_sent(frame.size());
      return Status{};
    }
    std::size_t sent = 0;
    while (sent < frame.size()) {
      ssize_t n = sys_send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
      if (n > 0) {
        sent += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        // Briefly wait for the peer to drain; bounded so a dead peer cannot
        // wedge the RM. A signal interrupting the wait is not the peer's
        // fault: retry the wait instead of treating EINTR as a timeout
        // (which used to kill the channel mid-frame).
        struct pollfd pfd{fd_, POLLOUT, 0};
        int ready = sys_poll(&pfd, 1, 100);
        if (ready > 0) continue;
        if (ready < 0 && errno == EINTR) continue;
        // Giving up mid-frame leaves a partial frame on the wire and the
        // byte stream permanently desynchronised, so the channel must die
        // with it. Before any byte went out the stream is still clean and
        // the caller may retry the whole frame.
        if (sent > 0) close();
        return Status(make_error(sent > 0 ? "io: send timeout mid-frame"
                                          : "io: send timeout"));
      }
      if (n < 0 && errno == EINTR) continue;
      close();
      return Status(make_error("io: send failed: " + std::string(std::strerror(errno))));
    }
    telemetry_.on_frame_sent(frame.size());
    return Status{};
  }

  Result<std::optional<Message>> poll() override {
    if (fd_ < 0) return Result<std::optional<Message>>(make_error("io: channel closed"));
    // Drain whatever is available into the reassembly buffer.
    std::uint8_t chunk[4096];
    while (true) {
      ssize_t n = sys_recv(fd_, chunk, sizeof(chunk), 0);
      if (n > 0) {
        buffer_.insert(buffer_.end(), chunk, chunk + n);
        continue;
      }
      if (n == 0) {
        close();
        return Result<std::optional<Message>>(make_error("io: peer closed"));
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close();
      return Result<std::optional<Message>>(
          make_error("io: recv failed: " + std::string(std::strerror(errno))));
    }

    if (buffer_.size() < kFrameHeaderSize) return std::optional<Message>{};
    auto header = decode_frame_header(buffer_.data(), buffer_.size());
    if (!header.ok()) {
      close();
      return Result<std::optional<Message>>(header.error());
    }
    auto [type, payload_size] = header.value();
    if (buffer_.size() < kFrameHeaderSize + payload_size) return std::optional<Message>{};

    std::vector<std::uint8_t> payload(buffer_.begin() + kFrameHeaderSize,
                                      buffer_.begin() + kFrameHeaderSize + payload_size);
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<long>(kFrameHeaderSize + payload_size));
    Result<Message> message = decode(static_cast<MessageType>(type), payload);
    if (!message.ok()) {
      // The frame boundary was intact, so the stream stays in sync: report
      // the malformed payload but keep the channel usable ("proto:" error).
      return Result<std::optional<Message>>(message.error());
    }
    telemetry_.on_frame_received(kFrameHeaderSize + payload_size);
    return std::optional<Message>(std::move(message).take());
  }

  void set_telemetry(ChannelTelemetry telemetry) override {
    telemetry_ = std::move(telemetry);
  }

  int native_handle() const override { return fd_; }

  void set_nonblocking_send(bool on) override { nonblocking_send_ = on; }

  bool has_pending_send() const override { return !out_buf_.empty(); }

  Status flush_pending() override {
    if (out_buf_.empty()) return Status{};
    if (fd_ < 0) return Status(make_error("io: channel closed"));
    std::size_t sent = 0;
    Status pushed = send_some(out_buf_, sent);
    out_buf_.erase(out_buf_.begin(), out_buf_.begin() + static_cast<long>(sent));
    return pushed;
  }

  bool closed() const override { return fd_ < 0; }

  void close() override {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
    out_buf_.clear();
  }

 private:
  /// Write as much of `bytes` as the socket accepts right now; `sent` gets
  /// the byte count. EAGAIN stops cleanly (ok status, partial sent); EINTR
  /// retries; any other error closes the channel.
  Status send_some(const std::vector<std::uint8_t>& bytes, std::size_t& sent) {
    sent = 0;
    while (sent < bytes.size()) {
      ssize_t n = sys_send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (n > 0) {
        sent += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      close();
      return Status(make_error("io: send failed: " + std::string(std::strerror(errno))));
    }
    return Status{};
  }

  /// Queue frame bytes from `offset` for flush_pending(). Telemetry counts
  /// the frame at queue time — it is committed to the stream.
  Status enqueue_tail(const std::vector<std::uint8_t>& frame, std::size_t offset) {
    if (out_buf_.size() + (frame.size() - offset) > kMaxSendBacklogBytes) {
      // The peer has not drained for the whole backlog; the stream cannot be
      // cut mid-frame without desynchronising, so the channel dies instead.
      close();
      return Status(make_error("io: send backlog overflow"));
    }
    out_buf_.insert(out_buf_.end(), frame.begin() + static_cast<long>(offset), frame.end());
    telemetry_.on_frame_sent(frame.size());
    return Status{};
  }

  int fd_;
  std::vector<std::uint8_t> buffer_;
  std::vector<std::uint8_t> out_buf_;
  bool nonblocking_send_ = false;
  ChannelTelemetry telemetry_;
};

}  // namespace

std::pair<std::unique_ptr<Channel>, std::unique_ptr<Channel>> make_in_process_pair() {
  auto a_to_b = std::make_shared<InProcQueue>();
  auto b_to_a = std::make_shared<InProcQueue>();
  return {std::make_unique<InProcChannel>(a_to_b, b_to_a),
          std::make_unique<InProcChannel>(b_to_a, a_to_b)};
}

UnixServer::~UnixServer() {
  if (fd_ >= 0) ::close(fd_);
  ::unlink(path_.c_str());
}

Result<std::unique_ptr<UnixServer>> UnixServer::listen(const std::string& path) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path))
    return Result<std::unique_ptr<UnixServer>>(make_error("io: socket path too long"));
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0)
    return Result<std::unique_ptr<UnixServer>>(
        make_error("io: socket: " + std::string(std::strerror(errno))));
  ::unlink(path.c_str());  // replace a stale socket file

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  // SOMAXCONN backlog: the scale bench opens thousands of connections in a
  // burst; the kernel clamps to its own limit anyway.
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, SOMAXCONN) < 0) {
    int saved = errno;
    ::close(fd);
    return Result<std::unique_ptr<UnixServer>>(
        make_error("io: bind/listen: " + std::string(std::strerror(saved))));
  }
  set_nonblocking(fd);
  return std::unique_ptr<UnixServer>(new UnixServer(fd, path));
}

Result<std::optional<std::unique_ptr<Channel>>> UnixServer::accept() {
  while (true) {
    int client = sys_accept(fd_, nullptr, nullptr);
    if (client >= 0)
      return std::optional<std::unique_ptr<Channel>>(std::make_unique<UnixChannel>(client));
    if (errno == EINTR) continue;  // interrupted, not failed: retry
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return std::optional<std::unique_ptr<Channel>>{};
    // A connection that died in the backlog (ECONNABORTED) is not a listener
    // failure either — report "nobody waiting" and let the next cycle retry.
    if (errno == ECONNABORTED) return std::optional<std::unique_ptr<Channel>>{};
    return Result<std::optional<std::unique_ptr<Channel>>>(
        make_error("io: accept: " + std::string(std::strerror(errno))));
  }
}

Result<std::unique_ptr<Channel>> unix_connect(const std::string& path) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path))
    return Result<std::unique_ptr<Channel>>(make_error("io: socket path too long"));
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0)
    return Result<std::unique_ptr<Channel>>(
        make_error("io: socket: " + std::string(std::strerror(errno))));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    int saved = errno;
    ::close(fd);
    return Result<std::unique_ptr<Channel>>(
        make_error("io: connect: " + std::string(std::strerror(saved))));
  }
  return std::unique_ptr<Channel>(std::make_unique<UnixChannel>(fd));
}

std::unique_ptr<Channel> channel_from_fd(int fd) { return std::make_unique<UnixChannel>(fd); }

}  // namespace harp::ipc
