// Fault-injecting channel decorator for protocol robustness testing.
//
// Wraps any Channel and applies a seeded, scriptable fault schedule to the
// send path: message drop, duplication, reordering, truncated and garbage
// frames (via Channel::send_raw), transient send errors, and abrupt link
// closure. Every decision is driven by a deterministic PRNG plus an explicit
// per-message script, so a failing scenario replays bit-identically from its
// seed — the foundation of the deterministic scenario harness in
// tests/fault_scenario_test.cpp.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/common/rng.hpp"
#include "src/ipc/transport.hpp"

namespace harp::ipc {

enum class FaultKind : std::uint8_t {
  kNone = 0,
  kDrop,            ///< message silently discarded
  kDuplicate,       ///< message delivered twice
  kReorder,         ///< message held back and delivered after the next one
  kTruncate,        ///< frame cut short mid-payload
  kGarbage,         ///< frame header kept, payload bytes randomised
  kTransientError,  ///< send fails with "io: injected transient send error"
  kClose,           ///< link abruptly closed
};

const char* to_string(FaultKind kind);

/// One scripted fault: applied to the `at_send`-th send (0-based sequence
/// number counted across the channel's lifetime).
struct FaultRule {
  std::uint64_t at_send = 0;
  FaultKind kind = FaultKind::kNone;
};

/// A fault schedule: explicit script entries win over the seeded random
/// probabilities, which are evaluated per send in a fixed order (drop,
/// duplicate, reorder, truncate, garbage, transient error).
struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultRule> script;
  double drop_p = 0.0;
  double duplicate_p = 0.0;
  double reorder_p = 0.0;
  double truncate_p = 0.0;
  double garbage_p = 0.0;
  double transient_error_p = 0.0;

  /// A plan that never injects anything (still counts sends).
  static FaultPlan clean() { return FaultPlan{}; }
};

/// Counters for assertions and debugging output.
struct FaultStats {
  std::uint64_t sends = 0;  ///< send() calls observed (sequence numbers)
  std::uint64_t drops = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t reorders = 0;
  std::uint64_t truncates = 0;
  std::uint64_t garbled = 0;
  std::uint64_t transient_errors = 0;
  std::uint64_t closes = 0;
  std::uint64_t injected() const {
    return drops + duplicates + reorders + truncates + garbled + transient_errors + closes;
  }
};

/// Channel decorator applying a FaultPlan to outbound traffic. The receive
/// path is passed through untouched — wrap both ends of a pair to make a
/// link flaky in both directions.
class FaultInjectingChannel : public Channel {
 public:
  FaultInjectingChannel(std::unique_ptr<Channel> inner, FaultPlan plan);

  Status send(const Message& message) override;
  Status send_raw(const std::vector<std::uint8_t>& frame) override;
  Result<std::optional<Message>> poll() override;
  bool closed() const override;
  void close() override;

  /// Forwards the sink to the inner channel (which counts delivered frames)
  /// and additionally mirrors every injected fault as a kFaultInjected
  /// instant plus per-kind counters ("frames_dropped_total", ...).
  void set_telemetry(ChannelTelemetry telemetry) override;

  // Event-loop integration: readiness and pending-send state live in the
  // inner transport; the decorator is transparent to the loop.
  int native_handle() const override { return inner_->native_handle(); }
  void set_ready_hook(std::function<void()> hook) override {
    inner_->set_ready_hook(std::move(hook));
  }
  void set_nonblocking_send(bool on) override { inner_->set_nonblocking_send(on); }
  bool has_pending_send() const override { return inner_->has_pending_send(); }
  Status flush_pending() override { return inner_->flush_pending(); }

  const FaultStats& stats() const { return stats_; }

 private:
  FaultKind decide(std::uint64_t seq);
  Status deliver(const std::vector<std::uint8_t>& frame);
  void flush_held();
  void note_fault(FaultKind kind, std::uint64_t seq, telemetry::Counter* per_kind);

  std::unique_ptr<Channel> inner_;
  FaultPlan plan_;
  Rng rng_;
  FaultStats stats_;
  /// Frame held back by a reorder fault, delivered after the next send.
  std::optional<std::vector<std::uint8_t>> held_;

  ChannelTelemetry telemetry_;
  telemetry::Counter* faults_total_ = nullptr;
  telemetry::Counter* drops_total_ = nullptr;
  telemetry::Counter* duplicates_total_ = nullptr;
  telemetry::Counter* reorders_total_ = nullptr;
  telemetry::Counter* truncates_total_ = nullptr;
  telemetry::Counter* garbled_total_ = nullptr;
  telemetry::Counter* transient_errors_total_ = nullptr;
  telemetry::Counter* closes_total_ = nullptr;
};

}  // namespace harp::ipc
