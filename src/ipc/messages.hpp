// The RM ↔ libharp message set (Fig. 3).
//
// Control flow: (1) the application registers with its PID, name, adaptivity
// type and capability flags; (2) it optionally submits operating points from
// its description file and subscribes utility feedback; (3) the RM pushes
// operating-point activations (selected configuration + concrete resource
// grant); (4) the RM periodically requests utility, which the application
// reports back. Deregistration is explicit on clean shutdown (the RM also
// treats a closed socket as an exit).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "src/common/result.hpp"
#include "src/platform/resource_vector.hpp"

namespace harp::ipc {

enum class MessageType : std::uint16_t {
  kRegisterRequest = 1,
  kRegisterAck = 2,
  kOperatingPoints = 3,
  kActivate = 4,
  kUtilityRequest = 5,
  kUtilityReport = 6,
  kDeregister = 7,
  kHeartbeat = 8,
};

/// Application adaptivity classes on the wire (§4.1.3).
enum class WireAdaptivity : std::uint8_t { kStatic = 0, kScalable = 1, kCustom = 2 };

/// (1) Registration: app → RM.
struct RegisterRequest {
  std::int32_t pid = 0;
  std::string app_name;
  WireAdaptivity adaptivity = WireAdaptivity::kStatic;
  bool provides_utility = false;
};

/// RM → app: registration accepted; `app_id` names the app in later frames.
struct RegisterAck {
  std::int32_t app_id = -1;
};

/// (2) Operating points from the application description file: app → RM.
struct OperatingPointsMsg {
  struct Point {
    platform::ExtendedResourceVector erv;
    double utility = 0.0;
    double power_w = 0.0;
  };
  std::vector<Point> points;
};

/// (3) Operating-point activation: RM → app. Contains the selected
/// configuration (as an extended resource vector), the concrete core grant,
/// the parallelism degree for scalable apps, and the rebalance knob for
/// custom apps.
struct ActivateMsg {
  platform::ExtendedResourceVector erv;
  /// Concrete grant: (type, core id, busy threads) triples.
  struct CoreGrant {
    std::int32_t type = 0;
    std::int32_t core = 0;
    std::int32_t threads = 1;
  };
  std::vector<CoreGrant> cores;
  std::int32_t parallelism = 0;  ///< 0 = keep application default
  bool rebalance = false;
};

/// (4) Utility feedback: RM → app request, app → RM report.
struct UtilityRequest {};
struct UtilityReport {
  double utility = 0.0;
};

/// App → RM: clean shutdown.
struct Deregister {};

/// App → RM: liveness beacon renewing the client's lease. Sent by libharp
/// when nothing else has gone out for a while; carries no payload.
struct Heartbeat {};

using Message = std::variant<RegisterRequest, RegisterAck, OperatingPointsMsg, ActivateMsg,
                             UtilityRequest, UtilityReport, Deregister, Heartbeat>;

MessageType type_of(const Message& message);

/// Serialise a message into a complete frame (header + payload).
std::vector<std::uint8_t> encode(const Message& message);

/// Decode a payload of the given type. Errors carry a "proto:" prefix.
Result<Message> decode(MessageType type, const std::vector<std::uint8_t>& payload);

}  // namespace harp::ipc
