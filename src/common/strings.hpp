// Small string helpers shared by the JSON parser, config loaders, and the
// bench report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace harp {

/// Split on a single-character delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char delim);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);

/// Fixed-precision double formatting ("%.*f") for report tables.
std::string format_double(double value, int precision = 2);

/// Render "1.37x"-style improvement factors used by the bench reports.
std::string format_factor(double value);

}  // namespace harp
