// Streaming statistics used across monitoring, exploration, and the benches:
// Welford running mean/variance, exponential moving average (the paper's
// §5.1 smoothing, α = 0.1), geometric means for improvement factors, MAPE.
#pragma once

#include <cstddef>
#include <vector>

namespace harp {

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exponential moving average with smoothing factor alpha (paper uses 0.1):
/// value <- alpha * sample + (1 - alpha) * value.
class Ema {
 public:
  explicit Ema(double alpha = 0.1);
  void add(double sample);
  bool has_value() const { return initialized_; }
  double value() const;
  void reset();

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// Geometric mean of strictly positive values; returns 0 for an empty input.
double geometric_mean(const std::vector<double>& values);

/// Mean absolute percentage error between predictions and ground truth.
/// Entries with |truth| < eps are skipped to avoid division blow-ups.
double mape(const std::vector<double>& predicted, const std::vector<double>& truth,
            double eps = 1e-12);

/// p-th percentile (0..100) by linear interpolation on a copy of `values`.
double percentile(std::vector<double> values, double p);

}  // namespace harp
