// Eraser-style lockset intersection (see race_registry.hpp for the design).
#include "src/common/race_registry.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

namespace harp {
namespace {

/// The calling thread's currently-held harp::Mutex set, in acquisition
/// order. Thread-local, so the lock/unlock hooks never take the registry
/// mutex (and can never deadlock or recurse).
std::vector<const void*>& held_locks() {
  thread_local std::vector<const void*> held;
  return held;
}

/// Per-tracked-object Eraser state.
struct SharedState {
  enum class Phase { kExclusive, kShared };
  Phase phase = Phase::kExclusive;
  std::thread::id owner;             ///< exclusive-phase thread
  std::set<const void*> candidate;   ///< C(v): locks held on every access
  std::string last_access;           ///< "thread <id> held {...}" for reports
};

struct Registry {
  // Raw std::mutex by design: harp::Mutex would recurse into its own
  // instrumentation hooks (header comment). std::mutex is not a clang
  // capability, so HARP_GUARDED_BY cannot be attached to the fields below;
  // every access goes through a std::lock_guard in this file.
  std::mutex guard;
  // harp-lint: allow(r5 guard is a raw std::mutex, not an annotatable capability)
  std::map<const void*, SharedState> tracked;
  bool abort_on_race = true;  // harp-lint: allow(r5 guarded by raw guard mutex above)
  std::size_t races = 0;      // harp-lint: allow(r5 guarded by raw guard mutex above)
  std::string last_report;    // harp-lint: allow(r5 guarded by raw guard mutex above)
  // Stable first-appearance ids for report text. Raw addresses and
  // std::thread::ids vary run to run (ASLR, thread-id reuse), which made
  // reports impossible to diff or pin in golden assertions; objects render
  // as o<N>, mutexes as m<N>, threads as t<N> in the order each is first
  // described. Assigned only while building report strings — always under
  // `guard` — so the lock/unlock hooks stay registry-lock-free.
  std::map<const void*, int> object_ids;      // harp-lint: allow(r5 guarded by raw guard mutex above)
  std::map<const void*, int> mutex_ids;       // harp-lint: allow(r5 guarded by raw guard mutex above)
  std::map<std::thread::id, int> thread_ids;  // harp-lint: allow(r5 guarded by raw guard mutex above)
  // Lock-order witness state: the global "from was held while to was
  // acquired" graph, inversion count and the latest inversion report. The
  // epoch is atomic because the acquire hook reads it BEFORE deciding
  // whether it needs the guard at all (thread_local seen-edge caches tag
  // themselves with it; reset() bumps it to invalidate every cache).
  std::map<const void*, std::set<const void*>> lock_order;  // harp-lint: allow(r5 guarded by raw guard mutex above)
  std::size_t inversions = 0;           // harp-lint: allow(r5 guarded by raw guard mutex above)
  std::string last_order_report;        // harp-lint: allow(r5 guarded by raw guard mutex above)
  std::atomic<std::uint64_t> order_epoch{0};
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlives static destruction
  return *r;
}

/// First-appearance id lookup (caller holds reg.guard).
template <typename Key>
std::string stable_id(std::map<Key, int>& ids, const Key& key, char prefix) {
  auto [it, inserted] = ids.emplace(key, static_cast<int>(ids.size()));
  return std::string(1, prefix) + std::to_string(it->second);
}

std::string describe_lockset(Registry& reg, const std::vector<const void*>& locks) {
  if (locks.empty()) return "{}";
  std::ostringstream out;
  out << "{";
  for (std::size_t i = 0; i < locks.size(); ++i)
    out << (i ? ", " : "") << stable_id(reg.mutex_ids, locks[i], 'm');
  out << "}";
  return out.str();
}

std::string describe_access(Registry& reg, const char* label) {
  std::ostringstream out;
  out << "thread " << stable_id(reg.thread_ids, std::this_thread::get_id(), 't')
      << " accessed '" << label << "' holding " << describe_lockset(reg, held_locks());
  return out.str();
}

/// Order edges this thread already pushed into the global graph, valid for
/// one epoch. Steady-state acquires (same nesting as before) hit this cache
/// and never touch the registry guard.
struct EdgeCache {
  std::uint64_t epoch = 0;
  std::set<std::pair<const void*, const void*>> seen;
};

EdgeCache& edge_cache() {
  thread_local EdgeCache cache;
  return cache;
}

/// Shortest path from -> ... -> to over the order graph, empty when
/// unreachable (caller holds reg.guard).
std::vector<const void*> find_order_path(Registry& reg, const void* from, const void* to) {
  std::map<const void*, const void*> parent;
  std::vector<const void*> frontier{from};
  parent[from] = nullptr;
  for (std::size_t at = 0; at < frontier.size(); ++at) {
    const void* node = frontier[at];
    if (node == to) {
      std::vector<const void*> path;
      for (const void* walk = to; walk != nullptr; walk = parent[walk]) path.push_back(walk);
      std::reverse(path.begin(), path.end());
      return path;
    }
    auto edges = reg.lock_order.find(node);
    if (edges == reg.lock_order.end()) continue;
    for (const void* next : edges->second)
      if (parent.emplace(next, node).second) frontier.push_back(next);
  }
  return {};
}

/// Record edges held -> acquired; report when a new edge closes a cycle.
void note_lock_order(const std::vector<const void*>& held, const void* acquired) {
  Registry& reg = registry();
  EdgeCache& cache = edge_cache();
  std::uint64_t epoch = reg.order_epoch.load(std::memory_order_acquire);
  if (cache.epoch != epoch) {
    cache.seen.clear();
    cache.epoch = epoch;
  }
  bool all_seen = true;
  for (const void* h : held)
    if (cache.seen.count({h, acquired}) == 0) {
      all_seen = false;
      break;
    }
  if (all_seen) return;

  std::lock_guard<std::mutex> lock(reg.guard);
  for (const void* h : held) {
    if (h == acquired) continue;  // re-entry is the lockset checker's concern
    if (!cache.seen.insert({h, acquired}).second) continue;
    std::set<const void*>& out_edges = reg.lock_order[h];
    if (out_edges.count(acquired) != 0) continue;  // established (and checked) earlier
    // New edge h -> acquired: a pre-existing path acquired ~> h means some
    // thread took these locks in the opposite order — a deadlock-capable
    // inversion, witnessed even though this run never interleaved into the
    // deadlock itself.
    std::vector<const void*> reverse_path = find_order_path(reg, acquired, h);
    if (!reverse_path.empty()) {
      std::ostringstream out;
      out << "HARP_RACE_CHECK: lock-order inversion: thread "
          << stable_id(reg.thread_ids, std::this_thread::get_id(), 't') << " acquires "
          << stable_id(reg.mutex_ids, acquired, 'm') << " while holding "
          << describe_lockset(reg, held) << ", but the order ";
      for (std::size_t i = 0; i < reverse_path.size(); ++i)
        out << (i ? " -> " : "") << stable_id(reg.mutex_ids, reverse_path[i], 'm');
      out << " is already established; two threads following both orders deadlock";
      reg.last_order_report = out.str();
      ++reg.inversions;
      if (reg.abort_on_race) {
        std::fprintf(stderr, "%s\n", reg.last_order_report.c_str());
        std::abort();
      }
    }
    out_edges.insert(acquired);
  }
}

}  // namespace

RaceRegistry& RaceRegistry::instance() {
  static RaceRegistry inst;
  return inst;
}

void RaceRegistry::on_lock_acquired(const void* mutex) {
  std::vector<const void*>& held = held_locks();
  if (!held.empty()) note_lock_order(held, mutex);
  held.push_back(mutex);
}

void RaceRegistry::on_lock_released(const void* mutex) {
  std::vector<const void*>& held = held_locks();
  auto it = std::find(held.rbegin(), held.rend(), mutex);
  if (it != held.rend()) held.erase(std::next(it).base());
}

void RaceRegistry::on_shared_access(const void* object, const char* label) {
  const std::vector<const void*>& held = held_locks();
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.guard);
  auto [it, inserted] = reg.tracked.emplace(object, SharedState{});
  SharedState& state = it->second;
  if (inserted) state.owner = std::this_thread::get_id();

  if (state.phase == SharedState::Phase::kExclusive) {
    if (state.owner == std::this_thread::get_id()) {
      // Single-threaded init: constructors and setup may write unlocked.
      state.last_access = describe_access(reg, label);
      return;
    }
    // First access from a second thread: the object is now shared. C(v)
    // starts from THIS access's held set (not the exclusive phase's
    // history), the standard Eraser refinement for init-then-share.
    state.phase = SharedState::Phase::kShared;
    state.candidate = std::set<const void*>(held.begin(), held.end());
  } else {
    std::set<const void*> intersect;
    for (const void* m : held)
      if (state.candidate.count(m) != 0) intersect.insert(m);
    state.candidate = std::move(intersect);
  }

  if (state.candidate.empty()) {
    std::ostringstream out;
    out << "HARP_RACE_CHECK: lockset violation on '" << label << "' ("
        << stable_id(reg.object_ids, object, 'o') << "): " << describe_access(reg, label)
        << "; previous: " << (state.last_access.empty() ? "<none>" : state.last_access)
        << "; no common lock protects every access";
    reg.last_report = out.str();
    ++reg.races;
    // Re-arm so one discipline bug does not cascade into a report per access.
    state.candidate = std::set<const void*>(held.begin(), held.end());
    state.last_access = describe_access(reg, label);
    if (reg.abort_on_race) {
      std::fprintf(stderr, "%s\n", reg.last_report.c_str());
      std::abort();
    }
    return;
  }
  state.last_access = describe_access(reg, label);
}

void RaceRegistry::forget(const void* object) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.guard);
  reg.tracked.erase(object);
}

void RaceRegistry::set_abort_on_race(bool abort_on_race) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.guard);
  reg.abort_on_race = abort_on_race;
}

std::size_t RaceRegistry::race_count() const {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.guard);
  return reg.races;
}

std::string RaceRegistry::last_report() const {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.guard);
  return reg.last_report;
}

std::size_t RaceRegistry::inversion_count() const {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.guard);
  return reg.inversions;
}

std::string RaceRegistry::last_order_report() const {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.guard);
  return reg.last_order_report;
}

void RaceRegistry::reset() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.guard);
  reg.tracked.clear();
  reg.races = 0;
  reg.last_report.clear();
  reg.object_ids.clear();
  reg.mutex_ids.clear();
  reg.thread_ids.clear();
  reg.lock_order.clear();
  reg.inversions = 0;
  reg.last_order_report.clear();
  // Invalidate every thread's seen-edge cache: a test that resets in SetUp
  // must re-witness edges its threads already pushed in an earlier test.
  reg.order_epoch.fetch_add(1, std::memory_order_acq_rel);
}

}  // namespace harp
