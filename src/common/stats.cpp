#include "src/common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/check.hpp"

namespace harp {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Ema::Ema(double alpha) : alpha_(alpha) {
  HARP_CHECK(alpha > 0.0 && alpha <= 1.0);
}

void Ema::add(double sample) {
  if (!initialized_) {
    value_ = sample;
    initialized_ = true;
  } else {
    value_ = alpha_ * sample + (1.0 - alpha_) * value_;
  }
}

double Ema::value() const {
  HARP_CHECK(initialized_);
  return value_;
}

void Ema::reset() {
  initialized_ = false;
  value_ = 0.0;
}

double geometric_mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    HARP_CHECK_MSG(v > 0.0, "geometric_mean requires positive values, got " << v);
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double mape(const std::vector<double>& predicted, const std::vector<double>& truth,
            double eps) {
  HARP_CHECK(predicted.size() == truth.size());
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (std::abs(truth[i]) < eps) continue;
    sum += std::abs((predicted[i] - truth[i]) / truth[i]);
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double percentile(std::vector<double> values, double p) {
  HARP_CHECK(!values.empty());
  HARP_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace harp
