// Deterministic random number generation. Every stochastic component in the
// simulator and the exploration engine takes an explicit Rng (or a seed) so
// experiments are reproducible run-to-run.
#pragma once

#include <cstdint>
#include <random>

#include "src/common/check.hpp"

namespace harp {

/// Seeded PRNG wrapper around mt19937_64 with the handful of distributions
/// the library needs. Copyable (value semantics): forking an Rng forks the
/// stream, which tests use to replay decisions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    HARP_CHECK(lo <= hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    HARP_CHECK(lo <= hi);
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Gaussian with the given mean and standard deviation.
  double gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Multiplicative noise factor: 1 + N(0, rel_stddev), clamped to stay
  /// positive. Used to model measurement noise on IPS/power telemetry.
  double noise_factor(double rel_stddev) {
    double f = 1.0 + gaussian(0.0, rel_stddev);
    return f < 0.05 ? 0.05 : f;
  }

  /// Derive an independent child stream (e.g. one per application).
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace harp
