#include "src/common/strings.hpp"

#include <cctype>
#include <cstdio>

namespace harp {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string format_factor(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2fx", value);
  return buf;
}

}  // namespace harp
