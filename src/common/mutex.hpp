// Annotated mutex wrapper. libstdc++'s std::mutex carries no thread-safety
// attributes, so clang's -Wthread-safety cannot see through it; this thin
// wrapper restores the attributes while staying a plain std::mutex at
// runtime. All mutex-holding classes in HARP use harp::Mutex + HARP_GUARDED_BY
// so both clang's analysis and harp-lint's R5 rule apply.
// Under HARP_RACE_CHECK every acquisition/release additionally maintains the
// calling thread's held-lock set for the Eraser-style dynamic lockset
// detector and the global lock-order witness (src/common/race_registry.hpp).
// The release hook is thread-local bookkeeping only; the acquire hook takes
// the registry's leaf guard the first time a nesting pair is seen per epoch
// and is cache-hit lock-free afterwards.
#pragma once

#include <mutex>

#include "src/common/thread_annotations.hpp"

#if defined(HARP_RACE_CHECK)
#include "src/common/race_registry.hpp"
#endif

namespace harp {

/// std::mutex with clang capability annotations. Non-recursive, not copyable.
class HARP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HARP_ACQUIRE() {
    mutex_.lock();
#if defined(HARP_RACE_CHECK)
    RaceRegistry::instance().on_lock_acquired(this);
#endif
  }
  void unlock() HARP_RELEASE() {
#if defined(HARP_RACE_CHECK)
    RaceRegistry::instance().on_lock_released(this);
#endif
    mutex_.unlock();
  }
  bool try_lock() HARP_TRY_ACQUIRE(true) {
    bool acquired = mutex_.try_lock();
#if defined(HARP_RACE_CHECK)
    if (acquired) RaceRegistry::instance().on_lock_acquired(this);
#endif
    return acquired;
  }

 private:
  std::mutex mutex_;
};

/// RAII guard for harp::Mutex (std::scoped_lock is equally unannotated).
class HARP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) HARP_ACQUIRE(mutex) : mutex_(mutex) { mutex_.lock(); }
  ~MutexLock() HARP_RELEASE() { mutex_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

}  // namespace harp
