// Eraser-style dynamic lockset race detector (compiled in under the
// HARP_RACE_CHECK CMake option; zero overhead otherwise).
//
// The classic Eraser algorithm (Savage et al., SOSP '97) checks the locking
// DISCIPLINE instead of happens-before: every harp::Mutex acquisition and
// release maintains a per-thread held-lock set, and every tracked shared
// object keeps a candidate lockset C(v) — the set of locks held on *every*
// access so far. Objects start in an exclusive phase (single-threaded
// construction and setup need no locks); the first access from a second
// thread re-seeds C(v) from that thread's held set, and each later access
// intersects. An empty intersection means no single lock protected every
// access — a data race in discipline terms, reported deterministically even
// when the accesses never actually overlapped. This is exactly why the
// two-thread scenario tests can drive the detector with join-sequenced
// threads that TSAN (a happens-before checker) rightly stays silent on.
//
// Instrumentation: sprinkle HARP_TRACK_SHARED(&field_) at the top of code
// paths that touch the shared structure. Under HARP_RACE_CHECK it records an
// access with the current thread's lockset; otherwise it compiles to nothing.
//
// Lock-order witness: the acquisition hook also maintains a global "A was
// held while B was acquired" order graph. When a thread first establishes an
// edge A -> B and a path B ~> A already exists, the orders contradict — two
// threads following them can deadlock — so the registry reports an inversion
// AT ACQUIRE TIME, even on runs that never interleave into the deadlock
// (join-sequenced two-thread tests can drive it deterministically, exactly
// like the lockset checker above). Static counterpart: harp-lint r11, which
// sees lock identities per class; the witness sees instances and indirect
// calls the syntactic pass cannot.
//
// The registry's own state is guarded by a raw std::mutex, NOT harp::Mutex:
// the instrumented Mutex::lock() hook calls back into the registry, and a
// harp::Mutex here would recurse into its own instrumentation.
#pragma once

#include <cstddef>
#include <string>

namespace harp {

class RaceRegistry {
 public:
  /// Process-wide singleton (never destroyed; tracked objects may outlive
  /// static destruction order).
  static RaceRegistry& instance();

  /// Mutex hooks: maintain the calling thread's held-lock set (thread_local)
  /// and the global lock-order graph. The acquire hook takes the registry's
  /// raw guard only the first time a (held, acquired) pair is seen per epoch
  /// — a thread_local seen-edge cache keeps the steady state lock-free — and
  /// the guard is a leaf (nothing is called while it is held), so the hooks
  /// cannot deadlock. The release hook never locks.
  void on_lock_acquired(const void* mutex);
  void on_lock_released(const void* mutex);

  /// Record an access to a tracked shared object by the current thread and
  /// run the lockset intersection. On an empty intersection: report to
  /// stderr and abort (default), or count it when abort-on-race is off
  /// (scenario tests assert on race_count()).
  void on_shared_access(const void* object, const char* label);

  /// Drop a tracked object's state (call from destructors of short-lived
  /// instrumented objects so address reuse cannot alias histories).
  void forget(const void* object);

  /// Test hooks. Reports render tracked objects, mutexes and threads as
  /// stable first-appearance ids (o0, m0, t0, ...), never raw addresses or
  /// std::thread::ids, so a deterministic access schedule produces a
  /// byte-identical report on every run.
  void set_abort_on_race(bool abort_on_race);
  std::size_t race_count() const;
  std::string last_report() const;
  /// Lock-order inversions witnessed so far (reported once per offending
  /// edge) and the most recent inversion report. Gated by the same
  /// abort-on-race switch as lockset violations.
  std::size_t inversion_count() const;
  std::string last_order_report() const;
  /// Clears tracked objects, races, reports, the lock-order graph and the
  /// stable report-id maps (not per-thread held sets), and bumps the order
  /// epoch so every thread's seen-edge cache is invalidated.
  void reset();

 private:
  RaceRegistry() = default;
};

}  // namespace harp

#if defined(HARP_RACE_CHECK)
#define HARP_TRACK_SHARED(obj) ::harp::RaceRegistry::instance().on_shared_access((obj), #obj)
// Call from the owning destructor: address reuse (stack objects in tests)
// must not inherit a dead object's candidate lockset.
#define HARP_UNTRACK_SHARED(obj) ::harp::RaceRegistry::instance().forget((obj))
#else
#define HARP_TRACK_SHARED(obj) ((void)0)
#define HARP_UNTRACK_SHARED(obj) ((void)0)
#endif
