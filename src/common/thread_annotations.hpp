// Clang thread-safety-analysis attributes behind HARP_-prefixed macros.
//
// Annotations compile to nothing on GCC (and on clang without
// -Wthread-safety), so they are pure documentation there; under
// `clang++ -Wthread-safety` they turn the lock discipline into compiler
// diagnostics. harp-lint's R5 rule additionally requires every data member
// of a mutex-holding class to carry HARP_GUARDED_BY (or an explicit
// suppression), so the discipline is enforced even on GCC-only setups.
//
// Use the annotated harp::Mutex / harp::MutexLock (mutex.hpp) as the
// capability; std::mutex is not attribute-annotated by libstdc++, so clang
// cannot reason about it.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define HARP_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define HARP_THREAD_ANNOTATION(x)
#endif

/// Marks a type as a lockable capability (mutexes).
#define HARP_CAPABILITY(name) HARP_THREAD_ANNOTATION(capability(name))

/// Marks a RAII guard type that acquires a capability for its lifetime.
#define HARP_SCOPED_CAPABILITY HARP_THREAD_ANNOTATION(scoped_lockable)

/// Data member protected by the given mutex: only read/written while held.
#define HARP_GUARDED_BY(x) HARP_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given mutex.
#define HARP_PT_GUARDED_BY(x) HARP_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that must be called with the given mutex(es) already held.
#define HARP_REQUIRES(...) HARP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that acquires / releases the given mutex(es).
#define HARP_ACQUIRE(...) HARP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define HARP_RELEASE(...) HARP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that must NOT be called with the given mutex(es) held.
#define HARP_EXCLUDES(...) HARP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Return value annotations for try-lock style functions.
#define HARP_TRY_ACQUIRE(...) HARP_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Escape hatch: disable the analysis for one function (init/teardown paths).
#define HARP_NO_THREAD_SAFETY_ANALYSIS HARP_THREAD_ANNOTATION(no_thread_safety_analysis)
