// Small leveled logger. Single global sink (stderr by default); thread-safe.
// Kept deliberately simple: the simulator and RM log sparsely, and benches
// silence logging entirely.
#pragma once

#include <sstream>
#include <string>

namespace harp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Defaults to kWarn so
/// tests/benches stay quiet unless they opt in.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_emit(level_, oss_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    oss_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream oss_;
};
}  // namespace detail

}  // namespace harp

#define HARP_LOG(level)                                  \
  if (static_cast<int>(::harp::LogLevel::level) <        \
      static_cast<int>(::harp::log_level())) {           \
  } else                                                 \
    ::harp::detail::LogLine(::harp::LogLevel::level)

#define HARP_DEBUG HARP_LOG(kDebug)
#define HARP_INFO HARP_LOG(kInfo)
#define HARP_WARN HARP_LOG(kWarn)
#define HARP_ERROR HARP_LOG(kError)
