// Lightweight expected-style result type for recoverable errors (I/O, parsing,
// protocol violations). Programming errors use HARP_CHECK (check.hpp) instead.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace harp {

/// Error payload carried by a failed Result. A plain message is enough for
/// this library; callers that need to branch can match on the message prefix
/// conventions ("parse:", "io:", "proto:").
struct Error {
  std::string message;
};

/// Minimal expected<T, Error>. Intentionally tiny: no monadic chaining beyond
/// what the library needs, so the header stays cheap to include.
/// [[nodiscard]]: silently dropping a Result swallows the error that HARP's
/// feedback loops depend on; discard explicitly with (void) if truly fire-
/// and-forget (harp-lint R1 polices the same rule).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  /// Value access. Throws std::logic_error if the result holds an error;
  /// callers are expected to test ok() first on fallible paths.
  const T& value() const& {
    require_ok();
    return *value_;
  }
  T& value() & {
    require_ok();
    return *value_;
  }
  T&& take() && {
    require_ok();
    return std::move(*value_);
  }

  const Error& error() const {
    if (ok()) throw std::logic_error("Result::error() called on ok result");
    return *error_;
  }

 private:
  void require_ok() const {
    if (!ok()) throw std::logic_error("Result::value() on error: " + error_->message);
  }

  std::optional<T> value_;
  std::optional<Error> error_;
};

/// Result<void> analogue.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  static Status ok_status() { return Status{}; }

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    if (ok()) throw std::logic_error("Status::error() called on ok status");
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

inline Error make_error(std::string message) { return Error{std::move(message)}; }

}  // namespace harp
