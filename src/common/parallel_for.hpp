// Deterministic data-parallel worker pool for hot-path loops.
//
// The contract is bit-reproducibility, not just speed: run(n, kernel, ctx)
// partitions [0, n) into fixed kBlock-sized blocks and assigns block b to
// lane (b % lanes) — a pure function of (n, lanes), never of timing. A
// kernel therefore sees exactly the same index ranges on every run, and a
// caller that keeps per-lane accumulators and merges them in ascending lane
// order gets byte-identical results for any lane count, including 1.
// Cross-lane reductions must stay exact under this merge (integers, argmin
// with a total tie-break); floating-point sums belong in a single lane or in
// the caller's serial epilogue.
//
// The calling thread participates as lane 0, so a pool with one lane runs
// the kernel inline with no synchronisation at all — the "parallel" path and
// the serial path are literally the same code. Kernels are raw function
// pointers plus a context pointer: dispatching a job performs no heap
// allocation, keeping run() legal inside allocation-free hot paths.
//
// Worker threads are created once and parked on a condition variable between
// jobs; dispatch publishes the job under the pool mutex, and completion is
// signalled through an atomic countdown the caller spins on (acquire/release
// pairing makes every kernel write visible to the caller).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/common/mutex.hpp"

namespace harp {

class ParallelFor {
 public:
  /// Processes indices [begin, end) as lane `lane`. Must not throw.
  using Kernel = void (*)(void* ctx, std::size_t begin, std::size_t end, int lane);

  /// Fixed block size of the cyclic partition. Small enough to balance a
  /// 1024-group scan over 8 lanes, large enough that a block amortises the
  /// dispatch bookkeeping.
  static constexpr std::size_t kBlock = 64;

  /// `lanes` >= 1. Creates lanes-1 worker threads; lane 0 is the caller.
  explicit ParallelFor(int lanes);
  ~ParallelFor();
  ParallelFor(const ParallelFor&) = delete;
  ParallelFor& operator=(const ParallelFor&) = delete;

  int lanes() const { return lanes_; }

  /// Run `kernel` over [0, n): block b (indices [b*kBlock, ...)) goes to lane
  /// b % lanes. Blocks within a lane run in ascending order. Returns after
  /// every lane finished; not reentrant (one job at a time per pool).
  void run(std::size_t n, Kernel kernel, void* ctx);

 private:
  void worker_main(int lane);
  /// Process this lane's blocks of the current job (ascending block index).
  static void run_lane(std::size_t n, int lanes, Kernel kernel, void* ctx, int lane);

  const int lanes_;
  std::vector<std::thread> threads_;  // harp-lint: allow(all started in ctor, joined in dtor)

  // Dispatch protocol: run() publishes the job fields and bumps epoch_ under
  // mutex_; workers copy the fields out under the same lock before running.
  // The fields are not HARP_GUARDED_BY-annotated because workers reach them
  // through std::unique_lock (condition_variable_any's wait contract), which
  // clang's thread-safety analysis cannot see through; the dynamic lockset
  // checker still observes every acquisition via the harp::Mutex hooks.
  Mutex mutex_;
  std::condition_variable_any cv_;          // harp-lint: allow(all waits on mutex_ itself)
  std::uint64_t epoch_ = 0;                 // harp-lint: allow(all written/read under mutex_)
  bool stop_ = false;                       // harp-lint: allow(all written/read under mutex_)
  std::size_t job_n_ = 0;                   // harp-lint: allow(all written/read under mutex_)
  Kernel job_kernel_ = nullptr;             // harp-lint: allow(all written/read under mutex_)
  void* job_ctx_ = nullptr;                 // harp-lint: allow(all written/read under mutex_)
  /// Lanes still running the current job; release-decremented by workers,
  /// acquire-polled by run() so kernel writes are published to the caller.
  std::atomic<int> pending_{0};
};

}  // namespace harp
