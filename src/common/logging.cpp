#include "src/common/logging.hpp"

#include <atomic>
#include <cstdio>

#include "src/common/mutex.hpp"

namespace harp {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
Mutex g_sink_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  MutexLock lock(g_sink_mutex);
  std::fprintf(stderr, "[harp %s] %s\n", level_name(level), message.c_str());
}
}  // namespace detail

}  // namespace harp
