// Invariant/precondition checking for programming errors. Violations are bugs,
// not recoverable conditions, so they throw harp::CheckFailure which is left
// to terminate (or be caught by tests asserting on contracts).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace harp {

/// Thrown when a HARP_CHECK precondition or invariant is violated.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& extra) {
  std::ostringstream oss;
  oss << "check failed: " << expr << " at " << file << ":" << line;
  if (!extra.empty()) oss << " — " << extra;
  throw CheckFailure(oss.str());
}
}  // namespace detail

}  // namespace harp

/// Always-on invariant check (cheap conditions only on hot paths).
#define HARP_CHECK(expr)                                                   \
  do {                                                                     \
    if (!(expr)) ::harp::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

/// Invariant check with a formatted context message, e.g.
///   HARP_CHECK_MSG(i < n, "index " << i << " out of range " << n);
#define HARP_CHECK_MSG(expr, stream_expr)                       \
  do {                                                          \
    if (!(expr)) {                                              \
      std::ostringstream harp_check_oss;                        \
      harp_check_oss << stream_expr;                            \
      ::harp::detail::check_failed(#expr, __FILE__, __LINE__,   \
                                   harp_check_oss.str());       \
    }                                                           \
  } while (false)
