// harp-lint: hot-path — run() dispatches inside the RM's solver loop; r6
// flags std::vector/std::string construction inside loops in this file. The
// dispatch path publishes three plain words and wakes parked workers; it
// performs no heap allocation.
#include "src/common/parallel_for.hpp"

#include <mutex>

#include "src/common/check.hpp"

namespace harp {

ParallelFor::ParallelFor(int lanes) : lanes_(lanes) {
  HARP_CHECK(lanes >= 1);
  threads_.reserve(static_cast<std::size_t>(lanes - 1));
  for (int lane = 1; lane < lanes; ++lane)
    threads_.emplace_back([this, lane] { worker_main(lane); });
}

ParallelFor::~ParallelFor() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void ParallelFor::run_lane(std::size_t n, int lanes, Kernel kernel, void* ctx, int lane) {
  const std::size_t num_blocks = (n + kBlock - 1) / kBlock;
  for (std::size_t b = static_cast<std::size_t>(lane); b < num_blocks;
       b += static_cast<std::size_t>(lanes)) {
    const std::size_t begin = b * kBlock;
    const std::size_t end = begin + kBlock < n ? begin + kBlock : n;
    kernel(ctx, begin, end, lane);
  }
}

void ParallelFor::run(std::size_t n, Kernel kernel, void* ctx) {
  if (n == 0) return;
  if (lanes_ == 1) {
    // Single lane: one inline call covering the whole range. Identical to
    // the blocked path — a lane visits its blocks in ascending order, so
    // lane 0 alone sees exactly [0, n) in order.
    kernel(ctx, 0, n, 0);
    return;
  }
  // Arm the countdown BEFORE publishing the epoch: a worker may only observe
  // the new epoch after the mutex below is released (the store is sequenced
  // before the acquisition, so it is visible to any such worker), which
  // makes a decrement-before-arm underflow impossible.
  pending_.store(lanes_ - 1, std::memory_order_relaxed);
  {
    MutexLock lock(mutex_);
    job_n_ = n;
    job_kernel_ = kernel;
    job_ctx_ = ctx;
    ++epoch_;
  }
  cv_.notify_all();
  run_lane(n, lanes_, kernel, ctx, 0);
  // Spin-then-yield join: worker runtimes are bounded (pure kernels over
  // fixed ranges), and the release decrements pair with these acquire loads
  // to publish every kernel write before run() returns.
  while (pending_.load(std::memory_order_acquire) != 0) std::this_thread::yield();
}

void ParallelFor::worker_main(int lane) {
  std::uint64_t seen_epoch = 0;
  while (true) {
    std::size_t n = 0;
    Kernel kernel = nullptr;
    void* ctx = nullptr;
    {
      std::unique_lock<Mutex> lock(mutex_);
      // harp-lint: allow(r1 condition_variable wait returns void, not a Result)
      cv_.wait(lock, [this, seen_epoch] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      n = job_n_;
      kernel = job_kernel_;
      ctx = job_ctx_;
    }
    run_lane(n, lanes_, kernel, ctx, lane);
    pending_.fetch_sub(1, std::memory_order_release);
  }
}

}  // namespace harp
