#include "src/sched/baselines.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/common/check.hpp"
#include "src/model/qos.hpp"

namespace harp::sched {

// ---------------------------------------------------------------------------
// EAS
// ---------------------------------------------------------------------------

void EasPolicy::on_app_start(sim::AppId id) {
  HARP_CHECK(api_ != nullptr);
  last_cpu_[id] = api_->cpu_time_by_type(id);
  replace_all();
}

void EasPolicy::tick() {
  // Re-evaluate placement at PELT-ish cadence (every 100 ms of sim time).
  HARP_CHECK(api_ != nullptr);
  if (api_->now() - last_eval_ < 0.1) return;
  last_eval_ = api_->now();
  replace_all();
}

void EasPolicy::replace_all() {
  HARP_CHECK(api_ != nullptr);
  const platform::HardwareDescription& hw = api_->hardware();
  const sim::SlotMap& slots = api_->slots();

  // Identify the efficient cluster (lowest active power per core).
  int eff_type = 0;
  for (int t = 1; t < hw.num_core_types(); ++t)
    if (hw.core_types[static_cast<std::size_t>(t)].active_power_w <
        hw.core_types[static_cast<std::size_t>(eff_type)].active_power_w)
      eff_type = t;
  std::vector<int> eff_slots;
  for (int s = 0; s < slots.num_slots(); ++s)
    if (slots.slot(s).type == eff_type) eff_slots.push_back(s);

  // PELT stand-in: a task runnable for the whole window has utilisation 1;
  // total demand is the number of runnable worker threads.
  int total_demand = 0;
  std::vector<sim::RunningAppInfo> apps = api_->running_apps();
  for (const sim::RunningAppInfo& app : apps)
    total_demand += app.in_startup ? 1 : app.behavior->resolved_default_threads(hw);

  // EAS packs low demand onto the efficient cluster (energy model says the
  // LITTLE island is cheaper as long as it is not overcommitted); beyond
  // its capacity the whole machine is used. Either way the placement is
  // explicit (non-empty allowed set): EAS migrates between clusters only
  // for misfit tasks, so threads do not get the free cross-cluster mixing
  // an SMP load balancer provides — statically partitioned work eats the
  // full asymmetry imbalance under this baseline.
  bool fits_efficient = total_demand <= static_cast<int>(eff_slots.size());
  for (const sim::RunningAppInfo& app : apps) {
    sim::AppControl control;
    control.allowed_slots = fits_efficient ? eff_slots : slots.all_slots();
    api_->set_control(app.id, control);
  }
}

// ---------------------------------------------------------------------------
// ITD
// ---------------------------------------------------------------------------

void ItdPolicy::tick() {
  // The Thread Director reclassifies continuously; re-evaluate at a coarse
  // cadence so demand changes (startup → full worker team) are tracked.
  HARP_CHECK(api_ != nullptr);
  if (api_->now() - last_eval_ < 0.1) return;
  last_eval_ = api_->now();
  replace_all();
}

void ItdPolicy::replace_all() {
  HARP_CHECK(api_ != nullptr);
  const platform::HardwareDescription& hw = api_->hardware();
  const sim::SlotMap& slots = api_->slots();
  std::vector<sim::RunningAppInfo> apps = api_->running_apps();
  if (apps.empty()) return;

  // Hardware thread class: per-thread IPC ratio between the fast and the
  // efficient core type, as the Thread Director's classification tables
  // expose it. Types are assumed ordered fast-first (as in the shipped
  // hardware descriptions).
  auto class_ratio = [&](const sim::RunningAppInfo& app) {
    const auto& types = hw.core_types;
    double fast = types[0].base_gips * app.behavior->ipc[0];
    double eff = types[1].base_gips * app.behavior->ipc[1];
    return fast / std::max(eff, 1e-9);
  };
  std::sort(apps.begin(), apps.end(),
            [&](const sim::RunningAppInfo& a, const sim::RunningAppInfo& b) {
              return class_ratio(a) > class_ratio(b);
            });

  std::vector<int> fast_slots, eff_slots;
  for (int s = 0; s < slots.num_slots(); ++s)
    (slots.slot(s).type == 0 ? fast_slots : eff_slots).push_back(s);

  // With a single application there is no class competition: all islands are
  // available, matching ITD's near-baseline single-app behaviour (§6.3.1).
  if (apps.size() == 1) {
    api_->set_control(apps.front().id, sim::AppControl{});
    return;
  }

  // Water-filling: highest-class apps take P hardware threads first; the
  // rest is steered to the E-island. Thread counts are never adjusted, so
  // the preferred island ends up time-shared.
  std::size_t fast_next = 0;
  std::size_t eff_next = 0;
  for (const sim::RunningAppInfo& app : apps) {
    int demand = app.in_startup ? 1 : app.behavior->resolved_default_threads(hw);
    sim::AppControl control;
    control.threads = 0;  // ITD does not scale applications
    while (demand > 0 && fast_next < fast_slots.size()) {
      control.allowed_slots.push_back(fast_slots[fast_next++]);
      --demand;
    }
    while (demand > 0 && eff_next < eff_slots.size()) {
      control.allowed_slots.push_back(eff_slots[eff_next++]);
      --demand;
    }
    if (control.allowed_slots.empty()) {
      // Machine exhausted: overflow apps time-share the efficient island.
      control.allowed_slots = eff_slots;
    }
    api_->set_control(app.id, control);
  }
}

// ---------------------------------------------------------------------------
// EDF
// ---------------------------------------------------------------------------

void EdfPolicy::replan() {
  HARP_CHECK(api_ != nullptr);
  const platform::HardwareDescription& hw = api_->hardware();
  const sim::SlotMap& slots = api_->slots();

  std::vector<sim::RunningAppInfo> apps = api_->running_apps();
  std::vector<sim::RunningAppInfo> services;
  std::vector<sim::RunningAppInfo> others;
  for (const sim::RunningAppInfo& app : apps)
    (app.behavior->qos.has_value() ? services : others).push_back(app);

  // EDF priority: earliest (shortest) deadline provisions first; name breaks
  // ties so the plan is independent of arrival order.
  std::sort(services.begin(), services.end(),
            [](const sim::RunningAppInfo& a, const sim::RunningAppInfo& b) {
              double da = a.behavior->qos->deadline_s;
              double db = b.behavior->qos->deadline_s;
              if (da != db) return da < db;
              return a.behavior->name < b.behavior->name;
            });

  std::vector<bool> core_taken(static_cast<std::size_t>(slots.num_slots()), false);
  for (const sim::RunningAppInfo& app : services) {
    const model::QosSpec& spec = *app.behavior->qos;
    // Capacity that keeps the M/M/1 deadline-miss probability at the target
    // under *nominal* traffic — the static answer; bursts are not tracked.
    double required_gips =
        model::edf_provision_rate(spec) * spec.work_per_request_gi;

    // Grab whole cores fastest-first (one worker per core, no SMT sharing:
    // latency-sensitive services avoid sibling interference).
    std::vector<std::pair<double, int>> free_cores;  // (-gips, first-SMT slot)
    for (int s = 0; s < slots.num_slots(); ++s) {
      const sim::Slot& slot = slots.slot(s);
      if (slot.smt != 0 || core_taken[static_cast<std::size_t>(s)]) continue;
      double gips = hw.core_types[static_cast<std::size_t>(slot.type)].base_gips *
                    app.behavior->ipc[static_cast<std::size_t>(slot.type)];
      free_cores.emplace_back(-gips, s);
    }
    std::sort(free_cores.begin(), free_cores.end());

    sim::AppControl control;
    double granted = 0.0;
    for (const auto& [neg_gips, s] : free_cores) {
      if (granted >= required_gips) break;
      control.allowed_slots.push_back(s);
      core_taken[static_cast<std::size_t>(s)] = true;
      granted += -neg_gips;
    }
    if (control.allowed_slots.empty() && !free_cores.empty()) {
      control.allowed_slots.push_back(free_cores.front().second);
      core_taken[static_cast<std::size_t>(free_cores.front().second)] = true;
    }
    control.threads = static_cast<int>(control.allowed_slots.size());
    api_->set_control(app.id, control);
  }

  // Non-deadline apps share whatever the services left over (the whole
  // machine when nothing remains — EDF does not starve batch work entirely).
  std::vector<int> leftover;
  for (int s = 0; s < slots.num_slots(); ++s) {
    const sim::Slot& slot = slots.slot(s);
    int first = slots.index(slot.type, slot.core, 0);
    if (!core_taken[static_cast<std::size_t>(first)]) leftover.push_back(s);
  }
  for (const sim::RunningAppInfo& app : others) {
    sim::AppControl control;
    control.allowed_slots = leftover;  // empty = whole machine
    api_->set_control(app.id, control);
  }
}

// ---------------------------------------------------------------------------
// Pinned
// ---------------------------------------------------------------------------

void PinnedPolicy::on_app_start(sim::AppId id) {
  HARP_CHECK(api_ != nullptr);
  for (const sim::RunningAppInfo& app : api_->running_apps()) {
    if (app.id != id) continue;
    auto it = controls_.find(app.behavior->name);
    HARP_CHECK_MSG(it != controls_.end(),
                   "pinned policy has no control for app '" << app.behavior->name << "'");
    api_->set_control(id, it->second);
    return;
  }
  HARP_CHECK_MSG(false, "app id not running");
}

}  // namespace harp::sched
