// Baseline resource-management policies the paper compares HARP against.
//
// - CfsPolicy: stock Linux behaviour — every application spawns its default
//   worker count (one per hardware thread) and the load balancer spreads
//   threads across the whole machine, filling fast cores before SMT
//   siblings. No application awareness, no scaling (§6.3's "CFS").
// - EasPolicy: the Energy-Aware Scheduler used as the Odroid baseline
//   (§6.4): PELT-style per-task utilisation tracking plus a platform energy
//   model; low aggregate demand is packed onto the LITTLE cluster, saturated
//   demand spills onto the whole machine.
// - ItdPolicy: the Intel-Thread-Director-based allocator of §6.1/§6.3: each
//   thread's hardware class (its P-vs-E IPC ratio) decides which core type
//   it is steered to; high-ratio applications get the P-cores first.
//   Applications are never scaled, so multi-application loads oversubscribe
//   the preferred islands — the effect behind ITD's multi-app regression.
// - PinnedPolicy: measurement harness for offline DSE and the Fig. 1 config
//   sweeps — pins each application to a fixed allocation/thread count.
// - EdfPolicy: deadline-aware static provisioner — the classic EDF-style
//   admission answer to QoS services. Each service is granted just enough of
//   the fastest remaining cores to sustain the analytic provisioning rate
//   for its nominal load (model::edf_provision_rate); shorter deadlines pick
//   first. Deadline-aware but not energy- or burst-aware: provisioned
//   capacity never shrinks when traffic is calm and never grows under flash
//   crowds — the gap HARP's measured-utility feedback loop closes.
#pragma once

#include <map>
#include <string>

#include "src/sim/runner.hpp"

namespace harp::sched {

/// Stock Linux CFS on a hybrid part (see file comment).
class CfsPolicy : public sim::Policy {
 public:
  std::string name() const override { return "cfs"; }
  // Default AppControl (whole machine, default threads) *is* CFS behaviour.
};

/// Linux Energy-Aware Scheduler (big.LITTLE baseline).
class EasPolicy : public sim::Policy {
 public:
  std::string name() const override { return "eas"; }
  void attach(sim::RunnerApi& api) override {
    api_ = &api;
    last_cpu_.clear();
    last_eval_ = -1.0;  // fresh run: a reused policy instance starts over
  }
  void on_app_start(sim::AppId id) override;
  void on_app_exit(sim::AppId id) override { (void)id; replace_all(); }
  void tick() override;

 private:
  void replace_all();

  sim::RunnerApi* api_ = nullptr;
  std::map<sim::AppId, std::vector<double>> last_cpu_;
  double last_eval_ = -1.0;
};

/// ITD-class-driven allocator (Raptor Lake comparator).
class ItdPolicy : public sim::Policy {
 public:
  std::string name() const override { return "itd"; }
  void attach(sim::RunnerApi& api) override {
    api_ = &api;
    last_eval_ = -1.0;
  }
  void on_app_start(sim::AppId id) override { (void)id; replace_all(); }
  void on_app_exit(sim::AppId id) override { (void)id; replace_all(); }
  void tick() override;

 private:
  void replace_all();

  sim::RunnerApi* api_ = nullptr;
  double last_eval_ = -1.0;
};

/// EDF-flavored static provisioner for deadline services (see file comment).
class EdfPolicy : public sim::Policy {
 public:
  std::string name() const override { return "edf"; }
  void attach(sim::RunnerApi& api) override { api_ = &api; }
  void on_app_start(sim::AppId id) override { (void)id; replan(); }
  void on_app_exit(sim::AppId id) override { (void)id; replan(); }

 private:
  void replan();

  sim::RunnerApi* api_ = nullptr;
};

/// Pins each application (by name) to a fixed control — the measurement
/// harness for offline design-space exploration and the Fig. 1 sweeps.
class PinnedPolicy : public sim::Policy {
 public:
  explicit PinnedPolicy(std::map<std::string, sim::AppControl> controls)
      : controls_(std::move(controls)) {}

  std::string name() const override { return "pinned"; }
  void attach(sim::RunnerApi& api) override { api_ = &api; }
  void on_app_start(sim::AppId id) override;

 private:
  sim::RunnerApi* api_ = nullptr;
  std::map<std::string, sim::AppControl> controls_;
};

}  // namespace harp::sched
