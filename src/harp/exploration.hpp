// Runtime exploration of operating points (§5) — maturity stages, candidate
// selection heuristics, and the utility/power regression surrogate.
//
// Per application, exploration moves through three stages:
//   initial    — too few measured configurations for a model; candidates are
//                chosen by farthest-point sampling in extended-resource-
//                vector space to maximise diversity;
//   refinement — a second-degree polynomial surrogate exists but may be
//                anomalous; candidates with negative predicted utility or
//                power are prioritised (largest geometric-mean negative
//                deviation), otherwise the candidate with the largest
//                discrepancy between the primary model and a zero-anchored
//                auxiliary model is chosen;
//   stable     — ≥ `stable_points` configurations explored; the allocator
//                runs on a long interval and the app executes undisturbed.
// Each selected point receives `measurements_per_point` measurements at
// `measurement_interval_s` (paper: 20 × 50 ms).
#pragma once

#include <optional>
#include <vector>

#include "src/harp/operating_point.hpp"
#include "src/mlmodels/regressors.hpp"
#include "src/platform/resource_vector.hpp"
#include "src/telemetry/trace.hpp"

namespace harp::core {

enum class MaturityStage { kInitial, kRefinement, kStable };

const char* to_string(MaturityStage stage);

struct ExplorationConfig {
  int initial_points = 5;         ///< configs before a preliminary model is trusted
  int stable_points = 25;         ///< configs to reach the stable stage (§5.3)
  int measurements_per_point = 20;
  double measurement_interval_s = 0.05;
  int stable_realloc_interval = 100;  ///< measurement ticks between stable re-allocations
  int regression_degree = 2;          ///< §5.2's winning model
  /// Optional: every select_next() emits a kExplorationSelect instant.
  telemetry::Tracer* tracer = nullptr;
};

/// Utility+power surrogate over extended-resource-vector features.
class NfcModel {
 public:
  explicit NfcModel(int degree = 2);

  /// Fit on measured points; `zero_anchor` adds the (no cores → no utility,
  /// no power) pseudo-sample that defines the auxiliary model of §5.3.
  void fit(const std::vector<OperatingPoint>& measured, int feature_dim, bool zero_anchor);
  bool trained() const { return trained_; }

  NonFunctional predict(const platform::ExtendedResourceVector& erv) const;

 private:
  ml::PolynomialRegressor utility_;
  ml::PolynomialRegressor power_;
  bool trained_ = false;
};

/// Stage machine + candidate selection for one application.
class AppExplorer {
 public:
  AppExplorer(const platform::HardwareDescription& hw, ExplorationConfig config);

  const ExplorationConfig& config() const { return config_; }

  /// Number of fully measured configurations in `table`.
  int measured_configs(const OperatingPointTable& table) const;
  MaturityStage stage(const OperatingPointTable& table) const;

  /// Pick the next configuration to measure within the per-type core budget
  /// (granted allocation plus the app's share of unassigned cores, §5.3).
  /// Returns nullopt when every in-budget configuration is fully measured.
  std::optional<platform::ExtendedResourceVector> select_next(
      const OperatingPointTable& table, const std::vector<int>& core_budget) const;

 private:
  std::optional<platform::ExtendedResourceVector> select_next_impl(
      const OperatingPointTable& table, const std::vector<int>& core_budget) const;
  std::vector<platform::ExtendedResourceVector> in_budget_candidates(
      const std::vector<int>& core_budget) const;

  platform::HardwareDescription hw_;  // owned copy; callers may pass temporaries
  ExplorationConfig config_;
  std::vector<platform::ExtendedResourceVector> all_candidates_;
  std::size_t feature_dim_;
};

}  // namespace harp::core
