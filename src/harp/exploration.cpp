#include "src/harp/exploration.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/check.hpp"

namespace harp::core {

const char* to_string(MaturityStage stage) {
  switch (stage) {
    case MaturityStage::kInitial: return "initial";
    case MaturityStage::kRefinement: return "refinement";
    case MaturityStage::kStable: return "stable";
  }
  return "?";
}

NfcModel::NfcModel(int degree) : utility_(degree), power_(degree) {}

void NfcModel::fit(const std::vector<OperatingPoint>& measured, int feature_dim,
                   bool zero_anchor) {
  HARP_CHECK(!measured.empty());
  std::vector<std::vector<double>> x;
  std::vector<double> yu, yp;
  for (const OperatingPoint& p : measured) {
    x.push_back(p.erv.feature_vector());
    HARP_CHECK(static_cast<int>(x.back().size()) == feature_dim);
    yu.push_back(p.nfc.utility);
    yp.push_back(p.nfc.power_w);
  }
  if (zero_anchor) {
    x.emplace_back(static_cast<std::size_t>(feature_dim), 0.0);
    yu.push_back(0.0);
    yp.push_back(0.0);
  }
  utility_.fit(x, yu);
  power_.fit(x, yp);
  trained_ = true;
}

NonFunctional NfcModel::predict(const platform::ExtendedResourceVector& erv) const {
  HARP_CHECK(trained_);
  std::vector<double> f = erv.feature_vector();
  return NonFunctional{utility_.predict(f), power_.predict(f)};
}

AppExplorer::AppExplorer(const platform::HardwareDescription& hw, ExplorationConfig config)
    : hw_(hw), config_(config), all_candidates_(platform::enumerate_coarse_points(hw_)) {
  HARP_CHECK(!all_candidates_.empty());
  feature_dim_ = all_candidates_.front().feature_vector().size();
}

int AppExplorer::measured_configs(const OperatingPointTable& table) const {
  return static_cast<int>(table.points(config_.measurements_per_point).size());
}

MaturityStage AppExplorer::stage(const OperatingPointTable& table) const {
  int measured = measured_configs(table);
  if (measured < config_.initial_points) return MaturityStage::kInitial;
  if (measured < config_.stable_points) return MaturityStage::kRefinement;
  return MaturityStage::kStable;
}

std::vector<platform::ExtendedResourceVector> AppExplorer::in_budget_candidates(
    const std::vector<int>& core_budget) const {
  HARP_CHECK(core_budget.size() == hw_.core_types.size());
  std::vector<platform::ExtendedResourceVector> out;
  for (const platform::ExtendedResourceVector& erv : all_candidates_) {
    bool fits = true;
    for (int t = 0; t < erv.num_types() && fits; ++t)
      if (erv.cores_used(t) > core_budget[static_cast<std::size_t>(t)]) fits = false;
    if (fits) out.push_back(erv);
  }
  return out;
}

std::optional<platform::ExtendedResourceVector> AppExplorer::select_next(
    const OperatingPointTable& table, const std::vector<int>& core_budget) const {
  std::optional<platform::ExtendedResourceVector> next = select_next_impl(table, core_budget);
  if (config_.tracer != nullptr && next.has_value())
    config_.tracer->instant(
        telemetry::EventType::kExplorationSelect, table.app_name(),
        {{"measured", static_cast<double>(measured_configs(table))}},
        {{"erv", next->to_string(hw_)}, {"stage", to_string(stage(table))}});
  return next;
}

std::optional<platform::ExtendedResourceVector> AppExplorer::select_next_impl(
    const OperatingPointTable& table, const std::vector<int>& core_budget) const {
  // Unmeasured (or under-measured) configurations within the budget.
  std::vector<platform::ExtendedResourceVector> candidates;
  for (platform::ExtendedResourceVector& erv : in_budget_candidates(core_budget)) {
    const OperatingPoint* point = table.find(erv);
    if (point == nullptr || point->measurements < config_.measurements_per_point)
      candidates.push_back(std::move(erv));
  }
  if (candidates.empty()) return std::nullopt;

  std::vector<OperatingPoint> measured = table.points(1);
  if (stage(table) == MaturityStage::kInitial || measured.empty()) {
    // Farthest-point sampling: maximise the minimum normalised distance to
    // any measured configuration; with nothing measured yet, start from the
    // largest in-budget configuration (it also anchors the v* normaliser).
    if (measured.empty()) {
      auto best = std::max_element(candidates.begin(), candidates.end(),
                                   [](const auto& a, const auto& b) {
                                     return a.total_threads() < b.total_threads();
                                   });
      return *best;
    }
    double best_score = -1.0;
    const platform::ExtendedResourceVector* best = nullptr;
    for (const platform::ExtendedResourceVector& c : candidates) {
      double nearest = 1e300;
      for (const OperatingPoint& m : measured)
        nearest = std::min(nearest, c.normalized_distance(m.erv, hw_));
      if (nearest > best_score) {
        best_score = nearest;
        best = &c;
      }
    }
    return *best;
  }

  // Refinement stage: primary model vs anomalies / auxiliary model.
  NfcModel primary(config_.regression_degree);
  primary.fit(measured, static_cast<int>(feature_dim_), /*zero_anchor=*/false);

  // 1) Prioritise configurations with negative predictions: largest combined
  //    error, the geometric mean of the negative deviations with positive
  //    values counted as zero (falling back to the sum when every candidate
  //    has only one negative component and all products vanish).
  double best_geo = 0.0, best_sum = 0.0;
  const platform::ExtendedResourceVector* best_negative = nullptr;
  for (const platform::ExtendedResourceVector& c : candidates) {
    NonFunctional pred = primary.predict(c);
    double nu = std::max(0.0, -pred.utility);
    double np = std::max(0.0, -pred.power_w);
    if (nu <= 0.0 && np <= 0.0) continue;
    double geo = std::sqrt(nu * np);
    double sum = nu + np;
    if (geo > best_geo || (best_geo == 0.0 && sum > best_sum)) {
      best_geo = std::max(best_geo, geo);
      best_sum = std::max(best_sum, sum);
      best_negative = &c;
    }
  }
  if (best_negative != nullptr) return *best_negative;

  // 2) Otherwise: largest discrepancy between the primary model and the
  //    zero-anchored auxiliary model (geometric mean of the |Δutility| and
  //    |Δpower| components).
  NfcModel auxiliary(config_.regression_degree);
  auxiliary.fit(measured, static_cast<int>(feature_dim_), /*zero_anchor=*/true);
  double best_score = -1.0;
  const platform::ExtendedResourceVector* best = nullptr;
  for (const platform::ExtendedResourceVector& c : candidates) {
    NonFunctional a = primary.predict(c);
    NonFunctional b = auxiliary.predict(c);
    double score = std::sqrt(std::abs(a.utility - b.utility) * std::abs(a.power_w - b.power_w));
    if (score > best_score) {
      best_score = score;
      best = &c;
    }
  }
  return *best;
}

}  // namespace harp::core
