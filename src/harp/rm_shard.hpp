// Sharded multi-RM scale-out (DESIGN.md "Event loop & sharding").
//
// One RmServer handles every client on one thread; past ~10^5 clients the
// cycle is dominated by I/O drain even with readiness-driven dispatch. A
// ShardedRmServer splits the client population round-robin across N RmShard
// workers, each a full RmServer (event loop, lease reclamation, fault
// tolerance, telemetry, race checks all intact), and coordinates the one
// piece that cannot shard for free: the MMKP over the shared core budget.
// Two coordination modes:
//
//  - RebalanceMode::kDisabled — shards do I/O only; the coordinator merges
//    every shard's choice groups in global admission order and runs ONE
//    MMKP over the full platform, pushing activations back through the
//    owning shards. By construction this solves the identical instance a
//    single RmServer would (admission order == a single server's adoption
//    order, and the instance fingerprint excludes app identity), so
//    allocations are bit-equal to the unsharded server — the property the
//    200-seed equivalence test pins down.
//
//  - RebalanceMode::kLambdaDrift — each shard owns a disjoint slice of the
//    platform's cores (sub-budget) and solves its own MMKP against it, so
//    shards also parallelise the solve and can run on independent threads.
//    The coordinator watches each shard's Lagrangian multipliers λ (the
//    marginal cost of capacity): when the relative λ spread for a core type
//    stays above `lambda_drift_threshold` for `rebalance_min_cycles`
//    consecutive coordination rounds, it moves one core of that type from
//    the most slack shard (min λ) to the most contended one (max λ). The
//    hysteresis keeps budgets stable under noise; conservation is by
//    construction (budgets are lists of owned physical core ids — moving a
//    core is an erase on one list and an insert on another, so the union
//    is always exactly the platform and never overlaps).
#pragma once

#include <memory>
#include <thread>
#include <vector>

#include "src/common/mutex.hpp"
#include "src/harp/rm_server.hpp"

namespace harp::core {

enum class RebalanceMode : std::uint8_t {
  kDisabled,     ///< global solve in the coordinator; bit-equal to 1 server
  kLambdaDrift,  ///< per-shard budgets, λ-drift driven core migration
};

struct ShardedRmOptions {
  int num_shards = 2;
  RebalanceMode rebalance = RebalanceMode::kDisabled;
  /// kLambdaDrift: relative λ spread ((max−min)/max) beyond which a core
  /// type is considered contended on one shard and slack on another.
  double lambda_drift_threshold = 0.25;
  /// kLambdaDrift: consecutive coordination rounds the drift must persist
  /// before a core moves (hysteresis against transient load).
  int rebalance_min_cycles = 4;
  /// Per-shard server options. `external_solver` is overridden per mode;
  /// tracer/metrics sinks are shared by every shard and the coordinator.
  RmServerOptions server;
};

/// N sharded RmServers plus the budget/solve coordinator. Single-threaded
/// by default: poll() runs accept → every shard's cycle → coordination,
/// deterministically. start_threads() (kLambdaDrift only) moves each
/// shard's cycle onto its own blocking thread and leaves poll() with
/// accept + coordination.
class ShardedRmServer {
 public:
  ShardedRmServer(platform::HardwareDescription hw, ShardedRmOptions options = {});
  ~ShardedRmServer();
  ShardedRmServer(const ShardedRmServer&) = delete;
  ShardedRmServer& operator=(const ShardedRmServer&) = delete;

  /// Bind the registration socket; accepted clients are adopted round-robin
  /// across shards in accept order.
  Status listen(const std::string& socket_path);

  /// Adopt a connected channel into the next shard (round-robin) with the
  /// next global admission number.
  void adopt_channel(std::unique_ptr<ipc::Channel> channel);
  /// Adopt into a specific shard (tests); still consumes a global admission
  /// number so allocation order stays defined.
  void adopt_into_shard(int shard, std::unique_ptr<ipc::Channel> channel);

  /// One coordination round. Unthreaded: accept, run every shard's cycle in
  /// index order, then coordinate (global solve or rebalance check).
  /// Threaded: accept and coordinate only — shards cycle on their own
  /// threads against the wall clock.
  void poll(double now_seconds);

  /// Move each shard's cycle onto a dedicated blocking thread. kLambdaDrift
  /// only: the global-solve mode needs the lockstep cycle poll() provides.
  void start_threads();
  void stop_threads();

  int shard_count() const { return static_cast<int>(shards_.size()); }
  /// Direct shard access for tests and diagnostics.
  RmServer& shard(int index) { return *shards_[static_cast<std::size_t>(index)]; }
  const RmServer& shard(int index) const { return *shards_[static_cast<std::size_t>(index)]; }

  /// Connected clients across all shards.
  std::size_t client_count() const;
  /// Core moves performed since construction (kLambdaDrift).
  std::uint64_t rebalances() const;
  /// Global MMKP solves performed by the coordinator (kDisabled).
  std::uint64_t coordinator_solves() const;

  /// Current budget: owned physical core ids per shard per type
  /// (budgets[shard][type] = sorted core ids). Empty in kDisabled mode.
  std::vector<std::vector<std::vector<int>>> budgets() const;

 private:
  void coordinate_global_solve();
  void coordinate_rebalance();
  void shard_thread_main(int index);

  // Immutable after construction; shard threads read them lock-free. The
  // RmServer objects have their own locks for all mutable state.
  platform::HardwareDescription hw_;  // harp-lint: allow(all immutable after construction)
  ShardedRmOptions options_;          // harp-lint: allow(all immutable after construction)
  std::vector<std::unique_ptr<RmServer>> shards_;  // harp-lint: allow(all immutable after construction)

  /// Coordinator state. Guarded against the accessor/adoption surface; the
  /// shard servers have their own locks, so shard threads never contend on
  /// this one.
  mutable Mutex mutex_;
  std::unique_ptr<ipc::UnixServer> listener_ HARP_GUARDED_BY(mutex_);
  std::uint64_t next_admission_ HARP_GUARDED_BY(mutex_) = 0;
  std::uint64_t rebalances_ HARP_GUARDED_BY(mutex_) = 0;
  std::uint64_t coordinator_solves_ HARP_GUARDED_BY(mutex_) = 0;
  /// kLambdaDrift: owned core ids, budgets_[shard][type] (sorted).
  std::vector<std::vector<std::vector<int>>> budgets_ HARP_GUARDED_BY(mutex_);
  /// kLambdaDrift: consecutive rounds each core type's λ spread exceeded
  /// the threshold (hysteresis counters, one per type).
  std::vector<int> drift_rounds_ HARP_GUARDED_BY(mutex_);
  /// Scratch reused across coordination rounds (merge buffers, solver
  /// workspace/result, admission list mirroring the skip-cycle check).
  Allocator coordinator_allocator_ HARP_GUARDED_BY(mutex_);
  SolveWorkspace coordinator_ws_ HARP_GUARDED_BY(mutex_);
  AllocationResult coordinator_result_ HARP_GUARDED_BY(mutex_);
  std::vector<ExportedGroup> export_scratch_ HARP_GUARDED_BY(mutex_);
  std::vector<std::pair<int, ExportedGroup>> merged_ HARP_GUARDED_BY(mutex_);
  std::vector<const AllocationGroup*> group_ptrs_ HARP_GUARDED_BY(mutex_);
  std::vector<std::uint64_t> last_solved_admissions_ HARP_GUARDED_BY(mutex_);
  std::vector<std::vector<double>> lambda_scratch_ HARP_GUARDED_BY(mutex_);

  /// Shard threads (kLambdaDrift). stop flag is the only cross-thread
  /// signal; each shard's own wakeup() breaks it out of a blocked wait.
  std::vector<std::thread> threads_;  // harp-lint: allow(all started/joined by owner thread only)
  std::atomic<bool> stop_threads_{false};

  /// Per-shard cycle-latency histograms and the rebalance counter, resolved
  /// once at construction (null when metrics are off).
  std::vector<telemetry::Histogram*> cycle_histograms_;  // harp-lint: allow(all immutable after construction)
  telemetry::Counter* rebalances_counter_ = nullptr;  // harp-lint: allow(all immutable after construction)
  /// Tracer scope names ("shard0", "shard1", ...), precomputed so the
  /// per-cycle loop never builds strings.
  std::vector<std::string> shard_scopes_;  // harp-lint: allow(all immutable after construction)
};

}  // namespace harp::core
