#include "src/harp/dse.hpp"

#include "src/mlmodels/pareto.hpp"

namespace harp::core {

double managed_rebalance_factor(model::AdaptivityType type) {
  return type == model::AdaptivityType::kCustom ? 1.0 : 0.0;
}

OperatingPointTable run_offline_dse(const model::AppBehavior& app,
                                    const platform::HardwareDescription& hw,
                                    const DseOptions& options) {
  double rebalance = options.rebalance_factor >= 0.0
                         ? options.rebalance_factor
                         : managed_rebalance_factor(app.adaptivity);

  // Static applications cannot mold their team to the allocation: profile
  // them with their fixed thread count time-sharing the granted slots.
  bool is_static =
      app.adaptivity == model::AdaptivityType::kStatic && app.default_threads > 0;

  std::vector<platform::ExtendedResourceVector> candidates = enumerate_coarse_points(hw);
  if (options.tracer != nullptr)
    options.tracer->begin(telemetry::EventType::kDseSweep, app.name,
                          {{"candidates", static_cast<double>(candidates.size())}});
  std::vector<NonFunctional> nfcs;
  nfcs.reserve(candidates.size());
  for (const platform::ExtendedResourceVector& erv : candidates) {
    model::AppRates rates =
        is_static ? model::pinned_rates(app, hw, erv, app.default_threads, rebalance,
                                        options.freq_scale)
                  : model::exclusive_rates(app, hw, erv, rebalance, options.freq_scale);
    NonFunctional nfc;
    if (app.qos.has_value()) {
      // Deadline apps: profile the EDF-flavored utility curve — the hit-rate
      // the allocation's sustained service rate achieves at nominal load —
      // rather than raw throughput (a service twice as fast as its traffic
      // gains nothing from more cores).
      const double service_rps = rates.useful_gips / app.qos->work_per_request_gi;
      nfc.utility = model::qos_utility(service_rps, app.qos->nominal_rate_rps, *app.qos);
    } else {
      nfc.utility = app.provides_utility ? rates.useful_gips : rates.measured_gips;
    }
    nfc.power_w = rates.power_w;
    nfcs.push_back(nfc);
  }

  std::vector<std::size_t> keep;
  if (options.pareto_filter) {
    // Objectives, all minimised: −utility, power, cores per type.
    std::vector<std::vector<double>> objectives;
    objectives.reserve(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      std::vector<double> row{-nfcs[i].utility, nfcs[i].power_w};
      for (int t = 0; t < candidates[i].num_types(); ++t)
        row.push_back(static_cast<double>(candidates[i].cores_used(t)));
      objectives.push_back(std::move(row));
    }
    keep = ml::pareto_front(objectives);
  } else {
    keep.resize(candidates.size());
    for (std::size_t i = 0; i < keep.size(); ++i) keep[i] = i;
  }

  OperatingPointTable table(app.name);
  for (std::size_t i : keep) {
    if (options.measurements_per_point <= 0) {
      table.set_point(candidates[i], nfcs[i]);
      continue;
    }
    // Record as measurements so the RM treats the table as stable (the EMA
    // of a constant series is that constant).
    for (int m = 0; m < options.measurements_per_point; ++m)
      table.record_measurement(candidates[i], nfcs[i].utility, nfcs[i].power_w);
  }
  if (options.tracer != nullptr)
    options.tracer->end(telemetry::EventType::kDseSweep, app.name,
                        {{"kept", static_cast<double>(keep.size())}});
  return table;
}

}  // namespace harp::core
