// Energy-efficient resource allocation (§4.2.2): the Multiple-choice
// Multi-dimensional Knapsack Problem of Eq. (1).
//
//   minimise   Σ_σ ζ(x_σ)           (energy-utility cost of selected points)
//   subject to Σ_σ r(x_σ) ≤ R       (per-core-type capacity)
//
// MMKP is NP-hard; HARP uses the state-of-the-art Lagrangian-relaxation
// approximation in the style of Wildermann et al.: subgradient iterations on
// the relaxed problem, feasibility repair, then a concrete first-fit core
// assignment guaranteeing spatial isolation. A greedy heuristic and an exact
// branch-and-bound reference are provided for the allocator-quality
// ablation (bench/allocator_ablation) and for tests.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/harp/operating_point.hpp"
#include "src/platform/resource_vector.hpp"
#include "src/telemetry/trace.hpp"

namespace harp::core {

/// One application's choice group.
struct AllocationGroup {
  std::string app_name;
  /// Candidate operating points; ζ must be precomputed against the app's
  /// utility normaliser. At least one candidate required.
  std::vector<OperatingPoint> candidates;
  std::vector<double> costs;  ///< ζ per candidate, parallel to `candidates`
};

/// Result of one solve.
struct AllocationResult {
  /// Selected candidate index per group; empty if the instance forced
  /// co-allocation (no feasible selection exists even at minimum demand).
  std::vector<std::size_t> selection;
  double total_cost = 0.0;
  bool feasible = false;

  /// Concrete, spatially isolated core allocations (parallel to groups);
  /// only populated when feasible.
  std::vector<platform::CoreAllocation> allocations;
};

enum class SolverKind { kLagrangian, kGreedy, kExhaustive };

/// MMKP solver facade.
class Allocator {
 public:
  explicit Allocator(platform::HardwareDescription hw,
                     SolverKind kind = SolverKind::kLagrangian,
                     telemetry::Tracer* tracer = nullptr);

  /// Solve the selection problem and compute concrete core assignments.
  /// Groups must be non-empty and every group must have >= 1 candidate.
  AllocationResult solve(const std::vector<AllocationGroup>& groups) const;

  const platform::HardwareDescription& hardware() const { return hw_; }

 private:
  std::vector<std::size_t> solve_lagrangian(const std::vector<AllocationGroup>& groups,
                                            const std::vector<int>& capacity) const;
  std::vector<std::size_t> solve_greedy(const std::vector<AllocationGroup>& groups,
                                        const std::vector<int>& capacity) const;
  std::vector<std::size_t> solve_exhaustive(const std::vector<AllocationGroup>& groups,
                                            const std::vector<int>& capacity) const;
  /// Make an infeasible selection feasible by cost-aware downgrades; returns
  /// nullopt when even minimum demand exceeds capacity.
  std::optional<std::vector<std::size_t>> repair(const std::vector<AllocationGroup>& groups,
                                                 std::vector<std::size_t> selection,
                                                 const std::vector<int>& capacity) const;

  platform::HardwareDescription hw_;
  SolverKind kind_;
  /// Optional: wraps every solve() in a kMmkpSolve span (groups/cost/feasible).
  telemetry::Tracer* tracer_;
};

/// True iff the selected points jointly fit the capacity vector.
bool selection_feasible(const std::vector<AllocationGroup>& groups,
                        const std::vector<std::size_t>& selection,
                        const std::vector<int>& capacity);

/// Σ cost of a selection.
double selection_cost(const std::vector<AllocationGroup>& groups,
                      const std::vector<std::size_t>& selection);

}  // namespace harp::core
