// Energy-efficient resource allocation (§4.2.2): the Multiple-choice
// Multi-dimensional Knapsack Problem of Eq. (1).
//
//   minimise   Σ_σ ζ(x_σ)           (energy-utility cost of selected points)
//   subject to Σ_σ r(x_σ) ≤ R       (per-core-type capacity)
//
// MMKP is NP-hard; HARP uses the state-of-the-art Lagrangian-relaxation
// approximation in the style of Wildermann et al.: subgradient iterations on
// the relaxed problem, feasibility repair, then a concrete first-fit core
// assignment guaranteeing spatial isolation. A greedy heuristic and an exact
// branch-and-bound reference are provided for the allocator-quality
// ablation (bench/allocator_ablation) and for tests.
//
// The solver runs in the RM's periodic decision cycle, so it has a hot-path
// entry point: solve(groups, workspace, out) reuses a SolveWorkspace across
// cycles — flat candidate×core-type usage rows, scratch buffers, and a
// fingerprint of the previous instance that lets a byte-identical cycle
// replay the cached result without solving at all. The warm path is
// result-neutral: it returns bit-identical selections to the cold
// one-shot solve(groups) overload (see DESIGN.md "Hot path &
// incrementality").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/harp/operating_point.hpp"
#include "src/platform/resource_vector.hpp"
#include "src/telemetry/trace.hpp"

namespace harp {
class ParallelFor;
}

namespace harp::core {

/// One application's choice group.
struct AllocationGroup {
  std::string app_name;
  /// Candidate operating points; ζ must be precomputed against the app's
  /// utility normaliser. At least one candidate required.
  std::vector<OperatingPoint> candidates;
  std::vector<double> costs;  ///< ζ per candidate, parallel to `candidates`

  /// Soft-QoS minimum-service-rate row (Nejat-style slack pricing): the
  /// solver charges candidates below `min_rate` an extra
  /// slack_weight · max(0, (min_rate − rate)/min_rate) on top of ζ, steering
  /// the selection toward QoS-meeting points without making the constraint
  /// hard (an overloaded machine degrades instead of failing). Groups
  /// without a row are solved with their raw ζ values, bit-identically to a
  /// solver without QoS support.
  struct SoftQos {
    double min_rate = 0.0;       ///< service-rate target (same units as `rates`)
    double slack_weight = 0.0;   ///< penalty per unit of relative deficit
    std::vector<double> rates;   ///< predicted service rate per candidate
  };
  std::optional<SoftQos> qos;

  /// Flat per-candidate core-usage rows, candidate-major:
  /// usage_rows[c * usage_num_types + t] = cores of type t used by candidate
  /// c. Filled by prepare(); the solver falls back to building rows in its
  /// workspace for unprepared groups, so preparing is an optimisation for
  /// callers that cache groups across cycles, never a requirement.
  std::vector<int> usage_rows;
  int usage_num_types = 0;

  /// (Re)build usage_rows for a platform with `num_types` core types. Every
  /// candidate ERV must be shaped for that platform.
  void prepare(int num_types);
  bool prepared(int num_types) const {
    return num_types > 0 && usage_num_types == num_types &&
           usage_rows.size() == candidates.size() * static_cast<std::size_t>(num_types);
  }
};

/// Result of one solve.
struct AllocationResult {
  /// Selected candidate index per group; empty if the instance forced
  /// co-allocation (no feasible selection exists even at minimum demand).
  std::vector<std::size_t> selection;
  double total_cost = 0.0;
  bool feasible = false;

  /// Concrete, spatially isolated core allocations (parallel to groups);
  /// only populated when feasible.
  std::vector<platform::CoreAllocation> allocations;
};

enum class SolverKind { kLagrangian, kGreedy, kExhaustive };

/// How the last solve() produced its result (observability: the RM exports
/// rm_solve_incremental_total / rm_solve_groups_rescanned_total from this).
enum class SolveMode {
  kFull,         ///< every group scanned in every λ iteration
  kIncremental,  ///< dirty-subset solve against the cached λ trajectory
  kReplay,       ///< byte-identical instance: cached result returned verbatim
};

/// Reusable per-caller solver state. Holding one of these across RM cycles
/// buys three things: (1) every scratch vector the solvers need is allocated
/// once and reused, making steady-state solves heap-allocation-free; (2) a
/// fingerprint of the last solved instance lets a byte-identical cycle
/// replay the cached AllocationResult without running a solver; (3) the last
/// λ multipliers survive for diagnostics. A workspace belongs to one
/// (Allocator, call site) pair — sharing it between allocators with
/// different hardware or solver kinds would replay results across
/// incompatible instances; invalidate() when retargeting.
class SolveWorkspace {
 public:
  SolveWorkspace() = default;

  /// True iff the most recent solve() replayed the cached result instead of
  /// running a solver (instance fingerprint matched the previous cycle).
  bool replayed() const { return replayed_; }
  std::uint64_t full_solves() const { return full_solves_; }
  std::uint64_t replays() const { return replays_; }

  /// How the most recent solve() ran (kIncremental only on the dirty-subset
  /// Lagrangian path; greedy/exhaustive solves are always kFull or kReplay).
  SolveMode last_mode() const { return last_mode_; }
  /// Incremental (dirty-subset) solves since construction.
  std::uint64_t incremental_solves() const { return incremental_solves_; }
  /// Groups rescanned by the most recent solve: the dirty count on the
  /// incremental path, the full group count on a full solve, 0 on a replay.
  std::size_t last_rescanned_groups() const { return last_rescanned_groups_; }
  /// λ iterations of the most recent solve that were served from the cached
  /// trajectory (clean-group argmins reused; only dirty groups rescanned).
  int last_sync_iterations() const { return last_sync_iters_; }

  /// λ multipliers left by the last Lagrangian solve — diagnostics only; the
  /// solver always restarts λ from zero so results stay independent of
  /// workspace history.
  const std::vector<double>& multipliers() const { return lambda_; }

  /// Drop the cached result, the λ-trajectory cache, and the per-group
  /// fingerprints so the next solve() runs in full. Needed only when
  /// re-using one workspace against a different Allocator.
  void invalidate() {
    has_cached_ = false;
    traj_valid_ = false;
    shapes_ready_ = false;
    sorted_valid_ = false;
  }

 private:
  friend class Allocator;

  // Bound instance (valid during one solve call).
  const std::vector<const AllocationGroup*>* groups_ = nullptr;
  std::vector<const int*> rows_;  ///< per group: candidate-major usage rows
  std::vector<int> row_storage_;  ///< backing rows for unprepared groups
  /// Per group: effective per-candidate costs. Points at the group's own
  /// costs (no QoS row — untouched arithmetic) or at a slack-penalised copy
  /// in cost_storage_.
  std::vector<const double*> cost_rows_;
  std::vector<double> cost_storage_;
  int num_types_ = 0;

  // Solver scratch, reused across cycles.
  std::vector<int> usage_;
  std::vector<int> repair_usage_;
  std::vector<double> lambda_;
  std::vector<double> cost_scratch_;
  std::vector<std::size_t> selection_;
  std::vector<std::size_t> best_feasible_;
  std::vector<std::size_t> ideal_;
  std::vector<std::size_t> min_footprint_;
  std::vector<std::size_t> repair_scratch_;
  std::vector<const platform::ExtendedResourceVector*> demand_ptrs_;
  std::vector<int> next_free_scratch_;

  // Replay cache: last instance fingerprint and its full result.
  std::uint64_t fingerprint_ = 0;
  bool has_cached_ = false;
  AllocationResult cached_;

  // Shape metadata of the last bound instance: group count, per-group
  // candidate counts, num_types. When the shape is unchanged and the caller
  // declares only a dirty subset changed, per-group fingerprints and the
  // vectorised row blocks of clean groups are reused instead of rebuilt.
  std::uint64_t shape_fp_ = 0;
  bool shapes_ready_ = false;
  std::vector<std::size_t> group_size_;    ///< candidates per group
  std::vector<std::uint64_t> group_fp_;    ///< per-group rows+costs fingerprint

  // Vectorised scan kernel state (Lagrangian): per-group transposed
  // (type-major) usage rows as doubles, so the per-candidate relaxed-cost
  // accumulation is a branch-free unit-stride loop the autovectoriser takes.
  std::vector<double> vec_rows_;
  std::vector<std::size_t> vec_off_;       ///< group -> offset into vec_rows_
  std::size_t max_candidates_ = 0;
  std::vector<double> relaxed_;            ///< per-lane argmin scratch (lanes x max_candidates)
  std::size_t relaxed_lanes_ = 0;
  /// Same transposed layout as vec_rows_ but int32: the repair scans are
  /// pure integer arithmetic, and the narrower rows halve their memory
  /// traffic (the repair loop is bandwidth-bound at scale).
  std::vector<int> vec_irows_;
  std::vector<int> repair_viol_;           ///< per-candidate new-violation scratch (repair)
  /// Contiguous copy of the effective cost rows (group-major, candidate
  /// order) plus per-group candidate offsets. The per-iteration cost sums
  /// and per-group scans index this single array instead of dereferencing
  /// cost_rows_[g] into per-group heap buffers — the dependent loads were
  /// measurable at scale. Values are bitwise copies, so every comparison and
  /// summation sees identical doubles.
  std::vector<double> vec_costs_;
  std::vector<std::size_t> cand_off_;      ///< group -> offset into vec_costs_

  // λ-trajectory cache for dirty-subset re-solves: λ at the start of every
  // subgradient iteration plus the per-group argmin picks it produced
  // (iteration-major). While a re-solve's λ matches the cached trajectory
  // bitwise, clean groups reuse their cached picks and only dirty groups are
  // rescanned; on divergence the solver falls back to full scans.
  std::vector<double> lambda_traj_;
  std::vector<std::uint32_t> picks_traj_;
  int traj_iters_ = 0;
  bool traj_valid_ = false;
  /// Per-iteration total usage of the recorded picks (iteration-major,
  /// iterations x num_types). In-sync iterations recover usage by applying
  /// integer dirty-row deltas to the recorded row instead of recounting all
  /// groups — exact, because integer addition is order-free.
  std::vector<int> usage_traj_;

  // Preamble caches keyed by the same validity condition as the trajectory
  // (Lagrangian solve, clean shape, traj_valid_): per-group values of clean
  // groups are pure functions of unchanged inputs, so an incremental solve
  // recomputes dirty groups only. abs_costs_ mirrors the bound effective
  // costs as |cost| in group order; the median (cost_scale) is taken from a
  // scratch copy, and a multiset median is independent of element order.
  std::vector<double> abs_costs_;
  /// Sorted mirror of abs_costs_, maintained across incremental solves by a
  /// batch remove/insert merge of the dirty segments (O(n + d log d) versus
  /// nth_element's O(n) with far worse constants). The median it yields is
  /// the same order statistic nth_element selects, bit for bit. Rebuilt
  /// lazily on the first incremental solve after any full one.
  std::vector<double> sorted_costs_;
  std::vector<double> sorted_scratch_;
  std::vector<double> dirty_old_costs_;
  std::vector<double> dirty_new_costs_;
  bool sorted_valid_ = false;
  /// True when refresh_vectorized observed a bitwise row change in a dirty
  /// group (always true on full refresh). When false, dirty solves changed
  /// costs only, so in-sync λ iterations recover usage by integer dirty-row
  /// deltas against the recorded trajectory instead of a full recount.
  bool dirty_rows_changed_ = true;

  // Repair/greedy scan scratch (hoisted: the hot path allocates nothing).
  std::vector<int> over_scratch_;          ///< per-type overflow of the current selection
  std::vector<double> greedy_min_cost_;    ///< per-group cheapest candidate cost

  bool replayed_ = false;
  std::uint64_t full_solves_ = 0;
  std::uint64_t replays_ = 0;
  SolveMode last_mode_ = SolveMode::kFull;
  std::uint64_t incremental_solves_ = 0;
  std::size_t last_rescanned_groups_ = 0;
  int last_sync_iters_ = 0;
};

/// MMKP solver facade.
class Allocator {
 public:
  explicit Allocator(platform::HardwareDescription hw,
                     SolverKind kind = SolverKind::kLagrangian,
                     telemetry::Tracer* tracer = nullptr);

  /// Solve the selection problem and compute concrete core assignments.
  /// Groups must be non-empty and every group must have >= 1 candidate.
  /// Cold one-shot entry point: equivalent to the workspace overload with a
  /// fresh workspace.
  AllocationResult solve(const std::vector<AllocationGroup>& groups) const;

  /// Hot-path entry point: identical results to the cold overload, but
  /// reuses `ws` buffers (steady-state calls perform no heap allocation) and
  /// replays the cached result when the instance fingerprint is unchanged.
  /// Groups are taken by pointer because callers cache them inside
  /// per-client records. Equivalent to the dirty-aware overload below with
  /// structure_changed = true (no incremental reuse).
  void solve(const std::vector<const AllocationGroup*>& groups, SolveWorkspace& ws,
             AllocationResult& out) const;

  /// Dirty-aware hot path. The caller promises that, relative to the
  /// instance last solved with `ws`:
  ///  - `structure_changed` is true whenever the group list itself changed
  ///    (count, order, or identity of the groups), and
  ///  - when it is false, every group whose rows, costs, or QoS pricing
  ///    changed in any way is listed in `dirty` (ascending, no duplicates).
  /// Groups not listed dirty must be bitwise unchanged. Under that contract
  /// the result is bit-identical to a cold solve of the current instance:
  /// clean-group work (fingerprints, vectorised rows, and — for the
  /// Lagrangian solver — per-iteration argmin picks while λ follows the
  /// cached trajectory) is reused, dirty groups are re-scanned, and any λ
  /// divergence falls back to full scans. An over-approximate dirty set
  /// (listing clean groups) is always safe, merely slower.
  void solve(const std::vector<const AllocationGroup*>& groups,
             const std::vector<std::uint32_t>& dirty, bool structure_changed,
             SolveWorkspace& ws, AllocationResult& out) const;

  /// Attach a deterministic worker pool (src/common/parallel_for): full λ
  /// iterations scan their groups across the pool's lanes. Results are
  /// bit-identical for any lane count (picks are per-group pure functions;
  /// every cross-lane reduction in the solver is integer-exact or merged in
  /// lane order). Null restores serial scanning. Not owned; must outlive
  /// every solve().
  void set_parallelism(harp::ParallelFor* pool) { pool_ = pool; }

  const platform::HardwareDescription& hardware() const { return hw_; }

 private:
  /// Validate groups, bind usage rows (prepared groups point straight at
  /// their own rows; others are materialised into ws.row_storage_) and
  /// effective cost rows (soft-QoS slack penalties applied).
  void bind(const std::vector<const AllocationGroup*>& groups, SolveWorkspace& ws) const;
  /// FNV-1a-style fingerprint of one bound group (candidate count, usage
  /// rows, effective-cost bit patterns). Instance-pure: app names do not
  /// participate. The per-instance fingerprint mixes these in group order
  /// with the capacity vector; on dirty-subset solves only dirty groups'
  /// fingerprints are recomputed.
  std::uint64_t group_fingerprint(const SolveWorkspace& ws, std::size_t g) const;

  /// Rebuild the transposed double-precision row blocks the vectorised scan
  /// kernel reads. `all` rebuilds every group; otherwise only `dirty` groups
  /// (clean blocks are byte-identical by the dirty contract).
  void refresh_vectorized(SolveWorkspace& ws, bool all,
                          const std::vector<std::uint32_t>& dirty) const;
  /// Argmin scan of every group under `lambda` into ws.selection_, across
  /// the attached pool's lanes (serial when no pool).
  void scan_all_groups(SolveWorkspace& ws, const double* lambda) const;

  // Each solver leaves its final selection in ws.best_feasible_ (empty →
  // co-allocation required). The Lagrangian solver takes the incremental
  // contract: when `incremental`, replay the cached λ trajectory and rescan
  // only `dirty` groups while in sync.
  void solve_lagrangian(SolveWorkspace& ws, bool incremental,
                        const std::vector<std::uint32_t>& dirty) const;
  void solve_greedy(SolveWorkspace& ws) const;
  void solve_exhaustive(SolveWorkspace& ws) const;
  /// Make an infeasible selection feasible by cost-aware downgrades,
  /// in place; returns false when even minimum demand exceeds capacity.
  bool repair(SolveWorkspace& ws, std::vector<std::size_t>& selection) const;

  platform::HardwareDescription hw_;
  SolverKind kind_;
  /// Per-type core capacity, precomputed from hw_ (the R vector of Eq. 1b).
  std::vector<int> capacity_;
  /// Optional: wraps every solve() in a kMmkpSolve span (groups/cost/feasible).
  telemetry::Tracer* tracer_;
  /// Optional deterministic worker pool (see set_parallelism). Not owned.
  harp::ParallelFor* pool_ = nullptr;
};

/// True iff the selected points jointly fit the capacity vector.
bool selection_feasible(const std::vector<AllocationGroup>& groups,
                        const std::vector<std::size_t>& selection,
                        const std::vector<int>& capacity);

/// Σ cost of a selection.
double selection_cost(const std::vector<AllocationGroup>& groups,
                      const std::vector<std::size_t>& selection);

}  // namespace harp::core
