// Energy-efficient resource allocation (§4.2.2): the Multiple-choice
// Multi-dimensional Knapsack Problem of Eq. (1).
//
//   minimise   Σ_σ ζ(x_σ)           (energy-utility cost of selected points)
//   subject to Σ_σ r(x_σ) ≤ R       (per-core-type capacity)
//
// MMKP is NP-hard; HARP uses the state-of-the-art Lagrangian-relaxation
// approximation in the style of Wildermann et al.: subgradient iterations on
// the relaxed problem, feasibility repair, then a concrete first-fit core
// assignment guaranteeing spatial isolation. A greedy heuristic and an exact
// branch-and-bound reference are provided for the allocator-quality
// ablation (bench/allocator_ablation) and for tests.
//
// The solver runs in the RM's periodic decision cycle, so it has a hot-path
// entry point: solve(groups, workspace, out) reuses a SolveWorkspace across
// cycles — flat candidate×core-type usage rows, scratch buffers, and a
// fingerprint of the previous instance that lets a byte-identical cycle
// replay the cached result without solving at all. The warm path is
// result-neutral: it returns bit-identical selections to the cold
// one-shot solve(groups) overload (see DESIGN.md "Hot path &
// incrementality").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/harp/operating_point.hpp"
#include "src/platform/resource_vector.hpp"
#include "src/telemetry/trace.hpp"

namespace harp::core {

/// One application's choice group.
struct AllocationGroup {
  std::string app_name;
  /// Candidate operating points; ζ must be precomputed against the app's
  /// utility normaliser. At least one candidate required.
  std::vector<OperatingPoint> candidates;
  std::vector<double> costs;  ///< ζ per candidate, parallel to `candidates`

  /// Soft-QoS minimum-service-rate row (Nejat-style slack pricing): the
  /// solver charges candidates below `min_rate` an extra
  /// slack_weight · max(0, (min_rate − rate)/min_rate) on top of ζ, steering
  /// the selection toward QoS-meeting points without making the constraint
  /// hard (an overloaded machine degrades instead of failing). Groups
  /// without a row are solved with their raw ζ values, bit-identically to a
  /// solver without QoS support.
  struct SoftQos {
    double min_rate = 0.0;       ///< service-rate target (same units as `rates`)
    double slack_weight = 0.0;   ///< penalty per unit of relative deficit
    std::vector<double> rates;   ///< predicted service rate per candidate
  };
  std::optional<SoftQos> qos;

  /// Flat per-candidate core-usage rows, candidate-major:
  /// usage_rows[c * usage_num_types + t] = cores of type t used by candidate
  /// c. Filled by prepare(); the solver falls back to building rows in its
  /// workspace for unprepared groups, so preparing is an optimisation for
  /// callers that cache groups across cycles, never a requirement.
  std::vector<int> usage_rows;
  int usage_num_types = 0;

  /// (Re)build usage_rows for a platform with `num_types` core types. Every
  /// candidate ERV must be shaped for that platform.
  void prepare(int num_types);
  bool prepared(int num_types) const {
    return num_types > 0 && usage_num_types == num_types &&
           usage_rows.size() == candidates.size() * static_cast<std::size_t>(num_types);
  }
};

/// Result of one solve.
struct AllocationResult {
  /// Selected candidate index per group; empty if the instance forced
  /// co-allocation (no feasible selection exists even at minimum demand).
  std::vector<std::size_t> selection;
  double total_cost = 0.0;
  bool feasible = false;

  /// Concrete, spatially isolated core allocations (parallel to groups);
  /// only populated when feasible.
  std::vector<platform::CoreAllocation> allocations;
};

enum class SolverKind { kLagrangian, kGreedy, kExhaustive };

/// Reusable per-caller solver state. Holding one of these across RM cycles
/// buys three things: (1) every scratch vector the solvers need is allocated
/// once and reused, making steady-state solves heap-allocation-free; (2) a
/// fingerprint of the last solved instance lets a byte-identical cycle
/// replay the cached AllocationResult without running a solver; (3) the last
/// λ multipliers survive for diagnostics. A workspace belongs to one
/// (Allocator, call site) pair — sharing it between allocators with
/// different hardware or solver kinds would replay results across
/// incompatible instances; invalidate() when retargeting.
class SolveWorkspace {
 public:
  SolveWorkspace() = default;

  /// True iff the most recent solve() replayed the cached result instead of
  /// running a solver (instance fingerprint matched the previous cycle).
  bool replayed() const { return replayed_; }
  std::uint64_t full_solves() const { return full_solves_; }
  std::uint64_t replays() const { return replays_; }

  /// λ multipliers left by the last Lagrangian solve — diagnostics only; the
  /// solver always restarts λ from zero so results stay independent of
  /// workspace history.
  const std::vector<double>& multipliers() const { return lambda_; }

  /// Drop the cached result so the next solve() runs in full. Needed only
  /// when re-using one workspace against a different Allocator.
  void invalidate() { has_cached_ = false; }

 private:
  friend class Allocator;

  // Bound instance (valid during one solve call).
  const std::vector<const AllocationGroup*>* groups_ = nullptr;
  std::vector<const int*> rows_;  ///< per group: candidate-major usage rows
  std::vector<int> row_storage_;  ///< backing rows for unprepared groups
  /// Per group: effective per-candidate costs. Points at the group's own
  /// costs (no QoS row — untouched arithmetic) or at a slack-penalised copy
  /// in cost_storage_.
  std::vector<const double*> cost_rows_;
  std::vector<double> cost_storage_;
  int num_types_ = 0;

  // Solver scratch, reused across cycles.
  std::vector<int> usage_;
  std::vector<int> repair_usage_;
  std::vector<double> lambda_;
  std::vector<double> cost_scratch_;
  std::vector<std::size_t> selection_;
  std::vector<std::size_t> best_feasible_;
  std::vector<std::size_t> ideal_;
  std::vector<std::size_t> min_footprint_;
  std::vector<std::size_t> repair_scratch_;
  std::vector<const platform::ExtendedResourceVector*> demand_ptrs_;
  std::vector<int> next_free_scratch_;

  // Replay cache: last instance fingerprint and its full result.
  std::uint64_t fingerprint_ = 0;
  bool has_cached_ = false;
  AllocationResult cached_;

  bool replayed_ = false;
  std::uint64_t full_solves_ = 0;
  std::uint64_t replays_ = 0;
};

/// MMKP solver facade.
class Allocator {
 public:
  explicit Allocator(platform::HardwareDescription hw,
                     SolverKind kind = SolverKind::kLagrangian,
                     telemetry::Tracer* tracer = nullptr);

  /// Solve the selection problem and compute concrete core assignments.
  /// Groups must be non-empty and every group must have >= 1 candidate.
  /// Cold one-shot entry point: equivalent to the workspace overload with a
  /// fresh workspace.
  AllocationResult solve(const std::vector<AllocationGroup>& groups) const;

  /// Hot-path entry point: identical results to the cold overload, but
  /// reuses `ws` buffers (steady-state calls perform no heap allocation) and
  /// replays the cached result when the instance fingerprint is unchanged.
  /// Groups are taken by pointer because callers cache them inside
  /// per-client records.
  void solve(const std::vector<const AllocationGroup*>& groups, SolveWorkspace& ws,
             AllocationResult& out) const;

  const platform::HardwareDescription& hardware() const { return hw_; }

 private:
  /// Validate groups, bind usage rows (prepared groups point straight at
  /// their own rows; others are materialised into ws.row_storage_) and
  /// effective cost rows (soft-QoS slack penalties applied).
  void bind(const std::vector<const AllocationGroup*>& groups, SolveWorkspace& ws) const;
  /// FNV-1a-style fingerprint of the bound instance (group sizes, usage
  /// rows, cost bit patterns, capacity). Instance-pure: app names do not
  /// participate.
  std::uint64_t bound_fingerprint(const SolveWorkspace& ws) const;

  // Each solver leaves its final selection in ws.best_feasible_ (empty →
  // co-allocation required).
  void solve_lagrangian(SolveWorkspace& ws) const;
  void solve_greedy(SolveWorkspace& ws) const;
  void solve_exhaustive(SolveWorkspace& ws) const;
  /// Make an infeasible selection feasible by cost-aware downgrades,
  /// in place; returns false when even minimum demand exceeds capacity.
  bool repair(SolveWorkspace& ws, std::vector<std::size_t>& selection) const;

  platform::HardwareDescription hw_;
  SolverKind kind_;
  /// Per-type core capacity, precomputed from hw_ (the R vector of Eq. 1b).
  std::vector<int> capacity_;
  /// Optional: wraps every solve() in a kMmkpSolve span (groups/cost/feasible).
  telemetry::Tracer* tracer_;
};

/// True iff the selected points jointly fit the capacity vector.
bool selection_feasible(const std::vector<AllocationGroup>& groups,
                        const std::vector<std::size_t>& selection,
                        const std::vector<int>& capacity);

/// Σ cost of a selection.
double selection_cost(const std::vector<AllocationGroup>& groups,
                      const std::vector<std::size_t>& selection);

}  // namespace harp::core
