// The /etc/harp-style configuration directory (§4.3).
//
// All HARP configuration lives in one user-inspectable directory:
//
//   <dir>/hardware.json          — the machine description (vendor-provided
//                                  or generated at setup)
//   <dir>/apps/<name>.json       — application description files: operating-
//                                  point tables shipped with applications or
//                                  persisted by the RM's runtime exploration
//                                  ("self-improving profiles")
//
// The RM daemon loads this directory at startup and persists refined tables
// back into it, so profiles survive restarts and administrators can inspect
// or hand-tune them.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "src/common/result.hpp"
#include "src/harp/operating_point.hpp"
#include "src/platform/hardware.hpp"

namespace harp::core {

class ConfigDirectory {
 public:
  explicit ConfigDirectory(std::string root) : root_(std::move(root)) {}

  const std::string& root() const { return root_; }
  std::string hardware_path() const;
  std::string app_path(const std::string& app_name) const;

  /// Create `<root>` and `<root>/apps` if missing.
  Status ensure_exists() const;

  /// Write a complete configuration: hardware description + tables.
  Status initialize(const platform::HardwareDescription& hw,
                    const std::map<std::string, OperatingPointTable>& tables) const;

  Result<platform::HardwareDescription> load_hardware() const;
  Status save_hardware(const platform::HardwareDescription& hw) const;

  /// Load every application description under apps/ (files that fail to
  /// parse are skipped with a warning — one corrupt profile must not take
  /// the RM down).
  Result<std::map<std::string, OperatingPointTable>> load_tables() const;

  std::optional<OperatingPointTable> load_table(const std::string& app_name) const;
  Status save_table(const OperatingPointTable& table) const;

 private:
  std::string root_;
};

/// Sanitise an application name into a filesystem-safe file stem: anything
/// outside [A-Za-z0-9._-] becomes '_'. ("mg.C" -> "mg.C", "a/b" -> "a_b").
std::string sanitize_app_filename(const std::string& app_name);

}  // namespace harp::core
