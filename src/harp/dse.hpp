// Offline design-space exploration (§3.2.1, "HARP (Offline)" in §6.3).
//
// When applications ship description files, the operating points come from
// design-time DSE: the application is executed (here: evaluated through the
// behaviour model) on every coarse configuration and the Pareto-optimal
// points — minimal power, maximal utility, minimal cores of each type — are
// retained in the table.
#pragma once

#include "src/harp/operating_point.hpp"
#include "src/model/behavior.hpp"
#include "src/telemetry/trace.hpp"

namespace harp::core {

struct DseOptions {
  /// Keep only Pareto-optimal points (utility max; power and per-type core
  /// counts min). The full sweep is kept when false (Fig. 1 needs it).
  bool pareto_filter = true;
  /// Imbalance mitigation assumed during profiling: custom apps rebalance
  /// (1.0), scalable/static apps run pinned with static partitions (0.0).
  /// Negative = derive from the app's adaptivity type.
  double rebalance_factor = -1.0;
  /// Measurements recorded per point (marks points as measured so the RM
  /// treats offline tables as stable).
  int measurements_per_point = 20;
  /// DVFS setting the sweep is profiled at (1 = calibrated maximum). The
  /// §7-outlook frequency extension generates one table per level.
  double freq_scale = 1.0;
  /// Optional: each sweep is wrapped in a kDseSweep span (scope = app name).
  telemetry::Tracer* tracer = nullptr;
};

/// Sweep every coarse configuration of `hw` for `app` and build its
/// operating-point table from the behaviour model's exclusive-run rates.
/// Utility is the application metric when the app provides one, measured
/// IPS otherwise — mirroring what runtime profiling would observe.
OperatingPointTable run_offline_dse(const model::AppBehavior& app,
                                    const platform::HardwareDescription& hw,
                                    const DseOptions& options = {});

/// The rebalance factor HARP management achieves for an adaptivity type:
/// custom applications redistribute work (1.0); scalable/static ones keep
/// static partitions once pinned (0.0).
double managed_rebalance_factor(model::AdaptivityType type);

}  // namespace harp::core
