// harp-lint: hot-path — the shard cycle and thread loops run once per RM
// poll per shard; loop bodies must not construct vectors or strings.
#include "src/harp/rm_shard.hpp"

#include <algorithm>
#include <chrono>

#include "src/common/check.hpp"
#include "src/common/logging.hpp"

namespace harp::core {

namespace {

double steady_now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ShardedRmServer::ShardedRmServer(platform::HardwareDescription hw, ShardedRmOptions options)
    : hw_(std::move(hw)),
      options_(options),
      coordinator_allocator_(hw_, options.server.solver, options.server.tracer) {
  HARP_CHECK(options_.num_shards >= 1);
  const int n = options_.num_shards;
  const std::size_t num_types = hw_.core_types.size();

  RmServerOptions shard_options = options_.server;
  shard_options.external_solver = options_.rebalance == RebalanceMode::kDisabled;
  shards_.reserve(static_cast<std::size_t>(n));
  shard_scopes_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<RmServer>(hw_, shard_options));
    shard_scopes_.push_back("shard" + std::to_string(i));
  }

  if (options_.rebalance == RebalanceMode::kLambdaDrift) {
    // Initial deal: core c of type t goes to shard c mod N — contiguous
    // platforms end up with balanced, interleaved slices.
    budgets_.assign(static_cast<std::size_t>(n),
                    std::vector<std::vector<int>>(num_types));
    for (std::size_t t = 0; t < num_types; ++t)
      for (int c = 0; c < hw_.core_types[t].core_count; ++c)
        budgets_[static_cast<std::size_t>(c % n)][t].push_back(c);
    for (int i = 0; i < n; ++i)
      shards_[static_cast<std::size_t>(i)]->set_core_budget(
          budgets_[static_cast<std::size_t>(i)]);
    drift_rounds_.assign(num_types, 0);
  }

  if (options_.server.metrics != nullptr) {
    rebalances_counter_ = &options_.server.metrics->counter("rm_shard_rebalances_total");
    cycle_histograms_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      cycle_histograms_.push_back(&options_.server.metrics->histogram(
          "rm_cycle_seconds_shard" + std::to_string(i),
          {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1}));
  }
}

ShardedRmServer::~ShardedRmServer() { stop_threads(); }

Status ShardedRmServer::listen(const std::string& socket_path) {
  Result<std::unique_ptr<ipc::UnixServer>> server = ipc::UnixServer::listen(socket_path);
  if (!server.ok()) return Status(server.error());
  MutexLock lock(mutex_);
  listener_ = std::move(server).take();
  return Status{};
}

void ShardedRmServer::adopt_channel(std::unique_ptr<ipc::Channel> channel) {
  std::uint64_t admission;
  {
    MutexLock lock(mutex_);
    admission = next_admission_++;
  }
  RmServer& shard = *shards_[static_cast<std::size_t>(
      admission % static_cast<std::uint64_t>(shards_.size()))];
  shard.adopt_channel(std::move(channel), admission);
  if (!threads_.empty()) shard.wakeup();
}

void ShardedRmServer::adopt_into_shard(int index, std::unique_ptr<ipc::Channel> channel) {
  std::uint64_t admission;
  {
    MutexLock lock(mutex_);
    admission = next_admission_++;
  }
  RmServer& shard = *shards_[static_cast<std::size_t>(index)];
  shard.adopt_channel(std::move(channel), admission);
  if (!threads_.empty()) shard.wakeup();
}

void ShardedRmServer::poll(double now_seconds) {
  // Accept pending connections, adopting round-robin in accept order. The
  // coordinator mutex guards only the listener pointer — listen() installs it
  // before polling starts and it lives until destruction — so the accept
  // syscall runs outside the critical section and shard threads reading
  // coordinator counters never stall behind listener I/O (r12).
  ipc::UnixServer* listener = nullptr;
  {
    MutexLock lock(mutex_);
    listener = listener_.get();
  }
  while (listener != nullptr) {
    auto accepted = listener->accept();
    if (!accepted.ok()) {
      HARP_WARN << "sharded accept failed: " << accepted.error().message;
      break;
    }
    if (!accepted.value().has_value()) break;
    adopt_channel(std::move(*accepted.value()));
  }

  // Unthreaded: run every shard's cycle here, in index order, timed.
  if (threads_.empty()) {
    telemetry::Tracer* tracer = options_.server.tracer;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      if (tracer != nullptr)
        tracer->begin(telemetry::EventType::kShardCycle, shard_scopes_[i],
                      {{"clients", static_cast<double>(shards_[i]->client_count())}});
      auto t0 = std::chrono::steady_clock::now();
      shards_[i]->poll(now_seconds);
      double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      if (i < cycle_histograms_.size() && cycle_histograms_[i] != nullptr)
        cycle_histograms_[i]->observe(elapsed);
      if (tracer != nullptr)
        tracer->end(telemetry::EventType::kShardCycle, shard_scopes_[i], {});
    }
  }

  if (options_.rebalance == RebalanceMode::kDisabled)
    coordinate_global_solve();
  else
    coordinate_rebalance();
}

void ShardedRmServer::coordinate_global_solve() {
  // Consume every shard's dirty flag (all must clear even if only one set).
  bool dirty = false;
  for (auto& shard : shards_) dirty = shard->take_needs_realloc() || dirty;
  if (!dirty) return;

  MutexLock lock(mutex_);
  merged_.clear();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->export_groups(export_scratch_);
    for (const ExportedGroup& e : export_scratch_)
      merged_.push_back({static_cast<int>(i), e});
  }
  if (merged_.empty()) return;
  // Admission order is a single server's adoption order; admissions are
  // unique, so this sort fully determines the instance.
  std::sort(merged_.begin(), merged_.end(),
            [](const auto& a, const auto& b) { return a.second.admission < b.second.admission; });

  group_ptrs_.resize(merged_.size());
  for (std::size_t g = 0; g < merged_.size(); ++g) group_ptrs_[g] = merged_[g].second.group;

  telemetry::Tracer* tracer = options_.server.tracer;
  if (tracer != nullptr)
    tracer->begin(telemetry::EventType::kAllocCycle, "coordinator",
                  {{"apps", static_cast<double>(merged_.size())},
                   {"shards", static_cast<double>(shards_.size())}});

  coordinator_allocator_.solve(group_ptrs_, coordinator_ws_, coordinator_result_);
  ++coordinator_solves_;

  // Mirror the single server's skip-cycle: a replayed instance over the
  // exact same admission set means every client already holds this grant.
  bool same_clients = last_solved_admissions_.size() == merged_.size();
  for (std::size_t g = 0; same_clients && g < merged_.size(); ++g)
    if (last_solved_admissions_[g] != merged_[g].second.admission) same_clients = false;
  if (coordinator_ws_.replayed() && same_clients) {
    if (tracer != nullptr)
      tracer->end(telemetry::EventType::kAllocCycle, "coordinator", {{"skipped", 1.0}});
    return;
  }
  last_solved_admissions_.resize(merged_.size());
  for (std::size_t g = 0; g < merged_.size(); ++g)
    last_solved_admissions_[g] = merged_[g].second.admission;

  if (!coordinator_result_.feasible) {
    for (const auto& [shard, e] : merged_)
      shards_[static_cast<std::size_t>(shard)]->push_coallocation(e.client_index);
    if (tracer != nullptr)
      tracer->end(telemetry::EventType::kAllocCycle, "coordinator", {{"feasible", 0.0}});
    return;
  }
  for (std::size_t g = 0; g < merged_.size(); ++g) {
    const auto& [shard, e] = merged_[g];
    std::size_t selected = coordinator_result_.selection[g];
    shards_[static_cast<std::size_t>(shard)]->push_activation(
        e.client_index, e.group->candidates[selected], coordinator_result_.allocations[g],
        e.group->costs[selected]);
  }
  if (tracer != nullptr)
    tracer->end(telemetry::EventType::kAllocCycle, "coordinator",
                {{"feasible", 1.0}, {"total_cost", coordinator_result_.total_cost}});
}

void ShardedRmServer::coordinate_rebalance() {
  MutexLock lock(mutex_);
  const std::size_t num_types = hw_.core_types.size();
  const std::size_t n = shards_.size();
  if (n < 2) return;

  // λ per shard per type (0 before a shard's first Lagrangian solve).
  lambda_scratch_.resize(n);
  for (std::size_t i = 0; i < n; ++i) lambda_scratch_[i] = shards_[i]->last_multipliers();
  const std::vector<std::vector<double>>& lambdas = lambda_scratch_;

  int move_type = -1;
  std::size_t donor = 0;
  std::size_t receiver = 0;
  for (std::size_t t = 0; t < num_types; ++t) {
    double lo = 0.0, hi = 0.0;
    std::size_t lo_shard = 0, hi_shard = 0;
    bool first = true;
    for (std::size_t i = 0; i < n; ++i) {
      double lambda = t < lambdas[i].size() ? lambdas[i][t] : 0.0;
      if (first || lambda < lo) { lo = lambda; lo_shard = i; }
      if (first || lambda > hi) { hi = lambda; hi_shard = i; }
      first = false;
    }
    double drift = hi > 1e-12 ? (hi - lo) / hi : 0.0;
    // A donor must keep at least one core of the type; otherwise its own
    // clients could never be granted it again.
    bool donatable = budgets_[lo_shard][t].size() >= 2 && lo_shard != hi_shard;
    if (drift > options_.lambda_drift_threshold && donatable) {
      ++drift_rounds_[t];
      if (move_type < 0 && drift_rounds_[t] >= options_.rebalance_min_cycles) {
        move_type = static_cast<int>(t);
        donor = lo_shard;
        receiver = hi_shard;
      }
    } else {
      drift_rounds_[t] = 0;
    }
  }
  if (move_type < 0) return;

  // One move per round: take the donor's highest-numbered core of the type
  // (deterministic) and keep both id lists sorted.
  const std::size_t t = static_cast<std::size_t>(move_type);
  int core = budgets_[donor][t].back();
  budgets_[donor][t].pop_back();
  budgets_[receiver][t].insert(
      std::lower_bound(budgets_[receiver][t].begin(), budgets_[receiver][t].end(), core), core);
  shards_[donor]->set_core_budget(budgets_[donor]);
  shards_[receiver]->set_core_budget(budgets_[receiver]);
  drift_rounds_[t] = 0;
  ++rebalances_;
  if (rebalances_counter_ != nullptr) rebalances_counter_->inc();
  if (options_.server.tracer != nullptr)
    options_.server.tracer->instant(
        telemetry::EventType::kRebalance, "coordinator",
        {{"type", static_cast<double>(move_type)},
         {"core", static_cast<double>(core)},
         {"from", static_cast<double>(donor)},
         {"to", static_cast<double>(receiver)}});
  if (!threads_.empty()) {
    shards_[donor]->wakeup();
    shards_[receiver]->wakeup();
  }
  HARP_INFO << "rebalance: core " << core << " (type " << move_type << ") shard " << donor
            << " -> shard " << receiver;
}

void ShardedRmServer::start_threads() {
  HARP_CHECK(options_.rebalance == RebalanceMode::kLambdaDrift);
  if (!threads_.empty()) return;
  stop_threads_.store(false, std::memory_order_release);
  threads_.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i)
    threads_.emplace_back([this, i] { shard_thread_main(static_cast<int>(i)); });
}

void ShardedRmServer::stop_threads() {
  if (threads_.empty()) return;
  stop_threads_.store(true, std::memory_order_release);
  for (auto& shard : shards_) shard->wakeup();
  for (std::thread& thread : threads_) thread.join();
  threads_.clear();
}

void ShardedRmServer::shard_thread_main(int index) {
  RmServer& shard = *shards_[static_cast<std::size_t>(index)];
  telemetry::Histogram* histogram =
      static_cast<std::size_t>(index) < cycle_histograms_.size()
          ? cycle_histograms_[static_cast<std::size_t>(index)]
          : nullptr;
  while (!stop_threads_.load(std::memory_order_acquire)) {
    auto t0 = std::chrono::steady_clock::now();
    // Block until readiness or a wakeup; the bounded timeout keeps lease
    // eviction and utility polls ticking on an idle shard.
    shard.poll(steady_now_seconds(), /*timeout_ms=*/50);
    if (histogram != nullptr)
      histogram->observe(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count());
  }
}

std::size_t ShardedRmServer::client_count() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->client_count();
  return total;
}

std::uint64_t ShardedRmServer::rebalances() const {
  MutexLock lock(mutex_);
  return rebalances_;
}

std::uint64_t ShardedRmServer::coordinator_solves() const {
  MutexLock lock(mutex_);
  return coordinator_solves_;
}

std::vector<std::vector<std::vector<int>>> ShardedRmServer::budgets() const {
  MutexLock lock(mutex_);
  return budgets_;
}

}  // namespace harp::core
