// DVFS-integrated resource allocation — the paper's first outlook item
// (§7): "adding dynamic frequency-scaling control of the CPU would allow
// for even finer energy management. However this requires advanced
// behavior prediction techniques to handle the increased configuration
// complexity."
//
// This extension prototypes exactly that: the configuration space becomes
// (extended resource vector × frequency level), the per-level non-
// functional characteristics come from offline DSE at each frequency
// (throughput ∝ f, dynamic power ∝ f^2.5), and the same MMKP machinery
// selects one (allocation, frequency) pair per application. The activation
// then carries a per-partition DVFS setting alongside the core grant.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/harp/allocator.hpp"
#include "src/harp/operating_point.hpp"
#include "src/sim/runner.hpp"

namespace harp::core {

struct DvfsOptions {
  /// Frequency levels explored per allocation (fractions of the calibrated
  /// maximum). Must be in (0, 1], descending, and contain 1.0.
  std::vector<double> freq_levels{1.0, 0.85, 0.70};
  SolverKind solver = SolverKind::kLagrangian;
  /// Same libharp-hook drag model as HarpPolicy (§6.6).
  double drag_base = 0.006;
  double drag_per_extra_app = 0.010;
};

/// HARP with per-application frequency selection, driven by offline DSE
/// tables generated per frequency level. A research prototype of the §7
/// outlook: no online exploration (the squared configuration space is
/// exactly why the paper defers that to future work).
class DvfsHarpPolicy : public sim::Policy {
 public:
  explicit DvfsHarpPolicy(DvfsOptions options = {});
  ~DvfsHarpPolicy() override;

  std::string name() const override { return "harp-dvfs"; }
  void attach(sim::RunnerApi& api) override;
  void on_app_start(sim::AppId id) override;
  void on_app_exit(sim::AppId id) override;

  /// Frequency currently applied per application (diagnostics/tests).
  std::map<std::string, double> active_frequencies() const;

 private:
  struct ManagedApp;

  void reallocate();

  DvfsOptions options_;
  sim::RunnerApi* api_ = nullptr;
  std::unique_ptr<Allocator> allocator_;
  /// Per (application, frequency level): the offline table at that level.
  std::map<std::string, std::vector<OperatingPointTable>> tables_;
  std::map<sim::AppId, std::unique_ptr<ManagedApp>> managed_;
};

}  // namespace harp::core
